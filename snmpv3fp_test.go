package snmpv3fp_test

import (
	"net/netip"
	"testing"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

// TestPublicAPIAgainstLoopbackAgent exercises the full public surface over a
// real UDP socket: probe an agent, classify and fingerprint its engine ID.
func TestPublicAPIAgainstLoopbackAgent(t *testing.T) {
	engID := engineid.NewMAC(2011, [6]byte{0x48, 0x46, 0xfb, 0x12, 0x34, 0x56})
	agent, err := labsim.Start(labsim.Config{
		OS:        labsim.CiscoIOS, // ImplicitV3 behaviour
		Community: "c",
		EngineID:  engID,
		Boots:     7,
		BootTime:  time.Now().Add(-42 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	tr, err := snmpv3fp.NewUDPTransport(agent.Addr().Port())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	obs, err := snmpv3fp.Probe(tr, agent.Addr().Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if obs.EngineBoots != 7 {
		t.Errorf("boots = %d", obs.EngineBoots)
	}
	if got := time.Since(obs.LastReboot()); got < 41*time.Hour || got > 43*time.Hour {
		t.Errorf("uptime = %v, want ~42h", got)
	}
	fp := snmpv3fp.FingerprintEngineID(obs.EngineID)
	if fp.Vendor != "Huawei" || fp.Source != "oui" {
		t.Errorf("fingerprint = %+v", fp)
	}
	id := snmpv3fp.ClassifyEngineID(obs.EngineID)
	if id.Enterprise != 2011 {
		t.Errorf("enterprise = %d", id.Enterprise)
	}
}

// TestPublicAPIEndToEndPipeline runs scan → validate → resolve → fingerprint
// over the simulated Internet through the public API only.
func TestPublicAPIEndToEndPipeline(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(11))
	day := 24 * time.Hour

	scan := func(at time.Duration, seed int64) *snmpv3fp.Campaign {
		w.Clock.Set(w.Cfg.StartTime.Add(at))
		w.BeginScan()
		targets, err := snmpv3fp.NewPrefixTargets(w.ScanPrefixes4(), seed)
		if err != nil {
			t.Fatal(err)
		}
		c, err := snmpv3fp.Scan(w.NewTransport(), targets, snmpv3fp.ScanConfig{
			Rate: 50000, Clock: w.Clock, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := scan(15*day, 1)
	c2 := scan(21*day, 2)
	if len(c1.ByIP) == 0 || len(c2.ByIP) == 0 {
		t.Fatal("campaigns empty")
	}

	rep := snmpv3fp.Validate(c1, c2)
	if len(rep.Valid) == 0 {
		t.Fatal("nothing valid")
	}
	if rep.ValidEngineID < len(rep.Valid) {
		t.Error("valid engine ID count below final valid count")
	}

	sets := snmpv3fp.ResolveAliases(rep.Valid, snmpv3fp.DefaultAliasVariant)
	if len(sets) == 0 {
		t.Fatal("no alias sets")
	}
	// Verify against ground truth: every non-singleton set is one device.
	for _, s := range sets {
		if s.Singleton() {
			continue
		}
		first := w.DeviceAt(s.Members[0].IP)
		for _, m := range s.Members[1:] {
			if w.DeviceAt(m.IP) != first {
				t.Fatalf("alias set merges different devices")
			}
		}
	}
	// Fingerprint the biggest set.
	fp := snmpv3fp.FingerprintEngineID(sets[0].Members[0].EngineID)
	if fp.VendorLabel() == "" {
		t.Error("empty vendor label")
	}
}

func TestDiscoveryProbeIsParseable(t *testing.T) {
	wire, err := snmpv3fp.DiscoveryProbe(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The probe itself parses as an SNMPv3 message with empty engine ID.
	resp, err := snmpv3fp.ParseDiscoveryResponse(wire)
	if err != nil {
		// A request is not a report: ErrNotReport is acceptable; identifiers
		// must still be extracted by DecodeV3 paths. Just require that the
		// bytes are valid SNMPv3.
		if resp == nil {
			t.Fatalf("probe did not parse at all: %v", err)
		}
	}
}

func TestListTargetsEmpty(t *testing.T) {
	if _, err := snmpv3fp.NewListTargets(nil, 1); err == nil {
		t.Error("empty target list should error")
	}
}

// The UDP transport must satisfy the public Transport alias.
var _ snmpv3fp.Transport = (*scanner.UDPTransport)(nil)

// TestScanOverRealUDP drives the campaign-scale scanner against a live
// loopback agent through real sockets: the same code path an authorized
// Internet scan would use.
func TestScanOverRealUDP(t *testing.T) {
	agent, err := labsim.Start(labsim.Config{
		OS:        labsim.CiscoIOS,
		Community: "c",
		EngineID:  engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 7, 7, 7}),
		Boots:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	tr, err := snmpv3fp.NewUDPTransport(agent.Addr().Port())
	if err != nil {
		t.Fatal(err)
	}
	targets, err := snmpv3fp.NewListTargets([]netip.Addr{agent.Addr().Addr()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := snmpv3fp.Scan(tr, targets, snmpv3fp.ScanConfig{
		Rate: 100, Timeout: time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := campaign.ByIP[agent.Addr().Addr()]
	if obs == nil {
		t.Fatal("agent not captured by the scan")
	}
	if obs.EngineBoots != 12 {
		t.Errorf("boots = %d", obs.EngineBoots)
	}
	if fp := snmpv3fp.FingerprintEngineID(obs.EngineID); fp.Vendor != "Cisco" {
		t.Errorf("vendor = %q", fp.Vendor)
	}
}
