package snmpv3fp_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/scanner"
)

// TestObservabilityReconciles is the acceptance test for the observability
// layer: one registry spans netsim, scanner, store and HTTP server across a
// full simulated pipeline (two hostile campaigns, concurrent-free ingest,
// live queries), and every metric family must agree exactly with the
// authoritative counters the subsystems already expose (scanner.Result,
// netsim.FaultStats, store.Stats, request tallies).
func TestObservabilityReconciles(t *testing.T) {
	reg := snmpv3fp.NewRegistry()
	w := netsim.Generate(netsim.TinyConfig(11))
	w.Cfg.Faults = netsim.FullHostileProfile()
	w.RegisterMetrics(reg)

	// Durable store: the reconciliation must hold with the WAL and on-disk
	// segments enabled, including the extra WAL/fsync metric families.
	st, err := snmpv3fp.OpenStore(snmpv3fp.StoreOptions{Dir: t.TempDir(), FlushThreshold: 2048, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var wantSent, wantRetried, wantOffPath, wantResponses, wantUnanswered, wantIngested uint64
	for i := 1; i <= 2; i++ {
		day := 15 + 6*(i-1)
		w.Clock.Set(w.Cfg.StartTime.Add(time.Duration(day) * 24 * time.Hour))
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := scanner.ScanContext(context.Background(), w.NewTransport(), targets, scanner.Config{
			Rate: 50000, Batch: 256, Clock: w.Clock, Seed: int64(i),
			Workers: 4, Retries: 1, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantSent += res.Sent
		wantRetried += res.Retried
		wantOffPath += res.OffPath
		wantResponses += uint64(len(res.Responses))
		responders := map[netip.Addr]struct{}{}
		for _, r := range res.Responses {
			responders[r.Src] = struct{}{}
		}
		wantUnanswered += targets.Size() - uint64(len(responders))

		c := core.Collect(res)
		n, err := st.Ingest(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if n != uint64(i) {
			t.Fatalf("campaign number %d, want %d", n, i)
		}
		wantIngested += uint64(len(c.ByIP))
	}

	// Scanner counters reconcile with the campaign Results.
	scanChecks := []struct {
		family string
		want   uint64
	}{
		{"snmpfp_scan_probes_sent_total", wantSent},
		{"snmpfp_scan_retries_total", wantRetried},
		{"snmpfp_scan_offpath_rejected_total", wantOffPath},
		{"snmpfp_scan_responses_total", wantResponses},
		{"snmpfp_scan_unanswered_total", wantUnanswered},
	}
	for _, c := range scanChecks {
		if got := uint64(reg.Value(c.family)); got != c.want {
			t.Errorf("%s = %d, want %d", c.family, got, c.want)
		}
	}
	if got := reg.Value("snmpfp_scan_inflight_workers"); got != 0 {
		t.Errorf("in-flight workers %v after campaigns finished", got)
	}

	// Fault series reconcile with FaultStats (both reset at BeginScan, so
	// they describe the second campaign).
	ft := w.FaultStats()
	faultChecks := []struct {
		kind string
		want uint64
	}{
		{"lost", ft.Lost}, {"rate_limited", ft.RateLimited},
		{"mismatched", ft.Mismatched}, {"duplicated", ft.Duplicated},
		{"truncated", ft.Truncated}, {"corrupted", ft.Corrupted},
		{"off_path", ft.OffPath}, {"delayed", ft.Delayed},
	}
	var anyFault uint64
	for _, c := range faultChecks {
		got := uint64(reg.Value("snmpfp_netsim_faults_total", obs.L("kind", c.kind)))
		if got != c.want {
			t.Errorf("snmpfp_netsim_faults_total{kind=%q} = %d, want %d", c.kind, got, c.want)
		}
		anyFault += got
	}
	if anyFault == 0 {
		t.Error("hostile profile injected no faults; reconciliation vacuous")
	}

	// Store metrics reconcile with the store's own stats.
	stats := st.Snapshot().Stats()
	if wantIngested != stats.Ingested {
		t.Fatalf("test bug: ingest accounting diverged (%d vs %d)", wantIngested, stats.Ingested)
	}
	storeChecks := []struct {
		family string
		want   float64
	}{
		{"snmpfp_store_ingested_total", float64(stats.Ingested)},
		{"snmpfp_store_flushes_total", float64(stats.Flushes)},
		{"snmpfp_store_compactions_total", float64(stats.Compactions)},
		{"snmpfp_store_superseded_total", float64(stats.Superseded)},
		{"snmpfp_store_campaigns", float64(stats.Campaigns)},
		{"snmpfp_store_mem_samples", float64(stats.MemSamples)},
		{"snmpfp_store_segments", float64(stats.Segments)},
		{"snmpfp_store_tracked_ips", float64(stats.TrackedIPs)},
		{"snmpfp_store_devices", float64(stats.Devices)},
	}
	for _, c := range storeChecks {
		if got := reg.Value(c.family); got != c.want {
			t.Errorf("%s = %v, want %v", c.family, got, c.want)
		}
	}

	// HTTP counters reconcile with the requests actually served.
	srv := snmpv3fp.NewServer(st, snmpv3fp.WithObs(reg))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	paths := []string{"/v1/stats", "/v1/vendors", "/v1/vendors", "/v1/metrics"}
	for _, p := range paths {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", p, resp.StatusCode)
		}
	}
	httpChecks := []struct {
		endpoint string
		want     float64
	}{
		{"stats", 1}, {"vendors", 2}, {"metrics", 1},
	}
	for _, c := range httpChecks {
		if got := reg.Value("snmpfp_http_requests_total", obs.L("endpoint", c.endpoint)); got != c.want {
			t.Errorf("requests{endpoint=%q} = %v, want %v", c.endpoint, got, c.want)
		}
	}
}
