// Package snmpv3fp is a library for SNMPv3-based device fingerprinting and
// alias resolution, reproducing Albakour, Gasser, Beverly and Smaragdakis,
// "Third Time's Not a Charm: Exploiting SNMPv3 for Router Fingerprinting"
// (ACM IMC 2021).
//
// A single unauthenticated SNMPv3 discovery packet makes any reachable
// SNMPv3 agent disclose its engine ID (a persistent, usually MAC-derived
// device identifier), its engine boots counter, and its engine time. This
// package exposes that measurement primitive and the analyses built on it:
//
//   - Probe / Scan: single-target and campaign-scale discovery probing,
//   - Validate: the ten-step response filtering pipeline (paper §4.4),
//   - ResolveAliases: grouping IPs into devices via (engine ID, boots,
//     binned last-reboot time) (paper §5), including dual-stack joins,
//   - Fingerprint: vendor inference from OUI / enterprise numbers (§6).
//
// The heavy lifting lives in internal packages; this façade re-exports the
// stable surface. The map from façade to internal package:
//
//	ProbeContext / ScanContext      internal/core, internal/scanner
//	RegisterModule / ScanProtocols  internal/probe
//	Fuse / FusionReport             internal/fusion
//	Validate                        internal/filter
//	ResolveAliases                  internal/alias
//	FingerprintEngineID             internal/core, internal/engineid
//	OpenStore / Store / View        internal/store
//	NewServer / Server              internal/serve
//	NewRegistry / Registry          internal/obs
//	Track / SummarizeTimelines      internal/tracker
//	CrackUSMPassword                internal/usm
//
// Beyond SNMPv3, fingerprinting is pluggable: a ProbeModule encodes one
// stateless probe and parses its responses into alias evidence. Built-in
// modules cover SNMPv3 discovery ("snmpv3"), ICMP timestamp clock offsets
// ("icmp-ts") and NTP mode-6 clock identities ("ntp"); ScanProtocols runs
// several in one sweep and Fuse merges their alias claims with weighted
// voting, reporting each protocol's marginal gain.
//
// Long-running entry points take a context.Context; cancelling it drains
// scan workers and aborts store ingest cleanly. The context-free variants
// (Probe, Scan) remain as deprecated wrappers over a background context.
//
// See examples/ for runnable end-to-end programs and cmd/reproduce for the
// full paper evaluation against a simulated Internet.
package snmpv3fp

import (
	"context"
	"net/netip"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/fusion"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/serve"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/store"
	"snmpv3fp/internal/tracker"
	"snmpv3fp/internal/usm"
	"snmpv3fp/internal/vclock"
)

// Re-exported core types.
type (
	// Observation is one IP's discovery response metadata.
	Observation = core.Observation
	// Campaign is the per-IP view of one scan.
	Campaign = core.Campaign
	// Fingerprint is a vendor inference.
	Fingerprint = core.Fingerprint
	// Merged is one IP observed consistently across both campaigns.
	Merged = filter.Merged
	// FilterReport carries the per-step accounting of the validation
	// pipeline.
	FilterReport = filter.Report
	// AliasSet groups IPs belonging to one device.
	AliasSet = alias.Set
	// AliasVariant selects the matching rule.
	AliasVariant = alias.Variant
	// Transport carries probes and responses; implemented by UDPTransport
	// and by the netsim package's in-memory transport.
	Transport = scanner.Transport
	// TargetSpace enumerates scan targets in permuted order.
	TargetSpace = scanner.TargetSpace
	// ScanConfig tunes a campaign.
	ScanConfig = scanner.Config
	// ScanResult is a campaign's raw outcome.
	ScanResult = scanner.Result
	// ScanSnapshot is a live progress report from the sharded scan engine,
	// delivered through ScanConfig.Progress.
	ScanSnapshot = scanner.Snapshot
	// Clock abstracts time for pacing (vclock.Real or vclock.Virtual).
	Clock = vclock.Clock
	// EngineID is a classified RFC 3411 engine ID.
	EngineID = engineid.Parsed
	// Timeline is one IP's longitudinal monitoring record.
	Timeline = tracker.Timeline
	// MonitorSummary aggregates a monitored population.
	MonitorSummary = tracker.Summary
	// AuthProtocol selects HMAC-MD5-96 or HMAC-SHA-96 (USM).
	AuthProtocol = usm.AuthProtocol
	// Store is the longitudinal fingerprint store (memtable + segments).
	Store = store.Store
	// StoreOptions tunes a store (flush threshold, compaction, metrics).
	StoreOptions = store.Options
	// View is an immutable store snapshot; all reads are served from one.
	View = store.View
	// Replica is a read-only store fed by a primary's replication stream.
	Replica = store.Replica
	// ReplicaOptions tunes a replica (directory, caches, verify-on-open).
	ReplicaOptions = store.ReplicaOptions
	// ServeSource is anything a Server can serve snapshots from: a *Store
	// or a *Replica.
	ServeSource = serve.Source
	// Server exposes a store over the versioned HTTP JSON API.
	Server = serve.Server
	// ServerOption configures a Server (e.g. WithObs).
	ServerOption = serve.Option
	// Registry collects counters, gauges and histograms; /v1/metrics serves
	// its Prometheus text exposition.
	Registry = obs.Registry
	// ProbeModule is one pluggable fingerprinting protocol: probe encoding,
	// response parsing and alias-key extraction.
	ProbeModule = probe.Module
	// ProbeEvidence is one parsed response from any probe module.
	ProbeEvidence = probe.Evidence
	// ProtocolCampaign is the per-IP fold of one module's campaign.
	ProtocolCampaign = probe.Campaign
	// ProtocolSighting is one address's folded sightings within a
	// ProtocolCampaign.
	ProtocolSighting = probe.Sighting
	// ProtocolEvidence is one protocol's alias groups, input to Fuse.
	ProtocolEvidence = fusion.ProtocolEvidence
	// FusionReport is the cross-protocol fusion result.
	FusionReport = fusion.Report
	// FusedSet is one fused device in a FusionReport.
	FusedSet = fusion.FusedSet
	// FusionProtocolReport carries one protocol's fusion accounting,
	// including its marginal alias gain.
	FusionProtocolReport = fusion.ProtocolReport
)

// USM authentication protocols.
const (
	AuthMD5  = usm.AuthMD5
	AuthSHA1 = usm.AuthSHA1
)

// SNMPPort is the standard SNMP UDP port.
const SNMPPort = 161

// NewUDPTransport opens a UDP socket transport probing the given port
// (use SNMPPort for real scans).
func NewUDPTransport(port uint16) (*scanner.UDPTransport, error) {
	return scanner.NewUDPTransport(port)
}

// NewPrefixTargets builds a permuted target space over prefixes.
func NewPrefixTargets(prefixes []netip.Prefix, seed int64) (TargetSpace, error) {
	return scanner.NewPrefixSpace(prefixes, seed)
}

// NewListTargets builds a permuted target space over an explicit address
// list (e.g. an IPv6 hitlist).
func NewListTargets(addrs []netip.Addr, seed int64) (TargetSpace, error) {
	return scanner.NewListSpace(addrs, seed)
}

// Probe sends one discovery packet with a background context.
//
// Deprecated: use [ProbeContext], which supports cancellation.
func Probe(tr Transport, addr netip.Addr, timeout time.Duration) (*Observation, error) {
	return ProbeContext(context.Background(), tr, addr, 1, timeout)
}

// ProbeContext sends one unauthenticated SNMPv3 discovery packet to addr
// and returns the disclosed identifiers. Cancelling ctx abandons the wait.
func ProbeContext(ctx context.Context, tr Transport, addr netip.Addr, msgID int64, timeout time.Duration) (*Observation, error) {
	return core.ProbeContext(ctx, tr, addr, msgID, timeout)
}

// Scan runs one campaign with a background context.
//
// Deprecated: use [ScanContext], which runs the same module-aware engine
// path and supports mid-campaign cancellation.
func Scan(tr Transport, targets TargetSpace, cfg ScanConfig) (*Campaign, error) {
	return ScanContext(context.Background(), tr, targets, cfg)
}

// ScanContext runs one campaign over the target space and folds the raw
// responses into per-IP observations. Cancelling ctx drains every scan
// worker at its next loop iteration and returns ctx's error.
func ScanContext(ctx context.Context, tr Transport, targets TargetSpace, cfg ScanConfig) (*Campaign, error) {
	res, err := scanner.ScanContext(ctx, tr, targets, cfg)
	if err != nil {
		return nil, err
	}
	return core.Collect(res), nil
}

// RegisterModule adds a probe module to the registry ScanProtocols and the
// ScanConfig.Protocols selector resolve names against. The built-in modules
// ("snmpv3", "icmp-ts", "ntp") register themselves; call this for external
// modules before scanning. Duplicate or empty names error.
func RegisterModule(m ProbeModule) error {
	return probe.Register(m)
}

// Modules lists the registered probe-module names, sorted.
func Modules() []string {
	return probe.Modules()
}

// GetModule resolves a registered probe module by name.
func GetModule(name string) (ProbeModule, error) {
	return probe.Get(name)
}

// ScanProtocols runs one campaign per protocol in cfg.Protocols (default
// ["snmpv3"]) over the same target space and folds each protocol's raw
// responses into a per-IP campaign. newTransport opens a fresh transport per
// protocol — with virtual-time transports it should also reset the clock so
// every protocol's campaign is deterministic in isolation.
func ScanProtocols(ctx context.Context, newTransport func(protocol string) (Transport, error), targets TargetSpace, cfg ScanConfig) (map[string]*ProtocolCampaign, error) {
	results, err := probe.ScanProtocols(ctx, newTransport, targets, cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*ProtocolCampaign, len(results))
	for name, res := range results {
		m, err := probe.Get(name)
		if err != nil {
			return nil, err
		}
		out[name] = probe.Collect(m, res)
	}
	return out, nil
}

// Fuse combines per-protocol alias evidence into fused device sets with
// weighted cross-protocol voting, reporting each protocol's marginal gain
// (the accepted pairs only it proposed). Build ProtocolEvidence from
// ProtocolCampaign.Groups, or from a store View's FusionEvidence.
func Fuse(evidence []ProtocolEvidence) *FusionReport {
	return fusion.Fuse(evidence)
}

// OpenStore opens a longitudinal fingerprint store. Ingest campaigns with
// Store.Ingest and query through Store.Snapshot or NewServer. With
// StoreOptions.Dir set the store is durable: acknowledged samples survive
// crashes, and OpenStore recovers them (which is when it can fail).
func OpenStore(opt StoreOptions) (*Store, error) {
	return store.Open(opt)
}

// NewServer builds the HTTP query API over a store; mount it on any
// http.Server. Pass WithObs to serve a shared metrics registry at
// /v1/metrics.
func NewServer(st ServeSource, opts ...ServerOption) *Server {
	return serve.New(st, opts...)
}

// OpenReplica opens a read replica directory; feed it with
// (*Replica).SyncLoop against a primary serving (*Store).ServeReplication,
// and serve it with NewServer.
func OpenReplica(opt ReplicaOptions) (*Replica, error) {
	return store.OpenReplica(opt)
}

// WithObs attaches a metrics registry to a Server (see serve.WithObs).
func WithObs(reg *Registry) ServerOption {
	return serve.WithObs(reg)
}

// NewRegistry builds an empty metrics registry. Hand the same registry to
// ScanConfig.Obs, StoreOptions.Obs and NewServer(..., WithObs(reg)) to get
// one unified /v1/metrics exposition.
func NewRegistry() *Registry {
	return obs.NewRegistry()
}

// Validate applies the paper's ten-step filtering pipeline to two
// campaigns of the same address family, yielding the IPs with valid engine
// ID and engine time.
func Validate(scan1, scan2 *Campaign) *FilterReport {
	return filter.Run(scan1, scan2)
}

// DefaultAliasVariant is the matching rule the paper adopts (20-second
// last-reboot bins over both campaigns).
var DefaultAliasVariant = alias.Default

// ResolveAliases groups validated observations into alias sets. Passing
// the union of IPv4 and IPv6 observations performs the dual-stack join.
func ResolveAliases(valid []*Merged, v AliasVariant) []*AliasSet {
	return alias.Resolve(valid, v)
}

// FingerprintEngineID infers a device vendor from its engine ID.
func FingerprintEngineID(id []byte) Fingerprint {
	return core.FingerprintEngineID(id)
}

// ClassifyEngineID parses an engine ID into its RFC 3411 components.
func ClassifyEngineID(id []byte) EngineID {
	return engineid.Classify(id)
}

// DiscoveryProbe returns the wire bytes of one unauthenticated discovery
// request, for callers driving their own sockets.
func DiscoveryProbe(msgID, requestID int64) ([]byte, error) {
	return snmp.EncodeDiscoveryRequest(msgID, requestID)
}

// ParseDiscoveryResponse extracts the engine identifiers from a response
// datagram.
func ParseDiscoveryResponse(payload []byte) (*snmp.DiscoveryResponse, error) {
	return snmp.ParseDiscoveryResponse(payload)
}

// Track builds longitudinal per-IP timelines from an ordered sequence of
// campaigns (the Section 6.3 monitoring workflow).
func Track(campaigns []*Campaign) map[netip.Addr]*Timeline {
	return tracker.Build(campaigns)
}

// SummarizeTimelines aggregates monitored timelines into restart, churn and
// availability statistics.
func SummarizeTimelines(timelines map[netip.Addr]*Timeline) MonitorSummary {
	return tracker.Summarize(timelines)
}

// CrackUSMPassword mounts the paper's Section 8 offline dictionary attack
// against a captured authenticated SNMPv3 message: because USM keys are
// localized with the engine ID — which the message itself (and any
// discovery probe) discloses — a single capture suffices.
func CrackUSMPassword(captured []byte, proto AuthProtocol, wordlist []string) (password string, tried int, ok bool) {
	return usm.Crack(captured, proto, wordlist)
}
