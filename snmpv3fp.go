// Package snmpv3fp is a library for SNMPv3-based device fingerprinting and
// alias resolution, reproducing Albakour, Gasser, Beverly and Smaragdakis,
// "Third Time's Not a Charm: Exploiting SNMPv3 for Router Fingerprinting"
// (ACM IMC 2021).
//
// A single unauthenticated SNMPv3 discovery packet makes any reachable
// SNMPv3 agent disclose its engine ID (a persistent, usually MAC-derived
// device identifier), its engine boots counter, and its engine time. This
// package exposes that measurement primitive and the analyses built on it:
//
//   - Probe / Scan: single-target and campaign-scale discovery probing,
//   - Validate: the ten-step response filtering pipeline (paper §4.4),
//   - ResolveAliases: grouping IPs into devices via (engine ID, boots,
//     binned last-reboot time) (paper §5), including dual-stack joins,
//   - Fingerprint: vendor inference from OUI / enterprise numbers (§6).
//
// The heavy lifting lives in internal packages; this façade re-exports the
// stable surface. See examples/ for runnable end-to-end programs and
// cmd/reproduce for the full paper evaluation against a simulated Internet.
package snmpv3fp

import (
	"net/netip"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/tracker"
	"snmpv3fp/internal/usm"
	"snmpv3fp/internal/vclock"
)

// Re-exported core types.
type (
	// Observation is one IP's discovery response metadata.
	Observation = core.Observation
	// Campaign is the per-IP view of one scan.
	Campaign = core.Campaign
	// Fingerprint is a vendor inference.
	Fingerprint = core.Fingerprint
	// Merged is one IP observed consistently across both campaigns.
	Merged = filter.Merged
	// FilterReport carries the per-step accounting of the validation
	// pipeline.
	FilterReport = filter.Report
	// AliasSet groups IPs belonging to one device.
	AliasSet = alias.Set
	// AliasVariant selects the matching rule.
	AliasVariant = alias.Variant
	// Transport carries probes and responses; implemented by UDPTransport
	// and by the netsim package's in-memory transport.
	Transport = scanner.Transport
	// TargetSpace enumerates scan targets in permuted order.
	TargetSpace = scanner.TargetSpace
	// ScanConfig tunes a campaign.
	ScanConfig = scanner.Config
	// ScanResult is a campaign's raw outcome.
	ScanResult = scanner.Result
	// ScanSnapshot is a live progress report from the sharded scan engine,
	// delivered through ScanConfig.Progress.
	ScanSnapshot = scanner.Snapshot
	// Clock abstracts time for pacing (vclock.Real or vclock.Virtual).
	Clock = vclock.Clock
	// EngineID is a classified RFC 3411 engine ID.
	EngineID = engineid.Parsed
	// Timeline is one IP's longitudinal monitoring record.
	Timeline = tracker.Timeline
	// MonitorSummary aggregates a monitored population.
	MonitorSummary = tracker.Summary
	// AuthProtocol selects HMAC-MD5-96 or HMAC-SHA-96 (USM).
	AuthProtocol = usm.AuthProtocol
)

// USM authentication protocols.
const (
	AuthMD5  = usm.AuthMD5
	AuthSHA1 = usm.AuthSHA1
)

// SNMPPort is the standard SNMP UDP port.
const SNMPPort = 161

// NewUDPTransport opens a UDP socket transport probing the given port
// (use SNMPPort for real scans).
func NewUDPTransport(port uint16) (*scanner.UDPTransport, error) {
	return scanner.NewUDPTransport(port)
}

// NewPrefixTargets builds a permuted target space over prefixes.
func NewPrefixTargets(prefixes []netip.Prefix, seed int64) (TargetSpace, error) {
	return scanner.NewPrefixSpace(prefixes, seed)
}

// NewListTargets builds a permuted target space over an explicit address
// list (e.g. an IPv6 hitlist).
func NewListTargets(addrs []netip.Addr, seed int64) (TargetSpace, error) {
	return scanner.NewListSpace(addrs, seed)
}

// Probe sends one unauthenticated SNMPv3 discovery packet to addr and
// returns the disclosed identifiers.
func Probe(tr Transport, addr netip.Addr, timeout time.Duration) (*Observation, error) {
	return core.Probe(tr, addr, timeout)
}

// Scan runs one campaign over the target space and folds the raw responses
// into per-IP observations.
func Scan(tr Transport, targets TargetSpace, cfg ScanConfig) (*Campaign, error) {
	res, err := scanner.Scan(tr, targets, cfg)
	if err != nil {
		return nil, err
	}
	return core.Collect(res), nil
}

// Validate applies the paper's ten-step filtering pipeline to two
// campaigns of the same address family, yielding the IPs with valid engine
// ID and engine time.
func Validate(scan1, scan2 *Campaign) *FilterReport {
	return filter.Run(scan1, scan2)
}

// DefaultAliasVariant is the matching rule the paper adopts (20-second
// last-reboot bins over both campaigns).
var DefaultAliasVariant = alias.Default

// ResolveAliases groups validated observations into alias sets. Passing
// the union of IPv4 and IPv6 observations performs the dual-stack join.
func ResolveAliases(valid []*Merged, v AliasVariant) []*AliasSet {
	return alias.Resolve(valid, v)
}

// FingerprintEngineID infers a device vendor from its engine ID.
func FingerprintEngineID(id []byte) Fingerprint {
	return core.FingerprintEngineID(id)
}

// ClassifyEngineID parses an engine ID into its RFC 3411 components.
func ClassifyEngineID(id []byte) EngineID {
	return engineid.Classify(id)
}

// DiscoveryProbe returns the wire bytes of one unauthenticated discovery
// request, for callers driving their own sockets.
func DiscoveryProbe(msgID, requestID int64) ([]byte, error) {
	return snmp.EncodeDiscoveryRequest(msgID, requestID)
}

// ParseDiscoveryResponse extracts the engine identifiers from a response
// datagram.
func ParseDiscoveryResponse(payload []byte) (*snmp.DiscoveryResponse, error) {
	return snmp.ParseDiscoveryResponse(payload)
}

// Track builds longitudinal per-IP timelines from an ordered sequence of
// campaigns (the Section 6.3 monitoring workflow).
func Track(campaigns []*Campaign) map[netip.Addr]*Timeline {
	return tracker.Build(campaigns)
}

// SummarizeTimelines aggregates monitored timelines into restart, churn and
// availability statistics.
func SummarizeTimelines(timelines map[netip.Addr]*Timeline) MonitorSummary {
	return tracker.Summarize(timelines)
}

// CrackUSMPassword mounts the paper's Section 8 offline dictionary attack
// against a captured authenticated SNMPv3 message: because USM keys are
// localized with the engine ID — which the message itself (and any
// discovery probe) discloses — a single capture suffices.
func CrackUSMPassword(captured []byte, proto AuthProtocol, wordlist []string) (password string, tried int, ok bool) {
	return usm.Crack(captured, proto, wordlist)
}
