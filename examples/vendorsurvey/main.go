// Vendor survey example: run an Internet-scale simulated campaign and
// estimate router vendor market share per region — the paper's Section 6
// analysis as a library user would run it.
//
//	go run ./examples/vendorsurvey
package main

import (
	"fmt"
	"log"
	"sort"

	"snmpv3fp/internal/experiments"
	"snmpv3fp/internal/netsim"
)

func main() {
	// The tiny world keeps this example fast; switch to DefaultConfig for
	// the full-scale population cmd/reproduce uses.
	env, err := experiments.NewEnv(netsim.TinyConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	// Count routers per vendor per region.
	type key struct {
		region netsim.Region
		vendor string
	}
	counts := map[key]int{}
	regionTotals := map[netsim.Region]int{}
	for _, s := range env.RouterSets {
		region, ok := env.SetRegion(s)
		if !ok {
			continue
		}
		vendor := experiments.SetVendor(s).VendorLabel()
		counts[key{region, vendor}]++
		regionTotals[region]++
	}

	fmt.Printf("fingerprinted %d routers across %d alias sets\n\n",
		len(env.RouterSets), len(env.CombinedSets))
	for _, region := range netsim.AllRegions {
		total := regionTotals[region]
		if total == 0 {
			continue
		}
		type share struct {
			vendor string
			n      int
		}
		var shares []share
		for k, n := range counts {
			if k.region == region {
				shares = append(shares, share{k.vendor, n})
			}
		}
		sort.Slice(shares, func(i, j int) bool {
			if shares[i].n != shares[j].n {
				return shares[i].n > shares[j].n
			}
			return shares[i].vendor < shares[j].vendor
		})
		fmt.Printf("%s (%d routers):\n", region, total)
		for i, sh := range shares {
			if i == 4 {
				break
			}
			fmt.Printf("  %-12s %5.1f%%\n", sh.vendor, 100*float64(sh.n)/float64(total))
		}
	}
}
