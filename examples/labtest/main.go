// Lab test example: reproduce the paper's Section 6.2.1 finding over real
// loopback UDP — configuring only an SNMPv2c community string implicitly
// enables unauthenticated SNMPv3 discovery on Cisco IOS / IOS XR and
// (per-interface) Juniper Junos.
//
//	go run ./examples/labtest
package main

import (
	"fmt"
	"log"

	"snmpv3fp/internal/experiments"
)

func main() {
	res, err := experiments.Section621()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println()
	fmt.Println("Note how a device that only had `snmp-server community ... RO`")
	fmt.Println("configured answers the unauthenticated SNMPv3 query with its")
	fmt.Println("MAC-derived engine ID — operators enabling v2c may be unaware")
	fmt.Println("they are exposing a persistent device identifier.")
}
