// Monitoring example: the Section 6.3 follow-up workflow through the
// public API — repeated campaigns against the same population, tracked
// into per-device reboot/availability timelines.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

func main() {
	w := netsim.Generate(netsim.TinyConfig(21))
	day := 24 * time.Hour

	scan := func(at time.Duration, seed int64) *snmpv3fp.Campaign {
		w.Clock.Set(w.Cfg.StartTime.Add(at))
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), seed)
		if err != nil {
			log.Fatal(err)
		}
		c, err := snmpv3fp.Scan(w.NewTransport(), targets, snmpv3fp.ScanConfig{
			Rate: 50000, Clock: w.Clock, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Six weekly campaigns.
	var campaigns []*snmpv3fp.Campaign
	for week := 0; week < 6; week++ {
		at := time.Duration(15+7*week) * day
		c := scan(at, int64(100+week))
		campaigns = append(campaigns, c)
		fmt.Printf("campaign %d (+%dd): %d responsive IPs\n", week+1, 15+7*week, len(c.ByIP))
	}

	timelines := snmpv3fp.Track(campaigns)
	sum := snmpv3fp.SummarizeTimelines(timelines)
	fmt.Printf("\ntracked %d IPs over %d campaigns\n", sum.Tracked, len(campaigns))
	fmt.Printf("  restart events:     %d (%d distinct IPs)\n", sum.RebootEvents, sum.RebootedIPs)
	fmt.Printf("  identity changes:   %d\n", sum.IdentityChanges)
	fmt.Printf("  availability gaps:  %d\n", sum.Gaps)
	fmt.Printf("  mean availability:  %.1f%%\n", sum.MeanAvailability*100)

	// The flakiest devices.
	type flaky struct {
		ip      string
		reboots int
	}
	var worst []flaky
	for ip, tl := range timelines {
		if n := tl.Reboots(); n > 0 {
			worst = append(worst, flaky{ip.String(), n})
		}
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].reboots != worst[j].reboots {
			return worst[i].reboots > worst[j].reboots
		}
		return worst[i].ip < worst[j].ip
	})
	fmt.Println("\nmost frequently restarting devices:")
	for i, f := range worst {
		if i == 5 {
			break
		}
		fmt.Printf("  %-18s %d restarts\n", f.ip, f.reboots)
	}
}
