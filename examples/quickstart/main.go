// Quickstart: probe one SNMPv3 agent over real UDP and print the three
// identifiers the paper exploits — engine ID, engine boots, engine time —
// plus the derived last-reboot time and vendor fingerprint.
//
// The example starts its own lab agent (a Cisco IOS model) on loopback, so
// it is fully self-contained:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
)

func main() {
	// A Cisco IOS model with an SNMPv2c community configured — which, as
	// the paper's lab test shows, implicitly enables SNMPv3 discovery.
	agent, err := labsim.Start(labsim.Config{
		OS:        labsim.CiscoIOS,
		Community: "pass123",
		EngineID:  engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 0x01, 0x02, 0x03}),
		Boots:     148,
		BootTime:  time.Now().Add(-116 * 24 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()
	fmt.Printf("started %s\n\n", agent)

	// Probe it with a single unauthenticated discovery packet.
	tr, err := snmpv3fp.NewUDPTransport(agent.Addr().Port())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	obs, err := snmpv3fp.Probe(tr, agent.Addr().Addr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("probed %v — no credentials supplied, yet it disclosed:\n", obs.IP)
	fmt.Printf("  engine ID:    0x%x\n", obs.EngineID)
	fmt.Printf("  engine boots: %d\n", obs.EngineBoots)
	fmt.Printf("  engine time:  %d s\n", obs.EngineTime)
	fmt.Printf("  last reboot:  %s\n", obs.LastReboot().Format(time.RFC3339))

	id := snmpv3fp.ClassifyEngineID(obs.EngineID)
	fp := snmpv3fp.FingerprintEngineID(obs.EngineID)
	fmt.Printf("  format:       %s (enterprise %d = %s)\n", id.Format, id.Enterprise, id.EnterpriseName())
	fmt.Printf("  vendor:       %s (via %s)\n", fp.VendorLabel(), fp.Source)
}
