// Security example: the paper's Section 8 findings, end to end over real
// loopback UDP.
//
//  1. One unauthenticated discovery packet extracts the persistent engine
//     ID from an agent — no credentials needed.
//
//  2. Because USM keys are localized with exactly that engine ID, a single
//     captured authenticated message suffices for an offline dictionary
//     attack on the SNMPv3 password.
//
//     go run ./examples/security
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/usm"
)

func main() {
	// A router with SNMPv3 configured: an authenticated user with a weak
	// password, as operators commonly deploy.
	user := labsim.V3User{Name: "netops", Protocol: usm.AuthSHA1, Password: "cisco123"}
	agent, err := labsim.Start(labsim.Config{
		OS:        labsim.CiscoIOS,
		Community: "private",
		User:      &user,
		EngineID:  engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 0xde, 0xad, 0x01}),
		Boots:     42,
		BootTime:  time.Now().Add(-30 * 24 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	// Step 1: unauthenticated discovery — the engine ID falls out.
	tr, err := snmpv3fp.NewUDPTransport(agent.Addr().Port())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	obs, err := snmpv3fp.Probe(tr, agent.Addr().Addr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1 — discovery without credentials:\n")
	fmt.Printf("  engine ID 0x%x (persistent; %s)\n",
		obs.EngineID, snmpv3fp.FingerprintEngineID(obs.EngineID).VendorLabel())

	// Step 2: a legitimate manager polls the device; we "capture" one of
	// its authenticated requests off the wire.
	captured, err := labsim.NewAuthenticatedGet(user, obs.EngineID, obs.EngineBoots, obs.EngineTime,
		1001, snmp.OIDSysDescr)
	if err != nil {
		log.Fatal(err)
	}
	// (Confirm the agent really accepts it — this is live traffic.)
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(agent.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.Write(captured)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 2048)
	if n, err := conn.Read(buf); err == nil {
		if msg, err := snmp.DecodeV3(buf[:n]); err == nil && msg.ScopedPDU.PDU != nil &&
			msg.ScopedPDU.PDU.Type == snmp.PDUGetResponse {
			fmt.Printf("step 2 — captured one authenticated request (%d bytes); agent answers it\n",
				len(captured))
		}
	}

	// Step 3: offline dictionary attack. The engine ID inside the captured
	// message is all that key localization needs.
	wordlist := []string{
		"password", "123456", "letmein", "admin", "snmp", "monitor",
		"public", "private", "cisco", "cisco123", "juniper", "secret",
	}
	start := time.Now()
	pw, tried, ok := usm.Crack(captured, usm.AuthSHA1, wordlist)
	elapsed := time.Since(start)
	if !ok {
		log.Fatal("crack failed (password not in wordlist)")
	}
	fmt.Printf("step 3 — offline brute force: recovered password %q after %d candidates in %v\n",
		pw, tried, elapsed.Round(time.Millisecond))
	fmt.Println("\nmitigations (paper §8): don't derive engine IDs from MACs, restrict")
	fmt.Println("management-plane access, and use strong SNMPv3 passphrases.")
}
