// Alias resolution example: scan a small simulated ISP twice, validate the
// responses, and resolve which IPv4 and IPv6 addresses belong to the same
// routers — including dual-stack aliases, the capability no prior
// technique offered (paper Section 5).
//
//	go run ./examples/aliasres
package main

import (
	"fmt"
	"log"
	"time"

	"snmpv3fp"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

func main() {
	w := netsim.Generate(netsim.TinyConfig(42))
	day := 24 * time.Hour

	scan := func(at time.Duration, seed int64) *snmpv3fp.Campaign {
		w.Clock.Set(w.Cfg.StartTime.Add(at))
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), seed)
		if err != nil {
			log.Fatal(err)
		}
		c, err := snmpv3fp.Scan(w.NewTransport(), targets, snmpv3fp.ScanConfig{
			Rate: 5000, Clock: w.Clock, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	scanV6 := func(at time.Duration, seed int64) *snmpv3fp.Campaign {
		w.Clock.Set(w.Cfg.StartTime.Add(at))
		w.BeginScan()
		targets, err := scanner.NewListSpace(w.HitlistV6(), seed)
		if err != nil {
			log.Fatal(err)
		}
		c, err := snmpv3fp.Scan(w.NewTransport(), targets, snmpv3fp.ScanConfig{
			Rate: 20000, Clock: w.Clock, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Two campaigns per family, days apart, exactly as the paper runs.
	v61, v62 := scanV6(12*day, 11), scanV6(13*day, 12)
	v41, v42 := scan(15*day, 13), scan(21*day, 14)
	fmt.Printf("IPv4 campaigns: %d / %d responsive IPs\n", len(v41.ByIP), len(v42.ByIP))
	fmt.Printf("IPv6 campaigns: %d / %d responsive IPs\n", len(v61.ByIP), len(v62.ByIP))

	// Validate each family, then resolve aliases over the union.
	rep4 := snmpv3fp.Validate(v41, v42)
	rep6 := snmpv3fp.Validate(v61, v62)
	fmt.Printf("validated: %d IPv4 + %d IPv6 IPs with consistent identifiers\n",
		len(rep4.Valid), len(rep6.Valid))

	combined := append(append([]*snmpv3fp.Merged{}, rep4.Valid...), rep6.Valid...)
	sets := snmpv3fp.ResolveAliases(combined, snmpv3fp.DefaultAliasVariant)

	var dual int
	fmt.Println("\nlargest dual-stack routers:")
	for _, s := range sets {
		if s.Family().String() != "dual-stack" {
			continue
		}
		dual++
		if dual <= 3 {
			fp := snmpv3fp.FingerprintEngineID(s.Members[0].EngineID)
			fmt.Printf("  device %s (%d interfaces): ", fp.VendorLabel(), s.Size())
			for i, m := range s.Members {
				if i == 6 {
					fmt.Printf("… ")
					break
				}
				fmt.Printf("%v ", m.IP)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d alias sets total, %d dual-stack\n", len(sets), dual)
}
