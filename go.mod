module snmpv3fp

go 1.22
