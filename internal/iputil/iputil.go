// Package iputil provides IPv4/IPv6 address helpers shared by the scanner,
// the simulator, and the filtering pipeline: routability checks per the
// IANA special-purpose registries, and compact conversions between
// netip.Addr and integer forms used by the permutation generator.
package iputil

import (
	"encoding/binary"
	"net/netip"
)

// v4Special lists the IPv4 special-purpose prefixes (RFC 6890 and the IANA
// special-purpose address registry) that the paper's "unroutable IPv4 engine
// IDs" filter treats as non-unique.
var v4Special = []netip.Prefix{
	netip.MustParsePrefix("0.0.0.0/8"),       // "this network"
	netip.MustParsePrefix("10.0.0.0/8"),      // private
	netip.MustParsePrefix("100.64.0.0/10"),   // CGN shared space
	netip.MustParsePrefix("127.0.0.0/8"),     // loopback
	netip.MustParsePrefix("169.254.0.0/16"),  // link-local
	netip.MustParsePrefix("172.16.0.0/12"),   // private
	netip.MustParsePrefix("192.0.0.0/24"),    // IETF protocol assignments
	netip.MustParsePrefix("192.0.2.0/24"),    // TEST-NET-1
	netip.MustParsePrefix("192.88.99.0/24"),  // 6to4 relay anycast
	netip.MustParsePrefix("192.168.0.0/16"),  // private
	netip.MustParsePrefix("198.18.0.0/15"),   // benchmarking
	netip.MustParsePrefix("198.51.100.0/24"), // TEST-NET-2
	netip.MustParsePrefix("203.0.113.0/24"),  // TEST-NET-3
	netip.MustParsePrefix("224.0.0.0/4"),     // multicast
	netip.MustParsePrefix("240.0.0.0/4"),     // reserved (incl. broadcast)
}

// v6Special lists IPv6 prefixes excluded from routable space.
var v6Special = []netip.Prefix{
	netip.MustParsePrefix("::/128"),        // unspecified
	netip.MustParsePrefix("::1/128"),       // loopback
	netip.MustParsePrefix("::ffff:0:0/96"), // IPv4-mapped
	netip.MustParsePrefix("100::/64"),      // discard-only
	netip.MustParsePrefix("2001:db8::/32"), // documentation
	netip.MustParsePrefix("fc00::/7"),      // unique local
	netip.MustParsePrefix("fe80::/10"),     // link-local
	netip.MustParsePrefix("ff00::/8"),      // multicast
}

// IsRoutable reports whether addr is globally routable (not in a
// special-purpose registry block). IPv4-mapped IPv6 addresses are unwrapped
// first.
func IsRoutable(addr netip.Addr) bool {
	if !addr.IsValid() {
		return false
	}
	addr = addr.Unmap()
	if addr.Is4() {
		for _, p := range v4Special {
			if p.Contains(addr) {
				return false
			}
		}
		return true
	}
	for _, p := range v6Special {
		if p.Contains(addr) {
			return false
		}
	}
	return true
}

// IsRoutableV4Bytes reports whether the 4 raw octets form a routable IPv4
// address; it is the check applied to IPv4-format engine ID bodies.
func IsRoutableV4Bytes(b []byte) bool {
	if len(b) != 4 {
		return false
	}
	return IsRoutable(netip.AddrFrom4([4]byte{b[0], b[1], b[2], b[3]}))
}

// V4ToUint converts an IPv4 address to its 32-bit integer form.
func V4ToUint(addr netip.Addr) uint32 {
	b := addr.Unmap().As4()
	return binary.BigEndian.Uint32(b[:])
}

// UintToV4 converts a 32-bit integer to an IPv4 netip.Addr.
func UintToV4(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// PrefixSize returns the number of addresses in the prefix (capped at 2^62
// to avoid overflow for very short IPv6 prefixes).
func PrefixSize(p netip.Prefix) uint64 {
	hostBits := p.Addr().BitLen() - p.Bits()
	if hostBits >= 62 {
		return 1 << 62
	}
	return 1 << uint(hostBits)
}

// NthAddr returns the i-th address inside prefix p (0 = network address).
// It supports IPv4 prefixes and IPv6 prefixes whose host part fits 64 bits.
func NthAddr(p netip.Prefix, i uint64) netip.Addr {
	if p.Addr().Is4() {
		base := V4ToUint(p.Addr())
		return UintToV4(base + uint32(i))
	}
	b := p.Addr().As16()
	low := binary.BigEndian.Uint64(b[8:])
	binary.BigEndian.PutUint64(b[8:], low+i)
	return netip.AddrFrom16(b)
}
