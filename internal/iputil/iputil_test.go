package iputil

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestIsRoutableV4(t *testing.T) {
	routable := []string{"8.8.8.8", "1.1.1.1", "193.0.14.129", "223.255.255.1"}
	for _, s := range routable {
		if !IsRoutable(netip.MustParseAddr(s)) {
			t.Errorf("%s should be routable", s)
		}
	}
	unroutable := []string{
		"0.1.2.3", "10.0.0.1", "100.64.1.1", "127.0.0.1", "169.254.1.1",
		"172.16.0.1", "172.31.255.255", "192.0.0.1", "192.0.2.1",
		"192.88.99.1", "192.168.1.1", "198.18.0.1", "198.51.100.1",
		"203.0.113.1", "224.0.0.1", "239.255.255.255", "240.0.0.1",
		"255.255.255.255",
	}
	for _, s := range unroutable {
		if IsRoutable(netip.MustParseAddr(s)) {
			t.Errorf("%s should be unroutable", s)
		}
	}
}

func TestIsRoutableV6(t *testing.T) {
	routable := []string{"2001:4860:4860::8888", "2a00:1450::1", "2607:f8b0::1"}
	for _, s := range routable {
		if !IsRoutable(netip.MustParseAddr(s)) {
			t.Errorf("%s should be routable", s)
		}
	}
	unroutable := []string{"::", "::1", "::ffff:10.0.0.1", "100::1",
		"2001:db8::1", "fc00::1", "fd12::1", "fe80::1", "ff02::1"}
	for _, s := range unroutable {
		if IsRoutable(netip.MustParseAddr(s)) {
			t.Errorf("%s should be unroutable", s)
		}
	}
}

func TestIsRoutableInvalid(t *testing.T) {
	if IsRoutable(netip.Addr{}) {
		t.Error("zero Addr should be unroutable")
	}
}

func TestIsRoutableV4Bytes(t *testing.T) {
	if !IsRoutableV4Bytes([]byte{8, 8, 8, 8}) {
		t.Error("8.8.8.8 bytes should be routable")
	}
	if IsRoutableV4Bytes([]byte{192, 168, 0, 1}) {
		t.Error("192.168.0.1 bytes should be unroutable")
	}
	if IsRoutableV4Bytes([]byte{8, 8, 8}) || IsRoutableV4Bytes(nil) {
		t.Error("wrong-length byte slices should be unroutable")
	}
}

func TestV4UintRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return V4ToUint(UintToV4(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if V4ToUint(netip.MustParseAddr("1.2.3.4")) != 0x01020304 {
		t.Error("V4ToUint endianness wrong")
	}
	if UintToV4(0xC0000201) != netip.MustParseAddr("192.0.2.1") {
		t.Error("UintToV4 wrong")
	}
}

func TestPrefixSize(t *testing.T) {
	cases := []struct {
		p    string
		want uint64
	}{
		{"10.0.0.0/8", 1 << 24},
		{"192.0.2.0/24", 256},
		{"192.0.2.1/32", 1},
		{"2001:db8::/120", 256},
	}
	for _, c := range cases {
		if got := PrefixSize(netip.MustParsePrefix(c.p)); got != c.want {
			t.Errorf("PrefixSize(%s) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := PrefixSize(netip.MustParsePrefix("2001::/16")); got != 1<<62 {
		t.Errorf("huge prefix should cap at 2^62, got %d", got)
	}
}

func TestNthAddr(t *testing.T) {
	p := netip.MustParsePrefix("192.0.2.0/24")
	if NthAddr(p, 0) != netip.MustParseAddr("192.0.2.0") {
		t.Error("NthAddr 0")
	}
	if NthAddr(p, 255) != netip.MustParseAddr("192.0.2.255") {
		t.Error("NthAddr 255")
	}
	p6 := netip.MustParsePrefix("2001:db8::/64")
	if NthAddr(p6, 1) != netip.MustParseAddr("2001:db8::1") {
		t.Error("NthAddr v6")
	}
	if NthAddr(p6, 0x10000) != netip.MustParseAddr("2001:db8::1:0") {
		t.Error("NthAddr v6 carry")
	}
}
