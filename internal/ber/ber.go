// Package ber implements the subset of ASN.1 Basic Encoding Rules used by
// SNMP (RFC 1157, RFC 3416, RFC 3417).
//
// SNMP restricts itself to definite-length, primitive-or-constructed BER with
// a small universal type vocabulary (INTEGER, OCTET STRING, NULL, OBJECT
// IDENTIFIER, SEQUENCE) plus application-class types (IpAddress, Counter32,
// Gauge32/Unsigned32, TimeTicks, Opaque, Counter64) and context-class tagged
// PDUs. The standard library's encoding/asn1 cannot express SNMP's implicit
// application tags or its context-tagged CHOICE PDUs, so this package
// implements the codec from scratch.
//
// The package is split into a low-level token API (EncodeTLV, DecodeTLV) and
// a Builder/Parser pair that higher layers use to assemble and walk nested
// SEQUENCEs without intermediate allocations.
package ber

import (
	"errors"
	"fmt"
	"math"
)

// Class is the BER tag class (top two bits of the identifier octet).
type Class byte

// BER tag classes.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
	ClassPrivate     Class = 0xC0
)

// Tag identifiers used by SNMP. The value includes the class bits and, for
// constructed types, the constructed bit (0x20).
const (
	TagInteger        = 0x02
	TagOctetString    = 0x04
	TagNull           = 0x05
	TagOID            = 0x06
	TagSequence       = 0x30 // universal, constructed
	TagIPAddress      = 0x40 // application 0, primitive
	TagCounter32      = 0x41 // application 1
	TagGauge32        = 0x42 // application 2 (a.k.a. Unsigned32)
	TagTimeTicks      = 0x43 // application 3
	TagOpaque         = 0x44 // application 4
	TagCounter64      = 0x46 // application 6
	TagNoSuchObject   = 0x80 // context 0, primitive (v2 exception)
	TagNoSuchInstance = 0x81 // context 1, primitive
	TagEndOfMibView   = 0x82 // context 2, primitive
)

// Errors returned by the decoder.
var (
	ErrTruncated     = errors.New("ber: truncated input")
	ErrIndefinite    = errors.New("ber: indefinite length not allowed in SNMP")
	ErrLengthTooLong = errors.New("ber: length exceeds implementation limit")
	ErrBadTag        = errors.New("ber: unexpected tag")
	ErrIntegerRange  = errors.New("ber: integer out of range")
	ErrTrailingData  = errors.New("ber: trailing data after value")
)

// maxLen bounds a single TLV body. SNMP messages are UDP datagrams; 1 MiB is
// far beyond any legitimate message and keeps hostile inputs from driving
// huge allocations.
const maxLen = 1 << 20

// TLV is one decoded tag-length-value token. Value aliases the input buffer;
// callers must copy it if they retain it past the buffer's lifetime.
type TLV struct {
	Tag   byte
	Value []byte
}

// Constructed reports whether the TLV has the constructed bit set.
func (t TLV) Constructed() bool { return t.Tag&0x20 != 0 }

// Class returns the tag class bits.
func (t TLV) Class() Class { return Class(t.Tag & 0xC0) }

// DecodeTLV decodes one TLV from the front of buf and returns it together
// with the remaining bytes.
func DecodeTLV(buf []byte) (TLV, []byte, error) {
	if len(buf) < 2 {
		return TLV{}, nil, ErrTruncated
	}
	tag := buf[0]
	if tag&0x1F == 0x1F {
		return TLV{}, nil, fmt.Errorf("ber: high-tag-number form unsupported (tag 0x%02x)", tag)
	}
	length, n, err := decodeLength(buf[1:])
	if err != nil {
		return TLV{}, nil, err
	}
	rest := buf[1+n:]
	if length > len(rest) {
		return TLV{}, nil, ErrTruncated
	}
	return TLV{Tag: tag, Value: rest[:length]}, rest[length:], nil
}

// decodeLength decodes a definite-length octet sequence, returning the length
// and the number of octets consumed.
func decodeLength(buf []byte) (int, int, error) {
	if len(buf) == 0 {
		return 0, 0, ErrTruncated
	}
	b := buf[0]
	if b < 0x80 {
		return int(b), 1, nil
	}
	if b == 0x80 {
		return 0, 0, ErrIndefinite
	}
	n := int(b & 0x7F)
	if n > 4 {
		return 0, 0, ErrLengthTooLong
	}
	if len(buf) < 1+n {
		return 0, 0, ErrTruncated
	}
	var length uint64
	for _, c := range buf[1 : 1+n] {
		length = length<<8 | uint64(c)
	}
	if length > maxLen {
		return 0, 0, ErrLengthTooLong
	}
	return int(length), 1 + n, nil
}

// AppendLength appends the BER definite-length encoding of n to dst.
func AppendLength(dst []byte, n int) []byte {
	switch {
	case n < 0x80:
		return append(dst, byte(n))
	case n <= 0xFF:
		return append(dst, 0x81, byte(n))
	case n <= 0xFFFF:
		return append(dst, 0x82, byte(n>>8), byte(n))
	case n <= 0xFFFFFF:
		return append(dst, 0x83, byte(n>>16), byte(n>>8), byte(n))
	default:
		return append(dst, 0x84, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

// LengthSize returns the number of octets AppendLength will emit for n.
// Together with IntSize and UintSize it lets single-pass encoders (the
// discovery-probe and report templates in internal/snmp) compute every
// nested SEQUENCE length arithmetically instead of back-patching through a
// Builder.
func LengthSize(n int) int { return lengthSize(n) }

// TLVSize returns the encoded size of a TLV with an n-octet body: one
// identifier octet, the definite-length octets, and the body.
func TLVSize(n int) int { return 1 + lengthSize(n) + n }

// lengthSize returns the number of octets AppendLength will emit for n.
func lengthSize(n int) int {
	switch {
	case n < 0x80:
		return 1
	case n <= 0xFF:
		return 2
	case n <= 0xFFFF:
		return 3
	case n <= 0xFFFFFF:
		return 4
	default:
		return 5
	}
}

// EncodeTLV appends tag, length and value to dst.
func EncodeTLV(dst []byte, tag byte, value []byte) []byte {
	dst = append(dst, tag)
	dst = AppendLength(dst, len(value))
	return append(dst, value...)
}

// AppendInt appends a two's-complement INTEGER body (no tag/length) to dst
// using the minimal number of octets.
func AppendInt(dst []byte, v int64) []byte {
	n := intSize(v)
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

func intSize(v int64) int {
	n := 1
	for v > 0x7F || v < -0x80 {
		v >>= 8
		n++
	}
	return n
}

// IntSize returns the number of body octets AppendInt emits for v.
func IntSize(v int64) int { return intSize(v) }

// UintSize returns the number of body octets AppendUint emits for v,
// including the 0x00 pad for values whose leading octet has the top bit set.
func UintSize(v uint64) int {
	n := 1
	for x := v; x > 0xFF; x >>= 8 {
		n++
	}
	if v>>(8*uint(n-1))&0x80 != 0 {
		n++
	}
	return n
}

// ParseInt decodes a two's-complement INTEGER body.
func ParseInt(body []byte) (int64, error) {
	if len(body) == 0 {
		return 0, ErrTruncated
	}
	if len(body) > 8 {
		return 0, ErrIntegerRange
	}
	// Reject non-minimal encodings longer than one octet where the first
	// nine bits are all-zero or all-one; SNMP encoders must be minimal, but
	// we accept them leniently when decoding hostile input is not a goal.
	v := int64(int8(body[0])) // sign-extend
	for _, b := range body[1:] {
		v = v<<8 | int64(b)
	}
	return v, nil
}

// AppendUint appends an unsigned INTEGER body. Values with the top bit set in
// their leading octet gain a 0x00 pad so they decode as positive.
func AppendUint(dst []byte, v uint64) []byte {
	n := 1
	for x := v; x > 0xFF; x >>= 8 {
		n++
	}
	if v>>(8*uint(n-1))&0x80 != 0 {
		dst = append(dst, 0x00)
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// ParseUint decodes an unsigned INTEGER body (Counter32, Gauge32, TimeTicks,
// Counter64). Leading 0x00 pads are accepted — all of them, not just the
// single pad a minimal encoder emits: lenient agents in the wild pad freely,
// and the body length is already bounded by the TLV length cap, so the strip
// loop cannot run away.
func ParseUint(body []byte) (uint64, error) {
	if len(body) == 0 {
		return 0, ErrTruncated
	}
	padded := false
	for len(body) > 1 && body[0] == 0x00 {
		body = body[1:]
		padded = true
	}
	if !padded && body[0]&0x80 != 0 {
		return 0, ErrIntegerRange
	}
	if len(body) > 8 {
		return 0, ErrIntegerRange
	}
	var v uint64
	for _, b := range body {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// AppendOID appends the encoded body of an OBJECT IDENTIFIER to dst.
// The OID must have at least two arcs, with oid[0] < 3 and oid[1] < 40 for
// the first two arcs' combined octet.
func AppendOID(dst []byte, oid []uint32) ([]byte, error) {
	if len(oid) < 2 {
		return dst, fmt.Errorf("ber: OID needs >= 2 arcs, got %d", len(oid))
	}
	if oid[0] > 2 || (oid[0] < 2 && oid[1] >= 40) {
		return dst, fmt.Errorf("ber: invalid OID leading arcs %d.%d", oid[0], oid[1])
	}
	dst = appendBase128(dst, uint64(oid[0])*40+uint64(oid[1]))
	for _, arc := range oid[2:] {
		dst = appendBase128(dst, uint64(arc))
	}
	return dst, nil
}

func appendBase128(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, 0)
	}
	var tmp [10]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte(v&0x7F) | 0x80
		v >>= 7
	}
	tmp[len(tmp)-1] &^= 0x80
	return append(dst, tmp[i:]...)
}

// ParseOID decodes an OBJECT IDENTIFIER body into its arcs.
func ParseOID(body []byte) ([]uint32, error) {
	if len(body) == 0 {
		return nil, ErrTruncated
	}
	return ParseOIDInto(make([]uint32, 0, len(body)+1), body)
}

// ParseOIDInto decodes an OBJECT IDENTIFIER body into dst, reusing its
// capacity (dst is truncated first). It is the allocation-free variant of
// ParseOID for hot parse paths that walk many OIDs with one scratch slice;
// the returned slice is dst, possibly grown.
func ParseOIDInto(dst []uint32, body []byte) ([]uint32, error) {
	if len(body) == 0 {
		return nil, ErrTruncated
	}
	oid := dst[:0]
	var v uint64
	first := true
	for i, b := range body {
		v = v<<7 | uint64(b&0x7F)
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("ber: OID arc overflow at octet %d", i)
		}
		if b&0x80 != 0 {
			continue
		}
		if first {
			first = false
			switch {
			case v < 40:
				oid = append(oid, 0, uint32(v))
			case v < 80:
				oid = append(oid, 1, uint32(v-40))
			default:
				oid = append(oid, 2, uint32(v-80))
			}
		} else {
			oid = append(oid, uint32(v))
		}
		v = 0
	}
	if body[len(body)-1]&0x80 != 0 {
		return nil, ErrTruncated
	}
	return oid, nil
}
