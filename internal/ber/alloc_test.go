package ber

import "testing"

// The BER token layer is the innermost ring of the probe/parse hot path:
// these tests pin its decode primitives at zero allocations per operation,
// so a regression shows up in `go test ./...` long before it shows up in a
// campaign's B/op.

// assertZeroAllocs runs f through testing.AllocsPerRun and fails on any
// allocation.
func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestAllocFreeDecodeTLV(t *testing.T) {
	msg := EncodeTLV(nil, TagSequence, EncodeTLV(nil, TagOctetString, []byte("engine-id")))
	assertZeroAllocs(t, "DecodeTLV walk", func() {
		tlv, rest, err := DecodeTLV(msg)
		if err != nil || len(rest) != 0 {
			t.Fatalf("DecodeTLV: %v rest=%d", err, len(rest))
		}
		inner, _, err := DecodeTLV(tlv.Value)
		if err != nil || inner.Tag != TagOctetString {
			t.Fatalf("inner DecodeTLV: %v tag=%#x", err, inner.Tag)
		}
	})
}

func TestAllocFreeParseInt(t *testing.T) {
	bodies := [][]byte{
		AppendInt(nil, 0),
		AppendInt(nil, 127),
		AppendInt(nil, 128),
		AppendInt(nil, 32767),
		AppendInt(nil, -32769),
		AppendInt(nil, 1<<40),
	}
	assertZeroAllocs(t, "ParseInt", func() {
		for _, b := range bodies {
			if _, err := ParseInt(b); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestAllocFreeParseUint(t *testing.T) {
	bodies := [][]byte{
		AppendUint(nil, 0),
		AppendUint(nil, 255),
		AppendUint(nil, 1<<31),
		AppendUint(nil, 1<<63),
	}
	assertZeroAllocs(t, "ParseUint", func() {
		for _, b := range bodies {
			if _, err := ParseUint(b); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestAllocFreeParseOIDInto(t *testing.T) {
	oids := [][]uint32{
		{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0},
		{1, 3, 6, 1, 2, 1, 1, 1, 0},
		{2, 999, 1<<31 - 1},
	}
	bodies := make([][]byte, len(oids))
	for i, oid := range oids {
		body, err := AppendOID(nil, oid)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = body
	}
	scratch := make([]uint32, 0, 32)
	assertZeroAllocs(t, "ParseOIDInto", func() {
		for i, b := range bodies {
			got, err := ParseOIDInto(scratch, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(oids[i]) {
				t.Fatalf("oid %d: %d arcs, want %d", i, len(got), len(oids[i]))
			}
		}
	})
}

// TestParseOIDIntoMatchesParseOID pins the refactored shared implementation:
// both entry points must agree arc-for-arc and error-for-error.
func TestParseOIDIntoMatchesParseOID(t *testing.T) {
	cases := [][]byte{
		{0x2B, 0x06, 0x01},
		{0x2B},
		{},
		{0x80},       // dangling continuation
		{0xFF, 0xFF}, // dangling continuation
		{0x2B, 0x86, 0x48, 0x01},
	}
	for _, body := range cases {
		a, errA := ParseOID(body)
		b, errB := ParseOIDInto(nil, body)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%x: ParseOID err=%v, ParseOIDInto err=%v", body, errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("%x: arc counts differ: %v vs %v", body, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%x: arc %d differs: %v vs %v", body, i, a, b)
			}
		}
	}
}

func TestSizeHelpers(t *testing.T) {
	for _, v := range []int64{0, 1, 127, 128, 255, 256, 32767, 32768, -1, -128, -129, -32768, -32769, 1 << 50} {
		if got, want := IntSize(v), len(AppendInt(nil, v)); got != want {
			t.Errorf("IntSize(%d) = %d, want %d", v, got, want)
		}
	}
	for _, v := range []uint64{0, 1, 127, 128, 255, 256, 1 << 31, 1 << 63} {
		if got, want := UintSize(v), len(AppendUint(nil, v)); got != want {
			t.Errorf("UintSize(%d) = %d, want %d", v, got, want)
		}
	}
	for _, n := range []int{0, 1, 127, 128, 255, 256, 65535, 65536, 1 << 20} {
		if got, want := LengthSize(n), len(AppendLength(nil, n)); got != want {
			t.Errorf("LengthSize(%d) = %d, want %d", n, got, want)
		}
		if got, want := TLVSize(n), len(EncodeTLV(nil, TagOctetString, make([]byte, n))); got != want {
			t.Errorf("TLVSize(%d) = %d, want %d", n, got, want)
		}
	}
}
