package ber

import "fmt"

// Builder incrementally assembles a BER message. Nested constructed types are
// opened with Begin and closed with End; lengths are back-patched when the
// container closes, so the message is produced in a single forward pass over
// one growable buffer.
//
// The zero value is ready to use.
type Builder struct {
	buf   []byte
	marks []int // offsets of pending length placeholders
	err   error
}

// NewBuilder returns a Builder with capacity preallocated for a typical SNMP
// message.
func NewBuilder() *Builder {
	return &Builder{buf: make([]byte, 0, 256)}
}

// Err returns the first error encountered while building, or nil.
func (b *Builder) Err() error { return b.err }

// Bytes finalizes the message and returns the encoded bytes. It is an error
// to call Bytes with unclosed containers.
func (b *Builder) Bytes() ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.marks) != 0 {
		return nil, fmt.Errorf("ber: %d unclosed container(s)", len(b.marks))
	}
	return b.buf, nil
}

// Begin opens a constructed type with the given tag. Each Begin must be
// paired with an End.
func (b *Builder) Begin(tag byte) *Builder {
	if b.err != nil {
		return b
	}
	b.buf = append(b.buf, tag)
	b.marks = append(b.marks, len(b.buf))
	// Reserve one octet; End shifts the body if the final length needs more.
	b.buf = append(b.buf, 0x00)
	return b
}

// End closes the most recently opened container, back-patching its length.
func (b *Builder) End() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.marks) == 0 {
		b.err = fmt.Errorf("ber: End without Begin")
		return b
	}
	mark := b.marks[len(b.marks)-1]
	b.marks = b.marks[:len(b.marks)-1]
	bodyLen := len(b.buf) - mark - 1
	need := lengthSize(bodyLen)
	if need > 1 {
		// Grow and shift the body right to make room for the longer length.
		b.buf = append(b.buf, make([]byte, need-1)...)
		copy(b.buf[mark+need:], b.buf[mark+1:])
	}
	var tmp [5]byte
	enc := AppendLength(tmp[:0], bodyLen)
	copy(b.buf[mark:], enc)
	return b
}

// Int appends an INTEGER.
func (b *Builder) Int(v int64) *Builder {
	if b.err != nil {
		return b
	}
	b.buf = append(b.buf, TagInteger)
	b.buf = AppendLength(b.buf, intSize(v))
	b.buf = AppendInt(b.buf, v)
	return b
}

// Uint appends an unsigned value with the given application tag
// (Counter32, Gauge32, TimeTicks, Counter64).
func (b *Builder) Uint(tag byte, v uint64) *Builder {
	if b.err != nil {
		return b
	}
	var tmp [9]byte
	body := AppendUint(tmp[:0], v)
	b.buf = EncodeTLV(b.buf, tag, body)
	return b
}

// OctetString appends an OCTET STRING.
func (b *Builder) OctetString(v []byte) *Builder {
	if b.err != nil {
		return b
	}
	b.buf = EncodeTLV(b.buf, TagOctetString, v)
	return b
}

// Null appends a NULL.
func (b *Builder) Null() *Builder {
	if b.err != nil {
		return b
	}
	b.buf = append(b.buf, TagNull, 0x00)
	return b
}

// OID appends an OBJECT IDENTIFIER.
func (b *Builder) OID(oid []uint32) *Builder {
	if b.err != nil {
		return b
	}
	var tmp [64]byte
	body, err := AppendOID(tmp[:0], oid)
	if err != nil {
		b.err = err
		return b
	}
	b.buf = EncodeTLV(b.buf, TagOID, body)
	return b
}

// Raw appends pre-encoded TLV bytes verbatim.
func (b *Builder) Raw(tlv []byte) *Builder {
	if b.err != nil {
		return b
	}
	b.buf = append(b.buf, tlv...)
	return b
}

// IPAddress appends an application-tagged IpAddress (4 octets).
func (b *Builder) IPAddress(addr [4]byte) *Builder {
	if b.err != nil {
		return b
	}
	b.buf = EncodeTLV(b.buf, TagIPAddress, addr[:])
	return b
}

// Parser walks a decoded BER buffer token by token. Like Builder it latches
// the first error so call sites can chain reads and check once.
type Parser struct {
	rest []byte
	err  error
}

// NewParser returns a Parser over buf.
func NewParser(buf []byte) *Parser { return &Parser{rest: buf} }

// Err returns the first error encountered while parsing, or nil.
func (p *Parser) Err() error { return p.err }

// Empty reports whether all input has been consumed.
func (p *Parser) Empty() bool { return len(p.rest) == 0 }

// Peek returns the tag of the next TLV without consuming it, or 0 at end of
// input or after an error.
func (p *Parser) Peek() byte {
	if p.err != nil || len(p.rest) == 0 {
		return 0
	}
	return p.rest[0]
}

func (p *Parser) next(wantTag byte) (TLV, bool) {
	if p.err != nil {
		return TLV{}, false
	}
	tlv, rest, err := DecodeTLV(p.rest)
	if err != nil {
		p.err = err
		return TLV{}, false
	}
	if wantTag != 0 && tlv.Tag != wantTag {
		p.err = fmt.Errorf("%w: want 0x%02x, got 0x%02x", ErrBadTag, wantTag, tlv.Tag)
		return TLV{}, false
	}
	p.rest = rest
	return tlv, true
}

// Enter consumes a constructed TLV with the given tag and returns a Parser
// over its body.
func (p *Parser) Enter(tag byte) *Parser {
	tlv, ok := p.next(tag)
	if !ok {
		return &Parser{err: p.err}
	}
	return &Parser{rest: tlv.Value}
}

// Int consumes an INTEGER.
func (p *Parser) Int() int64 {
	tlv, ok := p.next(TagInteger)
	if !ok {
		return 0
	}
	v, err := ParseInt(tlv.Value)
	if err != nil {
		p.err = err
	}
	return v
}

// Uint consumes a value with the given tag and decodes it as unsigned.
func (p *Parser) Uint(tag byte) uint64 {
	tlv, ok := p.next(tag)
	if !ok {
		return 0
	}
	v, err := ParseUint(tlv.Value)
	if err != nil {
		p.err = err
	}
	return v
}

// OctetString consumes an OCTET STRING and returns its body (aliasing the
// input buffer).
func (p *Parser) OctetString() []byte {
	tlv, ok := p.next(TagOctetString)
	if !ok {
		return nil
	}
	return tlv.Value
}

// OID consumes an OBJECT IDENTIFIER.
func (p *Parser) OID() []uint32 {
	tlv, ok := p.next(TagOID)
	if !ok {
		return nil
	}
	oid, err := ParseOID(tlv.Value)
	if err != nil {
		p.err = err
	}
	return oid
}

// Any consumes the next TLV whatever its tag.
func (p *Parser) Any() TLV {
	tlv, _ := p.next(0)
	return tlv
}

// Expect consumes the next TLV and requires the given tag.
func (p *Parser) Expect(tag byte) TLV {
	tlv, _ := p.next(tag)
	return tlv
}
