package ber

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuilderSimpleSequence(t *testing.T) {
	b := NewBuilder()
	b.Begin(TagSequence).Int(3).OctetString([]byte("ab")).Null().End()
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x30, 0x09, 0x02, 0x01, 0x03, 0x04, 0x02, 'a', 'b', 0x05, 0x00}
	if !bytes.Equal(got, want) {
		t.Errorf("got %x, want %x", got, want)
	}
}

func TestBuilderNested(t *testing.T) {
	b := NewBuilder()
	b.Begin(TagSequence)
	b.Int(1)
	b.Begin(TagSequence).Int(2).End()
	b.End()
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(got)
	seq := p.Enter(TagSequence)
	if v := seq.Int(); v != 1 {
		t.Errorf("outer int = %d", v)
	}
	inner := seq.Enter(TagSequence)
	if v := inner.Int(); v != 2 {
		t.Errorf("inner int = %d", v)
	}
	if err := inner.Err(); err != nil {
		t.Fatal(err)
	}
	if !seq.Empty() || !p.Empty() {
		t.Error("unconsumed input")
	}
}

func TestBuilderLongBody(t *testing.T) {
	// Bodies longer than 127 bytes force End to shift for a 2-octet length.
	payload := bytes.Repeat([]byte{0x5A}, 200)
	b := NewBuilder()
	b.Begin(TagSequence).OctetString(payload).End()
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	tlv, rest, err := DecodeTLV(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Error("trailing bytes")
	}
	p := NewParser(tlv.Value)
	if !bytes.Equal(p.OctetString(), payload) {
		t.Error("payload mismatch")
	}
}

func TestBuilderVeryLongBody(t *testing.T) {
	// Force a 3-octet length (> 0xFF body).
	payload := bytes.Repeat([]byte{0x11}, 70000)
	b := NewBuilder()
	b.Begin(TagSequence).OctetString(payload).End()
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	tlv, _, err := DecodeTLV(got)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(tlv.Value)
	if !bytes.Equal(p.OctetString(), payload) {
		t.Error("payload mismatch after multi-octet length shift")
	}
}

func TestBuilderUnclosed(t *testing.T) {
	b := NewBuilder()
	b.Begin(TagSequence)
	if _, err := b.Bytes(); err == nil {
		t.Error("unclosed container should fail")
	}
}

func TestBuilderEndWithoutBegin(t *testing.T) {
	b := NewBuilder()
	b.End()
	if b.Err() == nil {
		t.Error("End without Begin should latch an error")
	}
}

func TestBuilderErrorLatches(t *testing.T) {
	b := NewBuilder()
	b.OID([]uint32{5}) // invalid OID
	b.Int(42)          // must be ignored
	if _, err := b.Bytes(); err == nil {
		t.Error("latched error should surface from Bytes")
	}
}

func TestParserBadTag(t *testing.T) {
	buf := EncodeTLV(nil, TagInteger, []byte{0x01})
	p := NewParser(buf)
	p.OctetString()
	if p.Err() == nil {
		t.Error("tag mismatch should latch error")
	}
}

func TestParserPeek(t *testing.T) {
	b := NewBuilder()
	b.Uint(TagTimeTicks, 12345)
	buf, _ := b.Bytes()
	p := NewParser(buf)
	if p.Peek() != TagTimeTicks {
		t.Errorf("Peek = 0x%02x", p.Peek())
	}
	if v := p.Uint(TagTimeTicks); v != 12345 {
		t.Errorf("TimeTicks = %d", v)
	}
	if p.Peek() != 0 {
		t.Error("Peek at EOF should be 0")
	}
}

func TestParserAnyAndExpect(t *testing.T) {
	b := NewBuilder()
	b.IPAddress([4]byte{192, 0, 2, 1}).Null()
	buf, _ := b.Bytes()
	p := NewParser(buf)
	ip := p.Expect(TagIPAddress)
	if !bytes.Equal(ip.Value, []byte{192, 0, 2, 1}) {
		t.Errorf("IPAddress = %x", ip.Value)
	}
	nul := p.Any()
	if nul.Tag != TagNull {
		t.Errorf("Any tag = 0x%02x", nul.Tag)
	}
	if p.Err() != nil || !p.Empty() {
		t.Error("parse state wrong")
	}
}

// TestBuilderParserQuick round-trips a structure with randomized contents.
func TestBuilderParserQuick(t *testing.T) {
	f := func(a int64, s []byte, u uint64, c uint32) bool {
		oid := []uint32{1, 3, 6, 1, 4, 1, c}
		b := NewBuilder()
		b.Begin(TagSequence)
		b.Int(a)
		b.OctetString(s)
		b.Uint(TagCounter64, u)
		b.OID(oid)
		b.Begin(0xA8).Int(a).End() // context-tagged inner PDU
		b.End()
		buf, err := b.Bytes()
		if err != nil {
			return false
		}
		p := NewParser(buf).Enter(TagSequence)
		if p.Int() != a {
			return false
		}
		if !bytes.Equal(p.OctetString(), s) {
			return false
		}
		if p.Uint(TagCounter64) != u {
			return false
		}
		got := p.OID()
		if len(got) != len(oid) || got[len(got)-1] != c {
			return false
		}
		inner := p.Enter(0xA8)
		return inner.Int() == a && inner.Err() == nil && p.Err() == nil && p.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuilderSNMPShape(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd := NewBuilder()
		bd.Begin(TagSequence)
		bd.Int(3)
		bd.Begin(TagSequence).Int(int64(i)).Int(65507).OctetString([]byte{4}).Int(3).End()
		bd.OctetString([]byte{0x30, 0x0e})
		bd.Begin(TagSequence).OctetString(nil).OctetString(nil).Begin(0xA0).Int(int64(i)).Int(0).Int(0).Begin(TagSequence).End().End().End()
		bd.End()
		if _, err := bd.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}
