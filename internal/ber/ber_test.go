package ber

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAppendLength(t *testing.T) {
	cases := []struct {
		n    int
		want []byte
	}{
		{0, []byte{0x00}},
		{1, []byte{0x01}},
		{0x7F, []byte{0x7F}},
		{0x80, []byte{0x81, 0x80}},
		{0xFF, []byte{0x81, 0xFF}},
		{0x100, []byte{0x82, 0x01, 0x00}},
		{0xFFFF, []byte{0x82, 0xFF, 0xFF}},
		{0x10000, []byte{0x83, 0x01, 0x00, 0x00}},
		{0x1000000, []byte{0x84, 0x01, 0x00, 0x00, 0x00}},
	}
	for _, c := range cases {
		got := AppendLength(nil, c.n)
		if !bytes.Equal(got, c.want) {
			t.Errorf("AppendLength(%d) = %x, want %x", c.n, got, c.want)
		}
		if len(got) != lengthSize(c.n) {
			t.Errorf("lengthSize(%d) = %d, emitted %d", c.n, lengthSize(c.n), len(got))
		}
	}
}

func TestLengthRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 255, 256, 65535, 65536, maxLen} {
		enc := AppendLength(nil, n)
		got, consumed, err := decodeLength(enc)
		if err != nil {
			t.Fatalf("decodeLength(%x): %v", enc, err)
		}
		if got != n || consumed != len(enc) {
			t.Errorf("length %d round-tripped to %d (consumed %d of %d)", n, got, consumed, len(enc))
		}
	}
}

func TestDecodeLengthErrors(t *testing.T) {
	if _, _, err := decodeLength(nil); err != ErrTruncated {
		t.Errorf("empty: got %v, want ErrTruncated", err)
	}
	if _, _, err := decodeLength([]byte{0x80}); err != ErrIndefinite {
		t.Errorf("indefinite: got %v, want ErrIndefinite", err)
	}
	if _, _, err := decodeLength([]byte{0x85, 1, 2, 3, 4, 5}); err != ErrLengthTooLong {
		t.Errorf("5-octet length: got %v, want ErrLengthTooLong", err)
	}
	if _, _, err := decodeLength([]byte{0x82, 0x01}); err != ErrTruncated {
		t.Errorf("short length: got %v, want ErrTruncated", err)
	}
	// Length larger than maxLen.
	if _, _, err := decodeLength([]byte{0x84, 0xFF, 0xFF, 0xFF, 0xFF}); err != ErrLengthTooLong {
		t.Errorf("huge length: got %v, want ErrLengthTooLong", err)
	}
}

func TestIntRoundTrip(t *testing.T) {
	values := []int64{0, 1, -1, 127, 128, -128, -129, 255, 256, 32767, 32768,
		-32768, -32769, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for _, v := range values {
		body := AppendInt(nil, v)
		got, err := ParseInt(body)
		if err != nil {
			t.Fatalf("ParseInt(%x): %v", body, err)
		}
		if got != v {
			t.Errorf("int %d round-tripped to %d via %x", v, got, body)
		}
	}
}

func TestIntMinimalEncoding(t *testing.T) {
	cases := []struct {
		v    int64
		want []byte
	}{
		{0, []byte{0x00}},
		{127, []byte{0x7F}},
		{128, []byte{0x00, 0x80}},
		{-128, []byte{0x80}},
		{-129, []byte{0xFF, 0x7F}},
		{256, []byte{0x01, 0x00}},
	}
	for _, c := range cases {
		got := AppendInt(nil, c.v)
		if !bytes.Equal(got, c.want) {
			t.Errorf("AppendInt(%d) = %x, want %x", c.v, got, c.want)
		}
	}
}

func TestIntQuick(t *testing.T) {
	f := func(v int64) bool {
		got, err := ParseInt(AppendInt(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 255, 256, math.MaxUint32, math.MaxUint64}
	for _, v := range values {
		body := AppendUint(nil, v)
		got, err := ParseUint(body)
		if err != nil {
			t.Fatalf("ParseUint(%x): %v", body, err)
		}
		if got != v {
			t.Errorf("uint %d round-tripped to %d via %x", v, got, body)
		}
	}
}

func TestUintQuick(t *testing.T) {
	f := func(v uint64) bool {
		got, err := ParseUint(AppendUint(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintHighBitPadding(t *testing.T) {
	// 0x80 needs a leading 0x00 pad so it is not read as negative.
	got := AppendUint(nil, 0x80)
	if !bytes.Equal(got, []byte{0x00, 0x80}) {
		t.Errorf("AppendUint(0x80) = %x, want 0080", got)
	}
	if _, err := ParseUint([]byte{0x80}); err == nil {
		t.Error("ParseUint of negative-looking body should fail")
	}
}

func TestUintMultiPad(t *testing.T) {
	// Lenient encoders pad with more than the one 0x00 octet a minimal
	// encoding needs; every pad must be stripped, and the value bytes after
	// the pads may legitimately lead with a set top bit.
	cases := []struct {
		body []byte
		want uint64
	}{
		{[]byte{0x00}, 0},
		{[]byte{0x00, 0x00}, 0},
		{[]byte{0x00, 0x00, 0x00, 0x00}, 0},
		{[]byte{0x00, 0x00, 0x85}, 0x85},
		{[]byte{0x00, 0x00, 0x00, 0x2A}, 0x2A},
		{[]byte{0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF}, math.MaxUint32},
		{append(bytes.Repeat([]byte{0x00}, 5), 0xDE, 0xAD, 0xBE, 0xEF), 0xDEADBEEF},
		{append(bytes.Repeat([]byte{0x00}, 3),
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF), math.MaxUint64},
	}
	for _, c := range cases {
		got, err := ParseUint(c.body)
		if err != nil {
			t.Errorf("ParseUint(%x): %v", c.body, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseUint(%x) = %d, want %d", c.body, got, c.want)
		}
	}
	// More than 8 value bytes stays out of range even behind pads.
	if _, err := ParseUint(append([]byte{0x00, 0x00}, bytes.Repeat([]byte{0x01}, 9)...)); err == nil {
		t.Error("ParseUint of 9 value bytes behind pads should fail")
	}
}

func TestOIDRoundTrip(t *testing.T) {
	oids := [][]uint32{
		{1, 3},
		{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0},
		{1, 3, 6, 1, 2, 1, 1, 1, 0},
		{2, 999, 3},
		{0, 39},
		{1, 3, 6, 1, 4, 1, 4294967295},
	}
	for _, oid := range oids {
		body, err := AppendOID(nil, oid)
		if err != nil {
			t.Fatalf("AppendOID(%v): %v", oid, err)
		}
		got, err := ParseOID(body)
		if err != nil {
			t.Fatalf("ParseOID(%x): %v", body, err)
		}
		if len(got) != len(oid) {
			t.Fatalf("OID %v round-tripped to %v", oid, got)
		}
		for i := range oid {
			if got[i] != oid[i] {
				t.Errorf("OID %v round-tripped to %v", oid, got)
				break
			}
		}
	}
}

func TestOIDKnownEncoding(t *testing.T) {
	// 1.3.6.1.6.3.15.1.1.4.0 = usmStatsUnknownEngineIDs
	body, err := AppendOID(nil, []uint32{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x2B, 0x06, 0x01, 0x06, 0x03, 0x0F, 0x01, 0x01, 0x04, 0x00}
	if !bytes.Equal(body, want) {
		t.Errorf("encoded %x, want %x", body, want)
	}
}

func TestOIDErrors(t *testing.T) {
	if _, err := AppendOID(nil, []uint32{1}); err == nil {
		t.Error("single-arc OID should fail")
	}
	if _, err := AppendOID(nil, []uint32{3, 1}); err == nil {
		t.Error("first arc 3 should fail")
	}
	if _, err := AppendOID(nil, []uint32{0, 40}); err == nil {
		t.Error("second arc 40 under first arc 0 should fail")
	}
	if _, err := ParseOID(nil); err == nil {
		t.Error("empty OID body should fail")
	}
	if _, err := ParseOID([]byte{0xAB}); err == nil {
		t.Error("dangling continuation bit should fail")
	}
}

func TestDecodeTLV(t *testing.T) {
	buf := EncodeTLV(nil, TagOctetString, []byte("hello"))
	buf = append(buf, 0x02, 0x01, 0x07) // trailing INTEGER 7
	tlv, rest, err := DecodeTLV(buf)
	if err != nil {
		t.Fatal(err)
	}
	if tlv.Tag != TagOctetString || string(tlv.Value) != "hello" {
		t.Errorf("got tag 0x%02x value %q", tlv.Tag, tlv.Value)
	}
	if len(rest) != 3 {
		t.Errorf("rest = %x", rest)
	}
	tlv2, rest2, err := DecodeTLV(rest)
	if err != nil || tlv2.Tag != TagInteger || len(rest2) != 0 {
		t.Errorf("second TLV: %+v %x %v", tlv2, rest2, err)
	}
}

func TestDecodeTLVTruncated(t *testing.T) {
	full := EncodeTLV(nil, TagOctetString, bytes.Repeat([]byte{0xAA}, 300))
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeTLV(full[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestTLVClassAndConstructed(t *testing.T) {
	if (TLV{Tag: TagSequence}).Class() != ClassUniversal {
		t.Error("SEQUENCE class")
	}
	if !(TLV{Tag: TagSequence}).Constructed() {
		t.Error("SEQUENCE should be constructed")
	}
	if (TLV{Tag: TagCounter64}).Class() != ClassApplication {
		t.Error("Counter64 class")
	}
	if (TLV{Tag: TagCounter64}).Constructed() {
		t.Error("Counter64 should be primitive")
	}
	if (TLV{Tag: 0xA8}).Class() != ClassContext {
		t.Error("Report PDU class")
	}
}

func TestHighTagNumberRejected(t *testing.T) {
	if _, _, err := DecodeTLV([]byte{0x1F, 0x85, 0x01, 0x00}); err == nil {
		t.Error("high-tag-number form should be rejected")
	}
}
