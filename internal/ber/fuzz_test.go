package ber

import (
	"bytes"
	"testing"
)

// FuzzParseUint exercises the unsigned INTEGER body decoder with arbitrary
// bodies, seeded with the multi-pad encodings lenient agents emit. The
// invariants: no panic, and every accepted body round-trips through the
// minimal encoder back to an equivalent (pad-stripped) value.
func FuzzParseUint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x2A})
	f.Add([]byte{0x80})
	f.Add([]byte{0x00, 0x80})
	f.Add([]byte{0x00, 0x00, 0x85})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(append(bytes.Repeat([]byte{0x00}, 5), 0xDE, 0xAD, 0xBE, 0xEF))
	f.Add(append(bytes.Repeat([]byte{0x00}, 3),
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))
	f.Add(bytes.Repeat([]byte{0x01}, 9))
	f.Fuzz(func(t *testing.T, body []byte) {
		v, err := ParseUint(body)
		if err != nil {
			return
		}
		again, err := ParseUint(AppendUint(nil, v))
		if err != nil || again != v {
			t.Fatalf("ParseUint(%x) = %d, re-decode gave (%d, %v)", body, v, again, err)
		}
	})
}

// FuzzDecodeTLV checks the TLV framing layer never panics and never returns
// a value slice extending past the input.
func FuzzDecodeTLV(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x00})
	f.Add([]byte{0x04, 0x05, 'h', 'e', 'l', 'l', 'o'})
	f.Add([]byte{0x04, 0x82, 0x01, 0x2C})
	f.Add([]byte{0x02, 0x01, 0x07, 0x02, 0x01})
	f.Fuzz(func(t *testing.T, buf []byte) {
		tlv, rest, err := DecodeTLV(buf)
		if err != nil {
			return
		}
		if len(tlv.Value)+len(rest) > len(buf) {
			t.Fatalf("DecodeTLV(%x): value %d + rest %d exceed input %d",
				buf, len(tlv.Value), len(rest), len(buf))
		}
	})
}
