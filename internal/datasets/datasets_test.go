package datasets

import (
	"net/netip"
	"testing"

	"snmpv3fp/internal/netsim"
)

func TestBuildDeterministic(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(3))
	a := Build(w)
	b := Build(w)
	if len(a.ITDK4) != len(b.ITDK4) || len(a.Atlas4) != len(b.Atlas4) || len(a.Hitlist6) != len(b.Hitlist6) {
		t.Error("same world produced different datasets")
	}
}

func TestDatasetsContainOnlyRouterAddresses(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(3))
	ds := Build(w)
	check := func(name string, set map[netip.Addr]bool) {
		for a := range set {
			d := w.DeviceAt(a)
			if d == nil || !d.Router() {
				t.Fatalf("%s contains non-router address %v", name, a)
			}
		}
	}
	check("ITDK4", ds.ITDK4)
	check("ITDK6", ds.ITDK6)
	check("Atlas4", ds.Atlas4)
	check("Atlas6", ds.Atlas6)
	check("Hitlist6", ds.Hitlist6)
}

func TestDatasetsArePartial(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(3))
	ds := Build(w)
	var allRouter4 int
	for _, d := range w.Devices {
		if d.Router() {
			allRouter4 += len(d.V4)
		}
	}
	if len(ds.ITDK4) == 0 {
		t.Fatal("empty ITDK")
	}
	if len(ds.ITDK4) >= allRouter4 {
		t.Errorf("ITDK covers all %d router addresses — should be a partial sample", allRouter4)
	}
	if len(ds.Atlas4) >= len(ds.ITDK4) {
		t.Errorf("Atlas (%d) should be smaller than ITDK (%d)", len(ds.Atlas4), len(ds.ITDK4))
	}
}

func TestUnions(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(3))
	ds := Build(w)
	u4 := ds.Union4()
	if len(u4) < len(ds.ITDK4) || len(u4) > len(ds.ITDK4)+len(ds.Atlas4) {
		t.Errorf("union4 size %d outside [%d, %d]", len(u4), len(ds.ITDK4), len(ds.ITDK4)+len(ds.Atlas4))
	}
	for a := range ds.ITDK4 {
		if !u4[a] {
			t.Fatal("union4 missing ITDK address")
		}
	}
	u6 := ds.Union6()
	for a := range ds.Hitlist6 {
		if !u6[a] {
			t.Fatal("union6 missing hitlist address")
		}
	}
	// IsRouterAddr agrees with the unions.
	for a := range u4 {
		if !ds.IsRouterAddr(a) {
			t.Fatal("IsRouterAddr false for union member")
		}
	}
}
