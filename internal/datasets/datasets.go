// Package datasets derives the synthetic third-party router datasets the
// paper uses for router tagging (Section 4.1.2, Table 2): CAIDA ITDK
// (MIDAR-covered IPv4 and Speedtrap-covered IPv6 interfaces), RIPE Atlas
// traceroute hops, and the IPv6 Hitlist Service.
//
// Each dataset is an imperfect sample of the simulated ground truth —
// partial device coverage, partial interface coverage — so the tagging,
// coverage and comparison analyses inherit realistic blind spots.
package datasets

import (
	"math/rand"
	"net/netip"

	"snmpv3fp/internal/netsim"
)

// Router datasets as address sets.
type Router struct {
	// ITDK4 / ITDK6 are the ITDK interface addresses (IPv4 via MIDAR
	// topologies, IPv6 via Speedtrap).
	ITDK4 map[netip.Addr]bool
	ITDK6 map[netip.Addr]bool
	// Atlas4 / Atlas6 are intermediate-hop addresses from RIPE Atlas
	// traceroutes.
	Atlas4 map[netip.Addr]bool
	Atlas6 map[netip.Addr]bool
	// Hitlist6 is the router-address subset of the IPv6 Hitlist.
	Hitlist6 map[netip.Addr]bool
}

// Sampling rates for interface inclusion per dataset. ITDK sees most
// interfaces of covered routers (traceroutes from many vantage points);
// Atlas sees fewer.
const (
	itdkIfaceProb  = 0.55
	atlasIfaceProb = 0.30
)

// Build derives the datasets from the world. The derivation is
// deterministic for a given world seed.
func Build(w *netsim.World) *Router {
	r := &Router{
		ITDK4:    map[netip.Addr]bool{},
		ITDK6:    map[netip.Addr]bool{},
		Atlas4:   map[netip.Addr]bool{},
		Atlas6:   map[netip.Addr]bool{},
		Hitlist6: map[netip.Addr]bool{},
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0xDA7A))
	for _, d := range w.Devices {
		if !d.Router() {
			continue
		}
		if d.InITDK {
			for _, a := range d.V4 {
				if rng.Float64() < itdkIfaceProb {
					r.ITDK4[a] = true
				}
			}
			for _, a := range d.V6 {
				if rng.Float64() < itdkIfaceProb {
					r.ITDK6[a] = true
				}
			}
		}
		if d.InAtlas {
			for _, a := range d.V4 {
				if rng.Float64() < atlasIfaceProb {
					r.Atlas4[a] = true
				}
			}
			for _, a := range d.V6 {
				if rng.Float64() < atlasIfaceProb {
					r.Atlas6[a] = true
				}
			}
		}
		if d.InHitlist {
			for _, a := range d.V6 {
				r.Hitlist6[a] = true
			}
		}
	}
	return r
}

// Union4 returns the union of IPv4 router addresses.
func (r *Router) Union4() map[netip.Addr]bool {
	out := make(map[netip.Addr]bool, len(r.ITDK4)+len(r.Atlas4))
	for a := range r.ITDK4 {
		out[a] = true
	}
	for a := range r.Atlas4 {
		out[a] = true
	}
	return out
}

// Union6 returns the union of IPv6 router addresses (including the hitlist
// router addresses, as in the paper's Table 2).
func (r *Router) Union6() map[netip.Addr]bool {
	out := make(map[netip.Addr]bool, len(r.ITDK6)+len(r.Atlas6)+len(r.Hitlist6))
	for a := range r.ITDK6 {
		out[a] = true
	}
	for a := range r.Atlas6 {
		out[a] = true
	}
	for a := range r.Hitlist6 {
		out[a] = true
	}
	return out
}

// IsRouterAddr reports whether addr appears in any router dataset.
func (r *Router) IsRouterAddr(addr netip.Addr) bool {
	return r.ITDK4[addr] || r.ITDK6[addr] || r.Atlas4[addr] || r.Atlas6[addr] || r.Hitlist6[addr]
}
