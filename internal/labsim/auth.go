package labsim

import (
	"time"

	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/usm"
)

// V3User configures an authenticated SNMPv3 user on a lab agent. When
// PrivPassword is non-empty the user is authPriv: requests and responses
// carry encrypted scoped PDUs.
type V3User struct {
	Name     string
	Protocol usm.AuthProtocol
	Password string
	// PrivProtocol / PrivPassword enable privacy (authPriv).
	PrivProtocol usm.PrivProtocol
	PrivPassword string
}

// Priv reports whether the user has privacy enabled.
func (u *V3User) Priv() bool { return u.PrivPassword != "" }

// privKey derives the user's localized privacy key.
func (u *V3User) privKey(engineID []byte) []byte {
	return usm.LocalizedPasswordKey(u.Protocol, u.PrivPassword, engineID)
}

// localizedKey derives the user's key for the agent's engine ID.
func (u *V3User) localizedKey(engineID []byte) []byte {
	return usm.LocalizedPasswordKey(u.Protocol, u.Password, engineID)
}

// handleAuthenticatedV3 processes an SNMPv3 request whose auth flag is set.
// A request from the configured user with a valid HMAC gets an
// authenticated Response PDU; anything else gets the appropriate USM
// report, as RFC 3414 §3.2 prescribes (wrong digests are reported via
// usmStatsWrongDigests, which we fold into the unknown-user report for
// simplicity — the observable behaviour matching the lab: no data leaks
// without the right credentials, but the engine ID always does).
func (a *Agent) handleAuthenticatedV3(wire []byte, msg *snmp.V3Message, now time.Time) []byte {
	u := a.cfg.User
	engineTime := int64(now.Sub(a.cfg.BootTime) / time.Second)
	deny := func() []byte {
		rep := snmp.NewDiscoveryReport(msg, a.cfg.EngineID, a.cfg.Boots, engineTime, 0)
		rep.ScopedPDU.PDU.VarBinds = []snmp.VarBind{{
			Name:  snmp.OIDUsmStatsUnknownUserNames,
			Value: snmp.Counter32Value(1),
		}}
		out, err := rep.Encode()
		if err != nil {
			return nil
		}
		return out
	}
	if u == nil || string(msg.USM.UserName) != u.Name {
		return deny()
	}
	key := u.localizedKey(a.cfg.EngineID)
	if !usm.Verify(wire, u.Protocol, key) {
		return deny()
	}
	pdu := msg.ScopedPDU.PDU
	if msg.PrivFlag() {
		if !u.Priv() {
			return deny()
		}
		plain, err := usm.DecryptScopedPDU(u.PrivProtocol, u.privKey(a.cfg.EngineID),
			msg.USM.AuthoritativeEngineBoots, msg.USM.AuthoritativeEngineTime,
			msg.USM.PrivacyParameters, msg.EncryptedPDU)
		if err != nil {
			return deny()
		}
		scoped, err := snmp.DecodeScopedPDU(plain)
		if err != nil {
			return deny()
		}
		pdu = scoped.PDU
	}
	if pdu == nil || pdu.Type != snmp.PDUGetRequest {
		return deny()
	}
	vbs := make([]snmp.VarBind, 0, len(pdu.VarBinds))
	for _, vb := range pdu.VarBinds {
		vbs = append(vbs, snmp.VarBind{Name: vb.Name, Value: a.lookup(vb.Name, now)})
	}
	scopedResp := snmp.ScopedPDU{
		ContextEngineID: a.cfg.EngineID,
		PDU: &snmp.PDU{
			Type:      snmp.PDUGetResponse,
			RequestID: pdu.RequestID,
			VarBinds:  vbs,
		},
	}
	resp := &snmp.V3Message{
		MsgID:            msg.MsgID,
		MsgMaxSize:       snmp.DefaultMaxSize,
		MsgSecurityModel: snmp.SecurityModelUSM,
		USM: snmp.USMSecurityParameters{
			AuthoritativeEngineID:    a.cfg.EngineID,
			AuthoritativeEngineBoots: a.cfg.Boots,
			AuthoritativeEngineTime:  engineTime,
			UserName:                 msg.USM.UserName,
		},
	}
	if msg.PrivFlag() {
		plain, err := snmp.EncodeScopedPDU(&scopedResp)
		if err != nil {
			return nil
		}
		// Derive a deterministic response salt from the request's.
		salt := uint64(pdu.RequestID)<<16 | 0xA5
		ciphertext, privParams, err := usm.EncryptScopedPDU(u.PrivProtocol,
			u.privKey(a.cfg.EngineID), a.cfg.Boots, engineTime, salt, plain)
		if err != nil {
			return nil
		}
		resp.MsgFlags |= snmp.FlagPriv
		resp.USM.PrivacyParameters = privParams
		resp.EncryptedPDU = ciphertext
	} else {
		resp.ScopedPDU = scopedResp
	}
	out, err := usm.Sign(resp, u.Protocol, key)
	if err != nil {
		return nil
	}
	return out
}

// NewAuthenticatedGet builds and signs a Get request for one OID as the
// given user against a known engine (the client side of the authenticated
// exchange, used by tests and by the Section 8 experiment to produce
// "captured" traffic).
func NewAuthenticatedGet(user V3User, engineID []byte, boots, engineTime int64, msgID int64, oid []uint32) ([]byte, error) {
	msg := &snmp.V3Message{
		MsgID:            msgID,
		MsgMaxSize:       snmp.DefaultMaxSize,
		MsgFlags:         snmp.FlagReportable,
		MsgSecurityModel: snmp.SecurityModelUSM,
		USM: snmp.USMSecurityParameters{
			AuthoritativeEngineID:    engineID,
			AuthoritativeEngineBoots: boots,
			AuthoritativeEngineTime:  engineTime,
			UserName:                 []byte(user.Name),
		},
		ScopedPDU: snmp.ScopedPDU{
			ContextEngineID: engineID,
			PDU: &snmp.PDU{Type: snmp.PDUGetRequest, RequestID: msgID,
				VarBinds: []snmp.VarBind{{Name: oid, Value: snmp.NullValue()}}},
		},
	}
	return usm.Sign(msg, user.Protocol, user.localizedKey(engineID))
}
