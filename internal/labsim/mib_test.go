package labsim

import (
	"testing"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/snmp"
)

func TestMIBGetExact(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	now := time.Now()
	if v := a.getExact(snmp.OIDSysDescr, now); string(v.Bytes) != CiscoIOS.Name {
		t.Errorf("sysDescr = %q", v.Bytes)
	}
	if v := a.getExact(oidSysContact, now); string(v.Bytes) != "noc@example.net" {
		t.Errorf("sysContact = %q", v.Bytes)
	}
	if v := a.getExact([]uint32{1, 3, 6, 1, 99}, now); v.Tag != ber.TagNoSuchObject {
		t.Errorf("unknown OID tag = 0x%02x", v.Tag)
	}
	// sysObjectID embeds the enterprise from the engine ID.
	v := a.getExact(oidSysObjectID, now)
	if v.Tag != ber.TagOID || v.OID[6] != 9 {
		t.Errorf("sysObjectID = %v", v)
	}
}

func TestMIBWalk(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	now := time.Now()
	// Walk from the root: must visit every entry in OID order and end with
	// endOfMibView.
	cur := []uint32{1, 3}
	visited := 0
	var prev []uint32
	for {
		next, val := a.getNext(cur, now)
		if val.Tag == ber.TagEndOfMibView {
			break
		}
		if prev != nil && !oidLess(prev, next) {
			t.Fatalf("walk not ordered: %v then %v", prev, next)
		}
		prev = next
		cur = next
		visited++
		if visited > 100 {
			t.Fatal("walk does not terminate")
		}
	}
	want := 8 + 2*mibInterfaces
	if visited != want {
		t.Errorf("walk visited %d entries, want %d", visited, want)
	}
}

func TestGetNextOverUDPMessage(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	req := &snmp.CommunityMessage{
		Version: snmp.V2c, Community: []byte("c"),
		PDU: &snmp.PDU{Type: snmp.PDUGetNextRequest, RequestID: 7,
			VarBinds: []snmp.VarBind{{Name: []uint32{1, 3, 6, 1, 2, 1, 1}, Value: snmp.NullValue()}}},
	}
	wire, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(wire, time.Now())
	if resp == nil {
		t.Fatal("no response")
	}
	msg, err := snmp.DecodeCommunity(resp)
	if err != nil {
		t.Fatal(err)
	}
	vb := msg.PDU.VarBinds[0]
	if !snmp.OIDEqual(vb.Name, snmp.OIDSysDescr) {
		t.Errorf("next OID = %v, want sysDescr", vb.Name)
	}
}

func TestIfPhysAddressDerivedFromEngineID(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	now := time.Now()
	oid := append(append([]uint32{}, oidIfPhys...), 1)
	v := a.getExact(oid, now)
	if len(v.Bytes) != 6 {
		t.Fatalf("ifPhysAddress = %x", v.Bytes)
	}
	// First interface MAC matches the engine ID's MAC (the lab
	// observation: the engine ID uses the first interface's MAC).
	want := testEngineID[5:]
	if string(v.Bytes) != string(want) {
		t.Errorf("ifPhysAddress.1 = %x, want %x", v.Bytes, want)
	}
}

func TestGetBulk(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	req := &snmp.CommunityMessage{
		Version: snmp.V2c, Community: []byte("c"),
		PDU: &snmp.PDU{
			Type: snmp.PDUGetBulkRequest, RequestID: 9,
			ErrorStatus: 1, // non-repeaters
			ErrorIndex:  4, // max-repetitions
			VarBinds: []snmp.VarBind{
				{Name: []uint32{1, 3, 6, 1, 2, 1, 1}, Value: snmp.NullValue()},    // non-repeater
				{Name: []uint32{1, 3, 6, 1, 2, 1, 2, 2}, Value: snmp.NullValue()}, // repeated
			},
		},
	}
	wire, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(wire, time.Now())
	if resp == nil {
		t.Fatal("no response")
	}
	msg, err := snmp.DecodeCommunity(resp)
	if err != nil {
		t.Fatal(err)
	}
	// 1 non-repeater + up to 4 repetitions.
	if got := len(msg.PDU.VarBinds); got != 5 {
		t.Fatalf("varbinds = %d, want 5", got)
	}
	if !snmp.OIDEqual(msg.PDU.VarBinds[0].Name, snmp.OIDSysDescr) {
		t.Errorf("non-repeater = %v", msg.PDU.VarBinds[0].Name)
	}
	// Repeated varbinds walk ifTable in order.
	for i := 2; i < 5; i++ {
		if !oidLess(msg.PDU.VarBinds[i-1].Name, msg.PDU.VarBinds[i].Name) {
			t.Error("bulk repetitions not ordered")
		}
	}
}

func TestGetBulkEndsAtMibEnd(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	// Start the repeated walk at the last entry: the walk must stop at
	// endOfMibView instead of looping.
	last := a.mib[len(a.mib)-1].oid
	req := &snmp.CommunityMessage{
		Version: snmp.V2c, Community: []byte("c"),
		PDU: &snmp.PDU{
			Type: snmp.PDUGetBulkRequest, RequestID: 10,
			ErrorIndex: 50,
			VarBinds:   []snmp.VarBind{{Name: last, Value: snmp.NullValue()}},
		},
	}
	wire, _ := req.Encode()
	msg, err := snmp.DecodeCommunity(a.Handle(wire, time.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.PDU.VarBinds) != 1 || msg.PDU.VarBinds[0].Value.Tag != ber.TagEndOfMibView {
		t.Errorf("varbinds = %+v", msg.PDU.VarBinds)
	}
}
