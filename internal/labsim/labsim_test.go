package labsim

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/snmp"
)

var testEngineID = engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 0xaa, 0xbb, 0xcc})

func testAgent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	if cfg.EngineID == nil {
		cfg.EngineID = testEngineID
	}
	a, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// Handle-level tests (no sockets).

func TestNoSNMPConfigIsSilent(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS})
	v2, _ := snmp.NewGetRequest(snmp.V2c, "public", 1, snmp.OIDSysDescr).Encode()
	v3, _ := snmp.EncodeDiscoveryRequest(1, 1)
	if a.Handle(v2, time.Now()) != nil || a.Handle(v3, time.Now()) != nil {
		t.Error("unconfigured device answered")
	}
}

func TestCommunityEnablesV2AndImplicitV3(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "pass123"})
	now := time.Now()

	v2good, _ := snmp.NewGetRequest(snmp.V2c, "pass123", 1, snmp.OIDSysDescr).Encode()
	resp := a.Handle(v2good, now)
	if resp == nil {
		t.Fatal("correct community not answered")
	}
	m, err := snmp.DecodeCommunity(resp)
	if err != nil || m.PDU.Type != snmp.PDUGetResponse {
		t.Fatalf("bad v2 response: %v", err)
	}
	if got := string(m.PDU.VarBinds[0].Value.Bytes); got != CiscoIOS.Name {
		t.Errorf("sysDescr = %q", got)
	}

	v2bad, _ := snmp.NewGetRequest(snmp.V2c, "wrong", 2, snmp.OIDSysDescr).Encode()
	if a.Handle(v2bad, now) != nil {
		t.Error("wrong community answered")
	}

	// The paper's central lab finding: v3 discovery now works without any
	// v3 configuration.
	v3, _ := snmp.EncodeDiscoveryRequest(3, 3)
	resp = a.Handle(v3, now)
	if resp == nil {
		t.Fatal("implicit v3 did not answer")
	}
	dr, err := snmp.ParseDiscoveryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if string(dr.EngineID) != string(testEngineID) {
		t.Errorf("engine ID = %x", dr.EngineID)
	}
	if !snmp.OIDEqual(dr.ReportOID, snmp.OIDUsmStatsUnknownEngineIDs) {
		t.Errorf("report OID = %v", dr.ReportOID)
	}
}

func TestUnknownUserNameReport(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "pass123"})
	// Query with the agent's engine ID but an unknown user: the lab
	// observed an "unknown user name" error that still carries the MAC.
	req := snmp.NewDiscoveryRequest(9, 9)
	req.USM.AuthoritativeEngineID = testEngineID
	req.USM.UserName = []byte("noAuthUser")
	wire, _ := req.Encode()
	resp := a.Handle(wire, time.Now())
	if resp == nil {
		t.Fatal("no answer")
	}
	dr, err := snmp.ParseDiscoveryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !snmp.OIDEqual(dr.ReportOID, snmp.OIDUsmStatsUnknownUserNames) {
		t.Errorf("report OID = %v, want usmStatsUnknownUserNames", dr.ReportOID)
	}
	if string(dr.EngineID) != string(testEngineID) {
		t.Error("engine ID missing from unknown-user report")
	}
}

func TestJunosInterfaceEnableSemantics(t *testing.T) {
	silent := testAgent(t, Config{OS: JuniperJunos, Community: "c"})
	v3, _ := snmp.EncodeDiscoveryRequest(1, 1)
	if silent.Handle(v3, time.Now()) != nil {
		t.Error("Junos without interface enable answered")
	}
	open := testAgent(t, Config{OS: JuniperJunos, Community: "c", InterfaceEnabled: true})
	if open.Handle(v3, time.Now()) == nil {
		t.Error("Junos with interface enable silent")
	}
}

func TestGarbageIgnored(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	if a.Handle([]byte("garbage"), time.Now()) != nil {
		t.Error("garbage answered")
	}
	if a.Handle(nil, time.Now()) != nil {
		t.Error("empty answered")
	}
}

func TestSysUpTime(t *testing.T) {
	boot := time.Now().Add(-2 * time.Hour)
	a := testAgent(t, Config{OS: NetSNMP, Community: "c", BootTime: boot})
	req, _ := snmp.NewGetRequest(snmp.V2c, "c", 5, snmp.OIDSysUpTime).Encode()
	resp := a.Handle(req, boot.Add(2*time.Hour))
	m, err := snmp.DecodeCommunity(resp)
	if err != nil {
		t.Fatal(err)
	}
	ticks := m.PDU.VarBinds[0].Value.Uint
	// Two hours in TimeTicks (1/100 s).
	if want := uint64(2 * 3600 * 100); ticks < want-100 || ticks > want+100 {
		t.Errorf("sysUpTime = %d ticks, want ~%d", ticks, want)
	}
}

// Socket-level test: full UDP round trip.

func TestAgentOverUDP(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "pass123", Boots: 148})
	conn, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	probe, _ := snmp.EncodeDiscoveryRequest(7, 7)
	if _, err := conn.Write(probe); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := snmp.ParseDiscoveryResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if dr.EngineBoots != 148 {
		t.Errorf("boots = %d", dr.EngineBoots)
	}
	if a.Queries() < 1 {
		t.Error("query counter not incremented")
	}
}

func TestAddrIsLoopback(t *testing.T) {
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c"})
	if a.Addr().Addr() != netip.MustParseAddr("127.0.0.1") {
		t.Errorf("agent bound to %v", a.Addr())
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestColdStartTrap(t *testing.T) {
	// A UDP listener plays the trap sink.
	sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	sinkAddr := sink.LocalAddr().(*net.UDPAddr).AddrPort()

	a := testAgent(t, Config{OS: CiscoIOS, Community: "traps", TrapSink: sinkAddr})
	_ = a

	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := sink.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	community, trap, err := snmp.DecodeTrapV1(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if community != "traps" {
		t.Errorf("community = %q", community)
	}
	if trap.GenericTrap != snmp.TrapColdStart {
		t.Errorf("generic trap = %d", trap.GenericTrap)
	}
	// Enterprise derived from the Cisco engine ID.
	if !snmp.OIDEqual(trap.Enterprise, []uint32{1, 3, 6, 1, 4, 1, 9}) {
		t.Errorf("enterprise = %v", trap.Enterprise)
	}
}
