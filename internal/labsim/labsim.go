// Package labsim reproduces the paper's controlled lab experiment
// (Section 6.2.1): vendor-faithful SNMP agents served over real UDP
// sockets, used to demonstrate that configuring an SNMPv2c community
// string implicitly enables unauthenticated SNMPv3 discovery responses on
// Cisco IOS / IOS XR and Juniper Junos.
//
// The same Agent type backs cmd/snmpagent and the loopback examples.
package labsim

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/snmp"
)

// OSBehavior captures the SNMP enablement semantics of a device OS.
type OSBehavior struct {
	// Name as reported in sysDescr.
	Name string
	// ImplicitV3 reproduces the lab finding: a v2c community alone makes
	// the agent answer unauthenticated SNMPv3 discovery.
	ImplicitV3 bool
	// RequireInterfaceEnable models Junos, where services must be enabled
	// per interface before any SNMP response is emitted.
	RequireInterfaceEnable bool
}

// Behaviours observed in the paper's lab.
var (
	CiscoIOS     = OSBehavior{Name: "Cisco IOS Software, Version 15.2(4)S7", ImplicitV3: true}
	CiscoIOSXR   = OSBehavior{Name: "Cisco IOS XR Software, Version 6.0.1", ImplicitV3: true}
	JuniperJunos = OSBehavior{
		Name: "Juniper Networks, Inc. JUNOS 17.3", ImplicitV3: true, RequireInterfaceEnable: true,
	}
	// NetSNMP models the software agent, which requires explicit v3 users
	// but is usually configured with them.
	NetSNMP = OSBehavior{Name: "Linux net-snmp 5.9", ImplicitV3: true}
)

// Config describes one lab device.
type Config struct {
	OS OSBehavior
	// Community, when non-empty, is the configured read-only community —
	// the single `snmp-server community <c> RO` line of the lab setup.
	Community string
	// InterfaceEnabled mirrors Junos' per-interface service enablement.
	InterfaceEnabled bool
	// EngineID is the agent's engine ID (for hardware OSes, MAC-based from
	// the "first" interface, as the lab observed).
	EngineID []byte
	// Boots and BootTime seed the timeliness values.
	Boots    int64
	BootTime time.Time
	// SysDescr overrides the OS name in sysDescr responses.
	SysDescr string
	// User, when set, enables an authenticated SNMPv3 user (USM,
	// authNoPriv) on the agent.
	User *V3User
	// TrapSink, when set, receives an SNMPv1 coldStart trap when the agent
	// starts (and any traps sent via SendTrap).
	TrapSink netip.AddrPort
}

// Agent is a running SNMP agent bound to a loopback UDP socket.
type Agent struct {
	cfg  Config
	conn *net.UDPConn
	mib  []mibEntry
	wg   sync.WaitGroup

	mu      sync.Mutex
	queries int
}

// Start binds the agent to 127.0.0.1 on an ephemeral port and serves until
// Close.
func Start(cfg Config) (*Agent, error) {
	if cfg.SysDescr == "" {
		cfg.SysDescr = cfg.OS.Name
	}
	if cfg.BootTime.IsZero() {
		cfg.BootTime = time.Now().Add(-time.Hour)
	}
	if cfg.Boots == 0 {
		cfg.Boots = 1
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	a := &Agent{cfg: cfg, conn: conn}
	a.buildMIB()
	a.wg.Add(1)
	go a.serve()
	if cfg.TrapSink.IsValid() {
		// Announce the (re)start, as real agents do on boot.
		_ = a.SendTrap(&snmp.TrapV1{
			Enterprise:  enterpriseOID(cfg.EngineID),
			AgentAddr:   [4]byte{127, 0, 0, 1},
			GenericTrap: snmp.TrapColdStart,
			Timestamp:   0,
		})
	}
	return a, nil
}

// enterpriseOID derives the agent's enterprise subtree from its engine ID.
func enterpriseOID(engineID []byte) []uint32 {
	p := engineid.Classify(engineID)
	ent := p.Enterprise
	if ent == 0 {
		ent = 9
	}
	return []uint32{1, 3, 6, 1, 4, 1, ent}
}

// SendTrap emits an SNMPv1 trap to the configured sink using the agent's
// community.
func (a *Agent) SendTrap(trap *snmp.TrapV1) error {
	if !a.cfg.TrapSink.IsValid() {
		return fmt.Errorf("labsim: no trap sink configured")
	}
	wire, err := snmp.EncodeTrapV1(a.cfg.Community, trap)
	if err != nil {
		return err
	}
	_, err = a.conn.WriteToUDPAddrPort(wire, a.cfg.TrapSink)
	return err
}

// Addr returns the agent's bound address.
func (a *Agent) Addr() netip.AddrPort {
	return a.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Queries reports how many datagrams the agent processed.
func (a *Agent) Queries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queries
}

// Close stops the agent.
func (a *Agent) Close() error {
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) serve() {
	defer a.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, from, err := a.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		a.mu.Lock()
		a.queries++
		a.mu.Unlock()
		if resp := a.Handle(buf[:n], time.Now()); resp != nil {
			_, _ = a.conn.WriteToUDPAddrPort(resp, from)
		}
	}
}

// Handle processes one datagram and returns the response payload, nil for
// silence. It is exported so tests can drive the agent without sockets.
func (a *Agent) Handle(payload []byte, now time.Time) []byte {
	// No SNMP configuration at all: the device does not run SNMP.
	if a.cfg.Community == "" {
		return nil
	}
	// Junos: services must additionally be enabled on the ingress
	// interface.
	if a.cfg.OS.RequireInterfaceEnable && !a.cfg.InterfaceEnabled {
		return nil
	}
	version, err := snmp.PeekVersion(payload)
	if err != nil {
		return nil
	}
	switch version {
	case snmp.V1, snmp.V2c:
		return a.handleCommunity(payload, now)
	case snmp.V3:
		if !a.cfg.OS.ImplicitV3 {
			return nil
		}
		return a.handleV3(payload, now)
	}
	return nil
}

func (a *Agent) handleCommunity(payload []byte, now time.Time) []byte {
	msg, err := snmp.DecodeCommunity(payload)
	if err != nil || string(msg.Community) != a.cfg.Community {
		return nil // wrong community: drop, as real agents do
	}
	var vbs []snmp.VarBind
	switch msg.PDU.Type {
	case snmp.PDUGetRequest:
		for _, vb := range msg.PDU.VarBinds {
			vbs = append(vbs, snmp.VarBind{Name: vb.Name, Value: a.lookup(vb.Name, now)})
		}
	case snmp.PDUGetNextRequest:
		for _, vb := range msg.PDU.VarBinds {
			next, val := a.getNext(vb.Name, now)
			vbs = append(vbs, snmp.VarBind{Name: next, Value: val})
		}
	case snmp.PDUGetBulkRequest:
		if msg.Version == snmp.V1 {
			return nil // GetBulk is v2c-only
		}
		vbs = a.getBulk(msg.PDU, now)
	default:
		return nil
	}
	resp, err := snmp.NewGetResponse(msg, vbs).Encode()
	if err != nil {
		return nil
	}
	return resp
}

// lookup resolves an exact OID against the agent's MIB.
func (a *Agent) lookup(oid []uint32, now time.Time) snmp.Value {
	return a.getExact(oid, now)
}

// getBulk implements the GetBulk semantics of RFC 3416 §4.2.3: the first
// non-repeaters varbinds behave as GetNext; the remaining varbinds are
// iterated max-repetitions times.
func (a *Agent) getBulk(pdu *snmp.PDU, now time.Time) []snmp.VarBind {
	nonRepeaters := int(pdu.ErrorStatus)
	maxReps := int(pdu.ErrorIndex)
	if nonRepeaters < 0 {
		nonRepeaters = 0
	}
	if nonRepeaters > len(pdu.VarBinds) {
		nonRepeaters = len(pdu.VarBinds)
	}
	if maxReps < 0 {
		maxReps = 0
	}
	if maxReps > 100 {
		maxReps = 100 // bound response size, as real agents do
	}
	var vbs []snmp.VarBind
	for _, vb := range pdu.VarBinds[:nonRepeaters] {
		next, val := a.getNext(vb.Name, now)
		vbs = append(vbs, snmp.VarBind{Name: next, Value: val})
	}
	for _, vb := range pdu.VarBinds[nonRepeaters:] {
		cur := vb.Name
		for rep := 0; rep < maxReps; rep++ {
			next, val := a.getNext(cur, now)
			vbs = append(vbs, snmp.VarBind{Name: next, Value: val})
			if val.Tag == ber.TagEndOfMibView {
				break
			}
			cur = next
		}
	}
	return vbs
}

// handleV3 answers unauthenticated SNMPv3 queries with the USM reports of
// RFC 3414 §3.2 — disclosing the engine ID, boots and time exactly as the
// lab observed.
func (a *Agent) handleV3(payload []byte, now time.Time) []byte {
	msg, err := snmp.DecodeV3(payload)
	if err != nil && err != snmp.ErrEncrypted {
		return nil
	}
	if msg.AuthFlag() {
		return a.handleAuthenticatedV3(payload, msg, now)
	}
	engineTime := int64(now.Sub(a.cfg.BootTime) / time.Second)
	var rep *snmp.V3Message
	if len(msg.USM.AuthoritativeEngineID) == 0 {
		// Discovery: usmStatsUnknownEngineIDs.
		rep = snmp.NewDiscoveryReport(msg, a.cfg.EngineID, a.cfg.Boots, engineTime, 1)
	} else {
		// Engine ID known but no such user: "unknown user name" — and the
		// report still carries the engine ID in its USM parameters.
		rep = snmp.NewDiscoveryReport(msg, a.cfg.EngineID, a.cfg.Boots, engineTime, 0)
		rep.ScopedPDU.PDU.VarBinds = []snmp.VarBind{{
			Name:  snmp.OIDUsmStatsUnknownUserNames,
			Value: snmp.Counter32Value(1),
		}}
	}
	wire, err := rep.Encode()
	if err != nil {
		return nil
	}
	return wire
}

// String describes the agent configuration.
func (a *Agent) String() string {
	return fmt.Sprintf("labsim agent %s on %v (community %q)", a.cfg.OS.Name, a.Addr(), a.cfg.Community)
}
