package labsim

import (
	"fmt"
	"sort"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/snmp"
)

// mibEntry is one managed object instance.
type mibEntry struct {
	oid   []uint32
	value func(a *Agent, now time.Time) snmp.Value
}

// Additional system-group OIDs beyond the ones snmp exports.
var (
	oidSysObjectID = []uint32{1, 3, 6, 1, 2, 1, 1, 2, 0}
	oidSysContact  = []uint32{1, 3, 6, 1, 2, 1, 1, 4, 0}
	oidSysLocation = []uint32{1, 3, 6, 1, 2, 1, 1, 6, 0}
	oidSysServices = []uint32{1, 3, 6, 1, 2, 1, 1, 7, 0}
	oidIfNumber    = []uint32{1, 3, 6, 1, 2, 1, 2, 1, 0}
	oidIfDescr     = []uint32{1, 3, 6, 1, 2, 1, 2, 2, 1, 2}
	oidIfPhys      = []uint32{1, 3, 6, 1, 2, 1, 2, 2, 1, 6}
)

// interfaces modelled on every lab device.
const mibInterfaces = 3

// buildMIB assembles the agent's object tree: the system group and a small
// ifTable, enough for realistic GetNext walks.
func (a *Agent) buildMIB() {
	static := func(v snmp.Value) func(*Agent, time.Time) snmp.Value {
		return func(*Agent, time.Time) snmp.Value { return v }
	}
	entries := []mibEntry{
		{snmp.OIDSysDescr, func(a *Agent, _ time.Time) snmp.Value {
			return snmp.StringValue(a.cfg.SysDescr)
		}},
		{oidSysObjectID, func(a *Agent, _ time.Time) snmp.Value {
			p := engineid.Classify(a.cfg.EngineID)
			return snmp.Value{Tag: ber.TagOID, OID: []uint32{1, 3, 6, 1, 4, 1, p.Enterprise, 1, 1}}
		}},
		{snmp.OIDSysUpTime, func(a *Agent, now time.Time) snmp.Value {
			return snmp.TimeTicksValue(uint64(now.Sub(a.cfg.BootTime) / (10 * time.Millisecond)))
		}},
		{oidSysContact, static(snmp.StringValue("noc@example.net"))},
		{snmp.OIDSysName, static(snmp.StringValue("lab-device"))},
		{oidSysLocation, static(snmp.StringValue("lab rack 1"))},
		{oidSysServices, static(snmp.IntegerValue(78))},
		{oidIfNumber, static(snmp.IntegerValue(mibInterfaces))},
	}
	for i := 1; i <= mibInterfaces; i++ {
		idx := uint32(i)
		entries = append(entries, mibEntry{
			oid:   append(append([]uint32{}, oidIfDescr...), idx),
			value: static(snmp.StringValue(fmt.Sprintf("GigabitEthernet0/%d", i-1))),
		})
	}
	for i := 1; i <= mibInterfaces; i++ {
		idx := uint32(i)
		iface := i
		entries = append(entries, mibEntry{
			oid: append(append([]uint32{}, oidIfPhys...), idx),
			value: func(a *Agent, _ time.Time) snmp.Value {
				mac := make([]byte, 6)
				if p := engineid.Classify(a.cfg.EngineID); p.Format == engineid.FormatMAC {
					copy(mac, p.Data)
					mac[5] += byte(iface - 1)
				}
				return snmp.Value{Tag: ber.TagOctetString, Bytes: mac}
			},
		})
	}
	sort.Slice(entries, func(i, j int) bool { return oidLess(entries[i].oid, entries[j].oid) })
	a.mib = entries
}

// oidLess orders OIDs lexicographically.
func oidLess(a, b []uint32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// getExact returns the value bound to oid, or noSuchObject.
func (a *Agent) getExact(oid []uint32, now time.Time) snmp.Value {
	i := sort.Search(len(a.mib), func(i int) bool { return !oidLess(a.mib[i].oid, oid) })
	if i < len(a.mib) && snmp.OIDEqual(a.mib[i].oid, oid) {
		return a.mib[i].value(a, now)
	}
	return snmp.Value{Tag: ber.TagNoSuchObject}
}

// getNext returns the lexicographically next bound object after oid, or
// endOfMibView.
func (a *Agent) getNext(oid []uint32, now time.Time) ([]uint32, snmp.Value) {
	i := sort.Search(len(a.mib), func(i int) bool { return oidLess(oid, a.mib[i].oid) })
	if i >= len(a.mib) {
		return oid, snmp.Value{Tag: ber.TagEndOfMibView}
	}
	return a.mib[i].oid, a.mib[i].value(a, now)
}
