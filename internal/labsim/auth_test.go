package labsim

import (
	"testing"
	"time"

	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/usm"
)

func authedAgent(t *testing.T) (*Agent, V3User) {
	t.Helper()
	user := V3User{Name: "monitor", Protocol: usm.AuthSHA1, Password: "s3cretpass"}
	a := testAgent(t, Config{
		OS:        CiscoIOS,
		Community: "c",
		User:      &user,
	})
	return a, user
}

func TestAuthenticatedGet(t *testing.T) {
	a, user := authedAgent(t)
	now := time.Now()

	// Discovery first, as a real manager would.
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	dr, err := snmp.ParseDiscoveryResponse(a.Handle(probe, now))
	if err != nil {
		t.Fatal(err)
	}

	req, err := NewAuthenticatedGet(user, dr.EngineID, dr.EngineBoots, dr.EngineTime, 55, snmp.OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(req, now)
	if resp == nil {
		t.Fatal("authenticated request not answered")
	}
	msg, err := snmp.DecodeV3(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.ScopedPDU.PDU.Type != snmp.PDUGetResponse {
		t.Fatalf("response type = %v", msg.ScopedPDU.PDU.Type)
	}
	if got := string(msg.ScopedPDU.PDU.VarBinds[0].Value.Bytes); got != CiscoIOS.Name {
		t.Errorf("sysDescr = %q", got)
	}
	// The response itself is authenticated and verifiable with our key.
	key := usm.LocalizedPasswordKey(user.Protocol, user.Password, dr.EngineID)
	if !usm.Verify(resp, user.Protocol, key) {
		t.Error("response HMAC does not verify")
	}
}

func TestAuthenticatedGetWrongPassword(t *testing.T) {
	a, user := authedAgent(t)
	now := time.Now()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	dr, _ := snmp.ParseDiscoveryResponse(a.Handle(probe, now))

	bad := user
	bad.Password = "wrong"
	req, err := NewAuthenticatedGet(bad, dr.EngineID, dr.EngineBoots, dr.EngineTime, 56, snmp.OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(req, now)
	if resp == nil {
		t.Fatal("expected a report, got silence")
	}
	got, err := snmp.ParseDiscoveryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !snmp.OIDEqual(got.ReportOID, snmp.OIDUsmStatsUnknownUserNames) {
		t.Errorf("report = %v", got.ReportOID)
	}
	// Critically: even the rejection discloses the engine ID.
	if len(got.EngineID) == 0 {
		t.Error("rejection withheld the engine ID")
	}
}

func TestAuthenticatedGetUnknownUser(t *testing.T) {
	a, _ := authedAgent(t)
	now := time.Now()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	dr, _ := snmp.ParseDiscoveryResponse(a.Handle(probe, now))

	stranger := V3User{Name: "nobody", Protocol: usm.AuthSHA1, Password: "x"}
	req, err := NewAuthenticatedGet(stranger, dr.EngineID, dr.EngineBoots, dr.EngineTime, 57, snmp.OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(req, now)
	got, err := snmp.ParseDiscoveryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !snmp.OIDEqual(got.ReportOID, snmp.OIDUsmStatsUnknownUserNames) {
		t.Errorf("report = %v", got.ReportOID)
	}
}

// TestCapturedTrafficCrack demonstrates the Section 8 attack end to end:
// capture one authenticated request, recover the password offline.
func TestCapturedTrafficCrack(t *testing.T) {
	a, user := authedAgent(t)
	now := time.Now()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	dr, _ := snmp.ParseDiscoveryResponse(a.Handle(probe, now))

	captured, err := NewAuthenticatedGet(user, dr.EngineID, dr.EngineBoots, dr.EngineTime, 58, snmp.OIDSysUpTime)
	if err != nil {
		t.Fatal(err)
	}
	wordlist := []string{"admin", "cisco123", "s3cretpass", "public"}
	pw, tried, ok := usm.Crack(captured, user.Protocol, wordlist)
	if !ok || pw != "s3cretpass" {
		t.Fatalf("crack failed: %q %v", pw, ok)
	}
	if tried != 3 {
		t.Errorf("tried = %d", tried)
	}
}

func TestAuthPrivGet(t *testing.T) {
	user := V3User{
		Name: "secops", Protocol: usm.AuthSHA1, Password: "authpass",
		PrivProtocol: usm.PrivAES128, PrivPassword: "privpass",
	}
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c", User: &user})
	now := time.Now()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	dr, _ := snmp.ParseDiscoveryResponse(a.Handle(probe, now))

	creds := usm.Credentials{
		User: user.Name, AuthProto: user.Protocol, AuthPass: user.Password,
		PrivProto: user.PrivProtocol, PrivPass: user.PrivPassword,
	}
	req, err := usm.SealGet(creds, dr.EngineID, dr.EngineBoots, dr.EngineTime, 99, 0x1234, snmp.OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(req, now)
	if resp == nil {
		t.Fatal("authPriv request not answered")
	}
	// The response is encrypted on the wire…
	if msg, err := snmp.DecodeV3(resp); err != snmp.ErrEncrypted || !msg.PrivFlag() {
		t.Fatalf("response not encrypted: %v", err)
	}
	// …and opens with the right credentials.
	scoped, err := usm.OpenResponse(creds, resp)
	if err != nil {
		t.Fatal(err)
	}
	if scoped.PDU.Type != snmp.PDUGetResponse {
		t.Fatalf("PDU type = %v", scoped.PDU.Type)
	}
	if got := string(scoped.PDU.VarBinds[0].Value.Bytes); got != CiscoIOS.Name {
		t.Errorf("sysDescr = %q", got)
	}
}

func TestAuthPrivRejectsAuthOnlyUserPriv(t *testing.T) {
	// A user without privacy configured must reject encrypted requests.
	user := V3User{Name: "plain", Protocol: usm.AuthSHA1, Password: "pw"}
	a := testAgent(t, Config{OS: CiscoIOS, Community: "c", User: &user})
	now := time.Now()
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	dr, _ := snmp.ParseDiscoveryResponse(a.Handle(probe, now))
	creds := usm.Credentials{
		User: "plain", AuthProto: usm.AuthSHA1, AuthPass: "pw",
		PrivProto: usm.PrivDES, PrivPass: "whatever",
	}
	req, err := usm.SealGet(creds, dr.EngineID, dr.EngineBoots, dr.EngineTime, 5, 1, snmp.OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	resp := a.Handle(req, now)
	got, err := snmp.ParseDiscoveryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !snmp.OIDEqual(got.ReportOID, snmp.OIDUsmStatsUnknownUserNames) {
		t.Errorf("report = %v", got.ReportOID)
	}
}
