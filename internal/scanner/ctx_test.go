package scanner_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/scanner"
)

// TestScanContextCancelMidCampaign cancels a simulated campaign from inside
// a progress callback and asserts (a) every worker shut down — Scan
// returned, no goroutines leaked — and (b) the partial campaign's
// accounting survived in both the Result and the metrics registry.
func TestScanContextCancelMidCampaign(t *testing.T) {
	before := runtime.NumGoroutine()

	w := netsim.Generate(netsim.TinyConfig(7))
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	size := targets.Size()

	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	res, err := scanner.ScanContext(ctx, w.NewTransport(), targets, scanner.Config{
		Rate: 5000, Batch: 64, Timeout: 8 * time.Second,
		Clock: w.Clock, Seed: 42, Workers: 4, Obs: reg,
		// Cancel from the first progress callback: the campaign is mid-pass
		// with all four workers active.
		ProgressEvery: 64,
		Progress: func(s scanner.Snapshot) {
			if !fired {
				fired = true
				cancel()
			}
		},
	})
	if !fired {
		t.Fatal("progress callback never fired; campaign too small to cancel mid-flight")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled campaign must still return partial accounting")
	}
	if res.Sent == 0 || res.Sent >= size {
		t.Fatalf("partial accounting: sent %d of %d targets", res.Sent, size)
	}
	if got := uint64(reg.Value("snmpfp_scan_probes_sent_total")); got != res.Sent {
		t.Fatalf("metrics sent %d != result sent %d", got, res.Sent)
	}
	if got := reg.Value("snmpfp_scan_inflight_workers"); got != 0 {
		t.Fatalf("in-flight worker gauge %v after shutdown", got)
	}

	// All campaign goroutines (workers, capture, context watcher) must be
	// gone; allow the runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScanContextPreCancelled: a context cancelled before the campaign
// starts sends nothing.
func TestScanContextPreCancelled(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(7))
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := scanner.ScanContext(ctx, w.NewTransport(), targets, scanner.Config{
		Rate: 5000, Clock: w.Clock, Seed: 42, Workers: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil && res.Sent == targets.Size() {
		t.Fatalf("pre-cancelled campaign completed a full sweep (%d probes)", res.Sent)
	}
}

// TestScanDeterministicWithObservability: attaching a registry must not
// perturb the campaign — results stay byte-identical across worker counts,
// and the deterministic metric families agree between runs.
func TestScanDeterministicWithObservability(t *testing.T) {
	run := func(workers int) (*scanner.Result, *obs.Registry) {
		w := netsim.Generate(netsim.TinyConfig(7))
		w.Cfg.Faults = netsim.FullHostileProfile()
		w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		res, err := scanner.ScanContext(context.Background(), w.NewTransport(), targets, scanner.Config{
			Rate: 5000, Batch: 256, Timeout: 8 * time.Second,
			Clock: w.Clock, Seed: 42, Workers: workers, Retries: 1, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg
	}

	baseRes, baseReg := run(1)
	for _, workers := range []int{4} {
		res, reg := run(workers)
		if got, want := resultDigest(res), resultDigest(baseRes); got != want {
			t.Errorf("workers=%d: result differs with observability enabled\nbase: %s\ngot:  %s",
				workers, firstDiff(want, got), firstDiff(got, want))
		}
		// Aggregate counters and the RTT histogram are pure functions of
		// the seed; only per-shard splits may differ across worker counts.
		for _, fam := range []string{
			"snmpfp_scan_probes_sent_total",
			"snmpfp_scan_retries_total",
			"snmpfp_scan_responses_total",
			"snmpfp_scan_offpath_rejected_total",
			"snmpfp_scan_probe_rtt_seconds",
			"snmpfp_scan_unanswered_total",
		} {
			if got, want := reg.Value(fam), baseReg.Value(fam); got != want {
				t.Errorf("workers=%d: %s = %v, want %v", workers, fam, got, want)
			}
		}
	}
}
