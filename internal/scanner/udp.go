package scanner

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"time"
)

// UDPTransport sends probes over a real UDP socket — the transport a live
// campaign (and the loopback integration tests and examples) uses.
type UDPTransport struct {
	conn *net.UDPConn
	// Port is the destination port, 161 for SNMP.
	port uint16
	// buf is the receive buffer, sized for the largest possible UDP
	// payload so no datagram is ever silently truncated into corrupt BER.
	// Recv is called from a single capture goroutine, so one reusable
	// buffer (with responses copied out) replaces a per-packet allocation.
	buf [maxUDPPayload]byte
}

// maxUDPPayload is the largest payload an IPv4/IPv6 UDP datagram can carry.
// The previous fixed 2048-byte buffer silently truncated anything larger —
// ReadFromUDPAddrPort discards the excess — handing the parser corrupt BER
// with no signal.
const maxUDPPayload = 65535

// NewUDPTransport opens a wildcard UDP socket probing the given destination
// port.
func NewUDPTransport(port uint16) (*UDPTransport, error) {
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn, port: port}, nil
}

// LocalAddr returns the bound source address.
func (t *UDPTransport) LocalAddr() netip.AddrPort {
	return t.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Send implements Transport.
func (t *UDPTransport) Send(dst netip.Addr, payload []byte) error {
	_, err := t.conn.WriteToUDPAddrPort(payload, netip.AddrPortFrom(dst, t.port))
	return err
}

// Recv implements Transport. The receive timestamp is taken as the datagram
// is read, matching how the paper derives last-reboot times from packet
// receive times.
func (t *UDPTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	n, from, err := t.conn.ReadFromUDPAddrPort(t.buf[:])
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			err = io.EOF
		}
		return netip.Addr{}, nil, time.Time{}, err
	}
	payload := make([]byte, n)
	copy(payload, t.buf[:n])
	return from.Addr().Unmap(), payload, time.Now(), nil
}

// Close implements Transport.
func (t *UDPTransport) Close() error { return t.conn.Close() }
