package scanner

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"time"

	"snmpv3fp/internal/bufpool"
)

// UDPTransport sends probes over a real UDP socket — the transport a live
// campaign (and the loopback integration tests and examples) uses.
type UDPTransport struct {
	conn *net.UDPConn
	// Port is the destination port, 161 for SNMP.
	port uint16
	// pool recycles receive buffers. Recv reads each datagram into a pooled
	// buffer sized for the largest possible UDP payload (so nothing is ever
	// silently truncated into corrupt BER) and returns a payload slice of
	// it; ReleasePayload returns the buffer for reuse. Callers that never
	// release degrade to the old allocate-per-datagram behavior.
	pool *bufpool.Pool
}

// maxUDPPayload is the largest payload an IPv4/IPv6 UDP datagram can carry.
// The previous fixed 2048-byte buffer silently truncated anything larger —
// ReadFromUDPAddrPort discards the excess — handing the parser corrupt BER
// with no signal.
const maxUDPPayload = 65535

// recvPoolSize bounds how many receive buffers the transport keeps parked
// for reuse; beyond it, released buffers fall back to the GC.
const recvPoolSize = 64

// NewUDPTransport opens a wildcard UDP socket probing the given destination
// port.
func NewUDPTransport(port uint16) (*UDPTransport, error) {
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn, port: port, pool: bufpool.New(recvPoolSize, maxUDPPayload)}, nil
}

// LocalAddr returns the bound source address.
func (t *UDPTransport) LocalAddr() netip.AddrPort {
	return t.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Send implements Transport.
func (t *UDPTransport) Send(dst netip.Addr, payload []byte) error {
	_, err := t.conn.WriteToUDPAddrPort(payload, netip.AddrPortFrom(dst, t.port))
	return err
}

// Recv implements Transport. The receive timestamp is taken as the datagram
// is read, matching how the paper derives last-reboot times from packet
// receive times.
//
// The returned payload is backed by a pooled buffer owned by the caller;
// pass it to ReleasePayload once it is parsed or copied, and do not touch it
// afterwards. Skipping the release is safe — the buffer is simply collected.
func (t *UDPTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	buf := t.pool.Get()
	n, from, err := t.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		t.pool.Put(buf)
		if errors.Is(err, net.ErrClosed) {
			err = io.EOF
		}
		return netip.Addr{}, nil, time.Time{}, err
	}
	return from.Addr().Unmap(), buf[:n], time.Now(), nil
}

// ReleasePayload implements PayloadReleaser: it returns a payload obtained
// from Recv to the receive-buffer pool.
func (t *UDPTransport) ReleasePayload(p []byte) { t.pool.Put(p) }

// Close implements Transport.
func (t *UDPTransport) Close() error { return t.conn.Close() }
