package scanner

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"syscall"
	"time"

	"snmpv3fp/internal/bufpool"
)

// UDPTransport sends probes over a real UDP socket — the transport a live
// campaign (and the loopback integration tests and examples) uses. It
// implements BatchSender and BatchReceiver: on linux/amd64 and linux/arm64
// the batch paths use sendmmsg/recvmmsg to move many datagrams per syscall;
// elsewhere they fall back to portable per-datagram loops (udp_mmsg_fallback.go)
// so callers can use the batch API unconditionally.
type UDPTransport struct {
	conn *net.UDPConn
	// Port is the destination port, 161 for SNMP.
	port uint16
	// pool recycles receive buffers. Recv reads each datagram into a pooled
	// buffer sized for the largest possible UDP payload (so nothing is ever
	// silently truncated into corrupt BER) and returns a payload slice of
	// it; ReleasePayload returns the buffer for reuse. Callers that never
	// release degrade to the old allocate-per-datagram behavior.
	//
	// RecvBatch leases rings of these buffers via GetBatch; ownership is
	// per-datagram and identical to Recv's contract.
	pool *bufpool.Pool
	// raw is the connection's syscall.RawConn, cached at construction for
	// the sendmmsg/recvmmsg paths (obtaining it per batch would allocate).
	raw syscall.RawConn
	// family6 records whether the socket is AF_INET6 (the default wildcard
	// bind): batch sends must then address IPv4 targets as v4-mapped IPv6.
	family6 bool
}

// maxUDPPayload is the largest payload an IPv4/IPv6 UDP datagram can carry.
// The previous fixed 2048-byte buffer silently truncated anything larger —
// ReadFromUDPAddrPort discards the excess — handing the parser corrupt BER
// with no signal.
const maxUDPPayload = 65535

// recvPoolSize bounds how many receive buffers the transport keeps parked
// for reuse; beyond it, released buffers fall back to the GC.
const recvPoolSize = 64

// NewUDPTransport opens a wildcard UDP socket probing the given destination
// port.
func NewUDPTransport(port uint16) (*UDPTransport, error) {
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, err
	}
	raw, err := conn.SyscallConn()
	if err != nil {
		conn.Close()
		return nil, err
	}
	local := conn.LocalAddr().(*net.UDPAddr).AddrPort().Addr()
	return &UDPTransport{
		conn:    conn,
		port:    port,
		pool:    bufpool.New(recvPoolSize, maxUDPPayload),
		raw:     raw,
		family6: !local.Is4(),
	}, nil
}

// LocalAddr returns the bound source address.
func (t *UDPTransport) LocalAddr() netip.AddrPort {
	return t.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Send implements Transport. A short write — the kernel accepting fewer
// bytes than the payload — would put corrupt BER on the wire; it is reported
// as an error rather than silently ignored.
func (t *UDPTransport) Send(dst netip.Addr, payload []byte) error {
	n, err := t.conn.WriteToUDPAddrPort(payload, netip.AddrPortFrom(dst, t.port))
	if err != nil {
		return err
	}
	if n != len(payload) {
		return fmt.Errorf("scanner: short write to %v: %d of %d bytes", dst, n, len(payload))
	}
	return nil
}

// Recv implements Transport. The receive timestamp is taken as the datagram
// is read, matching how the paper derives last-reboot times from packet
// receive times.
//
// The returned payload is backed by a pooled buffer owned by the caller;
// pass it to ReleasePayload once it is parsed or copied, and do not touch it
// afterwards. Skipping the release is safe — the buffer is simply collected.
func (t *UDPTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	buf := t.pool.Get()
	n, from, err := t.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		t.pool.Put(buf)
		if errors.Is(err, net.ErrClosed) {
			err = io.EOF
		}
		return netip.Addr{}, nil, time.Time{}, err
	}
	return from.Addr().Unmap(), buf[:n], time.Now(), nil
}

// SendBatch implements BatchSender: one payload to every destination in
// dsts, using sendmmsg where available. It returns the number of leading
// destinations sent; n < len(dsts) implies err != nil. Per-message byte
// counts are checked — a short write inside an otherwise-successful
// sendmmsg is surfaced as an error at its offset, never silently skipped.
func (t *UDPTransport) SendBatch(dsts []netip.Addr, payload []byte) (int, error) {
	return t.sendBatch(dsts, payload)
}

// RecvBatch implements BatchReceiver: it blocks for at least one datagram,
// then drains as many as are immediately available (recvmmsg where possible)
// into into, up to len(into). Each filled Datagram's payload is a pooled
// buffer under the same ownership contract as Recv — release each exactly
// once via ReleasePayload. Returns io.EOF after Close.
func (t *UDPTransport) RecvBatch(into []Datagram) (int, error) {
	return t.recvBatch(into)
}

// ReleasePayload implements PayloadReleaser: it returns a payload obtained
// from Recv to the receive-buffer pool.
func (t *UDPTransport) ReleasePayload(p []byte) { t.pool.Put(p) }

// Close implements Transport.
func (t *UDPTransport) Close() error { return t.conn.Close() }
