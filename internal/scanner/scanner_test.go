package scanner

import (
	"io"
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/vclock"
)

// echoTransport answers selected targets with a canned report.
type echoTransport struct {
	responders map[netip.Addr][]byte
	ch         chan Response
	clock      vclock.Clock
	sent       int
}

func newEchoTransport(clock vclock.Clock) *echoTransport {
	return &echoTransport{
		responders: map[netip.Addr][]byte{},
		ch:         make(chan Response, 1024),
		clock:      clock,
	}
}

func (e *echoTransport) Send(dst netip.Addr, payload []byte) error {
	e.sent++
	if resp, ok := e.responders[dst]; ok {
		e.ch <- Response{Src: dst, Payload: resp, At: e.clock.Now()}
	}
	return nil
}

func (e *echoTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	r, ok := <-e.ch
	if !ok {
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	return r.Src, r.Payload, r.At, nil
}

func (e *echoTransport) Close() error {
	close(e.ch)
	return nil
}

func TestScanCollectsResponses(t *testing.T) {
	clock := vclock.NewVirtual(time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC))
	tr := newEchoTransport(clock)
	report, _ := snmp.NewDiscoveryReport(snmp.NewDiscoveryRequest(1, 1),
		[]byte{0x80, 0, 0, 9, 3, 1, 2, 3, 4, 5, 6}, 2, 100, 1).Encode()
	tr.responders[netip.MustParseAddr("192.0.2.7")] = report
	tr.responders[netip.MustParseAddr("192.0.2.200")] = report

	targets, err := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(tr, targets, Config{Rate: 100000, Clock: clock, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 256 {
		t.Errorf("sent = %d", res.Sent)
	}
	if len(res.Responses) != 2 {
		t.Fatalf("responses = %d", len(res.Responses))
	}
	// Virtual time must have advanced by send pacing plus the timeout.
	elapsed := res.Finished.Sub(res.Started)
	wantMin := 256*time.Second/100000 + 8*time.Second
	if elapsed < wantMin {
		t.Errorf("virtual elapsed %v < %v", elapsed, wantMin)
	}
}

func TestScanPacing(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	tr := newEchoTransport(clock)
	targets, _ := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("10.0.0.0/22")}, 1)
	res, err := Scan(tr, targets, Config{Rate: 1000, Batch: 64, Timeout: time.Second, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// 1024 targets at 1 kpps ≈ 1.024 s of sending + 1 s drain.
	elapsed := res.Finished.Sub(res.Started)
	if elapsed < 2*time.Second || elapsed > 3*time.Second {
		t.Errorf("virtual elapsed = %v, want ~2s", elapsed)
	}
}

func TestScanProbesAreValidSNMPv3(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	var captured []byte
	tr := &captureTransport{clock: clock, onSend: func(p []byte) { captured = p }, closed: make(chan struct{})}
	targets, _ := NewListSpace([]netip.Addr{netip.MustParseAddr("192.0.2.1")}, 1)
	if _, err := Scan(tr, targets, Config{Rate: 1000, Clock: clock}); err != nil {
		t.Fatal(err)
	}
	msg, err := snmp.DecodeV3(captured)
	if err != nil {
		t.Fatalf("probe is not valid SNMPv3: %v", err)
	}
	if len(msg.USM.AuthoritativeEngineID) != 0 || !msg.Reportable() {
		t.Error("probe is not a discovery request")
	}
}

type captureTransport struct {
	clock  vclock.Clock
	onSend func([]byte)
	closed chan struct{}
}

func (c *captureTransport) Send(dst netip.Addr, payload []byte) error {
	c.onSend(payload)
	return nil
}

func (c *captureTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	<-c.closed
	return netip.Addr{}, nil, time.Time{}, io.EOF
}

func (c *captureTransport) Close() error {
	close(c.closed)
	return nil
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Rate != 5000 || c.Batch != 64 || c.Timeout != 8*time.Second || c.Clock == nil {
		t.Errorf("defaults = %+v", c)
	}
}
