//go:build linux && (amd64 || arm64)

package scanner

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"syscall"
	"time"
	"unsafe"
)

// Batched UDP I/O over sendmmsg(2)/recvmmsg(2). The Go standard library
// exposes neither call, and this module deliberately carries no external
// dependencies (no golang.org/x/sys), so the two syscalls are invoked raw:
// per-architecture syscall numbers live in udp_mmsg_linux_{amd64,arm64}.go
// and the mmsghdr layout is declared here. The implementation is gated to
// 64-bit Linux because syscall.Msghdr's Iovlen/Controllen widths are
// arch-dependent; every other platform takes the portable loop in
// udp_mmsg_fallback.go.

// mmsgChunk bounds how many messages one sendmmsg/recvmmsg call carries.
// The per-call header/iovec/sockaddr scratch lives on the stack, so the
// bound also caps stack growth (~128 × ~100 B ≈ 13 KiB per array set).
const mmsgChunk = 128

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-filled per-message byte count, padded to 8-byte alignment on the
// 64-bit targets this file builds for.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// putPort stores port into a sockaddr port field in network byte order,
// independent of host endianness.
func putPort(dst *uint16, port uint16) {
	p := (*[2]byte)(unsafe.Pointer(dst))
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

// sockaddrAddr recovers the source address from a kernel-filled sockaddr
// buffer (declared as the larger RawSockaddrInet6; AF_INET reinterprets).
func sockaddrAddr(sa *syscall.RawSockaddrInet6) netip.Addr {
	if sa.Family == syscall.AF_INET {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrFrom4(sa4.Addr)
	}
	return netip.AddrFrom16(sa.Addr).Unmap()
}

// sendBatch is the sendmmsg implementation behind SendBatch: it walks dsts
// in mmsgChunk-sized runs, retrying partially-accepted runs, and returns on
// the first error with the count of destinations confirmed sent.
func (t *UDPTransport) sendBatch(dsts []netip.Addr, payload []byte) (int, error) {
	sent := 0
	for sent < len(dsts) {
		run := dsts[sent:]
		if len(run) > mmsgChunk {
			run = run[:mmsgChunk]
		}
		n, err := t.sendmmsgChunk(run, payload)
		sent += n
		if err != nil {
			return sent, err
		}
		if n == 0 {
			// sendmmsg reported success but accepted nothing; bail rather
			// than spin (should be impossible — a failing first message
			// surfaces as an errno).
			return sent, io.ErrNoProgress
		}
	}
	return sent, nil
}

func (t *UDPTransport) sendmmsgChunk(dsts []netip.Addr, payload []byte) (int, error) {
	var (
		hdrs  [mmsgChunk]mmsghdr
		names [mmsgChunk]syscall.RawSockaddrInet6
		iov   [mmsgChunk]syscall.Iovec
	)
	k := len(dsts)
	for i, dst := range dsts {
		if len(payload) > 0 {
			iov[i].Base = &payload[0]
			iov[i].SetLen(len(payload))
		}
		h := &hdrs[i].hdr
		h.Iov = &iov[i]
		h.Iovlen = 1
		if t.family6 {
			// Wildcard sockets are AF_INET6; IPv4 targets go v4-mapped.
			sa := &names[i]
			sa.Family = syscall.AF_INET6
			putPort(&sa.Port, t.port)
			sa.Addr = dst.As16()
			h.Name = (*byte)(unsafe.Pointer(sa))
			h.Namelen = uint32(unsafe.Sizeof(*sa))
		} else {
			sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&names[i]))
			sa.Family = syscall.AF_INET
			putPort(&sa.Port, t.port)
			sa.Addr = dst.Unmap().As4()
			h.Name = (*byte)(unsafe.Pointer(sa))
			h.Namelen = uint32(unsafe.Sizeof(*sa))
		}
	}
	var (
		n     int
		errno syscall.Errno
	)
	werr := t.raw.Write(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&hdrs[0])), uintptr(k), 0, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EWOULDBLOCK {
			// Unwritable socket: park on the runtime poller and retry when
			// writable instead of bubbling EAGAIN per call.
			return false
		}
		n, errno = int(r1), e
		return true
	})
	if werr != nil {
		return 0, werr
	}
	if errno != 0 {
		return 0, fmt.Errorf("scanner: sendmmsg: %w", errno)
	}
	// The kernel accepted n messages; verify each went out whole. A short
	// write inside an accepted message would put truncated BER on the wire
	// with no errno — surface it against the offending destination.
	for i := 0; i < n; i++ {
		if int(hdrs[i].n) != len(payload) {
			return i, fmt.Errorf("scanner: short write to %v: %d of %d bytes",
				dsts[i], hdrs[i].n, len(payload))
		}
	}
	return n, nil
}

// recvBatch is the recvmmsg implementation behind RecvBatch: it blocks on
// the runtime poller for the first datagram, then drains whatever else is
// immediately queued, up to len(into) (capped at mmsgChunk per call).
func (t *UDPTransport) recvBatch(into []Datagram) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	var (
		hdrs  [mmsgChunk]mmsghdr
		names [mmsgChunk]syscall.RawSockaddrInet6
		iov   [mmsgChunk]syscall.Iovec
		bufs  [mmsgChunk][]byte
	)
	k := len(into)
	if k > mmsgChunk {
		k = mmsgChunk
	}
	ring := bufs[:k]
	t.pool.GetBatch(ring)
	for i := range ring {
		iov[i].Base = &ring[i][0]
		iov[i].SetLen(len(ring[i]))
		h := &hdrs[i].hdr
		h.Iov = &iov[i]
		h.Iovlen = 1
		h.Name = (*byte)(unsafe.Pointer(&names[i]))
		h.Namelen = uint32(unsafe.Sizeof(names[i]))
	}
	var (
		n     int
		errno syscall.Errno
	)
	rerr := t.raw.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&hdrs[0])), uintptr(k),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EWOULDBLOCK {
			return false // nothing queued: block on the poller
		}
		n, errno = int(r1), e
		return true
	})
	at := time.Now()
	if rerr != nil || errno != 0 {
		t.pool.PutBatch(ring)
		if rerr == nil {
			return 0, fmt.Errorf("scanner: recvmmsg: %w", errno)
		}
		if errors.Is(rerr, net.ErrClosed) {
			rerr = io.EOF
		}
		return 0, rerr
	}
	for i := 0; i < n; i++ {
		into[i] = Datagram{
			Src:     sockaddrAddr(&names[i]),
			Payload: ring[i][:hdrs[i].n],
			At:      at,
		}
		ring[i] = nil // ownership moved to the caller
	}
	t.pool.PutBatch(ring) // return the unfilled tail
	return n, nil
}
