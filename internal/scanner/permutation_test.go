package scanner

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPermutationCoversAll(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 8, 100, 1000, 4097} {
		p, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: out-of-range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: covered %d values", n, len(seen))
		}
	}
}

func TestPermutationQuick(t *testing.T) {
	f := func(n uint16, seed int64) bool {
		size := uint64(n%2000) + 1
		p, err := NewPermutation(size, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, size)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return uint64(len(seen)) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a, _ := NewPermutation(500, 7)
	b, _ := NewPermutation(500, 7)
	for {
		va, oka := a.Next()
		vb, okb := b.Next()
		if oka != okb || va != vb {
			t.Fatal("same seed should produce the same order")
		}
		if !oka {
			break
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	a, _ := NewPermutation(1000, 1)
	b, _ := NewPermutation(1000, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		va, _ := a.Next()
		vb, _ := b.Next()
		if va == vb {
			same++
		}
	}
	if same > 100 {
		t.Errorf("orders under different seeds agree at %d/1000 positions", same)
	}
}

func TestPermutationEmpty(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("empty space should error")
	}
}

func TestPermutationSpreads(t *testing.T) {
	// Measurement property: consecutive probes should not walk a single
	// /24. Check that the first 256 outputs of a 2^16 permutation touch
	// many different high bytes.
	p, _ := NewPermutation(1<<16, 99)
	high := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		v, _ := p.Next()
		high[v>>8] = true
	}
	if len(high) < 100 {
		t.Errorf("first 256 probes touched only %d /24s", len(high))
	}
}

func TestPrefixSpace(t *testing.T) {
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("192.0.2.0/28"),
		netip.MustParsePrefix("198.51.100.0/29"),
	}
	s, err := NewPrefixSpace(prefixes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 16+8 {
		t.Fatalf("Size = %d", s.Size())
	}
	seen := map[netip.Addr]bool{}
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if seen[a] {
			t.Fatalf("duplicate %v", a)
		}
		seen[a] = true
		in := false
		for _, p := range prefixes {
			if p.Contains(a) {
				in = true
			}
		}
		if !in {
			t.Fatalf("%v outside all prefixes", a)
		}
	}
	if len(seen) != 24 {
		t.Fatalf("covered %d addresses", len(seen))
	}
}

func TestListSpace(t *testing.T) {
	addrs := []netip.Addr{
		netip.MustParseAddr("2001:4860::1"),
		netip.MustParseAddr("2001:4860::2"),
		netip.MustParseAddr("2001:4860::3"),
	}
	s, err := NewListSpace(addrs, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netip.Addr]bool{}
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("covered %d", len(seen))
	}
}

func TestShardsPartitionSpace(t *testing.T) {
	for _, tc := range []struct {
		n      uint64
		shards int
	}{{1000, 1}, {1000, 2}, {1000, 3}, {4097, 4}, {100, 7}} {
		seen := map[uint64]int{}
		total := 0
		for shard := 0; shard < tc.shards; shard++ {
			p, err := NewPermutationShard(tc.n, 99, shard, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			for {
				v, ok := p.Next()
				if !ok {
					break
				}
				if v >= tc.n {
					t.Fatalf("n=%d k=%d: out of range %d", tc.n, tc.shards, v)
				}
				seen[v]++
				total++
			}
		}
		if uint64(total) != tc.n {
			t.Fatalf("n=%d k=%d: shards produced %d values", tc.n, tc.shards, total)
		}
		for v, count := range seen {
			if count != 1 {
				t.Fatalf("n=%d k=%d: value %d produced %d times", tc.n, tc.shards, v, count)
			}
		}
	}
}

func TestShardMatchesFullPermutation(t *testing.T) {
	// Shard 0 of 1 must reproduce the unsharded order exactly.
	full, _ := NewPermutation(500, 3)
	sharded, err := NewPermutationShard(500, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, okA := full.Next()
		b, okB := sharded.Next()
		if okA != okB || a != b {
			t.Fatal("shard 0/1 diverges from the full permutation")
		}
		if !okA {
			break
		}
	}
}

func TestShardSubsequence(t *testing.T) {
	// Shard i of k emits exactly the full cycle's positions i, i+k, i+2k…
	n := uint64(300)
	var fullSeq []uint64
	full, _ := NewPermutationShard(n, 7, 0, 1)
	for {
		v, ok := full.Next()
		if !ok {
			break
		}
		fullSeq = append(fullSeq, v)
	}
	// Reconstruct full-cycle positions (including skips) to check the
	// sharded subsequence property on emitted values only when n is a
	// power of two (no skips). Use n=256 for exactness.
	n = 256
	fullSeq = fullSeq[:0]
	full, _ = NewPermutationShard(n, 7, 0, 1)
	for {
		v, ok := full.Next()
		if !ok {
			break
		}
		fullSeq = append(fullSeq, v)
	}
	k := 3
	for shard := 0; shard < k; shard++ {
		p, err := NewPermutationShard(n, 7, shard, k)
		if err != nil {
			t.Fatal(err)
		}
		i := shard
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if i >= len(fullSeq) || fullSeq[i] != v {
				t.Fatalf("shard %d/%d: position %d = %d, want %d", shard, k, i, v, fullSeq[i])
			}
			i += k
		}
	}
}

func TestShardErrors(t *testing.T) {
	if _, err := NewPermutationShard(10, 1, -1, 2); err == nil {
		t.Error("negative shard accepted")
	}
	if _, err := NewPermutationShard(10, 1, 2, 2); err == nil {
		t.Error("shard >= total accepted")
	}
	if _, err := NewPermutationShard(10, 1, 0, 0); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestPrefixSpaceShards(t *testing.T) {
	prefixes := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/22")}
	seen := map[netip.Addr]bool{}
	for shard := 0; shard < 3; shard++ {
		s, err := NewPrefixSpaceShard(prefixes, 5, shard, 3)
		if err != nil {
			t.Fatal(err)
		}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if seen[a] {
				t.Fatalf("address %v in two shards", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != 1024 {
		t.Fatalf("shards covered %d of 1024 addresses", len(seen))
	}
}
