package scanner_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

// runSimCampaign scans a freshly generated tiny world so every invocation
// starts from identical simulator state; only the engine's worker count and
// retry budget vary. A non-nil fault profile turns on the netsim hostile
// path layer.
func runSimCampaign(t *testing.T, workers, retries int, faults *netsim.FaultProfile) *scanner.Result {
	t.Helper()
	w := netsim.Generate(netsim.TinyConfig(7))
	w.Cfg.Faults = faults
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scanner.Scan(w.NewTransport(), targets, scanner.Config{
		Rate: 5000, Batch: 256, Timeout: 8 * time.Second,
		Clock: w.Clock, Seed: 42, Workers: workers, Retries: retries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultDigest serializes everything observable about a Result, so two
// digests are equal iff the campaigns are byte-identical.
func resultDigest(r *scanner.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d retried=%d offpath=%d msgid=%d started=%d finished=%d n=%d\n",
		r.Sent, r.Retried, r.OffPath, r.ProbeMsgID,
		r.Started.UnixNano(), r.Finished.UnixNano(), len(r.Responses))
	for _, resp := range r.Responses {
		fmt.Fprintf(&b, "%v %d %x\n", resp.Src, resp.At.UnixNano(), resp.Payload)
	}
	return b.String()
}

func TestScanDeterministicAcrossWorkerCounts(t *testing.T) {
	base := resultDigest(runSimCampaign(t, 1, 0, nil))
	if !strings.Contains(base, "\n") || strings.HasPrefix(base, "sent=0") {
		t.Fatalf("baseline campaign is empty: %q", base[:min(len(base), 80)])
	}
	for _, workers := range []int{4, 16} {
		got := resultDigest(runSimCampaign(t, workers, 0, nil))
		if got != base {
			t.Errorf("workers=%d: campaign result differs from workers=1\nbase: %s\ngot:  %s",
				workers, firstDiff(base, got), firstDiff(got, base))
		}
	}
}

func TestScanDeterministicWithRetries(t *testing.T) {
	base := resultDigest(runSimCampaign(t, 1, 1, nil))
	got := resultDigest(runSimCampaign(t, 4, 1, nil))
	if got != base {
		t.Errorf("retry campaign differs across worker counts\nbase: %s\ngot:  %s",
			firstDiff(base, got), firstDiff(got, base))
	}
}

// TestScanDeterministicUnderFaults is the tentpole acceptance check: with
// the full hostile fault profile active (loss, rate limiting, msgID
// rewriting, duplication, truncation, corruption, off-path spoofing,
// jitter), a campaign Result is still byte-identical across worker counts.
func TestScanDeterministicUnderFaults(t *testing.T) {
	base := resultDigest(runSimCampaign(t, 1, 0, netsim.FullHostileProfile()))
	if !strings.Contains(base, "offpath=") || strings.HasPrefix(base, "sent=0") {
		t.Fatalf("faulted baseline campaign is empty: %q", base[:min(len(base), 120)])
	}
	for _, workers := range []int{4, 16} {
		got := resultDigest(runSimCampaign(t, workers, 0, netsim.FullHostileProfile()))
		if got != base {
			t.Errorf("workers=%d: faulted campaign differs from workers=1\nbase: %s\ngot:  %s",
				workers, firstDiff(base, got), firstDiff(got, base))
		}
	}
}

// TestScanRejectsOffPathSources pins the engine-side defense: spoofed
// datagrams from sources outside the target space never reach Responses and
// are tallied in OffPath instead.
func TestScanRejectsOffPathSources(t *testing.T) {
	res := runSimCampaign(t, 4, 0, netsim.FullHostileProfile())
	if res.OffPath == 0 {
		t.Fatal("hostile campaign saw no off-path datagrams")
	}
	for _, r := range res.Responses {
		if !r.Src.Is4() {
			t.Fatalf("IPv4 campaign captured non-IPv4 source %v", r.Src)
		}
		if b := r.Src.As4(); b[0] >= 0xF0 {
			t.Fatalf("spoofed class-E source %v reached Responses", r.Src)
		}
	}
}

// firstDiff returns the first line of a where a and b diverge, for readable
// failure output (full digests run to thousands of lines).
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q", i, la[i])
		}
	}
	return "(prefix equal)"
}
