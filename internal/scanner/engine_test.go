package scanner

import (
	"errors"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snmpv3fp/internal/vclock"
)

// failTransport fails every Send and tracks Close, for the goroutine-leak
// regression: the engine must close the transport (unblocking capture) on
// the send-error exit path too.
type failTransport struct {
	err       error
	closed    chan struct{}
	closeOnce sync.Once
	wasClosed atomic.Bool
}

func (f *failTransport) Send(dst netip.Addr, payload []byte) error { return f.err }

func (f *failTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	<-f.closed
	return netip.Addr{}, nil, time.Time{}, io.EOF
}

func (f *failTransport) Close() error {
	f.wasClosed.Store(true)
	f.closeOnce.Do(func() { close(f.closed) })
	return nil
}

func TestScanSendFailureClosesTransport(t *testing.T) {
	before := runtime.NumGoroutine()
	sentinel := errors.New("interface down")
	for _, workers := range []int{1, 4} {
		tr := &failTransport{err: sentinel, closed: make(chan struct{})}
		targets, err := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}, 1)
		if err != nil {
			t.Fatal(err)
		}
		clock := vclock.NewVirtual(time.Unix(0, 0))
		_, err = Scan(tr, targets, Config{Rate: 1000, Clock: clock, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: send failure not reported", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error %v does not wrap the send error", workers, err)
		}
		if !tr.wasClosed.Load() {
			t.Errorf("workers=%d: transport left open after send failure", workers)
		}
	}
	// The capture goroutine must have exited on every path above. Allow the
	// runtime a moment to retire finished goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across failed scans: %d before, %d after", before, after)
	}
}

// countTransport is a concurrency-safe transport with scripted responders:
// answerOn maps an address to the attempt number (1-based) on which it
// responds. It implements ResponseCounter so retry snapshots are exact.
type countTransport struct {
	clock    vclock.Clock
	answerOn func(netip.Addr) int

	mu       sync.Mutex
	attempts map[netip.Addr]int
	ch       chan Response
	closed   bool
	queued   atomic.Uint64
	sent     atomic.Uint64
}

func newCountTransport(clock vclock.Clock, answerOn func(netip.Addr) int) *countTransport {
	return &countTransport{
		clock:    clock,
		answerOn: answerOn,
		attempts: map[netip.Addr]int{},
		ch:       make(chan Response, 1<<16),
	}
}

func (c *countTransport) Send(dst netip.Addr, payload []byte) error {
	c.sent.Add(1)
	c.mu.Lock()
	c.attempts[dst]++
	n := c.attempts[dst]
	c.mu.Unlock()
	if c.answerOn != nil && n == c.answerOn(dst) {
		c.queued.Add(1)
		c.ch <- Response{Src: dst, Payload: []byte{0x30, 0x00}, At: c.clock.Now()}
	}
	return nil
}

func (c *countTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	r, ok := <-c.ch
	if !ok {
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	return r.Src, r.Payload, r.At, nil
}

func (c *countTransport) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	return nil
}

func (c *countTransport) QueuedResponses() uint64 { return c.queued.Load() }

func (c *countTransport) attemptsFor(a netip.Addr) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts[a]
}

func TestScanRetryReprobesOnlyNonResponders(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	// Even last byte: answers the first probe. Odd: answers only the retry.
	tr := newCountTransport(clock, func(a netip.Addr) int {
		if a.As4()[3]%2 == 0 {
			return 1
		}
		return 2
	})
	targets, err := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(tr, targets, Config{
		Rate: 100000, Batch: 32, Timeout: time.Second, Clock: clock, Seed: 9,
		Workers: 2, Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 256+128 {
		t.Errorf("Sent = %d, want 384 (256 first pass + 128 retries)", res.Sent)
	}
	if res.Retried != 128 {
		t.Errorf("Retried = %d, want 128", res.Retried)
	}
	if len(res.Responses) != 256 {
		t.Errorf("responses = %d, want every target after the retry pass", len(res.Responses))
	}
	// Responders from pass one must not have been probed again.
	for i := 0; i < 256; i++ {
		a := netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})
		want := 1
		if i%2 == 1 {
			want = 2
		}
		if got := tr.attemptsFor(a); got != want {
			t.Fatalf("%v probed %d times, want %d", a, got, want)
		}
	}
}

func TestScanCoordinatedPacing(t *testing.T) {
	// Four workers pacing one virtual timeline must advance it like four
	// parallel machines: ~n/Rate + Timeout, not four times that.
	clock := vclock.NewVirtual(time.Unix(0, 0))
	tr := newCountTransport(clock, nil)
	targets, err := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("10.0.0.0/22")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(tr, targets, Config{
		Rate: 1000, Batch: 64, Timeout: time.Second, Clock: clock, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 1024 {
		t.Fatalf("Sent = %d", res.Sent)
	}
	// 1024 targets at 1 kpps aggregate ≈ 1.024 s of sending + 1 s drain.
	elapsed := res.Finished.Sub(res.Started)
	if elapsed < 2*time.Second || elapsed > 3*time.Second {
		t.Errorf("virtual elapsed = %v, want ~2s (uncoordinated workers would give ~5s)", elapsed)
	}
}

// overshootClock models a host whose sleeps systematically return late — the
// real-world behavior of timer slack and scheduler latency. Every Sleep
// overshoots its requested duration by a fixed amount.
type overshootClock struct {
	mu        sync.Mutex
	now       time.Time
	overshoot time.Duration
}

func (c *overshootClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *overshootClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d + c.overshoot)
	c.mu.Unlock()
}

// TestScanPacingCarriesOvershoot pins the deadline-pacing bugfix: sleep
// overshoot must be carried into the next batch's deadline, not accumulated
// into rate sag. On a clock that overshoots every sleep by 5ms, the realized
// send window must stay within one overshoot of the ideal n/Rate window; the
// old sleep-a-duration pacer accumulated one overshoot per batch (+80ms over
// this pass, ~8% under the target rate).
func TestScanPacingCarriesOvershoot(t *testing.T) {
	const overshoot = 5 * time.Millisecond
	clock := &overshootClock{now: time.Unix(0, 0), overshoot: overshoot}
	tr := newCountTransport(clock, nil)
	targets, err := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("10.0.0.0/22")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(tr, targets, Config{
		Rate: 1000, Batch: 64, Timeout: time.Second, Clock: clock, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 1024 {
		t.Fatalf("Sent = %d", res.Sent)
	}
	// Finished = send window + drain Timeout (whose own sleep overshoots once).
	window := res.Finished.Sub(res.Started) - time.Second - overshoot
	ideal := 1024 * time.Second / 1000
	if window < ideal {
		t.Errorf("send window %v shorter than ideal %v: pacing under-slept", window, ideal)
	}
	if lag := window - ideal; lag > 2*overshoot {
		t.Errorf("send window %v exceeds ideal %v by %v: overshoot accumulated into rate sag (old pacer: ~%v)",
			window, ideal, lag, 16*overshoot)
	}
}

func TestRateClampKeepsPacing(t *testing.T) {
	// Rate beyond 1e9 pps used to truncate the per-batch interval to zero,
	// silently disabling pacing. fill() now clamps it.
	c := Config{Rate: 2_000_000_000}
	c.fill()
	if c.Rate != maxRate {
		t.Fatalf("Rate clamped to %d, want %d", c.Rate, maxRate)
	}
	e := &engine{cfg: c, workers: 1}
	if d := e.paceDuration(c.Batch); d <= 0 {
		t.Errorf("pace interval %v at the clamped max rate; pacing disabled", d)
	}
	if d := e.slotOffset(1); d <= 0 {
		t.Errorf("slot offset %v at the clamped max rate", d)
	}
}

func TestConfigClamps(t *testing.T) {
	c := Config{Workers: -3, Retries: -1, Batch: 1 << 30}
	c.fill()
	if c.Workers != 1 {
		t.Errorf("Workers = %d, want 1", c.Workers)
	}
	if c.Retries != 0 {
		t.Errorf("Retries = %d, want 0", c.Retries)
	}
	if c.Batch != maxBatch {
		t.Errorf("Batch = %d, want %d", c.Batch, maxBatch)
	}
	c = Config{Workers: 1 << 20}
	c.fill()
	if c.Workers != maxWorkers {
		t.Errorf("Workers = %d, want %d", c.Workers, maxWorkers)
	}
}

func TestScanProgressSnapshots(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	tr := newCountTransport(clock, func(netip.Addr) int { return 1 })
	targets, err := NewPrefixSpace([]netip.Prefix{netip.MustParsePrefix("10.1.0.0/24")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var snaps []Snapshot
	res, err := Scan(tr, targets, Config{
		Rate: 100000, Clock: clock, Workers: 2, ProgressEvery: 64,
		Progress: func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	last := snaps[len(snaps)-1]
	if !last.Done {
		t.Error("final snapshot not marked Done")
	}
	if last.Sent != res.Sent || last.Sent != 256 {
		t.Errorf("final snapshot Sent = %d, want %d", last.Sent, res.Sent)
	}
	if last.Received != uint64(len(res.Responses)) {
		t.Errorf("final snapshot Received = %d, want %d", last.Received, len(res.Responses))
	}
	if len(last.Shards) != 2 {
		t.Errorf("shard progress entries = %d, want 2", len(last.Shards))
	}
	var perShard uint64
	for _, sp := range last.Shards {
		perShard += sp.Sent
		if !sp.Done {
			t.Errorf("shard %d not marked done in final snapshot", sp.Shard)
		}
	}
	if perShard != last.Sent {
		t.Errorf("shard sent total %d != campaign sent %d", perShard, last.Sent)
	}
}
