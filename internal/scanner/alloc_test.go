package scanner_test

import (
	"runtime"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

// TestCampaignAllocationBudget is the allocation regression for the scanner
// send/recv loop: a full simulated campaign must stay within a per-probe and
// per-response allocation budget. Before the zero-allocation work the loop
// cost ~0.5 allocations per probe (probe re-encode, per-datagram receive
// copies, per-response header garbage); the budget below fails if even a
// fraction of that creeps back while leaving room for the campaign's fixed
// overhead (target space, shard state, response slice growth, arena chunks,
// canonical sort).
func TestCampaignAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget needs a full campaign")
	}
	campaign := func() (probes, responses uint64) {
		w := netsim.Generate(netsim.TinyConfig(7))
		w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := scanner.Scan(w.NewTransport(), targets, scanner.Config{
			Rate: 5000, Batch: 256, Timeout: 8 * time.Second,
			Clock: w.Clock, Seed: 42, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Sent, uint64(len(res.Responses))
	}

	campaign() // warm path-wide lazy initialization out of the measurement

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	probes, responses := campaign()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	if probes == 0 || responses == 0 {
		t.Fatalf("degenerate campaign: %d probes, %d responses", probes, responses)
	}
	// World generation dominates the fixed term (~45k objects for the tiny
	// world); the send/recv loop itself must contribute (well) under 1
	// allocation per 16 probes. The pre-optimization loop cost ~0.5 allocs
	// per probe (~205k extra objects here) and fails this budget outright.
	budget := 100_000 + probes/16 + 2*responses
	if allocs > budget {
		t.Fatalf("campaign allocated %d objects over %d probes / %d responses (budget %d): the send/recv hot path regressed",
			allocs, probes, responses, budget)
	}
	t.Logf("campaign: %d allocs, %d probes, %d responses (budget %d)", allocs, probes, responses, budget)
}
