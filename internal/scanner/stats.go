package scanner

import "time"

// Snapshot is a point-in-time view of a running (or finished) campaign,
// delivered through Config.Progress so callers can report live throughput.
type Snapshot struct {
	// Targets is the size of the target space.
	Targets uint64
	// Sent counts probes transmitted so far, retries included.
	Sent uint64
	// Received counts response datagrams captured so far.
	Received uint64
	// Retried counts probes re-sent by retry passes.
	Retried uint64
	// OffPath counts response datagrams rejected because their source was
	// never probed.
	OffPath uint64
	// SendErrors counts failed Send calls.
	SendErrors uint64
	// Pass is the current pass index (0 = initial sweep, >0 = retries).
	Pass int
	// Done is true for the final snapshot of the campaign.
	Done bool
	// Elapsed is time spent on the campaign clock (virtual time for
	// simulated campaigns).
	Elapsed time.Duration
	// WallElapsed is real time spent since the campaign started.
	WallElapsed time.Duration
	// AchievedRate is Sent divided by WallElapsed, in probes per second of
	// real time — the hardware-speed figure of merit for simulated runs.
	AchievedRate float64
	// Shards reports per-worker progress.
	Shards []ShardProgress
}

// ShardProgress is one worker's slice of the campaign.
type ShardProgress struct {
	// Shard is the worker's shard index.
	Shard int
	// Sent counts probes this shard transmitted, across all passes.
	Sent uint64
	// Done is true once the worker finished its current pass.
	Done bool
}

// noteSentBatch records n transmitted probes in one step — one atomic add
// per counter per batch instead of per probe — and fires the Progress
// callback when the batch crosses a ProgressEvery boundary.
func (e *engine) noteSentBatch(shard, pass, n int) {
	un := uint64(n)
	e.shardSent[shard].Add(un)
	e.metrics.shardSent[shard].Add(un)
	e.metrics.sent.Add(un)
	if pass > 0 {
		e.retried.Add(un)
		e.metrics.retried.Add(un)
	}
	total := e.sent.Add(un)
	if e.cfg.Progress != nil {
		every := uint64(e.cfg.ProgressEvery)
		if (total-un)/every != total/every {
			e.fireProgress(false)
		}
	}
}

// fireProgress builds and delivers a Snapshot. progressMu serializes
// callbacks, so Config.Progress never races with itself.
func (e *engine) fireProgress(done bool) {
	if e.cfg.Progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.cfg.Progress(e.snapshot(done))
}

func (e *engine) snapshot(done bool) Snapshot {
	s := Snapshot{
		Targets:     e.targets.Size(),
		Sent:        e.sent.Load(),
		Received:    e.received.Load(),
		Retried:     e.retried.Load(),
		OffPath:     e.offPath.Load(),
		SendErrors:  e.sendErrs.Load(),
		Pass:        int(e.pass.Load()),
		Done:        done,
		Elapsed:     e.cfg.Clock.Now().Sub(e.startClock),
		WallElapsed: time.Since(e.startWall),
		Shards:      make([]ShardProgress, len(e.shardSent)),
	}
	if s.WallElapsed > 0 {
		s.AchievedRate = float64(s.Sent) / s.WallElapsed.Seconds()
	}
	for i := range e.shardSent {
		s.Shards[i] = ShardProgress{Shard: i, Sent: e.shardSent[i].Load(), Done: e.shardDone[i].Load()}
	}
	return s
}
