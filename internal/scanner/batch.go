package scanner

import (
	"errors"
	"net/netip"
	"syscall"
	"time"
)

// This file defines the batch transport API: optional interfaces a Transport
// can implement to move whole batches of datagrams per operation. At line
// rate the per-datagram cost of the scalar API is dominated by fixed
// per-call overhead — one syscall (or one channel hop and admission lock in
// the simulator) per probe — so the engine drains targets in Config.Batch
// sized runs and hands each run to the transport in one call. See
// DESIGN.md §13.
//
// Batching is purely an execution strategy: a campaign over a batch-capable
// transport produces a Result byte-identical to the same campaign over the
// scalar API, at every batch size and worker count.

// Datagram is one received datagram in a batch receive. It carries the same
// fields Recv returns; the payload ownership contract is unchanged (release
// through PayloadReleaser when the transport recycles receive buffers).
type Datagram struct {
	Src     netip.Addr
	Payload []byte
	At      time.Time
}

// BatchSender is a Transport that can transmit one payload to many
// destinations in a single operation (sendmmsg on Linux sockets, vectorized
// delivery in netsim). SendBatch returns the number of leading destinations
// actually sent; n < len(dsts) implies err != nil, and the caller resumes
// from dsts[n:] after handling the error. A campaign probe is stateless and
// identical for every target, which is what makes the one-payload
// many-destinations shape sufficient.
type BatchSender interface {
	Transport
	// SendBatch transmits payload to every address in dsts, in order.
	SendBatch(dsts []netip.Addr, payload []byte) (n int, err error)
}

// TimedBatchSender is the batched form of TimedTransport: one payload to
// many destinations, each at its own caller-chosen logical instant. The
// engine's logical (virtual-time) mode uses it to flush a whole
// permutation-slot run per call while keeping every probe's timestamp a
// pure function of the seed.
type TimedBatchSender interface {
	Transport
	// SendBatchAt transmits payload to dsts[i] at logical time ats[i].
	// len(ats) must equal len(dsts). Like SendBatch, it returns how many
	// leading destinations were sent.
	SendBatchAt(dsts []netip.Addr, payload []byte, ats []time.Time) (n int, err error)
}

// BatchReceiver is a Transport that can deliver many queued datagrams per
// call into a caller-owned ring of Datagram slots. RecvBatch blocks until at
// least one datagram is available (or the transport is closed), fills up to
// len(into) slots, and returns how many it filled; n == 0 implies err !=
// nil, with io.EOF reporting an orderly drain after Close. Payloads follow
// the same ownership contract as Recv: when the transport implements
// PayloadReleaser, each payload must be released exactly once after use.
type BatchReceiver interface {
	Transport
	// RecvBatch fills into with the next available datagrams.
	RecvBatch(into []Datagram) (n int, err error)
}

// Transient send errno policy. At line rate sendmmsg/sendto routinely fail
// with buffer-pressure errnos — ENOBUFS when the qdisc or socket buffer is
// full, EAGAIN on a momentarily unwritable socket, ENOMEM under transient
// kernel memory pressure, EINTR on signal delivery. These are not campaign
// failures: the engine retries them with bounded exponential backoff on the
// campaign clock and only fails the campaign when they persist (or when the
// error is not transient at all — a down interface, a closed socket).
var transientSendErrnos = []error{
	syscall.ENOBUFS,
	syscall.EAGAIN,
	syscall.EWOULDBLOCK,
	syscall.ENOMEM,
	syscall.EINTR,
}

// TransientSendError reports whether a Send/SendBatch error is a transient
// line-rate condition the engine should retry rather than abort on.
func TransientSendError(err error) bool {
	for _, e := range transientSendErrnos {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// Send-retry tuning: backoff starts at sendBackoffBase, doubles per
// consecutive stall up to sendBackoffMax, and the campaign fails after
// maxSendStalls consecutive attempts with no progress. On the virtual clock
// the backoffs are logical time, so simulated campaigns with injected
// transient failures stay deterministic.
const (
	sendBackoffBase = 2 * time.Millisecond
	sendBackoffMax  = 256 * time.Millisecond
	maxSendStalls   = 10
)

// maxPaceDebt caps how far the deadline pacer lets a worker fall behind its
// ideal send timeline (after a retry stall, say) before forgiving the
// backlog: without the cap, a long stall would be followed by an unbounded
// full-speed burst as the worker "caught up".
const maxPaceDebt = time.Second
