package scanner

import "testing"

func TestShardOfShardComposes(t *testing.T) {
	// Sharding a shard must partition that shard's slots: 3 outer × 2 inner
	// sub-shards together cover the full walk exactly once, and every value
	// keeps the slot position it has in the unsharded sequence.
	const n = 1000
	full, err := NewPermutation(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	posToIdx := map[uint64]uint64{}
	for {
		idx, pos, ok := full.NextPos()
		if !ok {
			break
		}
		posToIdx[pos] = idx
	}

	parent, _ := NewPermutation(n, 11)
	seen := map[uint64]int{}
	for outer := 0; outer < 3; outer++ {
		mid, err := parent.Shard(outer, 3)
		if err != nil {
			t.Fatal(err)
		}
		for inner := 0; inner < 2; inner++ {
			sub, err := mid.Shard(inner, 2)
			if err != nil {
				t.Fatal(err)
			}
			for {
				idx, pos, ok := sub.NextPos()
				if !ok {
					break
				}
				want, known := posToIdx[pos]
				if !known {
					t.Fatalf("shard %d.%d emitted unknown slot %d", outer, inner, pos)
				}
				if want != idx {
					t.Fatalf("shard %d.%d slot %d = %d, full walk has %d", outer, inner, pos, idx, want)
				}
				seen[idx]++
			}
		}
	}
	if uint64(len(seen)) != n {
		t.Fatalf("sub-shards covered %d of %d values", len(seen), n)
	}
	for v, count := range seen {
		if count != 1 {
			t.Fatalf("value %d emitted %d times across sub-shards", v, count)
		}
	}
}

func TestSlotsInvariant(t *testing.T) {
	// Slots is the pass timeline length: the power-of-two cycle size,
	// unchanged by walking or sharding — that invariance is what makes the
	// engine's slot-indexed probe timestamps worker-count independent.
	p, _ := NewPermutation(1000, 5)
	total := p.Slots()
	if total != 1024 {
		t.Fatalf("Slots = %d, want 1024", total)
	}
	p.Next()
	p.Next()
	if p.Slots() != total {
		t.Errorf("Slots changed to %d after consumption", p.Slots())
	}

	parent, _ := NewPermutation(1000, 5)
	var sum uint64
	for i := 0; i < 4; i++ {
		s, err := parent.Shard(i, 4)
		if err != nil {
			t.Fatal(err)
		}
		sum += s.Slots()
	}
	if sum != total {
		t.Errorf("shard slots sum to %d, want %d", sum, total)
	}
}

func TestShardConsumedWalkRejected(t *testing.T) {
	p, _ := NewPermutation(100, 1)
	p.Next()
	if _, err := p.Shard(0, 2); err == nil {
		t.Error("sharding a partially consumed walk must error")
	}
}

func TestShardMoreShardsThanSlots(t *testing.T) {
	// More shards than cycle slots: the excess shards are empty, the rest
	// still partition the space.
	const n = 3 // cycle size 4
	seen := map[uint64]int{}
	for i := 0; i < 8; i++ {
		p, err := NewPermutationShard(n, 2, i, 8)
		if err != nil {
			t.Fatal(err)
		}
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			seen[v]++
		}
	}
	if len(seen) != n {
		t.Fatalf("covered %d of %d", len(seen), n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d seen %d times", v, c)
		}
	}
}
