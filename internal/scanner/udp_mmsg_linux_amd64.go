//go:build linux && amd64

package scanner

// Syscall numbers for linux/amd64. SYS_SENDMMSG is absent from the frozen
// syscall package's zsysnum table on this arch, so both are pinned here.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
