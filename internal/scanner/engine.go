package scanner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/vclock"
)

// engine drives one campaign: sharded concurrent sending, asynchronous
// capture, deterministic virtual-time scheduling, and retry passes.
type engine struct {
	cfg     Config
	tr      Transport
	targets TargetSpace
	probe   []byte

	// timed / vclk / shardable / positioned / member / releaser cache the
	// optional capability checks that select the pacing mode, response
	// validation, and receive-buffer recycling; batcher / timedBatcher /
	// recvBatcher select the vectorized send and receive paths.
	timed        TimedTransport
	batcher      BatchSender
	timedBatcher TimedBatchSender
	recvBatcher  BatchReceiver
	vclk         *vclock.Virtual
	shardable    ShardableSpace
	member       MembershipSpace
	releaser     PayloadReleaser
	positioned   bool
	// logical is true when probe send times are computed from permutation
	// slots instead of pacing sleeps: virtual clock + timed transport +
	// positioned space. In this mode workers run at full host speed and
	// the campaign is deterministic for any worker count.
	logical bool
	workers int

	// capture state. Responses accumulate in fixed-size chunks rather than
	// one growing slice: appending N responses to a single slice churns
	// several times N in copies as it regrows, while chunks allocate exactly
	// once each and are concatenated once into the Result.
	captureWG  sync.WaitGroup
	mu         sync.Mutex
	drained    *sync.Cond
	respChunks [][]Response // filled chunks, in capture order
	respCur    []Response   // chunk currently being filled
	// responders is every source address seen so far; retry passes skip
	// these.
	responders  map[netip.Addr]struct{}
	consumed    uint64
	captureDone bool
	recvErr     error
	// arena packs retained payload copies when the transport recycles its
	// receive buffers; only the capture goroutine touches it.
	arena byteArena

	// campaign statistics (see stats.go for the snapshot view).
	sent       atomic.Uint64
	received   atomic.Uint64
	retried    atomic.Uint64
	offPath    atomic.Uint64
	sendErrs   atomic.Uint64
	pass       atomic.Int64
	shardSent  []atomic.Uint64
	shardDone  []atomic.Bool
	startWall  time.Time
	startClock time.Time
	progressMu sync.Mutex

	// cancellation on first send failure or context cancellation.
	cancel     chan struct{}
	cancelOnce sync.Once
	errMu      sync.Mutex
	firstErr   error

	// observability. metrics is never nil; its handles are nil (no-op)
	// when Config.Obs is unset. sendLog/rttMark drive pass-end RTT
	// accounting and are only allocated when a registry is attached.
	metrics *scanMetrics
	sendLog [][]sendRec
	rttMark int
}

func newEngine(tr Transport, targets TargetSpace, cfg Config, probe []byte) *engine {
	e := &engine{
		cfg:        cfg,
		tr:         tr,
		targets:    targets,
		probe:      probe,
		responders: make(map[netip.Addr]struct{}),
		cancel:     make(chan struct{}),
		startWall:  time.Now(),
		startClock: cfg.Clock.Now(),
	}
	e.drained = sync.NewCond(&e.mu)
	e.timed, _ = tr.(TimedTransport)
	e.batcher, _ = tr.(BatchSender)
	e.timedBatcher, _ = tr.(TimedBatchSender)
	e.recvBatcher, _ = tr.(BatchReceiver)
	e.releaser, _ = tr.(PayloadReleaser)
	e.vclk, _ = cfg.Clock.(*vclock.Virtual)
	e.shardable, _ = targets.(ShardableSpace)
	e.member, _ = targets.(MembershipSpace)
	_, e.positioned = targets.(PositionedSpace)
	e.logical = e.vclk != nil && e.timed != nil && e.positioned

	e.workers = cfg.Workers
	if e.shardable == nil {
		// A plain TargetSpace cannot be split across workers, nor walked a
		// second time for a retry pass.
		e.workers = 1
		e.cfg.Retries = 0
	}
	e.shardSent = make([]atomic.Uint64, e.workers)
	e.shardDone = make([]atomic.Bool, e.workers)
	e.metrics = newScanMetrics(cfg.Obs, e.cfg.Clock, e.workers)
	if cfg.Obs != nil {
		e.sendLog = make([][]sendRec, e.workers)
	}
	return e
}

// run executes every pass of the campaign. The caller closes the transport
// and joins the capture goroutine afterwards, on success and failure alike.
// Cancelling ctx stops every worker at its next loop iteration and makes
// run return ctx's error.
func (e *engine) run(ctx context.Context, res *Result) error {
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				e.fail(ctx.Err())
			case <-stop:
			}
		}()
	}
	e.captureWG.Add(1)
	go e.capture()

	passStart := res.Started
	for pass := 0; pass <= e.cfg.Retries; pass++ {
		e.pass.Store(int64(pass))
		var skip map[netip.Addr]struct{}
		if pass > 0 {
			// The quiesce barrier after the previous pass made this
			// snapshot complete, so the retry set is exact (and, under the
			// virtual clock, deterministic).
			skip = e.snapshotResponders()
		}
		shards, err := e.passShards()
		if err != nil {
			return err
		}
		passSpan := e.metrics.tracer.Start("scan.pass", obs.L("pass", strconv.Itoa(pass)))
		e.runPass(pass, shards, skip, passStart)
		if err := e.sendError(); err != nil {
			return err
		}
		var slots uint64
		if ps, ok := e.targets.(PositionedSpace); ok {
			// Slots is invariant under consumption (shards are cut from the
			// caller's unconsumed space), so the caller's space reports the
			// full pass timeline.
			slots = ps.Slots()
		}
		if rs, ok := e.targets.(RootedSpace); ok {
			// When the caller's space is itself a shard of a larger campaign
			// (a vantage slice of a distributed scan), the pass timeline must
			// span the root walk: probe slots index into the root cycle, and
			// the next pass starts only after every sibling shard's window.
			slots = rs.RootSlots()
		}
		passStart = e.endPass(passStart, slots)
		e.quiesce()
		passSpan.End()
		e.metrics.passes.Inc()
		e.observePassRTTs()
		e.observeDrift()
	}
	return nil
}

// passShards builds one fresh walk per worker. Shards are cut from the
// caller's (unconsumed) space, so each pass re-walks the same permutation.
func (e *engine) passShards() ([]TargetSpace, error) {
	if e.shardable == nil {
		return []TargetSpace{e.targets}, nil
	}
	shards := make([]TargetSpace, e.workers)
	for i := range shards {
		s, err := e.shardable.Shard(i, e.workers)
		if err != nil {
			return nil, fmt.Errorf("scanner: sharding targets: %w", err)
		}
		shards[i] = s
	}
	return shards, nil
}

// runPass fans the shards out to workers and waits for them.
func (e *engine) runPass(pass int, shards []TargetSpace, skip map[netip.Addr]struct{}, passStart time.Time) {
	var wg sync.WaitGroup
	coordinate := !e.logical && e.vclk != nil && e.workers > 1
	for i, shard := range shards {
		e.shardDone[i].Store(false)
		wg.Add(1)
		if coordinate {
			// Register pacing sleepers up front so the virtual clock only
			// advances when the whole group is blocked: N workers advance
			// the timeline like N parallel machines, not N times as fast.
			e.vclk.Join()
		}
		go func(i int, shard TargetSpace) {
			defer wg.Done()
			if coordinate {
				defer e.vclk.Leave()
			}
			e.worker(pass, i, shard, skip, passStart)
		}(i, shard)
	}
	wg.Wait()
}

// worker walks one shard, gathering targets into Config.Batch sized runs
// and flushing each run through the transport in one operation when it
// implements the batch API (a scalar per-probe loop otherwise). In logical
// mode the probe timestamps are computed from the targets' permutation
// slots; otherwise the worker paces itself against a deadline timeline on
// the campaign clock, so per-sleep overshoot never accumulates into rate
// sag (see paceBatch).
func (e *engine) worker(pass, shard int, space TargetSpace, skip map[netip.Addr]struct{}, passStart time.Time) {
	defer e.shardDone[shard].Store(true)
	e.metrics.inflight.Add(1)
	defer e.metrics.inflight.Add(-1)
	ps, _ := space.(PositionedSpace)

	dsts := make([]netip.Addr, 0, e.cfg.Batch)
	var ats []time.Time
	if e.logical {
		ats = make([]time.Time, 0, e.cfg.Batch)
	}
	// due is the worker's ideal send timeline: after n probes it should be
	// n*Workers/Rate into the pass. Sleeping to a deadline rather than for a
	// fixed duration carries any sleep overshoot into the next batch's
	// sleep, so the realized rate tracks Config.Rate on long passes.
	due := e.cfg.Clock.Now()
	exhausted := false
	for !exhausted {
		select {
		case <-e.cancel:
			return
		default:
		}
		dsts = dsts[:0]
		ats = ats[:0]
		for len(dsts) < e.cfg.Batch {
			var (
				addr netip.Addr
				pos  uint64
				ok   bool
			)
			if ps != nil {
				addr, pos, ok = ps.NextPos()
			} else {
				addr, ok = space.Next()
			}
			if !ok {
				exhausted = true
				break
			}
			if skip != nil {
				if _, responded := skip[addr]; responded {
					// A skipped target still owns its slot in the logical
					// timeline, which keeps retry timestamps deterministic.
					continue
				}
			}
			dsts = append(dsts, addr)
			if e.logical {
				ats = append(ats, passStart.Add(e.slotOffset(pos)))
			}
		}
		if len(dsts) == 0 {
			break
		}
		if !e.sendRun(shard, pass, dsts, ats) {
			return
		}
		if !e.logical {
			due = e.paceBatch(due, len(dsts))
		}
	}
	if !e.logical {
		e.observePaceLag(due)
	}
}

// sendRun flushes one gathered batch through the transport, retrying
// transient errnos with bounded backoff and resuming from the first unsent
// destination after a partial send. It returns false when the campaign must
// stop (cancellation, a non-transient error, or a persistent stall).
func (e *engine) sendRun(shard, pass int, dsts []netip.Addr, ats []time.Time) bool {
	backoff := sendBackoffBase
	stalls := 0
	for len(dsts) > 0 {
		select {
		case <-e.cancel:
			return false
		default:
		}
		n, err := e.dispatchSend(shard, dsts, ats)
		if n == 0 && err == nil {
			// Defensive: a batch transport must report an error when it
			// accepts nothing, or the retry loop could spin.
			err = io.ErrNoProgress
		}
		if n > 0 {
			e.noteSentBatch(shard, pass, n)
			dsts = dsts[n:]
			if e.logical {
				ats = ats[n:]
			}
			stalls = 0
			backoff = sendBackoffBase
		}
		if err == nil {
			continue
		}
		e.sendErrs.Add(1)
		e.metrics.sendErrs.Inc()
		if len(dsts) == 0 {
			// A transport error with every destination already accepted:
			// nothing left to retry.
			return true
		}
		if !TransientSendError(err) {
			e.fail(fmt.Errorf("scanner: sending to %v: %w", dsts[0], err))
			return false
		}
		stalls++
		if stalls >= maxSendStalls {
			e.fail(fmt.Errorf("scanner: sending to %v: transient send errors persisted across %d attempts: %w",
				dsts[0], stalls, err))
			return false
		}
		e.cfg.Clock.Sleep(backoff)
		if backoff < sendBackoffMax {
			backoff *= 2
		}
	}
	return true
}

// dispatchSend hands dsts to the transport over the widest API it offers,
// returning how many leading destinations were sent. Scalar transports are
// driven in a loop that stops at the first error, so the caller sees the
// same partial-progress contract in every mode.
func (e *engine) dispatchSend(shard int, dsts []netip.Addr, ats []time.Time) (int, error) {
	if e.logical {
		if e.timedBatcher != nil {
			n, err := e.timedBatcher.SendBatchAt(dsts, e.probe, ats)
			e.noteBatchOp(n)
			e.noteRTTSends(shard, dsts[:n], ats[:n], time.Time{})
			return n, err
		}
		for i, dst := range dsts {
			if err := e.timed.SendAt(dst, e.probe, ats[i]); err != nil {
				e.noteRTTSends(shard, dsts[:i], ats[:i], time.Time{})
				return i, err
			}
		}
		e.noteRTTSends(shard, dsts, ats, time.Time{})
		return len(dsts), nil
	}
	if e.batcher != nil {
		var at time.Time
		if e.sendLog != nil {
			at = e.cfg.Clock.Now()
		}
		n, err := e.batcher.SendBatch(dsts, e.probe)
		e.noteBatchOp(n)
		e.noteRTTSends(shard, dsts[:n], nil, at)
		return n, err
	}
	for i, dst := range dsts {
		var at time.Time
		if e.sendLog != nil {
			at = e.cfg.Clock.Now()
		}
		if err := e.tr.Send(dst, e.probe); err != nil {
			return i, err
		}
		e.noteRTTSend(shard, dst, at)
	}
	return len(dsts), nil
}

// paceBatch advances the worker's deadline timeline past a batch of n sent
// probes and sleeps until the timeline is due. When the clock overshoots a
// sleep, the next deadline arrives early and the sleep shrinks — the
// overshoot is carried, not accumulated. A worker that has fallen more than
// maxPaceDebt behind (a retry stall) forgives the excess backlog so the
// catch-up burst stays bounded.
func (e *engine) paceBatch(due time.Time, n int) time.Time {
	due = due.Add(e.paceDuration(n))
	now := e.cfg.Clock.Now()
	if d := due.Sub(now); d > 0 {
		e.cfg.Clock.Sleep(d)
	} else if -d > maxPaceDebt {
		due = now.Add(-maxPaceDebt)
	}
	return due
}

// observePaceLag publishes how far the worker's realized send timeline ended
// up behind its deadline timeline. With deadline pacing this sits at ~0 (one
// sleep's overshoot at most); the duration-per-batch pacer it replaced let
// it grow linearly with pass length.
func (e *engine) observePaceLag(due time.Time) {
	if e.metrics.paceLag == nil {
		return
	}
	e.metrics.paceLag.Set(e.cfg.Clock.Now().Sub(due).Seconds())
}

// endPass advances the campaign clock past the pass's send window plus the
// drain timeout, and returns the start of the next pass's timeline.
func (e *engine) endPass(passStart time.Time, slots uint64) time.Time {
	if e.logical {
		// Workers never slept: reconcile the shared clock with the logical
		// timeline in one deterministic step.
		sendEnd := passStart.Add(e.slotOffset(slots))
		e.vclk.Set(sendEnd)
		e.cfg.Clock.Sleep(e.cfg.Timeout)
		return sendEnd.Add(e.cfg.Timeout)
	}
	// Paced mode: workers already slept through the send window.
	e.cfg.Clock.Sleep(e.cfg.Timeout)
	return e.cfg.Clock.Now()
}

// slotOffset maps a permutation slot to its offset in the pass timeline:
// slot p is probed p/Rate seconds in. Computed without the truncation that
// made per-probe intervals collapse to zero at extreme rates.
func (e *engine) slotOffset(pos uint64) time.Duration {
	rate := uint64(e.cfg.Rate)
	sec := pos / rate
	rem := pos % rate
	return time.Duration(sec)*time.Second + time.Duration(rem*uint64(time.Second)/rate)
}

// paceDuration is how long one worker sleeps after sending n probes so the
// aggregate across Workers matches Config.Rate. Derived from Rate directly
// (n * Workers / Rate seconds); the clamps in fill() keep the arithmetic in
// range.
func (e *engine) paceDuration(n int) time.Duration {
	probes := uint64(n) * uint64(e.workers)
	rate := uint64(e.cfg.Rate)
	sec := probes / rate
	rem := probes % rate
	return time.Duration(sec)*time.Second + time.Duration(rem*uint64(time.Second)/rate)
}

// capture drains the transport until Close delivers io.EOF, recording every
// response and maintaining the responder set for retry passes. When the
// target space supports membership checks, datagrams from sources the
// campaign never probed — spoofed or misrouted off-path junk — are counted
// and discarded here, before they can pollute the result set or the retry
// bookkeeping.
func (e *engine) capture() {
	defer e.captureWG.Done()
	if e.recvBatcher != nil {
		e.captureBatched()
		return
	}
	for {
		src, payload, at, err := e.tr.Recv()
		if err != nil {
			e.mu.Lock()
			if !errors.Is(err, io.EOF) {
				e.recvErr = err
			}
			e.captureDone = true
			e.drained.Broadcast()
			e.mu.Unlock()
			return
		}
		if e.member != nil && !e.member.Contains(src) {
			// Off-path junk is dropped without copying: the transport buffer
			// goes straight back to the pool. Still consumed for the quiesce
			// barrier — the transport queued it, so the drain accounting
			// must see it.
			if e.releaser != nil {
				e.releaser.ReleasePayload(payload)
			}
			e.mu.Lock()
			e.consumed++
			e.drained.Broadcast()
			e.mu.Unlock()
			e.offPath.Add(1)
			e.metrics.offPath.Inc()
			continue
		}
		if e.releaser != nil {
			// The payload lives in a transport buffer about to be reused:
			// pack a copy into the arena (outside the lock) and release the
			// buffer. Without a releasing transport the payload is already
			// ours and is retained as-is.
			retained := e.arena.copyOf(payload)
			e.releaser.ReleasePayload(payload)
			payload = retained
		}
		e.mu.Lock()
		if len(e.respCur) == cap(e.respCur) {
			if e.respCur != nil {
				e.respChunks = append(e.respChunks, e.respCur)
			}
			e.respCur = make([]Response, 0, respChunkLen)
		}
		e.respCur = append(e.respCur, Response{Src: src, Payload: payload, At: at})
		e.responders[src] = struct{}{}
		e.consumed++
		e.drained.Broadcast()
		e.mu.Unlock()
		e.received.Add(1)
		e.metrics.received.Inc()
	}
}

// captureRingLen sizes the capture goroutine's receive ring: large enough
// to amortize the per-batch lock and wakeup over hundreds of datagrams,
// small enough that the ring itself stays cache-resident.
const captureRingLen = 256

// captureBatched is capture over the transport's RecvBatch: one receive
// operation, one arena pass, one lock acquisition and one drain wakeup per
// batch of datagrams instead of per datagram.
func (e *engine) captureBatched() {
	ring := make([]Datagram, captureRingLen)
	for {
		n, err := e.recvBatcher.RecvBatch(ring)
		if n > 0 {
			e.consumeBatch(ring[:n])
			// Clear consumed slots so the ring does not pin released
			// transport buffers or retained payloads.
			for i := 0; i < n; i++ {
				ring[i] = Datagram{}
			}
		}
		if err != nil {
			e.mu.Lock()
			if !errors.Is(err, io.EOF) {
				e.recvErr = err
			}
			e.captureDone = true
			e.drained.Broadcast()
			e.mu.Unlock()
			return
		}
	}
}

// consumeBatch records one batch of received datagrams: off-path rejection
// and arena retention run outside the lock (compacting the keepers in
// place), then a single locked section appends every keeper, maintains the
// responder set, and advances the drain accounting once for the whole batch.
func (e *engine) consumeBatch(ds []Datagram) {
	var rejected uint64
	kept := 0
	for i := range ds {
		d := ds[i]
		if e.member != nil && !e.member.Contains(d.Src) {
			if e.releaser != nil {
				e.releaser.ReleasePayload(d.Payload)
			}
			rejected++
			continue
		}
		if e.releaser != nil {
			retained := e.arena.copyOf(d.Payload)
			e.releaser.ReleasePayload(d.Payload)
			d.Payload = retained
		}
		ds[kept] = d
		kept++
	}
	e.mu.Lock()
	for _, d := range ds[:kept] {
		if len(e.respCur) == cap(e.respCur) {
			if e.respCur != nil {
				e.respChunks = append(e.respChunks, e.respCur)
			}
			e.respCur = make([]Response, 0, respChunkLen)
		}
		e.respCur = append(e.respCur, Response{Src: d.Src, Payload: d.Payload, At: d.At})
		e.responders[d.Src] = struct{}{}
	}
	// Off-path rejects were still consumed from the transport's queue, so
	// the quiesce barrier counts them too.
	e.consumed += uint64(kept) + rejected
	e.drained.Broadcast()
	e.mu.Unlock()
	if rejected > 0 {
		e.offPath.Add(rejected)
		e.metrics.offPath.Add(rejected)
	}
	if kept > 0 {
		e.received.Add(uint64(kept))
		e.metrics.received.Add(uint64(kept))
	}
}

// quiesce blocks until the capture goroutine has consumed every response
// the transport has queued so far. Without a ResponseCounter transport the
// drain timeout is the only barrier, and the responder snapshot is best
// effort (fine for real networks, where in-flight loss is inherent).
func (e *engine) quiesce() {
	rc, ok := e.tr.(ResponseCounter)
	if !ok {
		return
	}
	want := rc.QueuedResponses()
	e.mu.Lock()
	for e.consumed < want && !e.captureDone {
		e.drained.Wait()
	}
	e.mu.Unlock()
}

func (e *engine) snapshotResponders() map[netip.Addr]struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := make(map[netip.Addr]struct{}, len(e.responders))
	for a := range e.responders {
		snap[a] = struct{}{}
	}
	return snap
}

// fail records the first send error and cancels the remaining workers.
func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	e.cancelOnce.Do(func() { close(e.cancel) })
}

func (e *engine) sendError() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}
