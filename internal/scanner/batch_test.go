package scanner_test

import (
	"net/netip"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
)

// runBatchCampaign is runSimCampaign with the engine batch size and the
// transport wrapping under test control. It returns the Result, the final
// progress Snapshot (for send-error accounting) and the world (for the
// fault-injection tally).
func runBatchCampaign(t *testing.T, workers, batch int, faults *netsim.FaultProfile,
	wrap func(*netsim.Transport) scanner.Transport) (*scanner.Result, scanner.Snapshot, *netsim.World) {
	t.Helper()
	w := netsim.Generate(netsim.TinyConfig(7))
	w.Cfg.Faults = faults
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	var tr scanner.Transport = w.NewTransport()
	if wrap != nil {
		tr = wrap(tr.(*netsim.Transport))
	}
	var last scanner.Snapshot
	res, err := scanner.Scan(tr, targets, scanner.Config{
		Rate: 5000, Batch: batch, Timeout: 8 * time.Second,
		Clock: w.Clock, Seed: 42, Workers: workers,
		Progress: func(s scanner.Snapshot) { last = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, last, w
}

// TestScanDeterministicAcrossBatchSizes is the tentpole acceptance check for
// the batch transport API: with the full hostile fault profile active, a
// campaign Result is byte-identical at every (batch size, worker count)
// combination — batching is an execution strategy, never an observable.
func TestScanDeterministicAcrossBatchSizes(t *testing.T) {
	baseRes, _, _ := runBatchCampaign(t, 4, 256, netsim.FullHostileProfile(), nil)
	base := resultDigest(baseRes)
	if !strings.Contains(base, "offpath=") || strings.HasPrefix(base, "sent=0") {
		t.Fatalf("baseline campaign is empty: %q", base[:min(len(base), 120)])
	}
	for _, batch := range []int{1, 8, 64} {
		for _, workers := range []int{1, 4, 16} {
			res, _, _ := runBatchCampaign(t, workers, batch, netsim.FullHostileProfile(), nil)
			if got := resultDigest(res); got != base {
				t.Errorf("batch=%d workers=%d: campaign differs from batch=256 workers=4\nbase: %s\ngot:  %s",
					batch, workers, firstDiff(base, got), firstDiff(got, base))
			}
		}
	}
}

// scalarTransport hides the batch capabilities of a netsim transport while
// forwarding every scalar one the engine probes for, so a campaign over it
// exercises the per-probe code paths against the same simulator.
type scalarTransport struct {
	tr *netsim.Transport
}

func (s *scalarTransport) Send(dst netip.Addr, payload []byte) error { return s.tr.Send(dst, payload) }
func (s *scalarTransport) SendAt(dst netip.Addr, payload []byte, at time.Time) error {
	return s.tr.SendAt(dst, payload, at)
}
func (s *scalarTransport) Recv() (netip.Addr, []byte, time.Time, error) { return s.tr.Recv() }
func (s *scalarTransport) Close() error                                 { return s.tr.Close() }
func (s *scalarTransport) QueuedResponses() uint64                      { return s.tr.QueuedResponses() }
func (s *scalarTransport) ReleasePayload(p []byte)                      { s.tr.ReleasePayload(p) }

// TestScanScalarPathMatchesBatched pins the batched/unbatched equivalence
// directly: the same hostile campaign through a transport stripped of the
// batch interfaces produces the identical Result.
func TestScanScalarPathMatchesBatched(t *testing.T) {
	batchedRes, _, _ := runBatchCampaign(t, 4, 256, netsim.FullHostileProfile(), nil)
	scalarRes, _, _ := runBatchCampaign(t, 4, 256, netsim.FullHostileProfile(),
		func(tr *netsim.Transport) scanner.Transport { return &scalarTransport{tr: tr} })
	base, got := resultDigest(batchedRes), resultDigest(scalarRes)
	if got != base {
		t.Errorf("scalar-path campaign differs from batched\nbatched: %s\nscalar:  %s",
			firstDiff(base, got), firstDiff(got, base))
	}
}

// choppyTransport accepts at most half of every third batch and reports the
// rest as a transient failure, exercising the engine's partial-send resume
// and retry-with-backoff path on every worker.
type choppyTransport struct {
	*netsim.Transport
	calls atomic.Int64
}

func (c *choppyTransport) SendBatchAt(dsts []netip.Addr, payload []byte, ats []time.Time) (int, error) {
	if c.calls.Add(1)%3 == 0 && len(dsts) > 1 {
		k := len(dsts) / 2
		n, err := c.Transport.SendBatchAt(dsts[:k], payload, ats[:k])
		if err != nil {
			return n, err
		}
		return n, syscall.ENOBUFS
	}
	return c.Transport.SendBatchAt(dsts, payload, ats)
}

// TestScanChoppyBatchesMatch runs the hostile campaign through a transport
// that keeps truncating batches mid-flight: the engine must resume from the
// first unsent destination and still deliver the byte-identical Result.
func TestScanChoppyBatchesMatch(t *testing.T) {
	baseRes, _, _ := runBatchCampaign(t, 4, 256, netsim.FullHostileProfile(), nil)
	choppyRes, snap, _ := runBatchCampaign(t, 4, 256, netsim.FullHostileProfile(),
		func(tr *netsim.Transport) scanner.Transport { return &choppyTransport{Transport: tr} })
	base, got := resultDigest(baseRes), resultDigest(choppyRes)
	if got != base {
		t.Errorf("choppy-batch campaign differs from clean batching\nbase:   %s\nchoppy: %s",
			firstDiff(base, got), firstDiff(got, base))
	}
	if snap.SendErrors == 0 {
		t.Error("choppy transport returned transient errors but Snapshot.SendErrors == 0")
	}
}

// TestScanTransientSendErrorsRecovered is the satellite bugfix check: with
// netsim injecting one ENOBUFS per fault-selected destination (as sendmmsg
// does under buffer pressure at line rate), the engine retries with backoff
// instead of aborting, and the delivered campaign is byte-identical to an
// unfaulted run. The pre-fix engine failed the whole campaign on the first
// transient errno.
func TestScanTransientSendErrorsRecovered(t *testing.T) {
	cleanRes, _, _ := runBatchCampaign(t, 4, 256, nil, nil)
	faultRes, snap, w := runBatchCampaign(t, 4, 256, &netsim.FaultProfile{SendErr: 0.05}, nil)
	base, got := resultDigest(cleanRes), resultDigest(faultRes)
	if got != base {
		t.Errorf("campaign with transient send errors differs from clean run\nclean:   %s\nfaulted: %s",
			firstDiff(base, got), firstDiff(got, base))
	}
	if snap.SendErrors == 0 {
		t.Error("fault profile injected send errors but Snapshot.SendErrors == 0")
	}
	if n := w.FaultStats().TransientSendErrs; n == 0 {
		t.Error("world tallied no transient send errors")
	}
}

// TestTransientSendError pins the errno classification behind the retry
// policy.
func TestTransientSendError(t *testing.T) {
	for _, err := range []error{
		syscall.ENOBUFS, syscall.EAGAIN, syscall.EWOULDBLOCK, syscall.ENOMEM, syscall.EINTR,
	} {
		if !scanner.TransientSendError(err) {
			t.Errorf("%v should be transient", err)
		}
		if !scanner.TransientSendError(wrapErr{err}) {
			t.Errorf("wrapped %v should be transient", err)
		}
	}
	for _, err := range []error{
		syscall.ENETUNREACH, syscall.EBADF, syscall.ECONNREFUSED, nil,
	} {
		if scanner.TransientSendError(err) {
			t.Errorf("%v should not be transient", err)
		}
	}
}

type wrapErr struct{ err error }

func (w wrapErr) Error() string { return "send: " + w.err.Error() }
func (w wrapErr) Unwrap() error { return w.err }
