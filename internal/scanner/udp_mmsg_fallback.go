//go:build !linux || !(amd64 || arm64)

package scanner

import "net/netip"

// Portable fallbacks for platforms without the raw sendmmsg/recvmmsg path:
// the batch API stays available everywhere, it just degrades to per-datagram
// calls, so callers never need their own build-tagged dispatch.

func (t *UDPTransport) sendBatch(dsts []netip.Addr, payload []byte) (int, error) {
	for i, dst := range dsts {
		if err := t.Send(dst, payload); err != nil {
			return i, err
		}
	}
	return len(dsts), nil
}

func (t *UDPTransport) recvBatch(into []Datagram) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	src, payload, at, err := t.Recv()
	if err != nil {
		return 0, err
	}
	into[0] = Datagram{Src: src, Payload: payload, At: at}
	return 1, nil
}
