package scanner

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"
)

// TestUDPTransportBatchRoundTrip drives the batched socket path end to end
// over loopback: one SendBatch fans a probe out to the peer (sendmmsg on
// Linux, the portable loop elsewhere), the peer echoes a distinct payload per
// datagram, and RecvBatch collects the echoes from the leased buffer ring.
func TestUDPTransportBatchRoundTrip(t *testing.T) {
	peer, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer peer.Close()
	port := uint16(peer.LocalAddr().(*net.UDPAddr).Port)

	tr, err := NewUDPTransport(port)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const fanout = 200 // larger than one sendmmsg chunk
	probe := []byte("probe-payload")
	dsts := make([]netip.Addr, fanout)
	for i := range dsts {
		dsts[i] = netip.MustParseAddr("127.0.0.1")
	}

	echoed := make(chan error, 1)
	go func() {
		buf := make([]byte, 2048)
		for i := 0; i < fanout; i++ {
			n, from, err := peer.ReadFromUDPAddrPort(buf)
			if err != nil {
				echoed <- err
				return
			}
			if !bytes.Equal(buf[:n], probe) {
				echoed <- fmt.Errorf("datagram %d: peer received %q, want %q", i, buf[:n], probe)
				return
			}
			if _, err := peer.WriteToUDPAddrPort([]byte(fmt.Sprintf("echo-%03d", i)), from); err != nil {
				echoed <- err
				return
			}
		}
		echoed <- nil
	}()

	sent := 0
	for sent < fanout {
		n, err := tr.SendBatch(dsts[sent:], probe)
		sent += n
		if err != nil {
			if TransientSendError(err) {
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatalf("SendBatch after %d: %v", sent, err)
		}
	}
	select {
	case err := <-echoed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer echo timed out")
	}

	seen := make(map[string]bool)
	ring := make([]Datagram, 32)
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < fanout {
		if time.Now().After(deadline) {
			t.Fatalf("collected %d of %d echoes before timeout", len(seen), fanout)
		}
		n, err := tr.RecvBatch(ring)
		if err != nil {
			t.Fatalf("RecvBatch: %v", err)
		}
		for i := 0; i < n; i++ {
			d := ring[i]
			if d.Src != netip.MustParseAddr("127.0.0.1") {
				t.Fatalf("echo from %v", d.Src)
			}
			if d.At.IsZero() {
				t.Fatal("datagram missing receive timestamp")
			}
			seen[string(d.Payload)] = true
			tr.ReleasePayload(d.Payload)
			ring[i] = Datagram{}
		}
	}
	for i := 0; i < fanout; i++ {
		if key := fmt.Sprintf("echo-%03d", i); !seen[key] {
			t.Errorf("echo %q never received", key)
		}
	}
}

func TestUDPTransportLargeDatagram(t *testing.T) {
	// Regression for the fixed 2048-byte receive buffer: a response larger
	// than that was silently truncated into corrupt BER. The transport now
	// receives up to the UDP maximum intact.
	peer, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer peer.Close()
	port := uint16(peer.LocalAddr().(*net.UDPAddr).Port)

	tr, err := NewUDPTransport(port)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	for _, size := range []int{3000, 60000} {
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i * 7)
		}
		reflected := make(chan error, 1)
		go func() {
			buf := make([]byte, maxUDPPayload)
			if _, from, err := peer.ReadFromUDPAddrPort(buf); err != nil {
				reflected <- err
			} else {
				_, err = peer.WriteToUDPAddrPort(want, from)
				reflected <- err
			}
		}()
		if err := tr.Send(netip.MustParseAddr("127.0.0.1"), []byte("probe")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-reflected:
			if err != nil {
				if size > 9000 {
					// Jumbo datagrams can exceed loopback limits on some
					// kernels; the 3000-byte case is the mandatory one.
					t.Logf("skipping %d-byte reflection: %v", size, err)
					continue
				}
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("reflector timed out")
		}
		src, payload, _, err := tr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if src != netip.MustParseAddr("127.0.0.1") {
			t.Errorf("src = %v", src)
		}
		if len(payload) != size {
			t.Fatalf("received %d of %d bytes — datagram truncated", len(payload), size)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("%d-byte payload corrupted in transit", size)
		}
	}
}
