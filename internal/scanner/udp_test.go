package scanner

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"time"
)

func TestUDPTransportLargeDatagram(t *testing.T) {
	// Regression for the fixed 2048-byte receive buffer: a response larger
	// than that was silently truncated into corrupt BER. The transport now
	// receives up to the UDP maximum intact.
	peer, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer peer.Close()
	port := uint16(peer.LocalAddr().(*net.UDPAddr).Port)

	tr, err := NewUDPTransport(port)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	for _, size := range []int{3000, 60000} {
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i * 7)
		}
		reflected := make(chan error, 1)
		go func() {
			buf := make([]byte, maxUDPPayload)
			if _, from, err := peer.ReadFromUDPAddrPort(buf); err != nil {
				reflected <- err
			} else {
				_, err = peer.WriteToUDPAddrPort(want, from)
				reflected <- err
			}
		}()
		if err := tr.Send(netip.MustParseAddr("127.0.0.1"), []byte("probe")); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-reflected:
			if err != nil {
				if size > 9000 {
					// Jumbo datagrams can exceed loopback limits on some
					// kernels; the 3000-byte case is the mandatory one.
					t.Logf("skipping %d-byte reflection: %v", size, err)
					continue
				}
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("reflector timed out")
		}
		src, payload, _, err := tr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if src != netip.MustParseAddr("127.0.0.1") {
			t.Errorf("src = %v", src)
		}
		if len(payload) != size {
			t.Fatalf("received %d of %d bytes — datagram truncated", len(payload), size)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("%d-byte payload corrupted in transit", size)
		}
	}
}
