package scanner

import (
	"net/netip"
	"sort"

	"snmpv3fp/internal/iputil"
)

// TargetSpace enumerates scan targets in permuted order. Implementations
// are single-use; build a fresh space per campaign.
type TargetSpace interface {
	// Next returns the next target, and false when the space is exhausted.
	Next() (netip.Addr, bool)
	// Size returns the total number of targets.
	Size() uint64
}

// ShardableSpace is a TargetSpace that can split itself into pairwise
// disjoint sub-walks whose union is the whole space. The engine uses it to
// hand each worker goroutine its own shard; implementations must support
// sharding only while the space is unconsumed.
type ShardableSpace interface {
	TargetSpace
	// Shard returns sub-walk `shard` of `totalShards`.
	Shard(shard, totalShards int) (TargetSpace, error)
}

// PositionedSpace is a TargetSpace that reports, for every target, the slot
// it occupies in the unsharded permutation cycle. Slot positions are a pure
// function of the space and seed — identical no matter how the walk is
// sharded — so the engine can schedule probe send times from them and keep
// virtual campaigns deterministic across worker counts.
type PositionedSpace interface {
	TargetSpace
	// NextPos is Next plus the target's permutation-cycle slot.
	NextPos() (addr netip.Addr, pos uint64, ok bool)
	// Slots is the cycle length in slots (>= Size: slots holding no target
	// are silently skipped but still consume scheduler time).
	Slots() uint64
}

// RootedSpace is a PositionedSpace that also reports the slot-cycle length
// of the root (unsharded) walk its slot positions index into. Slots()
// shrinks as a space is sharded — each shard owns a fraction of the cycle —
// but RootSlots is invariant: it is the full campaign's pass timeline
// length. The engine prefers it when computing pass boundaries, so a
// process scanning one vantage shard of a campaign advances its clock
// through exactly the timeline the unsharded campaign would, which is what
// keeps a multi-process merge byte-identical to a single-process scan.
type RootedSpace interface {
	PositionedSpace
	// RootSlots is the root walk's cycle length in slots.
	RootSlots() uint64
}

// MembershipSpace is a TargetSpace that can answer whether an address is a
// member of the space at all. The engine uses it to validate response
// sources: a datagram from an address the campaign never probed is off-path
// junk (a spoofed or misrouted reply) and must not enter the result set.
// Membership is a property of the full space, independent of sharding or
// consumption.
type MembershipSpace interface {
	TargetSpace
	// Contains reports whether addr is one of the space's targets.
	Contains(addr netip.Addr) bool
}

// prefixSpace scans the union of a set of prefixes in permuted order.
type prefixSpace struct {
	prefixes []netip.Prefix
	// starts[i] is the index of the first address of prefixes[i] in the
	// flattened space.
	starts []uint64
	// sorted holds the prefixes ordered by base address for O(log n)
	// membership checks; shards share it.
	sorted []netip.Prefix
	perm   *Permutation
	total  uint64
	// lut accelerates the per-probe index→prefix resolution: lut[b] is the
	// last prefix whose flattened start is at or below block b's first
	// index (blocks are 1<<lutShift indices wide), so NextPos starts a
	// short forward scan there instead of binary-searching starts on every
	// probe. Shards share it.
	lut      []uint32
	lutShift uint
}

// NewPrefixSpace builds a permuted target space over the union of the given
// prefixes (assumed disjoint).
func NewPrefixSpace(prefixes []netip.Prefix, seed int64) (TargetSpace, error) {
	return NewPrefixSpaceShard(prefixes, seed, 0, 1)
}

// NewPrefixSpaceShard builds shard `shard` of `totalShards` over the prefix
// union: disjoint slices of one campaign for multi-vantage scanning, as
// ZMap shards.
func NewPrefixSpaceShard(prefixes []netip.Prefix, seed int64, shard, totalShards int) (TargetSpace, error) {
	s := &prefixSpace{prefixes: prefixes}
	for _, p := range prefixes {
		s.starts = append(s.starts, s.total)
		s.total += iputil.PrefixSize(p)
	}
	perm, err := NewPermutationShard(s.total, seed, shard, totalShards)
	if err != nil {
		return nil, err
	}
	s.perm = perm
	s.sorted = append([]netip.Prefix(nil), prefixes...)
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i].Addr().Less(s.sorted[j].Addr()) })
	s.buildLUT()
	return s, nil
}

// buildLUT sizes the block table at up to four blocks per prefix — the
// average forward scan from a block's entry is then a step or two — and
// fills it with a single pass over starts. Table memory is bounded by the
// prefix count, never by the address count.
func (s *prefixSpace) buildLUT() {
	if s.total == 0 || len(s.starts) == 0 {
		return
	}
	maxBlocks := uint64(len(s.starts)) * 4
	var shift uint
	for s.total>>shift > maxBlocks {
		shift++
	}
	s.lutShift = shift
	nblocks := (s.total-1)>>shift + 1
	s.lut = make([]uint32, nblocks)
	pi := 0
	for b := uint64(0); b < nblocks; b++ {
		first := b << shift
		for pi+1 < len(s.starts) && s.starts[pi+1] <= first {
			pi++
		}
		s.lut[b] = uint32(pi)
	}
}

// Contains implements MembershipSpace by binary search over the prefixes
// (assumed disjoint), so validating a response source is O(log n) regardless
// of how many addresses the space spans.
func (s *prefixSpace) Contains(addr netip.Addr) bool {
	// First prefix whose base address is strictly greater than addr; the
	// candidate container is the one before it.
	i := sort.Search(len(s.sorted), func(i int) bool { return addr.Less(s.sorted[i].Addr()) })
	if i == 0 {
		return false
	}
	return s.sorted[i-1].Contains(addr)
}

func (s *prefixSpace) Size() uint64      { return s.total }
func (s *prefixSpace) Slots() uint64     { return s.perm.Slots() }
func (s *prefixSpace) RootSlots() uint64 { return s.perm.RootSlots() }

// Shard implements ShardableSpace (vantage shards sub-shard onto workers).
func (s *prefixSpace) Shard(shard, totalShards int) (TargetSpace, error) {
	perm, err := s.perm.Shard(shard, totalShards)
	if err != nil {
		return nil, err
	}
	return &prefixSpace{
		prefixes: s.prefixes, starts: s.starts, sorted: s.sorted,
		perm: perm, total: s.total, lut: s.lut, lutShift: s.lutShift,
	}, nil
}

func (s *prefixSpace) Next() (netip.Addr, bool) {
	a, _, ok := s.NextPos()
	return a, ok
}

func (s *prefixSpace) NextPos() (netip.Addr, uint64, bool) {
	idx, pos, ok := s.perm.NextPos()
	if !ok {
		return netip.Addr{}, 0, false
	}
	// Containing-prefix resolution: jump to the block's last-known prefix
	// and scan forward. The permutation visits indices in pseudo-random
	// order, so a cache-friendly near-constant lookup beats re-running a
	// full binary search on every probe.
	lo := int(s.lut[idx>>s.lutShift])
	for lo+1 < len(s.starts) && s.starts[lo+1] <= idx {
		lo++
	}
	return iputil.NthAddr(s.prefixes[lo], idx-s.starts[lo]), pos, true
}

// listSpace scans an explicit address list (the IPv6 hitlist case) in
// permuted order.
type listSpace struct {
	addrs []netip.Addr
	// set indexes the list for membership checks; shards share it.
	set  map[netip.Addr]struct{}
	perm *Permutation
}

// NewListSpace builds a permuted target space over an explicit list.
func NewListSpace(addrs []netip.Addr, seed int64) (TargetSpace, error) {
	return NewListSpaceShard(addrs, seed, 0, 1)
}

// NewListSpaceShard builds shard `shard` of `totalShards` over the list.
func NewListSpaceShard(addrs []netip.Addr, seed int64, shard, totalShards int) (TargetSpace, error) {
	perm, err := NewPermutationShard(uint64(len(addrs)), seed, shard, totalShards)
	if err != nil {
		return nil, err
	}
	set := make(map[netip.Addr]struct{}, len(addrs))
	for _, a := range addrs {
		set[a] = struct{}{}
	}
	return &listSpace{addrs: addrs, set: set, perm: perm}, nil
}

// Contains implements MembershipSpace.
func (s *listSpace) Contains(addr netip.Addr) bool {
	_, ok := s.set[addr]
	return ok
}

func (s *listSpace) Size() uint64      { return uint64(len(s.addrs)) }
func (s *listSpace) Slots() uint64     { return s.perm.Slots() }
func (s *listSpace) RootSlots() uint64 { return s.perm.RootSlots() }

// Shard implements ShardableSpace.
func (s *listSpace) Shard(shard, totalShards int) (TargetSpace, error) {
	perm, err := s.perm.Shard(shard, totalShards)
	if err != nil {
		return nil, err
	}
	return &listSpace{addrs: s.addrs, set: s.set, perm: perm}, nil
}

func (s *listSpace) Next() (netip.Addr, bool) {
	a, _, ok := s.NextPos()
	return a, ok
}

func (s *listSpace) NextPos() (netip.Addr, uint64, bool) {
	idx, pos, ok := s.perm.NextPos()
	if !ok {
		return netip.Addr{}, 0, false
	}
	return s.addrs[idx], pos, true
}
