package scanner

import (
	"net/netip"

	"snmpv3fp/internal/iputil"
)

// TargetSpace enumerates scan targets in permuted order. Implementations
// are single-use; build a fresh space per campaign.
type TargetSpace interface {
	// Next returns the next target, and false when the space is exhausted.
	Next() (netip.Addr, bool)
	// Size returns the total number of targets.
	Size() uint64
}

// prefixSpace scans the union of a set of prefixes in permuted order.
type prefixSpace struct {
	prefixes []netip.Prefix
	// starts[i] is the index of the first address of prefixes[i] in the
	// flattened space.
	starts []uint64
	perm   *Permutation
	total  uint64
}

// NewPrefixSpace builds a permuted target space over the union of the given
// prefixes (assumed disjoint).
func NewPrefixSpace(prefixes []netip.Prefix, seed int64) (TargetSpace, error) {
	return NewPrefixSpaceShard(prefixes, seed, 0, 1)
}

// NewPrefixSpaceShard builds shard `shard` of `totalShards` over the prefix
// union: disjoint slices of one campaign for multi-vantage scanning, as
// ZMap shards.
func NewPrefixSpaceShard(prefixes []netip.Prefix, seed int64, shard, totalShards int) (TargetSpace, error) {
	s := &prefixSpace{prefixes: prefixes}
	for _, p := range prefixes {
		s.starts = append(s.starts, s.total)
		s.total += iputil.PrefixSize(p)
	}
	perm, err := NewPermutationShard(s.total, seed, shard, totalShards)
	if err != nil {
		return nil, err
	}
	s.perm = perm
	return s, nil
}

func (s *prefixSpace) Size() uint64 { return s.total }

func (s *prefixSpace) Next() (netip.Addr, bool) {
	idx, ok := s.perm.Next()
	if !ok {
		return netip.Addr{}, false
	}
	// Binary search for the containing prefix.
	lo, hi := 0, len(s.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return iputil.NthAddr(s.prefixes[lo], idx-s.starts[lo]), true
}

// listSpace scans an explicit address list (the IPv6 hitlist case) in
// permuted order.
type listSpace struct {
	addrs []netip.Addr
	perm  *Permutation
}

// NewListSpace builds a permuted target space over an explicit list.
func NewListSpace(addrs []netip.Addr, seed int64) (TargetSpace, error) {
	perm, err := NewPermutation(uint64(len(addrs)), seed)
	if err != nil {
		return nil, err
	}
	return &listSpace{addrs: addrs, perm: perm}, nil
}

func (s *listSpace) Size() uint64 { return uint64(len(s.addrs)) }

func (s *listSpace) Next() (netip.Addr, bool) {
	idx, ok := s.perm.Next()
	if !ok {
		return netip.Addr{}, false
	}
	return s.addrs[idx], true
}
