package scanner

import (
	"net/netip"

	"snmpv3fp/internal/iputil"
)

// TargetSpace enumerates scan targets in permuted order. Implementations
// are single-use; build a fresh space per campaign.
type TargetSpace interface {
	// Next returns the next target, and false when the space is exhausted.
	Next() (netip.Addr, bool)
	// Size returns the total number of targets.
	Size() uint64
}

// ShardableSpace is a TargetSpace that can split itself into pairwise
// disjoint sub-walks whose union is the whole space. The engine uses it to
// hand each worker goroutine its own shard; implementations must support
// sharding only while the space is unconsumed.
type ShardableSpace interface {
	TargetSpace
	// Shard returns sub-walk `shard` of `totalShards`.
	Shard(shard, totalShards int) (TargetSpace, error)
}

// PositionedSpace is a TargetSpace that reports, for every target, the slot
// it occupies in the unsharded permutation cycle. Slot positions are a pure
// function of the space and seed — identical no matter how the walk is
// sharded — so the engine can schedule probe send times from them and keep
// virtual campaigns deterministic across worker counts.
type PositionedSpace interface {
	TargetSpace
	// NextPos is Next plus the target's permutation-cycle slot.
	NextPos() (addr netip.Addr, pos uint64, ok bool)
	// Slots is the cycle length in slots (>= Size: slots holding no target
	// are silently skipped but still consume scheduler time).
	Slots() uint64
}

// prefixSpace scans the union of a set of prefixes in permuted order.
type prefixSpace struct {
	prefixes []netip.Prefix
	// starts[i] is the index of the first address of prefixes[i] in the
	// flattened space.
	starts []uint64
	perm   *Permutation
	total  uint64
}

// NewPrefixSpace builds a permuted target space over the union of the given
// prefixes (assumed disjoint).
func NewPrefixSpace(prefixes []netip.Prefix, seed int64) (TargetSpace, error) {
	return NewPrefixSpaceShard(prefixes, seed, 0, 1)
}

// NewPrefixSpaceShard builds shard `shard` of `totalShards` over the prefix
// union: disjoint slices of one campaign for multi-vantage scanning, as
// ZMap shards.
func NewPrefixSpaceShard(prefixes []netip.Prefix, seed int64, shard, totalShards int) (TargetSpace, error) {
	s := &prefixSpace{prefixes: prefixes}
	for _, p := range prefixes {
		s.starts = append(s.starts, s.total)
		s.total += iputil.PrefixSize(p)
	}
	perm, err := NewPermutationShard(s.total, seed, shard, totalShards)
	if err != nil {
		return nil, err
	}
	s.perm = perm
	return s, nil
}

func (s *prefixSpace) Size() uint64  { return s.total }
func (s *prefixSpace) Slots() uint64 { return s.perm.Slots() }

// Shard implements ShardableSpace (vantage shards sub-shard onto workers).
func (s *prefixSpace) Shard(shard, totalShards int) (TargetSpace, error) {
	perm, err := s.perm.Shard(shard, totalShards)
	if err != nil {
		return nil, err
	}
	return &prefixSpace{prefixes: s.prefixes, starts: s.starts, perm: perm, total: s.total}, nil
}

func (s *prefixSpace) Next() (netip.Addr, bool) {
	a, _, ok := s.NextPos()
	return a, ok
}

func (s *prefixSpace) NextPos() (netip.Addr, uint64, bool) {
	idx, pos, ok := s.perm.NextPos()
	if !ok {
		return netip.Addr{}, 0, false
	}
	// Binary search for the containing prefix.
	lo, hi := 0, len(s.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return iputil.NthAddr(s.prefixes[lo], idx-s.starts[lo]), pos, true
}

// listSpace scans an explicit address list (the IPv6 hitlist case) in
// permuted order.
type listSpace struct {
	addrs []netip.Addr
	perm  *Permutation
}

// NewListSpace builds a permuted target space over an explicit list.
func NewListSpace(addrs []netip.Addr, seed int64) (TargetSpace, error) {
	return NewListSpaceShard(addrs, seed, 0, 1)
}

// NewListSpaceShard builds shard `shard` of `totalShards` over the list.
func NewListSpaceShard(addrs []netip.Addr, seed int64, shard, totalShards int) (TargetSpace, error) {
	perm, err := NewPermutationShard(uint64(len(addrs)), seed, shard, totalShards)
	if err != nil {
		return nil, err
	}
	return &listSpace{addrs: addrs, perm: perm}, nil
}

func (s *listSpace) Size() uint64  { return uint64(len(s.addrs)) }
func (s *listSpace) Slots() uint64 { return s.perm.Slots() }

// Shard implements ShardableSpace.
func (s *listSpace) Shard(shard, totalShards int) (TargetSpace, error) {
	perm, err := s.perm.Shard(shard, totalShards)
	if err != nil {
		return nil, err
	}
	return &listSpace{addrs: s.addrs, perm: perm}, nil
}

func (s *listSpace) Next() (netip.Addr, bool) {
	a, _, ok := s.NextPos()
	return a, ok
}

func (s *listSpace) NextPos() (netip.Addr, uint64, bool) {
	idx, pos, ok := s.perm.NextPos()
	if !ok {
		return netip.Addr{}, 0, false
	}
	return s.addrs[idx], pos, true
}
