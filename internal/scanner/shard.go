package scanner

// NewPermutationShard builds shard `shard` of `totalShards` over [0, n):
// the full-cycle permutation is partitioned by position, so the shards are
// pairwise disjoint and their union is exactly the full target space. This
// is ZMap's sharding mechanism, used to split one Internet-wide campaign
// across probing machines without coordination. The same mechanism splits
// one machine's campaign across the engine's worker goroutines — see
// Permutation.Shard, which this wraps.
func NewPermutationShard(n uint64, seed int64, shard, totalShards int) (*Permutation, error) {
	p, err := NewPermutation(n, seed)
	if err != nil {
		return nil, err
	}
	return p.Shard(shard, totalShards)
}

// composeLCG returns the multiplier and increment of the k-fold composition
// of x -> a·x + c modulo mask+1.
func composeLCG(a, c, mask uint64, k int) (aK, cK uint64) {
	aK, cK = 1, 0
	for i := 0; i < k; i++ {
		// Compose once more: x -> a·(aK·x + cK) + c = (a·aK)x + (a·cK + c).
		cK = (a*cK + c) & mask
		aK = (a * aK) & mask
	}
	return aK, cK
}
