package scanner

import "fmt"

// NewPermutationShard builds shard `shard` of `totalShards` over [0, n):
// the full-cycle permutation is partitioned by position, so the shards are
// pairwise disjoint and their union is exactly the full target space. This
// is ZMap's sharding mechanism, used to split one Internet-wide campaign
// across probing machines without coordination.
func NewPermutationShard(n uint64, seed int64, shard, totalShards int) (*Permutation, error) {
	if totalShards <= 0 || shard < 0 || shard >= totalShards {
		return nil, fmt.Errorf("scanner: shard %d of %d invalid", shard, totalShards)
	}
	p, err := NewPermutation(n, seed)
	if err != nil {
		return nil, err
	}
	if totalShards == 1 {
		return p, nil
	}
	// Advance the start to this shard's first position.
	for i := 0; i < shard; i++ {
		p.state = (p.a*p.state + p.c) & p.mask
	}
	// Compose the LCG with itself totalShards times: applying
	// x -> a·x + c k times equals x -> a^k·x + c·(a^(k-1) + … + a + 1),
	// all modulo the power-of-two m. The shard then steps through every
	// k-th position of the full cycle.
	p.a, p.c = composeLCG(p.a, p.c, p.mask, totalShards)
	// This shard owns ceil((m - shard) / k) positions of the cycle.
	p.cycleLeft = (p.m - uint64(shard) + uint64(totalShards) - 1) / uint64(totalShards)
	return p, nil
}

// composeLCG returns the multiplier and increment of the k-fold composition
// of x -> a·x + c modulo mask+1.
func composeLCG(a, c, mask uint64, k int) (aK, cK uint64) {
	aK, cK = 1, 0
	for i := 0; i < k; i++ {
		// Compose once more: x -> a·(aK·x + cK) + c = (a·aK)x + (a·cK + c).
		cK = (a*cK + c) & mask
		aK = (a * aK) & mask
	}
	return aK, cK
}
