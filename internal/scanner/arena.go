package scanner

// byteArena amortizes the per-response payload copies the capture goroutine
// makes when the transport recycles its receive buffers: instead of one heap
// allocation per retained datagram, payloads are packed into fixed-size
// chunks. Chunks are never reallocated — a chunk that cannot fit the next
// payload is retired and a fresh one started — so previously returned
// subslices stay valid for the lifetime of the arena (the campaign result
// retains them).
//
// The arena is used by a single goroutine and needs no locking.
type byteArena struct {
	cur []byte
}

// arenaChunkSize is the allocation unit. Discovery responses are ~100 bytes,
// so one chunk absorbs hundreds of payload copies.
const arenaChunkSize = 64 * 1024

// respChunkLen sizes the capture goroutine's response chunks (~290 KiB per
// chunk at the current Response size).
const respChunkLen = 4096

// copyOf returns a stable copy of p owned by the arena. Payloads larger than
// a chunk get a dedicated allocation; empty payloads return nil.
func (a *byteArena) copyOf(p []byte) []byte {
	n := len(p)
	if n == 0 {
		return nil
	}
	if n > arenaChunkSize {
		out := make([]byte, n)
		copy(out, p)
		return out
	}
	if cap(a.cur)-len(a.cur) < n {
		a.cur = make([]byte, 0, arenaChunkSize)
	}
	start := len(a.cur)
	a.cur = append(a.cur, p...)
	return a.cur[start : start+n : start+n]
}
