// Package scanner implements a ZMap-style single-packet UDP scan engine:
// stateless probing of a randomly permuted target space under a token-bucket
// rate limit, with asynchronous response capture.
//
// Targets are visited in a pseudo-random order produced by a full-cycle
// affine permutation. ZMap itself iterates the multiplicative group of
// integers modulo a prime just above the address space; we use an affine
// LCG over the next power of two (full-period by the Hull–Dobell theorem),
// which has the same measurement property — every target visited exactly
// once, in an order uncorrelated with address locality, so per-prefix load
// is spread out — while being verifiable without factoring.
package scanner

import "fmt"

// Permutation enumerates 0..N-1 exactly once in a seeded pseudo-random
// order.
type Permutation struct {
	n     uint64 // target count
	m     uint64 // power-of-two modulus >= n
	mask  uint64
	a, c  uint64 // LCG multiplier and increment
	state uint64
	// cycleLeft counts the remaining cycle positions to visit; positions
	// holding values >= n are skipped silently.
	cycleLeft uint64
}

// NewPermutation builds a permutation of [0, n) from the seed.
func NewPermutation(n uint64, seed int64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("scanner: empty target space")
	}
	m := uint64(1)
	for m < n {
		m <<= 1
	}
	s := uint64(seed)
	// Hull–Dobell conditions for a full-period LCG with power-of-two
	// modulus: c odd, a ≡ 1 (mod 4).
	a := (splitmix(&s)&(m-1))&^3 | 1
	if m >= 8 {
		a |= 4 // avoid the identity multiplier for tiny seeds (keeps a ≡ 1 mod 4)
	}
	c := splitmix(&s)&(m-1) | 1
	start := splitmix(&s) & (m - 1)
	return &Permutation{n: n, m: m, mask: m - 1, a: a, c: c, state: start, cycleLeft: m}, nil
}

// splitmix is a splitmix64 step used to derive permutation parameters.
func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next returns the next index, and false once the permutation (or this
// shard of it) is exhausted.
func (p *Permutation) Next() (uint64, bool) {
	for p.cycleLeft > 0 {
		v := p.state
		p.state = (p.a*p.state + p.c) & p.mask
		p.cycleLeft--
		if v < p.n {
			return v, true
		}
	}
	return 0, false
}

// Remaining reports how many cycle positions are still to be visited (an
// upper bound on the indices still to come).
func (p *Permutation) Remaining() uint64 { return p.cycleLeft }
