// Package scanner implements a ZMap-style single-packet UDP scan engine:
// stateless probing of a randomly permuted target space under a token-bucket
// rate limit, with asynchronous response capture.
//
// Targets are visited in a pseudo-random order produced by a full-cycle
// affine permutation. ZMap itself iterates the multiplicative group of
// integers modulo a prime just above the address space; we use an affine
// LCG over the next power of two (full-period by the Hull–Dobell theorem),
// which has the same measurement property — every target visited exactly
// once, in an order uncorrelated with address locality, so per-prefix load
// is spread out — while being verifiable without factoring.
package scanner

import "fmt"

// Permutation enumerates 0..N-1 exactly once in a seeded pseudo-random
// order.
type Permutation struct {
	n     uint64 // target count
	m     uint64 // power-of-two modulus >= n
	mask  uint64
	a, c  uint64 // LCG multiplier and increment
	state uint64
	// cycleLeft counts the remaining cycle positions to visit; positions
	// holding values >= n are skipped silently.
	cycleLeft uint64
	// posOffset/posStride map this (possibly sharded) walk's steps back to
	// slot positions of the sequence it was sharded from: step k visits
	// slot posOffset + k*posStride. The engine schedules probe send times
	// from these slots, so a target's virtual timestamp is a pure function
	// of the seed — independent of how many shards walk the space.
	posOffset uint64
	posStride uint64
	// steps counts cycle steps taken, including skipped positions.
	steps uint64
}

// NewPermutation builds a permutation of [0, n) from the seed.
func NewPermutation(n uint64, seed int64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("scanner: empty target space")
	}
	m := uint64(1)
	for m < n {
		m <<= 1
	}
	s := uint64(seed)
	// Hull–Dobell conditions for a full-period LCG with power-of-two
	// modulus: c odd, a ≡ 1 (mod 4).
	a := (splitmix(&s)&(m-1))&^3 | 1
	if m >= 8 {
		a |= 4 // avoid the identity multiplier for tiny seeds (keeps a ≡ 1 mod 4)
	}
	c := splitmix(&s)&(m-1) | 1
	start := splitmix(&s) & (m - 1)
	return &Permutation{n: n, m: m, mask: m - 1, a: a, c: c, state: start, cycleLeft: m, posStride: 1}, nil
}

// splitmix is a splitmix64 step used to derive permutation parameters.
func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next returns the next index, and false once the permutation (or this
// shard of it) is exhausted.
func (p *Permutation) Next() (uint64, bool) {
	v, _, ok := p.NextPos()
	return v, ok
}

// NextPos returns the next index together with the slot position it
// occupies in the sequence this walk was sharded from (the walk itself,
// when unsharded). Skipped cycle positions consume slots, so the slot of a
// given index is identical no matter how the space is sharded.
func (p *Permutation) NextPos() (idx, pos uint64, ok bool) {
	for p.cycleLeft > 0 {
		v := p.state
		pos = p.posOffset + p.steps*p.posStride
		p.state = (p.a*p.state + p.c) & p.mask
		p.cycleLeft--
		p.steps++
		if v < p.n {
			return v, pos, true
		}
	}
	return 0, 0, false
}

// Remaining reports how many cycle positions are still to be visited (an
// upper bound on the indices still to come).
func (p *Permutation) Remaining() uint64 { return p.cycleLeft }

// Slots reports the total number of cycle slots this walk visits, counting
// the silently skipped positions. It is the campaign scheduler's timeline
// length: probing one slot per 1/rate seconds covers the walk in
// Slots()/rate seconds.
func (p *Permutation) Slots() uint64 { return p.cycleLeft + p.steps }

// RootSlots reports the slot-cycle length of the root (unsharded) sequence
// this walk's positions index into: the power-of-two modulus of the original
// permutation, invariant under sharding and consumption. A shard executing
// one slice of a campaign uses it as the pass timeline length, so its probe
// schedule spans the same window the full walk would — the invariant that
// lets disjoint shards of one campaign run on different machines and still
// merge byte-identically.
func (p *Permutation) RootSlots() uint64 { return p.m }

// Shard splits an unconsumed walk into shard `shard` of `totalShards`,
// following ZMap's mechanism: the shard steps through every totalShards-th
// position of the parent sequence, starting at position `shard`, so shards
// are pairwise disjoint and their union is exactly the parent walk. Shards
// of shards compose: sharding a shard partitions that shard's sequence.
func (p *Permutation) Shard(shard, totalShards int) (*Permutation, error) {
	if totalShards <= 0 || shard < 0 || shard >= totalShards {
		return nil, fmt.Errorf("scanner: shard %d of %d invalid", shard, totalShards)
	}
	if p.steps != 0 {
		return nil, fmt.Errorf("scanner: cannot shard a partially consumed permutation")
	}
	s := &Permutation{
		n: p.n, m: p.m, mask: p.mask,
		a: p.a, c: p.c, state: p.state,
		posOffset: p.posOffset + uint64(shard)*p.posStride,
		posStride: p.posStride * uint64(totalShards),
	}
	if totalShards == 1 {
		s.cycleLeft = p.cycleLeft
		return s, nil
	}
	// Advance the start to this shard's first position.
	for i := 0; i < shard; i++ {
		s.state = (s.a*s.state + s.c) & s.mask
	}
	// Compose the LCG with itself totalShards times: applying
	// x -> a·x + c k times equals x -> a^k·x + c·(a^(k-1) + … + a + 1),
	// all modulo the power-of-two m. The shard then steps through every
	// k-th position of the parent sequence.
	s.a, s.c = composeLCG(p.a, p.c, p.mask, totalShards)
	// This shard owns ceil((parentSlots - shard) / k) positions (zero when
	// there are more shards than slots left).
	if uint64(shard) >= p.cycleLeft {
		s.cycleLeft = 0
	} else {
		s.cycleLeft = (p.cycleLeft - uint64(shard) + uint64(totalShards) - 1) / uint64(totalShards)
	}
	return s, nil
}
