//go:build linux && arm64

package scanner

// Syscall numbers for linux/arm64 (asm-generic table).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
