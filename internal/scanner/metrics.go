package scanner

import (
	"net/netip"
	"strconv"
	"time"

	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/vclock"
)

// scanMetrics holds the engine's cached metric handles. Every field is
// nil-safe: with no registry configured the handles are nil and each
// instrumentation point costs one nil check.
type scanMetrics struct {
	sent      *obs.Counter
	retried   *obs.Counter
	received  *obs.Counter
	offPath   *obs.Counter
	sendErrs  *obs.Counter
	passes    *obs.Counter
	timeouts  *obs.Counter
	shardSent []*obs.Counter
	inflight  *obs.Gauge
	drift     *obs.Gauge
	paceLag   *obs.Gauge
	rtt       *obs.Histogram
	batchSize *obs.Histogram
	sysSaved  *obs.Counter
	tracer    *obs.Tracer
}

// newScanMetrics registers (or re-attaches to) the scanner metric families.
// The tracer times spans on the campaign clock, so simulated campaigns
// export deterministic span histograms.
func newScanMetrics(reg *obs.Registry, clock vclock.Clock, workers int) *scanMetrics {
	m := &scanMetrics{
		sent:      reg.Counter("snmpfp_scan_probes_sent_total"),
		retried:   reg.Counter("snmpfp_scan_retries_total"),
		received:  reg.Counter("snmpfp_scan_responses_total"),
		offPath:   reg.Counter("snmpfp_scan_offpath_rejected_total"),
		sendErrs:  reg.Counter("snmpfp_scan_send_errors_total"),
		passes:    reg.Counter("snmpfp_scan_passes_total"),
		timeouts:  reg.Counter("snmpfp_scan_unanswered_total"),
		inflight:  reg.Gauge("snmpfp_scan_inflight_workers"),
		drift:     reg.Gauge("snmpfp_scan_vclock_drift_seconds"),
		paceLag:   reg.Gauge("snmpfp_scan_pace_lag_seconds"),
		rtt:       reg.Histogram("snmpfp_scan_probe_rtt_seconds", nil),
		batchSize: reg.Histogram("snmpfp_scan_send_batch_datagrams", obs.ExpBuckets(1, 2, 12)),
		sysSaved:  reg.Counter("snmpfp_scan_batch_syscalls_saved_total"),
		tracer:    obs.NewTracer(reg, clock),
	}
	reg.Help("snmpfp_scan_probes_sent_total", "probes transmitted, retries included")
	reg.Help("snmpfp_scan_retries_total", "probes re-sent by retry passes")
	reg.Help("snmpfp_scan_responses_total", "response datagrams captured")
	reg.Help("snmpfp_scan_offpath_rejected_total", "datagrams rejected: source never probed")
	reg.Help("snmpfp_scan_send_errors_total", "failed Send calls")
	reg.Help("snmpfp_scan_passes_total", "send passes completed (initial sweep + retries)")
	reg.Help("snmpfp_scan_unanswered_total", "targets that never responded by campaign end")
	reg.Help("snmpfp_scan_inflight_workers", "send workers currently running")
	reg.Help("snmpfp_scan_vclock_drift_seconds", "campaign-clock elapsed minus wall elapsed")
	reg.Help("snmpfp_scan_pace_lag_seconds", "per-worker realized send timeline behind the deadline timeline at pass end")
	reg.Help("snmpfp_scan_probe_rtt_seconds", "probe-to-response round-trip time")
	reg.Help("snmpfp_scan_send_batch_datagrams", "datagrams accepted per batch send operation")
	reg.Help("snmpfp_scan_batch_syscalls_saved_total", "per-datagram send operations avoided by batching (n-1 per accepted batch)")
	m.shardSent = make([]*obs.Counter, workers)
	for i := range m.shardSent {
		m.shardSent[i] = reg.Counter("snmpfp_scan_shard_probes_sent_total",
			obs.L("shard", strconv.Itoa(i)))
	}
	reg.Help("snmpfp_scan_shard_probes_sent_total", "per-worker probes transmitted")
	return m
}

// sendRec is one probe transmission, logged per worker (contention-free)
// so pass-end RTT accounting can match responses to their send instants.
type sendRec struct {
	addr netip.Addr
	at   time.Time
}

// noteRTTSend logs one transmission when RTT observation is enabled.
func (e *engine) noteRTTSend(shard int, addr netip.Addr, at time.Time) {
	if e.sendLog == nil {
		return
	}
	e.sendLog[shard] = append(e.sendLog[shard], sendRec{addr: addr, at: at})
}

// noteRTTSends logs a whole batch of transmissions. ats carries per-probe
// logical send instants (logical mode); when ats is nil every probe is logged
// at fallbackAt, the instant the batch call returned.
func (e *engine) noteRTTSends(shard int, dsts []netip.Addr, ats []time.Time, fallbackAt time.Time) {
	if e.sendLog == nil {
		return
	}
	log := e.sendLog[shard]
	for i, dst := range dsts {
		at := fallbackAt
		if ats != nil {
			at = ats[i]
		}
		log = append(log, sendRec{addr: dst, at: at})
	}
	e.sendLog[shard] = log
}

// noteBatchOp records one accepted batch operation: the batch-size histogram
// feeds the pps-vs-batch tuning curve, and every datagram beyond the first
// is one per-datagram send operation (syscall, on real sockets) avoided.
func (e *engine) noteBatchOp(n int) {
	if n <= 0 {
		return
	}
	e.metrics.batchSize.Observe(float64(n))
	if n > 1 {
		e.metrics.sysSaved.Add(uint64(n - 1))
	}
}

// observePassRTTs runs after the pass's quiesce barrier: every response the
// transport queued for this pass has been captured, so matching responses
// against the pass's send log yields exact per-probe round-trip times
// (virtual durations under the virtual clock — deterministic across worker
// counts). Responses predating this pass's probe of the same source (late
// arrivals from the previous pass) would yield non-positive durations and
// are skipped.
func (e *engine) observePassRTTs() {
	if e.sendLog == nil {
		return
	}
	sentAt := make(map[netip.Addr]time.Time)
	for i, log := range e.sendLog {
		for _, r := range log {
			sentAt[r.addr] = r.at
		}
		e.sendLog[i] = nil
	}
	e.mu.Lock()
	// Walk the response chunks from the high-water mark of the previous
	// pass; only this pass's captures are matched against its send log.
	var rtts []time.Duration
	idx := 0
	scan := func(chunk []Response) {
		if idx+len(chunk) <= e.rttMark {
			idx += len(chunk)
			return
		}
		for i := range chunk {
			if idx >= e.rttMark {
				resp := &chunk[i]
				if at, ok := sentAt[resp.Src]; ok {
					if d := resp.At.Sub(at); d > 0 {
						rtts = append(rtts, d)
					}
				}
			}
			idx++
		}
	}
	for _, c := range e.respChunks {
		scan(c)
	}
	scan(e.respCur)
	e.rttMark = idx
	e.mu.Unlock()
	for _, d := range rtts {
		e.metrics.rtt.ObserveDuration(d)
	}
}

// observeDrift publishes how far the campaign clock has run ahead of the
// wall clock — hours-per-second under the virtual clock, ~0 for real scans.
func (e *engine) observeDrift() {
	if e.metrics.drift == nil {
		return
	}
	virtual := e.cfg.Clock.Now().Sub(e.startClock)
	wall := time.Since(e.startWall)
	e.metrics.drift.Set((virtual - wall).Seconds())
}
