package scanner

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"time"

	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/vclock"
)

// Transport carries probe datagrams to targets and responses back. The UDP
// implementation in this package talks to real sockets; netsim provides an
// in-memory implementation for Internet-scale simulated campaigns.
type Transport interface {
	// Send transmits one probe payload to dst.
	Send(dst netip.Addr, payload []byte) error
	// Recv blocks for the next response datagram. It returns io.EOF after
	// Close once all pending responses are delivered.
	Recv() (src netip.Addr, payload []byte, at time.Time, err error)
	// Close releases the transport; subsequent Recv calls drain and then
	// report io.EOF.
	Close() error
}

// Response is one captured datagram.
type Response struct {
	Src     netip.Addr
	Payload []byte
	At      time.Time
}

// Config tunes a campaign.
type Config struct {
	// Rate is the probe rate in packets per second (the paper probes IPv4
	// at 5 kpps and IPv6 at 20 kpps).
	Rate int
	// Batch is how many probes are sent between pacing sleeps.
	Batch int
	// Timeout is the drain period after the last probe.
	Timeout time.Duration
	// Clock paces the campaign; defaults to the wall clock.
	Clock vclock.Clock
	// Seed randomizes probe IDs.
	Seed int64
}

func (c *Config) fill() {
	if c.Rate <= 0 {
		c.Rate = 5000
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 8 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
}

// Result summarizes a campaign.
type Result struct {
	Sent      uint64
	Responses []Response
	Started   time.Time
	Finished  time.Time
}

// Scan runs one campaign: it walks the target space in permuted order at the
// configured rate, sending one SNMPv3 discovery probe per target, while a
// capture goroutine collects every response until the post-send timeout.
func Scan(tr Transport, targets TargetSpace, cfg Config) (*Result, error) {
	cfg.fill()
	res := &Result{Started: cfg.Clock.Now()}

	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		for {
			src, payload, at, err := tr.Recv()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					recvErr = err
				}
				return
			}
			res.Responses = append(res.Responses, Response{Src: src, Payload: payload, At: at})
		}
	}()

	interval := time.Second / time.Duration(cfg.Rate)
	// One stateless probe serves the whole campaign (as in ZMap, per-target
	// state would defeat the point); responses are matched by source
	// address.
	probe, err := snmp.EncodeDiscoveryRequest(cfg.Seed&0x7FFFFFFF, (cfg.Seed*2654435761)&0x7FFFFFFF)
	if err != nil {
		return nil, fmt.Errorf("scanner: building probe: %w", err)
	}
	batch := 0
	for {
		target, ok := targets.Next()
		if !ok {
			break
		}
		if err := tr.Send(target, probe); err != nil {
			return nil, fmt.Errorf("scanner: sending to %v: %w", target, err)
		}
		res.Sent++
		batch++
		if batch >= cfg.Batch {
			cfg.Clock.Sleep(interval * time.Duration(batch))
			batch = 0
		}
	}
	if batch > 0 {
		cfg.Clock.Sleep(interval * time.Duration(batch))
	}
	// Drain period, then stop the capture.
	cfg.Clock.Sleep(cfg.Timeout)
	if err := tr.Close(); err != nil {
		return nil, err
	}
	wg.Wait()
	if recvErr != nil {
		return nil, recvErr
	}
	res.Finished = cfg.Clock.Now()
	return res, nil
}
