package scanner

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/vclock"
)

// Transport carries probe datagrams to targets and responses back. The UDP
// implementation in this package talks to real sockets; netsim provides an
// in-memory implementation for Internet-scale simulated campaigns.
type Transport interface {
	// Send transmits one probe payload to dst.
	Send(dst netip.Addr, payload []byte) error
	// Recv blocks for the next response datagram. It returns io.EOF after
	// Close once all pending responses are delivered.
	Recv() (src netip.Addr, payload []byte, at time.Time, err error)
	// Close releases the transport; subsequent Recv calls drain and then
	// report io.EOF.
	Close() error
}

// TimedTransport is a Transport that can emit a probe at a caller-chosen
// logical instant. Simulated transports implement it so the engine can
// schedule every probe's virtual send time from its permutation slot: the
// timestamp becomes a pure function of the seed, which is what keeps
// multi-worker virtual campaigns bit-identical to single-worker ones.
type TimedTransport interface {
	Transport
	// SendAt transmits one probe payload to dst at logical time at.
	SendAt(dst netip.Addr, payload []byte, at time.Time) error
}

// PayloadReleaser is implemented by transports whose Recv hands out payloads
// backed by reusable buffers. After a payload has been parsed or copied, the
// consumer returns it with ReleasePayload and must not touch it again; the
// transport is then free to reuse the backing buffer for a later datagram.
// The engine copies retained responses out of transport buffers and releases
// them; consumers that never release simply leave the buffers to the GC.
type PayloadReleaser interface {
	// ReleasePayload returns a payload obtained from Recv to the transport.
	ReleasePayload(p []byte)
}

// ResponseCounter is implemented by transports that can report how many
// response datagrams they have queued for delivery so far. The engine uses
// it between passes to wait until the capture goroutine has consumed every
// queued response, so the retry pass sees an exact non-responder set.
type ResponseCounter interface {
	// QueuedResponses returns the total number of response datagrams queued
	// for Recv since the transport was opened.
	QueuedResponses() uint64
}

// Response is one captured datagram.
type Response struct {
	Src     netip.Addr
	Payload []byte
	At      time.Time
}

// Config tunes a campaign.
type Config struct {
	// Rate is the aggregate probe rate in packets per second (the paper
	// probes IPv4 at 5 kpps and IPv6 at 20 kpps), split evenly across the
	// workers. Clamped to [1, 1e9].
	Rate int
	// Batch is how many probes each worker sends between pacing sleeps.
	Batch int
	// Timeout is the drain period after the last probe of each pass.
	Timeout time.Duration
	// Clock paces the campaign; defaults to the wall clock.
	Clock vclock.Clock
	// Seed randomizes probe IDs.
	Seed int64
	// Workers is the number of concurrent send goroutines; each walks its
	// own ZMap-style shard of the target space with its own token-bucket
	// pacing at Rate/Workers. Defaults to 1. Clamped to 1 when the target
	// space does not implement ShardableSpace. Under the virtual clock,
	// results are identical for any worker count.
	Workers int
	// Retries is how many extra passes re-probe the targets that have not
	// responded by the end of the previous pass's drain window (the
	// paper's §4.2 loss handling). Requires a ShardableSpace; clamped to 0
	// otherwise.
	Retries int
	// Progress, when non-nil, receives campaign statistics snapshots
	// roughly every ProgressEvery probes and once at completion. It is
	// never called concurrently with itself.
	Progress func(Snapshot)
	// ProgressEvery is the number of probes between Progress callbacks
	// (default 65536).
	ProgressEvery int
	// Obs, when non-nil, receives the campaign's metrics: probe/retry/
	// response counters (total and per shard), an in-flight worker gauge,
	// a probe RTT histogram, virtual-clock drift, and scan.campaign /
	// scan.pass spans timed on the campaign clock (see DESIGN.md §10).
	// Metrics never perturb results: simulated campaigns stay
	// byte-identical across worker counts with a registry attached. RTT
	// accounting keeps a per-pass send log (one small record per probe),
	// so leave Obs nil for Internet-scale real scans on tight memory.
	Obs *obs.Registry
	// Protocols selects which probe modules a multi-protocol sweep runs
	// (see internal/probe.ScanProtocols); empty means SNMPv3 discovery
	// only. The engine itself ignores the field — each module's campaign
	// runs through ScanProbe with that module's payload.
	Protocols []string
}

const (
	// maxRate caps Rate at one probe per nanosecond: beyond that pacing
	// arithmetic degenerates (the pre-clamp code silently disabled pacing
	// because the per-probe interval truncated to zero).
	maxRate = int(time.Second) // 1e9 pps
	// maxBatch and maxWorkers bound the pacing arithmetic so duration
	// computations cannot overflow int64 nanoseconds.
	maxBatch   = 1 << 20
	maxWorkers = 4096
)

func (c *Config) fill() {
	if c.Rate <= 0 {
		c.Rate = 5000
	}
	if c.Rate > maxRate {
		c.Rate = maxRate
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Batch > maxBatch {
		c.Batch = maxBatch
	}
	if c.Timeout <= 0 {
		c.Timeout = 8 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Workers > maxWorkers {
		c.Workers = maxWorkers
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 65536
	}
}

// Result summarizes a campaign.
type Result struct {
	// Sent counts every probe transmitted, retries included.
	Sent uint64
	// Retried counts the probes re-sent by retry passes.
	Retried uint64
	// OffPath counts response datagrams rejected because their source was
	// never probed (requires a MembershipSpace target space; 0 otherwise).
	// Rejected datagrams do not appear in Responses.
	OffPath uint64
	// ProbeMsgID is the msgID carried by every probe of the campaign.
	// Well-behaved agents echo it in their reports, so collectors can
	// reject responses whose echoed ID does not match the probe slot
	// (corrupted or forged datagrams). 0 disables that check.
	ProbeMsgID int64
	// Responses holds every captured datagram in canonical order (receive
	// time, then source, then payload) so a campaign's result is
	// reproducible regardless of worker scheduling.
	Responses []Response
	Started   time.Time
	Finished  time.Time
}

// Scan runs one campaign with a background context.
//
// Deprecated: use [ScanContext], which runs the same module-aware engine
// path and supports mid-campaign cancellation.
func Scan(tr Transport, targets TargetSpace, cfg Config) (*Result, error) {
	return ScanContext(context.Background(), tr, targets, cfg)
}

// ProbeSpec is the probe a campaign sends: one stateless payload for every
// target (as in ZMap, per-target state would defeat the point) plus the
// identity value well-behaved agents echo back. Probe modules
// (internal/probe) build specs; the engine is protocol-agnostic and treats
// the payload as opaque bytes.
type ProbeSpec struct {
	// Payload is the wire bytes sent to every target.
	Payload []byte
	// Ident is the campaign identity embedded in Payload (SNMPv3 msgID,
	// ICMP identifier+sequence, NTP sequence). It lands in
	// Result.ProbeMsgID so collectors can reject responses whose echoed
	// identity does not match the campaign. 0 disables that check.
	Ident int64
}

// ScanContext runs one SNMPv3 discovery campaign. It is a thin wrapper
// over [ScanProbe] with the SNMPv3 discovery module's probe spec, kept
// byte-identical to the pre-module engine: same payload bytes, same
// msgID derivation, same engine path.
func ScanContext(ctx context.Context, tr Transport, targets TargetSpace, cfg Config) (*Result, error) {
	// Responses are matched by source address, and the echoed msgID lets
	// collectors reject forgeries.
	probeMsgID := cfg.Seed & 0x7FFFFFFF
	probe := snmp.AppendDiscoveryRequest(nil, probeMsgID, (cfg.Seed*2654435761)&0x7FFFFFFF)
	return ScanProbe(ctx, tr, targets, cfg, ProbeSpec{Payload: probe, Ident: probeMsgID})
}

// ScanProbe runs one campaign with an arbitrary probe payload: N worker
// goroutines walk disjoint shards of the target space in permuted order,
// collectively pacing to the configured aggregate rate and sending
// spec.Payload to every target, while a capture goroutine collects every
// response until the post-send timeout. Optional retry passes re-probe the
// remaining non-responders.
//
// Cancelling ctx drains every worker at its next loop iteration. The
// returned error then wraps ctx's error, and — unlike other failures — the
// Result still carries the partial campaign's accounting (probes sent,
// responses captured so far), so a cancelled campaign remains auditable.
//
// The transport is closed on every exit path, including mid-campaign send
// failures and cancellation, so the capture goroutine never leaks.
func ScanProbe(ctx context.Context, tr Transport, targets TargetSpace, cfg Config, spec ProbeSpec) (*Result, error) {
	cfg.fill()
	e := newEngine(tr, targets, cfg, spec.Payload)
	campaignSpan := e.metrics.tracer.Start("scan.campaign")
	res := &Result{Started: cfg.Clock.Now()}
	runErr := e.run(ctx, res)
	// Every exit path releases the transport and joins the capture
	// goroutine; the capture unblocks on the io.EOF that Close guarantees.
	closeErr := e.tr.Close()
	e.captureWG.Wait()
	campaignSpan.End()
	e.observeDrift()
	if err := errors.Join(runErr, closeErr, e.recvErr); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// Partial-campaign accounting survives cancellation.
			e.fillResult(res, spec.Ident)
			return res, err
		}
		return nil, err
	}
	e.fillResult(res, spec.Ident)
	if size := e.targets.Size(); size > uint64(len(e.responders)) {
		e.metrics.timeouts.Add(size - uint64(len(e.responders)))
	}
	e.fireProgress(true)
	return res, nil
}

// fillResult copies the engine's accounting into res. Only called after
// the capture goroutine has been joined, so the fields are quiescent.
func (e *engine) fillResult(res *Result, probeMsgID int64) {
	total := len(e.respCur)
	for _, c := range e.respChunks {
		total += len(c)
	}
	out := make([]Response, 0, total)
	for _, c := range e.respChunks {
		out = append(out, c...)
	}
	out = append(out, e.respCur...)
	res.Responses = out
	SortResponses(res.Responses)
	res.Sent = e.sent.Load()
	res.Retried = e.retried.Load()
	res.OffPath = e.offPath.Load()
	res.ProbeMsgID = probeMsgID
	res.Finished = e.cfg.Clock.Now()
}

// SortResponses orders captured datagrams canonically: by receive time,
// then source address, then payload bytes. Arrival order through the shared
// capture channel depends on worker interleaving; the canonical order does
// not, so equal campaigns produce equal Results. Exported for the
// distributed merge layer, which folds per-vantage partial results back
// into this same canonical order.
func SortResponses(rs []Response) {
	sort.SliceStable(rs, func(i, j int) bool {
		if !rs[i].At.Equal(rs[j].At) {
			return rs[i].At.Before(rs[j].At)
		}
		if rs[i].Src != rs[j].Src {
			return rs[i].Src.Less(rs[j].Src)
		}
		return bytes.Compare(rs[i].Payload, rs[j].Payload) < 0
	})
}

// MergeResults folds the partial Results of disjoint shards of one campaign
// into the Result the unsharded campaign would have produced: responses are
// concatenated and re-sorted into canonical order, counters are summed, and
// the campaign window is the union of the parts' windows. All parts must
// come from the same campaign configuration (same seed, so same ProbeMsgID);
// MergeResults does not verify that beyond the msgID.
func MergeResults(parts ...*Result) *Result {
	out := &Result{}
	total := 0
	for _, p := range parts {
		total += len(p.Responses)
	}
	out.Responses = make([]Response, 0, total)
	for i, p := range parts {
		out.Responses = append(out.Responses, p.Responses...)
		out.Sent += p.Sent
		out.Retried += p.Retried
		out.OffPath += p.OffPath
		if i == 0 || p.Started.Before(out.Started) {
			out.Started = p.Started
		}
		if p.Finished.After(out.Finished) {
			out.Finished = p.Finished
		}
		out.ProbeMsgID = p.ProbeMsgID
	}
	SortResponses(out.Responses)
	return out
}
