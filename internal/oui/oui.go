// Package oui provides a curated subset of the IEEE MA-L (OUI) registry
// (http://standards-oui.ieee.org/oui/oui.txt).
//
// The upper three bytes of a MAC address identify the organization that
// registered the block. MAC-format engine IDs therefore fingerprint the
// device vendor directly; the paper's "Unregistered MAC engine IDs" filter
// additionally drops MACs whose OUI has no registration. The subset embeds
// several real assignments per vendor the paper names (e.g. 74:8E:F8 is the
// Brocade OUI shown in the paper's Figure 3) plus assorted other vendors.
package oui

import (
	"fmt"
	"sort"
	"strings"
)

// OUI is a 24-bit organizationally unique identifier.
type OUI [3]byte

// String formats the OUI as colon-separated hex.
func (o OUI) String() string {
	return fmt.Sprintf("%02x:%02x:%02x", o[0], o[1], o[2])
}

// ParseOUI parses "aa:bb:cc", "aa-bb-cc" or "aabbcc".
func ParseOUI(s string) (OUI, error) {
	s = strings.NewReplacer(":", "", "-", "").Replace(strings.TrimSpace(s))
	if len(s) != 6 {
		return OUI{}, fmt.Errorf("oui: %q is not 3 octets", s)
	}
	var o OUI
	for i := 0; i < 3; i++ {
		var b byte
		if _, err := fmt.Sscanf(s[2*i:2*i+2], "%02x", &b); err != nil {
			return OUI{}, fmt.Errorf("oui: bad hex in %q", s)
		}
		o[i] = b
	}
	return o, nil
}

// registry maps OUI to vendor. Vendor labels match the paper's figures so
// fingerprints aggregate naturally.
var registry = map[OUI]string{
	// Cisco (the largest OUI holder; a representative sample).
	{0x00, 0x00, 0x0C}: "Cisco",
	{0x00, 0x01, 0x42}: "Cisco",
	{0x00, 0x1B, 0x54}: "Cisco",
	{0x00, 0x23, 0x5E}: "Cisco",
	{0x58, 0x8D, 0x09}: "Cisco",
	{0x70, 0xDB, 0x98}: "Cisco",
	{0xB0, 0xAA, 0x77}: "Cisco",
	{0xF8, 0x66, 0xF2}: "Cisco",
	// Huawei.
	{0x00, 0x1E, 0x10}: "Huawei",
	{0x00, 0x25, 0x9E}: "Huawei",
	{0x48, 0x46, 0xFB}: "Huawei",
	{0x94, 0x04, 0x9C}: "Huawei",
	{0xF4, 0xC7, 0x14}: "Huawei",
	// Juniper.
	{0x00, 0x05, 0x85}: "Juniper",
	{0x2C, 0x6B, 0xF5}: "Juniper",
	{0x5C, 0x5E, 0xAB}: "Juniper",
	{0xF8, 0xC0, 0x01}: "Juniper",
	// H3C.
	{0x00, 0x0F, 0xE2}: "H3C",
	{0x58, 0x66, 0xBA}: "H3C",
	{0x3C, 0xE5, 0xA6}: "H3C",
	// Brocade / Foundry.
	{0x74, 0x8E, 0xF8}: "Brocade",
	{0x00, 0x05, 0x1E}: "Brocade",
	{0x00, 0x24, 0x38}: "Brocade",
	// Thomson.
	{0x00, 0x0E, 0x50}: "Thomson",
	{0x00, 0x18, 0x9B}: "Thomson",
	{0x00, 0x26, 0x44}: "Thomson",
	// Netgear.
	{0x00, 0x09, 0x5B}: "Netgear",
	{0x20, 0x4E, 0x7F}: "Netgear",
	{0xA0, 0x40, 0xA0}: "Netgear",
	// Ambit.
	{0x00, 0xD0, 0x59}: "Ambit",
	{0x00, 0x13, 0xD4}: "Ambit",
	// Ruijie.
	{0x00, 0xD0, 0xF8}: "Ruijie",
	{0x58, 0x69, 0x6C}: "Ruijie",
	// OneAccess.
	{0x00, 0x12, 0xEF}: "OneAccess",
	{0x70, 0xFC, 0x8C}: "OneAccess",
	// Adtran.
	{0x00, 0xA0, 0xC8}: "Adtran",
	{0xE0, 0x22, 0xF0}: "Adtran",
	// Others seen in scan data.
	{0x00, 0x05, 0x5D}: "D-Link",
	{0x00, 0x19, 0xC6}: "ZTE",
	{0x4C, 0x5E, 0x0C}: "MikroTik",
	{0x64, 0xD1, 0x54}: "MikroTik",
	{0x50, 0xC7, 0xBF}: "TP-Link",
	{0x24, 0xA4, 0x3C}: "Ubiquiti",
	{0x00, 0x04, 0x96}: "Extreme Networks",
	{0x00, 0x14, 0x22}: "Dell",
	{0x00, 0x1B, 0x21}: "Intel",
	{0x00, 0x50, 0x56}: "VMware",
	{0x00, 0x0C, 0x29}: "VMware",
	{0x52, 0x54, 0x00}: "QEMU",
	{0x00, 0x90, 0x0B}: "Lanner",
	{0x00, 0x08, 0xA1}: "CNet",
	{0x28, 0x99, 0x3A}: "Arista",
	{0x00, 0x1C, 0x73}: "Arista",
	{0x00, 0x09, 0x0F}: "Fortinet",
	{0x00, 0x15, 0x65}: "Xiamen Yealink",
	{0x00, 0x03, 0xFA}: "Nokia SROS", // TiMetra
	{0x00, 0x21, 0x05}: "Alcatel-Lucent",
	{0xDC, 0x08, 0x56}: "Alcatel-Lucent",
	{0x00, 0x30, 0x88}: "Ericsson",
	{0x00, 0x01, 0xEC}: "Ericsson",
	{0x00, 0xA0, 0xC5}: "ZyXEL",
	{0x00, 0x23, 0xF8}: "ZyXEL",
	{0x00, 0x0F, 0xB5}: "Netgear",
	{0x14, 0x4D, 0x67}: "Draytek",
	{0x00, 0x1D, 0xAA}: "Draytek",
	{0xE0, 0x46, 0x9A}: "Netgear",
	{0x74, 0xDA, 0x88}: "TP-Link",
	{0x00, 0x17, 0x7C}: "Smart Link",
	{0x88, 0xF0, 0x31}: "Cisco",
	{0x00, 0x24, 0x14}: "Cisco",
	{0xC8, 0x9C, 0x1D}: "Cisco",
	{0x84, 0xB5, 0x17}: "Cisco",
	{0x00, 0xE0, 0xFC}: "Huawei",
	{0x88, 0x25, 0x93}: "TP-Link",
	{0x00, 0x0A, 0xF7}: "Broadcom",
	{0x00, 0x10, 0x18}: "Broadcom",
	{0xD4, 0x01, 0xC3}: "Broadcom",
	{0x18, 0xC0, 0x86}: "Broadcom",
}

// Lookup maps an OUI to its registered vendor.
func Lookup(o OUI) (vendor string, ok bool) {
	vendor, ok = registry[o]
	return vendor, ok
}

// LookupMAC maps a full 6-byte MAC address to its vendor.
func LookupMAC(mac []byte) (vendor string, ok bool) {
	if len(mac) < 3 {
		return "", false
	}
	return Lookup(OUI{mac[0], mac[1], mac[2]})
}

// OUIsOf returns every OUI registered to the vendor, sorted, for the
// simulator to draw device MACs from.
func OUIsOf(vendor string) []OUI {
	var out []OUI
	for o, v := range registry {
		if v == vendor {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Vendors returns the distinct vendor names in the subset, sorted.
func Vendors() []string {
	seen := map[string]bool{}
	for _, v := range registry {
		seen[v] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Size reports the number of OUI assignments in the subset.
func Size() int { return len(registry) }
