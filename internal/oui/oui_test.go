package oui

import "testing"

func TestParseOUI(t *testing.T) {
	for _, s := range []string{"74:8e:f8", "74-8E-F8", "748ef8", " 74:8E:f8 "} {
		o, err := ParseOUI(s)
		if err != nil {
			t.Fatalf("ParseOUI(%q): %v", s, err)
		}
		if o != (OUI{0x74, 0x8e, 0xf8}) {
			t.Errorf("ParseOUI(%q) = %v", s, o)
		}
	}
	for _, s := range []string{"", "74:8e", "74:8e:f8:31", "zz:zz:zz"} {
		if _, err := ParseOUI(s); err == nil {
			t.Errorf("ParseOUI(%q) should fail", s)
		}
	}
}

func TestOUIString(t *testing.T) {
	if (OUI{0x74, 0x8e, 0xf8}).String() != "74:8e:f8" {
		t.Error("String format wrong")
	}
}

func TestLookupPaperVendors(t *testing.T) {
	// The Brocade OUI from the paper's Figure 3.
	v, ok := Lookup(OUI{0x74, 0x8e, 0xf8})
	if !ok || v != "Brocade" {
		t.Errorf("74:8e:f8 = %q, %v", v, ok)
	}
	cases := map[OUI]string{
		{0x00, 0x00, 0x0C}: "Cisco",
		{0x00, 0x1E, 0x10}: "Huawei",
		{0x00, 0x05, 0x85}: "Juniper",
		{0x00, 0x0F, 0xE2}: "H3C",
		{0x00, 0x0E, 0x50}: "Thomson",
		{0x00, 0x09, 0x5B}: "Netgear",
		{0x00, 0xD0, 0x59}: "Ambit",
		{0x00, 0xD0, 0xF8}: "Ruijie",
		{0x70, 0xFC, 0x8C}: "OneAccess",
		{0x00, 0xA0, 0xC8}: "Adtran",
		{0x00, 0x10, 0x18}: "Broadcom",
	}
	for o, want := range cases {
		if v, ok := Lookup(o); !ok || v != want {
			t.Errorf("Lookup(%v) = %q, %v; want %q", o, v, ok, want)
		}
	}
}

func TestLookupUnregistered(t *testing.T) {
	if _, ok := Lookup(OUI{0x00, 0x00, 0x00}); ok {
		t.Error("zero OUI should be unregistered")
	}
	if _, ok := Lookup(OUI{0xDE, 0xAD, 0xBE}); ok {
		t.Error("DE:AD:BE should be unregistered")
	}
}

func TestLookupMAC(t *testing.T) {
	v, ok := LookupMAC([]byte{0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80})
	if !ok || v != "Brocade" {
		t.Errorf("LookupMAC = %q, %v", v, ok)
	}
	if _, ok := LookupMAC([]byte{0x74}); ok {
		t.Error("short MAC should fail")
	}
}

func TestOUIsOf(t *testing.T) {
	cisco := OUIsOf("Cisco")
	if len(cisco) < 5 {
		t.Errorf("Cisco OUIs = %d, want >= 5", len(cisco))
	}
	for i := 1; i < len(cisco); i++ {
		a, b := cisco[i-1], cisco[i]
		if !(a[0] < b[0] || (a[0] == b[0] && (a[1] < b[1] || (a[1] == b[1] && a[2] < b[2])))) {
			t.Fatal("OUIsOf not sorted")
		}
	}
	if len(OUIsOf("No Such Vendor")) != 0 {
		t.Error("unknown vendor should have no OUIs")
	}
}

func TestVendorsCoverPaperSet(t *testing.T) {
	vendors := map[string]bool{}
	for _, v := range Vendors() {
		vendors[v] = true
	}
	for _, want := range []string{"Cisco", "Huawei", "Juniper", "H3C", "Brocade",
		"Thomson", "Netgear", "Ambit", "Ruijie", "OneAccess", "Adtran", "Broadcom"} {
		if !vendors[want] {
			t.Errorf("vendor %q missing from registry", want)
		}
	}
	if Size() < 60 {
		t.Errorf("OUI subset suspiciously small: %d", Size())
	}
}
