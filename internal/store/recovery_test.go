package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// errCrashed is the simulated process death the injection hooks return.
var errCrashed = errors.New("store: simulated crash")

// crashWorkload drives a durable store through a fixed mutation sequence —
// three campaigns, per-sample Adds, an explicit flush and a compaction —
// recording which samples were acknowledged (Add returned nil). It stops at
// the first error, exactly as a crashing process would.
func crashWorkload(s *Store) (acked []sampleKey) {
	id := engID(9, 1, 2, 3, 4)
	for n := 1; n <= 3; n++ {
		if _, err := s.BeginCampaign(); err != nil {
			return acked
		}
		for i := 0; i < 7; i++ {
			o := mkObs(fmt.Sprintf("10.9.%d.%d", n, i), id, 2, int64(100*n+i), t0.AddDate(0, 0, n))
			if err := s.Add(o); err != nil {
				return acked
			}
			acked = append(acked, sampleKey{ip: o.IP.String(), campaign: uint64(n)})
		}
		if err := s.Flush(); err != nil {
			return acked
		}
	}
	if err := s.Compact(); err != nil {
		return acked
	}
	return acked
}

// TestCrashRecoveryEveryPoint kills the store at every durable step of a
// fixed workload — WAL appends and fsyncs (torn variants included), segment
// writes, manifest renames, file deletions — then reopens the directory
// and asserts the durability contract: every acknowledged sample is
// recovered exactly once, and nothing is duplicated. The pass count covers
// each injection point the workload reaches.
func TestCrashRecoveryEveryPoint(t *testing.T) {
	// First pass: count the durable steps of an uninterrupted run.
	total := 0
	{
		dir := t.TempDir()
		hooks := &diskHooks{fail: func(string) error { total++; return nil }}
		s, err := Open(Options{Dir: dir, FlushThreshold: 4, DisableCompaction: true, hooks: hooks})
		if err != nil {
			t.Fatal(err)
		}
		crashWorkload(s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if total < 30 {
		t.Fatalf("workload exercises only %d durable steps; hook wiring broken?", total)
	}

	for kill := 1; kill <= total; kill++ {
		kill := kill
		t.Run(fmt.Sprintf("point-%03d", kill), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			calls := 0
			var diedAt string
			hooks := &diskHooks{fail: func(point string) error {
				calls++
				if calls == kill {
					diedAt = point
					return errCrashed
				}
				return nil
			}}
			var acked []sampleKey
			s, err := Open(Options{Dir: dir, FlushThreshold: 4, DisableCompaction: true, hooks: hooks})
			if err == nil {
				acked = crashWorkload(s)
				// No Close: the process is dead. (Close would try more IO
				// and fail against the latched hooks anyway.)
			}

			r, err := Open(Options{Dir: dir, FlushThreshold: 4, DisableCompaction: true})
			if err != nil {
				t.Fatalf("recovery after crash at %q failed: %v", diedAt, err)
			}
			defer r.Close()
			got := allSamples(r)
			keys := checkNoDuplicates(t, got)
			// Recovery must hold every acknowledged sample. The reverse is
			// not required: unacknowledged writes that reached the disk
			// before the crash may legitimately survive.
			byIPCampaign := make(map[sampleKey]int, len(keys))
			for k := range keys {
				byIPCampaign[sampleKey{ip: k.ip, campaign: k.campaign}]++
			}
			for _, a := range acked {
				switch n := byIPCampaign[a]; n {
				case 1:
				case 0:
					t.Fatalf("crash at %q (step %d): acknowledged sample %+v lost (%d acked, %d recovered)",
						diedAt, kill, a, len(acked), len(got))
				default:
					t.Fatalf("crash at %q (step %d): sample %+v recovered %d times", diedAt, kill, a, n)
				}
			}
		})
	}
}

// walRecordOffsets parses a WAL file's framing and returns each record's
// start offset, mirroring the replay loop's walk.
func walRecordOffsets(t *testing.T, path string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int
	off := 0
	for off+8 <= len(data) {
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		if plen == 0 || len(data)-off-8 < plen {
			break
		}
		offs = append(offs, off)
		off += 8 + plen
	}
	return offs
}

// soleWAL returns the path of the only .wal file in dir.
func soleWAL(t *testing.T, dir string) string {
	t.Helper()
	wals := listExt(t, dir, ".wal")
	if len(wals) != 1 {
		t.Fatalf("want exactly one wal file, got %v", wals)
	}
	return filepath.Join(dir, wals[0])
}

// TestWALTornTailRecovery appends a torn (half-written) record to the log
// and verifies recovery keeps the valid prefix, truncates the garbage in
// place, and a second recovery finds nothing left to repair.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	id := engID(9, 1, 2, 3, 4)
	s := mustOpenDir(t, dir, Options{FlushThreshold: 1 << 20})
	if _, err := s.BeginCampaign(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Add(mkObs("10.3.0."+itoa(i), id, 1, int64(i+1), t0)); err != nil {
			t.Fatal(err)
		}
	}
	// The process dies mid-append: a record whose frame claims more bytes
	// than follow.
	path := soleWAL(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 0, 16)
	torn = appendUint32(torn, 64) // claims 64 payload bytes...
	torn = appendUint32(torn, 0xDEADBEEF)
	torn = append(torn, 1, 2, 3) // ...delivers three
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	validSize := int64(0)
	if fi, err := os.Stat(path); err == nil {
		validSize = fi.Size() - int64(len(torn))
	}

	r := mustOpenDir(t, dir, Options{})
	got := allSamples(r)
	checkNoDuplicates(t, got)
	if len(got) != 5 {
		t.Fatalf("recovered %d samples, want the 5 before the torn tail", len(got))
	}
	if r.d.walTruncations.Load() != 1 {
		t.Fatalf("truncations = %d, want 1", r.d.walTruncations.Load())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != validSize {
		t.Fatalf("torn tail not truncated in place: size %v, want %d", fi.Size(), validSize)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := mustOpenDir(t, dir, Options{})
	defer r2.Close()
	if got := allSamples(r2); len(got) != 5 {
		t.Fatalf("second recovery sees %d samples, want 5", len(got))
	}
	if n := r2.d.walTruncations.Load(); n != 0 {
		t.Fatalf("second recovery truncated %d files; the first should have repaired the log", n)
	}
}

// TestWALBadCRCRecovery flips a payload byte in a mid-log record and
// verifies recovery keeps exactly the records before it — a checksum
// failure ends the valid prefix even with well-formed framing after it.
func TestWALBadCRCRecovery(t *testing.T) {
	dir := t.TempDir()
	id := engID(9, 1, 2, 3, 4)
	s := mustOpenDir(t, dir, Options{FlushThreshold: 1 << 20})
	if _, err := s.BeginCampaign(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Add(mkObs("10.4.0."+itoa(i), id, 1, int64(i+1), t0)); err != nil {
			t.Fatal(err)
		}
	}
	path := soleWAL(t, dir)
	offs := walRecordOffsets(t, path)
	// Record 0 is the campaign boundary, 1..5 the samples; corrupt sample
	// record 3 (offset index 3), leaving two valid samples before it.
	if len(offs) != 6 {
		t.Fatalf("wal has %d records, want 6", len(offs))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offs[3]+8+5] ^= 0xFF // payload byte well past the record type
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpenDir(t, dir, Options{})
	defer r.Close()
	got := allSamples(r)
	checkNoDuplicates(t, got)
	if len(got) != 2 {
		t.Fatalf("recovered %d samples, want the 2 before the corrupt record", len(got))
	}
	for i := range got {
		if got[i].Seq > 3 {
			t.Fatalf("sample %v (seq %d) recovered from beyond the corruption horizon", got[i].IP, got[i].Seq)
		}
	}
	if r.d.walTruncations.Load() != 1 {
		t.Fatalf("truncations = %d, want 1", r.d.walTruncations.Load())
	}
	// Framing integrity of the CRC check itself.
	want := crc32.Checksum(data[offs[1]+8:offs[2]], castagnoli)
	if got := binary.LittleEndian.Uint32(data[offs[1]+4:]); got != want {
		t.Fatalf("sanity: record 1 crc %08x, want %08x", got, want)
	}
}
