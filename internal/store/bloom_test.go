package store

import (
	"encoding/binary"
	"testing"
)

// TestBloomNoFalseNegatives is the correctness contract: every added key
// answers true.
func TestBloomNoFalseNegatives(t *testing.T) {
	f := newSBBF(10_000, segBloomBitsPerKey)
	key := make([]byte, 8)
	for i := 0; i < 10_000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		f.add(key)
	}
	for i := 0; i < 10_000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		if !f.mayContain(key) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

// TestBloomFalsePositiveRate pins the FPR under 1% at the configured
// bits/key — the satellite's acceptance bar, with real headroom below it
// (the SBBF at 16 bits/key lands around 0.1%).
func TestBloomFalsePositiveRate(t *testing.T) {
	const nKeys = 50_000
	f := newSBBF(nKeys, segBloomBitsPerKey)
	key := make([]byte, 8)
	for i := 0; i < nKeys; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		f.add(key)
	}
	const probes = 200_000
	falsePos := 0
	for i := 0; i < probes; i++ {
		// Disjoint key space: high bit set.
		binary.LittleEndian.PutUint64(key, uint64(i)|1<<63)
		if f.mayContain(key) {
			falsePos++
		}
	}
	rate := float64(falsePos) / probes
	t.Logf("false-positive rate at %d bits/key: %.4f%% (%d/%d)",
		segBloomBitsPerKey, rate*100, falsePos, probes)
	if rate >= 0.01 {
		t.Fatalf("false-positive rate %.4f%% >= 1%% at %d bits/key", rate*100, segBloomBitsPerKey)
	}
}

// TestBloomAbsentFilterAnswersTrue pins the v2-compat semantics: a segment
// without a persisted filter must never filter anything out.
func TestBloomAbsentFilterAnswersTrue(t *testing.T) {
	var f sbbf
	if !f.mayContain([]byte("anything")) {
		t.Fatal("absent filter returned a definitive negative")
	}
}

// TestBloomKeyNamespacing pins that IP and engine-ID keys with identical
// payload bytes hash differently.
func TestBloomKeyNamespacing(t *testing.T) {
	payload := []byte{10, 0, 0, 1}
	var scratch [17]byte
	ipKey := bloomIPKey(scratch[:0], 4, payload)
	var scratch2 [64]byte
	engKey := bloomEngineKey(scratch2[:0], payload)
	if string(ipKey) == string(engKey) {
		t.Fatal("IP and engine keys collide for identical payloads")
	}
	f := newSBBF(64, segBloomBitsPerKey)
	f.add(ipKey)
	if !f.mayContain(ipKey) {
		t.Fatal("false negative on ip key")
	}
}
