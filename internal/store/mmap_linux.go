//go:build linux

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapReader backs a lazily opened segment with a read-only shared mapping:
// N serving processes over the same directory share one page-cache copy of
// every segment instead of N heap copies, and opening a segment costs two
// syscalls regardless of its size. Uses the stdlib syscall mmap wrappers
// directly — no golang.org/x/sys dependency.
type mmapReader struct {
	data []byte
}

func (m *mmapReader) bytes() []byte { return m.data }

func (m *mmapReader) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// openSegReader maps the file read-only. Decoded samples copy what they
// need out of the mapping (addresses, engine IDs, protocol strings), so
// nothing queries hand out can outlive an unmap.
func openSegReader(path string) (segReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment open: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: segment stat: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return &heapReader{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("store: segment %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: segment mmap %s: %w", path, err)
	}
	return &mmapReader{data: data}, nil
}
