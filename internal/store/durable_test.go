package store

import (
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snmpv3fp/internal/core"
)

// mustOpenDir opens a durable store in dir or fails the test.
func mustOpenDir(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	opt.Dir = dir
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// allSamples collects every sample the store currently holds — installed
// segments, frozen generations and the live memtable — in no particular
// order.
func allSamples(s *Store) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Sample
	for _, g := range s.segs {
		if err := g.scan(func(sm *Sample) { out = append(out, *sm) }); err != nil {
			panic(err)
		}
	}
	for _, f := range s.frozen {
		out = append(out, f.samples...)
	}
	out = append(out, s.mem.samples...)
	return out
}

// sampleKey identifies a sample for duplicate detection.
type sampleKey struct {
	ip       string
	campaign uint64
	seq      uint64
}

// checkNoDuplicates fails the test if two samples share (IP, campaign, seq).
func checkNoDuplicates(t *testing.T, samples []Sample) map[sampleKey]struct{} {
	t.Helper()
	keys := make(map[sampleKey]struct{}, len(samples))
	for i := range samples {
		k := sampleKey{samples[i].IP.String(), samples[i].Campaign, samples[i].Seq}
		if _, dup := keys[k]; dup {
			t.Fatalf("duplicate sample %+v", k)
		}
		keys[k] = struct{}{}
	}
	return keys
}

func listExt(t *testing.T, dir, ext string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ext) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestDurableRoundTrip is the happy path: ingest campaigns into a durable
// store, close it cleanly, reopen, and observe the identical query state —
// histories, alias sets, vendors and the campaign counter all survive.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	idA := engID(9, 1, 2, 3, 4)
	idB := engID(2636, 9, 9, 9, 9)
	day := int64(86400)
	c1 := mkCampaign(
		mkObs("192.0.2.1", idA, 2, 1000, t0),
		mkObs("192.0.2.2", idA, 2, 1000, t0),
		mkObs("192.0.2.3", idB, 5, 500, t0),
	)
	c2 := mkCampaign(
		mkObs("192.0.2.1", idA, 2, 1000+day, t0.AddDate(0, 0, 1)),
		mkObs("192.0.2.2", idA, 2, 1000+day, t0.AddDate(0, 0, 1)),
		mkObs("192.0.2.3", idB, 6, 100, t0.AddDate(0, 0, 1)),
	)

	s := mustOpenDir(t, dir, Options{FlushThreshold: 2})
	if _, err := s.Ingest(context.Background(), c1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), c2); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A sealed store leaves no log behind: the manifest plus segments are
	// the whole state.
	if wals := listExt(t, dir, ".wal"); len(wals) != 0 {
		t.Fatalf("wal files survive a clean close: %v", wals)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("no manifest after close: %v", err)
	}

	r := mustOpenDir(t, dir, Options{FlushThreshold: 2})
	defer r.Close()
	after := r.Snapshot()

	if got, want := after.Campaigns(), before.Campaigns(); got != want {
		t.Fatalf("campaigns after reopen = %d, want %d", got, want)
	}
	bs, as := before.Stats(), after.Stats()
	if as.Ingested != bs.Ingested || as.TrackedIPs != bs.TrackedIPs || as.Devices != bs.Devices {
		t.Fatalf("stats diverge after reopen: %+v vs %+v", as, bs)
	}
	if got, want := mustJSON(t, after.AliasSets()), mustJSON(t, before.AliasSets()); got != want {
		t.Fatalf("alias sets after reopen = %s, want %s", got, want)
	}
	if got, want := mustJSON(t, after.Vendors()), mustJSON(t, before.Vendors()); got != want {
		t.Fatalf("vendors after reopen = %s, want %s", got, want)
	}
	for _, ip := range []string{"192.0.2.1", "192.0.2.2", "192.0.2.3"} {
		addr := mkObs(ip, idA, 0, 0, t0).IP
		if got, want := mustJSON(t, after.History(addr)), mustJSON(t, before.History(addr)); got != want {
			t.Fatalf("history(%s) after reopen = %s, want %s", ip, got, want)
		}
	}
}

// TestRecoverFromWALOnly covers the pure-log crash window: samples that
// never reached a segment (the process died before any flush) come back
// from the write-ahead log alone.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	id := engID(9, 1, 2, 3, 4)
	s := mustOpenDir(t, dir, Options{FlushThreshold: 1 << 20})
	if _, err := s.BeginCampaign(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Add(mkObs("10.0.0."+itoa(i), id, 3, 100+int64(i), t0)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process "dies" here. The store's open fds are
	// irrelevant to what a fresh Open reads back.
	if segs := listExt(t, dir, ".seg"); len(segs) != 0 {
		t.Fatalf("premature segments: %v", segs)
	}

	r := mustOpenDir(t, dir, Options{})
	defer r.Close()
	got := allSamples(r)
	checkNoDuplicates(t, got)
	if len(got) != 10 {
		t.Fatalf("recovered %d samples, want 10", len(got))
	}
	if c := r.Snapshot().Campaigns(); c != 1 {
		t.Fatalf("campaigns = %d, want 1", c)
	}
	// The recovered store keeps working: the next campaign supersedes the
	// pair state exactly as if no crash happened.
	if _, err := r.BeginCampaign(); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(mkObs("10.0.0.1", id, 3, 200, t0.AddDate(0, 0, 1))); err != nil {
		t.Fatal(err)
	}
	if c := r.Snapshot().Campaigns(); c != 2 {
		t.Fatalf("campaigns after recovered BeginCampaign = %d, want 2", c)
	}
}

// TestCloseSealsMemtable is the satellite-1 regression: Close must flush
// buffered samples, not just stop the compactor. Pre-fix, everything below
// the flush threshold evaporated on shutdown.
func TestCloseSealsMemtable(t *testing.T) {
	dir := t.TempDir()
	id := engID(9, 1, 2, 3, 4)
	s := mustOpenDir(t, dir, Options{FlushThreshold: 1 << 20})
	if _, err := s.BeginCampaign(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mkObs("192.0.2.7", id, 1, 10, t0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The store stays queryable after Close; mutations are refused.
	if _, ok := s.Snapshot().Latest(mkObs("192.0.2.7", id, 0, 0, t0).IP); !ok {
		t.Fatal("closed store lost its sample")
	}
	if err := s.Add(mkObs("192.0.2.8", id, 1, 10, t0)); err != ErrClosed {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
	if _, err := s.BeginCampaign(); err != ErrClosed {
		t.Fatalf("BeginCampaign after Close = %v, want ErrClosed", err)
	}

	r := mustOpenDir(t, dir, Options{})
	defer r.Close()
	if _, ok := r.Snapshot().Latest(mkObs("192.0.2.7", id, 0, 0, t0).IP); !ok {
		t.Fatal("buffered sample dropped across Close + reopen")
	}
	if n := r.Snapshot().Stats().Ingested; n != 1 {
		t.Fatalf("ingested after reopen = %d, want 1", n)
	}
}

// TestIngestSplitsAtFlushThreshold is the satellite-3 regression: a batch
// larger than the flush threshold must not overshoot the memtable — every
// flushed segment holds exactly FlushThreshold samples, the remainder stays
// in the memtable.
func TestIngestSplitsAtFlushThreshold(t *testing.T) {
	const threshold = 100
	const ips = 1050
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	id := engID(9, 1, 2, 3, 4)
	for i := 0; i < ips; i++ {
		o := mkObs("10.1."+itoa(i/250)+"."+itoa(i%250), id, 1, int64(i+1), t0)
		c.ByIP[o.IP] = o
	}
	s := mustOpen(t, Options{FlushThreshold: threshold, DisableCompaction: true})
	defer s.Close()
	if _, err := s.Ingest(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	var sizes []int
	for _, g := range s.segs {
		sizes = append(sizes, g.length())
	}
	memLen := s.mem.len()
	s.mu.Unlock()
	for _, n := range sizes {
		if n != threshold {
			t.Fatalf("segment sizes %v: every flushed segment must hold exactly %d samples", sizes, threshold)
		}
	}
	if want := ips / threshold; len(sizes) != want {
		t.Fatalf("got %d segments, want %d", len(sizes), want)
	}
	if want := ips % threshold; memLen != want {
		t.Fatalf("memtable holds %d samples, want %d", memLen, want)
	}
}

// TestDurableCompaction checks the durable segment swap: compaction must
// commit the merged file through the manifest, delete the superseded files,
// and the merged state must survive a reopen.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	id := engID(9, 1, 2, 3, 4)
	s := mustOpenDir(t, dir, Options{FlushThreshold: 4, DisableCompaction: true})
	for n := 1; n <= 3; n++ {
		if _, err := s.BeginCampaign(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := s.Add(mkObs("10.2.0."+itoa(i), id, 1, int64(100*n+i), t0.AddDate(0, 0, n))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	segsBefore := len(listExt(t, dir, ".seg"))
	if segsBefore < 2 {
		t.Fatalf("want ≥ 2 segment files before compaction, got %d", segsBefore)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := len(listExt(t, dir, ".seg")); n != 1 {
		t.Fatalf("segment files after compaction = %d, want 1", n)
	}
	before := mustJSON(t, s.Snapshot().Stats())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpenDir(t, dir, Options{DisableCompaction: true})
	defer r.Close()
	got := allSamples(r)
	checkNoDuplicates(t, got)
	// 3 campaigns × 4 IPs ingested, compaction kept one sample per
	// (IP, campaign): all 12 survive (distinct campaigns are history, not
	// supersedes).
	if len(got) != 12 {
		t.Fatalf("recovered %d samples, want 12", len(got))
	}
	_ = before // stats include flush/compaction counters that reset on reopen
}

// itoa is a minimal strconv.Itoa for test IP literals.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
