package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/lru"
	"snmpv3fp/internal/obs"
)

// Replica is the read-only receiving end of segment-shipping replication: a
// store directory populated over the wire instead of by ingest. It holds
// the same on-disk layout as a primary (segment files plus MANIFEST, minus
// any WAL), opens its segments through the same lazy mmap/bloom machinery,
// and serves the same Snapshot interface — so an HTTP tier in front of a
// Replica is byte-identical to one in front of the primary once the replica
// has applied the primary's latest commit and the primary has flushed its
// memtable.
//
// Commits apply atomically: the shipped manifest bytes are renamed into
// place first, then the in-memory segment list and derived state swap in
// one critical section, and only after that are superseded local segment
// files deleted — a segment shipped and then superseded by a racing
// compaction can therefore never resurrect into the serving state.
type Replica struct {
	opt     ReplicaOptions
	d       *disk
	segStat *segStats

	mu       sync.Mutex
	segs     []*segment
	byName   map[string]*segment
	held     map[string]bool // complete segment files on disk
	campaign uint64
	der      derived
	stats    Stats
	statsOK  bool
	applied  uint64 // applied manifest seq horizon
	view     *View
	viewOK   bool

	primarySeq atomic.Uint64
	appliedSeq atomic.Uint64
	commits    atomic.Uint64
	connected  atomic.Int64

	closed atomic.Bool
}

// ReplicaOptions tunes a replica.
type ReplicaOptions struct {
	// Dir is the replica's store directory; created if absent.
	Dir string
	// Variant is the alias-resolution rule used to rebuild derived state
	// from shipped segments (default alias.Default). Must match the
	// primary's for byte-identical query results.
	Variant alias.Variant
	// Obs, when non-nil, receives the replica's metrics.
	Obs *obs.Registry
	// BlockCacheBytes bounds the decoded-block cache (0 = 16 MiB default,
	// negative disables), exactly as Options.BlockCacheBytes.
	BlockCacheBytes int64
	// VerifyOnOpen checksums and decodes every sample of every shipped
	// segment at open and apply time.
	VerifyOnOpen bool
}

// replicaStatsName is the file the last shipped primary Stats persist in,
// so a restarted replica serves consistent stats before its first commit.
const replicaStatsName = "REPLICA"

// ErrReplicaGap reports a commit listing a segment the replica does not
// hold — the stream skipped ahead (e.g. a different primary). The replica
// should reconnect and resynchronize from a fresh Hello.
var ErrReplicaGap = errors.New("store: replica: commit references a segment not shipped")

// OpenReplica opens (or creates) a replica directory and loads whatever a
// previous session applied: manifest, segments, last shipped stats.
// Leftover partial downloads (tmp files) and segments no applied manifest
// lists are swept, exactly like primary crash recovery.
func OpenReplica(opt ReplicaOptions) (*Replica, error) {
	zero := alias.Variant{}
	if opt.Variant == zero {
		opt.Variant = alias.Default
	}
	r := &Replica{
		opt:    opt,
		d:      &disk{dir: opt.Dir},
		byName: map[string]*segment{},
		held:   map[string]bool{},
	}
	r.segStat = &segStats{}
	cacheBytes := opt.BlockCacheBytes
	if cacheBytes == 0 {
		cacheBytes = defaultBlockCacheBytes
	}
	if cacheBytes > 0 {
		r.segStat.blocks = lru.New[[]Sample](cacheBytes)
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	man, _, err := readManifest(opt.Dir)
	if err != nil {
		return nil, err
	}
	_, orphans, _, err := scanDir(opt.Dir, &man)
	if err != nil {
		return nil, err
	}
	for _, name := range orphans {
		if err := os.Remove(filepath.Join(opt.Dir, name)); err != nil {
			return nil, err
		}
	}
	for _, name := range man.Segments {
		g, err := openSegment(opt.Dir, name, r.segStat, opt.VerifyOnOpen)
		if err != nil {
			return nil, err
		}
		r.segs = append(r.segs, g)
		r.byName[name] = g
		r.held[name] = true
	}
	der, err := rebuildDerived(r.segs, nil, man.Campaigns, opt.Variant)
	if err != nil {
		return nil, err
	}
	r.der = der
	r.campaign = der.campaign
	r.applied = man.Seq
	r.appliedSeq.Store(man.Seq)
	r.primarySeq.Store(man.Seq)
	if data, err := os.ReadFile(filepath.Join(opt.Dir, replicaStatsName)); err == nil {
		var st Stats
		if json.Unmarshal(data, &st) == nil {
			r.stats, r.statsOK = st, true
		}
	}
	r.registerMetrics(opt.Obs)
	return r, nil
}

func (r *Replica) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("snmpfp_replica_applied_seq", func() float64 { return float64(r.appliedSeq.Load()) })
	reg.GaugeFunc("snmpfp_replica_primary_seq", func() float64 { return float64(r.primarySeq.Load()) })
	reg.GaugeFunc("snmpfp_replica_lag_seq", func() float64 {
		return float64(r.primarySeq.Load()) - float64(r.appliedSeq.Load())
	})
	reg.GaugeFunc("snmpfp_replica_connected", func() float64 { return float64(r.connected.Load()) })
	reg.CounterFunc("snmpfp_replica_commits_total", r.commits.Load)
	reg.Help("snmpfp_replica_applied_seq", "manifest seq horizon applied locally")
	reg.Help("snmpfp_replica_primary_seq", "latest manifest seq horizon received from the primary")
	reg.Help("snmpfp_replica_lag_seq", "replication lag: primary seq horizon minus applied")
	reg.Help("snmpfp_replica_connected", "1 while a replication stream to the primary is live")
	reg.Help("snmpfp_replica_commits_total", "manifest commits applied")
	if r.segStat != nil {
		reg.CounterFunc("snmpfp_store_seg_query_bytes_total", r.segStat.queryBytes.Load)
		if c := r.segStat.blocks; c != nil {
			reg.CounterFunc("snmpfp_store_block_cache_hits_total", c.Hits)
			reg.CounterFunc("snmpfp_store_block_cache_misses_total", c.Misses)
			reg.CounterFunc("snmpfp_store_block_cache_evictions_total", c.Evictions)
			reg.GaugeFunc("snmpfp_store_block_cache_bytes", func() float64 { return float64(c.Bytes()) })
		}
	}
}

// Close marks the replica closed; in-flight Sync calls return after their
// current frame.
func (r *Replica) Close() error {
	r.closed.Store(true)
	return nil
}

// Snapshot returns an immutable view of the replica, the same View type a
// primary's Snapshot returns — a serve tier accepts either.
func (r *Replica) Snapshot() *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viewOK {
		return r.view
	}
	segs := append([]*segment(nil), r.segs...)
	sets, vendors, byEngine := r.der.aidx.materialize()
	stats := r.stats
	if !r.statsOK {
		// No commit shipped yet: serve locally derived counts so the
		// endpoints are coherent, even though live-primary counters
		// (flushes, memtable) are unknowable here.
		segSamples := 0
		for _, g := range segs {
			segSamples += g.length()
		}
		stats = Stats{
			Campaigns:         r.campaign,
			Ingested:          r.der.ingested,
			Segments:          len(segs),
			SegmentSamples:    segSamples,
			TrackedIPs:        len(r.der.known),
			CurrentResponsive: len(r.der.cur),
			Devices:           len(r.der.engines),
			AliasSets:         r.der.aidx.setCount(),
			Vendors:           r.der.aidx.vendorCount(),
		}
	}
	v := &View{
		segs:      segs,
		campaigns: r.campaign,
		sets:      sets,
		vendors:   vendors,
		byEngine:  byEngine,
		stats:     stats,
	}
	r.view, r.viewOK = v, true
	return v
}

// SyncLoop dials the primary and replicates until ctx is cancelled,
// reconnecting with a backoff after any error — the long-running mode
// behind snmpfpd -replica-of.
func (r *Replica) SyncLoop(ctx context.Context, addr string) error {
	backoff := 250 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			start := time.Now()
			err = r.Sync(ctx, conn)
			if time.Since(start) > 10*time.Second {
				backoff = 250 * time.Millisecond
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // transient: reconnect
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 4*time.Second {
			backoff *= 2
		}
	}
}

// Sync replicates over one established connection until the stream ends,
// ctx is cancelled or the replica is closed. Taking the conn rather than an
// address makes fault injection trivial: tests hand in one half of a pipe
// or a conn they sever mid-ship.
func (r *Replica) Sync(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	r.connected.Add(1)
	defer r.connected.Add(-1)

	r.mu.Lock()
	hello := replHello{Version: replProtoVersion, AppliedSeq: r.applied}
	for name := range r.held {
		hello.Held = append(hello.Held, name)
	}
	r.mu.Unlock()
	body := replFramePool.Get()[:0]
	body = appendReplHello(body, hello)
	err := writeReplFrame(conn, replFrameHello, body)
	replFramePool.Put(body)
	if err != nil {
		return err
	}

	// incoming is the segment file currently being streamed, nil between
	// files.
	var incoming *replSeg
	var incomingBuf []byte
	for {
		if r.closed.Load() {
			return nil
		}
		typ, body, err := readReplFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch typ {
		case replFrameSeg:
			seg, err := parseReplSeg(body)
			if err != nil {
				return err
			}
			if seg.Size > 1<<32 {
				return fmt.Errorf("store: replica: segment %s implausibly large (%d bytes)", seg.Name, seg.Size)
			}
			incoming = &seg
			incomingBuf = make([]byte, 0, seg.Size)
		case replFrameChunk:
			if incoming == nil {
				return errReplFrame
			}
			if uint64(len(incomingBuf)+len(body)) > incoming.Size {
				return fmt.Errorf("store: replica: segment %s overflows its announced size", incoming.Name)
			}
			incomingBuf = append(incomingBuf, body...)
		case replFrameSegDone:
			if incoming == nil {
				return errReplFrame
			}
			if uint64(len(incomingBuf)) != incoming.Size {
				return fmt.Errorf("store: replica: segment %s truncated (%d of %d bytes)", incoming.Name, len(incomingBuf), incoming.Size)
			}
			if crc32.Checksum(incomingBuf, castagnoli) != incoming.CRC {
				return fmt.Errorf("store: replica: segment %s checksum mismatch", incoming.Name)
			}
			if err := writeFileAtomic(r.opt.Dir, incoming.Name, incomingBuf); err != nil {
				return err
			}
			r.mu.Lock()
			r.held[incoming.Name] = true
			r.mu.Unlock()
			incoming, incomingBuf = nil, nil
		case replFrameCommit:
			c, err := parseReplCommit(body)
			if err != nil {
				return err
			}
			if err := r.applyCommit(c); err != nil {
				return err
			}
			ack := replFramePool.Get()[:0]
			ack = replAppendU64(ack, r.appliedSeq.Load())
			err = writeReplFrame(conn, replFrameAck, ack)
			replFramePool.Put(ack)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("store: replica: unexpected frame %d", typ)
		}
	}
}

// applyCommit makes a shipped (manifest, stats) pair the serving state:
// manifest to disk first, then the atomic in-memory swap, then cleanup of
// segments the new manifest no longer lists.
func (r *Replica) applyCommit(c replCommit) error {
	man, err := parseManifest(c.Manifest)
	if err != nil {
		return err
	}
	r.primarySeq.Store(man.Seq)
	var stats Stats
	if err := json.Unmarshal(c.Stats, &stats); err != nil {
		return fmt.Errorf("store: replica: stats decode: %w", err)
	}

	// Every listed segment must already be on disk — the protocol ships
	// segments before their commit, and Hello told the primary what we
	// hold. Anything missing means the stream and our state diverged.
	r.mu.Lock()
	for _, name := range man.Segments {
		if !r.held[name] {
			r.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrReplicaGap, name)
		}
	}
	r.mu.Unlock()

	// Open newly shipped segments outside the lock (index validation and
	// mmap), reusing already open ones so their cache ids stay warm.
	opened := map[string]*segment{}
	r.mu.Lock()
	for name, g := range r.byName {
		opened[name] = g
	}
	r.mu.Unlock()
	segs := make([]*segment, 0, len(man.Segments))
	for _, name := range man.Segments {
		g := opened[name]
		if g == nil {
			var err error
			g, err = openSegment(r.opt.Dir, name, r.segStat, r.opt.VerifyOnOpen)
			if err != nil {
				return err
			}
			opened[name] = g
		}
		segs = append(segs, g)
	}
	der, err := rebuildDerived(segs, nil, man.Campaigns, r.opt.Variant)
	if err != nil {
		return err
	}

	// Commit point: manifest bytes land on disk exactly as shipped, then
	// the in-memory state swaps.
	if err := writeFileAtomic(r.opt.Dir, manifestName, c.Manifest); err != nil {
		return err
	}
	_ = writeFileAtomic(r.opt.Dir, replicaStatsName, c.Stats)

	live := make(map[string]bool, len(man.Segments))
	for _, name := range man.Segments {
		live[name] = true
	}
	var drop []string
	r.mu.Lock()
	r.segs = segs
	byName := make(map[string]*segment, len(segs))
	for i, name := range man.Segments {
		byName[name] = segs[i]
	}
	r.byName = byName
	r.der = der
	r.campaign = der.campaign
	r.stats, r.statsOK = stats, true
	r.applied = man.Seq
	for name := range r.held {
		if !live[name] {
			delete(r.held, name)
			drop = append(drop, name)
		}
	}
	r.view, r.viewOK = nil, false
	r.mu.Unlock()
	r.appliedSeq.Store(man.Seq)
	r.commits.Add(1)

	// Only after the swap is visible do superseded files go away: a crash
	// at any earlier point leaves them held or sweepable, never a serving
	// state referencing a deleted file.
	for _, name := range drop {
		_ = os.Remove(filepath.Join(r.opt.Dir, name))
	}
	return nil
}

// writeFileAtomic writes name in dir through a tmp file, fsync and rename,
// then fsyncs the directory.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// compile-time interface hygiene: both ends serve the same snapshots.
var _ interface{ Snapshot() *View } = (*Store)(nil)
var _ interface{ Snapshot() *View } = (*Replica)(nil)
