package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"snmpv3fp/internal/lru"
)

// buildTestSegment makes an eager segment with a spread of v4 IPs, two
// engine IDs and a non-SNMP evidence sample.
func buildTestSegment(n int) *segment {
	idA := engID(9, 1, 2, 3, 4)
	idB := engID(2636, 9, 9, 9, 9)
	var samples []Sample
	for i := 0; i < n; i++ {
		id := idA
		if i%3 == 0 {
			id = idB
		}
		o := mkObs(fmt.Sprintf("10.5.%d.%d", i/200, i%200), id, 2, int64(100+i), t0)
		samples = append(samples, sampleFrom(o, uint64(1+i%2), uint64(i+1)))
	}
	// One non-SNMP evidence sample: excluded from engine index and flags.
	o := mkObs("10.5.250.1", []byte("key-bytes"), 0, 0, t0)
	ev := sampleFrom(o, 2, uint64(n+1))
	ev.Protocol = "icmp-ts"
	samples = append(samples, ev)
	return buildSegment(samples)
}

// writeAndOpen round-trips a segment through the v3 file format.
func writeAndOpen(t *testing.T, g *segment, withBloom, verify bool, st *segStats) *segment {
	t.Helper()
	dir := t.TempDir()
	d := &disk{dir: dir}
	if err := d.writeSegmentFile("000001.seg", g, withBloom); err != nil {
		t.Fatal(err)
	}
	lz, err := openSegment(dir, "000001.seg", st, verify)
	if err != nil {
		t.Fatal(err)
	}
	return lz
}

// TestSegmentV3RoundTrip: every accessor of the lazy segment answers
// exactly like the eager one it was written from.
func TestSegmentV3RoundTrip(t *testing.T) {
	for _, verify := range []bool{false, true} {
		g := buildTestSegment(300)
		lz := writeAndOpen(t, g, true, verify, nil)
		if lz.lz == nil {
			t.Fatal("v3 open produced an eager segment")
		}
		if lz.length() != g.length() {
			t.Fatalf("length %d, want %d", lz.length(), g.length())
		}
		var eager, lazy []Sample
		g.mustScan(func(sm *Sample) { eager = append(eager, *sm) })
		lz.mustScan(func(sm *Sample) { lazy = append(lazy, *sm) })
		if mustJSON(t, lazy) != mustJSON(t, eager) {
			t.Fatal("scan order or contents diverge")
		}
		for ip := range g.byIP {
			if mustJSON(t, lz.ipSamples(ip)) != mustJSON(t, g.ipSamples(ip)) {
				t.Fatalf("ipSamples(%s) diverges", ip)
			}
		}
		for id := range g.engines {
			if mustJSON(t, lz.engineIPs([]byte(id))) != mustJSON(t, g.engineIPs([]byte(id))) {
				t.Fatalf("engineIPs(%x) diverges", id)
			}
		}
		// The evidence sample's protocol key must not answer engine lookups.
		if got := lz.engineIPs([]byte("key-bytes")); got != nil {
			t.Fatalf("evidence alias key leaked into engine index: %v", got)
		}
	}
}

// TestSegmentBloomScreensNegatives is the cold-negative-lookup contract:
// with the filter, a miss touches zero segment bytes; without it, every
// miss pays an index probe.
func TestSegmentBloomScreensNegatives(t *testing.T) {
	st := &segStats{}
	g := buildTestSegment(300)
	lz := writeAndOpen(t, g, true, false, st)

	misses := 0
	for i := 0; i < 1000; i++ {
		addr := mkObs(fmt.Sprintf("172.16.%d.%d", i/250, i%250), nil, 0, 0, t0).IP
		if lz.ipSamples(addr) != nil {
			t.Fatalf("phantom samples for %s", addr)
		}
		misses++
	}
	bloomBytes := st.queryBytes.Load()

	st2 := &segStats{}
	noBloom := writeAndOpen(t, g, false, false, st2)
	for i := 0; i < 1000; i++ {
		addr := mkObs(fmt.Sprintf("172.16.%d.%d", i/250, i%250), nil, 0, 0, t0).IP
		if noBloom.ipSamples(addr) != nil {
			t.Fatalf("phantom samples for %s", addr)
		}
	}
	noBloomBytes := st2.queryBytes.Load()

	if noBloomBytes == 0 {
		t.Fatal("no-bloom misses touched zero bytes; accounting broken")
	}
	// The acceptance bar is ≥5x; with a ~0.1% FPR the filtered path
	// typically touches nothing at all.
	if bloomBytes*5 > noBloomBytes {
		t.Fatalf("bloom path read %d bytes over %d misses vs %d without; want ≥5x reduction",
			bloomBytes, misses, noBloomBytes)
	}
}

// TestSegmentBlockCache: a repeated positive lookup is served from the
// cache — no extra segment bytes read — and the result is identical.
func TestSegmentBlockCache(t *testing.T) {
	st := &segStats{blocks: lru.New[[]Sample](1 << 20)}
	g := buildTestSegment(300)
	lz := writeAndOpen(t, g, true, false, st)
	var addr = mkObs("10.5.0.1", nil, 0, 0, t0).IP
	first := lz.ipSamples(addr)
	if len(first) == 0 {
		t.Fatal("expected samples for a present IP")
	}
	cold := st.queryBytes.Load()
	again := lz.ipSamples(addr)
	if mustJSON(t, again) != mustJSON(t, first) {
		t.Fatal("cached result diverges")
	}
	warm := st.queryBytes.Load()
	if warm != cold {
		t.Fatalf("cache hit still read %d segment bytes", warm-cold)
	}
	if st.blocks.Hits() == 0 {
		t.Fatal("no cache hit recorded")
	}
}

// TestSegmentV3CorruptionDetection: flipped bytes in the index or bloom
// blocks fail open immediately; a flipped sample byte passes a lazy open
// but fails the verify pass.
func TestSegmentV3CorruptionDetection(t *testing.T) {
	dir := t.TempDir()
	d := &disk{dir: dir}
	g := buildTestSegment(100)
	if err := d.writeSegmentFile("000001.seg", g, true); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "000001.seg")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped byte mid-sample-block: lazy open fine, verify catches it.
	data := append([]byte(nil), pristine...)
	data[len(data)/8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSegment(dir, "000001.seg", nil, false); err != nil {
		t.Fatalf("lazy open should defer sample checksums, got %v", err)
	}
	if _, err := openSegment(dir, "000001.seg", nil, true); err == nil {
		t.Fatal("verify open missed sample-block corruption")
	}

	// A flipped byte near the tail (inside index/bloom/footer): caught by
	// every open.
	data = append([]byte(nil), pristine...)
	data[len(data)-segFooterSize-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSegment(dir, "000001.seg", nil, false); err == nil {
		t.Fatal("lazy open missed tail-block corruption")
	}
}
