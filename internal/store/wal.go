package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The write-ahead log makes every acknowledged mutation durable before the
// caller sees success. Each memtable generation owns its own WAL file
// (rotation at freeze time), so truncating the log after a flush is a file
// delete, never an in-place rewrite racing concurrent appends.
//
// Record framing, little-endian:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// payload := recordType byte | body. Two record types exist: a campaign
// boundary (uvarint campaign number) and a sample (see appendSampleEnc).
// Replay accepts the longest valid prefix: a torn or checksum-failing
// record ends the log exactly there, and recovery truncates the file at
// that offset so the garbage tail can never shadow later appends.

const (
	walRecBegin  = 1 // BeginCampaign boundary
	walRecSample = 2 // one ingested sample
)

// walMaxRecord bounds a record payload; larger length prefixes are treated
// as corruption (a torn length field can otherwise claim gigabytes).
const walMaxRecord = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendUint32 appends v little-endian.
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// appendSampleEnc appends the binary encoding of one sample: IP
// (length-prefixed 4 or 16 bytes), campaign, seq, engine ID, boots, engine
// time, receive instant (unix seconds + nanos), packet count and the
// inconsistency flag. The same encoding is the segment file's sample block
// entry.
func appendSampleEnc(b []byte, s *Sample) []byte {
	if s.IP.Is4() {
		a := s.IP.As4()
		b = append(b, 4)
		b = append(b, a[:]...)
	} else {
		a := s.IP.As16()
		b = append(b, 16)
		b = append(b, a[:]...)
	}
	b = binary.AppendUvarint(b, s.Campaign)
	b = binary.AppendUvarint(b, s.Seq)
	b = binary.AppendUvarint(b, uint64(len(s.EngineID)))
	b = append(b, s.EngineID...)
	b = binary.AppendVarint(b, s.Boots)
	b = binary.AppendVarint(b, s.EngineTime)
	b = binary.AppendVarint(b, s.ReceivedAt.Unix())
	b = binary.AppendUvarint(b, uint64(s.ReceivedAt.Nanosecond()))
	b = binary.AppendUvarint(b, uint64(s.Packets))
	inc := byte(0)
	if s.Inconsistent {
		inc = 1
	}
	b = append(b, inc)
	// Protocol tag (schema v2; "" = SNMPv3). Always encoded: sample
	// entries are concatenated back to back in segment sample blocks, so
	// an optional trailing field would be ambiguous.
	b = binary.AppendUvarint(b, uint64(len(s.Protocol)))
	return append(b, s.Protocol...)
}

// decodeSampleEnc decodes one appendSampleEnc payload, returning the sample
// and the number of bytes consumed.
func decodeSampleEnc(b []byte) (Sample, int, error) {
	var s Sample
	fail := func(what string) (Sample, int, error) {
		return Sample{}, 0, fmt.Errorf("store: sample decode: truncated %s", what)
	}
	if len(b) < 1 {
		return fail("ip length")
	}
	ipLen, off := int(b[0]), 1
	if (ipLen != 4 && ipLen != 16) || len(b) < off+ipLen {
		return fail("ip")
	}
	if ipLen == 4 {
		s.IP = netip.AddrFrom4([4]byte(b[off : off+4]))
	} else {
		s.IP = netip.AddrFrom16([16]byte(b[off : off+16]))
	}
	off += ipLen
	uv := func(what string) (uint64, bool) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	sv := func(what string) (int64, bool) {
		v, n := binary.Varint(b[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	var ok bool
	if s.Campaign, ok = uv("campaign"); !ok {
		return fail("campaign")
	}
	if s.Seq, ok = uv("seq"); !ok {
		return fail("seq")
	}
	idLen, ok := uv("engine id length")
	if !ok || idLen > walMaxRecord || len(b) < off+int(idLen) {
		return fail("engine id")
	}
	if idLen > 0 {
		s.EngineID = append([]byte(nil), b[off:off+int(idLen)]...)
	}
	off += int(idLen)
	if s.Boots, ok = sv("boots"); !ok {
		return fail("boots")
	}
	if s.EngineTime, ok = sv("engine time"); !ok {
		return fail("engine time")
	}
	sec, ok := sv("receive seconds")
	if !ok {
		return fail("receive seconds")
	}
	nsec, ok := uv("receive nanos")
	if !ok {
		return fail("receive nanos")
	}
	s.ReceivedAt = time.Unix(sec, int64(nsec)).UTC()
	pk, ok := uv("packets")
	if !ok {
		return fail("packets")
	}
	s.Packets = int(pk)
	if len(b) < off+1 {
		return fail("flags")
	}
	s.Inconsistent = b[off] == 1
	off++
	protoLen, ok := uv("protocol length")
	if !ok || protoLen > walMaxRecord || len(b) < off+int(protoLen) {
		return fail("protocol")
	}
	if protoLen > 0 {
		s.Protocol = string(b[off : off+int(protoLen)])
	}
	off += int(protoLen)
	return s, off, nil
}

// appendWALRecord frames one payload (length + CRC) onto b.
func appendWALRecord(b, payload []byte) []byte {
	b = appendUint32(b, uint32(len(payload)))
	b = appendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// appendWALSample frames a sample record onto b. scratch growth is the
// caller's; the typical record is ~60 bytes.
func appendWALSample(b []byte, s *Sample) []byte {
	payload := make([]byte, 0, 80)
	payload = append(payload, walRecSample)
	payload = appendSampleEnc(payload, s)
	return appendWALRecord(b, payload)
}

// appendWALBegin frames a campaign-boundary record onto b.
func appendWALBegin(b []byte, campaign uint64) []byte {
	payload := make([]byte, 0, 12)
	payload = append(payload, walRecBegin)
	payload = binary.AppendUvarint(payload, campaign)
	return appendWALRecord(b, payload)
}

// walFile is one open WAL file. Appends are serialized by the store mutex
// (preserving seq order on disk); the file's own mutex protects the fd and
// sync bookkeeping against the committers that fsync outside the store
// lock and the flusher that retires the file.
type walFile struct {
	name string // base name within the store dir

	mu     sync.Mutex
	f      *os.File
	size   int64 // bytes appended
	synced int64 // bytes known durable
	closed bool  // set only after the samples are durable in a segment
}

// append writes p (one or more framed records) and returns the end offset
// the caller must sync through before acknowledging.
func (w *walFile) append(d *disk, p []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("store: append to retired wal %s", w.name)
	}
	if err := d.hook("wal.append"); err != nil {
		return 0, err
	}
	if err := d.hook("wal.append.torn"); err != nil {
		// Simulated death mid-write: half the batch reaches the disk,
		// producing a genuine torn tail for recovery to truncate.
		_, _ = w.f.Write(p[:len(p)/2])
		return 0, err
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	if err != nil {
		return 0, fmt.Errorf("store: wal append %s: %w", w.name, err)
	}
	d.walAppends.Add(1)
	d.walBytes.Add(uint64(n))
	return w.size, nil
}

// sync makes everything up to offset upTo durable. Syncing a retired file
// succeeds trivially: files are only retired after their samples became
// durable in a flushed segment.
func (w *walFile) sync(d *disk, upTo int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.synced >= upTo {
		return nil
	}
	if err := d.hook("wal.sync"); err != nil {
		return err
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync %s: %w", w.name, err)
	}
	d.observeFsync(time.Since(start))
	d.walFsyncs.Add(1)
	w.synced = w.size
	return nil
}

// retire closes the fd; the flusher calls it once the file's generation is
// durable in a segment, just before deleting the file.
func (w *walFile) retire() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		_ = w.f.Close()
	}
}

// walReplay is the result of reading the on-disk log back.
type walReplay struct {
	// samples is every sample record with seq beyond the manifest horizon,
	// in append order.
	samples []Sample
	// maxCampaign is the highest campaign-boundary record seen.
	maxCampaign uint64
	// maxSeq is the highest sample seq seen (stale records included).
	maxSeq uint64
	// truncated counts files truncated or removed at a torn or corrupt
	// tail.
	truncated int
	// liveFiles is the files that survive replay (the corrupt-tail file
	// truncated in place, anything past it removed); they back the
	// recovered memtable and are deleted when it flushes.
	liveFiles []string
}

// replayWAL reads the files (ascending generation order) and returns the
// longest valid prefix of the logical log. Samples with seq ≤ durableSeq
// are already in segments (the manifest horizon) and are skipped. The first
// torn or checksum-failing record ends the replay: the file is truncated at
// that offset and any later files are removed, so a future recovery sees
// exactly the state this one recovered.
func replayWAL(dir string, files []string, durableSeq uint64) (walReplay, error) {
	var rep walReplay
	for i, name := range files {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return rep, fmt.Errorf("store: read wal: %w", err)
		}
		off, corrupt := 0, false
		for off < len(data) {
			if len(data)-off < 8 {
				corrupt = true
				break
			}
			plen := int(binary.LittleEndian.Uint32(data[off:]))
			crc := binary.LittleEndian.Uint32(data[off+4:])
			if plen == 0 || plen > walMaxRecord || len(data)-off-8 < plen {
				corrupt = true
				break
			}
			payload := data[off+8 : off+8+plen]
			if crc32.Checksum(payload, castagnoli) != crc {
				corrupt = true
				break
			}
			switch payload[0] {
			case walRecBegin:
				c, n := binary.Uvarint(payload[1:])
				if n <= 0 {
					corrupt = true
				} else if c > rep.maxCampaign {
					rep.maxCampaign = c
				}
			case walRecSample:
				s, _, err := decodeSampleEnc(payload[1:])
				if err != nil {
					corrupt = true
					break
				}
				if s.Seq > rep.maxSeq {
					rep.maxSeq = s.Seq
				}
				if s.Seq > durableSeq {
					rep.samples = append(rep.samples, s)
				}
			default:
				corrupt = true
			}
			if corrupt {
				break
			}
			off += 8 + plen
		}
		if corrupt {
			rep.truncated++
			if err := truncateFile(path, int64(off)); err != nil {
				return rep, err
			}
			// Records past the corruption horizon are unreachable; remove
			// the later files so replay is idempotent.
			for _, later := range files[i+1:] {
				rep.truncated++
				_ = os.Remove(filepath.Join(dir, later))
			}
			rep.liveFiles = files[:i+1]
			return rep, nil
		}
	}
	rep.liveFiles = files
	return rep, nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: truncate wal tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("store: truncate wal tail: %w", err)
	}
	return f.Sync()
}
