package store

import (
	"net/netip"
	"sort"

	"snmpv3fp/internal/tracker"
)

// View is an immutable snapshot of the store: a fixed segment list (the
// memtable frozen in), the materialized alias sets and vendor tallies, and
// the stats at snapshot time. All methods are lock-free and safe for
// concurrent use; a view never changes after Snapshot returns it.
type View struct {
	segs      []*segment
	campaigns uint64
	sets      []AliasSet
	vendors   []VendorCount
	byEngine  map[string][]int
	stats     Stats
}

// Stats returns the snapshot-time counters.
func (v *View) Stats() Stats { return v.stats }

// Campaigns returns how many campaigns the snapshot covers.
func (v *View) Campaigns() uint64 { return v.campaigns }

// History returns every surviving SNMPv3 sample for the IP in campaign
// order, superseded samples (same campaign, lower sequence) removed. The
// slice is freshly allocated; callers may keep it. Multi-protocol evidence
// is excluded — the reboot/alias semantics downstream (Timeline, Latest,
// /v1/ip) are SNMPv3 observations; use HistoryProtocol for other modules.
func (v *View) History(addr netip.Addr) []Sample {
	return v.HistoryProtocol(addr, "")
}

// HistoryProtocol is History for one protocol's samples: "" or "snmpv3" for
// SNMPv3 discovery, a module name (e.g. "icmp-ts", "ntp") for evidence
// ingested by IngestEvidence.
func (v *View) HistoryProtocol(addr netip.Addr, protocol string) []Sample {
	if protocol == "snmpv3" {
		protocol = ""
	}
	var out []Sample
	for _, g := range v.segs {
		for _, sm := range g.ipSamples(addr) {
			if sm.Protocol == protocol {
				out = append(out, sm)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Campaign != out[j].Campaign {
			return out[i].Campaign < out[j].Campaign
		}
		return out[i].Seq < out[j].Seq
	})
	kept := out[:0]
	for i := range out {
		if len(kept) > 0 && kept[len(kept)-1].Campaign == out[i].Campaign {
			kept[len(kept)-1] = out[i] // higher Seq supersedes
			continue
		}
		kept = append(kept, out[i])
	}
	return kept
}

// FusionEvidence gathers the alias groups of one campaign, per protocol:
// protocol name ("snmpv3" for the legacy "" tag) → device-identity key →
// addresses, ready for internal/fusion. Keyless and inconsistent samples are
// excluded; among samples with equal (IP, protocol) the highest Seq wins.
// Address lists are sorted.
func (v *View) FusionEvidence(campaign uint64) map[string]map[string][]netip.Addr {
	type pk struct {
		proto string
		ip    netip.Addr
	}
	best := make(map[pk]Sample)
	for _, g := range v.segs {
		if !g.mayContainCampaign(campaign) {
			continue
		}
		g.mustScan(func(sm *Sample) {
			if sm.Campaign != campaign {
				return
			}
			k := pk{sm.Protocol, sm.IP}
			if cur, ok := best[k]; !ok || sm.Seq > cur.Seq {
				best[k] = *sm
			}
		})
	}
	out := make(map[string]map[string][]netip.Addr)
	for k, sm := range best {
		if sm.Inconsistent || len(sm.EngineID) == 0 {
			continue
		}
		proto := k.proto
		if proto == "" {
			proto = "snmpv3"
		}
		groups := out[proto]
		if groups == nil {
			groups = make(map[string][]netip.Addr)
			out[proto] = groups
		}
		key := string(sm.EngineID)
		groups[key] = append(groups[key], k.ip)
	}
	for _, groups := range out {
		for _, ips := range groups {
			sort.Slice(ips, func(i, j int) bool { return ips[i].Less(ips[j]) })
		}
	}
	return out
}

// Latest returns the IP's most recent sample.
func (v *View) Latest(addr netip.Addr) (Sample, bool) {
	h := v.History(addr)
	if len(h) == 0 {
		return Sample{}, false
	}
	return h[len(h)-1], true
}

// DeviceIPs returns every IP that ever reported the engine ID (raw bytes),
// in address order — the all-time per-engine-ID index, as opposed to the
// validated alias set of the latest pair.
func (v *View) DeviceIPs(engineID []byte) []netip.Addr {
	seen := map[netip.Addr]struct{}{}
	for _, g := range v.segs {
		for _, ip := range g.engineIPs(engineID) {
			seen[ip] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]netip.Addr, 0, len(seen))
	for ip := range seen {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AliasSets returns the alias sets of the latest campaign pair, in the
// batch pipeline's canonical order. The slice is shared; do not mutate.
func (v *View) AliasSets() []AliasSet { return v.sets }

// SetsForEngine returns the alias sets whose engine ID (hex) matches — one
// per distinct (boots, binned reboot) tuple behind the engine ID.
func (v *View) SetsForEngine(engineIDHex string) []AliasSet {
	idx := v.byEngine[engineIDHex]
	if len(idx) == 0 {
		return nil
	}
	out := make([]AliasSet, 0, len(idx))
	for _, i := range idx {
		out = append(out, v.sets[i])
	}
	return out
}

// Vendors returns the device-per-vendor tally of the latest campaign pair,
// ordered by decreasing device count then vendor name. Shared; do not
// mutate.
func (v *View) Vendors() []VendorCount { return v.vendors }

// Timeline reconstructs the IP's longitudinal record across every campaign
// in the snapshot, silent campaigns included — identical to what
// tracker.Build produces over the same campaign sequence. Returns nil for
// IPs never observed.
func (v *View) Timeline(addr netip.Addr) *tracker.Timeline {
	h := v.History(addr)
	if len(h) == 0 {
		return nil
	}
	tl := &tracker.Timeline{IP: addr}
	i := 0
	for c := uint64(1); c <= v.campaigns; c++ {
		if i < len(h) && h[i].Campaign == c {
			tl.Extend(h[i].Observation())
			i++
			continue
		}
		tl.ExtendSilent()
	}
	return tl
}
