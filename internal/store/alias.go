package store

import (
	"encoding/hex"
	"net/netip"
	"sort"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/filter"
)

// aliasIndex maintains the paper's Section 4.4 validation and Section 5
// alias resolution incrementally over the two most recent campaigns: each
// ingested observation updates only its own IP (plus, rarely, the other
// members of a newly promiscuous engine-ID body), so alias sets and vendor
// tallies are always current without ever re-running the batch pipeline.
// The resulting sets are byte-identical to
// alias.Resolve(filter.Run(prev, cur).Valid, variant) on the same pair.
//
// It is not safe for concurrent use; the Store serializes access.
type aliasIndex struct {
	variant alias.Variant
	// pair is the (previous, current) campaign sequence pair being
	// resolved; pair[0] == 0 means fewer than two campaigns exist yet.
	pair [2]uint64

	// cands holds every IP that merged cleanly across the pair and passed
	// the per-IP length step (the population the global promiscuity step
	// ranges over).
	cands map[netip.Addr]*candidate
	// bodies tracks, per engine-ID body, which enterprise numbers claim it
	// — step 4's promiscuity check, maintained as a multiset so removals
	// (superseding re-ingests) can un-flag a body.
	bodies map[string]*bodyState
	// sets are the live alias sets, keyed by the variant's grouping key.
	sets map[alias.Key]*deviceSet
	// vendors counts alias sets (devices) per vendor label.
	vendors map[string]int
}

type candidate struct {
	m       *filter.Merged
	body    string
	hasBody bool
	// valid reports the per-IP steps beyond length: 5–6 (identity) and
	// 7–10 (timeliness). Step 4 is tracked via the body state.
	valid bool
	key   alias.Key
}

type bodyState struct {
	enterprises map[uint32]int
	members     map[netip.Addr]*candidate
}

// promiscuous reports step 4: the same body claimed under two or more
// distinct enterprise numbers.
func (b *bodyState) promiscuous() bool { return len(b.enterprises) >= 2 }

type deviceSet struct {
	key    alias.Key
	vendor string
	ips    map[netip.Addr]*filter.Merged
}

func newAliasIndex(v alias.Variant) *aliasIndex {
	ai := &aliasIndex{variant: v}
	ai.reset([2]uint64{0, 0})
	return ai
}

// reset rebinds the index to a new campaign pair. The new current campaign
// has no observations yet, so the index restarts empty and refills as they
// arrive — no rebuild over history is ever needed.
func (ai *aliasIndex) reset(pair [2]uint64) {
	ai.pair = pair
	ai.cands = make(map[netip.Addr]*candidate)
	ai.bodies = make(map[string]*bodyState)
	ai.sets = make(map[alias.Key]*deviceSet)
	ai.vendors = make(map[string]int)
}

// update re-derives one IP's contribution from its pair of observations
// (either may be nil). Called for every ingested observation.
func (ai *aliasIndex) update(ip netip.Addr, o1, o2 *core.Observation) {
	ai.remove(ip)
	if ai.pair[0] == 0 {
		return // no previous campaign: nothing to resolve against
	}
	m, ok := filter.Merge(ip, o1, o2)
	if !ok || !m.LongEnough() {
		return
	}
	c := &candidate{m: m, valid: m.RoutableIPv4() && m.RegisteredMAC() && m.ValidTimeliness()}
	if c.valid {
		c.key = ai.variant.Key(m)
	}
	ai.cands[ip] = c
	if body, ok := m.PromiscuityBody(); ok {
		c.body, c.hasBody = body, true
		b := ai.bodies[body]
		if b == nil {
			b = &bodyState{
				enterprises: make(map[uint32]int),
				members:     make(map[netip.Addr]*candidate),
			}
			ai.bodies[body] = b
		}
		wasPromiscuous := b.promiscuous()
		b.enterprises[m.Parsed.Enterprise]++
		b.members[ip] = c
		if b.promiscuous() {
			if !wasPromiscuous {
				// The body just turned promiscuous: evict the members
				// already serving from sets.
				for mip, mc := range b.members {
					if mip != ip && mc.valid {
						ai.removeFromSet(mc)
					}
				}
			}
			return // promiscuous members never enter sets
		}
	}
	if c.valid {
		ai.addToSet(c)
	}
}

// remove erases the IP's current contribution, reversing promiscuity flips
// its departure causes.
func (ai *aliasIndex) remove(ip netip.Addr) {
	c := ai.cands[ip]
	if c == nil {
		return
	}
	delete(ai.cands, ip)
	inSet := c.valid && (!c.hasBody || !ai.bodies[c.body].promiscuous())
	if inSet {
		ai.removeFromSet(c)
	}
	if c.hasBody {
		b := ai.bodies[c.body]
		wasPromiscuous := b.promiscuous()
		ent := c.m.Parsed.Enterprise
		if b.enterprises[ent]--; b.enterprises[ent] == 0 {
			delete(b.enterprises, ent)
		}
		delete(b.members, ip)
		if len(b.members) == 0 {
			delete(ai.bodies, c.body)
			return
		}
		if wasPromiscuous && !b.promiscuous() {
			// The departure un-flagged the body: readmit survivors.
			for _, mc := range b.members {
				if mc.valid {
					ai.addToSet(mc)
				}
			}
		}
	}
}

func (ai *aliasIndex) addToSet(c *candidate) {
	set := ai.sets[c.key]
	if set == nil {
		set = &deviceSet{
			key:    c.key,
			vendor: core.FingerprintEngineID(c.m.EngineID).VendorLabel(),
			ips:    make(map[netip.Addr]*filter.Merged),
		}
		ai.sets[c.key] = set
		ai.vendors[set.vendor]++
	}
	set.ips[c.m.IP] = c.m
}

func (ai *aliasIndex) removeFromSet(c *candidate) {
	set := ai.sets[c.key]
	if set == nil {
		return
	}
	delete(set.ips, c.m.IP)
	if len(set.ips) == 0 {
		delete(ai.sets, c.key)
		if ai.vendors[set.vendor]--; ai.vendors[set.vendor] == 0 {
			delete(ai.vendors, set.vendor)
		}
	}
}

// AliasSet is one materialized alias set as served to readers.
type AliasSet struct {
	EngineID string       `json:"engine_id"` // lowercase hex
	Vendor   string       `json:"vendor"`
	IPs      []netip.Addr `json:"ips"`
}

// Size returns the member count.
func (s AliasSet) Size() int { return len(s.IPs) }

// VendorCount is one row of the vendor tally: how many inferred devices
// (alias sets) fingerprint to the vendor.
type VendorCount struct {
	Vendor  string `json:"vendor"`
	Devices int    `json:"devices"`
}

// setCount and vendorCount are the live tallies materialize would render,
// without building the slices — Stats reads them on every snapshot.
func (ai *aliasIndex) setCount() int    { return len(ai.sets) }
func (ai *aliasIndex) vendorCount() int { return len(ai.vendors) }

// materialize renders the live sets and tallies in the batch pipeline's
// canonical order: sets by decreasing size then first member IP, members by
// IP, vendors by decreasing device count then name — matching
// alias.Resolve and the snmpalias report exactly.
func (ai *aliasIndex) materialize() (sets []AliasSet, vendors []VendorCount, byEngine map[string][]int) {
	sets = make([]AliasSet, 0, len(ai.sets))
	for _, ds := range ai.sets {
		s := AliasSet{
			EngineID: hex.EncodeToString([]byte(ds.key.EngineID)),
			Vendor:   ds.vendor,
			IPs:      make([]netip.Addr, 0, len(ds.ips)),
		}
		for ip := range ds.ips {
			s.IPs = append(s.IPs, ip)
		}
		sort.Slice(s.IPs, func(i, j int) bool { return s.IPs[i].Less(s.IPs[j]) })
		sets = append(sets, s)
	}
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i].IPs) != len(sets[j].IPs) {
			return len(sets[i].IPs) > len(sets[j].IPs)
		}
		return sets[i].IPs[0].Less(sets[j].IPs[0])
	})
	byEngine = make(map[string][]int)
	for i := range sets {
		byEngine[sets[i].EngineID] = append(byEngine[sets[i].EngineID], i)
	}
	vendors = make([]VendorCount, 0, len(ai.vendors))
	for v, n := range ai.vendors {
		vendors = append(vendors, VendorCount{Vendor: v, Devices: n})
	}
	sort.Slice(vendors, func(i, j int) bool {
		if vendors[i].Devices != vendors[j].Devices {
			return vendors[i].Devices > vendors[j].Devices
		}
		return vendors[i].Vendor < vendors[j].Vendor
	})
	return sets, vendors, byEngine
}
