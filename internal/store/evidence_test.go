package store

import (
	"context"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

func mkEvidence(ip, key string, at time.Time) EvidenceSample {
	return EvidenceSample{IP: netip.MustParseAddr(ip), Key: key, ReceivedAt: at, Packets: 1}
}

func TestSampleEncProtocolRoundtrip(t *testing.T) {
	for _, proto := range []string{"", "icmp-ts", "ntp"} {
		in := Sample{
			IP: netip.MustParseAddr("192.0.2.9"), Campaign: 3, Seq: 17,
			Protocol: proto, EngineID: []byte("ts:be:42"), Boots: 2, EngineTime: 99,
			ReceivedAt: t0, Packets: 2, Inconsistent: proto == "ntp",
		}
		b := appendSampleEnc(nil, &in)
		out, n, err := decodeSampleEnc(b)
		if err != nil {
			t.Fatalf("%q: decode: %v", proto, err)
		}
		if n != len(b) {
			t.Errorf("%q: decoded %d of %d bytes", proto, n, len(b))
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%q: roundtrip mismatch:\n in %+v\nout %+v", proto, in, out)
		}
	}
}

// TestIngestEvidenceIsolation pins the schema-v2 contract: evidence samples
// persist and query per protocol, but never leak into the SNMPv3 derived
// state — the default history, the engine index, the alias pipeline.
func TestIngestEvidenceIsolation(t *testing.T) {
	s := mustOpen(t, Options{DisableCompaction: true})
	defer s.Close()
	ctx := context.Background()

	if err := s.IngestEvidence(ctx, "", []EvidenceSample{mkEvidence("192.0.2.1", "x", t0)}); err == nil {
		t.Fatal("empty protocol tag accepted")
	}
	if err := s.IngestEvidence(ctx, "icmp-ts", []EvidenceSample{mkEvidence("192.0.2.1", "x", t0)}); err != ErrNoCampaign {
		t.Fatalf("before BeginCampaign: got %v, want ErrNoCampaign", err)
	}

	id := engID(9, 1, 2, 3, 4)
	if _, err := s.Ingest(ctx, mkCampaign(mkObs("192.0.2.1", id, 3, 100, t0))); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestEvidence(ctx, "icmp-ts", []EvidenceSample{
		mkEvidence("192.0.2.1", "ts:be:7", t0),
		mkEvidence("192.0.2.2", "ts:be:7", t0),
		{IP: netip.MustParseAddr("192.0.2.3"), ReceivedAt: t0, Packets: 1}, // keyless
	}); err != nil {
		t.Fatal(err)
	}
	// Re-ingest supersedes per (IP, campaign, protocol).
	if err := s.IngestEvidence(ctx, "icmp-ts", []EvidenceSample{
		mkEvidence("192.0.2.2", "ts:be:8", t0.Add(time.Minute)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestEvidence(ctx, "ntp", []EvidenceSample{
		mkEvidence("192.0.2.1", "ntp:0xabc", t0),
	}); err != nil {
		t.Fatal(err)
	}

	v := s.Snapshot()
	// Default history stays SNMPv3-only.
	if h := v.History(netip.MustParseAddr("192.0.2.2")); h != nil {
		t.Errorf("evidence-only IP has SNMPv3 history: %+v", h)
	}
	if h := v.History(netip.MustParseAddr("192.0.2.1")); len(h) != 1 || h[0].Protocol != "" {
		t.Errorf("SNMPv3 history polluted: %+v", h)
	}
	// HistoryProtocol filters and supersedes per protocol.
	h := v.HistoryProtocol(netip.MustParseAddr("192.0.2.2"), "icmp-ts")
	if len(h) != 1 || string(h[0].EngineID) != "ts:be:8" {
		t.Errorf("icmp-ts history = %+v, want one superseding ts:be:8 sample", h)
	}
	if h := v.HistoryProtocol(netip.MustParseAddr("192.0.2.1"), "snmpv3"); len(h) != 1 {
		t.Errorf(`HistoryProtocol("snmpv3") = %+v, want the legacy sample`, h)
	}
	// Evidence keys stay out of the engine index.
	if ips := v.DeviceIPs([]byte("ts:be:7")); ips != nil {
		t.Errorf("evidence key in engine index: %v", ips)
	}
	// FusionEvidence groups per protocol, keyless samples excluded.
	fe := v.FusionEvidence(1)
	if got := len(fe["icmp-ts"]["ts:be:7"]); got != 1 {
		t.Errorf("ts:be:7 group has %d IPs, want 1 (supersede)", got)
	}
	if got := len(fe["icmp-ts"]["ts:be:8"]); got != 1 {
		t.Errorf("ts:be:8 group has %d IPs, want 1", got)
	}
	if _, ok := fe["snmpv3"]; !ok {
		t.Error("snmpv3 groups missing from FusionEvidence")
	}
	if _, ok := fe["ntp"]; !ok {
		t.Error("ntp groups missing from FusionEvidence")
	}
	total := 0
	for _, g := range fe["icmp-ts"] {
		total += len(g)
	}
	if total != 2 {
		t.Errorf("icmp-ts grouped %d IPs, want 2 (keyless excluded)", total)
	}
}

// TestEvidenceDurable reopens a durable store and checks evidence samples
// survive recovery without touching the rebuilt SNMPv3 derived state.
func TestEvidenceDurable(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := mustOpen(t, Options{Dir: dir, FlushThreshold: 2, DisableCompaction: true})
	id := engID(9, 1, 2, 3, 4)
	if _, err := s.Ingest(ctx, mkCampaign(mkObs("192.0.2.1", id, 3, 100, t0))); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestEvidence(ctx, "ntp", []EvidenceSample{
		mkEvidence("192.0.2.1", "ntp:0xabc", t0),
		mkEvidence("192.0.2.4", "ntp:0xabc", t0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, Options{Dir: dir, DisableCompaction: true})
	defer r.Close()
	v := r.Snapshot()
	h := v.HistoryProtocol(netip.MustParseAddr("192.0.2.4"), "ntp")
	if len(h) != 1 || string(h[0].EngineID) != "ntp:0xabc" {
		t.Fatalf("recovered ntp history = %+v", h)
	}
	if h := v.History(netip.MustParseAddr("192.0.2.4")); h != nil {
		t.Errorf("evidence leaked into recovered SNMPv3 history: %+v", h)
	}
	if ips := v.DeviceIPs([]byte("ntp:0xabc")); ips != nil {
		t.Errorf("evidence key in recovered engine index: %v", ips)
	}
	if got := len(v.FusionEvidence(1)["ntp"]["ntp:0xabc"]); got != 2 {
		t.Errorf("recovered ntp group has %d IPs, want 2", got)
	}
}
