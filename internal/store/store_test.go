package store

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/tracker"
)

var t0 = time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC)

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// engID builds a conformant octets-format engine ID under the enterprise.
func engID(enterprise uint32, body ...byte) []byte {
	id := []byte{byte(0x80 | enterprise>>24), byte(enterprise >> 16), byte(enterprise >> 8), byte(enterprise), 5}
	return append(id, body...)
}

func mkObs(ip string, id []byte, boots, etime int64, at time.Time) *core.Observation {
	return &core.Observation{
		IP:          netip.MustParseAddr(ip),
		EngineID:    id,
		EngineBoots: boots,
		EngineTime:  etime,
		ReceivedAt:  at,
		Packets:     1,
	}
}

func mkCampaign(obs ...*core.Observation) *core.Campaign {
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	for _, o := range obs {
		c.ByIP[o.IP] = o
		c.TotalPackets += o.Packets
	}
	return c
}

// batchSets runs the existing batch pipeline and renders its output in the
// store's materialized form.
func batchSets(c1, c2 *core.Campaign) ([]AliasSet, []VendorCount) {
	rep := filter.Run(c1, c2)
	sets := alias.Resolve(rep.Valid, alias.Default)
	out := make([]AliasSet, 0, len(sets))
	tally := map[string]int{}
	for _, s := range sets {
		fp := core.FingerprintEngineID(s.Members[0].EngineID)
		as := AliasSet{
			EngineID: fmt.Sprintf("%x", s.Members[0].EngineID),
			Vendor:   fp.VendorLabel(),
		}
		for _, m := range s.Members {
			as.IPs = append(as.IPs, m.IP)
		}
		out = append(out, as)
		tally[fp.VendorLabel()]++
	}
	vendors := make([]VendorCount, 0, len(tally))
	for v, n := range tally {
		vendors = append(vendors, VendorCount{Vendor: v, Devices: n})
	}
	// Same order the store materializes (and snmpalias prints).
	for i := 1; i < len(vendors); i++ {
		for j := i; j > 0; j-- {
			a, b := vendors[j-1], vendors[j]
			if b.Devices > a.Devices || (b.Devices == a.Devices && b.Vendor < a.Vendor) {
				vendors[j-1], vendors[j] = b, a
			}
		}
	}
	return out, vendors
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHistorySupersedeAndCompaction(t *testing.T) {
	s := mustOpen(t, Options{FlushThreshold: 2, DisableCompaction: true})
	defer s.Close()

	id := engID(9, 1, 2, 3, 4)
	s.BeginCampaign()
	if err := s.Add(mkObs("192.0.2.1", id, 3, 100, t0)); err != nil {
		t.Fatal(err)
	}
	// Supersede within the campaign: corrected boots value.
	if err := s.Add(mkObs("192.0.2.1", id, 4, 100, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	s.BeginCampaign()
	if err := s.Add(mkObs("192.0.2.1", id, 4, 200, t0.Add(24*time.Hour))); err != nil {
		t.Fatal(err)
	}
	s.Flush()

	v := s.Snapshot()
	h := v.History(netip.MustParseAddr("192.0.2.1"))
	if len(h) != 2 {
		t.Fatalf("history: got %d samples, want 2 (superseded removed): %+v", len(h), h)
	}
	if h[0].Boots != 4 || h[0].Campaign != 1 {
		t.Fatalf("campaign 1 sample not superseded: %+v", h[0])
	}
	if h[1].Campaign != 2 || h[1].EngineTime != 200 {
		t.Fatalf("bad campaign 2 sample: %+v", h[1])
	}
	if got, ok := v.Latest(netip.MustParseAddr("192.0.2.1")); !ok || got.Campaign != 2 {
		t.Fatalf("Latest: got %+v ok=%v", got, ok)
	}
	if ips := v.DeviceIPs(id); len(ips) != 1 || ips[0] != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("DeviceIPs: %v", ips)
	}

	before := v.Stats()
	if before.Segments < 2 {
		t.Fatalf("expected >=2 segments before compaction, got %d", before.Segments)
	}
	s.Compact()
	after := s.Snapshot().Stats()
	if after.Segments != 1 {
		t.Fatalf("expected 1 segment after compaction, got %d", after.Segments)
	}
	if after.Superseded == 0 {
		t.Fatal("compaction should have dropped the superseded sample")
	}
	// The merged view answers identically.
	h2 := s.Snapshot().History(netip.MustParseAddr("192.0.2.1"))
	if !reflect.DeepEqual(h, h2) {
		t.Fatalf("history changed across compaction:\n%+v\n%+v", h, h2)
	}
}

func TestAddBeforeBeginCampaign(t *testing.T) {
	s := mustOpen(t, Options{})
	defer s.Close()
	if err := s.Add(mkObs("192.0.2.1", engID(9, 1, 2, 3, 4), 1, 1, t0)); err != ErrNoCampaign {
		t.Fatalf("got %v, want ErrNoCampaign", err)
	}
}

// TestIncrementalAliasMatchesBatchSynthetic drives the adversarial corners:
// promiscuous bodies (including promiscuity appearing and disappearing via
// supersedes), invalid timeliness, IPs missing from one campaign.
func TestIncrementalAliasMatchesBatchSynthetic(t *testing.T) {
	idA := engID(9, 0xAA, 0xBB, 0xCC, 0xDD)    // cisco
	idB := engID(2636, 0x11, 0x22, 0x33, 0x44) // juniper
	// Promiscuous pair: same body, different enterprises.
	idP1 := engID(9, 0xEE, 0xEE, 0xEE, 0xEE)
	idP2 := engID(2636, 0xEE, 0xEE, 0xEE, 0xEE)
	day := 24 * time.Hour

	c1 := mkCampaign(
		mkObs("192.0.2.1", idA, 2, 1000, t0),
		mkObs("192.0.2.2", idA, 2, 1000, t0), // alias of .1
		mkObs("192.0.2.3", idB, 5, 500, t0),
		mkObs("192.0.2.4", idP1, 1, 100, t0),
		mkObs("192.0.2.5", idP2, 1, 100, t0),
		mkObs("192.0.2.6", idB, 0, 0, t0),    // zero boots/time: filtered
		mkObs("192.0.2.7", idA, 2, 1000, t0), // silent in campaign 2
	)
	c2 := mkCampaign(
		mkObs("192.0.2.1", idA, 2, 1000+86400, t0.Add(day)),
		mkObs("192.0.2.2", idA, 2, 1000+86400, t0.Add(day)),
		mkObs("192.0.2.3", idB, 5, 500+86400, t0.Add(day)),
		mkObs("192.0.2.4", idP1, 1, 100+86400, t0.Add(day)),
		mkObs("192.0.2.5", idP2, 1, 100+86400, t0.Add(day)),
		mkObs("192.0.2.6", idB, 0, 0, t0.Add(day)),
		mkObs("192.0.2.8", idB, 9, 50, t0.Add(day)), // new in campaign 2
	)

	s := mustOpen(t, Options{FlushThreshold: 3})
	defer s.Close()
	s.AddCampaign(c1)
	s.AddCampaign(c2)

	v := s.Snapshot()
	wantSets, wantVendors := batchSets(c1, c2)
	if got, want := mustJSON(t, v.AliasSets()), mustJSON(t, wantSets); got != want {
		t.Fatalf("alias sets diverge from batch:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, v.Vendors()), mustJSON(t, wantVendors); got != want {
		t.Fatalf("vendor tally diverges from batch:\n got %s\nwant %s", got, want)
	}

	// Supersede away the promiscuity: .5 now reports a clean engine ID, so
	// the body shared with .4 stops being promiscuous and .4's set must
	// reappear — the batch pipeline agrees when fed the corrected campaign.
	fix := mkObs("192.0.2.5", idB, 9, 50, t0.Add(day))
	if err := s.Add(fix); err != nil {
		t.Fatal(err)
	}
	c2.ByIP[fix.IP] = fix
	wantSets, wantVendors = batchSets(c1, c2)
	v = s.Snapshot()
	if got, want := mustJSON(t, v.AliasSets()), mustJSON(t, wantSets); got != want {
		t.Fatalf("after supersede, alias sets diverge:\n got %s\nwant %s", got, want)
	}
	if got, want := mustJSON(t, v.Vendors()), mustJSON(t, wantVendors); got != want {
		t.Fatalf("after supersede, vendors diverge:\n got %s\nwant %s", got, want)
	}
}

func runSimCampaign(t testing.TB, w *netsim.World, day int, seed int64) *core.Campaign {
	t.Helper()
	w.Clock.Set(w.Cfg.StartTime.Add(time.Duration(day) * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scanner.Scan(w.NewTransport(), targets, scanner.Config{
		Rate: 50000, Batch: 256, Clock: w.Clock, Seed: seed, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.Collect(res)
}

// TestIncrementalAliasMatchesBatchNetsim is the acceptance check: over two
// simulated-Internet campaigns, the store's incrementally maintained alias
// sets and vendor tallies are byte-identical to the batch pipeline, and the
// reconstructed timelines match tracker.Build.
func TestIncrementalAliasMatchesBatchNetsim(t *testing.T) {
	w := netsim.Generate(netsim.TinyConfig(7))
	c1 := runSimCampaign(t, w, 15, 101)
	c2 := runSimCampaign(t, w, 21, 102)
	if len(c1.ByIP) == 0 || len(c2.ByIP) == 0 {
		t.Fatal("empty sim campaigns")
	}

	s := mustOpen(t, Options{FlushThreshold: 512})
	defer s.Close()
	s.AddCampaign(c1)
	s.AddCampaign(c2)
	v := s.Snapshot()

	wantSets, wantVendors := batchSets(c1, c2)
	if len(wantSets) == 0 {
		t.Fatal("batch pipeline found no alias sets; world too small")
	}
	if got, want := mustJSON(t, v.AliasSets()), mustJSON(t, wantSets); got != want {
		t.Fatalf("alias sets diverge from batch pipeline\n got %.300s…\nwant %.300s…", got, want)
	}
	if got, want := mustJSON(t, v.Vendors()), mustJSON(t, wantVendors); got != want {
		t.Fatalf("vendor tally diverges from batch pipeline\n got %s\nwant %s", got, want)
	}

	want := tracker.Build([]*core.Campaign{c1, c2})
	for _, ip := range tracker.SortedIPs(want) {
		got := v.Timeline(ip)
		if got == nil {
			t.Fatalf("no timeline for %v", ip)
		}
		if !reflect.DeepEqual(got.Samples, want[ip].Samples) {
			t.Fatalf("timeline %v diverges:\n got %+v\nwant %+v", ip, got.Samples, want[ip].Samples)
		}
	}
}

// TestTimelineFoldMatchesTrackerExtend checks the store against the
// tracker's incremental Extend path across three campaigns with churn.
func TestTimelineFoldMatchesTrackerExtend(t *testing.T) {
	idA := engID(9, 1, 1, 1, 1)
	idB := engID(2636, 2, 2, 2, 2)
	day := 24 * time.Hour
	cs := []*core.Campaign{
		mkCampaign(mkObs("192.0.2.1", idA, 1, 100, t0)),
		mkCampaign(
			mkObs("192.0.2.1", idA, 2, 10, t0.Add(day)),
			mkObs("192.0.2.2", idB, 1, 50, t0.Add(day)),
		),
		mkCampaign(mkObs("192.0.2.2", idB, 1, 50+86400, t0.Add(2*day))),
	}

	s := mustOpen(t, Options{})
	defer s.Close()
	timelines := map[netip.Addr]*tracker.Timeline{}
	for _, c := range cs {
		s.AddCampaign(c)
		tracker.Extend(timelines, c)
	}
	v := s.Snapshot()
	for ip, want := range timelines {
		got := v.Timeline(ip)
		if got == nil || !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Fatalf("timeline %v: got %+v want %+v", ip, got, want.Samples)
		}
	}
	// And both match the batch tracker.
	built := tracker.Build(cs)
	if !reflect.DeepEqual(built, timelines) {
		t.Fatalf("tracker.Extend fold diverges from Build:\n got %+v\nwant %+v", timelines, built)
	}
}

// TestSnapshotIsolation races ingest, compaction and snapshot queries. Each
// observed view must be internally consistent — its vendor tally must sum
// to its alias-set count, its stats must agree with itself — and versions
// must be monotonic per reader. Run under -race this is the store half of
// the soak requirement.
func TestSnapshotIsolation(t *testing.T) {
	s := mustOpen(t, Options{FlushThreshold: 64, MaxSegments: 3})
	defer s.Close()

	const campaigns = 12
	const ipsPer = 150
	day := 24 * time.Hour

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for c := 0; c < campaigns; c++ {
			s.BeginCampaign()
			at := t0.Add(time.Duration(c) * day)
			for i := 0; i < ipsPer; i++ {
				id := engID(9, byte(i), byte(i>>8), 3, 4)
				o := mkObs(fmt.Sprintf("192.0.%d.%d", i/250, i%250+1), id, 2, int64(1000+c*86400), at)
				if err := s.Add(o); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion, lastIngested uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Snapshot()
				st := v.Stats()
				if st.Version < lastVersion || st.Ingested < lastIngested {
					errs <- fmt.Errorf("snapshot went backwards: %+v after version=%d ingested=%d", st, lastVersion, lastIngested)
					return
				}
				lastVersion, lastIngested = st.Version, st.Ingested
				sum := 0
				for _, vc := range v.Vendors() {
					sum += vc.Devices
				}
				if sum != len(v.AliasSets()) || st.AliasSets != len(v.AliasSets()) {
					errs <- fmt.Errorf("inconsistent view: vendor sum %d, sets %d, stats %d", sum, len(v.AliasSets()), st.AliasSets)
					return
				}
				for _, as := range v.AliasSets() {
					if len(as.IPs) == 0 {
						errs <- fmt.Errorf("empty alias set %+v", as)
						return
					}
				}
				// Spot-check a point query against the view's own set list.
				if len(v.AliasSets()) > 0 {
					as := v.AliasSets()[0]
					if h := v.History(as.IPs[0]); len(h) == 0 {
						errs <- fmt.Errorf("set member %v has no history in same view", as.IPs[0])
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	st := s.Snapshot().Stats()
	if st.Campaigns != campaigns || st.Ingested != campaigns*ipsPer {
		t.Fatalf("final stats wrong: %+v", st)
	}
}
