package store

import (
	"bufio"
	"fmt"
	"net/netip"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The SIGKILL smoke test re-executes this test binary as a child ingester
// (TestMain dispatches on the env var below), kills it with SIGKILL while
// it ingests, reopens the directory and checks the durability contract
// against the child's acknowledgment log: every sample the child saw
// acknowledged before dying must be recovered, with no duplicates. Unlike
// the hook-injected crashes, this one kills a real process mid-syscall.
const (
	killChildEnv = "SNMPFP_STORE_KILL_CHILD"
	killDirEnv   = "SNMPFP_STORE_KILL_DIR"
)

func TestMain(m *testing.M) {
	if os.Getenv(killChildEnv) == "1" {
		killChildMain(os.Getenv(killDirEnv))
		return
	}
	os.Exit(m.Run())
}

// killChildMain ingests into dir forever (until killed): tiny flush
// threshold so segments, manifests and WAL rotations all happen constantly.
// After each acknowledged Add it appends the sample's IP to ack.log — the
// ack line is written strictly after the store acknowledged, so every
// complete line names a sample the parent must find after recovery.
func killChildMain(dir string) {
	st, err := Open(Options{Dir: dir, FlushThreshold: 16})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	ack, err := os.OpenFile(dir+"/ack.log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill child:", err)
		os.Exit(1)
	}
	id := engID(9, 1, 2, 3, 4)
	for n := uint64(1); ; n++ {
		if _, err := st.BeginCampaign(); err != nil {
			fmt.Fprintln(os.Stderr, "kill child:", err)
			os.Exit(1)
		}
		for i := 0; i < 500; i++ {
			ip := netip.AddrFrom4([4]byte{10, 20, byte(i >> 8), byte(i)})
			o := mkObs(ip.String(), id, 2, int64(n*1000)+int64(i), t0.AddDate(0, 0, int(n)))
			if err := st.Add(o); err != nil {
				fmt.Fprintln(os.Stderr, "kill child:", err)
				os.Exit(1)
			}
			fmt.Fprintf(ack, "%s %d\n", ip, n)
		}
	}
}

// TestKillDuringIngest is the end-to-end durability smoke test behind
// `make durability-smoke`: SIGKILL a live ingesting process, reopen its
// directory, and verify zero acknowledged-sample loss and zero duplicates.
func TestKillDuringIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-kill smoke test in -short mode")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(), killChildEnv+"=1", killDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child make real progress — campaigns, flushes, WAL rotations
	// — before killing it mid-flight.
	ackPath := dir + "/ack.log"
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err := os.Stat(ackPath); err == nil && fi.Size() > 5_000 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("child made no progress before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // reaps; exit status is the kill signal

	// VerifyOnOpen keeps the full checksum-and-decode pass in the
	// durability-smoke contract even though normal opens are lazy.
	st, err := Open(Options{Dir: dir, FlushThreshold: 16, VerifyOnOpen: true})
	if err != nil {
		t.Fatalf("recovery after SIGKILL failed: %v", err)
	}
	defer st.Close()
	got := allSamples(st)
	checkNoDuplicates(t, got)
	recovered := make(map[sampleKey]int, len(got))
	for i := range got {
		recovered[sampleKey{ip: got[i].IP.String(), campaign: got[i].Campaign}]++
	}

	f, err := os.Open(ackPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ackedLines, lost := 0, 0
	sc := bufio.NewScanner(f)
	var lastLine string
	for sc.Scan() {
		line := sc.Text()
		ip, campaignStr, ok := strings.Cut(line, " ")
		if !ok {
			// The final line may be torn by the kill; anything before it is
			// a complete acknowledgment.
			continue
		}
		var campaign uint64
		if _, err := fmt.Sscanf(campaignStr, "%d", &campaign); err != nil {
			continue
		}
		ackedLines++
		lastLine = line
		switch n := recovered[sampleKey{ip: ip, campaign: campaign}]; n {
		case 1:
		case 0:
			lost++
			t.Errorf("acknowledged sample %s campaign %d lost after SIGKILL", ip, campaign)
		default:
			t.Errorf("sample %s campaign %d recovered %d times", ip, campaign, n)
		}
		if lost > 5 {
			t.Fatal("stopping after 5 lost samples")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if ackedLines < 100 {
		t.Fatalf("only %d acknowledged samples before the kill; child barely ran", ackedLines)
	}
	t.Logf("SIGKILL after %d acks (last %q): recovered %d samples, 0 lost, 0 duplicated",
		ackedLines, lastLine, len(got))
}
