package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/obs"
)

// disk owns a durable store's directory: file numbering, the crash-
// injection hooks, and the WAL/fsync observability counters. All IO in the
// package funnels through it so tests can kill the store at any durable
// step and so metrics see every byte and fsync.
type disk struct {
	dir      string
	hooks    *diskHooks
	nextFile atomic.Uint64

	walAppends      atomic.Uint64
	walBytes        atomic.Uint64
	walFsyncs       atomic.Uint64
	recovered       atomic.Uint64 // samples replayed from the WAL at open
	recoverySeconds atomic.Uint64 // microseconds, published as seconds
	walTruncations  atomic.Uint64

	fsyncMu   sync.Mutex
	fsyncHist *obs.Histogram
}

// diskHooks intercepts every durable step. fail is consulted with a point
// name before (or, for ".torn" points, mid-way through) the step; the first
// non-nil return latches: the simulated process is dead, and every later
// step fails too. Only tests set hooks.
type diskHooks struct {
	mu   sync.Mutex
	dead error
	fail func(point string) error
}

func (h *diskHooks) check(point string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead != nil {
		return h.dead
	}
	if err := h.fail(point); err != nil {
		h.dead = err
		return err
	}
	return nil
}

func (d *disk) hook(point string) error {
	if d.hooks == nil {
		return nil
	}
	return d.hooks.check(point)
}

func (d *disk) observeFsync(dur time.Duration) {
	d.fsyncMu.Lock()
	h := d.fsyncHist
	d.fsyncMu.Unlock()
	if h != nil {
		h.ObserveDuration(dur)
	}
}

func (d *disk) setFsyncHist(h *obs.Histogram) {
	d.fsyncMu.Lock()
	d.fsyncHist = h
	d.fsyncMu.Unlock()
}

// syncDir fsyncs the store directory so renames and creates are durable.
func (d *disk) syncDir() error {
	if err := d.hook("dir.sync"); err != nil {
		return err
	}
	f, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// fileName renders the numbered name for a segment or WAL file.
func fileName(n uint64, ext string) string {
	return fmt.Sprintf("%06d%s", n, ext)
}

// fileNumber parses a numbered file name; ok is false for foreign files.
func fileNumber(name, ext string) (uint64, bool) {
	base, found := strings.CutSuffix(name, ext)
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// createWAL opens a fresh WAL file for the next memtable generation. The
// directory entry is made durable by the first commit's sync (walFile.sync
// fsyncs the file; the create itself is covered by the explicit dir sync
// here), so an acknowledged record can never sit in an unlinked file.
func (d *disk) createWAL() (*walFile, error) {
	if err := d.hook("wal.create"); err != nil {
		return nil, err
	}
	name := fileName(d.nextFile.Add(1), ".wal")
	f, err := os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create wal: %w", err)
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return &walFile{name: name, f: f}, nil
}

// removeWAL deletes a retired generation's log file.
func (d *disk) removeWAL(name string) error {
	if err := d.hook("wal.delete"); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(d.dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: remove wal: %w", err)
	}
	return nil
}

// removeSegment deletes a superseded segment file after compaction.
func (d *disk) removeSegment(name string) error {
	if err := d.hook("seg.delete"); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(d.dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: remove segment: %w", err)
	}
	return nil
}

// scanDir inventories the store directory: live WAL files in generation
// order, plus every orphan (tmp files and segments the manifest doesn't
// list) left by a crash mid-flush or mid-compaction.
func scanDir(dir string, m *manifest) (wals []string, orphans []string, maxFile uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: scan dir: %w", err)
	}
	live := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		live[s] = true
	}
	type walEnt struct {
		name string
		n    uint64
	}
	var walEnts []walEnt
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == manifestName {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			orphans = append(orphans, name)
			continue
		}
		if n, ok := fileNumber(name, ".wal"); ok {
			walEnts = append(walEnts, walEnt{name, n})
			if n > maxFile {
				maxFile = n
			}
			continue
		}
		if n, ok := fileNumber(name, ".seg"); ok {
			if n > maxFile {
				maxFile = n
			}
			if !live[name] {
				orphans = append(orphans, name)
			}
			continue
		}
		// Foreign files are left alone.
	}
	sort.Slice(walEnts, func(i, j int) bool { return walEnts[i].n < walEnts[j].n })
	for _, w := range walEnts {
		wals = append(wals, w.name)
	}
	return wals, orphans, maxFile, nil
}
