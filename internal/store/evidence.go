package store

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"snmpv3fp/internal/probe"
)

// EvidenceSample is one non-SNMP protocol observation bound for the store:
// the probe module's alias key for an address, as collected by
// probe.Collect. It persists in the same sample schema as SNMPv3
// observations (the key rides in the EngineID bytes, tagged by Protocol) but
// stays out of every SNMPv3-specific derived structure — the engine index,
// the incremental alias pipeline, the default /v1/ip history.
type EvidenceSample struct {
	IP netip.Addr
	// Key is the module's device-identity key; "" when the response
	// carried no alias-usable identity (still stored, for coverage
	// accounting).
	Key          string
	ReceivedAt   time.Time
	Packets      int
	Inconsistent bool
}

// EvidenceFromCampaign converts a protocol campaign into store-ready
// evidence samples, in address order (deterministic segment contents).
func EvidenceFromCampaign(c *probe.Campaign) []EvidenceSample {
	ips := c.SortedIPs()
	out := make([]EvidenceSample, 0, len(ips))
	for _, ip := range ips {
		sg := c.ByIP[ip]
		out = append(out, EvidenceSample{
			IP:           ip,
			Key:          sg.Key,
			ReceivedAt:   sg.ReceivedAt,
			Packets:      sg.Packets,
			Inconsistent: sg.Inconsistent,
		})
	}
	return out
}

// IngestEvidence adds one protocol's alias evidence to the store's current
// campaign (it does not begin one: evidence accompanies the SNMPv3 campaign
// already ingested). Samples are logged, fsynced and flushed with the same
// batching and durability contract as Ingest; re-ingesting a protocol for
// the same campaign supersedes per (IP, campaign, protocol). The samples
// slice must be in address order (EvidenceFromCampaign's output is).
func (s *Store) IngestEvidence(ctx context.Context, protocol string, samples []EvidenceSample) error {
	if protocol == "" {
		return fmt.Errorf("store: evidence needs a protocol tag (\"\" is reserved for SNMPv3 samples)")
	}
	span := s.tracer.Start("store.ingest_evidence")
	defer span.End()
	for i := 0; i < len(samples); {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		if s.campaign == 0 {
			s.mu.Unlock()
			return ErrNoCampaign
		}
		if err := s.usableLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
		batch := ingestCheckEvery
		if room := s.opt.FlushThreshold - s.mem.len(); room < batch {
			batch = room
		}
		end := i + batch
		if end > len(samples) {
			end = len(samples)
		}
		s.mem.reserve(end - i)
		for ; i < end; i++ {
			s.addEvidenceLocked(protocol, &samples[i])
		}
		needFlush := s.mem.len() >= s.opt.FlushThreshold
		wf, off, err := s.commitLocked()
		if err == nil && needFlush {
			err = s.freezeLocked()
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
		if wf != nil {
			if err := wf.sync(s.d, off); err != nil {
				return s.fail(err)
			}
		}
		if needFlush {
			if err := s.flushPending(); err != nil {
				return err
			}
		}
	}
	return nil
}

// addEvidenceLocked mirrors addLocked for non-SNMP samples: WAL + memtable
// only. Evidence deliberately skips known/engines and the prev/cur/aidx
// alias state — those are SNMPv3 derived structures, and
// rebuildDerivedState's replay skips Protocol != "" samples to match.
func (s *Store) addEvidenceLocked(protocol string, e *EvidenceSample) {
	s.seq++
	sm := Sample{
		IP:           e.IP,
		Campaign:     s.campaign,
		Seq:          s.seq,
		Protocol:     protocol,
		ReceivedAt:   e.ReceivedAt,
		Packets:      e.Packets,
		Inconsistent: e.Inconsistent,
	}
	if e.Key != "" {
		sm.EngineID = []byte(e.Key)
	}
	if s.d != nil {
		s.walBuf = appendWALSample(s.walBuf, &sm)
	}
	s.mem.add(sm)
	s.ingested++
	s.mutateLocked()
}
