package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Primary side of segment-shipping replication. Every manifest commit —
// recovery baseline, flush, compaction, close — publishes a replState; each
// connected replica's shipper goroutine walks the published states, sending
// the segment files the replica lacks and then the commit. Segment files
// are immutable once renamed into place, so shipping needs no coordination
// with the flusher or compactor beyond tolerating deletion: a compaction
// can remove a superseded file while a shipper reads it, in which case the
// shipper abandons that state and re-snapshots — the newer state no longer
// lists the file.

// replState is one committed (manifest, stats, segments) triple.
type replState struct {
	// version is a publish counter, monotonically increasing; shippers use
	// it to detect that a new state superseded the one they were shipping.
	version uint64
	// manifest is the rendered manifest file (JSON line + crc line) —
	// exactly the bytes the replica writes to its own MANIFEST.
	manifest []byte
	// stats is the primary's Stats JSON captured at the same publish;
	// replicas serve it verbatim.
	stats []byte
	// segs is the manifest's live segment list.
	segs []string
	// seq is the manifest's durable-seq horizon.
	seq uint64
}

// replPub is the publish/subscribe point between the store's mutators and
// the shipper goroutines. Publishing replaces the state and closes the
// broadcast channel; shippers re-read the state whenever the channel they
// hold closes.
type replPub struct {
	mu  sync.Mutex
	cur replState
	ch  chan struct{}

	commits     atomic.Uint64
	subscribers atomic.Int64
}

func newReplPub() *replPub { return &replPub{ch: make(chan struct{})} }

func (p *replPub) publish(st replState) {
	p.mu.Lock()
	st.version = p.cur.version + 1
	p.cur = st
	close(p.ch)
	p.ch = make(chan struct{})
	p.mu.Unlock()
	p.commits.Add(1)
}

// state returns the current state and the channel that closes when a newer
// one is published.
func (p *replPub) state() (replState, <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur, p.ch
}

// publishRepl captures the committed manifest plus the live Stats and hands
// them to the replication subscribers. Called after every successful
// writeManifest, never under s.mu.
func (s *Store) publishRepl(man *manifest) {
	if s.repl == nil {
		return
	}
	rendered, err := renderManifest(man)
	if err != nil {
		return
	}
	s.mu.Lock()
	st := s.statsLocked()
	s.mu.Unlock()
	statsJSON, err := json.Marshal(&st)
	if err != nil {
		return
	}
	s.repl.publish(replState{
		manifest: rendered,
		stats:    statsJSON,
		segs:     append([]string(nil), man.Segments...),
		seq:      man.Seq,
	})
}

// ErrNotDurable is returned by ServeReplication on an in-memory store:
// replication ships segment files, which only durable stores have.
var ErrNotDurable = errors.New("store: replication requires a durable store")

// ServeReplication accepts replica connections on ln and ships them
// segments and manifest commits until ln is closed (whose Accept error it
// returns). Each connection is served by its own goroutine and lives until
// the replica disconnects.
func (s *Store) ServeReplication(ln net.Listener) error {
	if s.repl == nil {
		return ErrNotDurable
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.serveReplConn(conn)
		}()
	}
}

// serveReplConn runs one replica session: Hello, then ship states forever.
func (s *Store) serveReplConn(conn net.Conn) error {
	s.repl.subscribers.Add(1)
	defer s.repl.subscribers.Add(-1)

	typ, body, err := readReplFrame(conn)
	if err != nil {
		return err
	}
	if typ != replFrameHello {
		return fmt.Errorf("store: replication: expected hello, got frame %d", typ)
	}
	hello, err := parseReplHello(body)
	if err != nil {
		return err
	}
	if hello.Version != replProtoVersion {
		return fmt.Errorf("store: replication: protocol version %d, want %d", hello.Version, replProtoVersion)
	}
	held := make(map[string]bool, len(hello.Held))
	for _, name := range hello.Held {
		held[name] = true
	}

	// The replica sends Ack frames after each apply; draining them doubles
	// as disconnect detection while the shipper waits for new states.
	connDead := make(chan struct{})
	go func() {
		defer close(connDead)
		for {
			typ, _, err := readReplFrame(conn)
			if err != nil || typ != replFrameAck {
				return
			}
		}
	}()

	sent := uint64(0)
	for {
		st, ch := s.repl.state()
		if st.version == sent {
			select {
			case <-ch:
				continue
			case <-connDead:
				return nil
			}
		}
		ok, err := s.shipState(conn, st, held)
		if err != nil {
			return err
		}
		if ok {
			sent = st.version
		}
		// !ok: a listed segment file vanished under the shipper — a
		// compaction superseded this state. Loop to pick up the newer one.
	}
}

// shipState sends every segment of st the replica lacks, then the commit.
// Returns false (and no error) when a segment file disappeared mid-ship:
// the state is stale and the caller should re-snapshot.
func (s *Store) shipState(conn net.Conn, st replState, held map[string]bool) (bool, error) {
	for _, name := range st.segs {
		if held[name] {
			continue
		}
		switch err := s.shipSegment(conn, name); {
		case err == nil:
			held[name] = true
		case os.IsNotExist(err):
			return false, nil
		default:
			return false, err
		}
	}
	body := replFramePool.Get()[:0]
	body = appendReplCommit(body, replCommit{Manifest: st.manifest, Stats: st.stats})
	err := writeReplFrame(conn, replFrameCommit, body)
	replFramePool.Put(body)
	if err != nil {
		return false, err
	}
	return true, nil
}

// shipSegment streams one immutable segment file: header with size and
// whole-file crc32c, the bytes in chunks, then SegDone. Reads the file in
// one go — segments are bounded by the flush threshold and compaction
// output, well within memory.
func (s *Store) shipSegment(conn net.Conn, name string) error {
	data, err := os.ReadFile(filepath.Join(s.d.dir, name))
	if err != nil {
		return err
	}
	hdr := replFramePool.Get()[:0]
	hdr = appendReplSeg(hdr, replSeg{
		Name: name,
		Size: uint64(len(data)),
		CRC:  crc32.Checksum(data, castagnoli),
	})
	err = writeReplFrame(conn, replFrameSeg, hdr)
	replFramePool.Put(hdr)
	if err != nil {
		return err
	}
	for off := 0; off < len(data); off += replChunkSize {
		end := off + replChunkSize
		if end > len(data) {
			end = len(data)
		}
		if err := writeReplFrame(conn, replFrameChunk, data[off:end]); err != nil {
			return err
		}
	}
	return writeReplFrame(conn, replFrameSegDone, nil)
}
