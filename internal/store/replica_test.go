package store

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// startRepl serves replication for s on a loopback listener and returns its
// address. The listener dies with the test.
func startRepl(t *testing.T, s *Store) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = s.ServeReplication(ln) }()
	return ln.Addr().String()
}

// syncReplica dials addr and runs r.Sync until the test ends.
func syncReplica(t *testing.T, r *Replica, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = r.Sync(ctx, conn) }()
}

// waitCaughtUp polls until the replica's view version matches the
// primary's, i.e. the latest publish applied.
func waitCaughtUp(t *testing.T, s *Store, r *Replica) {
	t.Helper()
	want := s.Snapshot().Stats().Version
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r.Snapshot().Stats().Version == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached primary version %d (at %d, applied seq %d)",
				want, r.Snapshot().Stats().Version, r.appliedSeq.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertViewsIdentical compares every query surface of the two snapshots as
// JSON — the store-level form of the /v1/* byte-identity contract.
func assertViewsIdentical(t *testing.T, p, r *View, ips []string) {
	t.Helper()
	if got, want := mustJSON(t, r.Stats()), mustJSON(t, p.Stats()); got != want {
		t.Fatalf("stats diverge:\nreplica %s\nprimary %s", got, want)
	}
	if got, want := mustJSON(t, r.AliasSets()), mustJSON(t, p.AliasSets()); got != want {
		t.Fatalf("alias sets diverge:\nreplica %s\nprimary %s", got, want)
	}
	if got, want := mustJSON(t, r.Vendors()), mustJSON(t, p.Vendors()); got != want {
		t.Fatalf("vendors diverge:\nreplica %s\nprimary %s", got, want)
	}
	for _, ip := range ips {
		addr := mkObs(ip, engID(9, 1), 0, 0, t0).IP
		if got, want := mustJSON(t, r.History(addr)), mustJSON(t, p.History(addr)); got != want {
			t.Fatalf("history(%s) diverges:\nreplica %s\nprimary %s", ip, got, want)
		}
		if got, want := mustJSON(t, r.Timeline(addr)), mustJSON(t, p.Timeline(addr)); got != want {
			t.Fatalf("timeline(%s) diverges", ip)
		}
	}
}

// replWorkload ingests n campaigns over a fixed IP set and flushes each, so
// the whole state lives in segments (a caught-up replica can then be
// byte-identical). Returns the IPs.
func replWorkload(t *testing.T, s *Store, campaigns int) []string {
	t.Helper()
	idA := engID(9, 1, 2, 3, 4)
	idB := engID(2636, 9, 9, 9, 9)
	var ips []string
	for i := 0; i < 6; i++ {
		ips = append(ips, fmt.Sprintf("192.0.2.%d", i+1))
	}
	day := int64(86400)
	for n := 1; n <= campaigns; n++ {
		if _, err := s.BeginCampaign(); err != nil {
			t.Fatal(err)
		}
		for i, ip := range ips {
			id := idA
			if i >= 4 {
				id = idB
			}
			o := mkObs(ip, id, 2, 1000+day*int64(n), t0.AddDate(0, 0, n))
			if err := s.Add(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return ips
}

// TestReplicaCatchUp: a replica connecting after the fact converges to the
// primary's exact state — stats, alias sets, vendors, histories.
func TestReplicaCatchUp(t *testing.T) {
	s := mustOpenDir(t, t.TempDir(), Options{FlushThreshold: 4, DisableCompaction: true})
	defer s.Close()
	ips := replWorkload(t, s, 3)
	addr := startRepl(t, s)

	r, err := OpenReplica(ReplicaOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	syncReplica(t, r, addr)
	waitCaughtUp(t, s, r)
	assertViewsIdentical(t, s.Snapshot(), r.Snapshot(), ips)
	if lag := r.primarySeq.Load() - r.appliedSeq.Load(); lag != 0 {
		t.Fatalf("caught-up replica reports lag %d", lag)
	}
}

// TestReplicaFollowsCompaction races compaction against the shipper: a
// segment shipped to the replica and then superseded by a concurrent merge
// must not resurrect — after the dust settles the replica's directory holds
// exactly the primary manifest's segment set.
func TestReplicaFollowsCompaction(t *testing.T) {
	s := mustOpenDir(t, t.TempDir(), Options{FlushThreshold: 4, DisableCompaction: true})
	defer s.Close()
	ips := replWorkload(t, s, 4)
	addr := startRepl(t, s)

	rdir := t.TempDir()
	r, err := OpenReplica(ReplicaOptions{Dir: rdir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	syncReplica(t, r, addr)

	// Compact while the replica is syncing; more campaigns while it drains.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Compact()
	}()
	replWorkload(t, s, 2)
	wg.Wait()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, s, r)
	assertViewsIdentical(t, s.Snapshot(), r.Snapshot(), ips)

	s.mu.Lock()
	want := map[string]bool{}
	for _, g := range s.segs {
		want[g.file] = true
	}
	s.mu.Unlock()
	for _, name := range listExt(t, rdir, ".seg") {
		if !want[name] {
			t.Fatalf("superseded segment %s resurrected in replica dir (want %v)", name, want)
		}
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("replica dir missing segments %v", want)
	}
}

// flakyConn severs the connection after writing n bytes — the mid-ship
// failure the reconnect path must absorb.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

var errSevered = errors.New("connection severed by test")

func (c *flakyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.budget <= 0 {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, errSevered
	}
	if len(p) > c.budget {
		p = p[:c.budget]
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.budget -= n
	c.mu.Unlock()
	return n, err
}

// TestReplicaKillMidShipReconnect severs the stream partway through the
// initial catch-up, reconnects, and requires full convergence — with no
// partial download surviving as state.
func TestReplicaKillMidShipReconnect(t *testing.T) {
	s := mustOpenDir(t, t.TempDir(), Options{FlushThreshold: 4, DisableCompaction: true})
	defer s.Close()
	ips := replWorkload(t, s, 4)
	addr := startRepl(t, s)

	rdir := t.TempDir()
	r, err := OpenReplica(ReplicaOptions{Dir: rdir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// First attempt: die after 600 bytes of the primary's stream —
	// mid-segment, before any commit.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	err = r.Sync(context.Background(), &flakyConn{Conn: raw, budget: 600})
	if err == nil {
		t.Fatal("severed sync reported success")
	}
	if r.commits.Load() != 0 {
		t.Fatalf("commit applied from a severed stream")
	}

	// Reconnect and converge.
	syncReplica(t, r, addr)
	waitCaughtUp(t, s, r)
	assertViewsIdentical(t, s.Snapshot(), r.Snapshot(), ips)
}

// TestReplicaRestartServesPersistedState: a replica reopened offline serves
// the last applied commit — manifest, segments and shipped stats all come
// back from its own directory.
func TestReplicaRestartServesPersistedState(t *testing.T) {
	s := mustOpenDir(t, t.TempDir(), Options{FlushThreshold: 4, DisableCompaction: true})
	defer s.Close()
	ips := replWorkload(t, s, 3)
	addr := startRepl(t, s)

	rdir := t.TempDir()
	r, err := OpenReplica(ReplicaOptions{Dir: rdir})
	if err != nil {
		t.Fatal(err)
	}
	syncReplica(t, r, addr)
	waitCaughtUp(t, s, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenReplica(ReplicaOptions{Dir: rdir, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	assertViewsIdentical(t, s.Snapshot(), r2.Snapshot(), ips)
}

// TestReplicaGapDetection: a commit listing a segment that was never
// shipped must be refused, not half-applied.
func TestReplicaGapDetection(t *testing.T) {
	r, err := OpenReplica(ReplicaOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	man := &manifest{Version: 1, Campaigns: 3, Seq: 42, Segments: []string{"000007.seg"}}
	rendered, err := renderManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	err = r.applyCommit(replCommit{Manifest: rendered, Stats: []byte(`{}`)})
	if !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("applyCommit with unshipped segment = %v, want ErrReplicaGap", err)
	}
	if r.commits.Load() != 0 || r.appliedSeq.Load() != 0 {
		t.Fatal("gap commit partially applied")
	}
	if _, err := os.Stat(r.opt.Dir + "/" + manifestName); !os.IsNotExist(err) {
		t.Fatal("gap commit wrote a manifest")
	}
}
