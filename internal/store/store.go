// Package store is the fingerprint observation store behind cmd/snmpfpd: a
// log-structured, append-only home for SNMPv3 scan campaigns that turns the
// batch pipeline (scan → NDJSON → re-read everything) into an incrementally
// updated, query-serving system.
//
// Writes land in an in-memory memtable that is frozen into immutable sorted
// segments at campaign boundaries (and when it outgrows its threshold); a
// background compactor merges segments and discards superseded samples.
// Each segment carries a per-IP and a per-engine-ID index. Readers obtain a
// View — an immutable snapshot of segments, alias sets and tallies — so
// queries never block ingest and never observe a half-applied campaign
// ingest step.
//
// With Options.Dir set the store is durable and crash-safe: every Add is
// appended to a checksummed write-ahead log and fsynced before it is
// acknowledged, flushes write segments to disk through an atomic
// tmp-and-rename, and an atomically rewritten manifest records the live
// segment set. Open replays the log, loads the manifest and rebuilds the
// incremental alias state, so a kill -9 mid-ingest loses nothing that was
// acknowledged (see DESIGN.md §12 for the formats and the recovery
// sequence).
//
// Alias sets (Section 5) and vendor tallies (Section 6) over the two most
// recent campaigns are maintained incrementally on ingest; their results
// are byte-identical to the batch filter.Run + alias.Resolve pipeline.
package store

import (
	"context"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/lru"
	"snmpv3fp/internal/obs"
)

// Options tunes a store.
type Options struct {
	// Dir, when set, makes the store durable: a write-ahead log, on-disk
	// segments and a manifest live there, and Open recovers whatever a
	// previous process acknowledged. Empty means a purely in-memory store.
	Dir string
	// FlushThreshold is how many memtable samples trigger a flush to an
	// immutable segment (default 4096). Campaign boundaries always flush.
	FlushThreshold int
	// MaxSegments is the segment count at which the background compactor
	// merges (default 6).
	MaxSegments int
	// Variant is the alias-resolution rule (default alias.Default, the
	// paper's "Divide by 20 both").
	Variant alias.Variant
	// DisableCompaction turns the background compactor off; Compact can
	// still be called explicitly. Used by tests that assert segment
	// layouts.
	DisableCompaction bool
	// Obs, when non-nil, receives the store's metrics: ingest/flush/
	// compaction counters, memtable and segment gauges (read-time
	// callbacks over the live state, so they reconcile exactly with
	// Stats), WAL append/byte/fsync counters and an fsync-latency
	// histogram for durable stores, a compaction-duration histogram, and
	// store.ingest / store.flush / store.compact spans (see DESIGN.md §10).
	Obs *obs.Registry
	// VerifyOnOpen makes recovery checksum and decode every sample of
	// every segment (the pre-v3 behavior). Off by default: v3 segments
	// open lazily, verifying only their footer, index and bloom blocks.
	VerifyOnOpen bool
	// DisableBloom writes segments without a bloom filter block. Used by
	// benches to measure the filter's effect; the files stay readable.
	DisableBloom bool
	// BlockCacheBytes bounds the decoded-block cache shared by the
	// store's lazy segments: 0 means the 16 MiB default, negative
	// disables caching. In-memory stores have no block cache.
	BlockCacheBytes int64

	// hooks intercepts durable-path steps; crash-recovery tests use it to
	// kill the store at arbitrary points.
	hooks *diskHooks
}

// defaultBlockCacheBytes bounds the decoded-block cache when
// Options.BlockCacheBytes is zero.
const defaultBlockCacheBytes = 16 << 20

func (o *Options) fill() {
	if o.FlushThreshold <= 0 {
		o.FlushThreshold = 4096
	}
	if o.MaxSegments < 2 {
		o.MaxSegments = 6
	}
	zero := alias.Variant{}
	if o.Variant == zero {
		o.Variant = alias.Default
	}
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	// Version increments on every mutation; snapshots taken later never
	// carry a smaller version.
	Version uint64 `json:"version"`
	// Campaigns is how many campaigns have been begun.
	Campaigns uint64 `json:"campaigns"`
	// Ingested counts samples ever accepted.
	Ingested uint64 `json:"ingested"`
	// MemSamples is the current memtable population, frozen memtables
	// awaiting flush included.
	MemSamples int `json:"mem_samples"`
	// Segments and SegmentSamples describe the immutable layer.
	Segments       int `json:"segments"`
	SegmentSamples int `json:"segment_samples"`
	// Flushes and Compactions count memtable freezes and segment merges.
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
	// Superseded counts samples discarded by compaction because a later
	// sample for the same (IP, campaign) replaced them.
	Superseded uint64 `json:"superseded"`
	// TrackedIPs is how many distinct IPs have ever been observed;
	// CurrentResponsive how many answered the current campaign so far.
	TrackedIPs        int `json:"tracked_ips"`
	CurrentResponsive int `json:"current_responsive"`
	// Devices is how many distinct engine IDs have ever been observed.
	Devices int `json:"devices"`
	// AliasSets and Vendors describe the live incremental resolution over
	// the latest campaign pair.
	AliasSets int `json:"alias_sets"`
	Vendors   int `json:"vendors"`
}

// frozenMem is an immutable memtable generation awaiting flush: its samples
// are already acknowledged (and, durably, already in the WAL files it
// owns), it just hasn't been built into an installed segment yet. Snapshots
// read it; exactly one flusher retires it.
type frozenMem struct {
	samples  []Sample
	walNames []string   // log files to delete once the segment is durable
	walRefs  []*walFile // open handles to retire before deletion
	// seg caches the built segment; written only under the store mutex.
	seg *segment
}

// Store is the fingerprint observation store. All methods are safe for
// concurrent use.
type Store struct {
	opt Options

	mu       sync.Mutex
	mem      *memtable
	frozen   []*frozenMem // generations awaiting flush, oldest first
	segs     []*segment   // immutable elements; slice rebuilt on change
	seq      uint64
	campaign uint64
	// prev and cur map IPs to their observation in the previous and
	// current campaign — the pair the alias index resolves over.
	prev, cur map[netip.Addr]*core.Observation
	aidx      *aliasIndex
	known     map[netip.Addr]struct{}
	engines   map[string]struct{}

	version     uint64
	ingested    uint64
	flushes     uint64
	compactions uint64
	superseded  uint64

	// Durable-mode state. walBuf accumulates encoded records under mu and
	// is written to wal in one append per commit; walNames is the current
	// generation's log files (recovered files plus the live one);
	// durableSeq is the manifest horizon — the highest seq durable in an
	// installed segment. diskErr latches the first durable-path failure:
	// after it, mutations fail fast (reads keep working).
	d          *disk
	wal        *walFile
	walNames   []string
	walBuf     []byte
	durableSeq uint64
	diskErr    error
	closed     bool

	// diskMu serializes the flusher and the compactor — the only two
	// mutators of the installed segment set and the manifest. Never
	// acquired while holding mu.
	diskMu sync.Mutex

	// segStat is the shared read-tier state of the store's lazy segments:
	// query-bytes accounting and the decoded-block cache. Nil for
	// in-memory stores (whose segments are always eager).
	segStat *segStats
	// repl publishes committed (manifest, stats, segments) states to
	// replication subscribers; nil for in-memory stores.
	repl *replPub

	view      *View
	viewValid bool

	compactCh chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// tracer times ingest/flush/compact spans on the wall clock; it is a
	// no-op when Options.Obs is unset.
	tracer *obs.Tracer
}

// ErrNoCampaign is returned by Add before any BeginCampaign call.
var ErrNoCampaign = errors.New("store: no campaign begun")

// ErrClosed is returned by mutations after Close.
var ErrClosed = errors.New("store: closed")

// Open creates a store and starts its background compactor. With a Dir it
// first recovers the on-disk state: manifest, segments, then the
// write-ahead log replayed into the memtable, with leftovers of an
// unfinished flush or compaction swept away.
func Open(opt Options) (*Store, error) {
	opt.fill()
	s := &Store{
		opt:       opt,
		mem:       newMemtable(),
		prev:      map[netip.Addr]*core.Observation{},
		cur:       map[netip.Addr]*core.Observation{},
		aidx:      newAliasIndex(opt.Variant),
		known:     map[netip.Addr]struct{}{},
		engines:   map[string]struct{}{},
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
		tracer:    obs.NewTracer(opt.Obs, nil),
	}
	if opt.Dir != "" {
		s.d = &disk{dir: opt.Dir, hooks: opt.hooks}
		s.segStat = &segStats{}
		cacheBytes := opt.BlockCacheBytes
		if cacheBytes == 0 {
			cacheBytes = defaultBlockCacheBytes
		}
		if cacheBytes > 0 {
			s.segStat.blocks = lru.New[[]Sample](cacheBytes)
		}
		s.repl = newReplPub()
		if err := s.recover(); err != nil {
			return nil, err
		}
		// Publish the recovered state so replicas connecting before the
		// first flush still get a full baseline to sync from.
		s.publishRepl(s.manifestLocked())
	}
	s.registerMetrics(opt.Obs)
	if !opt.DisableCompaction {
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// recover rebuilds the store from its directory. Called from Open before
// the store is shared, so no locking.
func (s *Store) recover() error {
	start := time.Now()
	if err := os.MkdirAll(s.d.dir, 0o755); err != nil {
		return err
	}
	man, _, err := readManifest(s.d.dir)
	if err != nil {
		return err
	}
	wals, orphans, maxFile, err := scanDir(s.d.dir, &man)
	if err != nil {
		return err
	}
	if man.NextFile > maxFile {
		maxFile = man.NextFile
	}
	s.d.nextFile.Store(maxFile)
	// Orphans are leftovers of an unfinished flush or compaction: tmp
	// files, and segments the manifest never committed (their samples are
	// still in the WAL, so deleting them loses nothing).
	for _, name := range orphans {
		if err := os.Remove(filepath.Join(s.d.dir, name)); err != nil {
			return err
		}
	}
	for _, name := range man.Segments {
		g, err := openSegment(s.d.dir, name, s.segStat, s.opt.VerifyOnOpen)
		if err != nil {
			return err
		}
		s.segs = append(s.segs, g)
	}
	rep, err := replayWAL(s.d.dir, wals, man.Seq)
	if err != nil {
		return err
	}
	s.mem.samples = rep.samples
	s.walNames = append(s.walNames, rep.liveFiles...)
	s.durableSeq = man.Seq
	s.seq = man.Seq
	if rep.maxSeq > s.seq {
		s.seq = rep.maxSeq
	}
	s.campaign = man.Campaigns
	if rep.maxCampaign > s.campaign {
		s.campaign = rep.maxCampaign
	}
	der, err := rebuildDerived(s.segs, s.mem.samples, s.campaign, s.opt.Variant)
	if err != nil {
		return err
	}
	s.campaign = der.campaign
	s.ingested = der.ingested
	s.known, s.engines = der.known, der.engines
	s.prev, s.cur = der.prev, der.cur
	s.aidx = der.aidx
	s.d.recovered.Store(uint64(len(rep.samples)))
	s.d.walTruncations.Add(uint64(rep.truncated))

	// New appends go to a fresh log file; the recovered files keep backing
	// the recovered memtable until it flushes.
	wf, err := s.d.createWAL()
	if err != nil {
		return err
	}
	s.wal = wf
	s.walNames = append(s.walNames, wf.name)
	s.mutateLocked()

	// An oversized recovered memtable (the previous process died between
	// threshold and flush) flushes immediately.
	if s.mem.len() >= s.opt.FlushThreshold {
		if err := s.freezeLocked(); err != nil {
			return err
		}
		if err := s.flushPending(); err != nil {
			return err
		}
	}
	s.d.recoverySeconds.Store(uint64(time.Since(start).Microseconds()))
	return nil
}

// derived is everything the stored samples imply: the distinct-IP and
// distinct-engine sets over all campaigns, the (previous, current)
// observation pair and the incremental alias index over the latest
// campaign pair. Rebuilt at open by both Store and Replica.
type derived struct {
	campaign  uint64
	ingested  uint64
	known     map[netip.Addr]struct{}
	engines   map[string]struct{}
	prev, cur map[netip.Addr]*core.Observation
	aidx      *aliasIndex
}

// rebuildDerived reconstructs the derived state from installed segments and
// not-yet-flushed memtable samples, replaying the latest campaign's samples
// in seq order — exactly the call sequence the live ingest path made.
//
// Lazy (v3) segments answer the global pass from their indexes and footer
// alone — known IPs from the ip-index flag bits, engines from the
// engine-index keys, counts and campaign bounds from the footer — and their
// sample blocks are decoded only when the footer's campaign range
// intersects the (previous, current) alias pair. On a store with a long
// segment tail, recovery reads a few percent of the bytes it used to.
func rebuildDerived(segs []*segment, mem []Sample, campaign uint64, variant alias.Variant) (derived, error) {
	d := derived{
		campaign: campaign,
		known:    map[netip.Addr]struct{}{},
		engines:  map[string]struct{}{},
		prev:     map[netip.Addr]*core.Observation{},
		cur:      map[netip.Addr]*core.Observation{},
		aidx:     newAliasIndex(variant),
	}
	global := func(sm *Sample) {
		if sm.Campaign > d.campaign {
			d.campaign = sm.Campaign
		}
		d.ingested++
		// Non-SNMP evidence never touched known/engines on the live path
		// (addEvidenceLocked), so replay skips it the same way.
		if sm.Protocol != "" {
			return
		}
		d.known[sm.IP] = struct{}{}
		if len(sm.EngineID) > 0 {
			d.engines[string(sm.EngineID)] = struct{}{}
		}
	}
	for _, g := range segs {
		if lz := g.lz; lz != nil {
			d.ingested += uint64(lz.count)
			if lz.maxC > d.campaign {
				d.campaign = lz.maxC
			}
			lz.forEachIPEntry(func(addr netip.Addr, flags byte) {
				if flags&segFlagSNMP != 0 {
					d.known[addr] = struct{}{}
				}
			})
			lz.forEachEngineID(func(id []byte) {
				d.engines[string(id)] = struct{}{}
			})
			continue
		}
		if err := g.scan(global); err != nil {
			return d, err
		}
	}
	for i := range mem {
		global(&mem[i])
	}
	if d.campaign == 0 {
		return d, nil
	}
	var prevSamples, curSamples []Sample
	pick := func(sm *Sample) {
		// The alias pipeline is SNMPv3-only: non-SNMP evidence must
		// never enter prev/cur or the incremental alias index (it
		// fuses downstream, in internal/fusion).
		if sm.Protocol != "" {
			return
		}
		switch sm.Campaign {
		case d.campaign - 1:
			prevSamples = append(prevSamples, *sm)
		case d.campaign:
			curSamples = append(curSamples, *sm)
		}
	}
	for _, g := range segs {
		if !g.mayContainCampaign(d.campaign-1) && !g.mayContainCampaign(d.campaign) {
			continue
		}
		if err := g.scan(pick); err != nil {
			return d, err
		}
	}
	for i := range mem {
		pick(&mem[i])
	}
	sort.Slice(prevSamples, func(i, j int) bool { return prevSamples[i].Seq < prevSamples[j].Seq })
	sort.Slice(curSamples, func(i, j int) bool { return curSamples[i].Seq < curSamples[j].Seq })
	for i := range prevSamples {
		d.prev[prevSamples[i].IP] = prevSamples[i].Observation()
	}
	d.aidx.reset([2]uint64{d.campaign - 1, d.campaign})
	for i := range curSamples {
		o := curSamples[i].Observation()
		d.cur[o.IP] = o
		d.aidx.update(o.IP, d.prev[o.IP], o)
	}
	return d, nil
}

// registerMetrics republishes the store's counters and layout gauges as
// read-time callbacks, so scrapes reconcile exactly with Stats() without
// adding a single write to the ingest path.
func (s *Store) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	counters := []struct {
		name string
		read func() float64
	}{
		{"snmpfp_store_ingested_total", func() float64 { return float64(s.ingested) }},
		{"snmpfp_store_flushes_total", func() float64 { return float64(s.flushes) }},
		{"snmpfp_store_compactions_total", func() float64 { return float64(s.compactions) }},
		{"snmpfp_store_superseded_total", func() float64 { return float64(s.superseded) }},
	}
	for _, c := range counters {
		read := locked(c.read)
		reg.CounterFunc(c.name, func() uint64 { return uint64(read()) })
	}
	gauges := []struct {
		name string
		read func() float64
	}{
		{"snmpfp_store_mem_samples", func() float64 { return float64(s.memSamplesLocked()) }},
		{"snmpfp_store_segments", func() float64 { return float64(len(s.segs)) }},
		{"snmpfp_store_campaigns", func() float64 { return float64(s.campaign) }},
		{"snmpfp_store_tracked_ips", func() float64 { return float64(len(s.known)) }},
		{"snmpfp_store_devices", func() float64 { return float64(len(s.engines)) }},
	}
	for _, g := range gauges {
		reg.GaugeFunc(g.name, locked(g.read))
	}
	reg.Help("snmpfp_store_ingested_total", "samples ever accepted")
	reg.Help("snmpfp_store_flushes_total", "memtable freezes into immutable segments")
	reg.Help("snmpfp_store_compactions_total", "segment merges completed")
	reg.Help("snmpfp_store_superseded_total", "samples discarded by compaction as superseded")
	reg.Help("snmpfp_store_mem_samples", "current memtable population (frozen generations included)")
	reg.Help("snmpfp_store_segments", "immutable segment count")
	reg.Help("snmpfp_store_campaigns", "campaigns begun")
	reg.Help("snmpfp_store_tracked_ips", "distinct IPs ever observed")
	reg.Help("snmpfp_store_devices", "distinct engine IDs ever observed")

	if s.d != nil {
		reg.CounterFunc("snmpfp_store_wal_appends_total", s.d.walAppends.Load)
		reg.CounterFunc("snmpfp_store_wal_bytes_total", s.d.walBytes.Load)
		reg.CounterFunc("snmpfp_store_wal_fsyncs_total", s.d.walFsyncs.Load)
		reg.CounterFunc("snmpfp_store_wal_replay_truncations_total", s.d.walTruncations.Load)
		reg.GaugeFunc("snmpfp_store_recovered_samples", func() float64 { return float64(s.d.recovered.Load()) })
		reg.GaugeFunc("snmpfp_store_recovery_seconds", func() float64 { return float64(s.d.recoverySeconds.Load()) / 1e6 })
		s.d.setFsyncHist(reg.Histogram("snmpfp_store_fsync_seconds", obs.ExpBuckets(1e-5, 4, 10)))
		reg.Help("snmpfp_store_wal_appends_total", "write-ahead-log batch appends")
		reg.Help("snmpfp_store_wal_bytes_total", "bytes appended to the write-ahead log")
		reg.Help("snmpfp_store_wal_fsyncs_total", "write-ahead-log fsync calls")
		reg.Help("snmpfp_store_wal_replay_truncations_total", "log files truncated or dropped at a corrupt tail during recovery")
		reg.Help("snmpfp_store_recovered_samples", "samples replayed from the write-ahead log at open")
		reg.Help("snmpfp_store_recovery_seconds", "how long crash recovery took at open")
		reg.Help("snmpfp_store_fsync_seconds", "fsync latency, write-ahead log and segment files")
	}
	if s.segStat != nil {
		reg.CounterFunc("snmpfp_store_seg_query_bytes_total", s.segStat.queryBytes.Load)
		reg.Help("snmpfp_store_seg_query_bytes_total", "segment bytes touched by point lookups (index probes plus decoded samples; bloom rejections cost zero)")
		if c := s.segStat.blocks; c != nil {
			reg.CounterFunc("snmpfp_store_block_cache_hits_total", c.Hits)
			reg.CounterFunc("snmpfp_store_block_cache_misses_total", c.Misses)
			reg.CounterFunc("snmpfp_store_block_cache_evictions_total", c.Evictions)
			reg.GaugeFunc("snmpfp_store_block_cache_bytes", func() float64 { return float64(c.Bytes()) })
			reg.Help("snmpfp_store_block_cache_hits_total", "decoded-block cache hits")
			reg.Help("snmpfp_store_block_cache_misses_total", "decoded-block cache misses")
			reg.Help("snmpfp_store_block_cache_evictions_total", "decoded-block cache evictions")
			reg.Help("snmpfp_store_block_cache_bytes", "decoded-block cache resident bytes")
		}
	}
	if s.repl != nil {
		reg.CounterFunc("snmpfp_store_repl_commits_total", s.repl.commits.Load)
		reg.GaugeFunc("snmpfp_store_repl_subscribers", func() float64 { return float64(s.repl.subscribers.Load()) })
		reg.Help("snmpfp_store_repl_commits_total", "replication states published (manifest commits)")
		reg.Help("snmpfp_store_repl_subscribers", "connected replication subscribers")
	}
}

// SegBytesRead reports how many segment bytes point lookups have touched —
// index entries probed plus sample bytes decoded; bloom-filter rejections
// and block-cache hits count zero. Benches use the delta per operation to
// prove the bloom filters' effect. Always zero for in-memory stores.
func (s *Store) SegBytesRead() uint64 {
	if s.segStat == nil {
		return 0
	}
	return s.segStat.queryBytes.Load()
}

// memSamplesLocked is the not-yet-installed population: the live memtable
// plus every frozen generation awaiting flush.
func (s *Store) memSamplesLocked() int {
	n := s.mem.len()
	for _, f := range s.frozen {
		n += len(f.samples)
	}
	return n
}

// usableLocked reports whether mutations may proceed.
func (s *Store) usableLocked() error {
	if s.closed {
		return ErrClosed
	}
	return s.diskErr
}

// fail latches the first durable-path error; later mutations fail fast.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	if s.diskErr == nil {
		s.diskErr = err
	}
	s.mu.Unlock()
	return err
}

// Close seals the store: it stops the background compactor, freezes and
// flushes the memtable (so no buffered sample is dropped on a clean
// shutdown), and — durably — writes a final manifest and deletes the
// now-empty write-ahead log. The store stays queryable; mutations return
// ErrClosed.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		s.mu.Lock()
		err = s.freezeLocked()
		s.closed = true
		s.mu.Unlock()
		if err != nil {
			return
		}
		if err = s.flushPending(); err != nil {
			return
		}
		if s.d == nil {
			return
		}
		// The memtable is flushed, so the log holds nothing the segments
		// don't: persist the campaign counter in a final manifest, then
		// drop the log.
		s.diskMu.Lock()
		defer s.diskMu.Unlock()
		s.mu.Lock()
		m := s.manifestLocked()
		wal, names := s.wal, s.walNames
		s.wal, s.walNames = nil, nil
		s.mu.Unlock()
		if wal != nil {
			wal.retire()
		}
		if err = s.d.writeManifest(m); err != nil {
			return
		}
		s.publishRepl(m)
		for _, name := range names {
			if err = s.d.removeWAL(name); err != nil {
				return
			}
		}
	})
	return err
}

// BeginCampaign seals the current campaign (flushing its samples to a
// segment) and starts the next one, advancing the alias pair to (previous,
// new). The boundary is logged and fsynced before it returns. Returns the
// new campaign's 1-based sequence number.
func (s *Store) BeginCampaign() (uint64, error) {
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if err := s.freezeLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.campaign++
	n := s.campaign
	s.prev = s.cur
	s.cur = map[netip.Addr]*core.Observation{}
	s.aidx.reset([2]uint64{s.campaign - 1, s.campaign})
	if s.d != nil {
		s.walBuf = appendWALBegin(s.walBuf, s.campaign)
	}
	s.mutateLocked()
	wf, end, err := s.commitLocked()
	s.mu.Unlock()
	if err != nil {
		return n, err
	}
	if wf != nil {
		if err := wf.sync(s.d, end); err != nil {
			return n, s.fail(err)
		}
	}
	return n, s.flushPending()
}

// Add ingests one observation into the current campaign: it lands in the
// write-ahead log (fsynced before Add returns — the acknowledgment is the
// durability contract) and the memtable, updates the per-campaign pair
// state and the incremental alias index, and flushes if the memtable is
// full. Re-adding an IP within the same campaign supersedes the earlier
// sample.
func (s *Store) Add(o *core.Observation) error {
	s.mu.Lock()
	if s.campaign == 0 {
		s.mu.Unlock()
		return ErrNoCampaign
	}
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.addLocked(o)
	needFlush := s.mem.len() >= s.opt.FlushThreshold
	wf, end, err := s.commitLocked()
	if err == nil && needFlush {
		err = s.freezeLocked()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if wf != nil {
		if err := wf.sync(s.d, end); err != nil {
			return s.fail(err)
		}
	}
	if needFlush {
		return s.flushPending()
	}
	return nil
}

// addLocked is the ingest step proper; the caller holds s.mu, has verified
// a campaign is open, and is responsible for committing the log buffer and
// flushing afterwards. Batched ingest amortizes the lock, the log append
// and the fsync across many samples by calling this in a loop.
func (s *Store) addLocked(o *core.Observation) {
	s.seq++
	sm := sampleFrom(o, s.campaign, s.seq)
	if s.d != nil {
		s.walBuf = appendWALSample(s.walBuf, &sm)
	}
	s.mem.add(sm)
	s.ingested++
	s.known[o.IP] = struct{}{}
	if len(o.EngineID) > 0 {
		s.engines[string(o.EngineID)] = struct{}{}
	}
	s.cur[o.IP] = o
	s.aidx.update(o.IP, s.prev[o.IP], o)
	s.mutateLocked()
}

// commitLocked drains the pending log records to the current WAL file in
// one append. The caller must sync the returned file through the returned
// offset — outside the store lock — before acknowledging.
func (s *Store) commitLocked() (*walFile, int64, error) {
	if s.d == nil || len(s.walBuf) == 0 {
		return nil, 0, nil
	}
	wf := s.wal
	end, err := wf.append(s.d, s.walBuf)
	s.walBuf = s.walBuf[:0]
	if err != nil {
		if s.diskErr == nil {
			s.diskErr = err
		}
		return nil, 0, err
	}
	return wf, end, nil
}

// freezeLocked retires the memtable to the frozen queue and rotates the
// write-ahead log, so the flusher can build and persist the segment without
// the store lock. The caller must have drained walBuf (commitLocked) first:
// pending records belong to the generation being frozen.
func (s *Store) freezeLocked() error {
	if s.mem.len() == 0 {
		return nil
	}
	f := &frozenMem{samples: s.mem.samples, walNames: s.walNames}
	if s.wal != nil {
		f.walRefs = []*walFile{s.wal}
	}
	s.frozen = append(s.frozen, f)
	s.mem = newMemtable()
	s.walNames = nil
	if s.d != nil {
		wf, err := s.d.createWAL()
		if err != nil {
			s.wal = nil
			if s.diskErr == nil {
				s.diskErr = err
			}
			return err
		}
		s.wal = wf
		s.walNames = []string{wf.name}
	}
	return nil
}

// AddCampaign begins a new campaign and ingests every observation of c in
// address order (deterministic segment contents). Returns the campaign
// sequence number.
//
// Deprecated: use [Store.Ingest], which supports cancellation mid-campaign.
func (s *Store) AddCampaign(c *core.Campaign) uint64 {
	n, _ := s.Ingest(context.Background(), c)
	return n
}

// ingestCheckEvery is how many samples Ingest adds between context checks.
const ingestCheckEvery = 256

// Ingest begins a new campaign and adds every observation of c in address
// order (deterministic segment contents), checking ctx between batches.
// Batches are split at the flush threshold, so the memtable never
// overshoots it no matter how large the campaign; each batch is logged,
// fsynced and — when the threshold is reached — flushed before the next
// begins. On cancellation it stops early and returns ctx's error; the
// samples already added remain in the store as a partial campaign (queries
// observe them, and the next campaign ingest supersedes the pair state as
// usual). Returns the campaign sequence number.
func (s *Store) Ingest(ctx context.Context, c *core.Campaign) (uint64, error) {
	span := s.tracer.Start("store.ingest")
	defer span.End()
	n, err := s.BeginCampaign()
	if err != nil {
		return n, err
	}
	ips := c.SortedIPs()
	for i := 0; i < len(ips); {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		s.mu.Lock()
		if err := s.usableLocked(); err != nil {
			s.mu.Unlock()
			return n, err
		}
		// One lock acquisition, one log append and one fsync per batch;
		// the batch is capped at the flush boundary so the memtable never
		// exceeds the threshold.
		batch := ingestCheckEvery
		if room := s.opt.FlushThreshold - s.mem.len(); room < batch {
			batch = room
		}
		end := i + batch
		if end > len(ips) {
			end = len(ips)
		}
		s.mem.reserve(end - i)
		for ; i < end; i++ {
			s.addLocked(c.ByIP[ips[i]])
		}
		needFlush := s.mem.len() >= s.opt.FlushThreshold
		wf, off, err := s.commitLocked()
		if err == nil && needFlush {
			err = s.freezeLocked()
		}
		s.mu.Unlock()
		if err != nil {
			return n, err
		}
		if wf != nil {
			if err := wf.sync(s.d, off); err != nil {
				return n, s.fail(err)
			}
		}
		if needFlush {
			if err := s.flushPending(); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Flush seals the memtable into an immutable segment immediately.
func (s *Store) Flush() error {
	s.mu.Lock()
	err := s.freezeLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.flushPending()
}

// mutateLocked marks store state changed: bumps the version and drops the
// cached view.
func (s *Store) mutateLocked() {
	s.version++
	s.viewValid = false
	s.view = nil
}

// manifestLocked renders the manifest for the current installed state.
func (s *Store) manifestLocked() *manifest {
	m := &manifest{
		Version:   1,
		Campaigns: s.campaign,
		Seq:       s.durableSeq,
		NextFile:  s.d.nextFile.Load(),
	}
	for _, g := range s.segs {
		if g.file != "" {
			m.Segments = append(m.Segments, g.file)
		}
	}
	return m
}

// flushPending drains the frozen queue: for each generation it builds the
// sorted, indexed segment and (durably) writes it to disk — all without the
// store lock, so concurrent Ingest and Snapshot callers never stall behind
// segment construction — then briefly re-locks to install it, commits the
// manifest, and deletes the generation's write-ahead log.
func (s *Store) flushPending() error {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	for {
		s.mu.Lock()
		if len(s.frozen) == 0 {
			s.mu.Unlock()
			return nil
		}
		f := s.frozen[0]
		seg := f.seg
		s.mu.Unlock()

		span := s.tracer.Start("store.flush")
		if seg == nil {
			// A concurrent snapshot may have built it already; otherwise
			// sort and index here, outside the store lock.
			seg = (&memtable{samples: f.samples}).freeze()
		}
		if s.d != nil {
			name := fileName(s.d.nextFile.Add(1), ".seg")
			if err := s.d.writeSegmentFile(name, seg, !s.opt.DisableBloom); err != nil {
				span.End()
				return s.fail(err)
			}
			// Install the just-written file's lazy (mmap-backed, bloom-
			// screened) form rather than the eager build: the heap copy is
			// released, and reads immediately benefit from the filter.
			lzg, err := openSegment(s.d.dir, name, s.segStat, false)
			if err != nil {
				span.End()
				return s.fail(err)
			}
			seg = lzg
		}

		var man *manifest
		s.mu.Lock()
		f.seg = seg
		s.segs = append(s.segs, seg)
		s.frozen = s.frozen[1:]
		s.flushes++
		if n := len(f.samples); n > 0 {
			if last := f.samples[n-1].Seq; last > s.durableSeq {
				s.durableSeq = last
			}
		}
		if s.d != nil {
			man = s.manifestLocked()
		}
		s.mutateLocked()
		s.mu.Unlock()
		span.End()

		if s.d != nil {
			if err := s.d.writeManifest(man); err != nil {
				return s.fail(err)
			}
			s.publishRepl(man)
			// The generation is durable in its segment; its log is now
			// redundant.
			for _, wf := range f.walRefs {
				wf.retire()
			}
			for _, name := range f.walNames {
				if err := s.d.removeWAL(name); err != nil {
					return s.fail(err)
				}
			}
		}
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
}

func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			// Errors latch diskErr; the next mutation reports them.
			_ = s.compactIfNeeded(s.opt.MaxSegments)
		}
	}
}

// Compact merges all current segments into one, discarding superseded
// samples, regardless of the MaxSegments trigger.
func (s *Store) Compact() error {
	return s.compactIfNeeded(2)
}

// compactIfNeeded merges when at least minSegs segments exist. The merge —
// and, durably, the merged segment's file write — runs without the store
// lock; diskMu excludes the flusher, so the merged prefix cannot change
// underneath (the stability check stays as a cheap invariant). The swap
// commits via the manifest before the superseded segment files are
// deleted, so no crash point loses data.
func (s *Store) compactIfNeeded(minSegs int) error {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	s.mu.Lock()
	if len(s.segs) < minSegs || s.diskErr != nil {
		err := s.diskErr
		s.mu.Unlock()
		return err
	}
	prefix := s.segs[:len(s.segs):len(s.segs)]
	s.mu.Unlock()

	span := s.tracer.Start("store.compact")
	merged, dropped, err := mergeSegments(prefix)
	span.End()
	if err != nil {
		return s.fail(err)
	}

	if s.d != nil {
		name := fileName(s.d.nextFile.Add(1), ".seg")
		if err := s.d.writeSegmentFile(name, merged, !s.opt.DisableBloom); err != nil {
			return s.fail(err)
		}
		lzg, err := openSegment(s.d.dir, name, s.segStat, false)
		if err != nil {
			return s.fail(err)
		}
		merged = lzg
	}

	var man *manifest
	s.mu.Lock()
	same := len(s.segs) >= len(prefix)
	if same {
		for i := range prefix {
			if s.segs[i] != prefix[i] {
				same = false
				break
			}
		}
	}
	if !same {
		// Unreachable while diskMu serializes segment mutators; the merged
		// file, if any, is swept as an orphan on the next open.
		s.mu.Unlock()
		return nil
	}
	rest := s.segs[len(prefix):]
	next := make([]*segment, 0, 1+len(rest))
	next = append(next, merged)
	next = append(next, rest...)
	s.segs = next
	s.compactions++
	s.superseded += uint64(dropped)
	if s.d != nil {
		man = s.manifestLocked()
	}
	s.mutateLocked()
	s.mu.Unlock()

	if s.d != nil {
		if err := s.d.writeManifest(man); err != nil {
			return s.fail(err)
		}
		s.publishRepl(man)
		for _, g := range prefix {
			if g.file != "" {
				if err := s.d.removeSegment(g.file); err != nil {
					return s.fail(err)
				}
			}
		}
	}
	return nil
}

// Snapshot returns an immutable view of the store. Views are cached: until
// the next mutation, every caller shares one view, and building it costs
// one memtable freeze plus one alias-set materialization. View methods
// never take the store lock, so queries never block ingest.
func (s *Store) Snapshot() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.viewValid {
		return s.view
	}
	segs := make([]*segment, 0, len(s.segs)+len(s.frozen)+1)
	segs = append(segs, s.segs...)
	for _, f := range s.frozen {
		if f.seg == nil {
			f.seg = (&memtable{samples: f.samples}).freeze()
		}
		segs = append(segs, f.seg)
	}
	if s.mem.len() > 0 {
		segs = append(segs, s.mem.freeze())
	}
	sets, vendors, byEngine := s.aidx.materialize()
	v := &View{
		segs:      segs,
		campaigns: s.campaign,
		sets:      sets,
		vendors:   vendors,
		byEngine:  byEngine,
		stats:     s.statsLocked(),
	}
	s.view = v
	s.viewValid = true
	return v
}

// statsLocked renders the point-in-time Stats under s.mu. Shared by
// Snapshot and the replication publisher (replicas serve the primary's
// stats verbatim, so both must render from the same fields).
func (s *Store) statsLocked() Stats {
	segSamples := 0
	for _, g := range s.segs {
		segSamples += g.length()
	}
	return Stats{
		Version:           s.version,
		Campaigns:         s.campaign,
		Ingested:          s.ingested,
		MemSamples:        s.memSamplesLocked(),
		Segments:          len(s.segs),
		SegmentSamples:    segSamples,
		Flushes:           s.flushes,
		Compactions:       s.compactions,
		Superseded:        s.superseded,
		TrackedIPs:        len(s.known),
		CurrentResponsive: len(s.cur),
		Devices:           len(s.engines),
		AliasSets:         s.aidx.setCount(),
		Vendors:           s.aidx.vendorCount(),
	}
}
