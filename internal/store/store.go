// Package store is the fingerprint observation store behind cmd/snmpfpd: a
// log-structured, append-only home for SNMPv3 scan campaigns that turns the
// batch pipeline (scan → NDJSON → re-read everything) into an incrementally
// updated, query-serving system.
//
// Writes land in an in-memory memtable that is frozen into immutable sorted
// segments at campaign boundaries (and when it outgrows its threshold); a
// background compactor merges segments and discards superseded samples.
// Each segment carries a per-IP and a per-engine-ID index. Readers obtain a
// View — an immutable snapshot of segments, alias sets and tallies — so
// queries never block ingest and never observe a half-applied campaign
// ingest step.
//
// Alias sets (Section 5) and vendor tallies (Section 6) over the two most
// recent campaigns are maintained incrementally on ingest; their results
// are byte-identical to the batch filter.Run + alias.Resolve pipeline.
package store

import (
	"context"
	"errors"
	"net/netip"
	"sync"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/obs"
)

// Options tunes a store.
type Options struct {
	// FlushThreshold is how many memtable samples trigger a flush to an
	// immutable segment (default 4096). Campaign boundaries always flush.
	FlushThreshold int
	// MaxSegments is the segment count at which the background compactor
	// merges (default 6).
	MaxSegments int
	// Variant is the alias-resolution rule (default alias.Default, the
	// paper's "Divide by 20 both").
	Variant alias.Variant
	// DisableCompaction turns the background compactor off; Compact can
	// still be called explicitly. Used by tests that assert segment
	// layouts.
	DisableCompaction bool
	// Obs, when non-nil, receives the store's metrics: ingest/flush/
	// compaction counters, memtable and segment gauges (read-time
	// callbacks over the live state, so they reconcile exactly with
	// Stats), a compaction-duration histogram, and store.ingest /
	// store.flush / store.compact spans (see DESIGN.md §10).
	Obs *obs.Registry
}

func (o *Options) fill() {
	if o.FlushThreshold <= 0 {
		o.FlushThreshold = 4096
	}
	if o.MaxSegments < 2 {
		o.MaxSegments = 6
	}
	zero := alias.Variant{}
	if o.Variant == zero {
		o.Variant = alias.Default
	}
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	// Version increments on every mutation; snapshots taken later never
	// carry a smaller version.
	Version uint64 `json:"version"`
	// Campaigns is how many campaigns have been begun.
	Campaigns uint64 `json:"campaigns"`
	// Ingested counts samples ever accepted.
	Ingested uint64 `json:"ingested"`
	// MemSamples is the current memtable population.
	MemSamples int `json:"mem_samples"`
	// Segments and SegmentSamples describe the immutable layer.
	Segments       int `json:"segments"`
	SegmentSamples int `json:"segment_samples"`
	// Flushes and Compactions count memtable freezes and segment merges.
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
	// Superseded counts samples discarded by compaction because a later
	// sample for the same (IP, campaign) replaced them.
	Superseded uint64 `json:"superseded"`
	// TrackedIPs is how many distinct IPs have ever been observed;
	// CurrentResponsive how many answered the current campaign so far.
	TrackedIPs        int `json:"tracked_ips"`
	CurrentResponsive int `json:"current_responsive"`
	// Devices is how many distinct engine IDs have ever been observed.
	Devices int `json:"devices"`
	// AliasSets and Vendors describe the live incremental resolution over
	// the latest campaign pair.
	AliasSets int `json:"alias_sets"`
	Vendors   int `json:"vendors"`
}

// Store is the fingerprint observation store. All methods are safe for
// concurrent use.
type Store struct {
	opt Options

	mu       sync.Mutex
	mem      *memtable
	segs     []*segment // immutable elements; slice rebuilt on change
	seq      uint64
	campaign uint64
	// prev and cur map IPs to their observation in the previous and
	// current campaign — the pair the alias index resolves over.
	prev, cur map[netip.Addr]*core.Observation
	aidx      *aliasIndex
	known     map[netip.Addr]struct{}
	engines   map[string]struct{}

	version     uint64
	ingested    uint64
	flushes     uint64
	compactions uint64
	superseded  uint64

	view      *View
	viewValid bool

	compactCh chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// tracer times ingest/flush/compact spans on the wall clock; it is a
	// no-op when Options.Obs is unset.
	tracer *obs.Tracer
}

// ErrNoCampaign is returned by Add before any BeginCampaign call.
var ErrNoCampaign = errors.New("store: no campaign begun")

// Open creates a store and starts its background compactor.
func Open(opt Options) *Store {
	opt.fill()
	s := &Store{
		opt:       opt,
		mem:       newMemtable(),
		prev:      map[netip.Addr]*core.Observation{},
		cur:       map[netip.Addr]*core.Observation{},
		aidx:      newAliasIndex(opt.Variant),
		known:     map[netip.Addr]struct{}{},
		engines:   map[string]struct{}{},
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
		tracer:    obs.NewTracer(opt.Obs, nil),
	}
	s.registerMetrics(opt.Obs)
	if !opt.DisableCompaction {
		s.wg.Add(1)
		go s.compactor()
	}
	return s
}

// registerMetrics republishes the store's counters and layout gauges as
// read-time callbacks, so scrapes reconcile exactly with Stats() without
// adding a single write to the ingest path.
func (s *Store) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	counters := []struct {
		name string
		read func() float64
	}{
		{"snmpfp_store_ingested_total", func() float64 { return float64(s.ingested) }},
		{"snmpfp_store_flushes_total", func() float64 { return float64(s.flushes) }},
		{"snmpfp_store_compactions_total", func() float64 { return float64(s.compactions) }},
		{"snmpfp_store_superseded_total", func() float64 { return float64(s.superseded) }},
	}
	for _, c := range counters {
		read := locked(c.read)
		reg.CounterFunc(c.name, func() uint64 { return uint64(read()) })
	}
	gauges := []struct {
		name string
		read func() float64
	}{
		{"snmpfp_store_mem_samples", func() float64 { return float64(s.mem.len()) }},
		{"snmpfp_store_segments", func() float64 { return float64(len(s.segs)) }},
		{"snmpfp_store_campaigns", func() float64 { return float64(s.campaign) }},
		{"snmpfp_store_tracked_ips", func() float64 { return float64(len(s.known)) }},
		{"snmpfp_store_devices", func() float64 { return float64(len(s.engines)) }},
	}
	for _, g := range gauges {
		reg.GaugeFunc(g.name, locked(g.read))
	}
	reg.Help("snmpfp_store_ingested_total", "samples ever accepted")
	reg.Help("snmpfp_store_flushes_total", "memtable freezes into immutable segments")
	reg.Help("snmpfp_store_compactions_total", "segment merges completed")
	reg.Help("snmpfp_store_superseded_total", "samples discarded by compaction as superseded")
	reg.Help("snmpfp_store_mem_samples", "current memtable population")
	reg.Help("snmpfp_store_segments", "immutable segment count")
	reg.Help("snmpfp_store_campaigns", "campaigns begun")
	reg.Help("snmpfp_store_tracked_ips", "distinct IPs ever observed")
	reg.Help("snmpfp_store_devices", "distinct engine IDs ever observed")
}

// Close stops the background compactor. The store stays queryable.
func (s *Store) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// BeginCampaign seals the current campaign (flushing its samples to a
// segment) and starts the next one, advancing the alias pair to (previous,
// new). Returns the new campaign's 1-based sequence number.
func (s *Store) BeginCampaign() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.campaign++
	s.prev = s.cur
	s.cur = map[netip.Addr]*core.Observation{}
	s.aidx.reset([2]uint64{s.campaign - 1, s.campaign})
	s.mutateLocked()
	return s.campaign
}

// Add ingests one observation into the current campaign: it lands in the
// memtable, updates the per-campaign pair state and the incremental alias
// index, and flushes if the memtable is full. Re-adding an IP within the
// same campaign supersedes the earlier sample.
func (s *Store) Add(o *core.Observation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.campaign == 0 {
		return ErrNoCampaign
	}
	s.addLocked(o)
	return nil
}

// addLocked is the ingest step proper; the caller holds s.mu and has
// verified a campaign is open. Batched ingest amortizes the lock and the
// memtable growth across many samples by calling this in a loop.
func (s *Store) addLocked(o *core.Observation) {
	s.seq++
	s.mem.add(sampleFrom(o, s.campaign, s.seq))
	s.ingested++
	s.known[o.IP] = struct{}{}
	if len(o.EngineID) > 0 {
		s.engines[string(o.EngineID)] = struct{}{}
	}
	s.cur[o.IP] = o
	s.aidx.update(o.IP, s.prev[o.IP], o)
	s.mutateLocked()
	if s.mem.len() >= s.opt.FlushThreshold {
		s.flushLocked()
	}
}

// AddCampaign begins a new campaign and ingests every observation of c in
// address order (deterministic segment contents). Returns the campaign
// sequence number.
//
// Deprecated: use Ingest, which supports cancellation mid-campaign.
func (s *Store) AddCampaign(c *core.Campaign) uint64 {
	n, _ := s.Ingest(context.Background(), c)
	return n
}

// ingestCheckEvery is how many samples Ingest adds between context checks.
const ingestCheckEvery = 256

// Ingest begins a new campaign and adds every observation of c in address
// order (deterministic segment contents), checking ctx between batches.
// On cancellation it stops early and returns ctx's error; the samples
// already added remain in the store as a partial campaign (queries observe
// them, and the next campaign ingest supersedes the pair state as usual).
// Returns the campaign sequence number.
func (s *Store) Ingest(ctx context.Context, c *core.Campaign) (uint64, error) {
	span := s.tracer.Start("store.ingest")
	defer span.End()
	n := s.BeginCampaign()
	ips := c.SortedIPs()
	for start := 0; start < len(ips); start += ingestCheckEvery {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		end := start + ingestCheckEvery
		if end > len(ips) {
			end = len(ips)
		}
		// One lock acquisition and one memtable growth per batch; the flush
		// threshold is still honored per sample inside addLocked.
		s.mu.Lock()
		s.mem.reserve(end - start)
		for _, ip := range ips[start:end] {
			s.addLocked(c.ByIP[ip])
		}
		s.mu.Unlock()
	}
	return n, nil
}

// Flush seals the memtable into an immutable segment immediately.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// mutateLocked marks store state changed: bumps the version and drops the
// cached view.
func (s *Store) mutateLocked() {
	s.version++
	s.viewValid = false
	s.view = nil
}

func (s *Store) flushLocked() {
	if s.mem.len() == 0 {
		return
	}
	defer s.tracer.Start("store.flush").End()
	seg := s.mem.freeze()
	s.segs = append(s.segs, seg)
	s.mem = newMemtable()
	s.flushes++
	s.mutateLocked()
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			s.compactIfNeeded(s.opt.MaxSegments)
		}
	}
}

// Compact merges all current segments into one, discarding superseded
// samples, regardless of the MaxSegments trigger.
func (s *Store) Compact() {
	s.compactIfNeeded(2)
}

// compactIfNeeded merges when at least minSegs segments exist. The merge
// itself runs without the store lock: flushes may append new segments
// meanwhile, and only the prefix that was merged is replaced. A single
// compactor mutates the prefix at a time (the background goroutine, or an
// explicit Compact call), so the prefix snapshot stays valid; concurrent
// explicit calls are serialized by the store lock around the swap and at
// worst re-merge an already-compacted prefix.
func (s *Store) compactIfNeeded(minSegs int) {
	s.mu.Lock()
	if len(s.segs) < minSegs {
		s.mu.Unlock()
		return
	}
	prefix := s.segs[:len(s.segs):len(s.segs)]
	s.mu.Unlock()

	span := s.tracer.Start("store.compact")
	merged, dropped := mergeSegments(prefix)
	span.End()

	s.mu.Lock()
	same := len(s.segs) >= len(prefix)
	if same {
		for i := range prefix {
			if s.segs[i] != prefix[i] {
				same = false
				break
			}
		}
	}
	if !same {
		// Someone else replaced the prefix; drop this merge.
		s.mu.Unlock()
		return
	}
	rest := s.segs[len(prefix):]
	next := make([]*segment, 0, 1+len(rest))
	next = append(next, merged)
	next = append(next, rest...)
	s.segs = next
	s.compactions++
	s.superseded += uint64(dropped)
	s.mutateLocked()
	s.mu.Unlock()
}

// Snapshot returns an immutable view of the store. Views are cached: until
// the next mutation, every caller shares one view, and building it costs
// one memtable freeze plus one alias-set materialization. View methods
// never take the store lock, so queries never block ingest.
func (s *Store) Snapshot() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.viewValid {
		return s.view
	}
	segs := make([]*segment, 0, len(s.segs)+1)
	segs = append(segs, s.segs...)
	segSamples := 0
	for _, g := range s.segs {
		segSamples += len(g.samples)
	}
	if s.mem.len() > 0 {
		segs = append(segs, s.mem.freeze())
	}
	sets, vendors, byEngine := s.aidx.materialize()
	v := &View{
		segs:      segs,
		campaigns: s.campaign,
		sets:      sets,
		vendors:   vendors,
		byEngine:  byEngine,
		stats: Stats{
			Version:           s.version,
			Campaigns:         s.campaign,
			Ingested:          s.ingested,
			MemSamples:        s.mem.len(),
			Segments:          len(s.segs),
			SegmentSamples:    segSamples,
			Flushes:           s.flushes,
			Compactions:       s.compactions,
			Superseded:        s.superseded,
			TrackedIPs:        len(s.known),
			CurrentResponsive: len(s.cur),
			Devices:           len(s.engines),
			AliasSets:         len(sets),
			Vendors:           len(vendors),
		},
	}
	s.view = v
	s.viewValid = true
	return v
}
