package store

import "encoding/binary"

// Split-block bloom filter over a segment's IP and engine-ID keys,
// consulted before any index probe so a cold negative lookup touches zero
// segment bytes. The layout is the cache-friendly SBBF of Putze et al. (the
// parquet variant): the filter is an array of 32-byte blocks, each key
// hashes to one block and sets/tests one bit in each of the block's eight
// 32-bit words — one cache line per query instead of k scattered probes.
//
// Keys are namespaced by a one-byte prefix so an IP can never alias an
// engine ID: 'i' + the 4- or 16-byte address, 'e' + the raw engine-ID
// bytes (see bloomIPKey / bloomEngineKey).

// sbbfBlockSize is one filter block: 8 words × 32 bits = 256 bits.
const sbbfBlockSize = 32

// segBloomBitsPerKey sizes the filter at segment-write time. 16 bits/key
// puts the SBBF false-positive rate well under 1% (≈0.1%); the FPR test
// pins that headroom.
const segBloomBitsPerKey = 16

// sbbfSalts are the per-word odd multipliers (the parquet constants); each
// picks an independent bit position inside its word.
var sbbfSalts = [8]uint32{
	0x47b6137b, 0x44974d91, 0x8824ad5b, 0xa2b7289d,
	0x705495c7, 0x2df1424b, 0x9efc4947, 0x5c6bfb31,
}

// sbbf is the filter over its raw block bytes; the zero value (no blocks)
// is the "absent" filter whose mayContain always answers true, which is
// exactly the semantics old no-filter segments need.
type sbbf struct {
	blocks []byte // len is a multiple of sbbfBlockSize
}

// newSBBF sizes a filter for nKeys at bitsPerKey.
func newSBBF(nKeys, bitsPerKey int) sbbf {
	if nKeys < 1 {
		nKeys = 1
	}
	nBlocks := (nKeys*bitsPerKey + sbbfBlockSize*8 - 1) / (sbbfBlockSize * 8)
	if nBlocks < 1 {
		nBlocks = 1
	}
	return sbbf{blocks: make([]byte, nBlocks*sbbfBlockSize)}
}

// splitmix64 finalizes the FNV hash: FNV-1a alone is too regular over
// structured keys (sequential IPs differ in one byte), and the block index
// consumes the high bits where FNV mixes worst.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func bloomHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return splitmix64(h)
}

// blockOf maps the hash's high 32 bits onto a block index without a modulo
// (Lemire's multiply-shift range reduction).
func (f sbbf) blockOf(h uint64) int {
	nBlocks := uint64(len(f.blocks) / sbbfBlockSize)
	return int(((h >> 32) * nBlocks) >> 32)
}

func (f sbbf) add(key []byte) {
	h := bloomHash(key)
	blk := f.blocks[f.blockOf(h)*sbbfBlockSize:]
	x := uint32(h)
	for i, salt := range sbbfSalts {
		bit := (x * salt) >> 27 // top 5 bits: position within the word
		w := binary.LittleEndian.Uint32(blk[i*4:])
		binary.LittleEndian.PutUint32(blk[i*4:], w|1<<bit)
	}
}

// mayContain reports whether the key might be present; false is definitive.
// An empty (absent) filter answers true for everything.
func (f sbbf) mayContain(key []byte) bool {
	if len(f.blocks) == 0 {
		return true
	}
	h := bloomHash(key)
	blk := f.blocks[f.blockOf(h)*sbbfBlockSize:]
	x := uint32(h)
	for i, salt := range sbbfSalts {
		bit := (x * salt) >> 27
		if binary.LittleEndian.Uint32(blk[i*4:])&(1<<bit) == 0 {
			return false
		}
	}
	return true
}

// bloomIPKey renders the namespaced filter key for an address. The scratch
// byte array keeps the hot negative-lookup path allocation-free.
func bloomIPKey(dst []byte, addrLen int, addr []byte) []byte {
	dst = append(dst[:0], 'i')
	return append(dst, addr[:addrLen]...)
}

// bloomEngineKey renders the namespaced filter key for an engine ID.
func bloomEngineKey(dst []byte, id []byte) []byte {
	dst = append(dst[:0], 'e')
	return append(dst, id...)
}
