package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/lru"
)

// Sample is one stored observation: what a single campaign saw at one IP.
// Samples are immutable once ingested; a later sample for the same
// (IP, campaign, protocol) supersedes the earlier one (re-ingesting a
// corrected campaign file), with compaction discarding the loser.
type Sample struct {
	IP       netip.Addr
	Campaign uint64
	// Seq is the store-global ingest sequence number; among samples with
	// equal (IP, Campaign, Protocol) the highest Seq wins.
	Seq uint64
	// Protocol names the probe module that produced the sample; "" is
	// SNMPv3 discovery (the legacy single-protocol schema). Non-SNMP
	// samples reuse EngineID to carry the module's alias key bytes and
	// stay out of the SNMP-specific derived state (engine index, alias
	// pipeline, /v1/ip history).
	Protocol     string
	EngineID     []byte
	Boots        int64
	EngineTime   int64
	ReceivedAt   time.Time
	Packets      int
	Inconsistent bool
}

// LastReboot derives the restart instant exactly as core.Observation does.
func (s *Sample) LastReboot() time.Time {
	return s.ReceivedAt.Add(-time.Duration(s.EngineTime) * time.Second)
}

// Observation converts the sample back to the pipeline's native type.
func (s *Sample) Observation() *core.Observation {
	return &core.Observation{
		IP:           s.IP,
		EngineID:     s.EngineID,
		EngineBoots:  s.Boots,
		EngineTime:   s.EngineTime,
		ReceivedAt:   s.ReceivedAt,
		Packets:      s.Packets,
		Inconsistent: s.Inconsistent,
	}
}

func sampleFrom(o *core.Observation, campaign, seq uint64) Sample {
	return Sample{
		IP:           o.IP,
		Campaign:     campaign,
		Seq:          seq,
		EngineID:     o.EngineID,
		Boots:        o.EngineBoots,
		EngineTime:   o.EngineTime,
		ReceivedAt:   o.ReceivedAt,
		Packets:      o.Packets,
		Inconsistent: o.Inconsistent,
	}
}

// sampleLess is the canonical segment order: (IP, Campaign, Protocol, Seq).
// Protocol "" (SNMPv3) sorts first within a campaign, so the legacy
// single-protocol layout is unchanged when no multi-protocol evidence
// exists.
func sampleLess(a, b *Sample) bool {
	if a.IP != b.IP {
		return a.IP.Less(b.IP)
	}
	if a.Campaign != b.Campaign {
		return a.Campaign < b.Campaign
	}
	if a.Protocol != b.Protocol {
		return a.Protocol < b.Protocol
	}
	return a.Seq < b.Seq
}

// span is a half-open index range into a segment's sample slice.
type span struct{ lo, hi int }

// segStats is the shared read-tier plumbing every lazily opened segment of
// one store (or replica) hangs off: the bytes-read accounting behind the
// bloom-effectiveness bench, the decoded-block cache, and the id counter
// that keys cache entries per segment incarnation.
type segStats struct {
	// queryBytes counts segment bytes actually touched by point lookups —
	// index entries probed plus sample bytes decoded. Bloom probes and
	// block-cache hits cost zero, which is exactly the number the
	// cold-negative-lookup acceptance criterion is measured on.
	queryBytes atomic.Uint64
	nextSegID  atomic.Uint64
	// blocks caches decoded per-IP sample runs, keyed (segment id, addr);
	// nil disables.
	blocks *lru.Cache[[]Sample]
}

// segment is one immutable sorted run of samples with its per-IP and
// per-engine-ID indexes. Segments are never mutated after construction, so
// readers touch them without synchronization.
//
// A segment is either eager (samples + maps in the heap: freshly built
// memtable freezes, merges in flight, v2 files) or lazy (lz != nil: a v3
// file served straight from its mapped bytes, decoding per-IP runs on
// demand). All reads go through the accessor methods below, which hide the
// difference.
type segment struct {
	samples []Sample
	byIP    map[netip.Addr]span
	// engines maps an engine ID (raw bytes as string) to the sorted,
	// deduplicated IPs that reported it in this segment.
	engines map[string][]netip.Addr
	// file is the on-disk file backing this segment (base name within the
	// store directory); empty for in-memory segments and the transient
	// segments snapshots freeze. Set once before the segment is installed,
	// never read by view code.
	file string

	// lz, when non-nil, is the lazy mmap-backed representation; samples/
	// byIP/engines above are then unused (nil).
	lz *lazySeg
}

// lazySeg serves a v3 segment file from its raw (typically mmap'd) bytes.
type lazySeg struct {
	rd      segReader
	sblk    []byte // sample block, count header included
	count   int
	ip4     []byte // fixed-width v4 index entries, ascending
	ip6     []byte
	n4, n6  int
	engOffs []byte // nEng × u32 offsets into engBlk
	engBlk  []byte
	nEng    int
	filter  sbbf // zero value when the file carries no bloom
	// minC/maxC bound the campaigns present, so recovery and per-campaign
	// scans skip whole segments from the footer alone.
	minC, maxC uint64
	st         *segStats
	id         uint64
}

func (lz *lazySeg) read(n int) {
	if lz.st != nil {
		lz.st.queryBytes.Add(uint64(n))
	}
}

// ipEntry binary-searches the fixed-width index for addr, returning the
// entry bytes (ip | flags | lo | hi | off) or nil.
func (lz *lazySeg) ipEntry(addr netip.Addr) []byte {
	var key []byte
	var tbl []byte
	var width, ipLen, n int
	if addr.Is4() {
		a := addr.As4()
		key, tbl, width, ipLen, n = a[:], lz.ip4, segIPEntry4, 4, lz.n4
	} else {
		a := addr.As16()
		key, tbl, width, ipLen, n = a[:], lz.ip6, segIPEntry6, 16, lz.n6
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		e := tbl[mid*width : mid*width+width]
		lz.read(width)
		switch bytes.Compare(e[:ipLen], key) {
		case 0:
			return e
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return nil
}

// decodeSpan decodes the n samples starting at byte offset off within the
// sample block.
func (lz *lazySeg) decodeSpan(off, n int) ([]Sample, error) {
	b := lz.sblk[off:]
	out := make([]Sample, 0, n)
	read := 0
	for i := 0; i < n; i++ {
		sm, sz, err := decodeSampleEnc(b)
		if err != nil {
			return nil, fmt.Errorf("store: segment %d sample decode at %d: %w", lz.id, off+read, err)
		}
		out = append(out, sm)
		b = b[sz:]
		read += sz
	}
	lz.read(read)
	return out, nil
}

// ipSamples returns the segment's samples for addr (all protocols), nil if
// absent. The bloom filter screens first (zero bytes touched on a true
// negative), then the index probe, then the block cache or a decode.
func (lz *lazySeg) ipSamples(addr netip.Addr) []Sample {
	var scratch [17]byte
	if addr.Is4() {
		a := addr.As4()
		if !lz.filter.mayContain(bloomIPKey(scratch[:0], 4, a[:])) {
			return nil
		}
	} else {
		a := addr.As16()
		if !lz.filter.mayContain(bloomIPKey(scratch[:0], 16, a[:])) {
			return nil
		}
	}
	ipLen := 4
	if !addr.Is4() {
		ipLen = 16
	}
	// The cache key is (segment id, addr) — independent of the index entry —
	// so a warm hit skips the index probe entirely and reads zero bytes.
	var key string
	if lz.st != nil && lz.st.blocks != nil {
		var kb [32]byte
		k := binary.LittleEndian.AppendUint64(kb[:0], lz.id)
		k = append(k, scratch[:1+ipLen]...)
		key = string(k)
		if cached, ok := lz.st.blocks.Get(key); ok {
			return cached
		}
	}
	e := lz.ipEntry(addr)
	if e == nil {
		return nil
	}
	spanLo := int(binary.LittleEndian.Uint32(e[ipLen+1:]))
	spanHi := int(binary.LittleEndian.Uint32(e[ipLen+5:]))
	off := int(binary.LittleEndian.Uint32(e[ipLen+9:]))
	out, err := lz.decodeSpan(off, spanHi-spanLo)
	if err != nil {
		// The index and bloom blocks were verified at open; a decode
		// failure here means the mapped file was corrupted underneath a
		// live store. Fail stop, like the SIGBUS an externally truncated
		// mapping would raise.
		panic(err)
	}
	if key != "" {
		lz.st.blocks.Put(key, out, sampleSliceCost(out))
	}
	return out
}

// engineIPs returns every IP recorded for the engine ID, nil if absent.
func (lz *lazySeg) engineIPs(id []byte) []netip.Addr {
	if len(id) == 0 || lz.nEng == 0 {
		return nil
	}
	var scratch [64]byte
	if !lz.filter.mayContain(bloomEngineKey(scratch[:0], id)) {
		return nil
	}
	lo, hi := 0, lz.nEng
	for lo < hi {
		mid := (lo + hi) / 2
		off := int(binary.LittleEndian.Uint32(lz.engOffs[mid*4:]))
		b := lz.engBlk[off:]
		idLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < idLen {
			panic(fmt.Errorf("store: segment %d engine index corrupt at %d", lz.id, off))
		}
		entryID := b[n : n+int(idLen)]
		lz.read(4 + n + int(idLen))
		switch bytes.Compare(entryID, id) {
		case 0:
			b = b[n+int(idLen):]
			nIPs, n := binary.Uvarint(b)
			if n <= 0 {
				panic(fmt.Errorf("store: segment %d engine entry corrupt at %d", lz.id, off))
			}
			b = b[n:]
			ips := make([]netip.Addr, 0, nIPs)
			read := n
			for j := uint64(0); j < nIPs; j++ {
				ip, sz, err := decodeAddr(b)
				if err != nil {
					panic(fmt.Errorf("store: segment %d engine entry corrupt at %d: %w", lz.id, off, err))
				}
				ips = append(ips, ip)
				b = b[sz:]
				read += sz
			}
			lz.read(read)
			return ips
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return nil
}

// scan streams every sample through fn in canonical order. Used by full
// scans (fusion evidence, recovery replay, compaction merges) — nothing is
// retained, so a lazy segment never materializes a heap copy of itself.
func (lz *lazySeg) scan(fn func(*Sample)) error {
	b := lz.sblk
	_, n := binary.Uvarint(b)
	if n <= 0 {
		return fmt.Errorf("store: segment %d sample count corrupt", lz.id)
	}
	b = b[n:]
	for i := 0; i < lz.count; i++ {
		sm, sz, err := decodeSampleEnc(b)
		if err != nil {
			return fmt.Errorf("store: segment %d sample %d: %w", lz.id, i, err)
		}
		fn(&sm)
		b = b[sz:]
	}
	return nil
}

// forEachIPEntry walks the index entries (v4 then v6) without touching the
// sample block; recovery rebuilds the known-IP set from this alone.
func (lz *lazySeg) forEachIPEntry(fn func(addr netip.Addr, flags byte)) {
	for i := 0; i < lz.n4; i++ {
		e := lz.ip4[i*segIPEntry4:]
		fn(netip.AddrFrom4([4]byte(e[:4])), e[4])
	}
	for i := 0; i < lz.n6; i++ {
		e := lz.ip6[i*segIPEntry6:]
		fn(netip.AddrFrom16([16]byte(e[:16])), e[16])
	}
}

// forEachEngineID walks the engine index keys; recovery rebuilds the
// distinct-device set from this alone.
func (lz *lazySeg) forEachEngineID(fn func(id []byte)) {
	for i := 0; i < lz.nEng; i++ {
		off := int(binary.LittleEndian.Uint32(lz.engOffs[i*4:]))
		b := lz.engBlk[off:]
		idLen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < idLen {
			panic(fmt.Errorf("store: segment %d engine index corrupt at %d", lz.id, off))
		}
		fn(b[n : n+int(idLen)])
	}
}

// sampleSliceCost estimates the heap footprint of a decoded sample run for
// the block cache's byte budget.
func sampleSliceCost(samples []Sample) int64 {
	cost := int64(24)
	for i := range samples {
		cost += 112 + int64(len(samples[i].EngineID)) + int64(len(samples[i].Protocol))
	}
	return cost
}

// ---- accessor methods: the one query surface over both representations ----

// length returns the sample count.
func (g *segment) length() int {
	if g.lz != nil {
		return g.lz.count
	}
	return len(g.samples)
}

// ipSamples returns the segment's samples for addr (all protocols) in
// canonical order, nil if absent. Callers must not mutate the result: it
// may be a shared sub-slice (eager) or a cached decode (lazy).
func (g *segment) ipSamples(addr netip.Addr) []Sample {
	if g.lz != nil {
		return g.lz.ipSamples(addr)
	}
	sp, ok := g.byIP[addr]
	if !ok {
		return nil
	}
	return g.samples[sp.lo:sp.hi]
}

// engineIPs returns every IP recorded for the engine ID. Shared; do not
// mutate.
func (g *segment) engineIPs(id []byte) []netip.Addr {
	if g.lz != nil {
		return g.lz.engineIPs(id)
	}
	return g.engines[string(id)]
}

// scan streams every sample through fn in canonical order. The *Sample is
// only valid for the duration of the call.
func (g *segment) scan(fn func(*Sample)) error {
	if g.lz != nil {
		return g.lz.scan(fn)
	}
	for i := range g.samples {
		fn(&g.samples[i])
	}
	return nil
}

// mayContainCampaign reports whether the segment can hold samples of
// campaign c; lazy segments answer from the footer's campaign range, eager
// ones conservatively say yes.
func (g *segment) mayContainCampaign(c uint64) bool {
	if g.lz != nil {
		return c >= g.lz.minC && c <= g.lz.maxC
	}
	return true
}

// mustScan is scan for view paths that have no error channel: a decode
// failure on an open-verified segment is fail-stop.
func (g *segment) mustScan(fn func(*Sample)) {
	if err := g.scan(fn); err != nil {
		panic(err)
	}
}

// buildSegment sorts the samples into canonical order and indexes them. It
// takes ownership of the slice.
func buildSegment(samples []Sample) *segment {
	sort.Slice(samples, func(i, j int) bool { return sampleLess(&samples[i], &samples[j]) })
	g := &segment{
		samples: samples,
		byIP:    make(map[netip.Addr]span),
		engines: make(map[string][]netip.Addr),
	}
	for i := 0; i < len(samples); {
		j := i
		for j < len(samples) && samples[j].IP == samples[i].IP {
			j++
		}
		g.byIP[samples[i].IP] = span{i, j}
		// Groups arrive in ascending IP order, so each engine's IP list is
		// appended in sorted order and dedupes against its own tail: no
		// per-group scratch set needed.
		for k := i; k < j; k++ {
			// Only SNMPv3 samples enter the engine index: non-SNMP
			// protocols reuse EngineID for their alias keys, which must
			// not answer engine-ID device lookups.
			if samples[k].Protocol != "" {
				continue
			}
			id := samples[k].EngineID
			if len(id) == 0 {
				continue
			}
			ips := g.engines[string(id)]
			if len(ips) > 0 && ips[len(ips)-1] == samples[i].IP {
				continue
			}
			g.engines[string(id)] = append(ips, samples[i].IP)
		}
		i = j
	}
	return g
}

// mergeScratch recycles the transient gather-and-sort buffer mergeSegments
// needs. A pool rather than a bare field because explicit Compact calls may
// race the background compactor; each merge checks out its own scratch.
var mergeScratch = sync.Pool{New: func() any { return new([]Sample) }}

// mergeSegments folds several segments (oldest first) into one, dropping
// superseded samples: for each (IP, campaign, protocol) only the highest-Seq
// sample survives. Returns the merged segment and how many samples were
// dropped. Lazy inputs are streamed through their decoder; an undecodable
// sample fails the merge rather than silently dropping data.
func mergeSegments(segs []*segment) (*segment, int, error) {
	total := 0
	for _, g := range segs {
		total += g.length()
	}
	scratch := mergeScratch.Get().(*[]Sample)
	if cap(*scratch) < total {
		*scratch = make([]Sample, 0, total)
	}
	all := (*scratch)[:0]
	for _, g := range segs {
		if err := g.scan(func(sm *Sample) { all = append(all, *sm) }); err != nil {
			*scratch = all[:0]
			mergeScratch.Put(scratch)
			return nil, 0, err
		}
	}
	sort.Slice(all, func(i, j int) bool { return sampleLess(&all[i], &all[j]) })
	kept := all[:0]
	for i := range all {
		if len(kept) > 0 {
			last := &kept[len(kept)-1]
			if last.IP == all[i].IP && last.Campaign == all[i].Campaign && last.Protocol == all[i].Protocol {
				// Same key: the later (higher-Seq) sample supersedes.
				kept[len(kept)-1] = all[i]
				continue
			}
		}
		kept = append(kept, all[i])
	}
	dropped := total - len(kept)
	// The survivors must be copied out: the scratch goes back to the pool,
	// while the segment's sample slice lives as long as the segment.
	out := make([]Sample, len(kept))
	copy(out, kept)
	*scratch = all[:0]
	mergeScratch.Put(scratch)
	return buildSegment(out), dropped, nil
}

// memtable is the mutable ingest buffer: an append-only sample log frozen
// into an indexed segment on flush. No query ever reads the memtable
// directly (snapshots freeze it first), so it keeps no indexes of its own —
// buildSegment derives them at freeze time.
type memtable struct {
	samples []Sample
}

func newMemtable() *memtable {
	return &memtable{}
}

func (m *memtable) add(sm Sample) {
	m.samples = append(m.samples, sm)
}

// reserve grows the sample log to accept n more samples without
// reallocating, so a batched campaign ingest pays one growth instead of a
// doubling cascade.
func (m *memtable) reserve(n int) {
	if free := cap(m.samples) - len(m.samples); free < n {
		grown := make([]Sample, len(m.samples), len(m.samples)+n)
		copy(grown, m.samples)
		m.samples = grown
	}
}

func (m *memtable) len() int { return len(m.samples) }

// freeze copies the memtable into an immutable segment; the memtable keeps
// accepting writes afterwards (snapshots freeze without resetting).
func (m *memtable) freeze() *segment {
	cp := make([]Sample, len(m.samples))
	copy(cp, m.samples)
	return buildSegment(cp)
}
