package store

import (
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/core"
)

// Sample is one stored observation: what a single campaign saw at one IP.
// Samples are immutable once ingested; a later sample for the same
// (IP, campaign) supersedes the earlier one (re-ingesting a corrected
// campaign file), with compaction discarding the loser.
type Sample struct {
	IP       netip.Addr
	Campaign uint64
	// Seq is the store-global ingest sequence number; among samples with
	// equal (IP, Campaign) the highest Seq wins.
	Seq          uint64
	EngineID     []byte
	Boots        int64
	EngineTime   int64
	ReceivedAt   time.Time
	Packets      int
	Inconsistent bool
}

// LastReboot derives the restart instant exactly as core.Observation does.
func (s *Sample) LastReboot() time.Time {
	return s.ReceivedAt.Add(-time.Duration(s.EngineTime) * time.Second)
}

// Observation converts the sample back to the pipeline's native type.
func (s *Sample) Observation() *core.Observation {
	return &core.Observation{
		IP:           s.IP,
		EngineID:     s.EngineID,
		EngineBoots:  s.Boots,
		EngineTime:   s.EngineTime,
		ReceivedAt:   s.ReceivedAt,
		Packets:      s.Packets,
		Inconsistent: s.Inconsistent,
	}
}

func sampleFrom(o *core.Observation, campaign, seq uint64) Sample {
	return Sample{
		IP:           o.IP,
		Campaign:     campaign,
		Seq:          seq,
		EngineID:     o.EngineID,
		Boots:        o.EngineBoots,
		EngineTime:   o.EngineTime,
		ReceivedAt:   o.ReceivedAt,
		Packets:      o.Packets,
		Inconsistent: o.Inconsistent,
	}
}

// sampleLess is the canonical segment order: (IP, Campaign, Seq).
func sampleLess(a, b *Sample) bool {
	if a.IP != b.IP {
		return a.IP.Less(b.IP)
	}
	if a.Campaign != b.Campaign {
		return a.Campaign < b.Campaign
	}
	return a.Seq < b.Seq
}

// span is a half-open index range into a segment's sample slice.
type span struct{ lo, hi int }

// segment is one immutable sorted run of samples with its per-IP and
// per-engine-ID indexes. Segments are never mutated after construction, so
// readers touch them without synchronization.
type segment struct {
	samples []Sample
	byIP    map[netip.Addr]span
	// engines maps an engine ID (raw bytes as string) to the sorted,
	// deduplicated IPs that reported it in this segment.
	engines map[string][]netip.Addr
}

// buildSegment sorts the samples into canonical order and indexes them. It
// takes ownership of the slice.
func buildSegment(samples []Sample) *segment {
	sort.Slice(samples, func(i, j int) bool { return sampleLess(&samples[i], &samples[j]) })
	g := &segment{
		samples: samples,
		byIP:    make(map[netip.Addr]span),
		engines: make(map[string][]netip.Addr),
	}
	for i := 0; i < len(samples); {
		j := i
		for j < len(samples) && samples[j].IP == samples[i].IP {
			j++
		}
		g.byIP[samples[i].IP] = span{i, j}
		seen := map[string]bool{}
		for k := i; k < j; k++ {
			if id := string(samples[k].EngineID); id != "" && !seen[id] {
				seen[id] = true
				g.engines[id] = append(g.engines[id], samples[i].IP)
			}
		}
		i = j
	}
	return g
}

// mergeSegments folds several segments (oldest first) into one, dropping
// superseded samples: for each (IP, campaign) only the highest-Seq sample
// survives. Returns the merged segment and how many samples were dropped.
func mergeSegments(segs []*segment) (*segment, int) {
	total := 0
	for _, g := range segs {
		total += len(g.samples)
	}
	all := make([]Sample, 0, total)
	for _, g := range segs {
		all = append(all, g.samples...)
	}
	sort.Slice(all, func(i, j int) bool { return sampleLess(&all[i], &all[j]) })
	kept := all[:0]
	for i := range all {
		if len(kept) > 0 {
			last := &kept[len(kept)-1]
			if last.IP == all[i].IP && last.Campaign == all[i].Campaign {
				// Same key: the later (higher-Seq) sample supersedes.
				kept[len(kept)-1] = all[i]
				continue
			}
		}
		kept = append(kept, all[i])
	}
	dropped := total - len(kept)
	out := make([]Sample, len(kept))
	copy(out, kept)
	return buildSegment(out), dropped
}

// memtable is the mutable ingest buffer: an append-only sample log with
// incrementally maintained indexes, frozen into a segment on flush.
type memtable struct {
	samples []Sample
	byIP    map[netip.Addr][]int
	engines map[string]map[netip.Addr]struct{}
}

func newMemtable() *memtable {
	return &memtable{
		byIP:    make(map[netip.Addr][]int),
		engines: make(map[string]map[netip.Addr]struct{}),
	}
}

func (m *memtable) add(sm Sample) {
	m.byIP[sm.IP] = append(m.byIP[sm.IP], len(m.samples))
	m.samples = append(m.samples, sm)
	if id := string(sm.EngineID); id != "" {
		set := m.engines[id]
		if set == nil {
			set = make(map[netip.Addr]struct{})
			m.engines[id] = set
		}
		set[sm.IP] = struct{}{}
	}
}

func (m *memtable) len() int { return len(m.samples) }

// freeze copies the memtable into an immutable segment; the memtable keeps
// accepting writes afterwards (snapshots freeze without resetting).
func (m *memtable) freeze() *segment {
	cp := make([]Sample, len(m.samples))
	copy(cp, m.samples)
	return buildSegment(cp)
}
