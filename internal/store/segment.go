package store

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"snmpv3fp/internal/core"
)

// Sample is one stored observation: what a single campaign saw at one IP.
// Samples are immutable once ingested; a later sample for the same
// (IP, campaign, protocol) supersedes the earlier one (re-ingesting a
// corrected campaign file), with compaction discarding the loser.
type Sample struct {
	IP       netip.Addr
	Campaign uint64
	// Seq is the store-global ingest sequence number; among samples with
	// equal (IP, Campaign, Protocol) the highest Seq wins.
	Seq uint64
	// Protocol names the probe module that produced the sample; "" is
	// SNMPv3 discovery (the legacy single-protocol schema). Non-SNMP
	// samples reuse EngineID to carry the module's alias key bytes and
	// stay out of the SNMP-specific derived state (engine index, alias
	// pipeline, /v1/ip history).
	Protocol     string
	EngineID     []byte
	Boots        int64
	EngineTime   int64
	ReceivedAt   time.Time
	Packets      int
	Inconsistent bool
}

// LastReboot derives the restart instant exactly as core.Observation does.
func (s *Sample) LastReboot() time.Time {
	return s.ReceivedAt.Add(-time.Duration(s.EngineTime) * time.Second)
}

// Observation converts the sample back to the pipeline's native type.
func (s *Sample) Observation() *core.Observation {
	return &core.Observation{
		IP:           s.IP,
		EngineID:     s.EngineID,
		EngineBoots:  s.Boots,
		EngineTime:   s.EngineTime,
		ReceivedAt:   s.ReceivedAt,
		Packets:      s.Packets,
		Inconsistent: s.Inconsistent,
	}
}

func sampleFrom(o *core.Observation, campaign, seq uint64) Sample {
	return Sample{
		IP:           o.IP,
		Campaign:     campaign,
		Seq:          seq,
		EngineID:     o.EngineID,
		Boots:        o.EngineBoots,
		EngineTime:   o.EngineTime,
		ReceivedAt:   o.ReceivedAt,
		Packets:      o.Packets,
		Inconsistent: o.Inconsistent,
	}
}

// sampleLess is the canonical segment order: (IP, Campaign, Protocol, Seq).
// Protocol "" (SNMPv3) sorts first within a campaign, so the legacy
// single-protocol layout is unchanged when no multi-protocol evidence
// exists.
func sampleLess(a, b *Sample) bool {
	if a.IP != b.IP {
		return a.IP.Less(b.IP)
	}
	if a.Campaign != b.Campaign {
		return a.Campaign < b.Campaign
	}
	if a.Protocol != b.Protocol {
		return a.Protocol < b.Protocol
	}
	return a.Seq < b.Seq
}

// span is a half-open index range into a segment's sample slice.
type span struct{ lo, hi int }

// segment is one immutable sorted run of samples with its per-IP and
// per-engine-ID indexes. Segments are never mutated after construction, so
// readers touch them without synchronization.
type segment struct {
	samples []Sample
	byIP    map[netip.Addr]span
	// engines maps an engine ID (raw bytes as string) to the sorted,
	// deduplicated IPs that reported it in this segment.
	engines map[string][]netip.Addr
	// file is the on-disk file backing this segment (base name within the
	// store directory); empty for in-memory segments and the transient
	// segments snapshots freeze. Set once before the segment is installed,
	// never read by view code.
	file string
}

// buildSegment sorts the samples into canonical order and indexes them. It
// takes ownership of the slice.
func buildSegment(samples []Sample) *segment {
	sort.Slice(samples, func(i, j int) bool { return sampleLess(&samples[i], &samples[j]) })
	g := &segment{
		samples: samples,
		byIP:    make(map[netip.Addr]span),
		engines: make(map[string][]netip.Addr),
	}
	for i := 0; i < len(samples); {
		j := i
		for j < len(samples) && samples[j].IP == samples[i].IP {
			j++
		}
		g.byIP[samples[i].IP] = span{i, j}
		// Groups arrive in ascending IP order, so each engine's IP list is
		// appended in sorted order and dedupes against its own tail: no
		// per-group scratch set needed.
		for k := i; k < j; k++ {
			// Only SNMPv3 samples enter the engine index: non-SNMP
			// protocols reuse EngineID for their alias keys, which must
			// not answer engine-ID device lookups.
			if samples[k].Protocol != "" {
				continue
			}
			id := samples[k].EngineID
			if len(id) == 0 {
				continue
			}
			ips := g.engines[string(id)]
			if len(ips) > 0 && ips[len(ips)-1] == samples[i].IP {
				continue
			}
			g.engines[string(id)] = append(ips, samples[i].IP)
		}
		i = j
	}
	return g
}

// mergeScratch recycles the transient gather-and-sort buffer mergeSegments
// needs. A pool rather than a bare field because explicit Compact calls may
// race the background compactor; each merge checks out its own scratch.
var mergeScratch = sync.Pool{New: func() any { return new([]Sample) }}

// mergeSegments folds several segments (oldest first) into one, dropping
// superseded samples: for each (IP, campaign, protocol) only the highest-Seq
// sample survives. Returns the merged segment and how many samples were
// dropped.
func mergeSegments(segs []*segment) (*segment, int) {
	total := 0
	for _, g := range segs {
		total += len(g.samples)
	}
	scratch := mergeScratch.Get().(*[]Sample)
	if cap(*scratch) < total {
		*scratch = make([]Sample, 0, total)
	}
	all := (*scratch)[:0]
	for _, g := range segs {
		all = append(all, g.samples...)
	}
	sort.Slice(all, func(i, j int) bool { return sampleLess(&all[i], &all[j]) })
	kept := all[:0]
	for i := range all {
		if len(kept) > 0 {
			last := &kept[len(kept)-1]
			if last.IP == all[i].IP && last.Campaign == all[i].Campaign && last.Protocol == all[i].Protocol {
				// Same key: the later (higher-Seq) sample supersedes.
				kept[len(kept)-1] = all[i]
				continue
			}
		}
		kept = append(kept, all[i])
	}
	dropped := total - len(kept)
	// The survivors must be copied out: the scratch goes back to the pool,
	// while the segment's sample slice lives as long as the segment.
	out := make([]Sample, len(kept))
	copy(out, kept)
	*scratch = all[:0]
	mergeScratch.Put(scratch)
	return buildSegment(out), dropped
}

// memtable is the mutable ingest buffer: an append-only sample log frozen
// into an indexed segment on flush. No query ever reads the memtable
// directly (snapshots freeze it first), so it keeps no indexes of its own —
// buildSegment derives them at freeze time.
type memtable struct {
	samples []Sample
}

func newMemtable() *memtable {
	return &memtable{}
}

func (m *memtable) add(sm Sample) {
	m.samples = append(m.samples, sm)
}

// reserve grows the sample log to accept n more samples without
// reallocating, so a batched campaign ingest pays one growth instead of a
// doubling cascade.
func (m *memtable) reserve(n int) {
	if free := cap(m.samples) - len(m.samples); free < n {
		grown := make([]Sample, len(m.samples), len(m.samples)+n)
		copy(grown, m.samples)
		m.samples = grown
	}
}

func (m *memtable) len() int { return len(m.samples) }

// freeze copies the memtable into an immutable segment; the memtable keeps
// accepting writes afterwards (snapshots freeze without resetting).
func (m *memtable) freeze() *segment {
	cp := make([]Sample, len(m.samples))
	copy(cp, m.samples)
	return buildSegment(cp)
}
