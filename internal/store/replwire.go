package store

import (
	"errors"
	"fmt"
	"io"

	"snmpv3fp/internal/bufpool"
)

// Replication wire protocol: a primary ships sealed segment files and
// manifest commits to read replicas over one TCP stream per replica. Frames
// are length-prefixed — a 4-byte big-endian length covering everything
// after itself, a 1-byte type, a type-specific body — the same self-
// delimiting shape as the vantage protocol (DESIGN.md §14), so the stream
// needs no other synchronization.
//
// The session: the replica opens with Hello, naming the protocol version,
// its applied manifest seq horizon and every complete segment file it
// already holds. The primary then loops over published states: for each
// state it ships every listed segment the replica lacks (Seg header, Chunk
// bodies, SegDone), then a Commit carrying the rendered manifest and the
// primary's Stats JSON. A Commit only ever follows the segments it lists,
// so the replica can apply it atomically; everything before an applied
// Commit is recoverable, everything after is re-shipped on reconnect. The
// replica sends Ack frames after each apply, which is what the primary's
// lag accounting reads.

// Frame types. The numbering is part of the protocol; append, never
// renumber.
const (
	replFrameHello   byte = 1 // replica -> primary: version, seq horizon, held segments
	replFrameSeg     byte = 2 // primary -> replica: segment file header (name, size, crc)
	replFrameChunk   byte = 3 // primary -> replica: segment file bytes
	replFrameSegDone byte = 4 // primary -> replica: segment file complete
	replFrameCommit  byte = 5 // primary -> replica: manifest + stats, apply point
	replFrameAck     byte = 6 // replica -> primary: applied seq horizon
)

// replProtoVersion is echoed in Hello so a primary can reject replicas
// built against an incompatible codec.
const replProtoVersion = 1

// replMaxFrame bounds a frame body; segment files chunk at replChunkSize,
// which keeps well-formed frames far below this.
const replMaxFrame = 8 << 20

// replChunkSize is how many segment-file bytes travel per Chunk frame.
const replChunkSize = 1 << 20

// replFramePool recycles frame assembly buffers across the ship loop.
var replFramePool = bufpool.New(64, 64<<10)

// errReplFrame reports a malformed replication frame.
var errReplFrame = errors.New("store: malformed replication frame")

// replHello is the replica's opening frame.
type replHello struct {
	Version    uint32
	AppliedSeq uint64
	Held       []string
}

// replSeg announces one segment file about to be streamed.
type replSeg struct {
	Name string
	Size uint64
	CRC  uint32
}

// replCommit is the apply point: the rendered manifest file bytes and the
// primary's Stats JSON captured at the same publish.
type replCommit struct {
	Manifest []byte
	Stats    []byte
}

func replAppendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func replAppendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func replAppendU64(b []byte, v uint64) []byte {
	return replAppendU32(replAppendU32(b, uint32(v>>32)), uint32(v))
}

func replU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// replRd cursors over a frame body, latching the first underflow.
type replRd struct {
	b   []byte
	bad bool
}

func (r *replRd) take(n int) []byte {
	if r.bad || len(r.b) < n {
		r.bad = true
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *replRd) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return uint16(v[0])<<8 | uint16(v[1])
}

func (r *replRd) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return replU32(v)
}

func (r *replRd) u64() uint64 {
	hi := r.u32()
	lo := r.u32()
	return uint64(hi)<<32 | uint64(lo)
}

func (r *replRd) str16() string {
	n := int(r.u16())
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}

func (r *replRd) bytes32() []byte {
	n := int(r.u32())
	v := r.take(n)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

func (r *replRd) done() error {
	if r.bad || len(r.b) != 0 {
		return errReplFrame
	}
	return nil
}

// writeReplFrame writes one length-prefixed frame. The body is not
// retained.
func writeReplFrame(w io.Writer, typ byte, body []byte) error {
	if len(body)+1 > replMaxFrame {
		return fmt.Errorf("store: replication frame too large (%d bytes)", len(body))
	}
	buf := replFramePool.Get()[:0]
	buf = replAppendU32(buf, uint32(len(body)+1))
	buf = append(buf, typ)
	buf = append(buf, body...)
	_, err := w.Write(buf)
	replFramePool.Put(buf)
	return err
}

// readReplFrame reads one frame; the body is freshly allocated.
func readReplFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := replU32(hdr[:4])
	if n < 1 || n > replMaxFrame {
		return 0, nil, errReplFrame
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, replEOF(err)
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, replEOF(err)
	}
	return hdr[4], body, nil
}

// replEOF converts an EOF mid-frame into ErrUnexpectedEOF: a stream that
// dies inside a frame is cut off, not done.
func replEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func appendReplHello(b []byte, h replHello) []byte {
	b = replAppendU32(b, h.Version)
	b = replAppendU64(b, h.AppliedSeq)
	b = replAppendU32(b, uint32(len(h.Held)))
	for _, name := range h.Held {
		b = replAppendU16(b, uint16(len(name)))
		b = append(b, name...)
	}
	return b
}

func parseReplHello(body []byte) (replHello, error) {
	r := replRd{b: body}
	var h replHello
	h.Version = r.u32()
	h.AppliedSeq = r.u64()
	n := int(r.u32())
	// Each held entry costs at least 2 bytes; reject counts the body
	// cannot hold before allocating for them.
	if r.bad || n > len(r.b)/2 {
		return replHello{}, errReplFrame
	}
	for i := 0; i < n; i++ {
		h.Held = append(h.Held, r.str16())
	}
	return h, r.done()
}

func appendReplSeg(b []byte, s replSeg) []byte {
	b = replAppendU16(b, uint16(len(s.Name)))
	b = append(b, s.Name...)
	b = replAppendU64(b, s.Size)
	return replAppendU32(b, s.CRC)
}

func parseReplSeg(body []byte) (replSeg, error) {
	r := replRd{b: body}
	var s replSeg
	s.Name = r.str16()
	s.Size = r.u64()
	s.CRC = r.u32()
	return s, r.done()
}

func appendReplCommit(b []byte, c replCommit) []byte {
	b = replAppendU32(b, uint32(len(c.Manifest)))
	b = append(b, c.Manifest...)
	b = replAppendU32(b, uint32(len(c.Stats)))
	return append(b, c.Stats...)
}

func parseReplCommit(body []byte) (replCommit, error) {
	r := replRd{b: body}
	var c replCommit
	c.Manifest = r.bytes32()
	c.Stats = r.bytes32()
	return c, r.done()
}
