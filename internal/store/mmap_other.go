//go:build !linux

package store

import (
	"fmt"
	"os"
)

// openSegReader on non-linux platforms reads the whole file into the heap —
// the portable fallback behind the same segReader interface. The lazy
// segment machinery above it is identical; only the page-cache sharing is
// lost.
func openSegReader(path string) (segReader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: segment read: %w", err)
	}
	return &heapReader{data: data}, nil
}
