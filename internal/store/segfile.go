package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// On-disk segment format (v3). A segment file is four length-delimited
// blocks followed by a fixed-size footer carrying each block's length and
// CRC plus enough metadata to open the segment without touching the sample
// block:
//
//	[sample block][ip index block][engine index block][bloom block][footer]
//
//	sample block:  uvarint count | count × sample (appendSampleEnc, in
//	               canonical (IP, campaign, protocol, seq) order)
//	ip index:      u32 n4 | u32 n6 | n4 × entry4 | n6 × entry6, where
//	               entryN = ipBytes(4|16) | u8 flags | u32 lo | u32 hi |
//	               u32 off — (lo,hi) the sample-index span, off the byte
//	               offset of the span's first sample within the sample
//	               block, flags bit0 = span holds an SNMPv3 sample.
//	               Entries are fixed-width and ascending per family, so
//	               lookups binary-search the raw bytes (mmap-friendly).
//	engine index:  u32 count | count × u32 entryOff | entries, each entry
//	               uvarint idLen | id | uvarint nIPs | nIPs × ip, sorted
//	               by raw id bytes; entryOff is relative to the entries
//	               region so lookups binary-search via the offset table.
//	bloom block:   u8 present | (u32 nBlocks | nBlocks × 32B split-block
//	               bloom over 'i'+addr and 'e'+engineID keys)
//	footer (80B):  4 × (u64 len + u32 crc32c) | u64 sampleCount |
//	               u64 minCampaign | u64 maxCampaign | u32 version |
//	               u32 magic
//
// v2 files (three blocks, 44-byte footer, varint ip index, no bloom) are
// still readable: they decode eagerly into the heap exactly as before.
//
// Files are written to a .tmp sibling, fsynced, renamed into place and the
// directory fsynced, so a segment either exists whole or not at all; the
// manifest decides which segments are live. v3 open verifies the index and
// bloom block CRCs (cheap, a few percent of the file) and maps the sample
// block lazily; the full sample-block checksum is the optional verify pass
// (Options.VerifyOnOpen / snmpfpd -verify), kept on in durability-smoke.

const (
	segMagic = 0x53465031 // "SFP1"
	// segVersion 3 added the bloom block, the fixed-width offset-carrying
	// ip index and the footer metadata; 2 added the per-sample protocol
	// tag. v1 files (pre-multi-protocol) are rejected rather than
	// misparsed.
	segVersion      = 3
	segVersion2     = 2
	segFooterSizeV2 = 3*(8+4) + 4 + 4
	segFooterSize   = 4*(8+4) + 3*8 + 4 + 4

	segIPEntry4 = 4 + 1 + 3*4  // v4 ip index entry width
	segIPEntry6 = 16 + 1 + 3*4 // v6 ip index entry width

	// segFlagSNMP marks an ip-index span that contains at least one SNMPv3
	// sample — recovery rebuilds the known-IP set from the index alone.
	segFlagSNMP = 1 << 0
)

// segReader abstracts how a segment file's bytes are held: an mmap'd
// read-only mapping on linux, a heap copy elsewhere (and for tiny files).
type segReader interface {
	bytes() []byte
	close() error
}

// heapReader is the portable segReader: plain bytes on the heap.
type heapReader struct {
	data []byte
}

func (h *heapReader) bytes() []byte { return h.data }
func (h *heapReader) close() error  { h.data = nil; return nil }

func appendAddr(b []byte, ip netip.Addr) []byte {
	if ip.Is4() {
		a := ip.As4()
		b = append(b, 4)
		return append(b, a[:]...)
	}
	a := ip.As16()
	b = append(b, 16)
	return append(b, a[:]...)
}

func decodeAddr(b []byte) (netip.Addr, int, error) {
	if len(b) < 1 {
		return netip.Addr{}, 0, fmt.Errorf("store: segment: truncated address")
	}
	n := int(b[0])
	if (n != 4 && n != 16) || len(b) < 1+n {
		return netip.Addr{}, 0, fmt.Errorf("store: segment: bad address length %d", n)
	}
	if n == 4 {
		return netip.AddrFrom4([4]byte(b[1:5])), 5, nil
	}
	return netip.AddrFrom16([16]byte(b[1:17])), 17, nil
}

// encodeSegment renders the four blocks and footer for g (which must be
// eager — freshly built or merged). withBloom controls whether the filter
// block carries a real filter (Options.DisableBloom writes an empty one).
func encodeSegment(g *segment, withBloom bool) []byte {
	type group struct {
		ip    netip.Addr
		flags byte
		sp    span
		off   int
	}

	samples := make([]byte, 0, 64*len(g.samples)+16)
	samples = binary.AppendUvarint(samples, uint64(len(g.samples)))
	groups := make([]group, 0, len(g.byIP))
	var minC, maxC uint64
	for i := 0; i < len(g.samples); {
		sp := g.byIP[g.samples[i].IP]
		gr := group{ip: g.samples[i].IP, sp: sp, off: len(samples)}
		for k := sp.lo; k < sp.hi; k++ {
			sm := &g.samples[k]
			if sm.Protocol == "" {
				gr.flags |= segFlagSNMP
			}
			if minC == 0 || sm.Campaign < minC {
				minC = sm.Campaign
			}
			if sm.Campaign > maxC {
				maxC = sm.Campaign
			}
			samples = appendSampleEnc(samples, sm)
		}
		groups = append(groups, gr)
		i = sp.hi
	}

	// IP index: fixed-width entries, v4 first then v6, both ascending —
	// the canonical sample order already delivers exactly that, and the
	// iteration order is a determinism guarantee for the file bytes.
	n4 := 0
	for _, gr := range groups {
		if gr.ip.Is4() {
			n4++
		}
	}
	ipIdx := make([]byte, 0, 8+segIPEntry4*n4+segIPEntry6*(len(groups)-n4))
	ipIdx = binary.LittleEndian.AppendUint32(ipIdx, uint32(n4))
	ipIdx = binary.LittleEndian.AppendUint32(ipIdx, uint32(len(groups)-n4))
	for _, gr := range groups {
		if gr.ip.Is4() {
			a := gr.ip.As4()
			ipIdx = append(ipIdx, a[:]...)
		} else {
			a := gr.ip.As16()
			ipIdx = append(ipIdx, a[:]...)
		}
		ipIdx = append(ipIdx, gr.flags)
		ipIdx = binary.LittleEndian.AppendUint32(ipIdx, uint32(gr.sp.lo))
		ipIdx = binary.LittleEndian.AppendUint32(ipIdx, uint32(gr.sp.hi))
		ipIdx = binary.LittleEndian.AppendUint32(ipIdx, uint32(gr.off))
	}

	// Engine index: entries sorted by raw id bytes behind an offset table,
	// so lazy readers binary-search without decoding every entry.
	ids := make([]string, 0, len(g.engines))
	for id := range g.engines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]byte, 0, 32*len(ids))
	offs := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		offs = binary.LittleEndian.AppendUint32(offs, uint32(len(entries)))
		entries = binary.AppendUvarint(entries, uint64(len(id)))
		entries = append(entries, id...)
		ips := g.engines[id]
		entries = binary.AppendUvarint(entries, uint64(len(ips)))
		for _, ip := range ips {
			entries = appendAddr(entries, ip)
		}
	}
	engIdx := make([]byte, 0, 4+len(offs)+len(entries))
	engIdx = binary.LittleEndian.AppendUint32(engIdx, uint32(len(ids)))
	engIdx = append(engIdx, offs...)
	engIdx = append(engIdx, entries...)

	// Bloom block over every distinct IP and engine ID.
	var bloom []byte
	if withBloom {
		f := newSBBF(len(groups)+len(ids), segBloomBitsPerKey)
		var scratch [64]byte
		for _, gr := range groups {
			if gr.ip.Is4() {
				a := gr.ip.As4()
				f.add(bloomIPKey(scratch[:0], 4, a[:]))
			} else {
				a := gr.ip.As16()
				f.add(bloomIPKey(scratch[:0], 16, a[:]))
			}
		}
		for _, id := range ids {
			key := append(append(scratch[:0], 'e'), id...)
			f.add(key)
		}
		bloom = make([]byte, 0, 5+len(f.blocks))
		bloom = append(bloom, 1)
		bloom = binary.LittleEndian.AppendUint32(bloom, uint32(len(f.blocks)/sbbfBlockSize))
		bloom = append(bloom, f.blocks...)
	} else {
		bloom = []byte{0}
	}

	out := make([]byte, 0, len(samples)+len(ipIdx)+len(engIdx)+len(bloom)+segFooterSize)
	out = append(out, samples...)
	out = append(out, ipIdx...)
	out = append(out, engIdx...)
	out = append(out, bloom...)
	for _, blk := range [][]byte{samples, ipIdx, engIdx, bloom} {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(blk)))
		out = appendUint32(out, crc32.Checksum(blk, castagnoli))
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(len(g.samples)))
	out = binary.LittleEndian.AppendUint64(out, minC)
	out = binary.LittleEndian.AppendUint64(out, maxC)
	out = appendUint32(out, segVersion)
	out = appendUint32(out, segMagic)
	return out
}

// writeSegmentFile writes g to name atomically: tmp file, fsync, rename,
// directory fsync.
func (d *disk) writeSegmentFile(name string, g *segment, withBloom bool) error {
	if err := d.hook("seg.write"); err != nil {
		return err
	}
	data := encodeSegment(g, withBloom)
	tmp := filepath.Join(d.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: segment write: %w", err)
	}
	if err := d.hook("seg.write.torn"); err != nil {
		_, _ = f.Write(data[:len(data)/2])
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: segment write: %w", err)
	}
	if err := d.hook("seg.sync"); err != nil {
		f.Close()
		return err
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: segment sync: %w", err)
	}
	d.observeFsync(time.Since(start))
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: segment close: %w", err)
	}
	if err := d.hook("seg.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		return fmt.Errorf("store: segment rename: %w", err)
	}
	return d.syncDir()
}

// openSegment opens one segment file for serving: v3 files through the
// segReader (mmap on linux) with only the footer, index and bloom blocks
// verified — the sample block stays untouched until a query needs it — and
// v2 files through the legacy eager decode. verify forces a full
// sample-block checksum and decode pass for either version.
func openSegment(dir, name string, st *segStats, verify bool) (*segment, error) {
	rd, err := openSegReader(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	data := rd.bytes()
	bad := func(format string, args ...any) (*segment, error) {
		_ = rd.close()
		return nil, fmt.Errorf("store: segment %s corrupt: %s", name, fmt.Sprintf(format, args...))
	}
	if len(data) < 8 {
		return bad("short file (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != segMagic {
		return bad("bad magic")
	}
	switch v := binary.LittleEndian.Uint32(data[len(data)-8:]); v {
	case segVersion2:
		g, err := decodeSegmentV2(name, data)
		// Everything is copied out of the file bytes; release them now.
		_ = rd.close()
		if err != nil {
			return nil, err
		}
		return g, nil
	case segVersion:
		g, err := openSegmentV3(name, data, st, verify)
		if err != nil {
			_ = rd.close()
			return nil, err
		}
		g.lz.rd = rd
		// The mapping must outlive every live reference to the segment;
		// views pin the segment, the segment pins the lazySeg, and the
		// cleanup unmaps only when both are unreachable.
		runtime.SetFinalizer(g.lz, func(lz *lazySeg) { _ = lz.rd.close() })
		return g, nil
	default:
		return bad("unsupported version %d", v)
	}
}

// openSegmentV3 parses a v3 file into a lazy segment over data. The caller
// owns data's lifetime (the segReader).
func openSegmentV3(name string, data []byte, st *segStats, verify bool) (*segment, error) {
	bad := func(format string, args ...any) (*segment, error) {
		return nil, fmt.Errorf("store: segment %s corrupt: %s", name, fmt.Sprintf(format, args...))
	}
	if len(data) < segFooterSize {
		return bad("short file (%d bytes)", len(data))
	}
	foot := data[len(data)-segFooterSize:]
	var blocks [4][]byte
	off := 0
	for i := 0; i < 4; i++ {
		blen := binary.LittleEndian.Uint64(foot[i*12:])
		crc := binary.LittleEndian.Uint32(foot[i*12+8:])
		if uint64(len(data)-segFooterSize-off) < blen {
			return bad("block %d overruns file", i)
		}
		blk := data[off : off+int(blen)]
		// The sample block checksum — the bulk of the file — is deferred
		// to the verify pass; the index and bloom blocks are always
		// verified (they are load-bearing and a few percent of the size).
		if i > 0 || verify {
			if crc32.Checksum(blk, castagnoli) != crc {
				return bad("block %d checksum mismatch", i)
			}
		}
		blocks[i] = blk
		off += int(blen)
	}
	if off != len(data)-segFooterSize {
		return bad("trailing garbage before footer")
	}
	count := binary.LittleEndian.Uint64(foot[48:])
	minC := binary.LittleEndian.Uint64(foot[56:])
	maxC := binary.LittleEndian.Uint64(foot[64:])

	sblk := blocks[0]
	hdrCount, n := binary.Uvarint(sblk)
	if n <= 0 || hdrCount != count {
		return bad("sample count header %d vs footer %d", hdrCount, count)
	}

	// IP index: structural validation only — O(index), never O(samples).
	b := blocks[1]
	if len(b) < 8 {
		return bad("ip index header")
	}
	n4 := int(binary.LittleEndian.Uint32(b))
	n6 := int(binary.LittleEndian.Uint32(b[4:]))
	if n4 < 0 || n6 < 0 || len(b) != 8+n4*segIPEntry4+n6*segIPEntry6 {
		return bad("ip index size %d for %d+%d entries", len(b), n4, n6)
	}
	ip4 := b[8 : 8+n4*segIPEntry4]
	ip6 := b[8+n4*segIPEntry4:]
	checkEntry := func(e []byte, ipLen int, prev []byte) error {
		if prev != nil && bytes.Compare(prev[:ipLen], e[:ipLen]) >= 0 {
			return fmt.Errorf("ip index not ascending")
		}
		lo := binary.LittleEndian.Uint32(e[ipLen+1:])
		hi := binary.LittleEndian.Uint32(e[ipLen+5:])
		so := binary.LittleEndian.Uint32(e[ipLen+9:])
		if lo >= hi || uint64(hi) > count || int(so) >= len(sblk) {
			return fmt.Errorf("ip index span [%d,%d)@%d out of range", lo, hi, so)
		}
		return nil
	}
	var prev []byte
	for i := 0; i < n4; i++ {
		e := ip4[i*segIPEntry4 : (i+1)*segIPEntry4]
		if err := checkEntry(e, 4, prev); err != nil {
			return bad("entry %d: %v", i, err)
		}
		prev = e
	}
	prev = nil
	for i := 0; i < n6; i++ {
		e := ip6[i*segIPEntry6 : (i+1)*segIPEntry6]
		if err := checkEntry(e, 16, prev); err != nil {
			return bad("v6 entry %d: %v", i, err)
		}
		prev = e
	}

	// Engine index: offset table sanity.
	b = blocks[2]
	if len(b) < 4 {
		return bad("engine index header")
	}
	nEng := int(binary.LittleEndian.Uint32(b))
	if nEng < 0 || len(b) < 4+4*nEng {
		return bad("engine index offset table")
	}
	engOffs := b[4 : 4+4*nEng]
	engBlk := b[4+4*nEng:]
	last := -1
	for i := 0; i < nEng; i++ {
		o := int(binary.LittleEndian.Uint32(engOffs[i*4:]))
		if o <= last || o >= len(engBlk) {
			return bad("engine index offset %d at %d", o, i)
		}
		last = o
	}

	// Bloom block.
	b = blocks[3]
	if len(b) < 1 {
		return bad("bloom header")
	}
	var filter sbbf
	if b[0] == 1 {
		if len(b) < 5 {
			return bad("bloom size header")
		}
		nBlocks := int(binary.LittleEndian.Uint32(b[1:]))
		if nBlocks < 1 || len(b) != 5+nBlocks*sbbfBlockSize {
			return bad("bloom block size %d for %d blocks", len(b), nBlocks)
		}
		filter = sbbf{blocks: b[5:]}
	}

	lz := &lazySeg{
		sblk:    sblk,
		count:   int(count),
		ip4:     ip4,
		ip6:     ip6,
		n4:      n4,
		n6:      n6,
		engOffs: engOffs,
		engBlk:  engBlk,
		nEng:    nEng,
		filter:  filter,
		minC:    minC,
		maxC:    maxC,
		st:      st,
	}
	if st != nil {
		lz.id = st.nextSegID.Add(1)
	}
	g := &segment{file: name, lz: lz}
	if verify {
		// Beyond the checksum, prove every sample decodes: the contract
		// durability-smoke reopens under.
		if err := g.scan(func(*Sample) {}); err != nil {
			return bad("%v", err)
		}
	}
	return g, nil
}

// decodeSegmentV2 is the legacy eager reader: verifies every CRC and
// rebuilds the in-memory segment from the index blocks, copying everything
// out of data.
func decodeSegmentV2(name string, data []byte) (*segment, error) {
	bad := func(format string, args ...any) (*segment, error) {
		return nil, fmt.Errorf("store: segment %s corrupt: %s", name, fmt.Sprintf(format, args...))
	}
	if len(data) < segFooterSizeV2 {
		return bad("short file (%d bytes)", len(data))
	}
	foot := data[len(data)-segFooterSizeV2:]
	var blocks [3][]byte
	off := 0
	for i := 0; i < 3; i++ {
		blen := binary.LittleEndian.Uint64(foot[i*12:])
		crc := binary.LittleEndian.Uint32(foot[i*12+8:])
		if uint64(len(data)-segFooterSizeV2-off) < blen {
			return bad("block %d overruns file", i)
		}
		blk := data[off : off+int(blen)]
		if crc32.Checksum(blk, castagnoli) != crc {
			return bad("block %d checksum mismatch", i)
		}
		blocks[i] = blk
		off += int(blen)
	}
	if off != len(data)-segFooterSizeV2 {
		return bad("trailing garbage before footer")
	}

	// Sample block.
	b := blocks[0]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return bad("sample count")
	}
	b = b[n:]
	g := &segment{
		samples: make([]Sample, 0, count),
		byIP:    make(map[netip.Addr]span),
		engines: make(map[string][]netip.Addr),
	}
	for i := uint64(0); i < count; i++ {
		s, n, err := decodeSampleEnc(b)
		if err != nil {
			return bad("sample %d: %v", i, err)
		}
		g.samples = append(g.samples, s)
		b = b[n:]
	}

	// Per-IP index block (v2: varint spans, no offsets).
	b = blocks[1]
	count, n = binary.Uvarint(b)
	if n <= 0 {
		return bad("ip index count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		ip, n, err := decodeAddr(b)
		if err != nil {
			return bad("ip index %d: %v", i, err)
		}
		b = b[n:]
		lo, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("ip index %d lo", i)
		}
		b = b[n:]
		hi, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("ip index %d hi", i)
		}
		b = b[n:]
		if lo > hi || hi > uint64(len(g.samples)) {
			return bad("ip index %d span [%d,%d) out of range", i, lo, hi)
		}
		g.byIP[ip] = span{int(lo), int(hi)}
	}

	// Per-engine-ID index block.
	b = blocks[2]
	count, n = binary.Uvarint(b)
	if n <= 0 {
		return bad("engine index count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		idLen, n := binary.Uvarint(b)
		if n <= 0 || idLen > walMaxRecord || uint64(len(b)-n) < idLen {
			return bad("engine index %d id", i)
		}
		id := string(b[n : n+int(idLen)])
		b = b[n+int(idLen):]
		nIPs, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("engine index %d ip count", i)
		}
		b = b[n:]
		ips := make([]netip.Addr, 0, nIPs)
		for j := uint64(0); j < nIPs; j++ {
			ip, n, err := decodeAddr(b)
			if err != nil {
				return bad("engine index %d ip %d: %v", i, j, err)
			}
			ips = append(ips, ip)
			b = b[n:]
		}
		g.engines[id] = ips
	}
	g.file = name
	return g, nil
}
