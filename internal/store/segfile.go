package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"time"
)

// On-disk segment format. A segment file is three length-delimited blocks
// followed by a fixed-size footer carrying each block's length and CRC:
//
//	[sample block][per-IP index block][per-engine-ID index block][footer]
//
//	sample block:  uvarint count | count × sample (appendSampleEnc, in
//	               canonical (IP, campaign, seq) order)
//	ip index:      uvarint count | count × (ip | uvarint lo | uvarint hi)
//	engine index:  uvarint count | count × (uvarint idLen | id |
//	               uvarint nIPs | nIPs × ip)
//	footer (44B):  u64 len + u32 crc32c per block | u32 version | u32 magic
//
// Files are written to a .tmp sibling, fsynced, renamed into place and the
// directory fsynced, so a segment either exists whole or not at all; the
// manifest decides which segments are live. Readers verify every CRC and
// rebuild the in-memory segment straight from the index blocks — the
// indexes are load-bearing, not advisory.

const (
	segMagic = 0x53465031 // "SFP1"
	// segVersion 2 added the per-sample protocol tag to the sample
	// encoding; v1 files (pre-multi-protocol) are rejected rather than
	// misparsed.
	segVersion    = 2
	segFooterSize = 3*(8+4) + 4 + 4
)

func appendAddr(b []byte, ip netip.Addr) []byte {
	if ip.Is4() {
		a := ip.As4()
		b = append(b, 4)
		return append(b, a[:]...)
	}
	a := ip.As16()
	b = append(b, 16)
	return append(b, a[:]...)
}

func decodeAddr(b []byte) (netip.Addr, int, error) {
	if len(b) < 1 {
		return netip.Addr{}, 0, fmt.Errorf("store: segment: truncated address")
	}
	n := int(b[0])
	if (n != 4 && n != 16) || len(b) < 1+n {
		return netip.Addr{}, 0, fmt.Errorf("store: segment: bad address length %d", n)
	}
	if n == 4 {
		return netip.AddrFrom4([4]byte(b[1:5])), 5, nil
	}
	return netip.AddrFrom16([16]byte(b[1:17])), 17, nil
}

// encodeSegment renders the three blocks and footer for g.
func encodeSegment(g *segment) []byte {
	samples := make([]byte, 0, 64*len(g.samples)+16)
	samples = binary.AppendUvarint(samples, uint64(len(g.samples)))
	for i := range g.samples {
		samples = appendSampleEnc(samples, &g.samples[i])
	}

	// Index entries in ascending IP order — the iteration order readers
	// rebuild the maps in, and a determinism guarantee for the file bytes.
	ipIdx := make([]byte, 0, 16*len(g.byIP)+16)
	ipIdx = binary.AppendUvarint(ipIdx, uint64(len(g.byIP)))
	for i := 0; i < len(g.samples); {
		ip := g.samples[i].IP
		sp := g.byIP[ip]
		ipIdx = appendAddr(ipIdx, ip)
		ipIdx = binary.AppendUvarint(ipIdx, uint64(sp.lo))
		ipIdx = binary.AppendUvarint(ipIdx, uint64(sp.hi))
		i = sp.hi
	}

	// Engine IDs sorted by first-member IP then raw bytes would need a
	// sort; instead reuse the sample order so encoding stays one pass:
	// collect each engine ID at its first appearance.
	engIdx := make([]byte, 0, 32*len(g.engines)+16)
	engIdx = binary.AppendUvarint(engIdx, uint64(len(g.engines)))
	emitted := make(map[string]struct{}, len(g.engines))
	for i := range g.samples {
		id := string(g.samples[i].EngineID)
		if len(id) == 0 {
			continue
		}
		if _, done := emitted[id]; done {
			continue
		}
		emitted[id] = struct{}{}
		ips := g.engines[id]
		engIdx = binary.AppendUvarint(engIdx, uint64(len(id)))
		engIdx = append(engIdx, id...)
		engIdx = binary.AppendUvarint(engIdx, uint64(len(ips)))
		for _, ip := range ips {
			engIdx = appendAddr(engIdx, ip)
		}
	}

	out := make([]byte, 0, len(samples)+len(ipIdx)+len(engIdx)+segFooterSize)
	out = append(out, samples...)
	out = append(out, ipIdx...)
	out = append(out, engIdx...)
	for _, blk := range [][]byte{samples, ipIdx, engIdx} {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(blk)))
		out = appendUint32(out, crc32.Checksum(blk, castagnoli))
	}
	out = appendUint32(out, segVersion)
	out = appendUint32(out, segMagic)
	return out
}

// writeSegmentFile writes g to name atomically: tmp file, fsync, rename,
// directory fsync.
func (d *disk) writeSegmentFile(name string, g *segment) error {
	if err := d.hook("seg.write"); err != nil {
		return err
	}
	data := encodeSegment(g)
	tmp := filepath.Join(d.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: segment write: %w", err)
	}
	if err := d.hook("seg.write.torn"); err != nil {
		_, _ = f.Write(data[:len(data)/2])
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: segment write: %w", err)
	}
	if err := d.hook("seg.sync"); err != nil {
		f.Close()
		return err
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: segment sync: %w", err)
	}
	d.observeFsync(time.Since(start))
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: segment close: %w", err)
	}
	if err := d.hook("seg.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		return fmt.Errorf("store: segment rename: %w", err)
	}
	return d.syncDir()
}

// readSegmentFile loads and verifies one segment file, rebuilding the
// in-memory segment from its index blocks.
func readSegmentFile(dir, name string) (*segment, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: segment read: %w", err)
	}
	bad := func(format string, args ...any) (*segment, error) {
		return nil, fmt.Errorf("store: segment %s corrupt: %s", name, fmt.Sprintf(format, args...))
	}
	if len(data) < segFooterSize {
		return bad("short file (%d bytes)", len(data))
	}
	foot := data[len(data)-segFooterSize:]
	if binary.LittleEndian.Uint32(foot[segFooterSize-4:]) != segMagic {
		return bad("bad magic")
	}
	if v := binary.LittleEndian.Uint32(foot[segFooterSize-8:]); v != segVersion {
		return bad("unsupported version %d", v)
	}
	var blocks [3][]byte
	off := 0
	for i := 0; i < 3; i++ {
		blen := binary.LittleEndian.Uint64(foot[i*12:])
		crc := binary.LittleEndian.Uint32(foot[i*12+8:])
		if uint64(len(data)-segFooterSize-off) < blen {
			return bad("block %d overruns file", i)
		}
		blk := data[off : off+int(blen)]
		if crc32.Checksum(blk, castagnoli) != crc {
			return bad("block %d checksum mismatch", i)
		}
		blocks[i] = blk
		off += int(blen)
	}
	if off != len(data)-segFooterSize {
		return bad("trailing garbage before footer")
	}

	// Sample block.
	b := blocks[0]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return bad("sample count")
	}
	b = b[n:]
	g := &segment{
		samples: make([]Sample, 0, count),
		byIP:    make(map[netip.Addr]span),
		engines: make(map[string][]netip.Addr),
	}
	for i := uint64(0); i < count; i++ {
		s, n, err := decodeSampleEnc(b)
		if err != nil {
			return bad("sample %d: %v", i, err)
		}
		g.samples = append(g.samples, s)
		b = b[n:]
	}

	// Per-IP index block.
	b = blocks[1]
	count, n = binary.Uvarint(b)
	if n <= 0 {
		return bad("ip index count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		ip, n, err := decodeAddr(b)
		if err != nil {
			return bad("ip index %d: %v", i, err)
		}
		b = b[n:]
		lo, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("ip index %d lo", i)
		}
		b = b[n:]
		hi, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("ip index %d hi", i)
		}
		b = b[n:]
		if lo > hi || hi > uint64(len(g.samples)) {
			return bad("ip index %d span [%d,%d) out of range", i, lo, hi)
		}
		g.byIP[ip] = span{int(lo), int(hi)}
	}

	// Per-engine-ID index block.
	b = blocks[2]
	count, n = binary.Uvarint(b)
	if n <= 0 {
		return bad("engine index count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		idLen, n := binary.Uvarint(b)
		if n <= 0 || idLen > walMaxRecord || uint64(len(b)-n) < idLen {
			return bad("engine index %d id", i)
		}
		id := string(b[n : n+int(idLen)])
		b = b[n+int(idLen):]
		nIPs, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("engine index %d ip count", i)
		}
		b = b[n:]
		ips := make([]netip.Addr, 0, nIPs)
		for j := uint64(0); j < nIPs; j++ {
			ip, n, err := decodeAddr(b)
			if err != nil {
				return bad("engine index %d ip %d: %v", i, j, err)
			}
			ips = append(ips, ip)
			b = b[n:]
		}
		g.engines[id] = ips
	}
	g.file = name
	return g, nil
}
