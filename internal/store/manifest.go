package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// The manifest is the single source of truth for the live segment set. It
// is rewritten — never patched — through a tmp-file-and-rename, so a crash
// anywhere leaves either the old manifest or the new one, with both states
// recoverable: a segment the manifest doesn't know about is an orphan of an
// unfinished flush (its samples still sit in the WAL), and a WAL record at
// or below the manifest's seq horizon is already in a segment.
//
// File format: one canonical JSON line, then a crc32c hex line of it.

const (
	manifestName    = "MANIFEST"
	manifestTmpName = "MANIFEST.tmp"
)

type manifest struct {
	Version int `json:"version"`
	// Campaigns is the campaign counter at write time; WAL boundary records
	// extend it past the last flush.
	Campaigns uint64 `json:"campaigns"`
	// Seq is the durable-segment horizon: every sample with seq ≤ Seq lives
	// in a listed segment, so WAL replay skips those as duplicates.
	Seq uint64 `json:"seq"`
	// NextFile seeds the segment/WAL file numbering.
	NextFile uint64 `json:"next_file"`
	// Segments is the live set, oldest first.
	Segments []string `json:"segments"`
}

// renderManifest encodes m to the on-disk (and on-wire, for replication)
// representation: the canonical JSON line plus its crc32c hex line.
func renderManifest(m *manifest) ([]byte, error) {
	line, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("store: manifest encode: %w", err)
	}
	return []byte(fmt.Sprintf("%s\n%08x\n", line, crc32.Checksum(line, castagnoli))), nil
}

// parseManifest decodes and checksum-verifies the rendered representation.
func parseManifest(data []byte) (m manifest, err error) {
	line, crcLine, found := strings.Cut(strings.TrimSuffix(string(data), "\n"), "\n")
	if !found {
		return m, fmt.Errorf("store: manifest corrupt: missing checksum line")
	}
	var want uint32
	if _, err := fmt.Sscanf(crcLine, "%08x", &want); err != nil {
		return m, fmt.Errorf("store: manifest corrupt: bad checksum line %q", crcLine)
	}
	if got := crc32.Checksum([]byte(line), castagnoli); got != want {
		return m, fmt.Errorf("store: manifest corrupt: checksum %08x, want %08x", got, want)
	}
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		return m, fmt.Errorf("store: manifest corrupt: %w", err)
	}
	if m.Version != 1 {
		return m, fmt.Errorf("store: manifest version %d unsupported", m.Version)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest.
func (d *disk) writeManifest(m *manifest) error {
	if err := d.hook("manifest.write"); err != nil {
		return err
	}
	rendered, err := renderManifest(m)
	if err != nil {
		return err
	}
	data := string(rendered)
	tmp := filepath.Join(d.dir, manifestTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: manifest write: %w", err)
	}
	if _, err := f.WriteString(data); err != nil {
		f.Close()
		return fmt.Errorf("store: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: manifest close: %w", err)
	}
	if err := d.hook("manifest.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, manifestName)); err != nil {
		return fmt.Errorf("store: manifest rename: %w", err)
	}
	return d.syncDir()
}

// readManifest loads the manifest; ok is false when none exists yet (a
// fresh or never-flushed directory).
func readManifest(dir string) (m manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{Version: 1}, false, nil
	}
	if err != nil {
		return m, false, fmt.Errorf("store: manifest read: %w", err)
	}
	m, err = parseManifest(data)
	if err != nil {
		return m, false, err
	}
	return m, true, nil
}
