package snmp

import (
	"fmt"

	"snmpv3fp/internal/ber"
)

// TrapV1 is the SNMPv1 Trap-PDU (RFC 1157 §4.1.6), which has its own layout
// instead of the common PDU structure. SNMPv2c/v3 traps reuse the ordinary
// PDU shape and need no special handling.
type TrapV1 struct {
	// Enterprise identifies the object generating the trap.
	Enterprise []uint32
	// AgentAddr is the generating agent's IPv4 address.
	AgentAddr [4]byte
	// GenericTrap is the generic trap code (0 coldStart … 6
	// enterpriseSpecific).
	GenericTrap int64
	// SpecificTrap is the enterprise-specific code.
	SpecificTrap int64
	// Timestamp is sysUpTime at trap generation, in TimeTicks.
	Timestamp uint64
	VarBinds  []VarBind
}

// Generic trap codes (RFC 1157).
const (
	TrapColdStart          = 0
	TrapWarmStart          = 1
	TrapLinkDown           = 2
	TrapLinkUp             = 3
	TrapAuthFailure        = 4
	TrapEGPNeighborLoss    = 5
	TrapEnterpriseSpecific = 6
)

// EncodeTrapV1 serializes an SNMPv1 trap message with the given community.
func EncodeTrapV1(community string, trap *TrapV1) ([]byte, error) {
	b := ber.NewBuilder()
	b.Begin(ber.TagSequence)
	b.Int(int64(V1))
	b.OctetString([]byte(community))
	b.Begin(byte(PDUTrapV1))
	b.OID(trap.Enterprise)
	b.IPAddress(trap.AgentAddr)
	b.Int(trap.GenericTrap)
	b.Int(trap.SpecificTrap)
	b.Uint(ber.TagTimeTicks, trap.Timestamp)
	b.Begin(ber.TagSequence)
	for _, vb := range trap.VarBinds {
		b.Begin(ber.TagSequence)
		b.OID(vb.Name)
		encodeValue(b, vb.Value)
		b.End()
	}
	b.End()
	b.End()
	b.End()
	return b.Bytes()
}

// DecodeTrapV1 parses an SNMPv1 trap message, returning the community and
// the trap body.
func DecodeTrapV1(buf []byte) (community string, trap *TrapV1, err error) {
	p := ber.NewParser(buf)
	msg := p.Enter(ber.TagSequence)
	version := msg.Int()
	if err := msg.Err(); err != nil {
		return "", nil, ErrNotSNMP
	}
	if Version(version) != V1 {
		return "", nil, fmt.Errorf("%w: trap-PDU requires SNMPv1, got %d", ErrWrongVersion, version)
	}
	community = string(msg.OctetString())
	body := msg.Enter(byte(PDUTrapV1))
	t := &TrapV1{}
	t.Enterprise = body.OID()
	addr := body.Expect(ber.TagIPAddress)
	if len(addr.Value) == 4 {
		copy(t.AgentAddr[:], addr.Value)
	}
	t.GenericTrap = body.Int()
	t.SpecificTrap = body.Int()
	t.Timestamp = body.Uint(ber.TagTimeTicks)
	vbl := body.Enter(ber.TagSequence)
	for vbl.Err() == nil && !vbl.Empty() {
		vb := vbl.Enter(ber.TagSequence)
		name := vb.OID()
		raw := vb.Any()
		if vb.Err() != nil {
			return "", nil, vb.Err()
		}
		value, err := parseValue(raw)
		if err != nil {
			return "", nil, err
		}
		t.VarBinds = append(t.VarBinds, VarBind{Name: name, Value: value})
	}
	if err := vbl.Err(); err != nil {
		return "", nil, err
	}
	if err := body.Err(); err != nil {
		return "", nil, err
	}
	return community, t, nil
}
