package snmp

import (
	"fmt"

	"snmpv3fp/internal/ber"
)

// USMSecurityParameters is the UsmSecurityParameters SEQUENCE carried as an
// OCTET STRING inside msgSecurityParameters (RFC 3414 §2.4).
type USMSecurityParameters struct {
	AuthoritativeEngineID    []byte
	AuthoritativeEngineBoots int64
	AuthoritativeEngineTime  int64
	UserName                 []byte
	AuthenticationParameters []byte
	PrivacyParameters        []byte
}

// ScopedPDU is the plaintext scoped PDU of an SNMPv3 message (RFC 3412 §6).
type ScopedPDU struct {
	ContextEngineID []byte
	ContextName     []byte
	PDU             *PDU
}

// V3Message is a complete SNMPv3 message (RFC 3412 §6).
type V3Message struct {
	MsgID            int64
	MsgMaxSize       int64
	MsgFlags         byte
	MsgSecurityModel int64
	USM              USMSecurityParameters
	// ScopedPDU is the plaintext payload (priv flag clear).
	ScopedPDU ScopedPDU
	// EncryptedPDU is the encrypted ScopedPDU ciphertext (priv flag set);
	// internal/usm encrypts and decrypts it.
	EncryptedPDU []byte
}

// Reportable reports whether the reportable flag is set.
func (m *V3Message) Reportable() bool { return m.MsgFlags&FlagReportable != 0 }

// AuthFlag reports whether the auth flag is set.
func (m *V3Message) AuthFlag() bool { return m.MsgFlags&FlagAuth != 0 }

// PrivFlag reports whether the priv flag is set.
func (m *V3Message) PrivFlag() bool { return m.MsgFlags&FlagPriv != 0 }

// Encode serializes the message. With the priv flag set, EncryptedPDU is
// written as the msgData OCTET STRING; otherwise the plaintext ScopedPDU is
// emitted.
func (m *V3Message) Encode() ([]byte, error) {
	b := ber.NewBuilder()
	b.Begin(ber.TagSequence)
	b.Int(int64(V3))
	// msgGlobalData
	b.Begin(ber.TagSequence)
	b.Int(m.MsgID)
	b.Int(m.MsgMaxSize)
	b.OctetString([]byte{m.MsgFlags})
	b.Int(m.MsgSecurityModel)
	b.End()
	// msgSecurityParameters: OCTET STRING wrapping the USM SEQUENCE.
	usm := ber.NewBuilder()
	usm.Begin(ber.TagSequence)
	usm.OctetString(m.USM.AuthoritativeEngineID)
	usm.Int(m.USM.AuthoritativeEngineBoots)
	usm.Int(m.USM.AuthoritativeEngineTime)
	usm.OctetString(m.USM.UserName)
	usm.OctetString(m.USM.AuthenticationParameters)
	usm.OctetString(m.USM.PrivacyParameters)
	usm.End()
	usmBytes, err := usm.Bytes()
	if err != nil {
		return nil, err
	}
	b.OctetString(usmBytes)
	if m.MsgFlags&FlagPriv != 0 {
		// msgData: encryptedPDU OCTET STRING.
		b.OctetString(m.EncryptedPDU)
		b.End()
		return b.Bytes()
	}
	// msgData: plaintext ScopedPDU.
	b.Begin(ber.TagSequence)
	b.OctetString(m.ScopedPDU.ContextEngineID)
	b.OctetString(m.ScopedPDU.ContextName)
	if m.ScopedPDU.PDU == nil {
		return nil, fmt.Errorf("snmp: v3 message without PDU")
	}
	encodePDU(b, m.ScopedPDU.PDU)
	b.End()
	b.End()
	return b.Bytes()
}

// EncodeScopedPDU serializes a standalone ScopedPDU SEQUENCE — the
// plaintext that USM privacy encrypts.
func EncodeScopedPDU(s *ScopedPDU) ([]byte, error) {
	if s.PDU == nil {
		return nil, fmt.Errorf("snmp: scoped PDU without PDU")
	}
	b := ber.NewBuilder()
	b.Begin(ber.TagSequence)
	b.OctetString(s.ContextEngineID)
	b.OctetString(s.ContextName)
	encodePDU(b, s.PDU)
	b.End()
	return b.Bytes()
}

// DecodeScopedPDU parses a standalone ScopedPDU SEQUENCE.
func DecodeScopedPDU(buf []byte) (*ScopedPDU, error) {
	p := ber.NewParser(buf)
	spdu := p.Enter(ber.TagSequence)
	out := &ScopedPDU{}
	out.ContextEngineID = cloneBytes(spdu.OctetString())
	out.ContextName = cloneBytes(spdu.OctetString())
	if err := spdu.Err(); err != nil {
		return nil, err
	}
	pdu, err := parsePDU(spdu)
	if err != nil {
		return nil, err
	}
	out.PDU = pdu
	return out, nil
}

// DecodeV3 parses an SNMPv3 message. Encrypted scoped PDUs (priv flag set)
// yield ErrEncrypted after the header and USM parameters have been decoded;
// the returned message still carries the security parameters, which is all
// the measurement needs.
func DecodeV3(buf []byte) (*V3Message, error) {
	p := ber.NewParser(buf)
	msg := p.Enter(ber.TagSequence)
	version := msg.Int()
	if err := msg.Err(); err != nil {
		// Keep the BER-level cause in the chain so collectors can tell
		// transit truncation (ber.ErrTruncated) from other damage.
		return nil, fmt.Errorf("%w: %w", ErrNotSNMP, err)
	}
	if Version(version) != V3 {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, version)
	}
	out := &V3Message{}
	gd := msg.Enter(ber.TagSequence)
	out.MsgID = gd.Int()
	out.MsgMaxSize = gd.Int()
	flags := gd.OctetString()
	out.MsgSecurityModel = gd.Int()
	if err := gd.Err(); err != nil {
		return nil, err
	}
	if len(flags) != 1 {
		return nil, fmt.Errorf("snmp: msgFlags length %d", len(flags))
	}
	out.MsgFlags = flags[0]

	secParams := msg.OctetString()
	if err := msg.Err(); err != nil {
		return nil, err
	}
	sp := ber.NewParser(secParams).Enter(ber.TagSequence)
	out.USM.AuthoritativeEngineID = cloneBytes(sp.OctetString())
	out.USM.AuthoritativeEngineBoots = sp.Int()
	out.USM.AuthoritativeEngineTime = sp.Int()
	out.USM.UserName = cloneBytes(sp.OctetString())
	out.USM.AuthenticationParameters = cloneBytes(sp.OctetString())
	out.USM.PrivacyParameters = cloneBytes(sp.OctetString())
	if err := sp.Err(); err != nil {
		return nil, fmt.Errorf("snmp: bad USM parameters: %w", err)
	}

	if out.MsgFlags&FlagPriv != 0 {
		// The payload is an encrypted OCTET STRING; expose the ciphertext
		// so internal/usm can decrypt it.
		out.EncryptedPDU = cloneBytes(msg.OctetString())
		if msg.Err() != nil {
			out.EncryptedPDU = nil
		}
		return out, ErrEncrypted
	}
	spdu := msg.Enter(ber.TagSequence)
	out.ScopedPDU.ContextEngineID = cloneBytes(spdu.OctetString())
	out.ScopedPDU.ContextName = cloneBytes(spdu.OctetString())
	if err := spdu.Err(); err != nil {
		return nil, err
	}
	pdu, err := parsePDU(spdu)
	if err != nil {
		return nil, err
	}
	out.ScopedPDU.PDU = pdu
	return out, nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// DefaultMaxSize is the msgMaxSize our manager advertises; 65507 is the
// largest UDP payload over IPv4 and what Net-SNMP sends.
const DefaultMaxSize = 65507

// NewDiscoveryRequest builds the unauthenticated, unsolicited SNMPv3
// synchronization probe of the paper (Figure 2): empty engine ID, zero
// boots/time, empty user name, reportable flag set, noAuthNoPriv, and a Get
// PDU with an empty variable-bindings list.
func NewDiscoveryRequest(msgID, requestID int64) *V3Message {
	return &V3Message{
		MsgID:            msgID,
		MsgMaxSize:       DefaultMaxSize,
		MsgFlags:         FlagReportable,
		MsgSecurityModel: SecurityModelUSM,
		USM:              USMSecurityParameters{},
		ScopedPDU: ScopedPDU{
			PDU: &PDU{Type: PDUGetRequest, RequestID: requestID},
		},
	}
}

// EncodeDiscoveryRequest is a convenience wrapper returning the wire bytes of
// a discovery probe.
func EncodeDiscoveryRequest(msgID, requestID int64) ([]byte, error) {
	return NewDiscoveryRequest(msgID, requestID).Encode()
}

// DiscoveryResponse is the identifying metadata an agent reveals in its
// report to a discovery probe: the triple the whole paper is built on.
type DiscoveryResponse struct {
	MsgID       int64
	EngineID    []byte
	EngineBoots int64
	EngineTime  int64
	// ReportOID is the usmStats counter named in the report's first
	// variable binding (usually usmStatsUnknownEngineIDs).
	ReportOID []uint32
	// ReportCount is the counter value, when present.
	ReportCount uint64
}

// ParseDiscoveryResponse decodes buf as an SNMPv3 message and extracts the
// discovery metadata. It accepts both strict RFC 3414 reports and the
// slightly malformed replies common in the wild (missing varbinds, response
// instead of report), as the paper's scans must tolerate; it rejects
// messages without an SNMPv3 header.
func ParseDiscoveryResponse(buf []byte) (*DiscoveryResponse, error) {
	msg, err := DecodeV3(buf)
	if err != nil && err != ErrEncrypted {
		return nil, err
	}
	resp := &DiscoveryResponse{
		MsgID:       msg.MsgID,
		EngineID:    msg.USM.AuthoritativeEngineID,
		EngineBoots: msg.USM.AuthoritativeEngineBoots,
		EngineTime:  msg.USM.AuthoritativeEngineTime,
	}
	if err == ErrEncrypted || msg.ScopedPDU.PDU == nil {
		return resp, nil
	}
	pdu := msg.ScopedPDU.PDU
	if pdu.Type != PDUReport && pdu.Type != PDUGetResponse {
		return resp, ErrNotReport
	}
	if len(pdu.VarBinds) > 0 {
		resp.ReportOID = pdu.VarBinds[0].Name
		resp.ReportCount = pdu.VarBinds[0].Value.Uint
	}
	return resp, nil
}

// NewDiscoveryReport builds the agent-side answer to a discovery probe
// (Figure 3): a Report PDU for usmStatsUnknownEngineIDs carrying the agent's
// engine ID, boots and time in the USM security parameters.
func NewDiscoveryReport(req *V3Message, engineID []byte, boots, engineTime int64, unknownEngineIDs uint64) *V3Message {
	reqID := int64(0)
	if req.ScopedPDU.PDU != nil {
		reqID = req.ScopedPDU.PDU.RequestID
	}
	return &V3Message{
		MsgID:            req.MsgID,
		MsgMaxSize:       DefaultMaxSize,
		MsgFlags:         0, // reports to discovery are noAuthNoPriv, not reportable
		MsgSecurityModel: SecurityModelUSM,
		USM: USMSecurityParameters{
			AuthoritativeEngineID:    engineID,
			AuthoritativeEngineBoots: boots,
			AuthoritativeEngineTime:  engineTime,
		},
		ScopedPDU: ScopedPDU{
			ContextEngineID: engineID,
			PDU: &PDU{
				Type:      PDUReport,
				RequestID: reqID,
				VarBinds: []VarBind{{
					Name:  OIDUsmStatsUnknownEngineIDs,
					Value: Value{Tag: ber.TagCounter32, Uint: unknownEngineIDs},
				}},
			},
		},
	}
}
