package snmp

import (
	"bytes"
	"testing"
)

// Native fuzz targets: the decoders must never panic and every message our
// encoders produce must survive a decode round trip. `go test` runs the
// seed corpus; `go test -fuzz=FuzzDecodeV3` explores further.

func FuzzDecodeV3(f *testing.F) {
	seed, _ := EncodeDiscoveryRequest(1, 1)
	f.Add(seed)
	rep, _ := NewDiscoveryReport(NewDiscoveryRequest(1, 1),
		[]byte{0x80, 0, 0, 9, 3, 1, 2, 3, 4, 5, 6}, 2, 100, 1).Encode()
	f.Add(rep)
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeV3(data)
		if err == nil || err == ErrEncrypted {
			// Whatever decodes must re-encode and decode to the same
			// security parameters.
			wire, encErr := msg.Encode()
			if encErr != nil {
				if err == nil && msg.ScopedPDU.PDU != nil {
					t.Fatalf("decoded message failed to re-encode: %v", encErr)
				}
				return
			}
			again, err2 := DecodeV3(wire)
			if err2 != nil && err2 != ErrEncrypted {
				t.Fatalf("re-encode produced undecodable bytes: %v", err2)
			}
			if !bytes.Equal(again.USM.AuthoritativeEngineID, msg.USM.AuthoritativeEngineID) {
				t.Fatal("engine ID changed across round trip")
			}
		}
	})
}

func FuzzDecodeCommunity(f *testing.F) {
	seed, _ := NewGetRequest(V2c, "public", 1, OIDSysDescr).Encode()
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeCommunity(data)
		if err != nil {
			return
		}
		wire, err := msg.Encode()
		if err != nil {
			return // some decodable-but-odd PDUs may not re-encode
		}
		if _, err := DecodeCommunity(wire); err != nil {
			t.Fatalf("re-encode produced undecodable bytes: %v", err)
		}
	})
}

func FuzzDecodeTrapV1(f *testing.F) {
	seed, _ := EncodeTrapV1("c", &TrapV1{
		Enterprise: []uint32{1, 3, 6, 1, 4, 1, 9}, Timestamp: 5,
	})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeTrapV1(data)
	})
}

func FuzzParseDiscoveryResponse(f *testing.F) {
	rep, _ := NewDiscoveryReport(NewDiscoveryRequest(1, 1),
		[]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80},
		148, 10043812, 1).Encode()
	f.Add(rep)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseDiscoveryResponse(data)
	})
}
