// Package snmp implements the SNMP message layer: community-based SNMPv1 and
// SNMPv2c messages (RFC 1157, RFC 1901) and SNMPv3 messages with the
// User-based Security Model (RFC 3412, RFC 3414).
//
// The package's central use case is the paper's measurement primitive: the
// unauthenticated, unsolicited SNMPv3 "discovery" exchange. A manager that
// does not yet know an agent's engine ID sends a Get request whose USM
// security parameters carry an empty msgAuthoritativeEngineID; the agent
// answers with a Report PDU for usmStatsUnknownEngineIDs whose security
// parameters disclose the authoritative engine ID, engine boots, and engine
// time (RFC 3414 §4). NewDiscoveryRequest builds that probe and
// ParseDiscoveryResponse extracts the three identifiers.
package snmp

import (
	"errors"
	"fmt"

	"snmpv3fp/internal/ber"
)

// Version identifies the SNMP protocol version on the wire.
type Version int64

// Wire values for msgVersion / version.
const (
	V1  Version = 0
	V2c Version = 1
	V3  Version = 3
)

// String returns the conventional name of the version.
func (v Version) String() string {
	switch v {
	case V1:
		return "snmpv1"
	case V2c:
		return "snmpv2c"
	case V3:
		return "snmpv3"
	default:
		return fmt.Sprintf("snmp(version=%d)", int64(v))
	}
}

// PDUType is the context-class tag of an SNMP PDU.
type PDUType byte

// PDU tags (context class, constructed).
const (
	PDUGetRequest     PDUType = 0xA0
	PDUGetNextRequest PDUType = 0xA1
	PDUGetResponse    PDUType = 0xA2
	PDUSetRequest     PDUType = 0xA3
	PDUTrapV1         PDUType = 0xA4
	PDUGetBulkRequest PDUType = 0xA5
	PDUInformRequest  PDUType = 0xA6
	PDUTrapV2         PDUType = 0xA7
	PDUReport         PDUType = 0xA8
)

// String names the PDU type as in RFC 3416.
func (t PDUType) String() string {
	switch t {
	case PDUGetRequest:
		return "get-request"
	case PDUGetNextRequest:
		return "get-next-request"
	case PDUGetResponse:
		return "get-response"
	case PDUSetRequest:
		return "set-request"
	case PDUTrapV1:
		return "trap"
	case PDUGetBulkRequest:
		return "get-bulk-request"
	case PDUInformRequest:
		return "inform-request"
	case PDUTrapV2:
		return "snmpV2-trap"
	case PDUReport:
		return "report"
	default:
		return fmt.Sprintf("pdu(0x%02x)", byte(t))
	}
}

// Error-status codes (RFC 3416 §3).
const (
	ErrStatusNoError    = 0
	ErrStatusTooBig     = 1
	ErrStatusNoSuchName = 2
	ErrStatusGenErr     = 5
)

// Well-known OIDs used by the discovery exchange and the lab experiments.
var (
	// OIDUsmStatsUnknownEngineIDs is reported by agents answering discovery
	// probes (RFC 3414 §3.2 step 3(b)).
	OIDUsmStatsUnknownEngineIDs = []uint32{1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0}
	// OIDUsmStatsUnknownUserNames is reported when the engine ID matches but
	// the user is unknown ("unknown user name" in the paper's lab test).
	OIDUsmStatsUnknownUserNames = []uint32{1, 3, 6, 1, 6, 3, 15, 1, 1, 3, 0}
	// OIDSysDescr is sysDescr.0, queried in the paper's lab validation.
	OIDSysDescr = []uint32{1, 3, 6, 1, 2, 1, 1, 1, 0}
	// OIDSysUpTime is sysUpTime.0.
	OIDSysUpTime = []uint32{1, 3, 6, 1, 2, 1, 1, 3, 0}
	// OIDSysName is sysName.0.
	OIDSysName = []uint32{1, 3, 6, 1, 2, 1, 1, 5, 0}
)

// Message flag bits (RFC 3412 §6.4).
const (
	FlagAuth       = 0x01
	FlagPriv       = 0x02
	FlagReportable = 0x04
)

// USM security model number (RFC 3411 §5).
const SecurityModelUSM = 3

// Decoding errors.
var (
	ErrNotSNMP        = errors.New("snmp: not an SNMP message")
	ErrWrongVersion   = errors.New("snmp: unexpected version")
	ErrEncrypted      = errors.New("snmp: scoped PDU is encrypted")
	ErrNotReport      = errors.New("snmp: response is not a report PDU")
	ErrMissingVarBind = errors.New("snmp: report carries no variable bindings")
)

// Value is a typed SNMP variable-binding value.
type Value struct {
	// Tag is the BER tag of the value (ber.TagInteger, ber.TagOctetString,
	// ber.TagNull, ber.TagOID, ber.TagCounter32, ...).
	Tag byte
	// Int holds INTEGER values.
	Int int64
	// Uint holds Counter32/Gauge32/TimeTicks/Counter64 values.
	Uint uint64
	// Bytes holds OCTET STRING / IpAddress / Opaque bodies.
	Bytes []byte
	// OID holds OBJECT IDENTIFIER values.
	OID []uint32
}

// IntegerValue returns an INTEGER Value.
func IntegerValue(v int64) Value { return Value{Tag: ber.TagInteger, Int: v} }

// StringValue returns an OCTET STRING Value.
func StringValue(s string) Value { return Value{Tag: ber.TagOctetString, Bytes: []byte(s)} }

// NullValue returns a NULL Value.
func NullValue() Value { return Value{Tag: ber.TagNull} }

// TimeTicksValue returns a TimeTicks Value (hundredths of a second).
func TimeTicksValue(v uint64) Value { return Value{Tag: ber.TagTimeTicks, Uint: v} }

// Counter32Value returns a Counter32 Value.
func Counter32Value(v uint64) Value { return Value{Tag: ber.TagCounter32, Uint: v} }

// String renders the value for dissector output.
func (v Value) String() string {
	switch v.Tag {
	case ber.TagInteger:
		return fmt.Sprintf("%d", v.Int)
	case ber.TagOctetString:
		for _, b := range v.Bytes {
			if b < 0x20 || b > 0x7e {
				return fmt.Sprintf("0x%x", v.Bytes)
			}
		}
		return fmt.Sprintf("%q", v.Bytes)
	case ber.TagNull:
		return "null"
	case ber.TagOID:
		return OIDString(v.OID)
	case ber.TagCounter32:
		return fmt.Sprintf("Counter32(%d)", v.Uint)
	case ber.TagGauge32:
		return fmt.Sprintf("Gauge32(%d)", v.Uint)
	case ber.TagTimeTicks:
		return fmt.Sprintf("TimeTicks(%d)", v.Uint)
	case ber.TagCounter64:
		return fmt.Sprintf("Counter64(%d)", v.Uint)
	case ber.TagIPAddress:
		if len(v.Bytes) == 4 {
			return fmt.Sprintf("%d.%d.%d.%d", v.Bytes[0], v.Bytes[1], v.Bytes[2], v.Bytes[3])
		}
		return fmt.Sprintf("IpAddress(%x)", v.Bytes)
	case ber.TagNoSuchObject:
		return "noSuchObject"
	case ber.TagNoSuchInstance:
		return "noSuchInstance"
	case ber.TagEndOfMibView:
		return "endOfMibView"
	default:
		return fmt.Sprintf("value(tag=0x%02x)", v.Tag)
	}
}

// VarBind is one name/value pair in a PDU's variable-bindings list.
type VarBind struct {
	Name  []uint32
	Value Value
}

// PDU is the common SNMP protocol data unit (RFC 3416). GetBulk reuses
// ErrorStatus/ErrorIndex as non-repeaters/max-repetitions; this codec keeps
// the generic field names.
type PDU struct {
	Type        PDUType
	RequestID   int64
	ErrorStatus int64
	ErrorIndex  int64
	VarBinds    []VarBind
}

// OIDString formats an OID in dotted notation.
func OIDString(oid []uint32) string {
	if len(oid) == 0 {
		return ""
	}
	s := make([]byte, 0, len(oid)*4)
	for i, arc := range oid {
		if i > 0 {
			s = append(s, '.')
		}
		s = fmt.Appendf(s, "%d", arc)
	}
	return string(s)
}

// OIDEqual reports whether two OIDs are identical.
func OIDEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func encodePDU(b *ber.Builder, pdu *PDU) {
	b.Begin(byte(pdu.Type))
	b.Int(pdu.RequestID)
	b.Int(pdu.ErrorStatus)
	b.Int(pdu.ErrorIndex)
	b.Begin(ber.TagSequence)
	for _, vb := range pdu.VarBinds {
		b.Begin(ber.TagSequence)
		b.OID(vb.Name)
		encodeValue(b, vb.Value)
		b.End()
	}
	b.End()
	b.End()
}

func encodeValue(b *ber.Builder, v Value) {
	switch v.Tag {
	case ber.TagInteger:
		b.Int(v.Int)
	case ber.TagOctetString, ber.TagOpaque:
		b.Raw(ber.EncodeTLV(nil, v.Tag, v.Bytes))
	case ber.TagNull, ber.TagNoSuchObject, ber.TagNoSuchInstance, ber.TagEndOfMibView:
		b.Raw([]byte{v.Tag, 0x00})
	case ber.TagOID:
		b.OID(v.OID)
	case ber.TagCounter32, ber.TagGauge32, ber.TagTimeTicks, ber.TagCounter64:
		b.Uint(v.Tag, v.Uint)
	case ber.TagIPAddress:
		b.Raw(ber.EncodeTLV(nil, ber.TagIPAddress, v.Bytes))
	default:
		b.Raw(ber.EncodeTLV(nil, v.Tag, v.Bytes))
	}
}

func parseValue(tlv ber.TLV) (Value, error) {
	v := Value{Tag: tlv.Tag}
	switch tlv.Tag {
	case ber.TagInteger:
		i, err := ber.ParseInt(tlv.Value)
		if err != nil {
			return v, err
		}
		v.Int = i
	case ber.TagOctetString, ber.TagOpaque, ber.TagIPAddress:
		v.Bytes = tlv.Value
	case ber.TagNull, ber.TagNoSuchObject, ber.TagNoSuchInstance, ber.TagEndOfMibView:
	case ber.TagOID:
		oid, err := ber.ParseOID(tlv.Value)
		if err != nil {
			return v, err
		}
		v.OID = oid
	case ber.TagCounter32, ber.TagGauge32, ber.TagTimeTicks, ber.TagCounter64:
		u, err := ber.ParseUint(tlv.Value)
		if err != nil {
			return v, err
		}
		v.Uint = u
	default:
		v.Bytes = tlv.Value
	}
	return v, nil
}

func parsePDU(p *ber.Parser) (*PDU, error) {
	tag := p.Peek()
	switch PDUType(tag) {
	case PDUGetRequest, PDUGetNextRequest, PDUGetResponse, PDUSetRequest,
		PDUGetBulkRequest, PDUInformRequest, PDUTrapV2, PDUReport:
	default:
		return nil, fmt.Errorf("snmp: unsupported PDU tag 0x%02x", tag)
	}
	body := p.Enter(tag)
	pdu := &PDU{Type: PDUType(tag)}
	pdu.RequestID = body.Int()
	pdu.ErrorStatus = body.Int()
	pdu.ErrorIndex = body.Int()
	vbl := body.Enter(ber.TagSequence)
	for vbl.Err() == nil && !vbl.Empty() {
		vb := vbl.Enter(ber.TagSequence)
		name := vb.OID()
		val := vb.Any()
		if vb.Err() != nil {
			return nil, vb.Err()
		}
		value, err := parseValue(val)
		if err != nil {
			return nil, err
		}
		pdu.VarBinds = append(pdu.VarBinds, VarBind{Name: name, Value: value})
	}
	if err := vbl.Err(); err != nil {
		return nil, err
	}
	if err := body.Err(); err != nil {
		return nil, err
	}
	return pdu, nil
}
