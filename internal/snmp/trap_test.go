package snmp

import (
	"testing"
	"testing/quick"
)

func TestTrapV1RoundTrip(t *testing.T) {
	trap := &TrapV1{
		Enterprise:   []uint32{1, 3, 6, 1, 4, 1, 9},
		AgentAddr:    [4]byte{192, 0, 2, 7},
		GenericTrap:  TrapLinkDown,
		SpecificTrap: 0,
		Timestamp:    123456,
		VarBinds: []VarBind{
			{Name: []uint32{1, 3, 6, 1, 2, 1, 2, 2, 1, 1, 3}, Value: IntegerValue(3)},
			{Name: OIDSysName, Value: StringValue("core1")},
		},
	}
	wire, err := EncodeTrapV1("traps", trap)
	if err != nil {
		t.Fatal(err)
	}
	community, got, err := DecodeTrapV1(wire)
	if err != nil {
		t.Fatal(err)
	}
	if community != "traps" {
		t.Errorf("community = %q", community)
	}
	if !OIDEqual(got.Enterprise, trap.Enterprise) {
		t.Errorf("enterprise = %v", got.Enterprise)
	}
	if got.AgentAddr != trap.AgentAddr {
		t.Errorf("agent addr = %v", got.AgentAddr)
	}
	if got.GenericTrap != TrapLinkDown || got.SpecificTrap != 0 || got.Timestamp != 123456 {
		t.Errorf("trap fields = %+v", got)
	}
	if len(got.VarBinds) != 2 || got.VarBinds[0].Value.Int != 3 ||
		string(got.VarBinds[1].Value.Bytes) != "core1" {
		t.Errorf("varbinds = %+v", got.VarBinds)
	}
	// PeekVersion still routes it as v1.
	if v, err := PeekVersion(wire); err != nil || v != V1 {
		t.Errorf("PeekVersion = %v, %v", v, err)
	}
}

func TestTrapV1RejectsWrongVersion(t *testing.T) {
	// A v2c get is not a v1 trap.
	wire, _ := NewGetRequest(V2c, "c", 1, OIDSysDescr).Encode()
	if _, _, err := DecodeTrapV1(wire); err == nil {
		t.Error("v2c message decoded as v1 trap")
	}
	if _, _, err := DecodeTrapV1([]byte("junk")); err == nil {
		t.Error("junk decoded as trap")
	}
	// A v1 get is the right version but the wrong PDU.
	v1get, _ := NewGetRequest(V1, "c", 1, OIDSysDescr).Encode()
	if _, _, err := DecodeTrapV1(v1get); err == nil {
		t.Error("v1 get decoded as trap")
	}
}

func TestTrapV1Quick(t *testing.T) {
	f := func(ent uint32, addr [4]byte, gen, spec int32, ts uint32) bool {
		trap := &TrapV1{
			Enterprise:   []uint32{1, 3, 6, 1, 4, 1, ent},
			AgentAddr:    addr,
			GenericTrap:  int64(gen),
			SpecificTrap: int64(spec),
			Timestamp:    uint64(ts),
		}
		wire, err := EncodeTrapV1("c", trap)
		if err != nil {
			return false
		}
		_, got, err := DecodeTrapV1(wire)
		if err != nil {
			return false
		}
		return got.AgentAddr == addr && got.GenericTrap == int64(gen) &&
			got.SpecificTrap == int64(spec) && got.Timestamp == uint64(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrapV1GenericCodes(t *testing.T) {
	if TrapColdStart != 0 || TrapEnterpriseSpecific != 6 {
		t.Error("generic trap codes wrong")
	}
}

func TestTrapV1FuzzNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = DecodeTrapV1(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// Truncations of a valid trap never panic and always error.
	trap := &TrapV1{Enterprise: []uint32{1, 3, 6, 1, 4, 1, 9}, Timestamp: 1}
	wire, _ := EncodeTrapV1("c", trap)
	for i := 0; i < len(wire); i++ {
		if _, _, err := DecodeTrapV1(wire[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}
