package snmp_test

import (
	"errors"
	"testing"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/snmp"
)

// FuzzParseDiscoveryResponseHostile seeds the discovery-response parser with
// exactly the damaged datagrams the netsim fault layer injects — truncations
// at many offsets and leading-octet corruption of a real report — then lets
// the fuzzer mutate from there. Invariants: no panic, any truncation of a
// well-formed report is reported as ber.ErrTruncated, and whatever parses
// yields a bounded engine ID.
func FuzzParseDiscoveryResponseHostile(f *testing.F) {
	req := snmp.NewDiscoveryRequest(7, 7)
	rep, err := snmp.NewDiscoveryReport(req,
		[]byte{0x80, 0x00, 0x1F, 0x88, 0x04, 1, 2, 3, 4, 5}, 3, 123456, 9).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rep)
	for h := uint64(0); h < 16; h++ {
		f.Add(netsim.TruncatePayload(h*h*2654435761, rep))
	}
	f.Add(netsim.CorruptPayload(rep))
	f.Add(netsim.CorruptPayload(netsim.TruncatePayload(5, rep)))
	// Every strict prefix of the report must fail with a truncation error,
	// never a panic or a bogus success — this is what lets core.Collect
	// attribute transit damage to Campaign.Truncated.
	for cut := 1; cut < len(rep); cut++ {
		if _, err := snmp.ParseDiscoveryResponse(rep[:cut]); !errors.Is(err, ber.ErrTruncated) {
			f.Fatalf("prefix of %d/%d bytes: err = %v, want ber.ErrTruncated", cut, len(rep), err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dr, err := snmp.ParseDiscoveryResponse(data)
		if err != nil {
			return
		}
		if len(dr.EngineID) > len(data) {
			t.Fatalf("engine ID longer than the datagram: %d > %d", len(dr.EngineID), len(data))
		}
	})
}
