package snmp

import (
	"bytes"
	"testing"
)

// Differential fuzz targets: the zero-allocation fast path in fastpath.go
// must agree with the allocating reference implementations on EVERY input —
// same accept/reject decision, same extracted fields — with the target
// struct reused across inputs so stale state from one parse cannot leak into
// the next.

func fastpathSeeds(f *testing.F) {
	probe, _ := EncodeDiscoveryRequest(123456, 654321)
	f.Add(probe)
	rep, _ := NewDiscoveryReport(NewDiscoveryRequest(1, 1),
		[]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80},
		148, 10043812, 1).Encode()
	f.Add(rep)
	enc, _ := (&V3Message{
		MsgID: 9, MsgMaxSize: DefaultMaxSize, MsgFlags: FlagPriv,
		MsgSecurityModel: SecurityModelUSM,
		EncryptedPDU:     []byte{0xDE, 0xAD},
	}).Encode()
	f.Add(enc)
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x03})
	f.Add([]byte{})
}

func FuzzParseDiscoveryResponseIntoDiff(f *testing.F) {
	fastpathSeeds(f)
	// The reused struct persists across fuzz iterations by design: that is
	// exactly the aliasing/staleness hazard the differential check guards.
	reused := &DiscoveryResponse{}
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := ParseDiscoveryResponse(data)
		gotErr := ParseDiscoveryResponseInto(reused, data)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("allocating err=%v, into err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if (wantErr == ErrNotReport) != (gotErr == ErrNotReport) {
				t.Fatalf("ErrNotReport disagreement: allocating=%v into=%v", wantErr, gotErr)
			}
			if wantErr != ErrNotReport {
				return
			}
		}
		if reused.MsgID != want.MsgID ||
			reused.EngineBoots != want.EngineBoots ||
			reused.EngineTime != want.EngineTime ||
			reused.ReportCount != want.ReportCount {
			t.Fatalf("field mismatch:\ninto       %+v\nallocating %+v", reused, want)
		}
		if !bytes.Equal(reused.EngineID, want.EngineID) {
			t.Fatalf("EngineID: into %x, allocating %x", reused.EngineID, want.EngineID)
		}
		if len(reused.ReportOID) != len(want.ReportOID) {
			t.Fatalf("ReportOID: into %v, allocating %v", reused.ReportOID, want.ReportOID)
		}
		for i := range want.ReportOID {
			if reused.ReportOID[i] != want.ReportOID[i] {
				t.Fatalf("ReportOID: into %v, allocating %v", reused.ReportOID, want.ReportOID)
			}
		}
	})
}

func FuzzParseRequestIDsDiff(f *testing.F) {
	fastpathSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, wantErr := DecodeV3(data)
		msgID, reqID, gotErr := ParseRequestIDs(data)
		if (wantErr == nil) != (gotErr == nil) || (wantErr == ErrEncrypted) != (gotErr == ErrEncrypted) {
			t.Fatalf("DecodeV3 err=%v, ParseRequestIDs err=%v", wantErr, gotErr)
		}
		if wantErr != nil && wantErr != ErrEncrypted {
			return
		}
		wantReq := int64(0)
		if msg.ScopedPDU.PDU != nil {
			wantReq = msg.ScopedPDU.PDU.RequestID
		}
		if msgID != msg.MsgID || reqID != wantReq {
			t.Fatalf("ParseRequestIDs = (%d, %d), DecodeV3 = (%d, %d)", msgID, reqID, msg.MsgID, wantReq)
		}
	})
}
