package snmp

import (
	"fmt"
	"math"

	"snmpv3fp/internal/ber"
)

// This file is the allocation-free twin of the discovery codec in v3.go.
//
// The generic paths (V3Message.Encode, DecodeV3, ParseDiscoveryResponse) are
// the reference implementations: a Builder back-patches nested lengths and a
// Parser tree clones every byte slice it hands out. Both are exercised once
// per message shape in tests and by off-path tooling, but a scan campaign
// encodes one probe and parses hundreds of thousands of responses, so the
// scanner, core collector, and netsim agents use the functions below instead:
//
//   - AppendDiscoveryRequest / AppendDiscoveryReport compute every nested
//     SEQUENCE length arithmetically (ber.IntSize/UintSize/TLVSize) and emit
//     the message in a single forward pass into a caller-owned buffer.
//   - ParseDiscoveryResponseInto / ParseRequestIDs walk the wire bytes with
//     ber.DecodeTLV value tokens, reusing the caller's DiscoveryResponse
//     scratch instead of allocating a Parser tree and cloned slices.
//
// Byte-for-byte and error-for-error equivalence with the generic paths is
// pinned by fastpath_test.go and the differential fuzz targets in
// fuzz_fastpath_test.go; do not let the two implementations drift.

// usmDiscoveryParams is the constant msgSecurityParameters OCTET STRING of a
// discovery probe: a USM SEQUENCE with empty engine ID, zero boots/time, and
// empty user/auth/priv strings (RFC 3414 §4).
var usmDiscoveryParams = [18]byte{
	ber.TagOctetString, 16,
	ber.TagSequence, 14,
	ber.TagOctetString, 0, // msgAuthoritativeEngineID: empty
	ber.TagInteger, 1, 0, // msgAuthoritativeEngineBoots: 0
	ber.TagInteger, 1, 0, // msgAuthoritativeEngineTime: 0
	ber.TagOctetString, 0, // msgUserName: empty
	ber.TagOctetString, 0, // msgAuthenticationParameters: empty
	ber.TagOctetString, 0, // msgPrivacyParameters: empty
}

// oidUsmStatsUnknownEngineIDsBody is the encoded body of
// OIDUsmStatsUnknownEngineIDs (1.3.6.1.6.3.15.1.1.4.0).
var oidUsmStatsUnknownEngineIDsBody = [10]byte{
	0x2B, 0x06, 0x01, 0x06, 0x03, 0x0F, 0x01, 0x01, 0x04, 0x00,
}

// AppendDiscoveryRequest appends the wire encoding of a discovery probe
// (NewDiscoveryRequest) to dst and returns the extended slice. The output is
// byte-identical to EncodeDiscoveryRequest(msgID, requestID); with dst
// capacity reused across calls it performs zero allocations, which lets the
// scanner patch fresh msgID/requestID values into a campaign's probe without
// re-running the Builder.
func AppendDiscoveryRequest(dst []byte, msgID, requestID int64) []byte {
	mi := ber.IntSize(msgID)
	ri := ber.IntSize(requestID)
	msz := ber.IntSize(DefaultMaxSize)

	// msgGlobalData: msgID, msgMaxSize, msgFlags (1 octet), msgSecurityModel.
	gb := (2 + mi) + (2 + msz) + 3 + 3
	// PDU body: request-id, error-status, error-index, empty varbind list.
	pb := (2 + ri) + 3 + 3 + 2
	// ScopedPDU: empty contextEngineID, empty contextName, GetRequest PDU.
	sb := 2 + 2 + ber.TLVSize(pb)
	// Message body: version, global data, USM params, scoped PDU.
	mb := 3 + ber.TLVSize(gb) + len(usmDiscoveryParams) + ber.TLVSize(sb)

	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, mb)
	dst = append(dst, ber.TagInteger, 1, byte(V3))
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, gb)
	dst = append(dst, ber.TagInteger, byte(mi))
	dst = ber.AppendInt(dst, msgID)
	dst = append(dst, ber.TagInteger, byte(msz))
	dst = ber.AppendInt(dst, DefaultMaxSize)
	dst = append(dst, ber.TagOctetString, 1, FlagReportable)
	dst = append(dst, ber.TagInteger, 1, SecurityModelUSM)
	dst = append(dst, usmDiscoveryParams[:]...)
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, sb)
	dst = append(dst, ber.TagOctetString, 0) // contextEngineID: empty
	dst = append(dst, ber.TagOctetString, 0) // contextName: empty
	dst = append(dst, byte(PDUGetRequest))
	dst = ber.AppendLength(dst, pb)
	dst = append(dst, ber.TagInteger, byte(ri))
	dst = ber.AppendInt(dst, requestID)
	dst = append(dst, ber.TagInteger, 1, 0) // error-status
	dst = append(dst, ber.TagInteger, 1, 0) // error-index
	dst = append(dst, ber.TagSequence, 0)   // empty variable-bindings
	return dst
}

// AppendDiscoveryReport appends the wire encoding of an agent's answer to a
// discovery probe to dst and returns the extended slice. The output is
// byte-identical to NewDiscoveryReport(req, ...).Encode() for a request with
// the given msgID and requestID. netsim agents call this once per simulated
// response instead of building a V3Message tree.
func AppendDiscoveryReport(dst []byte, msgID, requestID int64, engineID []byte, boots, engineTime int64, unknownEngineIDs uint64) []byte {
	mi := ber.IntSize(msgID)
	ri := ber.IntSize(requestID)
	bi := ber.IntSize(boots)
	ti := ber.IntSize(engineTime)
	ci := ber.UintSize(unknownEngineIDs)
	msz := ber.IntSize(DefaultMaxSize)
	e := len(engineID)

	gb := (2 + mi) + (2 + msz) + 3 + 3
	// USM SEQUENCE: engine ID, boots, time, empty user/auth/priv.
	ub := ber.TLVSize(e) + (2 + bi) + (2 + ti) + 2 + 2 + 2
	usmOS := ber.TLVSize(ub) // the SEQUENCE, wrapped below as an OCTET STRING
	// Single varbind: usmStatsUnknownEngineIDs OID + Counter32 value.
	vbb := (2 + len(oidUsmStatsUnknownEngineIDsBody)) + (2 + ci)
	vblb := ber.TLVSize(vbb)
	pb := (2 + ri) + 3 + 3 + ber.TLVSize(vblb)
	sb := ber.TLVSize(e) + 2 + ber.TLVSize(pb)
	mb := 3 + ber.TLVSize(gb) + ber.TLVSize(usmOS) + ber.TLVSize(sb)

	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, mb)
	dst = append(dst, ber.TagInteger, 1, byte(V3))
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, gb)
	dst = append(dst, ber.TagInteger, byte(mi))
	dst = ber.AppendInt(dst, msgID)
	dst = append(dst, ber.TagInteger, byte(msz))
	dst = ber.AppendInt(dst, DefaultMaxSize)
	dst = append(dst, ber.TagOctetString, 1, 0) // msgFlags: noAuthNoPriv, not reportable
	dst = append(dst, ber.TagInteger, 1, SecurityModelUSM)
	dst = append(dst, ber.TagOctetString)
	dst = ber.AppendLength(dst, usmOS)
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, ub)
	dst = append(dst, ber.TagOctetString)
	dst = ber.AppendLength(dst, e)
	dst = append(dst, engineID...)
	dst = append(dst, ber.TagInteger, byte(bi))
	dst = ber.AppendInt(dst, boots)
	dst = append(dst, ber.TagInteger, byte(ti))
	dst = ber.AppendInt(dst, engineTime)
	dst = append(dst, ber.TagOctetString, 0) // msgUserName
	dst = append(dst, ber.TagOctetString, 0) // msgAuthenticationParameters
	dst = append(dst, ber.TagOctetString, 0) // msgPrivacyParameters
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, sb)
	dst = append(dst, ber.TagOctetString)
	dst = ber.AppendLength(dst, e)
	dst = append(dst, engineID...) // contextEngineID mirrors the USM engine ID
	dst = append(dst, ber.TagOctetString, 0)
	dst = append(dst, byte(PDUReport))
	dst = ber.AppendLength(dst, pb)
	dst = append(dst, ber.TagInteger, byte(ri))
	dst = ber.AppendInt(dst, requestID)
	dst = append(dst, ber.TagInteger, 1, 0) // error-status
	dst = append(dst, ber.TagInteger, 1, 0) // error-index
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, vblb)
	dst = append(dst, ber.TagSequence)
	dst = ber.AppendLength(dst, vbb)
	dst = append(dst, ber.TagOID, byte(len(oidUsmStatsUnknownEngineIDsBody)))
	dst = append(dst, oidUsmStatsUnknownEngineIDsBody[:]...)
	dst = append(dst, ber.TagCounter32, byte(ci))
	dst = ber.AppendUint(dst, unknownEngineIDs)
	return dst
}

// decodeExpect decodes one TLV from the front of buf and requires the given
// tag, mirroring ber.Parser.next's error wrapping.
func decodeExpect(buf []byte, tag byte) (val, rest []byte, err error) {
	tlv, rest, err := ber.DecodeTLV(buf)
	if err != nil {
		return nil, nil, err
	}
	if tlv.Tag != tag {
		return nil, nil, fmt.Errorf("%w: want 0x%02x, got 0x%02x", ber.ErrBadTag, tag, tlv.Tag)
	}
	return tlv.Value, rest, nil
}

// readInt consumes an INTEGER TLV.
func readInt(buf []byte) (int64, []byte, error) {
	body, rest, err := decodeExpect(buf, ber.TagInteger)
	if err != nil {
		return 0, nil, err
	}
	v, err := ber.ParseInt(body)
	if err != nil {
		return 0, nil, err
	}
	return v, rest, nil
}

// checkOIDBody validates an OBJECT IDENTIFIER body without materializing its
// arcs, reproducing ber.ParseOID's error behavior.
func checkOIDBody(body []byte) error {
	if len(body) == 0 {
		return ber.ErrTruncated
	}
	var v uint64
	for i, b := range body {
		v = v<<7 | uint64(b&0x7F)
		if v > math.MaxUint32 {
			return fmt.Errorf("ber: OID arc overflow at octet %d", i)
		}
		if b&0x80 == 0 {
			v = 0
		}
	}
	if body[len(body)-1]&0x80 != 0 {
		return ber.ErrTruncated
	}
	return nil
}

// checkValue validates a varbind value TLV as parseValue would, returning the
// unsigned value for the application counter tags (and zero otherwise).
func checkValue(tlv ber.TLV) (uint64, error) {
	switch tlv.Tag {
	case ber.TagInteger:
		_, err := ber.ParseInt(tlv.Value)
		return 0, err
	case ber.TagOID:
		return 0, checkOIDBody(tlv.Value)
	case ber.TagCounter32, ber.TagGauge32, ber.TagTimeTicks, ber.TagCounter64:
		return ber.ParseUint(tlv.Value)
	default:
		// OCTET STRING, NULL, IpAddress, Opaque, exceptions, and unknown
		// tags carry their bodies opaquely; parseValue accepts them as-is.
		return 0, nil
	}
}

// walkV3 is the shared allocation-free walk over an SNMPv3 message. It
// reproduces DecodeV3 + parsePDU validation exactly — same accepted set, same
// sentinel wrapping — without building a V3Message. When resp is non-nil the
// discovery fields are filled in as the walk passes them; pduType is zero
// when the message is encrypted.
func walkV3(buf []byte, resp *DiscoveryResponse) (msgID, requestID int64, pduType PDUType, err error) {
	msg, _, err := decodeExpect(buf, ber.TagSequence)
	var version int64
	if err == nil {
		version, msg, err = readInt(msg)
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%w: %w", ErrNotSNMP, err)
	}
	if Version(version) != V3 {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrWrongVersion, version)
	}

	// msgGlobalData
	gd, msg, err := decodeExpect(msg, ber.TagSequence)
	if err != nil {
		return 0, 0, 0, err
	}
	msgID, gd, err = readInt(gd)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, gd, err = readInt(gd); err != nil { // msgMaxSize
		return 0, 0, 0, err
	}
	flags, gd, err := decodeExpect(gd, ber.TagOctetString)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, _, err = readInt(gd); err != nil { // msgSecurityModel
		return 0, 0, 0, err
	}
	if len(flags) != 1 {
		return 0, 0, 0, fmt.Errorf("snmp: msgFlags length %d", len(flags))
	}
	if resp != nil {
		resp.MsgID = msgID
	}

	// msgSecurityParameters: OCTET STRING wrapping the USM SEQUENCE.
	secParams, msg, err := decodeExpect(msg, ber.TagOctetString)
	if err != nil {
		return 0, 0, 0, err
	}
	usm, _, err := decodeExpect(secParams, ber.TagSequence)
	var engineID []byte
	var boots, engineTime int64
	if err == nil {
		engineID, usm, err = decodeExpect(usm, ber.TagOctetString)
	}
	if err == nil {
		boots, usm, err = readInt(usm)
	}
	if err == nil {
		engineTime, usm, err = readInt(usm)
	}
	if err == nil {
		_, usm, err = decodeExpect(usm, ber.TagOctetString) // msgUserName
	}
	if err == nil {
		_, usm, err = decodeExpect(usm, ber.TagOctetString) // msgAuthenticationParameters
	}
	if err == nil {
		_, _, err = decodeExpect(usm, ber.TagOctetString) // msgPrivacyParameters
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("snmp: bad USM parameters: %w", err)
	}
	if resp != nil {
		// EngineID aliases buf; ParseDiscoveryResponseInto documents the
		// copy-before-retain contract.
		resp.EngineID = engineID
		resp.EngineBoots = boots
		resp.EngineTime = engineTime
	}

	if flags[0]&FlagPriv != 0 {
		// Encrypted scoped PDU: DecodeV3 stops here with ErrEncrypted and
		// tolerates any damage in the ciphertext OCTET STRING.
		return msgID, 0, 0, ErrEncrypted
	}

	// Plaintext ScopedPDU.
	spdu, _, err := decodeExpect(msg, ber.TagSequence)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, spdu, err = decodeExpect(spdu, ber.TagOctetString); err != nil { // contextEngineID
		return 0, 0, 0, err
	}
	if _, spdu, err = decodeExpect(spdu, ber.TagOctetString); err != nil { // contextName
		return 0, 0, 0, err
	}

	// PDU: context-tagged CHOICE, same accepted set as parsePDU.
	var tag byte
	if len(spdu) > 0 {
		tag = spdu[0]
	}
	switch PDUType(tag) {
	case PDUGetRequest, PDUGetNextRequest, PDUGetResponse, PDUSetRequest,
		PDUGetBulkRequest, PDUInformRequest, PDUTrapV2, PDUReport:
	default:
		return 0, 0, 0, fmt.Errorf("snmp: unsupported PDU tag 0x%02x", tag)
	}
	body, _, err := decodeExpect(spdu, tag)
	if err != nil {
		return 0, 0, 0, err
	}
	if requestID, body, err = readInt(body); err != nil {
		return 0, 0, 0, err
	}
	if _, body, err = readInt(body); err != nil { // error-status
		return 0, 0, 0, err
	}
	if _, body, err = readInt(body); err != nil { // error-index
		return 0, 0, 0, err
	}
	vbl, _, err := decodeExpect(body, ber.TagSequence)
	if err != nil {
		return 0, 0, 0, err
	}
	reportLike := PDUType(tag) == PDUReport || PDUType(tag) == PDUGetResponse
	for i := 0; len(vbl) > 0; i++ {
		var vb []byte
		if vb, vbl, err = decodeExpect(vbl, ber.TagSequence); err != nil {
			return 0, 0, 0, err
		}
		name, vb, err := decodeExpect(vb, ber.TagOID)
		if err != nil {
			return 0, 0, 0, err
		}
		// The OID body is parsed before the value TLV is decoded, matching
		// parsePDU's error precedence (vb.OID latches before vb.Any runs).
		keep := resp != nil && reportLike && i == 0
		if keep {
			// First varbind of a report: materialize the OID into the
			// caller's scratch.
			oid, oidErr := ber.ParseOIDInto(resp.ReportOID, name)
			if oidErr != nil {
				return 0, 0, 0, oidErr
			}
			resp.ReportOID = oid
		} else if err := checkOIDBody(name); err != nil {
			// Remaining varbinds are validated — their damage must surface
			// exactly as it does through parsePDU — but not materialized.
			return 0, 0, 0, err
		}
		val, _, err := ber.DecodeTLV(vb)
		if err != nil {
			return 0, 0, 0, err
		}
		count, valErr := checkValue(val)
		if valErr != nil {
			return 0, 0, 0, valErr
		}
		if keep {
			resp.ReportCount = count
		}
	}
	return msgID, requestID, PDUType(tag), nil
}

// ParseDiscoveryResponseInto decodes buf as an SNMPv3 message and extracts
// the discovery metadata into resp, reusing resp.ReportOID's capacity. It
// accepts exactly the inputs ParseDiscoveryResponse accepts and fails with
// equivalent errors (same sentinels via errors.Is) on the inputs it rejects;
// the differential fuzz target FuzzParseDiscoveryResponseIntoDiff pins the
// equivalence.
//
// Unlike ParseDiscoveryResponse, resp.EngineID aliases buf — callers that
// retain it past the buffer's lifetime (or release buf to a pool) must copy
// it first. On error resp is partially filled and must not be used, except
// with ErrNotReport, where resp carries the header fields as the allocating
// path does.
func ParseDiscoveryResponseInto(resp *DiscoveryResponse, buf []byte) error {
	resp.MsgID = 0
	resp.EngineID = nil
	resp.EngineBoots = 0
	resp.EngineTime = 0
	resp.ReportOID = resp.ReportOID[:0]
	resp.ReportCount = 0
	_, _, pduType, err := walkV3(buf, resp)
	if err == ErrEncrypted {
		return nil
	}
	if err != nil {
		return err
	}
	if pduType != PDUReport && pduType != PDUGetResponse {
		// Header fields stay filled, mirroring ParseDiscoveryResponse's
		// (resp, ErrNotReport) return; the first varbind was not kept.
		resp.ReportOID = resp.ReportOID[:0]
		resp.ReportCount = 0
		return ErrNotReport
	}
	return nil
}

// ParseRequestIDs extracts msgID and requestID from an SNMPv3 message without
// allocating, validating the full message exactly as DecodeV3 does: it
// returns an error if and only if DecodeV3 would, including ErrEncrypted for
// priv-flagged messages (whose requestID reads as zero, as a nil scoped PDU
// does through NewDiscoveryReport). netsim agents use it to answer probes
// without decoding into a V3Message tree.
func ParseRequestIDs(buf []byte) (msgID, requestID int64, err error) {
	msgID, requestID, _, err = walkV3(buf, nil)
	if err == ErrEncrypted {
		return msgID, 0, ErrEncrypted
	}
	if err != nil {
		return 0, 0, err
	}
	return msgID, requestID, nil
}
