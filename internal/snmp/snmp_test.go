package snmp

import (
	"bytes"
	"testing"
	"testing/quick"

	"snmpv3fp/internal/ber"
)

func TestVersionString(t *testing.T) {
	if V1.String() != "snmpv1" || V2c.String() != "snmpv2c" || V3.String() != "snmpv3" {
		t.Error("version names wrong")
	}
	if Version(7).String() != "snmp(version=7)" {
		t.Error("unknown version name wrong")
	}
}

func TestPDUTypeString(t *testing.T) {
	cases := map[PDUType]string{
		PDUGetRequest:  "get-request",
		PDUGetResponse: "get-response",
		PDUReport:      "report",
		PDUTrapV2:      "snmpV2-trap",
		PDUType(0xAF):  "pdu(0xaf)",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%v != %s", typ, want)
		}
	}
}

func TestOIDString(t *testing.T) {
	if got := OIDString(OIDUsmStatsUnknownEngineIDs); got != "1.3.6.1.6.3.15.1.1.4.0" {
		t.Errorf("OIDString = %s", got)
	}
	if OIDString(nil) != "" {
		t.Error("empty OID should format empty")
	}
}

func TestOIDEqual(t *testing.T) {
	if !OIDEqual(OIDSysDescr, []uint32{1, 3, 6, 1, 2, 1, 1, 1, 0}) {
		t.Error("equal OIDs compare unequal")
	}
	if OIDEqual(OIDSysDescr, OIDSysName) {
		t.Error("different OIDs compare equal")
	}
	if OIDEqual(OIDSysDescr, OIDSysDescr[:5]) {
		t.Error("prefix OIDs compare equal")
	}
}

func TestDiscoveryRequestShape(t *testing.T) {
	req := NewDiscoveryRequest(100, 200)
	if !req.Reportable() {
		t.Error("discovery request must be reportable")
	}
	if req.AuthFlag() || req.PrivFlag() {
		t.Error("discovery request must be noAuthNoPriv")
	}
	if len(req.USM.AuthoritativeEngineID) != 0 {
		t.Error("discovery request must have empty engine ID")
	}
	if req.USM.AuthoritativeEngineBoots != 0 || req.USM.AuthoritativeEngineTime != 0 {
		t.Error("discovery request must have zero boots/time")
	}
	if len(req.USM.UserName) != 0 {
		t.Error("discovery request must have empty user name")
	}
	if len(req.ScopedPDU.PDU.VarBinds) != 0 {
		t.Error("discovery request must have empty varbinds")
	}
}

func TestDiscoveryRoundTrip(t *testing.T) {
	wire, err := EncodeDiscoveryRequest(42, 4242)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports an 88-byte IPv4 probe (frame size incl. 42 bytes of
	// Ethernet+IP+UDP headers => ~46-byte SNMP payload). Ours should be in
	// the same region.
	if len(wire) < 40 || len(wire) > 80 {
		t.Errorf("probe payload %d bytes, expected 40..80", len(wire))
	}
	msg, err := DecodeV3(wire)
	if err != nil {
		t.Fatal(err)
	}
	if msg.MsgID != 42 || msg.ScopedPDU.PDU.RequestID != 4242 {
		t.Errorf("IDs: %d %d", msg.MsgID, msg.ScopedPDU.PDU.RequestID)
	}
	if msg.MsgFlags != FlagReportable || msg.MsgSecurityModel != SecurityModelUSM {
		t.Errorf("flags %02x model %d", msg.MsgFlags, msg.MsgSecurityModel)
	}
}

func TestDiscoveryReportRoundTrip(t *testing.T) {
	req := NewDiscoveryRequest(7, 77)
	engineID := []byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80}
	rep := NewDiscoveryReport(req, engineID, 148, 10043812, 5)
	wire, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseDiscoveryResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.EngineID, engineID) {
		t.Errorf("engine ID %x", resp.EngineID)
	}
	if resp.EngineBoots != 148 || resp.EngineTime != 10043812 {
		t.Errorf("boots/time %d/%d", resp.EngineBoots, resp.EngineTime)
	}
	if !OIDEqual(resp.ReportOID, OIDUsmStatsUnknownEngineIDs) {
		t.Errorf("report OID %v", resp.ReportOID)
	}
	if resp.ReportCount != 5 {
		t.Errorf("report count %d", resp.ReportCount)
	}
}

func TestParseDiscoveryResponseRejectsGarbage(t *testing.T) {
	if _, err := ParseDiscoveryResponse([]byte("not snmp at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseDiscoveryResponse(nil); err == nil {
		t.Error("empty accepted")
	}
	// A v2c message must be rejected by the v3 parser.
	v2, _ := NewGetRequest(V2c, "public", 1, OIDSysDescr).Encode()
	if _, err := ParseDiscoveryResponse(v2); err == nil {
		t.Error("v2c message accepted as v3")
	}
}

func TestParseDiscoveryResponseEncrypted(t *testing.T) {
	// Build a v3 message with the priv flag: parsing should still yield the
	// USM identifiers (header is always plaintext).
	msg := &V3Message{
		MsgID: 1, MsgMaxSize: DefaultMaxSize, MsgFlags: FlagAuth | FlagPriv,
		MsgSecurityModel: SecurityModelUSM,
		USM: USMSecurityParameters{
			AuthoritativeEngineID:    []byte{0x80, 0, 0, 9, 3, 1, 2, 3, 4, 5, 6},
			AuthoritativeEngineBoots: 3,
			AuthoritativeEngineTime:  1000,
		},
		ScopedPDU: ScopedPDU{PDU: &PDU{Type: PDUGetResponse}},
	}
	wire, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseDiscoveryResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.EngineBoots != 3 || resp.EngineTime != 1000 {
		t.Errorf("boots/time %d/%d", resp.EngineBoots, resp.EngineTime)
	}
}

func TestV3RoundTripQuick(t *testing.T) {
	f := func(msgID, reqID int64, engID []byte, boots, etime int32, user []byte) bool {
		if msgID < 0 {
			msgID = -msgID
		}
		msg := &V3Message{
			MsgID: msgID & 0x7FFFFFFF, MsgMaxSize: DefaultMaxSize,
			MsgFlags: FlagReportable, MsgSecurityModel: SecurityModelUSM,
			USM: USMSecurityParameters{
				AuthoritativeEngineID:    engID,
				AuthoritativeEngineBoots: int64(boots),
				AuthoritativeEngineTime:  int64(etime),
				UserName:                 user,
			},
			ScopedPDU: ScopedPDU{
				ContextEngineID: engID,
				PDU: &PDU{Type: PDUReport, RequestID: reqID & 0x7FFFFFFF,
					VarBinds: []VarBind{{Name: OIDUsmStatsUnknownEngineIDs, Value: Counter32Value(1)}}},
			},
		}
		wire, err := msg.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeV3(wire)
		if err != nil {
			return false
		}
		return got.MsgID == msg.MsgID &&
			bytes.Equal(got.USM.AuthoritativeEngineID, engID) &&
			got.USM.AuthoritativeEngineBoots == int64(boots) &&
			got.USM.AuthoritativeEngineTime == int64(etime) &&
			bytes.Equal(got.USM.UserName, user) &&
			got.ScopedPDU.PDU.Type == PDUReport
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCommunityRoundTrip(t *testing.T) {
	req := NewGetRequest(V2c, "pass123", 99, OIDSysDescr)
	wire, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCommunity(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != V2c || string(got.Community) != "pass123" {
		t.Errorf("version %v community %q", got.Version, got.Community)
	}
	if got.PDU.Type != PDUGetRequest || got.PDU.RequestID != 99 {
		t.Errorf("PDU %v id %d", got.PDU.Type, got.PDU.RequestID)
	}
	if len(got.PDU.VarBinds) != 1 || !OIDEqual(got.PDU.VarBinds[0].Name, OIDSysDescr) {
		t.Errorf("varbinds %v", got.PDU.VarBinds)
	}

	resp := NewGetResponse(got, []VarBind{{Name: OIDSysDescr, Value: StringValue("Cisco IOS 15.2")}})
	wire2, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeCommunity(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.PDU.Type != PDUGetResponse || string(got2.PDU.VarBinds[0].Value.Bytes) != "Cisco IOS 15.2" {
		t.Errorf("response decode: %+v", got2.PDU)
	}
}

func TestPeekVersion(t *testing.T) {
	v3, _ := EncodeDiscoveryRequest(1, 1)
	v2, _ := NewGetRequest(V2c, "public", 1, OIDSysDescr).Encode()
	v1, _ := NewGetRequest(V1, "public", 1, OIDSysDescr).Encode()
	for _, c := range []struct {
		wire []byte
		want Version
	}{{v3, V3}, {v2, V2c}, {v1, V1}} {
		got, err := PeekVersion(c.wire)
		if err != nil || got != c.want {
			t.Errorf("PeekVersion = %v, %v; want %v", got, err, c.want)
		}
	}
	if _, err := PeekVersion([]byte{0x30, 0x03, 0x02, 0x01, 0x09}); err == nil {
		t.Error("version 9 accepted")
	}
	if _, err := PeekVersion([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestEncodeCommunityErrors(t *testing.T) {
	if _, err := (&CommunityMessage{Version: V3, PDU: &PDU{}}).Encode(); err == nil {
		t.Error("v3 as community message accepted")
	}
	if _, err := (&CommunityMessage{Version: V2c}).Encode(); err == nil {
		t.Error("missing PDU accepted")
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntegerValue(5), "5"},
		{StringValue("x"), `"x"`},
		{NullValue(), "null"},
		{TimeTicksValue(99), "TimeTicks(99)"},
		{Counter32Value(7), "Counter32(7)"},
		{Value{Tag: ber.TagOID, OID: []uint32{1, 3, 6}}, "1.3.6"},
		{Value{Tag: ber.TagIPAddress, Bytes: []byte{192, 0, 2, 9}}, "192.0.2.9"},
		{Value{Tag: ber.TagCounter64, Uint: 1}, "Counter64(1)"},
		{Value{Tag: ber.TagGauge32, Uint: 2}, "Gauge32(2)"},
		{Value{Tag: ber.TagNoSuchObject}, "noSuchObject"},
		{Value{Tag: ber.TagEndOfMibView}, "endOfMibView"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value.String() = %q, want %q", got, c.want)
		}
	}
}

func TestAllValueTypesRoundTrip(t *testing.T) {
	vbs := []VarBind{
		{Name: []uint32{1, 3, 1}, Value: IntegerValue(-42)},
		{Name: []uint32{1, 3, 2}, Value: StringValue("text")},
		{Name: []uint32{1, 3, 3}, Value: NullValue()},
		{Name: []uint32{1, 3, 4}, Value: Value{Tag: ber.TagOID, OID: []uint32{1, 3, 6, 1}}},
		{Name: []uint32{1, 3, 5}, Value: Value{Tag: ber.TagCounter32, Uint: 123}},
		{Name: []uint32{1, 3, 6}, Value: Value{Tag: ber.TagGauge32, Uint: 456}},
		{Name: []uint32{1, 3, 7}, Value: Value{Tag: ber.TagTimeTicks, Uint: 789}},
		{Name: []uint32{1, 3, 8}, Value: Value{Tag: ber.TagCounter64, Uint: 1 << 40}},
		{Name: []uint32{1, 3, 9}, Value: Value{Tag: ber.TagIPAddress, Bytes: []byte{10, 0, 0, 1}}},
		{Name: []uint32{1, 3, 10}, Value: Value{Tag: ber.TagOpaque, Bytes: []byte{1, 2}}},
		{Name: []uint32{1, 3, 11}, Value: Value{Tag: ber.TagNoSuchObject}},
	}
	msg := &CommunityMessage{Version: V2c, Community: []byte("c"),
		PDU: &PDU{Type: PDUGetResponse, RequestID: 5, VarBinds: vbs}}
	wire, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCommunity(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PDU.VarBinds) != len(vbs) {
		t.Fatalf("varbind count %d", len(got.PDU.VarBinds))
	}
	for i, vb := range got.PDU.VarBinds {
		want := vbs[i]
		if vb.Value.Tag != want.Value.Tag {
			t.Errorf("vb %d tag 0x%02x want 0x%02x", i, vb.Value.Tag, want.Value.Tag)
		}
		if vb.Value.Int != want.Value.Int || vb.Value.Uint != want.Value.Uint {
			t.Errorf("vb %d numeric mismatch", i)
		}
	}
}

func TestDecodeV3Malformed(t *testing.T) {
	good, _ := EncodeDiscoveryRequest(1, 1)
	// Every truncation of a valid message must be rejected, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeV3(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Flipped tags in strategic spots.
	for _, i := range []int{0, 2, 4} {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xFF
		if _, err := DecodeV3(mut); err == nil {
			t.Errorf("corrupted byte %d accepted", i)
		}
	}
}

func TestDecodeV3FuzzNoPanic(t *testing.T) {
	// Deterministic pseudo-fuzz: decoding arbitrary bytes must never panic.
	f := func(data []byte) bool {
		_, _ = DecodeV3(data)
		_, _ = DecodeCommunity(data)
		_, _ = ParseDiscoveryResponse(data)
		_, _ = PeekVersion(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
