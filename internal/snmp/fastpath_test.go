package snmp

import (
	"bytes"
	"errors"
	"testing"
)

// intBoundaries are the INTEGER width transitions where a one-off in the
// arithmetic length computation would first diverge from the Builder's
// back-patched output: one-octet/two-octet (127/128), two/three (32767), and
// the negative mirrors.
var intBoundaries = []int64{
	0, 1, 42, 126, 127, 128, 129, 255, 256,
	32766, 32767, 32768, 65535, 65536,
	1<<23 - 1, 1 << 23, 1<<31 - 1,
	-1, -127, -128, -129, -32768, -32769, -(1 << 23), -(1<<23 + 1),
}

func TestAppendDiscoveryRequestMatchesEncode(t *testing.T) {
	var dst []byte
	for _, msgID := range intBoundaries {
		for _, reqID := range intBoundaries {
			want, err := EncodeDiscoveryRequest(msgID, reqID)
			if err != nil {
				t.Fatalf("EncodeDiscoveryRequest(%d, %d): %v", msgID, reqID, err)
			}
			dst = AppendDiscoveryRequest(dst[:0], msgID, reqID)
			if !bytes.Equal(dst, want) {
				t.Fatalf("AppendDiscoveryRequest(%d, %d):\n got %x\nwant %x", msgID, reqID, dst, want)
			}
		}
	}
}

func TestAppendDiscoveryRequestAppends(t *testing.T) {
	prefix := []byte("keep-me")
	out := AppendDiscoveryRequest(append([]byte(nil), prefix...), 7, 9)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("prefix clobbered: %x", out[:len(prefix)])
	}
	want, _ := EncodeDiscoveryRequest(7, 9)
	if !bytes.Equal(out[len(prefix):], want) {
		t.Fatalf("appended bytes diverge from EncodeDiscoveryRequest")
	}
}

func TestAppendDiscoveryReportMatchesEncode(t *testing.T) {
	engineIDs := [][]byte{
		nil,
		{},
		{0x80, 0x00, 0x1F, 0x88, 0x03, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF},
		bytes.Repeat([]byte{0xAB}, 32),
		// A 200-octet engine ID pushes the nested SEQUENCE lengths past 127,
		// exercising the multi-octet length branch end to end.
		bytes.Repeat([]byte{0xCD}, 200),
	}
	counts := []uint64{0, 1, 127, 128, 255, 256, 65535, 1 << 31, 1<<64 - 1}
	var dst []byte
	for _, msgID := range intBoundaries {
		for _, engineID := range engineIDs {
			for _, count := range counts {
				reqID := msgID ^ 0x55
				boots := msgID/2 + 1
				engineTime := msgID + 12345
				req := NewDiscoveryRequest(msgID, reqID)
				want, err := NewDiscoveryReport(req, engineID, boots, engineTime, count).Encode()
				if err != nil {
					t.Fatalf("Encode report: %v", err)
				}
				dst = AppendDiscoveryReport(dst[:0], msgID, reqID, engineID, boots, engineTime, count)
				if !bytes.Equal(dst, want) {
					t.Fatalf("AppendDiscoveryReport(msgID=%d, engineID=%d octets, count=%d):\n got %x\nwant %x",
						msgID, len(engineID), count, dst, want)
				}
			}
		}
	}
}

// respEqual compares a reused-struct parse against the allocating reference.
func respEqual(a *DiscoveryResponse, b *DiscoveryResponse) bool {
	if a.MsgID != b.MsgID || a.EngineBoots != b.EngineBoots || a.EngineTime != b.EngineTime {
		return false
	}
	if !bytes.Equal(a.EngineID, b.EngineID) || a.ReportCount != b.ReportCount {
		return false
	}
	if len(a.ReportOID) != len(b.ReportOID) {
		return false
	}
	for i := range a.ReportOID {
		if a.ReportOID[i] != b.ReportOID[i] {
			return false
		}
	}
	return true
}

func TestParseDiscoveryResponseIntoMatchesAllocating(t *testing.T) {
	req := NewDiscoveryRequest(77, 88)
	engineID := []byte{0x80, 0x00, 0x1F, 0x88, 0x03, 0x01, 0x02, 0x03}
	wires := [][]byte{
		AppendDiscoveryReport(nil, 77, 88, engineID, 3, 123456, 42),
		AppendDiscoveryReport(nil, 1, 1, nil, 0, 0, 0),
		AppendDiscoveryReport(nil, 32767, 32768, bytes.Repeat([]byte{9}, 200), 127, 128, 1<<64-1),
	}
	if w, err := EncodeDiscoveryRequest(5, 6); err == nil {
		wires = append(wires, w) // GetRequest: ErrNotReport with header fields filled
	}
	if w, err := req.Encode(); err == nil {
		wires = append(wires, w)
	}
	// An encrypted message: priv flag set, payload is an opaque OCTET STRING.
	enc := &V3Message{
		MsgID: 9, MsgMaxSize: DefaultMaxSize, MsgFlags: FlagPriv | FlagAuth,
		MsgSecurityModel: SecurityModelUSM,
		USM: USMSecurityParameters{
			AuthoritativeEngineID:    engineID,
			AuthoritativeEngineBoots: 2,
			AuthoritativeEngineTime:  7,
			UserName:                 []byte("ops"),
		},
		EncryptedPDU: []byte{0xDE, 0xAD, 0xBE, 0xEF},
	}
	if w, err := enc.Encode(); err == nil {
		wires = append(wires, w)
	}

	reused := &DiscoveryResponse{}
	for i, wire := range wires {
		want, wantErr := ParseDiscoveryResponse(wire)
		gotErr := ParseDiscoveryResponseInto(reused, wire)
		if (wantErr == nil) != (gotErr == nil) || !errors.Is(gotErr, wantErr) && wantErr != nil {
			t.Fatalf("wire %d: allocating err=%v, into err=%v", i, wantErr, gotErr)
		}
		if wantErr != nil && wantErr != ErrNotReport {
			continue
		}
		if !respEqual(reused, want) {
			t.Fatalf("wire %d: into=%+v allocating=%+v", i, reused, want)
		}
	}
}

func TestParseDiscoveryResponseIntoResetsStaleFields(t *testing.T) {
	resp := &DiscoveryResponse{}
	rich := AppendDiscoveryReport(nil, 1, 2, []byte{1, 2, 3, 4}, 5, 6, 7)
	if err := ParseDiscoveryResponseInto(resp, rich); err != nil {
		t.Fatal(err)
	}
	if len(resp.ReportOID) == 0 || resp.ReportCount != 7 {
		t.Fatalf("rich parse incomplete: %+v", resp)
	}
	// An encrypted message fills only the header; report fields from the
	// previous parse must not leak through.
	enc := &V3Message{
		MsgID: 3, MsgMaxSize: DefaultMaxSize, MsgFlags: FlagPriv,
		MsgSecurityModel: SecurityModelUSM,
		EncryptedPDU:     []byte{1},
	}
	wire, err := enc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseDiscoveryResponseInto(resp, wire); err != nil {
		t.Fatal(err)
	}
	if len(resp.ReportOID) != 0 || resp.ReportCount != 0 {
		t.Fatalf("stale report fields survived: %+v", resp)
	}
	if resp.MsgID != 3 {
		t.Fatalf("MsgID = %d, want 3", resp.MsgID)
	}
}

func TestParseRequestIDs(t *testing.T) {
	for _, msgID := range intBoundaries {
		reqID := msgID ^ 0x2A
		wire := AppendDiscoveryRequest(nil, msgID, reqID)
		gotMsg, gotReq, err := ParseRequestIDs(wire)
		if err != nil {
			t.Fatalf("ParseRequestIDs(%d, %d): %v", msgID, reqID, err)
		}
		if gotMsg != msgID || gotReq != reqID {
			t.Fatalf("ParseRequestIDs = (%d, %d), want (%d, %d)", gotMsg, gotReq, msgID, reqID)
		}
	}
	// Garbage must fail exactly when DecodeV3 fails.
	if _, _, err := ParseRequestIDs([]byte{0x30, 0x01, 0x02}); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, _, err := ParseRequestIDs(nil); !errors.Is(err, ErrNotSNMP) {
		t.Fatalf("empty input: %v, want ErrNotSNMP", err)
	}
}

func TestFastPathZeroAllocs(t *testing.T) {
	engineID := []byte{0x80, 0x00, 0x1F, 0x88, 0x03, 0x01, 0x02, 0x03, 0x04, 0x05}
	report := AppendDiscoveryReport(nil, 123456, 654321, engineID, 12, 3456789, 99)
	probe := AppendDiscoveryRequest(nil, 123456, 654321)

	dst := make([]byte, 0, 256)
	if avg := testing.AllocsPerRun(200, func() {
		dst = AppendDiscoveryRequest(dst[:0], 123456, 654321)
	}); avg != 0 {
		t.Errorf("AppendDiscoveryRequest: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		dst = AppendDiscoveryReport(dst[:0], 123456, 654321, engineID, 12, 3456789, 99)
	}); avg != 0 {
		t.Errorf("AppendDiscoveryReport: %v allocs/op, want 0", avg)
	}
	resp := &DiscoveryResponse{ReportOID: make([]uint32, 0, 16)}
	if avg := testing.AllocsPerRun(200, func() {
		if err := ParseDiscoveryResponseInto(resp, report); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ParseDiscoveryResponseInto: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, err := ParseRequestIDs(probe); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ParseRequestIDs(report); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ParseRequestIDs: %v allocs/op, want 0", avg)
	}
	// Sanity: the parsed report survived the alloc loop intact.
	if resp.MsgID != 123456 || resp.ReportCount != 99 || resp.EngineBoots != 12 {
		t.Fatalf("parse result mangled: %+v", resp)
	}
	if !bytes.Equal(resp.EngineID, engineID) {
		t.Fatalf("EngineID = %x, want %x", resp.EngineID, engineID)
	}
	if !OIDEqual(resp.ReportOID, OIDUsmStatsUnknownEngineIDs) {
		t.Fatalf("ReportOID = %v", resp.ReportOID)
	}
}
