package snmp

import (
	"fmt"

	"snmpv3fp/internal/ber"
)

// CommunityMessage is an SNMPv1 or SNMPv2c message: version, community
// string, PDU (RFC 1157 §4, RFC 1901 §3). It exists here for the lab
// experiments of Section 6.2.1, which first enable SNMPv2c on a device and
// then show that unauthenticated SNMPv3 discovery works implicitly.
type CommunityMessage struct {
	Version   Version
	Community []byte
	PDU       *PDU
}

// Encode serializes the message.
func (m *CommunityMessage) Encode() ([]byte, error) {
	if m.Version != V1 && m.Version != V2c {
		return nil, fmt.Errorf("snmp: version %v is not community-based", m.Version)
	}
	if m.PDU == nil {
		return nil, fmt.Errorf("snmp: community message without PDU")
	}
	b := ber.NewBuilder()
	b.Begin(ber.TagSequence)
	b.Int(int64(m.Version))
	b.OctetString(m.Community)
	encodePDU(b, m.PDU)
	b.End()
	return b.Bytes()
}

// DecodeCommunity parses an SNMPv1/v2c message.
func DecodeCommunity(buf []byte) (*CommunityMessage, error) {
	p := ber.NewParser(buf)
	msg := p.Enter(ber.TagSequence)
	version := msg.Int()
	if err := msg.Err(); err != nil {
		return nil, ErrNotSNMP
	}
	if Version(version) != V1 && Version(version) != V2c {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, version)
	}
	out := &CommunityMessage{Version: Version(version)}
	out.Community = cloneBytes(msg.OctetString())
	if err := msg.Err(); err != nil {
		return nil, err
	}
	pdu, err := parsePDU(msg)
	if err != nil {
		return nil, err
	}
	out.PDU = pdu
	return out, nil
}

// PeekVersion inspects only the version field of an SNMP message, letting a
// demultiplexer route v1/v2c and v3 messages without a full parse.
func PeekVersion(buf []byte) (Version, error) {
	p := ber.NewParser(buf)
	msg := p.Enter(ber.TagSequence)
	v := msg.Int()
	if err := msg.Err(); err != nil {
		return 0, ErrNotSNMP
	}
	switch Version(v) {
	case V1, V2c, V3:
		return Version(v), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrWrongVersion, v)
	}
}

// NewGetRequest builds a community-string Get for one OID.
func NewGetRequest(version Version, community string, requestID int64, oid []uint32) *CommunityMessage {
	return &CommunityMessage{
		Version:   version,
		Community: []byte(community),
		PDU: &PDU{
			Type:      PDUGetRequest,
			RequestID: requestID,
			VarBinds:  []VarBind{{Name: oid, Value: NullValue()}},
		},
	}
}

// NewGetResponse builds the matching response carrying the given varbinds.
func NewGetResponse(req *CommunityMessage, vbs []VarBind) *CommunityMessage {
	return &CommunityMessage{
		Version:   req.Version,
		Community: req.Community,
		PDU: &PDU{
			Type:      PDUGetResponse,
			RequestID: req.PDU.RequestID,
			VarBinds:  vbs,
		},
	}
}
