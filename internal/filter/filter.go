// Package filter implements the response-validation pipeline of the paper's
// Section 4.4: ten steps that turn the raw per-IP observations of two scan
// campaigns into the set of IPs with a valid engine ID and valid engine
// time, with per-step removal accounting.
package filter

import (
	"encoding/binary"
	"net/netip"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/iputil"
	"snmpv3fp/internal/oui"
)

// RebootThreshold is the maximum last-reboot disagreement between the two
// campaigns; the paper picks 10 seconds at the knee of the router-IP
// distribution (Figure 8).
const RebootThreshold = 10 * time.Second

// MinEngineIDLen is the shortest engine ID kept; four bytes retains
// IPv4-based engine IDs (Section 4.4, "Too short engine IDs").
const MinEngineIDLen = 4

// Merged is one IP observed consistently in both campaigns.
type Merged struct {
	IP       netip.Addr
	EngineID []byte
	// Parsed caches the engine ID classification.
	Parsed engineid.Parsed
	// Boots, EngineTime, RecvAt, LastReboot index 0 for the first campaign
	// and 1 for the second.
	Boots      [2]int64
	EngineTime [2]int64
	RecvAt     [2]time.Time
	LastReboot [2]time.Time
}

// Step names one pipeline stage and how many IPs it removed.
type Step struct {
	Name    string
	Removed int
}

// Pipeline step names, in order.
var StepNames = []string{
	"missing engine ID",
	"inconsistent engine ID",
	"too short engine ID",
	"promiscuous engine ID",
	"unroutable IPv4 engine ID",
	"unregistered MAC engine ID",
	"zero engine time or boots",
	"engine time in the future",
	"inconsistent engine boots",
	"inconsistent last reboot",
}

// Report is the outcome of the pipeline.
type Report struct {
	// Scan1IPs / Scan2IPs are the raw responsive IP counts.
	Scan1IPs, Scan2IPs int
	// Scan1EngineIDs / Scan2EngineIDs count distinct engine IDs per scan.
	Scan1EngineIDs, Scan2EngineIDs int
	// Overlap is the number of IPs responsive in both campaigns.
	Overlap int
	Steps   []Step
	// ValidEngineID counts IPs surviving the engine ID steps (1–6): the
	// paper's "IPs w/ valid engine ID" column of Table 1.
	ValidEngineID int
	// Valid is the final set: valid engine ID and valid engine time.
	Valid []*Merged
}

// Merge performs the per-IP half of step 2: it merges one IP's two
// observations into a Merged when both campaigns answered with the same
// non-empty engine ID and neither flagged it inconsistent. Incremental
// consumers (internal/store) use it to validate IPs one at a time with
// exactly the batch pipeline's semantics.
func Merge(ip netip.Addr, o1, o2 *core.Observation) (*Merged, bool) {
	if o1 == nil || o2 == nil || len(o1.EngineID) == 0 || len(o2.EngineID) == 0 {
		return nil, false
	}
	if string(o1.EngineID) != string(o2.EngineID) || o1.Inconsistent || o2.Inconsistent {
		return nil, false
	}
	m := &Merged{
		IP:         ip,
		EngineID:   o1.EngineID,
		Parsed:     engineid.Classify(o1.EngineID),
		Boots:      [2]int64{o1.EngineBoots, o2.EngineBoots},
		EngineTime: [2]int64{o1.EngineTime, o2.EngineTime},
		RecvAt:     [2]time.Time{o1.ReceivedAt, o2.ReceivedAt},
	}
	m.LastReboot = [2]time.Time{o1.LastReboot(), o2.LastReboot()}
	return m, true
}

// LongEnough is step 3: the engine ID meets the minimum length.
func (m *Merged) LongEnough() bool { return len(m.EngineID) >= MinEngineIDLen }

// PromiscuityBody returns the engine-ID body that step 4 checks for
// promiscuity (the same body claimed under multiple enterprise numbers),
// or ok=false for bodies too short to participate in the check.
func (m *Merged) PromiscuityBody() (string, bool) {
	body := m.Parsed.Data
	if len(body) < MinEngineIDLen {
		return "", false
	}
	return string(body), true
}

// RoutableIPv4 is step 5: IPv4-format engine IDs must embed routable
// addresses.
func (m *Merged) RoutableIPv4() bool {
	if m.Parsed.Format != engineid.FormatIPv4 {
		return true
	}
	return iputil.IsRoutableV4Bytes(m.Parsed.Data)
}

// RegisteredMAC is step 6: MAC-format engine IDs must carry a registered
// OUI.
func (m *Merged) RegisteredMAC() bool {
	mac, ok := m.Parsed.MAC()
	if !ok {
		return true
	}
	_, registered := oui.LookupMAC(mac)
	return registered
}

// NonZeroTimeliness is step 7: engine boots and engine time are non-zero in
// both campaigns.
func (m *Merged) NonZeroTimeliness() bool {
	return m.Boots[0] != 0 && m.Boots[1] != 0 &&
		m.EngineTime[0] != 0 && m.EngineTime[1] != 0
}

// NoFutureTime is step 8: the derived last reboot precedes the packet
// receive time in both campaigns.
func (m *Merged) NoFutureTime() bool {
	return !m.LastReboot[0].After(m.RecvAt[0]) && !m.LastReboot[1].After(m.RecvAt[1])
}

// ConsistentBoots is step 9: engine boots agree across campaigns.
func (m *Merged) ConsistentBoots() bool { return m.Boots[0] == m.Boots[1] }

// ConsistentReboot is step 10: last reboot agrees within RebootThreshold.
func (m *Merged) ConsistentReboot() bool { return m.RebootDelta() <= RebootThreshold }

// ValidIdentity bundles the per-IP engine ID steps (3, 5, 6). Step 4
// (promiscuity) is population-global and handled separately.
func (m *Merged) ValidIdentity() bool {
	return m.LongEnough() && m.RoutableIPv4() && m.RegisteredMAC()
}

// ValidTimeliness bundles the engine time steps (7–10).
func (m *Merged) ValidTimeliness() bool {
	return m.NonZeroTimeliness() && m.NoFutureTime() &&
		m.ConsistentBoots() && m.ConsistentReboot()
}

func countEngineIDs(c *core.Campaign) int {
	set := make(map[string]struct{}, len(c.ByIP))
	for _, o := range c.ByIP {
		if len(o.EngineID) > 0 {
			set[string(o.EngineID)] = struct{}{}
		}
	}
	return len(set)
}

// Run applies the pipeline to the two campaigns of one address family.
func Run(scan1, scan2 *core.Campaign) *Report {
	rep := &Report{
		Scan1IPs:       len(scan1.ByIP),
		Scan2IPs:       len(scan2.ByIP),
		Scan1EngineIDs: countEngineIDs(scan1),
		Scan2EngineIDs: countEngineIDs(scan2),
	}
	step := func(name string, removed int) {
		rep.Steps = append(rep.Steps, Step{Name: name, Removed: removed})
	}

	// Step 1: missing engine IDs (per responding IP, either campaign).
	missing := 0
	for _, o := range scan1.ByIP {
		if len(o.EngineID) == 0 {
			missing++
		}
	}
	for ip, o := range scan2.ByIP {
		if len(o.EngineID) == 0 {
			if o1, ok := scan1.ByIP[ip]; !ok || len(o1.EngineID) > 0 {
				missing++
			}
		}
	}
	step(StepNames[0], missing)

	// Step 2: merge the campaigns; keep the overlap with matching engine
	// IDs. Overlap counts every IP responsive in both campaigns, engine ID
	// or not — only the merge itself requires an engine ID on both sides.
	var merged []*Merged
	inconsistent := 0
	for ip, o1 := range scan1.ByIP {
		o2, ok := scan2.ByIP[ip]
		if !ok {
			continue
		}
		rep.Overlap++
		if len(o1.EngineID) == 0 || len(o2.EngineID) == 0 {
			continue
		}
		m, ok := Merge(ip, o1, o2)
		if !ok {
			inconsistent++
			continue
		}
		merged = append(merged, m)
	}
	step(StepNames[1], inconsistent)

	// Step 3: too short.
	merged, removed := partition(merged, (*Merged).LongEnough)
	step(StepNames[2], removed)

	// Step 4: promiscuous engine IDs — the same engine ID body under
	// multiple vendors (enterprise numbers).
	bodyVendors := make(map[string]uint32, len(merged))
	promiscuous := make(map[string]bool)
	for _, m := range merged {
		key, ok := m.PromiscuityBody()
		if !ok {
			continue
		}
		if ent, seen := bodyVendors[key]; seen {
			if ent != m.Parsed.Enterprise {
				promiscuous[key] = true
			}
		} else {
			bodyVendors[key] = m.Parsed.Enterprise
		}
	}
	merged, removed = partition(merged, func(m *Merged) bool {
		return !promiscuous[string(m.Parsed.Data)]
	})
	step(StepNames[3], removed)

	// Step 5: IPv4-format engine IDs must embed routable addresses.
	merged, removed = partition(merged, (*Merged).RoutableIPv4)
	step(StepNames[4], removed)

	// Step 6: MAC-format engine IDs must carry a registered OUI.
	merged, removed = partition(merged, (*Merged).RegisteredMAC)
	step(StepNames[5], removed)
	rep.ValidEngineID = len(merged)

	// Step 7: zero engine time or boots in either campaign.
	merged, removed = partition(merged, (*Merged).NonZeroTimeliness)
	step(StepNames[6], removed)

	// Step 8: engine time in the future — a derived last reboot after the
	// packet receive time.
	merged, removed = partition(merged, (*Merged).NoFutureTime)
	step(StepNames[7], removed)

	// Step 9: engine boots must agree across campaigns.
	merged, removed = partition(merged, (*Merged).ConsistentBoots)
	step(StepNames[8], removed)

	// Step 10: last reboot must agree within the threshold.
	merged, removed = partition(merged, (*Merged).ConsistentReboot)
	step(StepNames[9], removed)

	rep.Valid = merged
	return rep
}

// partition keeps elements satisfying keep, returning the kept slice and
// the number removed. It reuses the input slice's backing array.
func partition(in []*Merged, keep func(*Merged) bool) ([]*Merged, int) {
	out := in[:0]
	for _, m := range in {
		if keep(m) {
			out = append(out, m)
		}
	}
	return out, len(in) - len(out)
}

// RebootDelta returns the absolute last-reboot difference between the two
// campaigns (the quantity of the paper's Figure 8).
func (m *Merged) RebootDelta() time.Duration {
	d := m.LastReboot[0].Sub(m.LastReboot[1])
	if d < 0 {
		d = -d
	}
	return d
}

// EngineIDKey returns the engine ID as a comparable map key.
func (m *Merged) EngineIDKey() string { return string(m.EngineID) }

// TupleKey packs (last reboot, engine boots) of the given campaign into a
// comparable key: the paper's secondary unique identifier (Appendix B),
// quantized to the given bin width.
func (m *Merged) TupleKey(scan int, bin time.Duration) [16]byte {
	var k [16]byte
	t := m.LastReboot[scan].Unix()
	if bin > 0 {
		t /= int64(bin / time.Second)
	}
	binary.BigEndian.PutUint64(k[:8], uint64(t))
	binary.BigEndian.PutUint64(k[8:], uint64(m.Boots[scan]))
	return k
}
