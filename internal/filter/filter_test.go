package filter

import (
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/engineid"
)

var (
	t1 = time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC)
	t2 = time.Date(2021, 4, 22, 0, 0, 0, 0, time.UTC)
)

// obs builds an observation with a last reboot at the given instant.
func obs(ip string, engID []byte, boots int64, reboot time.Time, at time.Time) *core.Observation {
	return &core.Observation{
		IP:          netip.MustParseAddr(ip),
		EngineID:    engID,
		EngineBoots: boots,
		EngineTime:  int64(at.Sub(reboot) / time.Second),
		ReceivedAt:  at,
		Packets:     1,
	}
}

func campaigns(o1, o2 []*core.Observation) (*core.Campaign, *core.Campaign) {
	c1 := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	c2 := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	for _, o := range o1 {
		c1.ByIP[o.IP] = o
	}
	for _, o := range o2 {
		c2.ByIP[o.IP] = o
	}
	return c1, c2
}

var (
	goodID  = engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	goodID2 = engineid.NewMAC(2011, [6]byte{0x48, 0x46, 0xfb, 9, 9, 9})
	reboot  = time.Date(2021, 1, 10, 3, 4, 5, 0, time.UTC)
)

func TestCleanObservationSurvives(t *testing.T) {
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if len(rep.Valid) != 1 {
		t.Fatalf("valid = %d, want 1", len(rep.Valid))
	}
	m := rep.Valid[0]
	if m.Boots != [2]int64{5, 5} {
		t.Errorf("boots = %v", m.Boots)
	}
	if d := m.RebootDelta(); d > time.Second {
		t.Errorf("reboot delta = %v", d)
	}
	for _, s := range rep.Steps {
		if s.Removed != 0 {
			t.Errorf("step %q removed %d", s.Name, s.Removed)
		}
	}
	if rep.ValidEngineID != 1 || rep.Overlap != 1 {
		t.Errorf("ValidEngineID=%d Overlap=%d", rep.ValidEngineID, rep.Overlap)
	}
}

func stepRemoved(rep *Report, name string) int {
	for _, s := range rep.Steps {
		if s.Name == name {
			return s.Removed
		}
	}
	return -1
}

func TestMissingEngineID(t *testing.T) {
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", nil, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", nil, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "missing engine ID"); got != 1 {
		t.Errorf("missing removed = %d", got)
	}
	if len(rep.Valid) != 0 {
		t.Error("missing engine ID should not survive")
	}
}

func TestInconsistentEngineID(t *testing.T) {
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", goodID2, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "inconsistent engine ID"); got != 1 {
		t.Errorf("inconsistent removed = %d", got)
	}
}

func TestOverlapCountsMissingEngineIDs(t *testing.T) {
	// Overlap is "IPs responsive in both campaigns": an IP that answered
	// both scans belongs in it even when either answer lacked an engine ID.
	c1, c2 := campaigns(
		[]*core.Observation{
			obs("192.0.2.1", goodID, 5, reboot, t1),
			obs("192.0.2.2", nil, 5, reboot, t1),
			obs("192.0.2.3", goodID2, 5, reboot, t1),
		},
		[]*core.Observation{
			obs("192.0.2.1", goodID, 5, reboot, t2),
			obs("192.0.2.2", goodID2, 5, reboot, t2),
			obs("192.0.2.3", nil, 5, reboot, t2),
		},
	)
	rep := Run(c1, c2)
	if rep.Overlap != 3 {
		t.Errorf("overlap = %d, want 3", rep.Overlap)
	}
	if len(rep.Valid) != 1 {
		t.Errorf("valid = %d, want 1", len(rep.Valid))
	}
}

func TestNonOverlappingIPDropped(t *testing.T) {
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.2", goodID2, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if rep.Overlap != 0 || len(rep.Valid) != 0 {
		t.Errorf("overlap=%d valid=%d", rep.Overlap, len(rep.Valid))
	}
}

func TestTooShortEngineID(t *testing.T) {
	short := []byte{0x01, 0x02, 0x03}
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", short, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", short, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "too short engine ID"); got != 1 {
		t.Errorf("too-short removed = %d", got)
	}
}

func TestPromiscuousEngineID(t *testing.T) {
	// Same 8-byte body under two different enterprise numbers.
	body := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	idA := engineid.NewOctets(9, body)
	idB := engineid.NewOctets(2011, body)
	c1, c2 := campaigns(
		[]*core.Observation{
			obs("192.0.2.1", idA, 5, reboot, t1),
			obs("192.0.2.2", idB, 7, reboot, t1),
		},
		[]*core.Observation{
			obs("192.0.2.1", idA, 5, reboot, t2),
			obs("192.0.2.2", idB, 7, reboot, t2),
		},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "promiscuous engine ID"); got != 2 {
		t.Errorf("promiscuous removed = %d", got)
	}
}

func TestUnroutableIPv4EngineID(t *testing.T) {
	private := engineid.NewIPv4(9, [4]byte{192, 168, 1, 1})
	public := engineid.NewIPv4(9, [4]byte{193, 0, 14, 129})
	c1, c2 := campaigns(
		[]*core.Observation{
			obs("192.0.2.1", private, 5, reboot, t1),
			obs("192.0.2.2", public, 5, reboot, t1),
		},
		[]*core.Observation{
			obs("192.0.2.1", private, 5, reboot, t2),
			obs("192.0.2.2", public, 5, reboot, t2),
		},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "unroutable IPv4 engine ID"); got != 1 {
		t.Errorf("unroutable removed = %d", got)
	}
	if len(rep.Valid) != 1 {
		t.Errorf("valid = %d", len(rep.Valid))
	}
}

func TestUnregisteredMACEngineID(t *testing.T) {
	unreg := engineid.NewMAC(9, [6]byte{0x02, 0xDE, 0xAD, 1, 2, 3})
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", unreg, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", unreg, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "unregistered MAC engine ID"); got != 1 {
		t.Errorf("unregistered removed = %d", got)
	}
}

func TestCiscoBugEngineIDFiltered(t *testing.T) {
	// The CSCts87275 constant has a zero (unregistered) MAC: it must fall
	// out at the unregistered-MAC step.
	bug := []byte{0x80, 0x00, 0x00, 0x09, 0x03, 0, 0, 0, 0, 0, 0, 0}
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", bug, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", bug, 5, reboot, t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "unregistered MAC engine ID"); got != 1 {
		t.Errorf("bug ID not removed at unregistered MAC: %d", got)
	}
}

func TestZeroBootsOrTime(t *testing.T) {
	o1 := obs("192.0.2.1", goodID, 0, reboot, t1)
	o2 := obs("192.0.2.1", goodID, 0, reboot, t2)
	c1, c2 := campaigns([]*core.Observation{o1}, []*core.Observation{o2})
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "zero engine time or boots"); got != 1 {
		t.Errorf("zero removed = %d", got)
	}

	// Zero engine time only.
	o1 = obs("192.0.2.1", goodID, 5, t1, t1) // reboot == receive → time 0
	o2 = obs("192.0.2.1", goodID, 5, reboot, t2)
	c1, c2 = campaigns([]*core.Observation{o1}, []*core.Observation{o2})
	rep = Run(c1, c2)
	if got := stepRemoved(rep, "zero engine time or boots"); got != 1 {
		t.Errorf("zero time removed = %d", got)
	}
}

func TestFutureEngineTime(t *testing.T) {
	o1 := obs("192.0.2.1", goodID, 5, reboot, t1)
	o1.EngineTime = -3600 // broken encoder: derived reboot in the future
	o2 := obs("192.0.2.1", goodID, 5, reboot, t2)
	c1, c2 := campaigns([]*core.Observation{o1}, []*core.Observation{o2})
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "engine time in the future"); got != 1 {
		t.Errorf("future removed = %d", got)
	}
}

func TestInconsistentBoots(t *testing.T) {
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", goodID, 6, t2.Add(-time.Hour), t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "inconsistent engine boots"); got != 1 {
		t.Errorf("boots removed = %d", got)
	}
}

func TestInconsistentLastReboot(t *testing.T) {
	// 30 s of drift between campaigns: beyond the 10 s threshold.
	c1, c2 := campaigns(
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot.Add(30*time.Second), t2)},
	)
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "inconsistent last reboot"); got != 1 {
		t.Errorf("reboot removed = %d", got)
	}

	// 8 s of drift: inside the threshold, survives.
	c1, c2 = campaigns(
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot, t1)},
		[]*core.Observation{obs("192.0.2.1", goodID, 5, reboot.Add(8*time.Second), t2)},
	)
	rep = Run(c1, c2)
	if len(rep.Valid) != 1 {
		t.Errorf("8s drift should survive, valid = %d", len(rep.Valid))
	}
}

func TestStepOrderMatchesPaper(t *testing.T) {
	c1, c2 := campaigns(nil, nil)
	rep := Run(c1, c2)
	if len(rep.Steps) != len(StepNames) {
		t.Fatalf("steps = %d, want %d", len(rep.Steps), len(StepNames))
	}
	for i, s := range rep.Steps {
		if s.Name != StepNames[i] {
			t.Errorf("step %d = %q, want %q", i, s.Name, StepNames[i])
		}
	}
}

func TestTupleKey(t *testing.T) {
	m1 := &Merged{Boots: [2]int64{5, 5}, LastReboot: [2]time.Time{reboot, reboot}}
	m2 := &Merged{Boots: [2]int64{5, 5}, LastReboot: [2]time.Time{reboot.Add(5 * time.Second), reboot}}
	m3 := &Merged{Boots: [2]int64{6, 6}, LastReboot: [2]time.Time{reboot, reboot}}
	if m1.TupleKey(0, 20*time.Second) != m2.TupleKey(0, 20*time.Second) {
		// 5 s apart may cross a bin edge depending on alignment; use exact
		// same-bin check instead.
		t.Log("5s-apart reboots landed in different 20s bins (alignment-dependent)")
	}
	if m1.TupleKey(0, 0) == m2.TupleKey(0, 0) {
		t.Error("exact tuple keys should differ for different reboots")
	}
	if m1.TupleKey(0, 0) == m3.TupleKey(0, 0) {
		t.Error("tuple keys should differ for different boots")
	}
}

func TestInconsistentWithinScan(t *testing.T) {
	o1 := obs("192.0.2.1", goodID, 5, reboot, t1)
	o1.Inconsistent = true // engine ID flapped within scan 1
	o2 := obs("192.0.2.1", goodID, 5, reboot, t2)
	c1, c2 := campaigns([]*core.Observation{o1}, []*core.Observation{o2})
	rep := Run(c1, c2)
	if got := stepRemoved(rep, "inconsistent engine ID"); got != 1 {
		t.Errorf("within-scan inconsistency removed = %d", got)
	}
}
