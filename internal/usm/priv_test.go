package usm

import (
	"bytes"
	"testing"
	"testing/quick"

	"snmpv3fp/internal/snmp"
)

var privEngineID = []byte{0x80, 0x00, 0x00, 0x09, 0x03, 9, 8, 7, 6, 5, 4}

func TestPrivProtocolStrings(t *testing.T) {
	if PrivDES.String() != "CBC-DES" || PrivAES128.String() != "CFB128-AES-128" {
		t.Error("protocol names wrong")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	plain := []byte("the scoped pdu payload, length not a multiple of eight!")
	for _, proto := range []PrivProtocol{PrivDES, PrivAES128} {
		key := LocalizedPasswordKey(AuthSHA1, "privpass", privEngineID)
		ct, params, err := EncryptScopedPDU(proto, key, 7, 100000, 0xDEADBEEF, plain)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if bytes.Contains(ct, []byte("scoped pdu")) {
			t.Fatalf("%v: ciphertext leaks plaintext", proto)
		}
		got, err := DecryptScopedPDU(proto, key, 7, 100000, params, ct)
		if err != nil {
			t.Fatalf("%v: decrypt: %v", proto, err)
		}
		if !bytes.Equal(got, plain) {
			t.Fatalf("%v: round trip mismatch", proto)
		}
		// Wrong key fails to produce the plaintext.
		wrong := LocalizedPasswordKey(AuthSHA1, "other", privEngineID)
		bad, err := DecryptScopedPDU(proto, wrong, 7, 100000, params, ct)
		if err == nil && bytes.Equal(bad, plain) {
			t.Fatalf("%v: wrong key decrypted successfully", proto)
		}
	}
}

func TestEncryptDistinctSalts(t *testing.T) {
	key := LocalizedPasswordKey(AuthMD5, "p", privEngineID)
	plain := []byte("same plaintext")
	ct1, _, _ := EncryptScopedPDU(PrivAES128, key, 1, 1, 1, plain)
	ct2, _, _ := EncryptScopedPDU(PrivAES128, key, 1, 1, 2, plain)
	if bytes.Equal(ct1, ct2) {
		t.Error("different salts produced identical ciphertext")
	}
}

func TestDecryptErrors(t *testing.T) {
	key := LocalizedPasswordKey(AuthSHA1, "p", privEngineID)
	if _, err := DecryptScopedPDU(PrivDES, key, 1, 1, []byte{1, 2}, make([]byte, 16)); err != ErrPrivParams {
		t.Errorf("short priv params: %v", err)
	}
	if _, err := DecryptScopedPDU(PrivDES, key, 1, 1, make([]byte, 8), make([]byte, 13)); err != ErrPadding {
		t.Errorf("non-block ciphertext: %v", err)
	}
	if _, err := DecryptScopedPDU(PrivAES128, key, 1, 1, []byte{1}, make([]byte, 16)); err != ErrPrivParams {
		t.Errorf("aes short params: %v", err)
	}
	if _, _, err := EncryptScopedPDU(PrivDES, []byte{1, 2, 3}, 1, 1, 1, []byte("x")); err != ErrShortKey {
		t.Errorf("short key: %v", err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	creds := Credentials{
		User: "ops", AuthProto: AuthSHA1, AuthPass: "authpass",
		PrivProto: PrivAES128, PrivPass: "privpass",
	}
	wire, err := SealGet(creds, privEngineID, 3, 5000, 42, 0xABCDEF, snmp.OIDSysDescr)
	if err != nil {
		t.Fatal(err)
	}
	// On the wire: auth+priv flags, no readable PDU.
	msg, err := snmp.DecodeV3(wire)
	if err != snmp.ErrEncrypted {
		t.Fatalf("expected ErrEncrypted, got %v", err)
	}
	if !msg.AuthFlag() || !msg.PrivFlag() {
		t.Error("flags not set")
	}
	if len(msg.EncryptedPDU) == 0 {
		t.Fatal("no ciphertext on the wire")
	}
	// The ciphertext must not contain the OID bytes.
	var oidPattern = []byte{0x2b, 0x06, 0x01, 0x02, 0x01, 0x01, 0x01, 0x00}
	if bytes.Contains(msg.EncryptedPDU, oidPattern) {
		t.Error("ciphertext leaks the queried OID")
	}
	// The legitimate peer can open it.
	scoped, err := OpenResponse(creds, wire)
	if err != nil {
		t.Fatal(err)
	}
	if scoped.PDU.Type != snmp.PDUGetRequest || !snmp.OIDEqual(scoped.PDU.VarBinds[0].Name, snmp.OIDSysDescr) {
		t.Errorf("opened PDU = %+v", scoped.PDU)
	}
	// Wrong privacy password cannot.
	bad := creds
	bad.PrivPass = "nope"
	if _, err := OpenResponse(bad, wire); err == nil {
		t.Error("wrong privacy password opened the message")
	}
	// Wrong auth password fails verification.
	bad = creds
	bad.AuthPass = "nope"
	if _, err := OpenResponse(bad, wire); err == nil {
		t.Error("wrong auth password verified")
	}
}

func TestScopedPDUCodecRoundTrip(t *testing.T) {
	s := &snmp.ScopedPDU{
		ContextEngineID: privEngineID,
		ContextName:     []byte("ctx"),
		PDU: &snmp.PDU{Type: snmp.PDUGetResponse, RequestID: 5,
			VarBinds: []snmp.VarBind{{Name: snmp.OIDSysName, Value: snmp.StringValue("r1")}}},
	}
	wire, err := snmp.EncodeScopedPDU(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snmp.DecodeScopedPDU(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.ContextName) != "ctx" || got.PDU.RequestID != 5 {
		t.Errorf("round trip: %+v", got)
	}
}

func TestPrivQuickRoundTrip(t *testing.T) {
	key := LocalizedPasswordKey(AuthSHA1, "quick", privEngineID)
	f := func(plain []byte, boots int32, etime int32, salt uint64, useAES bool) bool {
		proto := PrivDES
		if useAES {
			proto = PrivAES128
		}
		b, e := int64(boots&0x7FFFFFFF), int64(etime&0x7FFFFFFF)
		ct, params, err := EncryptScopedPDU(proto, key, b, e, salt, plain)
		if err != nil {
			return false
		}
		got, err := DecryptScopedPDU(proto, key, b, e, params, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
