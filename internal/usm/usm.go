// Package usm implements the User-based Security Model authentication of
// RFC 3414: password-to-key derivation, key localization against an engine
// ID, and HMAC-MD5-96 / HMAC-SHA-96 message authentication.
//
// The paper's Section 8 points out that because the discovery exchange
// hands out the *persistent* engine ID, an attacker can precompute
// localized keys and brute-force SNMPv3 credentials offline from a single
// captured authenticated message (citing Thomas, "Brute forcing SNMPv3
// authentication"). This package implements both sides: the legitimate
// authentication used by internal/labsim agents, and the offline Crack
// primitive that demonstrates the weakness.
package usm

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/sha1"
	"errors"
	"fmt"
	"hash"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/snmp"
)

// AuthProtocol selects the USM authentication protocol.
type AuthProtocol int

// Authentication protocols (RFC 3414 §6 and §7).
const (
	AuthMD5  AuthProtocol = iota // HMAC-MD5-96
	AuthSHA1                     // HMAC-SHA-96
)

// String names the protocol.
func (p AuthProtocol) String() string {
	switch p {
	case AuthMD5:
		return "HMAC-MD5-96"
	case AuthSHA1:
		return "HMAC-SHA-96"
	default:
		return fmt.Sprintf("auth(%d)", int(p))
	}
}

func (p AuthProtocol) newHash() func() hash.Hash {
	if p == AuthSHA1 {
		return sha1.New
	}
	return md5.New
}

// TruncatedLen is the length of msgAuthenticationParameters: both HMACs are
// truncated to 96 bits (RFC 3414 §6.3.1, §7.3.1).
const TruncatedLen = 12

// PasswordToKey implements the password-to-key algorithm of RFC 3414
// §A.2: the password is repeated to one megabyte and hashed.
func PasswordToKey(proto AuthProtocol, password string) []byte {
	h := proto.newHash()()
	if len(password) == 0 {
		password = "\x00"
	}
	const expand = 1 << 20
	pw := []byte(password)
	written := 0
	for written < expand {
		n := len(pw)
		if written+n > expand {
			n = expand - written
		}
		h.Write(pw[:n])
		written += n
	}
	return h.Sum(nil)
}

// LocalizeKey converts a user key into the key localized to one engine
// (RFC 3414 §2.6): H(Ku || engineID || Ku). Localization is why the engine
// ID must be known before authentication — and why discovery hands it out.
func LocalizeKey(proto AuthProtocol, ku, engineID []byte) []byte {
	h := proto.newHash()()
	h.Write(ku)
	h.Write(engineID)
	h.Write(ku)
	return h.Sum(nil)
}

// LocalizedPasswordKey combines both steps.
func LocalizedPasswordKey(proto AuthProtocol, password string, engineID []byte) []byte {
	return LocalizeKey(proto, PasswordToKey(proto, password), engineID)
}

// digest computes the truncated HMAC over wholeMsg with the authentication
// parameters field zeroed.
func digest(proto AuthProtocol, localizedKey, wholeMsg []byte) []byte {
	mac := hmac.New(proto.newHash(), localizedKey)
	mac.Write(wholeMsg)
	return mac.Sum(nil)[:TruncatedLen]
}

// Errors.
var (
	ErrNoAuthParams  = errors.New("usm: message carries no authentication parameters field")
	ErrBadAuthParams = errors.New("usm: authentication parameters have unexpected length")
)

// findAuthParams walks the BER structure of an SNMPv3 message and returns
// the byte offset and length of the msgAuthenticationParameters value
// within wire.
func findAuthParams(wire []byte) (off, length int, err error) {
	// SNMPv3Message ::= SEQUENCE { version, HeaderData, secParams OCTET
	// STRING { UsmSecurityParameters }, data }
	outer, _, err := ber.DecodeTLV(wire)
	if err != nil {
		return 0, 0, err
	}
	body := outer.Value
	bodyOff := offsetOf(wire, body)

	// version INTEGER
	tlv, rest, err := ber.DecodeTLV(body)
	if err != nil {
		return 0, 0, err
	}
	_ = tlv
	// msgGlobalData SEQUENCE
	_, rest, err = ber.DecodeTLV(rest)
	if err != nil {
		return 0, 0, err
	}
	// msgSecurityParameters OCTET STRING
	sec, _, err := ber.DecodeTLV(rest)
	if err != nil {
		return 0, 0, err
	}
	if sec.Tag != ber.TagOctetString {
		return 0, 0, fmt.Errorf("usm: security parameters tag 0x%02x", sec.Tag)
	}
	// Inside: UsmSecurityParameters SEQUENCE of six fields; the fifth is
	// msgAuthenticationParameters.
	inner, _, err := ber.DecodeTLV(sec.Value)
	if err != nil {
		return 0, 0, err
	}
	fields := inner.Value
	for i := 0; i < 4; i++ { // engineID, boots, time, userName
		_, fields, err = ber.DecodeTLV(fields)
		if err != nil {
			return 0, 0, err
		}
	}
	authTLV, _, err := ber.DecodeTLV(fields)
	if err != nil {
		return 0, 0, err
	}
	if authTLV.Tag != ber.TagOctetString {
		return 0, 0, ErrNoAuthParams
	}
	return bodyOff + offsetOf(body, authTLV.Value), len(authTLV.Value), nil
}

// offsetOf returns the offset of sub (a sub-slice) within buf.
func offsetOf(buf, sub []byte) int {
	if len(sub) == 0 {
		return 0
	}
	// Both slices share backing storage; compute via capacity arithmetic.
	return cap(buf) - cap(sub)
}

// Sign encodes msg with authentication: the auth flag is set, a 12-octet
// placeholder is emitted, and the truncated HMAC over the whole message is
// written into it (RFC 3414 §6.3.1).
func Sign(msg *snmp.V3Message, proto AuthProtocol, localizedKey []byte) ([]byte, error) {
	msg.MsgFlags |= snmp.FlagAuth
	msg.USM.AuthenticationParameters = make([]byte, TruncatedLen)
	wire, err := msg.Encode()
	if err != nil {
		return nil, err
	}
	off, n, err := findAuthParams(wire)
	if err != nil {
		return nil, err
	}
	if n != TruncatedLen {
		return nil, ErrBadAuthParams
	}
	mac := digest(proto, localizedKey, wire)
	copy(wire[off:off+n], mac)
	return wire, nil
}

// Verify checks the truncated HMAC of an authenticated message against the
// localized key. It does not mutate wire.
func Verify(wire []byte, proto AuthProtocol, localizedKey []byte) bool {
	off, n, err := findAuthParams(wire)
	if err != nil || n != TruncatedLen {
		return false
	}
	received := make([]byte, TruncatedLen)
	copy(received, wire[off:off+n])
	zeroed := make([]byte, len(wire))
	copy(zeroed, wire)
	for i := 0; i < n; i++ {
		zeroed[off+i] = 0
	}
	expected := digest(proto, localizedKey, zeroed)
	return hmac.Equal(received, expected)
}

// Crack mounts the offline dictionary attack of the paper's Section 8
// against a captured authenticated message: the engine ID is read from the
// message itself (it was disclosed by discovery anyway), each candidate
// password is localized and the HMAC recomputed. It returns the recovered
// password, the number of candidates tried, and whether it succeeded.
func Crack(wire []byte, proto AuthProtocol, wordlist []string) (password string, tried int, ok bool) {
	msg, err := snmp.DecodeV3(wire)
	if err != nil && err != snmp.ErrEncrypted {
		return "", 0, false
	}
	engineID := msg.USM.AuthoritativeEngineID
	if len(engineID) == 0 {
		return "", 0, false
	}
	for _, candidate := range wordlist {
		tried++
		key := LocalizedPasswordKey(proto, candidate, engineID)
		if Verify(wire, proto, key) {
			return candidate, tried, true
		}
	}
	return "", tried, false
}
