package usm

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"snmpv3fp/internal/snmp"
)

// rfc3414EngineID is the engine ID of the RFC 3414 A.3 examples.
var rfc3414EngineID = []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPasswordToKeyRFC3414MD5 checks the MD5 vector of RFC 3414 A.3.1.
func TestPasswordToKeyRFC3414MD5(t *testing.T) {
	ku := PasswordToKey(AuthMD5, "maplesyrup")
	want := mustHex(t, "9faf3283884e92834ebc9847d8edd963")
	if !bytes.Equal(ku, want) {
		t.Errorf("Ku = %x, want %x", ku, want)
	}
	kul := LocalizeKey(AuthMD5, ku, rfc3414EngineID)
	wantLocal := mustHex(t, "526f5eed9fcce26f8964c2930787d82b")
	if !bytes.Equal(kul, wantLocal) {
		t.Errorf("localized = %x, want %x", kul, wantLocal)
	}
}

// TestPasswordToKeyRFC3414SHA checks the SHA-1 vector of RFC 3414 A.3.2.
func TestPasswordToKeyRFC3414SHA(t *testing.T) {
	ku := PasswordToKey(AuthSHA1, "maplesyrup")
	want := mustHex(t, "9fb5cc0381497b3793528939ff788d5d79145211")
	if !bytes.Equal(ku, want) {
		t.Errorf("Ku = %x, want %x", ku, want)
	}
	kul := LocalizeKey(AuthSHA1, ku, rfc3414EngineID)
	wantLocal := mustHex(t, "6695febc9288e36282235fc7151f128497b38f3f")
	if !bytes.Equal(kul, wantLocal) {
		t.Errorf("localized = %x, want %x", kul, wantLocal)
	}
}

func TestLocalizedPasswordKey(t *testing.T) {
	direct := LocalizeKey(AuthMD5, PasswordToKey(AuthMD5, "pw"), rfc3414EngineID)
	combined := LocalizedPasswordKey(AuthMD5, "pw", rfc3414EngineID)
	if !bytes.Equal(direct, combined) {
		t.Error("combined helper disagrees")
	}
}

func TestProtocolStrings(t *testing.T) {
	if AuthMD5.String() != "HMAC-MD5-96" || AuthSHA1.String() != "HMAC-SHA-96" {
		t.Error("protocol names wrong")
	}
}

func authenticatedMessage(t *testing.T, proto AuthProtocol, password string) ([]byte, []byte) {
	t.Helper()
	engineID := []byte{0x80, 0x00, 0x00, 0x09, 0x03, 1, 2, 3, 4, 5, 6}
	msg := &snmp.V3Message{
		MsgID: 77, MsgMaxSize: snmp.DefaultMaxSize,
		MsgFlags:         snmp.FlagReportable,
		MsgSecurityModel: snmp.SecurityModelUSM,
		USM: snmp.USMSecurityParameters{
			AuthoritativeEngineID:    engineID,
			AuthoritativeEngineBoots: 3,
			AuthoritativeEngineTime:  1000,
			UserName:                 []byte("monitor"),
		},
		ScopedPDU: snmp.ScopedPDU{
			ContextEngineID: engineID,
			PDU: &snmp.PDU{Type: snmp.PDUGetRequest, RequestID: 9,
				VarBinds: []snmp.VarBind{{Name: snmp.OIDSysDescr, Value: snmp.NullValue()}}},
		},
	}
	key := LocalizedPasswordKey(proto, password, engineID)
	wire, err := Sign(msg, proto, key)
	if err != nil {
		t.Fatal(err)
	}
	return wire, key
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for _, proto := range []AuthProtocol{AuthMD5, AuthSHA1} {
		wire, key := authenticatedMessage(t, proto, "correct horse")
		if !Verify(wire, proto, key) {
			t.Fatalf("%v: signed message does not verify", proto)
		}
		// The message is still a decodable SNMPv3 message with auth set.
		msg, err := snmp.DecodeV3(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !msg.AuthFlag() {
			t.Error("auth flag not set")
		}
		if len(msg.USM.AuthenticationParameters) != TruncatedLen {
			t.Errorf("auth params length %d", len(msg.USM.AuthenticationParameters))
		}
		// Wrong key fails.
		badKey := LocalizedPasswordKey(proto, "wrong", msg.USM.AuthoritativeEngineID)
		if Verify(wire, proto, badKey) {
			t.Error("wrong key verified")
		}
		// Wrong protocol fails.
		other := AuthSHA1
		if proto == AuthSHA1 {
			other = AuthMD5
		}
		if Verify(wire, other, key) {
			t.Error("wrong protocol verified")
		}
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	wire, key := authenticatedMessage(t, AuthSHA1, "pw")
	for i := 0; i < len(wire); i++ {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x01
		if Verify(mut, AuthSHA1, key) {
			// Flipping a bit inside the 12-byte MAC itself also
			// invalidates; flipping anywhere else changes the digest.
			t.Fatalf("tampered byte %d still verifies", i)
		}
	}
}

func TestVerifyGarbage(t *testing.T) {
	if Verify([]byte("garbage"), AuthMD5, []byte("key")) {
		t.Error("garbage verified")
	}
	if Verify(nil, AuthMD5, nil) {
		t.Error("nil verified")
	}
	// Unauthenticated discovery messages (empty auth params) never verify.
	plain, _ := snmp.EncodeDiscoveryRequest(1, 1)
	if Verify(plain, AuthMD5, []byte("key")) {
		t.Error("unauthenticated message verified")
	}
}

func TestCrackRecoversPassword(t *testing.T) {
	wire, _ := authenticatedMessage(t, AuthSHA1, "maplesyrup")
	wordlist := []string{"password", "123456", "cisco", "maplesyrup", "admin"}
	pw, tried, ok := Crack(wire, AuthSHA1, wordlist)
	if !ok || pw != "maplesyrup" {
		t.Fatalf("crack: %q, %v", pw, ok)
	}
	if tried != 4 {
		t.Errorf("tried = %d, want 4", tried)
	}
}

func TestCrackFailsOnAbsentPassword(t *testing.T) {
	wire, _ := authenticatedMessage(t, AuthMD5, "not-in-list")
	_, tried, ok := Crack(wire, AuthMD5, []string{"a", "b"})
	if ok || tried != 2 {
		t.Errorf("crack: ok=%v tried=%d", ok, tried)
	}
}

func TestCrackNeedsEngineID(t *testing.T) {
	plain, _ := snmp.EncodeDiscoveryRequest(1, 1)
	if _, _, ok := Crack(plain, AuthMD5, []string{"x"}); ok {
		t.Error("cracked a message without engine ID")
	}
	if _, _, ok := Crack([]byte("junk"), AuthMD5, []string{"x"}); ok {
		t.Error("cracked junk")
	}
}

func TestSignVerifyQuick(t *testing.T) {
	f := func(password string, boots int32, user []byte) bool {
		engineID := []byte{0x80, 0x00, 0x1f, 0x88, 0x80, 1, 2, 3, 4, 5, 6, 7, 8}
		msg := &snmp.V3Message{
			MsgID: 1, MsgMaxSize: snmp.DefaultMaxSize,
			MsgSecurityModel: snmp.SecurityModelUSM,
			USM: snmp.USMSecurityParameters{
				AuthoritativeEngineID:    engineID,
				AuthoritativeEngineBoots: int64(boots & 0x7FFFFFFF),
				UserName:                 user,
			},
			ScopedPDU: snmp.ScopedPDU{PDU: &snmp.PDU{Type: snmp.PDUGetRequest}},
		}
		key := LocalizedPasswordKey(AuthMD5, password, engineID)
		wire, err := Sign(msg, AuthMD5, key)
		if err != nil {
			return false
		}
		return Verify(wire, AuthMD5, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPasswordToKeyMD5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PasswordToKey(AuthMD5, "maplesyrup")
	}
}

func BenchmarkCrackPerCandidate(b *testing.B) {
	engineID := []byte{0x80, 0x00, 0x00, 0x09, 0x03, 1, 2, 3, 4, 5, 6}
	msg := &snmp.V3Message{
		MsgID: 1, MsgMaxSize: snmp.DefaultMaxSize,
		MsgSecurityModel: snmp.SecurityModelUSM,
		USM:              snmp.USMSecurityParameters{AuthoritativeEngineID: engineID, UserName: []byte("u")},
		ScopedPDU:        snmp.ScopedPDU{PDU: &snmp.PDU{Type: snmp.PDUGetRequest}},
	}
	key := LocalizedPasswordKey(AuthSHA1, "never-found", engineID)
	wire, err := Sign(msg, AuthSHA1, key)
	if err != nil {
		b.Fatal(err)
	}
	words := make([]string, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		words[0] = "candidate"
		Crack(wire, AuthSHA1, words)
	}
}
