package usm

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/des"
	"encoding/binary"
	"errors"
	"fmt"

	"snmpv3fp/internal/snmp"
)

// PrivProtocol selects the USM privacy protocol.
type PrivProtocol int

// Privacy protocols.
const (
	// PrivDES is CBC-DES (RFC 3414 §8).
	PrivDES PrivProtocol = iota
	// PrivAES128 is CFB128-AES-128 (RFC 3826).
	PrivAES128
)

// String names the protocol.
func (p PrivProtocol) String() string {
	switch p {
	case PrivDES:
		return "CBC-DES"
	case PrivAES128:
		return "CFB128-AES-128"
	default:
		return fmt.Sprintf("priv(%d)", int(p))
	}
}

// Privacy errors.
var (
	ErrPrivParams = errors.New("usm: bad privacy parameters")
	ErrPadding    = errors.New("usm: bad DES padding")
	ErrShortKey   = errors.New("usm: localized key too short for privacy protocol")
)

// privKey derives the privacy key from a localized authentication key: the
// first 16 octets (RFC 3414 §8.2.1 uses the localized key directly; MD5
// yields exactly 16, SHA-1 is truncated).
func privKey(localizedKey []byte) ([]byte, error) {
	if len(localizedKey) < 16 {
		return nil, ErrShortKey
	}
	return localizedKey[:16], nil
}

// EncryptScopedPDU encrypts a BER-encoded ScopedPDU, returning the
// ciphertext (the msgData OCTET STRING body) and the privacy parameters to
// place in msgPrivacyParameters. boots/engineTime and salt feed the IV
// derivation exactly as the RFCs prescribe.
func EncryptScopedPDU(proto PrivProtocol, localizedKey []byte, boots, engineTime int64, salt uint64, scopedPDU []byte) (ciphertext, privParams []byte, err error) {
	key, err := privKey(localizedKey)
	if err != nil {
		return nil, nil, err
	}
	switch proto {
	case PrivDES:
		return encryptDES(key, boots, salt, scopedPDU)
	case PrivAES128:
		return encryptAES(key, boots, engineTime, salt, scopedPDU)
	default:
		return nil, nil, fmt.Errorf("usm: unknown privacy protocol %d", int(proto))
	}
}

// DecryptScopedPDU reverses EncryptScopedPDU.
func DecryptScopedPDU(proto PrivProtocol, localizedKey []byte, boots, engineTime int64, privParams, ciphertext []byte) ([]byte, error) {
	key, err := privKey(localizedKey)
	if err != nil {
		return nil, err
	}
	switch proto {
	case PrivDES:
		return decryptDES(key, privParams, ciphertext)
	case PrivAES128:
		return decryptAES(key, boots, engineTime, privParams, ciphertext)
	default:
		return nil, fmt.Errorf("usm: unknown privacy protocol %d", int(proto))
	}
}

// --- CBC-DES (RFC 3414 §8.1) ---

func encryptDES(key16 []byte, boots int64, salt uint64, plain []byte) (ciphertext, privParams []byte, err error) {
	desKey := key16[:8]
	preIV := key16[8:16]
	// Salt: engine boots || local integer (RFC 3414 §8.1.1.1).
	var saltBytes [8]byte
	binary.BigEndian.PutUint32(saltBytes[:4], uint32(boots))
	binary.BigEndian.PutUint32(saltBytes[4:], uint32(salt))
	iv := make([]byte, 8)
	for i := range iv {
		iv[i] = saltBytes[i] ^ preIV[i]
	}
	block, err := des.NewCipher(desKey)
	if err != nil {
		return nil, nil, err
	}
	// Pad to the block size (RFC 3414 §8.1.1.2 allows arbitrary pad bytes;
	// we use the pad length so decryption can strip it deterministically).
	padLen := 8 - len(plain)%8
	padded := make([]byte, len(plain)+padLen)
	copy(padded, plain)
	for i := len(plain); i < len(padded); i++ {
		padded[i] = byte(padLen)
	}
	out := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out, padded)
	return out, saltBytes[:], nil
}

func decryptDES(key16, privParams, ciphertext []byte) ([]byte, error) {
	if len(privParams) != 8 {
		return nil, ErrPrivParams
	}
	if len(ciphertext) == 0 || len(ciphertext)%8 != 0 {
		return nil, ErrPadding
	}
	desKey := key16[:8]
	preIV := key16[8:16]
	iv := make([]byte, 8)
	for i := range iv {
		iv[i] = privParams[i] ^ preIV[i]
	}
	block, err := des.NewCipher(desKey)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ciphertext))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(out, ciphertext)
	padLen := int(out[len(out)-1])
	if padLen < 1 || padLen > 8 || padLen > len(out) {
		return nil, ErrPadding
	}
	return out[:len(out)-padLen], nil
}

// --- CFB128-AES-128 (RFC 3826) ---

func encryptAES(key16 []byte, boots, engineTime int64, salt uint64, plain []byte) (ciphertext, privParams []byte, err error) {
	var saltBytes [8]byte
	binary.BigEndian.PutUint64(saltBytes[:], salt)
	iv := make([]byte, 16)
	binary.BigEndian.PutUint32(iv[0:4], uint32(boots))
	binary.BigEndian.PutUint32(iv[4:8], uint32(engineTime))
	copy(iv[8:], saltBytes[:])
	block, err := aes.NewCipher(key16)
	if err != nil {
		return nil, nil, err
	}
	out := make([]byte, len(plain))
	cipher.NewCFBEncrypter(block, iv).XORKeyStream(out, plain)
	return out, saltBytes[:], nil
}

func decryptAES(key16 []byte, boots, engineTime int64, privParams, ciphertext []byte) ([]byte, error) {
	if len(privParams) != 8 {
		return nil, ErrPrivParams
	}
	iv := make([]byte, 16)
	binary.BigEndian.PutUint32(iv[0:4], uint32(boots))
	binary.BigEndian.PutUint32(iv[4:8], uint32(engineTime))
	copy(iv[8:], privParams)
	block, err := aes.NewCipher(key16)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ciphertext))
	cipher.NewCFBDecrypter(block, iv).XORKeyStream(out, ciphertext)
	return out, nil
}

// --- authPriv message assembly ---

// Credentials bundles a user's authentication and privacy secrets.
type Credentials struct {
	User      string
	AuthProto AuthProtocol
	AuthPass  string
	PrivProto PrivProtocol
	PrivPass  string
}

// keys derives the localized authentication and privacy keys for an engine.
func (c Credentials) keys(engineID []byte) (authKey, privKeyLocalized []byte) {
	authKey = LocalizedPasswordKey(c.AuthProto, c.AuthPass, engineID)
	privKeyLocalized = LocalizedPasswordKey(c.AuthProto, c.PrivPass, engineID)
	return authKey, privKeyLocalized
}

// SealGet builds a fully protected (authPriv) Get request: the scoped PDU
// is encrypted, the message signed.
func SealGet(c Credentials, engineID []byte, boots, engineTime, msgID int64, salt uint64, oid []uint32) ([]byte, error) {
	scoped := &snmp.V3Message{ // temporary carrier to reuse the PDU encoder
		ScopedPDU: snmp.ScopedPDU{
			ContextEngineID: engineID,
			PDU: &snmp.PDU{Type: snmp.PDUGetRequest, RequestID: msgID,
				VarBinds: []snmp.VarBind{{Name: oid, Value: snmp.NullValue()}}},
		},
	}
	scopedWire, err := encodeScopedPDU(&scoped.ScopedPDU)
	if err != nil {
		return nil, err
	}
	authKey, pk := c.keys(engineID)
	ciphertext, privParams, err := EncryptScopedPDU(c.PrivProto, pk, boots, engineTime, salt, scopedWire)
	if err != nil {
		return nil, err
	}
	msg := &snmp.V3Message{
		MsgID:            msgID,
		MsgMaxSize:       snmp.DefaultMaxSize,
		MsgFlags:         snmp.FlagReportable | snmp.FlagPriv,
		MsgSecurityModel: snmp.SecurityModelUSM,
		USM: snmp.USMSecurityParameters{
			AuthoritativeEngineID:    engineID,
			AuthoritativeEngineBoots: boots,
			AuthoritativeEngineTime:  engineTime,
			UserName:                 []byte(c.User),
			PrivacyParameters:        privParams,
		},
		EncryptedPDU: ciphertext,
	}
	return Sign(msg, c.AuthProto, authKey)
}

// OpenResponse verifies and decrypts an authPriv response, returning the
// inner scoped PDU.
func OpenResponse(c Credentials, wire []byte) (*snmp.ScopedPDU, error) {
	msg, err := snmp.DecodeV3(wire)
	if err != nil && err != snmp.ErrEncrypted {
		return nil, err
	}
	engineID := msg.USM.AuthoritativeEngineID
	authKey, pk := c.keys(engineID)
	if !Verify(wire, c.AuthProto, authKey) {
		return nil, fmt.Errorf("usm: response authentication failed")
	}
	if !msg.PrivFlag() {
		if msg.ScopedPDU.PDU != nil {
			return &msg.ScopedPDU, nil
		}
		return nil, fmt.Errorf("usm: response has no PDU")
	}
	plain, err := DecryptScopedPDU(c.PrivProto, pk, msg.USM.AuthoritativeEngineBoots,
		msg.USM.AuthoritativeEngineTime, msg.USM.PrivacyParameters, msg.EncryptedPDU)
	if err != nil {
		return nil, err
	}
	return decodeScopedPDU(plain)
}

// encodeScopedPDU serializes a ScopedPDU SEQUENCE on its own.
func encodeScopedPDU(s *snmp.ScopedPDU) ([]byte, error) {
	return snmp.EncodeScopedPDU(s)
}

// decodeScopedPDU parses a standalone ScopedPDU.
func decodeScopedPDU(buf []byte) (*snmp.ScopedPDU, error) {
	return snmp.DecodeScopedPDU(buf)
}
