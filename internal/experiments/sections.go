package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"snmpv3fp/internal/baseline/nmapfp"
	"snmpv3fp/internal/baseline/ttlfp"
	"snmpv3fp/internal/dissect"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
	"snmpv3fp/internal/report"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/snmp"
)

// Section621Result: the lab experiment (Section 6.2.1), run over real
// loopback UDP sockets.
type Section621Result struct {
	Rows []Section621Row
}

// Section621Row is one (OS, configuration) probe outcome.
type Section621Row struct {
	OS            string
	Configuration string
	V2Answered    bool
	V3Answered    bool
	V3ReportOID   string
	EngineIDMAC   string
}

// Section621 starts Cisco IOS, IOS XR and Junos agent models in the three
// lab configurations and probes each with SNMPv2c (correct community) and
// an unauthenticated SNMPv3 discovery.
func Section621() (*Section621Result, error) {
	res := &Section621Result{}
	ciscoEngineID := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 0x12, 0x34, 0x56})
	juniperEngineID := engineid.NewMAC(2636, [6]byte{0x2c, 0x6b, 0xf5, 0xab, 0xcd, 0xef})

	type scenario struct {
		os     labsim.OSBehavior
		label  string
		cfg    labsim.Config
		expect string
	}
	scenarios := []scenario{
		{labsim.CiscoIOS, "no snmp config", labsim.Config{OS: labsim.CiscoIOS, EngineID: ciscoEngineID}, ""},
		{labsim.CiscoIOS, "snmp-server community pass123 RO", labsim.Config{OS: labsim.CiscoIOS, Community: "pass123", EngineID: ciscoEngineID}, ""},
		{labsim.CiscoIOSXR, "snmp-server community pass123 RO", labsim.Config{OS: labsim.CiscoIOSXR, Community: "pass123", EngineID: ciscoEngineID}, ""},
		{labsim.JuniperJunos, "community only (no interface enable)", labsim.Config{OS: labsim.JuniperJunos, Community: "pass123", EngineID: juniperEngineID}, ""},
		{labsim.JuniperJunos, "community + interface enable", labsim.Config{OS: labsim.JuniperJunos, Community: "pass123", InterfaceEnabled: true, EngineID: juniperEngineID}, ""},
	}
	for _, sc := range scenarios {
		agent, err := labsim.Start(sc.cfg)
		if err != nil {
			return nil, err
		}
		row, err := probeLabAgent(agent, sc.os.Name, sc.label, "pass123")
		agent.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func probeLabAgent(agent *labsim.Agent, osName, label, community string) (Section621Row, error) {
	row := Section621Row{OS: osName, Configuration: label}
	addr := agent.Addr()

	conn, err := netDialUDP(addr)
	if err != nil {
		return row, err
	}
	defer conn.Close()

	// SNMPv2c Get sysDescr with the configured community.
	v2req, err := snmp.NewGetRequest(snmp.V2c, community, 1001, snmp.OIDSysDescr).Encode()
	if err != nil {
		return row, err
	}
	if resp, ok := exchange(conn, v2req); ok {
		if m, err := snmp.DecodeCommunity(resp); err == nil && m.PDU.Type == snmp.PDUGetResponse {
			row.V2Answered = true
		}
		conn.tr.ReleasePayload(resp)
	}

	// Unauthenticated SNMPv3 query (noAuthUser / noAuthNoPriv).
	v3msg := snmp.NewDiscoveryRequest(1002, 1002)
	v3msg.USM.UserName = []byte("noAuthUser")
	v3msg.ScopedPDU.PDU.VarBinds = []snmp.VarBind{{Name: snmp.OIDSysDescr, Value: snmp.NullValue()}}
	v3req, err := v3msg.Encode()
	if err != nil {
		return row, err
	}
	if resp, ok := exchange(conn, v3req); ok {
		dr, err := snmp.ParseDiscoveryResponse(resp)
		if err == nil {
			row.V3Answered = true
			row.V3ReportOID = snmp.OIDString(dr.ReportOID)
			p := engineid.Classify(dr.EngineID)
			if mac, ok := p.MAC(); ok {
				vendor, _ := p.Vendor()
				row.EngineIDMAC = fmt.Sprintf("%02x:%02x:%02x (%s OUI)", mac[0], mac[1], mac[2], vendor)
			}
		}
		// dr aliases resp; everything kept from it has been formatted into
		// strings by now, so the receive buffer can go back to the pool.
		conn.tr.ReleasePayload(resp)
	}
	return row, nil
}

func netDialUDP(addr netip.AddrPort) (*udpConn, error) {
	tr, err := scanner.NewUDPTransport(addr.Port())
	if err != nil {
		return nil, err
	}
	return &udpConn{tr: tr, dst: addr.Addr()}, nil
}

// udpConn is a small request/response helper over the scanner transport.
type udpConn struct {
	tr  *scanner.UDPTransport
	dst netip.Addr
}

func (c *udpConn) Close() error { return c.tr.Close() }

// exchange sends req and returns the first response from the peer. The
// returned payload is a pooled receive buffer: the caller must pass it to
// c.tr.ReleasePayload when done. Datagrams from other sources are released
// here.
func exchange(c *udpConn, req []byte) ([]byte, bool) {
	obs := make(chan []byte, 1)
	go func() {
		for {
			src, payload, _, err := c.tr.Recv()
			if err != nil {
				close(obs)
				return
			}
			if src == c.dst {
				obs <- payload
				return
			}
			c.tr.ReleasePayload(payload)
		}
	}()
	if err := c.tr.Send(c.dst, req); err != nil {
		return nil, false
	}
	select {
	case p, ok := <-obs:
		return p, ok
	case <-time.After(500 * time.Millisecond):
		return nil, false
	}
}

// Render formats the lab experiment.
func (r *Section621Result) Render() string {
	rows := [][]string{{"Device OS", "Configuration", "v2c (community)", "v3 unauthenticated", "report / engine ID"}}
	for _, row := range r.Rows {
		detail := "-"
		if row.V3Answered {
			detail = row.V3ReportOID
			if row.EngineIDMAC != "" {
				detail += " " + row.EngineIDMAC
			}
		}
		rows = append(rows, []string{
			row.OS, row.Configuration, yesNo(row.V2Answered), yesNo(row.V3Answered), detail,
		})
	}
	return report.Table("Section 6.2.1: lab validation (loopback UDP)", rows)
}

func yesNo(b bool) string {
	if b {
		return "answers"
	}
	return "silent"
}

// Section623Result: comparison with Nmap (Section 6.2.3).
type Section623Result struct {
	Sampled  int
	NoResult int
	Match    int
	Mismatch int
	// TTL fingerprints of the same sample (Section 7.1 context):
	TTLAmbiguous int
	TTLMatches   int
	TTLTotal     int
}

// Section623 samples one IPv4 address per SNMPv3 router and fingerprints
// it with the Nmap and iTTL baselines, comparing against the SNMPv3 vendor.
func Section623(e *Env) *Section623Result {
	r := &Section623Result{}
	rng := rand.New(rand.NewSource(e.World.Cfg.Seed ^ 0x623))
	for _, s := range e.RouterSets {
		var v4 []netip.Addr
		for _, m := range s.Members {
			if m.IP.Is4() {
				v4 = append(v4, m.IP)
			}
		}
		if len(v4) == 0 {
			continue
		}
		addr := v4[rng.Intn(len(v4))]
		snmpVendor := SetVendor(s).VendorLabel()
		r.Sampled++
		res := nmapfp.Fingerprint(e.World, addr)
		switch res.Outcome {
		case nmapfp.NoResult:
			r.NoResult++
		case nmapfp.ExactMatch, nmapfp.BestGuess:
			if res.Vendor == snmpVendor {
				r.Match++
			} else {
				r.Mismatch++
			}
		}
		if sig, ok := ttlfp.Fingerprint(e.World, addr, 1+rng.Intn(20)); ok {
			r.TTLTotal++
			if sig.Ambiguous() {
				r.TTLAmbiguous++
			}
			if sig.Matches(snmpVendor) {
				r.TTLMatches++
			}
		}
	}
	return r
}

// Render formats the Nmap comparison.
func (r *Section623Result) Render() string {
	rows := [][]string{
		{"Outcome", "Routers", "Share"},
		{"no result (no usable TCP service)", report.Count(r.NoResult), pct(r.NoResult, r.Sampled)},
		{"fingerprint agrees with SNMPv3", report.Count(r.Match), pct(r.Match, r.Sampled)},
		{"fingerprint disagrees (best guess)", report.Count(r.Mismatch), pct(r.Mismatch, r.Sampled)},
	}
	s := report.Table(fmt.Sprintf("Section 6.2.3: Nmap comparison over %s sampled router IPs", report.Count(r.Sampled)), rows)
	s += fmt.Sprintf("iTTL baseline: %d/%d consistent with SNMPv3 vendor, %.0f%% ambiguous signatures\n",
		r.TTLMatches, r.TTLTotal, 100*float64(r.TTLAmbiguous)/float64(maxInt(r.TTLTotal, 1)))
	return s
}

func pct(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figures23Result: the packet dissections of Figures 2 and 3.
type Figures23Result struct {
	Request  string
	Response string
	// Sizes in bytes, to compare with the paper's 88-byte probe and
	// ~130-byte response (which include lower-layer headers).
	RequestBytes, ResponseBytes int
}

// Figures23 builds a discovery probe and the Brocade response of Figure 3
// and dissects both.
func Figures23(e *Env) (*Figures23Result, error) {
	reqWire, err := snmp.EncodeDiscoveryRequest(821490644, 1565454380)
	if err != nil {
		return nil, err
	}
	reqTree, err := dissect.Message(reqWire)
	if err != nil {
		return nil, err
	}
	// Figure 3's response: Brocade, engine ID 800007c703748ef831db80,
	// boots 148, time 10043812.
	req := snmp.NewDiscoveryRequest(821490644, 1565454380)
	rep := snmp.NewDiscoveryReport(req,
		[]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80},
		148, 10043812, 1)
	repWire, err := rep.Encode()
	if err != nil {
		return nil, err
	}
	repTree, err := dissect.Message(repWire)
	if err != nil {
		return nil, err
	}
	return &Figures23Result{
		Request:       reqTree,
		Response:      repTree,
		RequestBytes:  len(reqWire) + 42, // + Ethernet/IP/UDP headers
		ResponseBytes: len(repWire) + 42,
	}, nil
}

// Render formats the two dissections.
func (r *Figures23Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: SNMPv3 unsolicited synchronization request (%d bytes on the wire)\n", r.RequestBytes)
	b.WriteString(r.Request)
	fmt.Fprintf(&b, "\nFigure 3: SNMPv3 synchronization response (%d bytes on the wire)\n", r.ResponseBytes)
	b.WriteString(r.Response)
	return b.String()
}
