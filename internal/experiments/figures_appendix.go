package experiments

import (
	"fmt"
	"time"

	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/report"
)

// Figure19Result: uniqueness of the (last reboot, engine boots) tuple
// (Appendix B, Figure 19).
type Figure19Result struct {
	V4, V6 *analysis.ECDF
	// UniqueShareV4/V6 is the fraction of IPs whose tuple maps to a single
	// engine ID (paper: 97.2% IPv4, 99.8% IPv6).
	UniqueShareV4, UniqueShareV6 float64
}

func tupleUniqueness(valid []*filter.Merged) (*analysis.ECDF, float64) {
	// Map each (binned last reboot, boots) tuple to its engine IDs.
	tuples := map[[16]byte]map[string]bool{}
	for _, m := range valid {
		k := m.TupleKey(0, 20*time.Second) // 20-second bins
		if tuples[k] == nil {
			tuples[k] = map[string]bool{}
		}
		tuples[k][m.EngineIDKey()] = true
	}
	var perIP []float64
	unique := 0
	for _, m := range valid {
		n := len(tuples[m.TupleKey(0, 20*time.Second)])
		perIP = append(perIP, float64(n))
		if n == 1 {
			unique++
		}
	}
	share := 0.0
	if len(valid) > 0 {
		share = float64(unique) / float64(len(valid))
	}
	return analysis.NewECDF(perIP), share
}

// Figure19 measures how often a (last reboot, boots) tuple spans multiple
// engine IDs.
func Figure19(e *Env) *Figure19Result {
	r := &Figure19Result{}
	r.V4, r.UniqueShareV4 = tupleUniqueness(e.V4Filter.Valid)
	r.V6, r.UniqueShareV6 = tupleUniqueness(e.V6Filter.Valid)
	return r
}

// Render formats Figure 19.
func (r *Figure19Result) Render() string {
	s := report.ECDFSeries("Figure 19: engine IDs per (last reboot, boots) tuple",
		[]string{"IPv4", "IPv6"}, []*analysis.ECDF{r.V4, r.V6}, "%.0f")
	s += fmt.Sprintf("IPs with single-engine-ID tuple: IPv4 %.1f%%, IPv6 %.1f%%\n",
		r.UniqueShareV4*100, r.UniqueShareV6*100)
	return s
}

// Figure20Result: routers per AS per region (Appendix C, Figure 20).
type Figure20Result struct {
	ByRegion map[netsim.Region]*analysis.ECDF
	All      *analysis.ECDF
	// MappedShare is the fraction of router ASes with a region mapping
	// (the paper maps 99.9% via CAIDA AS Rank).
	MappedShare float64
}

// Figure20 computes routers-per-AS distributions split by region.
func Figure20(e *Env) *Figure20Result {
	perAS := routerVendorByAS(e)
	samples := map[netsim.Region][]float64{}
	var all []float64
	mapped := 0
	for asn, vendors := range perAS {
		routers := 0
		for _, c := range vendors {
			routers += c
		}
		all = append(all, float64(routers))
		a := e.World.ASByNumber(asn)
		if a == nil {
			continue
		}
		mapped++
		samples[a.Region] = append(samples[a.Region], float64(routers))
	}
	r := &Figure20Result{ByRegion: map[netsim.Region]*analysis.ECDF{}, All: analysis.NewECDF(all)}
	for _, region := range netsim.AllRegions {
		r.ByRegion[region] = analysis.NewECDF(samples[region])
	}
	if len(all) > 0 {
		r.MappedShare = float64(mapped) / float64(len(all))
	}
	return r
}

// Render formats Figure 20.
func (r *Figure20Result) Render() string {
	names := []string{"ALL"}
	curves := []*analysis.ECDF{r.All}
	for _, region := range netsim.AllRegions {
		names = append(names, string(region))
		curves = append(curves, r.ByRegion[region])
	}
	s := report.ECDFSeries("Figure 20: number of SNMPv3 routers per AS per region", names, curves, "%.0f")
	s += fmt.Sprintf("ASes mapped to a region: %.1f%%\n", r.MappedShare*100)
	return s
}
