package experiments

import (
	"fmt"
	"time"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/labsim"
	"snmpv3fp/internal/report"
	"snmpv3fp/internal/snmp"
	"snmpv3fp/internal/usm"
)

// Section8Result covers the paper's Section 8 security discussion: the
// multi-response anomaly, the amplification potential of spoofed-source
// discovery, and the offline credential brute force that the persistent
// engine ID enables.
type Section8Result struct {
	// MultiResponders is the number of IPv4 addresses answering one probe
	// with more than one packet (paper: 182k in scan 1).
	MultiResponders int
	// HeavyAmplifiers is the number answering with >1000 packets
	// (paper: 48).
	HeavyAmplifiers int
	// MaxResponses is the largest per-probe response count observed
	// (paper: 48.5M packets over two hours, from one address).
	MaxResponses int
	// ProbeBytes / MeanResponseBytes give the bandwidth amplification
	// factor of a single spoofed discovery probe.
	ProbeBytes        int
	MeanResponseBytes float64
	// BAF is the bandwidth amplification factor for a normal responder
	// (one response), computed over SNMP payloads.
	BAF float64

	// Brute force demonstration.
	CrackedPassword string
	CrackAttempts   int
	CrackRate       float64 // candidates per second
}

// commonPasswords is a tiny embedded wordlist for the demonstration.
var commonPasswords = []string{
	"password", "123456", "12345678", "admin", "cisco", "cisco123",
	"public", "private", "snmpv3", "monitor", "netman", "secret",
	"maplesyrup", "router", "switch", "juniper123", "S3cur3-Pass",
}

// Section8 measures the anomalies over the shared campaigns and runs the
// brute-force demonstration against a lab agent.
func Section8(e *Env) (*Section8Result, error) {
	r := &Section8Result{}
	// Multi-response accounting over scan 1, as in the paper.
	maxResp := 0
	for _, o := range e.V4Scan1.ByIP {
		if o.Packets > 1 {
			r.MultiResponders++
		}
		if o.Packets > 1000 {
			r.HeavyAmplifiers++
		}
		if o.Packets > maxResp {
			maxResp = o.Packets
		}
	}
	r.MaxResponses = maxResp

	// Amplification factor of the protocol exchange itself.
	probe, err := snmp.EncodeDiscoveryRequest(1, 1)
	if err != nil {
		return nil, err
	}
	r.ProbeBytes = len(probe)
	var totalBytes, totalPkts int
	for _, o := range e.V4Scan1.ByIP {
		// Approximate per-response size from a representative rebuild.
		_ = o
		totalPkts++
		if totalPkts > 2000 {
			break
		}
	}
	// Build one representative response to measure payload size.
	rep := snmp.NewDiscoveryReport(snmp.NewDiscoveryRequest(1, 1),
		engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3}), 148, 10043812, 1)
	wire, err := rep.Encode()
	if err != nil {
		return nil, err
	}
	totalBytes = len(wire)
	r.MeanResponseBytes = float64(totalBytes)
	r.BAF = r.MeanResponseBytes / float64(r.ProbeBytes)

	// Offline brute force against captured authenticated traffic: start an
	// agent with a weak password, capture one authenticated request, crack.
	user := labsim.V3User{Name: "netops", Protocol: usm.AuthSHA1, Password: "cisco123"}
	agent, err := labsim.Start(labsim.Config{
		OS:        labsim.CiscoIOS,
		Community: "c",
		User:      &user,
		EngineID:  engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 9, 8, 7}),
	})
	if err != nil {
		return nil, err
	}
	defer agent.Close()
	probeWire, _ := snmp.EncodeDiscoveryRequest(2, 2)
	dr, err := snmp.ParseDiscoveryResponse(agent.Handle(probeWire, timeNow()))
	if err != nil {
		return nil, err
	}
	captured, err := labsim.NewAuthenticatedGet(user, dr.EngineID, dr.EngineBoots, dr.EngineTime, 3, snmp.OIDSysDescr)
	if err != nil {
		return nil, err
	}
	start := timeNow()
	pw, tried, ok := usm.Crack(captured, usm.AuthSHA1, commonPasswords)
	elapsed := timeNow().Sub(start)
	if !ok {
		return nil, fmt.Errorf("section8: brute force failed unexpectedly")
	}
	r.CrackedPassword = pw
	r.CrackAttempts = tried
	if elapsed > 0 {
		r.CrackRate = float64(tried) / elapsed.Seconds()
	}
	return r, nil
}

// timeNow is a seam for tests; Section 8's rate measurement needs the wall
// clock.
var timeNow = time.Now

// Render formats the Section 8 findings.
func (r *Section8Result) Render() string {
	rows := [][]string{
		{"Anomaly / property", "Measured"},
		{"IPs answering one probe with >1 packet", report.Count(r.MultiResponders)},
		{"IPs answering with >1000 packets", fmt.Sprintf("%d", r.HeavyAmplifiers)},
		{"max packets for a single probe", report.Count(r.MaxResponses)},
		{"discovery probe payload", fmt.Sprintf("%d bytes", r.ProbeBytes)},
		{"discovery response payload", fmt.Sprintf("%.0f bytes", r.MeanResponseBytes)},
		{"bandwidth amplification factor", fmt.Sprintf("%.2fx (x%s with duplication)", r.BAF, report.Count(r.MaxResponses))},
	}
	s := report.Table("Section 8: potential vulnerabilities of SNMPv3 as deployed", rows)
	// The wall-clock crack rate (CrackRate) is deliberately not rendered:
	// the artifact must be byte-identical run to run.
	s += fmt.Sprintf("offline brute force (engine ID from discovery): recovered %q after %d candidates\n",
		r.CrackedPassword, r.CrackAttempts)
	return s
}
