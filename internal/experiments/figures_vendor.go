package experiments

import (
	"fmt"
	"sort"
	"strings"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/report"
)

// VendorSplit counts alias sets per vendor, split by address family
// (the stacked bars of Figures 11 and 12).
type VendorSplit struct {
	Vendor string
	V4Only int
	V6Only int
	Dual   int
}

// Total is the overall set count for the vendor.
func (v VendorSplit) Total() int { return v.V4Only + v.V6Only + v.Dual }

func vendorSplits(sets []*alias.Set, topK int) []VendorSplit {
	agg := map[string]*VendorSplit{}
	for _, s := range sets {
		vendor := SetVendor(s).VendorLabel()
		vs := agg[vendor]
		if vs == nil {
			vs = &VendorSplit{Vendor: vendor}
			agg[vendor] = vs
		}
		switch s.Family() {
		case alias.V4Only:
			vs.V4Only++
		case alias.V6Only:
			vs.V6Only++
		default:
			vs.Dual++
		}
	}
	out := make([]VendorSplit, 0, len(agg))
	for _, vs := range agg {
		out = append(out, *vs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Vendor < out[j].Vendor
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// Figure11Result: device vendor popularity (Figure 11).
type Figure11Result struct {
	TotalDevices int
	Top          []VendorSplit
	// Top10Share is the fraction of devices covered by the top-10 vendors
	// (paper: >80%).
	Top10Share float64
}

// Figure11 fingerprints every alias set.
func Figure11(e *Env) *Figure11Result {
	r := &Figure11Result{TotalDevices: len(e.CombinedSets)}
	all := vendorSplits(e.CombinedSets, 0)
	topTotal := 0
	for i, vs := range all {
		if i < 10 {
			topTotal += vs.Total()
		}
	}
	if len(all) > 10 {
		r.Top = all[:10]
	} else {
		r.Top = all
	}
	if r.TotalDevices > 0 {
		r.Top10Share = float64(topTotal) / float64(r.TotalDevices)
	}
	return r
}

// Render formats Figure 11.
func (r *Figure11Result) Render() string {
	rows := [][]string{{"Vendor", "IPv4-only", "IPv6-only", "dual-stack", "total"}}
	for _, vs := range r.Top {
		rows = append(rows, []string{vs.Vendor,
			report.Count(vs.V4Only), report.Count(vs.V6Only), report.Count(vs.Dual), report.Count(vs.Total())})
	}
	s := report.Table(fmt.Sprintf("Figure 11: vendor popularity (%s devices de-aliased)", report.Count(r.TotalDevices)), rows)
	s += fmt.Sprintf("top-10 vendors cover %.1f%% of devices\n", r.Top10Share*100)
	return s
}

// Figure12Result: router vendor popularity (Figure 12).
type Figure12Result struct {
	TotalRouters int
	V4Only       int
	V6Only       int
	Dual         int
	Top          []VendorSplit
	// Top4Share is the share of the four major vendors (paper: >95% via
	// Cisco, Huawei, Juniper, H3C).
	Top4Share   float64
	Top4Vendors []string
	// LeaderShareCI is the bootstrap 95% interval of the #1 vendor's
	// market share (not in the paper; quantifies the estimate).
	LeaderShareCI [2]float64
}

// Figure12 fingerprints the router alias sets.
func Figure12(e *Env) *Figure12Result {
	r := &Figure12Result{TotalRouters: len(e.RouterSets)}
	for _, s := range e.RouterSets {
		switch s.Family() {
		case alias.V4Only:
			r.V4Only++
		case alias.V6Only:
			r.V6Only++
		default:
			r.Dual++
		}
	}
	all := vendorSplits(e.RouterSets, 0)
	if len(all) > 10 {
		r.Top = all[:10]
	} else {
		r.Top = all
	}
	top4 := 0
	for i, vs := range all {
		if i < 4 {
			top4 += vs.Total()
			r.Top4Vendors = append(r.Top4Vendors, vs.Vendor)
		}
	}
	if r.TotalRouters > 0 {
		r.Top4Share = float64(top4) / float64(r.TotalRouters)
	}
	if len(all) > 0 && r.TotalRouters > 0 {
		lo, hi := analysis.ProportionCI(all[0].Total(), r.TotalRouters, 400, 0.95, 12)
		r.LeaderShareCI = [2]float64{lo, hi}
	}
	return r
}

// Render formats Figure 12.
func (r *Figure12Result) Render() string {
	rows := [][]string{{"Vendor", "IPv4-only", "IPv6-only", "dual-stack", "total"}}
	for _, vs := range r.Top {
		rows = append(rows, []string{vs.Vendor,
			report.Count(vs.V4Only), report.Count(vs.V6Only), report.Count(vs.Dual), report.Count(vs.Total())})
	}
	s := report.Table(fmt.Sprintf("Figure 12: router vendor popularity (%s routers: %s v4-only, %s v6-only, %s dual)",
		report.Count(r.TotalRouters), report.Count(r.V4Only), report.Count(r.V6Only), report.Count(r.Dual)), rows)
	s += fmt.Sprintf("top-4 vendors (%s) cover %.1f%% of routers\n",
		strings.Join(r.Top4Vendors, ", "), r.Top4Share*100)
	if r.LeaderShareCI[1] > 0 {
		s += fmt.Sprintf("leading vendor share: %.1f%% (bootstrap 95%%: %.1f%%-%.1f%%)\n",
			100*float64(r.Top[0].Total())/float64(r.TotalRouters),
			r.LeaderShareCI[0]*100, r.LeaderShareCI[1]*100)
	}
	return s
}

// routerVendorByAS aggregates router alias sets into per-AS vendor counts.
func routerVendorByAS(e *Env) map[uint32]map[string]int {
	perAS := map[uint32]map[string]int{}
	for _, s := range e.RouterSets {
		asn, ok := e.SetASN(s)
		if !ok {
			continue
		}
		vendor := SetVendor(s).VendorLabel()
		if perAS[asn] == nil {
			perAS[asn] = map[string]int{}
		}
		perAS[asn][vendor]++
	}
	return perAS
}

// Figure14Result: number of router vendors per AS (Figure 14).
type Figure14Result struct {
	ByThreshold map[int]*analysis.ECDF
	// SingleVendorShare5 is the share of ASes with 5+ routers that run a
	// single vendor (paper: ~40%).
	SingleVendorShare5 float64
}

// Figure14Thresholds mirrors the paper's router-count cuts.
var Figure14Thresholds = []int{1, 5, 20, 100, 1000}

// Figure14 counts distinct vendors per AS.
func Figure14(e *Env) *Figure14Result {
	perAS := routerVendorByAS(e)
	r := &Figure14Result{ByThreshold: map[int]*analysis.ECDF{}}
	for _, th := range Figure14Thresholds {
		var counts []float64
		single5 := 0
		n5 := 0
		for _, vendors := range perAS {
			routers := 0
			for _, c := range vendors {
				routers += c
			}
			if routers >= th {
				counts = append(counts, float64(len(vendors)))
			}
			if th == 5 && routers >= 5 {
				n5++
				if len(vendors) == 1 {
					single5++
				}
			}
		}
		r.ByThreshold[th] = analysis.NewECDF(counts)
		if th == 5 && n5 > 0 {
			r.SingleVendorShare5 = float64(single5) / float64(n5)
		}
	}
	return r
}

// Render formats Figure 14.
func (r *Figure14Result) Render() string {
	names := make([]string, 0, len(Figure14Thresholds))
	curves := make([]*analysis.ECDF, 0, len(Figure14Thresholds))
	for _, th := range Figure14Thresholds {
		label := "all ASes"
		if th > 1 {
			label = fmt.Sprintf("ASes %d+ routers", th)
		}
		names = append(names, label)
		curves = append(curves, r.ByThreshold[th])
	}
	s := report.ECDFSeries("Figure 14: number of router vendors per AS", names, curves, "%.0f")
	s += fmt.Sprintf("single-vendor share among ASes with 5+ routers: %.0f%%\n", r.SingleVendorShare5*100)
	return s
}

// RegionVendorShare is one heatmap row: vendor shares in one region.
type RegionVendorShare struct {
	Region  netsim.Region
	Routers int
	// Share maps vendor -> percentage of the region's routers.
	Share map[string]float64
}

// Figure15Vendors is the heatmap column order.
var Figure15Vendors = []string{"Cisco", "Huawei", "Net-SNMP", "Juniper", "Other"}

// Figure15Result: router vendor popularity per continent (Figure 15).
type Figure15Result struct {
	Rows []RegionVendorShare
}

// Figure15 aggregates router vendors per region.
func Figure15(e *Env) *Figure15Result {
	perRegion := map[netsim.Region]map[string]int{}
	totals := map[netsim.Region]int{}
	for _, s := range e.RouterSets {
		region, ok := e.SetRegion(s)
		if !ok {
			continue
		}
		vendor := SetVendor(s).VendorLabel()
		if perRegion[region] == nil {
			perRegion[region] = map[string]int{}
		}
		perRegion[region][vendor]++
		totals[region]++
	}
	r := &Figure15Result{}
	for _, region := range netsim.AllRegions {
		total := totals[region]
		row := RegionVendorShare{Region: region, Routers: total, Share: map[string]float64{}}
		if total > 0 {
			other := 0
			for vendor, c := range perRegion[region] {
				named := false
				for _, v := range Figure15Vendors[:len(Figure15Vendors)-1] {
					if vendor == v {
						row.Share[v] = 100 * float64(c) / float64(total)
						named = true
					}
				}
				if !named {
					other += c
				}
			}
			row.Share["Other"] = 100 * float64(other) / float64(total)
		}
		r.Rows = append(r.Rows, row)
	}
	// Sort by router count, as the paper orders its heatmap rows.
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].Routers > r.Rows[j].Routers })
	return r
}

// Render formats Figure 15.
func (r *Figure15Result) Render() string {
	rowLabels := make([]string, len(r.Rows))
	cells := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		rowLabels[i] = fmt.Sprintf("%s (%s)", row.Region, report.Count(row.Routers))
		cells[i] = make([]float64, len(Figure15Vendors))
		for j, v := range Figure15Vendors {
			cells[i][j] = row.Share[v]
		}
	}
	return report.Heatmap("Figure 15: router vendor share per continent [%]", rowLabels, Figure15Vendors, cells)
}

// Figure16Result: vendor popularity in the top-10 networks (Figure 16).
type Figure16Result struct {
	Rows []struct {
		Label   string
		Region  netsim.Region
		Routers int
		Share   map[string]float64
		// TopTwoShare is the combined share of the two largest vendors
		// (paper: typically >95%).
		TopTwoShare float64
	}
}

// Figure16 finds the ten ASes with the most routers.
func Figure16(e *Env) *Figure16Result {
	perAS := routerVendorByAS(e)
	type asEntry struct {
		asn     uint32
		routers int
	}
	entries := make([]asEntry, 0, len(perAS))
	for asn, vendors := range perAS {
		n := 0
		for _, c := range vendors {
			n += c
		}
		entries = append(entries, asEntry{asn, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].routers != entries[j].routers {
			return entries[i].routers > entries[j].routers
		}
		return entries[i].asn < entries[j].asn
	})
	if len(entries) > 10 {
		entries = entries[:10]
	}
	r := &Figure16Result{}
	regionCounter := map[netsim.Region]int{}
	for _, en := range entries {
		a := e.World.ASByNumber(en.asn)
		region := a.Region
		regionCounter[region]++
		share := map[string]float64{}
		var counts []int
		for vendor, c := range perAS[en.asn] {
			share[vendor] = 100 * float64(c) / float64(en.routers)
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		topTwo := 0
		for i, c := range counts {
			if i < 2 {
				topTwo += c
			}
		}
		r.Rows = append(r.Rows, struct {
			Label       string
			Region      netsim.Region
			Routers     int
			Share       map[string]float64
			TopTwoShare float64
		}{
			Label:       fmt.Sprintf("%s-%d", region, regionCounter[region]),
			Region:      region,
			Routers:     en.routers,
			Share:       share,
			TopTwoShare: float64(topTwo) / float64(en.routers),
		})
	}
	return r
}

// Render formats Figure 16.
func (r *Figure16Result) Render() string {
	rowLabels := make([]string, len(r.Rows))
	cells := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		rowLabels[i] = fmt.Sprintf("%s (%s)", row.Label, report.Count(row.Routers))
		cells[i] = make([]float64, len(Figure15Vendors))
		for j, v := range Figure15Vendors {
			if v == "Other" {
				named := 0.0
				for _, nv := range Figure15Vendors[:len(Figure15Vendors)-1] {
					named += row.Share[nv]
				}
				cells[i][j] = 100 - named
			} else {
				cells[i][j] = row.Share[v]
			}
		}
	}
	return report.Heatmap("Figure 16: vendor share in the top-10 networks by router count [%]", rowLabels, Figure15Vendors, cells)
}

// Figure17Result: vendor dominance per AS (Figure 17).
type Figure17Result struct {
	ByThreshold map[int]*analysis.ECDF
	// HighDominanceShare is the fraction of ASes (2+ routers) with
	// dominance >= 0.7 (paper: >80% of networks).
	HighDominanceShare float64
}

// Figure17Thresholds mirrors the paper's cuts.
var Figure17Thresholds = []int{2, 5, 10, 50, 100}

// Figure17 computes per-AS vendor dominance.
func Figure17(e *Env) *Figure17Result {
	perAS := routerVendorByAS(e)
	r := &Figure17Result{ByThreshold: map[int]*analysis.ECDF{}}
	for _, th := range Figure17Thresholds {
		var doms []float64
		high, n := 0, 0
		for _, vendors := range perAS {
			routers := 0
			for _, c := range vendors {
				routers += c
			}
			if routers < th {
				continue
			}
			d := analysis.Dominance(vendors)
			doms = append(doms, d)
			if th == 2 {
				n++
				if d >= 0.7 {
					high++
				}
			}
		}
		r.ByThreshold[th] = analysis.NewECDF(doms)
		if th == 2 && n > 0 {
			r.HighDominanceShare = float64(high) / float64(n)
		}
	}
	return r
}

// Render formats Figure 17.
func (r *Figure17Result) Render() string {
	names := make([]string, 0, len(Figure17Thresholds))
	curves := make([]*analysis.ECDF, 0, len(Figure17Thresholds))
	for _, th := range Figure17Thresholds {
		names = append(names, fmt.Sprintf("ASes %d+ routers", th))
		curves = append(curves, r.ByThreshold[th])
	}
	s := report.ECDFSeries("Figure 17: vendor dominance per AS", names, curves, "%.2f")
	s += fmt.Sprintf("ASes (2+ routers) with dominance >= 0.7: %.0f%%\n", r.HighDominanceShare*100)
	return s
}

// Figure18Result: vendor dominance per region, ASes with 10+ routers
// (Figure 18).
type Figure18Result struct {
	ByRegion map[netsim.Region]*analysis.ECDF
	ASCounts map[netsim.Region]int
}

// Figure18 splits dominance by region.
func Figure18(e *Env) *Figure18Result {
	perAS := routerVendorByAS(e)
	r := &Figure18Result{
		ByRegion: map[netsim.Region]*analysis.ECDF{},
		ASCounts: map[netsim.Region]int{},
	}
	samples := map[netsim.Region][]float64{}
	for asn, vendors := range perAS {
		routers := 0
		for _, c := range vendors {
			routers += c
		}
		if routers < 10 {
			continue
		}
		a := e.World.ASByNumber(asn)
		if a == nil {
			continue
		}
		samples[a.Region] = append(samples[a.Region], analysis.Dominance(vendors))
	}
	for _, region := range netsim.AllRegions {
		r.ByRegion[region] = analysis.NewECDF(samples[region])
		r.ASCounts[region] = len(samples[region])
	}
	return r
}

// Render formats Figure 18.
func (r *Figure18Result) Render() string {
	names := make([]string, 0, len(netsim.AllRegions))
	curves := make([]*analysis.ECDF, 0, len(netsim.AllRegions))
	for _, region := range netsim.AllRegions {
		names = append(names, fmt.Sprintf("%s (%d ASes)", region, r.ASCounts[region]))
		curves = append(curves, r.ByRegion[region])
	}
	return report.ECDFSeries("Figure 18: vendor dominance per region (ASes with 10+ routers)", names, curves, "%.2f")
}
