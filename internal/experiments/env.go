// Package experiments reproduces every table and figure of the paper's
// evaluation over the simulated Internet. Each experiment is a function of
// a shared Env — the world plus the four scan campaigns, the filtering
// reports, and the alias sets — mirroring how all of the paper's analyses
// are cut from the same two IPv4 and two IPv6 campaigns.
package experiments

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/datasets"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/route"
	"snmpv3fp/internal/scanner"
)

// Env bundles everything the experiments consume.
type Env struct {
	World    *netsim.World
	Datasets *datasets.Router

	// The four campaigns (paper Table 1): IPv6 on (virtual) April 13 and
	// 14, IPv4 starting April 16 and 22.
	V4Scan1, V4Scan2 *core.Campaign
	V6Scan1, V6Scan2 *core.Campaign

	// Filtering reports per family (Section 4.4).
	V4Filter, V6Filter *filter.Report

	// Alias sets per family and combined (Section 5.1), under the default
	// variant.
	V4Sets       []*alias.Set
	V6Sets       []*alias.Set
	CombinedSets []*alias.Set

	// RouterSets are combined sets with at least one member in the router
	// datasets (Section 6.1's 347k routers).
	RouterSets []*alias.Set

	// RouterAddrs4 / RouterAddrs6 are the dataset unions (Table 2).
	RouterAddrs4 map[netip.Addr]bool
	RouterAddrs6 map[netip.Addr]bool

	// Routes maps IPs to origin ASes by longest-prefix match over the
	// world's announced prefixes — standing in for the paper's BGP-derived
	// IP-to-AS mapping.
	Routes *route.Table
}

// Rates used by the paper.
const (
	v4Rate = 5000
	v6Rate = 20000
)

// Options tunes how the campaigns are executed. The measurement *results*
// are independent of these knobs — the sharded engine is deterministic
// under the virtual clock for any worker count — only wall-clock cost
// changes.
type Options struct {
	// Workers is the scan engine worker count per campaign; 0 selects one
	// worker per available CPU (capped at 8).
	Workers int
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
}

// NewEnv generates the world and runs the full measurement pipeline with
// default execution options.
func NewEnv(cfg netsim.Config) (*Env, error) {
	return NewEnvOpts(cfg, Options{})
}

// NewEnvOpts is NewEnv with explicit execution options.
func NewEnvOpts(cfg netsim.Config, opts Options) (*Env, error) {
	opts.fill()
	w := netsim.Generate(cfg)
	e := &Env{World: w, Datasets: datasets.Build(w)}
	e.Routes = buildRoutes(w)
	day := 24 * time.Hour
	start := cfg.StartTime

	hitlist := w.HitlistV6()
	prefixes := w.ScanPrefixes4()

	var err error
	// IPv6 scan 1 and 2 (April 13 / 14).
	w.Clock.Set(start.Add(12 * day))
	if e.V6Scan1, err = runList(w, hitlist, v6Rate, cfg.Seed+101, opts); err != nil {
		return nil, err
	}
	w.Clock.Set(start.Add(13 * day))
	if e.V6Scan2, err = runList(w, hitlist, v6Rate, cfg.Seed+102, opts); err != nil {
		return nil, err
	}
	// IPv4 scan 1 and 2 (April 16 / 22).
	w.Clock.Set(start.Add(15 * day))
	if e.V4Scan1, err = runPrefixes(w, prefixes, v4Rate, cfg.Seed+103, opts); err != nil {
		return nil, err
	}
	w.Clock.Set(start.Add(21 * day))
	if e.V4Scan2, err = runPrefixes(w, prefixes, v4Rate, cfg.Seed+104, opts); err != nil {
		return nil, err
	}

	e.V4Filter = filter.Run(e.V4Scan1, e.V4Scan2)
	e.V6Filter = filter.Run(e.V6Scan1, e.V6Scan2)

	e.V4Sets = alias.Resolve(e.V4Filter.Valid, alias.Default)
	e.V6Sets = alias.Resolve(e.V6Filter.Valid, alias.Default)
	combined := make([]*filter.Merged, 0, len(e.V4Filter.Valid)+len(e.V6Filter.Valid))
	combined = append(combined, e.V4Filter.Valid...)
	combined = append(combined, e.V6Filter.Valid...)
	e.CombinedSets = alias.Resolve(combined, alias.Default)

	e.RouterAddrs4 = e.Datasets.Union4()
	e.RouterAddrs6 = e.Datasets.Union6()
	for _, s := range e.CombinedSets {
		for _, m := range s.Members {
			if e.RouterAddrs4[m.IP] || e.RouterAddrs6[m.IP] {
				e.RouterSets = append(e.RouterSets, s)
				break
			}
		}
	}
	return e, nil
}

func runPrefixes(w *netsim.World, prefixes []netip.Prefix, rate int, seed int64, opts Options) (*core.Campaign, error) {
	targets, err := scanner.NewPrefixSpace(prefixes, seed)
	if err != nil {
		return nil, err
	}
	return runScan(w, targets, rate, seed, opts)
}

func runList(w *netsim.World, addrs []netip.Addr, rate int, seed int64, opts Options) (*core.Campaign, error) {
	targets, err := scanner.NewListSpace(addrs, seed)
	if err != nil {
		return nil, err
	}
	return runScan(w, targets, rate, seed, opts)
}

func runScan(w *netsim.World, targets scanner.TargetSpace, rate int, seed int64, opts Options) (*core.Campaign, error) {
	w.BeginScan()
	tr := w.NewTransport()
	res, err := scanner.Scan(tr, targets, scanner.Config{
		Rate:    rate,
		Batch:   256,
		Timeout: 8 * time.Second,
		Clock:   w.Clock,
		Seed:    seed,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return core.Collect(res), nil
}

// SetVendor fingerprints one alias set via its engine ID.
func SetVendor(s *alias.Set) core.Fingerprint {
	return core.FingerprintEngineID(s.Members[0].EngineID)
}

// buildRoutes assembles the IP-to-AS table from the world's announced
// prefixes, as the paper does from BGP route collectors.
func buildRoutes(w *netsim.World) *route.Table {
	t := &route.Table{}
	for _, a := range w.ASes {
		for _, p := range a.V4Prefixes {
			_ = t.Insert(p, a.Number)
		}
		for _, p := range a.V6Prefixes {
			_ = t.Insert(p, a.Number)
		}
	}
	return t
}

// SetASN maps a set to its AS by longest-prefix match over the announced
// prefixes (the paper's BGP-based IP-to-AS mapping).
func (e *Env) SetASN(s *alias.Set) (uint32, bool) {
	for _, m := range s.Members {
		if asn, ok := e.Routes.Lookup(m.IP); ok {
			return asn, true
		}
	}
	return 0, false
}

// SetRegion maps a set to its AS's region.
func (e *Env) SetRegion(s *alias.Set) (netsim.Region, bool) {
	asn, ok := e.SetASN(s)
	if !ok {
		return "", false
	}
	a := e.World.ASByNumber(asn)
	if a == nil {
		return "", false
	}
	return a.Region, true
}

// sharedEnv caches one Env per (seed, tiny) so the many experiments and
// benchmarks reuse the same campaigns, exactly as the paper cuts every
// analysis from one measurement.
var (
	envMu    sync.Mutex
	envCache = map[string]*Env{}
)

// Shared returns the cached default-scale Env for the seed.
func Shared(seed int64) (*Env, error) {
	return sharedWith(netsim.DefaultConfig(seed), fmt.Sprintf("d%d", seed))
}

// SharedTiny returns the cached tiny Env for the seed (used by tests).
func SharedTiny(seed int64) (*Env, error) {
	return sharedWith(netsim.TinyConfig(seed), fmt.Sprintf("t%d", seed))
}

func sharedWith(cfg netsim.Config, key string) (*Env, error) {
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[key]; ok {
		return e, nil
	}
	e, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	envCache[key] = e
	return e, nil
}
