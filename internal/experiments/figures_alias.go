package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/baseline/dnsnames"
	"snmpv3fp/internal/baseline/midar"
	"snmpv3fp/internal/baseline/speedtrap"
	"snmpv3fp/internal/report"
)

// Figure9Result: ECDF of IPs per alias set (Figure 9).
type Figure9Result struct {
	V4, V6, Routers *analysis.ECDF
	// Stats per family plus the dual-stack split of Section 5.1.
	V4Stats, V6Stats alias.Stats
	Families         map[alias.Family]alias.Stats
	// Ground-truth quality of the default variant (not in the paper,
	// which lacked ground truth; our simulation has it).
	Precision, Recall float64
}

// Figure9 computes alias-set size distributions.
func Figure9(e *Env) *Figure9Result {
	sizes := func(sets []*alias.Set) []float64 {
		out := make([]float64, len(sets))
		for i, s := range sets {
			out[i] = float64(s.Size())
		}
		return out
	}
	r := &Figure9Result{
		V4:       analysis.NewECDF(sizes(e.V4Sets)),
		V6:       analysis.NewECDF(sizes(e.V6Sets)),
		Routers:  analysis.NewECDF(sizes(e.RouterSets)),
		V4Stats:  alias.Summarize(e.V4Sets),
		V6Stats:  alias.Summarize(e.V6Sets),
		Families: map[alias.Family]alias.Stats{},
	}
	for fam, sets := range alias.SplitByFamily(e.CombinedSets) {
		r.Families[fam] = alias.Summarize(sets)
	}
	// Pair-level quality against simulation ground truth.
	truth := map[netip.Addr]int{}
	for _, d := range e.World.Devices {
		for _, a := range d.AllAddrs() {
			truth[a] = d.ID
		}
	}
	inferred := make([]analysis.AddrSet, 0, len(e.CombinedSets))
	for _, s := range e.CombinedSets {
		as := make(analysis.AddrSet, 0, len(s.Members))
		for _, m := range s.Members {
			as = append(as, m.IP)
		}
		inferred = append(inferred, as)
	}
	r.Precision, r.Recall = analysis.PrecisionRecall(inferred, truth)
	return r
}

// Render formats Figure 9 and the Section 5.1 numbers.
func (r *Figure9Result) Render() string {
	s := report.ECDFSeries("Figure 9: number of IPs per alias set",
		[]string{"IPv4", "IPv6", "routers"},
		[]*analysis.ECDF{r.V4, r.V6, r.Routers}, "%.0f")
	s += fmt.Sprintf("IPv4: %d sets, %d non-singleton, %.1f IPs per non-singleton set\n",
		r.V4Stats.Sets, r.V4Stats.NonSingleton, r.V4Stats.IPsPerNonSingleton())
	s += fmt.Sprintf("IPv6: %d sets, %d non-singleton, %.1f IPs per non-singleton set\n",
		r.V6Stats.Sets, r.V6Stats.NonSingleton, r.V6Stats.IPsPerNonSingleton())
	for _, fam := range []alias.Family{alias.V4Only, alias.V6Only, alias.DualStack} {
		st := r.Families[fam]
		s += fmt.Sprintf("%-10s: %d sets (%d non-singleton, %.1f IPs/set)\n",
			fam, st.Sets, st.NonSingleton, st.IPsPerNonSingleton())
	}
	s += fmt.Sprintf("pair-level quality vs ground truth: precision %.4f, recall %.4f\n",
		r.Precision, r.Recall)
	return s
}

// Figure10Result: SNMPv3 coverage of router IPs per AS (Figure 10).
type Figure10Result struct {
	// ByThreshold maps the minimum dataset-IP count per AS to the coverage
	// ECDF over qualifying ASes.
	ByThreshold map[int]*analysis.ECDF
	// OverallCoverage is responsive router IPs / dataset router IPs.
	OverallCoverage float64
}

// Figure10Thresholds mirrors the paper's 2+, 5+, 10+, 50+, 100+ IP cuts.
var Figure10Thresholds = []int{2, 5, 10, 50, 100}

// Figure10 computes per-AS SNMPv3 router coverage.
func Figure10(e *Env) *Figure10Result {
	resp := make(map[netip.Addr]bool, len(e.V4Scan1.ByIP))
	for ip := range e.V4Scan1.ByIP {
		resp[ip] = true
	}
	for ip := range e.V4Scan2.ByIP {
		resp[ip] = true
	}
	type asCount struct{ total, responsive int }
	perAS := map[uint32]*asCount{}
	var total, totalResp int
	for a := range e.RouterAddrs4 {
		d := e.World.DeviceAt(a)
		if d == nil {
			continue
		}
		c := perAS[d.ASN]
		if c == nil {
			c = &asCount{}
			perAS[d.ASN] = c
		}
		c.total++
		total++
		if resp[a] {
			c.responsive++
			totalResp++
		}
	}
	r := &Figure10Result{ByThreshold: map[int]*analysis.ECDF{}}
	if total > 0 {
		r.OverallCoverage = float64(totalResp) / float64(total)
	}
	for _, th := range Figure10Thresholds {
		var cov []float64
		for _, c := range perAS {
			if c.total >= th {
				cov = append(cov, float64(c.responsive)/float64(c.total))
			}
		}
		r.ByThreshold[th] = analysis.NewECDF(cov)
	}
	return r
}

// Render formats Figure 10.
func (r *Figure10Result) Render() string {
	names := make([]string, 0, len(Figure10Thresholds))
	curves := make([]*analysis.ECDF, 0, len(Figure10Thresholds))
	for _, th := range Figure10Thresholds {
		names = append(names, fmt.Sprintf("ASes %d+ IPs", th))
		curves = append(curves, r.ByThreshold[th])
	}
	s := report.ECDFSeries("Figure 10: SNMPv3 coverage of router IPv4 addresses per AS", names, curves, "%.2f")
	s += fmt.Sprintf("overall coverage: %.1f%% of router IPv4 addresses respond to SNMPv3\n", r.OverallCoverage*100)
	return s
}

// Section52Result: comparison with rDNS Router Names (Section 5.2).
type Section52Result struct {
	// RouterNames non-singleton set count and address count.
	NameSets, NameSetAddrs int
	DualStackNameSets      int
	// SNMPv3 non-singleton and dual-stack non-singleton counts.
	SNMPNonSingleton, SNMPDualNonSingleton int
	// Overlap of name sets against SNMPv3 sets.
	Overlap analysis.OverlapStats
}

// Section52 runs the rDNS baseline over the router dataset addresses and
// compares the resulting alias sets with the SNMPv3 sets.
func Section52(e *Env) *Section52Result {
	var candidates []netip.Addr
	for a := range e.RouterAddrs4 {
		candidates = append(candidates, a)
	}
	for a := range e.RouterAddrs6 {
		candidates = append(candidates, a)
	}
	nameSets := dnsnames.Resolve(e.World, candidates)

	r := &Section52Result{}
	var nameNonSingleton []analysis.AddrSet
	for _, s := range nameSets {
		if len(s) < 2 {
			continue
		}
		nameNonSingleton = append(nameNonSingleton, s)
		r.NameSets++
		r.NameSetAddrs += len(s)
		var has4, has6 bool
		for _, a := range s {
			if a.Is4() {
				has4 = true
			} else {
				has6 = true
			}
		}
		if has4 && has6 {
			r.DualStackNameSets++
		}
	}
	var snmpSets []analysis.AddrSet
	for _, s := range e.CombinedSets {
		if s.Singleton() {
			continue
		}
		r.SNMPNonSingleton++
		if s.Family() == alias.DualStack {
			r.SNMPDualNonSingleton++
		}
		as := make(analysis.AddrSet, 0, len(s.Members))
		for _, m := range s.Members {
			as = append(as, m.IP)
		}
		snmpSets = append(snmpSets, as)
	}
	r.Overlap = analysis.CompareSets(snmpSets, nameNonSingleton)
	return r
}

// Render formats the Section 5.2 comparison.
func (r *Section52Result) Render() string {
	rows := [][]string{
		{"Metric", "Router Names", "SNMPv3"},
		{"non-singleton alias sets", report.Count(r.NameSets), report.Count(r.SNMPNonSingleton)},
		{"dual-stack non-singleton", report.Count(r.DualStackNameSets), report.Count(r.SNMPDualNonSingleton)},
	}
	s := report.Table("Section 5.2: comparison with rDNS Router Names", rows)
	s += fmt.Sprintf("name sets exactly matching an SNMPv3 set: %d; partially overlapping: %d\n",
		r.Overlap.ExactMatches, r.Overlap.PartialMatches)
	return s
}

// Section53Result: comparison with MIDAR and Speedtrap (Section 5.3).
type Section53Result struct {
	MIDARStats, SpeedtrapStats struct {
		Sets, NonSingleton, IPsNonSingleton int
	}
	// Overlaps of baseline sets vs SNMPv3 sets.
	MIDAROverlap, SpeedtrapOverlap analysis.OverlapStats
	// SNMPv3 per-family non-singleton counts for the "magnitude more"
	// comparison.
	SNMP4NonSingleton, SNMP6NonSingleton int
}

// Section53 runs the IP-ID baselines over the router datasets.
func Section53(e *Env) *Section53Result {
	now := e.World.Cfg.StartTime.Add(25 * 24 * time.Hour)
	var cands4 []netip.Addr
	for a := range e.Datasets.ITDK4 {
		cands4 = append(cands4, a)
	}
	sortAddrs(cands4)
	midarSets := midar.Resolve(e.World, cands4, now, midar.DefaultConfig())

	var cands6 []netip.Addr
	for a := range e.Datasets.ITDK6 {
		cands6 = append(cands6, a)
	}
	sortAddrs(cands6)
	stSets := speedtrap.Resolve(e.World, cands6, now)

	r := &Section53Result{}
	fill := func(sets []analysis.AddrSet, st *struct{ Sets, NonSingleton, IPsNonSingleton int }) []analysis.AddrSet {
		st.Sets = len(sets)
		var ns []analysis.AddrSet
		for _, s := range sets {
			if len(s) > 1 {
				st.NonSingleton++
				st.IPsNonSingleton += len(s)
				ns = append(ns, s)
			}
		}
		return ns
	}
	midarNS := fill(midarSets, &r.MIDARStats)
	stNS := fill(stSets, &r.SpeedtrapStats)

	snmp4 := make([]analysis.AddrSet, 0)
	snmp6 := make([]analysis.AddrSet, 0)
	for _, s := range e.V4Sets {
		if !s.Singleton() {
			r.SNMP4NonSingleton++
			snmp4 = append(snmp4, setAddrs(s))
		}
	}
	for _, s := range e.V6Sets {
		if !s.Singleton() {
			r.SNMP6NonSingleton++
			snmp6 = append(snmp6, setAddrs(s))
		}
	}
	r.MIDAROverlap = analysis.CompareSets(snmp4, midarNS)
	r.SpeedtrapOverlap = analysis.CompareSets(snmp6, stNS)
	return r
}

func setAddrs(s *alias.Set) analysis.AddrSet {
	out := make(analysis.AddrSet, 0, len(s.Members))
	for _, m := range s.Members {
		out = append(out, m.IP)
	}
	return out
}

func sortAddrs(a []netip.Addr) {
	sort.Slice(a, func(i, j int) bool { return a[i].Less(a[j]) })
}

// Render formats the Section 5.3 comparison.
func (r *Section53Result) Render() string {
	rows := [][]string{
		{"Technique", "Alias sets", "Non-singleton", "IPs in non-singleton"},
		{"MIDAR (IPv4)", report.Count(r.MIDARStats.Sets), report.Count(r.MIDARStats.NonSingleton), report.Count(r.MIDARStats.IPsNonSingleton)},
		{"SNMPv3 (IPv4)", "-", report.Count(r.SNMP4NonSingleton), "-"},
		{"Speedtrap (IPv6)", report.Count(r.SpeedtrapStats.Sets), report.Count(r.SpeedtrapStats.NonSingleton), report.Count(r.SpeedtrapStats.IPsNonSingleton)},
		{"SNMPv3 (IPv6)", "-", report.Count(r.SNMP6NonSingleton), "-"},
	}
	s := report.Table("Section 5.3: comparison with MIDAR / Speedtrap", rows)
	s += fmt.Sprintf("MIDAR sets exact/partial overlap with SNMPv3: %d / %d\n",
		r.MIDAROverlap.ExactMatches, r.MIDAROverlap.PartialMatches)
	s += fmt.Sprintf("Speedtrap sets exact/partial overlap with SNMPv3: %d / %d\n",
		r.SpeedtrapOverlap.ExactMatches, r.SpeedtrapOverlap.PartialMatches)
	return s
}

// Section54Result: combined de-aliasing coverage (Section 5.4).
type Section54Result struct {
	// Coverage of router IPv4 addresses de-aliased (member of a
	// non-singleton set) by MIDAR only, SNMPv3 only, and the union.
	MIDAROnly, SNMPOnly, Union float64
	RouterAddrs                int
}

// Section54 computes the combined coverage over the IPv4 router dataset.
func Section54(e *Env) *Section54Result {
	now := e.World.Cfg.StartTime.Add(26 * 24 * time.Hour)
	var cands []netip.Addr
	for a := range e.RouterAddrs4 {
		cands = append(cands, a)
	}
	sortAddrs(cands)
	midarSets := midar.Resolve(e.World, cands, now, midar.DefaultConfig())

	inMIDAR := map[netip.Addr]bool{}
	for _, s := range midarSets {
		if len(s) > 1 {
			for _, a := range s {
				inMIDAR[a] = true
			}
		}
	}
	inSNMP := map[netip.Addr]bool{}
	for _, s := range e.V4Sets {
		if s.Singleton() {
			continue
		}
		for _, m := range s.Members {
			if e.RouterAddrs4[m.IP] {
				inSNMP[m.IP] = true
			}
		}
	}
	r := &Section54Result{RouterAddrs: len(e.RouterAddrs4)}
	var mid, snmp, union int
	for a := range e.RouterAddrs4 {
		m, s := inMIDAR[a], inSNMP[a]
		if m {
			mid++
		}
		if s {
			snmp++
		}
		if m || s {
			union++
		}
	}
	if r.RouterAddrs > 0 {
		r.MIDAROnly = float64(mid) / float64(r.RouterAddrs)
		r.SNMPOnly = float64(snmp) / float64(r.RouterAddrs)
		r.Union = float64(union) / float64(r.RouterAddrs)
	}
	return r
}

// Render formats the Section 5.4 coverage comparison.
func (r *Section54Result) Render() string {
	rows := [][]string{
		{"De-aliasing technique", "Router IPv4 coverage"},
		{"MIDAR only", fmt.Sprintf("%.1f%%", r.MIDAROnly*100)},
		{"SNMPv3 only", fmt.Sprintf("%.1f%%", r.SNMPOnly*100)},
		{"Combined", fmt.Sprintf("%.1f%%", r.Union*100)},
	}
	return report.Table("Section 5.4: combined de-aliasing coverage", rows)
}
