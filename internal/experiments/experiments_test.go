package experiments

import (
	"strings"
	"testing"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/netsim"
)

// env returns the shared tiny environment; all experiment tests cut from
// the same campaigns, as the paper does.
func env(t testing.TB) *Env {
	t.Helper()
	e, err := SharedTiny(1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTable1Shape(t *testing.T) {
	e := env(t)
	r := Table1(e)
	// Both same-family scans find nearly the same population.
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		a, b := r.IPs[pair[0]], r.IPs[pair[1]]
		if a == 0 || b == 0 {
			t.Fatalf("empty scan: %v", r.IPs)
		}
		diff := float64(a-b) / float64(a)
		if diff < -0.1 || diff > 0.1 {
			t.Errorf("scan sizes diverge: %d vs %d", a, b)
		}
	}
	// Engine IDs are fewer than IPs (aliasing), and the valid sets shrink
	// monotonically, as in the paper's Table 1.
	if r.EngineIDs[0] >= r.IPs[0] {
		t.Errorf("engine IDs %d >= IPs %d", r.EngineIDs[0], r.IPs[0])
	}
	if !(r.ValidEngineID[0] < r.IPs[0] && r.ValidEngineIDTime[0] < r.ValidEngineID[0]) {
		t.Errorf("IPv4 funnel broken: %d > %d > %d wanted",
			r.IPs[0], r.ValidEngineID[0], r.ValidEngineIDTime[0])
	}
	// The dominant IPv4 removals are reboot and boots inconsistency.
	steps := map[string]int{}
	for _, s := range r.FilterSteps[0] {
		steps[s.Name] = s.Removed
	}
	if steps["inconsistent last reboot"] <= steps["promiscuous engine ID"] {
		t.Error("reboot inconsistency should dominate removals")
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestTable2Shape(t *testing.T) {
	e := env(t)
	r := Table2(e)
	if r.ITDK4 == 0 || r.Atlas4 == 0 || r.Hitlist == 0 {
		t.Fatalf("empty datasets: %+v", r)
	}
	// ITDK is the largest IPv4 dataset; the union is at least as large.
	if r.ITDK4 <= r.Atlas4 {
		t.Errorf("ITDK4 %d <= Atlas4 %d", r.ITDK4, r.Atlas4)
	}
	if r.Union4 < r.ITDK4 {
		t.Errorf("union %d < ITDK %d", r.Union4, r.ITDK4)
	}
	// Coverage is partial in both directions.
	if r.ITDK4Resp == 0 || r.ITDK4Resp >= r.ITDK4 {
		t.Errorf("ITDK4 responsive %d of %d not partial", r.ITDK4Resp, r.ITDK4)
	}
	if !strings.Contains(r.Render(), "ITDK") {
		t.Error("render missing ITDK row")
	}
}

func TestTable3Shape(t *testing.T) {
	e := env(t)
	r := Table3(e)
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]alias.Stats{}
	for _, row := range r.Rows {
		byName[row.Variant] = row.Stats
	}
	// The paper's Table 3 ordering: exact matching fragments devices into
	// more sets than binned matching.
	if byName["Exact both"].Sets <= byName["Divide by 20 both"].Sets {
		t.Errorf("exact (%d sets) should exceed div20 (%d sets)",
			byName["Exact both"].Sets, byName["Divide by 20 both"].Sets)
	}
	// And binned matching yields more IPs per non-singleton set.
	if byName["Divide by 20 both"].IPsPerNonSingleton() <= byName["Exact both"].IPsPerNonSingleton() {
		t.Error("binned variant should produce larger sets")
	}
}

func TestFigure4Shape(t *testing.T) {
	e := env(t)
	r := Figure4(e)
	// Most engine IDs are on a single IP; the distribution is heavy-tailed.
	if r.SingleIPShareV4 < 0.5 {
		t.Errorf("single-IP share = %.2f", r.SingleIPShareV4)
	}
	if r.V4.Max() < 10 {
		t.Errorf("no heavy tail: max = %v", r.V4.Max())
	}
	if r.V4.N() == 0 || r.V6.N() == 0 {
		t.Error("empty ECDFs")
	}
}

func TestFigure5Shape(t *testing.T) {
	e := env(t)
	r := Figure5(e)
	// MAC is the dominant format in both families (paper: ~60%).
	if r.V4["MAC"] < 0.4 {
		t.Errorf("IPv4 MAC share = %.2f", r.V4["MAC"])
	}
	if r.V6["MAC"] < 0.3 {
		t.Errorf("IPv6 MAC share = %.2f", r.V6["MAC"])
	}
	sum := 0.0
	for _, cat := range Figure5Categories {
		sum += r.V4[cat]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("IPv4 shares sum to %.3f", sum)
	}
}

func TestFigure6Shape(t *testing.T) {
	e := env(t)
	r := Figure6(e)
	if r.OctetsN == 0 || r.NonConformingN == 0 {
		t.Fatalf("populations empty: %d octets, %d non-conforming", r.OctetsN, r.NonConformingN)
	}
	// Octets are random: mean relative Hamming weight near 0.5.
	if r.OctetsMean < 0.45 || r.OctetsMean > 0.55 {
		t.Errorf("octets mean = %.3f", r.OctetsMean)
	}
	// Non-conforming values skew positive (fewer ones than random).
	if r.NonConformingMean >= 0.45 {
		t.Errorf("non-conforming mean = %.3f, want < 0.45", r.NonConformingMean)
	}
	if r.NonConformingSkew <= 0 {
		t.Errorf("non-conforming skew = %.2f, want positive", r.NonConformingSkew)
	}
}

func TestFigure7Shape(t *testing.T) {
	e := env(t)
	r := Figure7(e)
	if len(r.V4) != 3 || len(r.V6) != 3 {
		t.Fatalf("top counts: %d/%d", len(r.V4), len(r.V6))
	}
	// The most popular engine IDs are shared by many IPs…
	if r.V4[0].IPs < 10 {
		t.Errorf("top IPv4 engine ID on only %d IPs", r.V4[0].IPs)
	}
	// …and at least one of them is a misconfiguration whose member devices
	// rebooted at very different times (spread over months).
	foundSpread := false
	for _, en := range append(append([]Figure7Entry{}, r.V4...), r.V6...) {
		if en.SpreadDays > 30 {
			foundSpread = true
		}
	}
	if !foundSpread {
		t.Error("no top engine ID with multi-month reboot spread")
	}
}

func TestFigure8Shape(t *testing.T) {
	e := env(t)
	r := Figure8(e)
	if r.V4All.N() == 0 || r.V4Router.N() == 0 {
		t.Fatal("empty distributions")
	}
	// Router reboot deltas are much more consistent than the overall
	// population (the basis for the 10 s threshold).
	if r.WithinThresholdRouter4 < 0.85 {
		t.Errorf("router within-threshold share = %.2f", r.WithinThresholdRouter4)
	}
	if r.V4All.At(10) >= r.WithinThresholdRouter4 {
		t.Error("all-IP distribution should be wider than routers'")
	}
}

func TestFigure9Shape(t *testing.T) {
	e := env(t)
	r := Figure9(e)
	// Router sets are bigger than the general population.
	if r.Routers.Quantile(0.5) < r.V4.Quantile(0.5) {
		t.Error("router median set size below overall median")
	}
	// Dual-stack sets exist and all are non-singleton by construction.
	dual := r.Families[alias.DualStack]
	if dual.Sets == 0 {
		t.Fatal("no dual-stack sets")
	}
	if dual.NonSingleton != dual.Sets {
		t.Error("dual-stack sets must span 2+ addresses")
	}
	// Alias resolution against ground truth is near-perfect (the paper's
	// operators confirmed all sampled sets).
	if r.Precision < 0.99 {
		t.Errorf("precision = %.4f", r.Precision)
	}
	if r.Recall < 0.9 {
		t.Errorf("recall = %.4f", r.Recall)
	}
}

func TestFigure10Shape(t *testing.T) {
	e := env(t)
	r := Figure10(e)
	// Paper: ~16% overall coverage.
	if r.OverallCoverage < 0.08 || r.OverallCoverage > 0.35 {
		t.Errorf("overall coverage = %.2f", r.OverallCoverage)
	}
	for _, th := range Figure10Thresholds {
		if r.ByThreshold[th] == nil {
			t.Fatalf("threshold %d missing", th)
		}
	}
	if r.ByThreshold[2].N() < r.ByThreshold[100].N() {
		t.Error("higher thresholds must qualify fewer ASes")
	}
}

func TestSection52Shape(t *testing.T) {
	e := env(t)
	r := Section52(e)
	if r.NameSets == 0 {
		t.Fatal("no router-name sets")
	}
	// SNMPv3 finds more non-singleton sets than the rDNS approach, and
	// the two are complementary (few exact matches, some partial).
	if r.SNMPNonSingleton <= r.NameSets {
		t.Errorf("SNMPv3 %d <= names %d", r.SNMPNonSingleton, r.NameSets)
	}
	if r.Overlap.PartialMatches == 0 {
		t.Error("no partial overlap at all")
	}
	if r.Overlap.ExactMatches > r.Overlap.PartialMatches {
		t.Error("exact matches should be rare relative to partial")
	}
}

func TestSection53Shape(t *testing.T) {
	e := env(t)
	r := Section53(e)
	// SNMPv3 finds more non-singleton sets than both IP-ID baselines.
	if r.SNMP4NonSingleton <= r.MIDARStats.NonSingleton {
		t.Errorf("SNMPv3 v4 %d <= MIDAR %d", r.SNMP4NonSingleton, r.MIDARStats.NonSingleton)
	}
	if r.MIDARStats.Sets == 0 {
		t.Error("MIDAR found nothing")
	}
}

func TestSection54Shape(t *testing.T) {
	e := env(t)
	r := Section54(e)
	// Combining increases coverage over either alone (paper: 11.7% / 14.8%
	// / 23%).
	if !(r.Union > r.MIDAROnly && r.Union > r.SNMPOnly) {
		t.Errorf("union %.3f not above components %.3f / %.3f",
			r.Union, r.MIDAROnly, r.SNMPOnly)
	}
	if r.Union > r.MIDAROnly+r.SNMPOnly {
		t.Error("union exceeds sum of components")
	}
}

func TestFigure11Shape(t *testing.T) {
	e := env(t)
	r := Figure11(e)
	if r.TotalDevices == 0 || len(r.Top) == 0 {
		t.Fatal("no devices")
	}
	// The paper: top-10 vendors cover >80% of devices.
	if r.Top10Share < 0.7 {
		t.Errorf("top-10 share = %.2f", r.Top10Share)
	}
	// Cisco and Net-SNMP are among the leaders.
	leaders := map[string]bool{}
	for i, vs := range r.Top {
		if i < 4 {
			leaders[vs.Vendor] = true
		}
	}
	if !leaders["Cisco"] || !leaders["Net-SNMP"] {
		t.Errorf("leaders = %v", leaders)
	}
}

func TestFigure12Shape(t *testing.T) {
	e := env(t)
	r := Figure12(e)
	if r.TotalRouters == 0 {
		t.Fatal("no routers")
	}
	// Cisco #1, Huawei #2 (paper Figure 12), top-4 heavily consolidated.
	if r.Top[0].Vendor != "Cisco" {
		t.Errorf("top router vendor = %s", r.Top[0].Vendor)
	}
	if r.Top[1].Vendor != "Huawei" {
		t.Errorf("second router vendor = %s", r.Top[1].Vendor)
	}
	if r.Top4Share < 0.80 {
		t.Errorf("top-4 share = %.2f", r.Top4Share)
	}
	// Routers have a higher IPv6/dual share than the general population
	// (paper Section 6.1).
	gen := Figure11(e)
	genV6 := 0
	for _, vs := range gen.Top {
		genV6 += vs.V6Only + vs.Dual
	}
	routerShare := float64(r.V6Only+r.Dual) / float64(r.TotalRouters)
	generalShare := float64(genV6) / float64(gen.TotalDevices)
	if routerShare <= generalShare*0.8 {
		t.Errorf("router v6/dual share %.3f not above general %.3f", routerShare, generalShare)
	}
}

func TestFigure13Shape(t *testing.T) {
	e := env(t)
	r := Figure13(e)
	if r.Reboots.N() == 0 {
		t.Fatal("no router uptimes")
	}
	// Paper: >50% rebooted within the measurement year, <25% uptime > 1y…
	if r.WithinYearOfScan < 0.35 {
		t.Errorf("within-year share = %.2f", r.WithinYearOfScan)
	}
	if r.OverOneYear > 0.4 {
		t.Errorf("over-one-year share = %.2f", r.OverOneYear)
	}
	// …and around 20% within the last month.
	if r.WithinMonth < 0.08 || r.WithinMonth > 0.35 {
		t.Errorf("within-month share = %.2f", r.WithinMonth)
	}
}

func TestFigure14Shape(t *testing.T) {
	e := env(t)
	r := Figure14(e)
	// A large share of ASes with 5+ routers are single-vendor (paper ~40%).
	if r.SingleVendorShare5 < 0.2 {
		t.Errorf("single-vendor share = %.2f", r.SingleVendorShare5)
	}
	// Vendor counts are small everywhere.
	if e5 := r.ByThreshold[5]; e5.N() > 0 && e5.Max() > 8 {
		t.Errorf("max vendors per AS = %v", e5.Max())
	}
}

func TestFigure15Shape(t *testing.T) {
	e := env(t)
	r := Figure15(e)
	if len(r.Rows) != len(netsim.AllRegions) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Thinly populated regions carry no signal at test scale.
		if row.Routers < 30 {
			continue
		}
		// Cisco leads in every populated region (paper: dominant across
		// all regions)…
		if row.Share["Cisco"] < 25 {
			t.Errorf("%s: Cisco share %.1f%%", row.Region, row.Share["Cisco"])
		}
		// …and Huawei is absent from North America.
		if row.Region == netsim.RegionNA && row.Share["Huawei"] > 1 {
			t.Errorf("NA Huawei share %.1f%%", row.Share["Huawei"])
		}
	}
}

func TestFigure16Shape(t *testing.T) {
	e := env(t)
	r := Figure16(e)
	if len(r.Rows) == 0 {
		t.Fatal("no top networks")
	}
	if len(r.Rows) > 10 {
		t.Errorf("rows = %d", len(r.Rows))
	}
	// Rows are sorted by router count.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Routers > r.Rows[i-1].Routers {
			t.Error("rows not sorted")
		}
	}
	// Top networks are heavily consolidated (paper: typically >95% in one
	// or two vendors).
	consolidated := 0
	for _, row := range r.Rows {
		if row.TopTwoShare >= 0.9 {
			consolidated++
		}
	}
	if consolidated < len(r.Rows)/2 {
		t.Errorf("only %d/%d top networks consolidated", consolidated, len(r.Rows))
	}
}

func TestFigure17Shape(t *testing.T) {
	e := env(t)
	r := Figure17(e)
	// Paper: >80% of ASes have dominance >= 0.7.
	if r.HighDominanceShare < 0.6 {
		t.Errorf("high dominance share = %.2f", r.HighDominanceShare)
	}
	if r.ByThreshold[2].N() == 0 {
		t.Fatal("no ASes")
	}
}

func TestFigure18And20Shapes(t *testing.T) {
	e := env(t)
	r18 := Figure18(e)
	counted := 0
	for _, region := range netsim.AllRegions {
		counted += r18.ASCounts[region]
	}
	if counted == 0 {
		t.Error("figure 18 has no qualifying ASes")
	}
	r20 := Figure20(e)
	if r20.All.N() == 0 {
		t.Fatal("figure 20 empty")
	}
	if r20.MappedShare < 0.99 {
		t.Errorf("mapped share = %.2f", r20.MappedShare)
	}
}

func TestFigure19Shape(t *testing.T) {
	e := env(t)
	r := Figure19(e)
	// Paper: 97.2% (IPv4) and 99.8% (IPv6) of IPs have tuples mapping to a
	// single engine ID.
	if r.UniqueShareV4 < 0.9 {
		t.Errorf("IPv4 unique tuple share = %.3f", r.UniqueShareV4)
	}
	if r.UniqueShareV6 < 0.9 {
		t.Errorf("IPv6 unique tuple share = %.3f", r.UniqueShareV6)
	}
	// But not 100%: co-located reboots do collide.
	if r.UniqueShareV4 == 1.0 {
		t.Error("expected some tuple collisions in IPv4")
	}
}

func TestSection621(t *testing.T) {
	r, err := Section621()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Row 0: unconfigured Cisco is silent on both protocols.
	if r.Rows[0].V2Answered || r.Rows[0].V3Answered {
		t.Error("unconfigured device answered")
	}
	// Rows 1-2: community alone implicitly enables v3.
	for _, i := range []int{1, 2} {
		if !r.Rows[i].V2Answered || !r.Rows[i].V3Answered {
			t.Errorf("row %d: v2=%v v3=%v", i, r.Rows[i].V2Answered, r.Rows[i].V3Answered)
		}
		if !strings.Contains(r.Rows[i].EngineIDMAC, "Cisco") {
			t.Errorf("row %d engine ID: %s", i, r.Rows[i].EngineIDMAC)
		}
	}
	// Row 3: Junos without interface enable is silent; row 4 answers.
	if r.Rows[3].V3Answered {
		t.Error("Junos without interface enable answered")
	}
	if !r.Rows[4].V3Answered || !strings.Contains(r.Rows[4].EngineIDMAC, "Juniper") {
		t.Errorf("Junos row: %+v", r.Rows[4])
	}
}

func TestSection622(t *testing.T) {
	e := env(t)
	r := Section622(e)
	if r.OperatorsSurveyed == 0 || r.SetsShared == 0 {
		t.Fatal("nothing surveyed")
	}
	// The paper: operators confirmed every shared alias set and vendor.
	if r.SetsConfirmed != r.SetsShared {
		t.Errorf("only %d/%d sets confirmed", r.SetsConfirmed, r.SetsShared)
	}
	if float64(r.VendorConfirmed)/float64(r.SetsShared) < 0.95 {
		t.Errorf("vendor confirmations %d/%d", r.VendorConfirmed, r.SetsShared)
	}
	// The ACL caveat is visible: a substantial interface share is missed.
	if r.MissedInterfaceShare < 0.2 || r.MissedInterfaceShare > 0.95 {
		t.Errorf("missed interface share = %.2f", r.MissedInterfaceShare)
	}
}

func TestSection623Shape(t *testing.T) {
	e := env(t)
	r := Section623(e)
	if r.Sampled == 0 {
		t.Fatal("nothing sampled")
	}
	// Paper: 84% no result, 11% match, 5% mismatch.
	noShare := float64(r.NoResult) / float64(r.Sampled)
	if noShare < 0.6 {
		t.Errorf("no-result share = %.2f", noShare)
	}
	if r.Match == 0 {
		t.Error("no matches")
	}
	if r.Match <= r.Mismatch {
		t.Errorf("matches (%d) should exceed mismatches (%d)", r.Match, r.Mismatch)
	}
	// iTTL: nearly everything ambiguous.
	if r.TTLTotal > 0 && float64(r.TTLAmbiguous)/float64(r.TTLTotal) < 0.9 {
		t.Error("iTTL should be ambiguous for almost all routers")
	}
}

func TestSection73(t *testing.T) {
	e := env(t)
	r := Section73(e)
	if r.DualStackSNMP == 0 {
		t.Fatal("no dual-stack sets")
	}
	if r.Skew.Candidates == 0 {
		t.Fatal("no candidate pairs")
	}
	// The skew technique confirms some pairs but cannot measure most
	// (routers lack open TCP) — SNMPv3's coverage advantage.
	if r.Skew.NoData == 0 {
		t.Error("skew technique measured everything — router TCP posture missing")
	}
	if r.Skew.NoData <= r.Skew.Siblings {
		t.Errorf("expected unmeasurable (%d) to dominate confirmed (%d)", r.Skew.NoData, r.Skew.Siblings)
	}
	// But pairs it does measure are confirmed (they are true siblings).
	if r.Skew.NonSiblings > r.Skew.Siblings {
		t.Errorf("more non-siblings (%d) than siblings (%d) among true pairs", r.Skew.NonSiblings, r.Skew.Siblings)
	}
}

func TestSection8(t *testing.T) {
	e := env(t)
	r, err := Section8(e)
	if err != nil {
		t.Fatal(err)
	}
	// The multi-response anomaly exists but is rare (paper: 0.6% of
	// responders), with a handful of heavy amplifiers.
	if r.MultiResponders == 0 {
		t.Error("no multi-responders")
	}
	if float64(r.MultiResponders)/float64(len(e.V4Scan1.ByIP)) > 0.05 {
		t.Error("multi-responders too common")
	}
	if r.HeavyAmplifiers == 0 || r.MaxResponses < 1000 {
		t.Errorf("amplifiers missing: %d heavy, max %d", r.HeavyAmplifiers, r.MaxResponses)
	}
	// The exchange amplifies: responses are bigger than probes.
	if r.BAF <= 1 {
		t.Errorf("BAF = %.2f", r.BAF)
	}
	// The brute force recovers the weak password.
	if r.CrackedPassword != "cisco123" {
		t.Errorf("cracked %q", r.CrackedPassword)
	}
	if !strings.Contains(r.Render(), "brute force") {
		t.Error("render missing brute force line")
	}
}

func TestFigures23(t *testing.T) {
	e := env(t)
	r, err := Figures23(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Request, "msgAuthoritativeEngineID: <MISSING>") {
		t.Error("request dissection wrong")
	}
	if !strings.Contains(r.Response, "Engine ID Data: Brocade (74:8e:f8:31:db:80)") {
		t.Error("response dissection wrong")
	}
	// The paper reports an 88-byte request and ~130-byte average response
	// including headers; ours must be in that region.
	if r.RequestBytes < 70 || r.RequestBytes > 120 {
		t.Errorf("request bytes = %d", r.RequestBytes)
	}
	if r.ResponseBytes < 110 || r.ResponseBytes > 180 {
		t.Errorf("response bytes = %d", r.ResponseBytes)
	}
}

func TestMonitorExtension(t *testing.T) {
	e := env(t)
	r, err := Monitor(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Tracked == 0 {
		t.Fatal("nothing tracked")
	}
	// Recurring-reboot devices restart within the monitoring window.
	if r.Summary.RebootEvents == 0 {
		t.Error("no restarts detected over five weeks")
	}
	// IPv6-style churn is rare on IPv4, but the inter-campaign flips count.
	if r.Summary.IdentityChanges == 0 {
		t.Error("no identity changes detected")
	}
	// Availability is high but not perfect (per-scan loss).
	if r.Summary.MeanAvailability < 0.85 || r.Summary.MeanAvailability >= 1.0 {
		t.Errorf("availability = %.3f", r.Summary.MeanAvailability)
	}
	if r.RebootRatePerWeek <= 0 {
		t.Error("zero reboot rate")
	}
}

func TestSection9NATInference(t *testing.T) {
	e := env(t)
	r := Section9(e)
	if r.Survey.Candidates == 0 {
		t.Fatal("no identity-changing candidates")
	}
	// Every simulated VIP that responded must be found, with no false
	// positives among churned addresses.
	if r.FalsePositives != 0 {
		t.Errorf("false load-balancer calls: %d", r.FalsePositives)
	}
	if r.TruePositives == 0 {
		t.Error("no load balancers detected")
	}
	// Churn dominates the candidate set, as on the real Internet.
	if r.Survey.Stable <= r.Survey.LoadBalanced {
		t.Errorf("stable %d <= load-balanced %d", r.Survey.Stable, r.Survey.LoadBalanced)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, ex := range All {
		if ids[ex.ID] {
			t.Errorf("duplicate experiment ID %q", ex.ID)
		}
		ids[ex.ID] = true
		if ex.Title == "" || ex.Run == nil {
			t.Errorf("experiment %q incomplete", ex.ID)
		}
	}
	// Every table and figure of the paper must be covered.
	for _, want := range []string{"table1", "table2", "table3",
		"fig2-3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "sec52", "sec53", "sec54", "sec621",
		"sec622", "sec623", "sec73", "sec8", "monitor", "nat"} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Error("ByID broken")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
}

func TestAllExperimentsRender(t *testing.T) {
	e := env(t)
	for _, ex := range All {
		out, err := ex.Run(e)
		if err != nil {
			t.Fatalf("%s: %v", ex.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output (%d bytes)", ex.ID, len(out))
		}
	}
}

// TestEnvDeterminism: the same seed must reproduce identical campaign and
// pipeline outcomes — the property that makes every figure regenerable.
func TestEnvDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e1, err := NewEnv(netsim.TinyConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEnv(netsim.TinyConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	if len(e1.V4Scan1.ByIP) != len(e2.V4Scan1.ByIP) ||
		len(e1.V4Filter.Valid) != len(e2.V4Filter.Valid) ||
		len(e1.CombinedSets) != len(e2.CombinedSets) ||
		len(e1.RouterSets) != len(e2.RouterSets) {
		t.Fatalf("same seed, different outcomes: %d/%d IPs, %d/%d valid, %d/%d sets",
			len(e1.V4Scan1.ByIP), len(e2.V4Scan1.ByIP),
			len(e1.V4Filter.Valid), len(e2.V4Filter.Valid),
			len(e1.CombinedSets), len(e2.CombinedSets))
	}
	// Per-IP observations agree exactly.
	for ip, o1 := range e1.V4Scan1.ByIP {
		o2 := e2.V4Scan1.ByIP[ip]
		if o2 == nil || string(o1.EngineID) != string(o2.EngineID) ||
			o1.EngineBoots != o2.EngineBoots || o1.EngineTime != o2.EngineTime {
			t.Fatalf("observation for %v differs between runs", ip)
		}
	}
}

// TestIoTPopulationPresent: the world includes the exposed-IoT class the
// paper's limitations section expects to capture.
func TestIoTPopulationPresent(t *testing.T) {
	e := env(t)
	iot := 0
	for _, d := range e.World.Devices {
		if d.Class == netsim.ClassIoT {
			iot++
		}
	}
	if iot != e.World.Cfg.IoTDevices {
		t.Errorf("IoT devices = %d, want %d", iot, e.World.Cfg.IoTDevices)
	}
}

// TestRoutesMatchGroundTruth: the LPM IP-to-AS mapping must agree with the
// simulator's ground truth for every device address.
func TestRoutesMatchGroundTruth(t *testing.T) {
	e := env(t)
	checked := 0
	for _, d := range e.World.Devices {
		for _, a := range d.AllAddrs() {
			asn, ok := e.Routes.Lookup(a)
			if !ok {
				t.Fatalf("no route for %v", a)
			}
			if asn != d.ASN {
				t.Fatalf("route says AS%d for %v, ground truth AS%d", asn, a, d.ASN)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
