package experiments

import (
	"fmt"
	"net/netip"
	"strings"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/report"
)

// Table1Result reproduces Table 1: the campaign overview.
type Table1Result struct {
	// Rows: IPv4 scan 1, IPv4 scan 2, IPv6 scan 1, IPv6 scan 2.
	IPs       [4]int
	EngineIDs [4]int
	// ValidEngineID / ValidEngineIDTime are per family (merged scans).
	ValidEngineID     [2]int
	ValidEngineIDTime [2]int
	// FilterSteps carries the Section 4.4 per-step accounting per family.
	FilterSteps [2][]filter.Step
}

// Table1 computes the campaign overview.
func Table1(e *Env) *Table1Result {
	r := &Table1Result{}
	r.IPs = [4]int{len(e.V4Scan1.ByIP), len(e.V4Scan2.ByIP), len(e.V6Scan1.ByIP), len(e.V6Scan2.ByIP)}
	r.EngineIDs = [4]int{e.V4Filter.Scan1EngineIDs, e.V4Filter.Scan2EngineIDs, e.V6Filter.Scan1EngineIDs, e.V6Filter.Scan2EngineIDs}
	r.ValidEngineID = [2]int{e.V4Filter.ValidEngineID, e.V6Filter.ValidEngineID}
	r.ValidEngineIDTime = [2]int{len(e.V4Filter.Valid), len(e.V6Filter.Valid)}
	r.FilterSteps[0] = e.V4Filter.Steps
	r.FilterSteps[1] = e.V6Filter.Steps
	return r
}

// Render formats the result as the paper's Table 1 plus the Section 4.4
// step accounting.
func (r *Table1Result) Render() string {
	rows := [][]string{
		{"Measurement", "#IPs", "#Engine IDs", "#IPs valid engine ID", "#IPs valid engine ID & time"},
		{"IPv4 scan 1", report.Count(r.IPs[0]), report.Count(r.EngineIDs[0]),
			report.Count(r.ValidEngineID[0]), report.Count(r.ValidEngineIDTime[0])},
		{"IPv4 scan 2", report.Count(r.IPs[1]), report.Count(r.EngineIDs[1]), "\"", "\""},
		{"IPv6 scan 1", report.Count(r.IPs[2]), report.Count(r.EngineIDs[2]),
			report.Count(r.ValidEngineID[1]), report.Count(r.ValidEngineIDTime[1])},
		{"IPv6 scan 2", report.Count(r.IPs[3]), report.Count(r.EngineIDs[3]), "\"", "\""},
	}
	var b strings.Builder
	b.WriteString(report.Table("Table 1: SNMPv3 measurement campaign overview", rows))
	for fam, name := range []string{"IPv4", "IPv6"} {
		srows := [][]string{{"Filter step (" + name + ")", "Removed"}}
		for _, s := range r.FilterSteps[fam] {
			srows = append(srows, []string{s.Name, report.Count(s.Removed)})
		}
		b.WriteByte('\n')
		b.WriteString(report.Table("Section 4.4 filtering pipeline ("+name+")", srows))
	}
	return b.String()
}

// Table2Result reproduces Table 2: router datasets and SNMPv3 coverage.
type Table2Result struct {
	// Per dataset: total addresses, SNMPv3-responsive addresses.
	ITDK4, ITDK4Resp     int
	ITDK6, ITDK6Resp     int
	Atlas4, Atlas4Resp   int
	Atlas6, Atlas6Resp   int
	Hitlist, HitlistResp int
	Union4, Union4Resp   int
	Union6, Union6Resp   int
}

// Table2 computes the router-dataset overview against the raw responsive
// IP sets (dataset tagging happens before filtering, as in the paper).
func Table2(e *Env) *Table2Result {
	resp4 := make(map[netip.Addr]bool, len(e.V4Scan1.ByIP))
	for ip := range e.V4Scan1.ByIP {
		resp4[ip] = true
	}
	for ip := range e.V4Scan2.ByIP {
		resp4[ip] = true
	}
	resp6 := make(map[netip.Addr]bool, len(e.V6Scan1.ByIP))
	for ip := range e.V6Scan1.ByIP {
		resp6[ip] = true
	}
	for ip := range e.V6Scan2.ByIP {
		resp6[ip] = true
	}
	count := func(set map[netip.Addr]bool, addrs map[netip.Addr]bool) (int, int) {
		total, hit := 0, 0
		for a := range addrs {
			total++
			if set[a] {
				hit++
			}
		}
		return total, hit
	}
	r := &Table2Result{}
	ds := e.Datasets
	r.ITDK4, r.ITDK4Resp = count(resp4, ds.ITDK4)
	r.ITDK6, r.ITDK6Resp = count(resp6, ds.ITDK6)
	r.Atlas4, r.Atlas4Resp = count(resp4, ds.Atlas4)
	r.Atlas6, r.Atlas6Resp = count(resp6, ds.Atlas6)
	r.Hitlist, r.HitlistResp = count(resp6, ds.Hitlist6)
	r.Union4, r.Union4Resp = count(resp4, e.RouterAddrs4)
	r.Union6, r.Union6Resp = count(resp6, e.RouterAddrs6)
	return r
}

// Render formats Table 2.
func (r *Table2Result) Render() string {
	f := func(total, resp int) string {
		return fmt.Sprintf("%s (%s)", report.Count(total), report.Count(resp))
	}
	rows := [][]string{
		{"Router dataset", "IPv4 addrs (SNMPv3)", "IPv6 addrs (SNMPv3)"},
		{"ITDK", f(r.ITDK4, r.ITDK4Resp), f(r.ITDK6, r.ITDK6Resp)},
		{"RIPE Atlas", f(r.Atlas4, r.Atlas4Resp), f(r.Atlas6, r.Atlas6Resp)},
		{"IPv6 Hitlist", "n/a", f(r.Hitlist, r.HitlistResp)},
		{"Union", f(r.Union4, r.Union4Resp), f(r.Union6, r.Union6Resp)},
	}
	return report.Table("Table 2: router datasets and SNMPv3 coverage", rows)
}

// Table3Result reproduces Appendix A's Table 3: alias-resolution variants.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Row is one variant's outcome.
type Table3Row struct {
	Variant string
	Stats   alias.Stats
}

// Table3 runs all eight matching variants over the validated IPv4
// observations.
func Table3(e *Env) *Table3Result {
	r := &Table3Result{}
	for _, v := range alias.Variants {
		sets := alias.Resolve(e.V4Filter.Valid, v)
		r.Rows = append(r.Rows, Table3Row{Variant: v.Name(), Stats: alias.Summarize(sets)})
	}
	return r
}

// Render formats Table 3.
func (r *Table3Result) Render() string {
	rows := [][]string{{"Variant", "Alias sets", "Non-singleton", "IPs in non-singleton", "IPs per non-singleton"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant,
			report.Count(row.Stats.Sets),
			report.Count(row.Stats.NonSingleton),
			report.Count(row.Stats.IPsNonSingleton),
			fmt.Sprintf("%.1f", row.Stats.IPsPerNonSingleton()),
		})
	}
	return report.Table("Table 3: comparison of alias resolution approaches (IPv4)", rows)
}
