package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/analysis"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/report"
)

// mergedObservations unions the two campaigns of one family keeping the
// first scan's observation per IP (the view Figures 4–7 are computed on:
// raw responses before the validity pipeline).
func mergedObservations(s1, s2 *core.Campaign) []*core.Observation {
	out := make([]*core.Observation, 0, len(s1.ByIP))
	seen := make(map[string]bool, len(s1.ByIP))
	for _, o := range s1.ByIP {
		out = append(out, o)
		seen[o.IP.String()] = true
	}
	for _, o := range s2.ByIP {
		if !seen[o.IP.String()] {
			out = append(out, o)
		}
	}
	return out
}

// Figure4Result: ECDF of the number of IPs per engine ID (Figure 4).
type Figure4Result struct {
	V4, V6 *analysis.ECDF
	// SingleIPShareV4/V6 is the fraction of engine IDs seen on exactly one
	// IP (paper: >80% for IPv4, >50% for IPv6).
	SingleIPShareV4, SingleIPShareV6 float64
}

// Figure4 computes IPs-per-engine-ID distributions from the raw campaigns.
func Figure4(e *Env) *Figure4Result {
	count := func(obs []*core.Observation) ([]float64, float64) {
		perID := map[string]int{}
		for _, o := range obs {
			if len(o.EngineID) > 0 {
				perID[string(o.EngineID)]++
			}
		}
		vals := make([]float64, 0, len(perID))
		singles := 0
		for _, n := range perID {
			vals = append(vals, float64(n))
			if n == 1 {
				singles++
			}
		}
		share := 0.0
		if len(perID) > 0 {
			share = float64(singles) / float64(len(perID))
		}
		return vals, share
	}
	v4, s4 := count(mergedObservations(e.V4Scan1, e.V4Scan2))
	v6, s6 := count(mergedObservations(e.V6Scan1, e.V6Scan2))
	return &Figure4Result{
		V4: analysis.NewECDF(v4), V6: analysis.NewECDF(v6),
		SingleIPShareV4: s4, SingleIPShareV6: s6,
	}
}

// Render formats Figure 4.
func (r *Figure4Result) Render() string {
	s := report.ECDFSeries("Figure 4: number of IPs per engine ID",
		[]string{"IPv4", "IPv6"}, []*analysis.ECDF{r.V4, r.V6}, "%.0f")
	s += fmt.Sprintf("single-IP engine IDs: IPv4 %.1f%%, IPv6 %.1f%%\n",
		r.SingleIPShareV4*100, r.SingleIPShareV6*100)
	return s
}

// Figure5Result: engine ID format distribution (Figure 5).
type Figure5Result struct {
	// Shares maps paper category -> fraction, per family.
	V4, V6 map[string]float64
}

// Figure5 classifies every distinct engine ID per family.
func Figure5(e *Env) *Figure5Result {
	classify := func(obs []*core.Observation) map[string]float64 {
		perID := map[string]string{}
		for _, o := range obs {
			if len(o.EngineID) > 0 {
				perID[string(o.EngineID)] = engineid.Classify(o.EngineID).Format.PaperCategory()
			}
		}
		counts := map[string]float64{}
		for _, cat := range perID {
			counts[cat]++
		}
		for k := range counts {
			counts[k] /= float64(len(perID))
		}
		return counts
	}
	return &Figure5Result{
		V4: classify(mergedObservations(e.V4Scan1, e.V4Scan2)),
		V6: classify(mergedObservations(e.V6Scan1, e.V6Scan2)),
	}
}

// Figure5Categories is the display order of Figure 5.
var Figure5Categories = []string{"MAC", "Octets", "Non-conforming", "Net-SNMP", "IPv4", "IPv6", "Text", "Other"}

// Render formats Figure 5.
func (r *Figure5Result) Render() string {
	rows := [][]string{{"Format", "IPv4 share", "IPv6 share"}}
	for _, cat := range Figure5Categories {
		rows = append(rows, []string{cat,
			fmt.Sprintf("%5.1f%%", r.V4[cat]*100),
			fmt.Sprintf("%5.1f%%", r.V6[cat]*100)})
	}
	return report.Table("Figure 5: engine ID format distribution", rows)
}

// Figure6Result: relative Hamming weight of Octets vs non-conforming
// engine IDs (Figure 6).
type Figure6Result struct {
	// OctetsHist and NonConformingHist are 20-bin histograms over [0,1].
	OctetsHist, NonConformingHist []float64
	OctetsMean, NonConformingMean float64
	NonConformingSkew             float64
	OctetsN, NonConformingN       int
}

// Figure6 computes the Hamming-weight distributions over distinct IPv4
// engine IDs.
func Figure6(e *Env) *Figure6Result {
	var octets, noncon []float64
	seen := map[string]bool{}
	for _, o := range mergedObservations(e.V4Scan1, e.V4Scan2) {
		key := string(o.EngineID)
		if len(o.EngineID) == 0 || seen[key] {
			continue
		}
		seen[key] = true
		p := engineid.Classify(o.EngineID)
		switch p.Format {
		case engineid.FormatOctets:
			octets = append(octets, engineid.RelativeHammingWeight(p.Data))
		case engineid.FormatNonConforming:
			noncon = append(noncon, engineid.RelativeHammingWeight(p.Raw))
		}
	}
	return &Figure6Result{
		OctetsHist:        analysis.Histogram(octets, 0, 1, 20),
		NonConformingHist: analysis.Histogram(noncon, 0, 1, 20),
		OctetsMean:        analysis.Mean(octets),
		NonConformingMean: analysis.Mean(noncon),
		NonConformingSkew: analysis.Skewness(noncon),
		OctetsN:           len(octets),
		NonConformingN:    len(noncon),
	}
}

// Render formats Figure 6.
func (r *Figure6Result) Render() string {
	rows := [][]string{{"Rel. Hamming weight", "Octets", "Non-conforming"}}
	for i := range r.OctetsHist {
		lo := float64(i) / 20
		rows = append(rows, []string{
			fmt.Sprintf("%.2f-%.2f", lo, lo+0.05),
			fmt.Sprintf("%5.1f%%", r.OctetsHist[i]*100),
			fmt.Sprintf("%5.1f%%", r.NonConformingHist[i]*100),
		})
	}
	s := report.Table("Figure 6: relative Hamming weight of engine IDs", rows)
	s += fmt.Sprintf("means: octets %.3f (n=%d), non-conforming %.3f (n=%d, skew %+.2f)\n",
		r.OctetsMean, r.OctetsN, r.NonConformingMean, r.NonConformingN, r.NonConformingSkew)
	return s
}

// Figure7Result: last-reboot distribution of the top-3 engine IDs per
// family (Figure 7) — the evidence that popular engine IDs are shared by
// unrelated devices.
type Figure7Result struct {
	// Top engine IDs (hex) and the reboot-time spread of each.
	V4 []Figure7Entry
	V6 []Figure7Entry
}

// Figure7Entry is one popular engine ID.
type Figure7Entry struct {
	EngineID string
	IPs      int
	// SpreadDays is the span between the 5th and 95th percentile of last
	// reboot times: near zero for a true single device.
	SpreadDays float64
	Reboots    *analysis.ECDF
}

func topEngineIDs(obs []*core.Observation, k int) []Figure7Entry {
	byID := map[string][]*core.Observation{}
	for _, o := range obs {
		if len(o.EngineID) > 0 {
			byID[string(o.EngineID)] = append(byID[string(o.EngineID)], o)
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(byID[ids[i]]) != len(byID[ids[j]]) {
			return len(byID[ids[i]]) > len(byID[ids[j]])
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	out := make([]Figure7Entry, 0, k)
	for _, id := range ids {
		group := byID[id]
		vals := make([]float64, 0, len(group))
		for _, o := range group {
			vals = append(vals, float64(o.LastReboot().Unix()))
		}
		ecdf := analysis.NewECDF(vals)
		spread := (ecdf.Quantile(0.95) - ecdf.Quantile(0.05)) / 86400
		out = append(out, Figure7Entry{
			EngineID:   fmt.Sprintf("0x%x", []byte(id)),
			IPs:        len(group),
			SpreadDays: spread,
			Reboots:    ecdf,
		})
	}
	return out
}

// Figure7 finds the top-3 engine IDs per family.
func Figure7(e *Env) *Figure7Result {
	return &Figure7Result{
		V4: topEngineIDs(mergedObservations(e.V4Scan1, e.V4Scan2), 3),
		V6: topEngineIDs(mergedObservations(e.V6Scan1, e.V6Scan2), 3),
	}
}

// Render formats Figure 7.
func (r *Figure7Result) Render() string {
	rows := [][]string{{"Family", "Engine ID", "IPs", "reboot spread (days, p5-p95)"}}
	add := func(fam string, entries []Figure7Entry) {
		for i, en := range entries {
			rows = append(rows, []string{
				fmt.Sprintf("%s #%d", fam, i+1),
				truncate(en.EngineID, 30),
				report.Count(en.IPs),
				fmt.Sprintf("%.1f", en.SpreadDays),
			})
		}
	}
	add("IPv4", r.V4)
	add("IPv6", r.V6)
	return report.Table("Figure 7: last reboot spread of the top-3 engine IDs", rows)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Figure8Result: last-reboot difference between the two campaigns
// (Figure 8), for all IPs and for router IPs.
type Figure8Result struct {
	V4All, V4Router *analysis.ECDF
	V6All, V6Router *analysis.ECDF
	// WithinThresholdRouter4 is the share of IPv4 router IPs within the
	// 10 s threshold (the knee the paper picks).
	WithinThresholdRouter4 float64
}

// Figure8 computes reboot deltas over the merged pre-threshold data: every
// IP answering consistently in both campaigns with matching boots, before
// the final 10 s filter is applied.
func Figure8(e *Env) *Figure8Result {
	var all4, rtr4, all6, rtr6 []float64
	walk := func(s1, s2 *core.Campaign, isRouter map[netip.Addr]bool, all, rtr *[]float64) {
		for ip, o1 := range s1.ByIP {
			o2, ok := s2.ByIP[ip]
			if !ok || len(o1.EngineID) == 0 || string(o1.EngineID) != string(o2.EngineID) {
				continue
			}
			if o1.EngineTime == 0 || o2.EngineTime == 0 || o1.EngineBoots != o2.EngineBoots {
				continue
			}
			d := o1.LastReboot().Sub(o2.LastReboot())
			if d < 0 {
				d = -d
			}
			sec := d.Seconds()
			if sec > 120 {
				sec = 120 // the paper's x-axis tops at 120 s
			}
			*all = append(*all, sec)
			if isRouter[ip] {
				*rtr = append(*rtr, sec)
			}
		}
	}
	walk(e.V4Scan1, e.V4Scan2, e.RouterAddrs4, &all4, &rtr4)
	walk(e.V6Scan1, e.V6Scan2, e.RouterAddrs6, &all6, &rtr6)

	res := &Figure8Result{
		V4All:    analysis.NewECDF(all4),
		V4Router: analysis.NewECDF(rtr4),
		V6All:    analysis.NewECDF(all6),
		V6Router: analysis.NewECDF(rtr6),
	}
	res.WithinThresholdRouter4 = res.V4Router.At(filter.RebootThreshold.Seconds())
	return res
}

// Render formats Figure 8.
func (r *Figure8Result) Render() string {
	s := report.ECDFSeries("Figure 8: |Δ last reboot| between scans [s]",
		[]string{"IPv4 all", "IPv4 routers", "IPv6 all", "IPv6 routers"},
		[]*analysis.ECDF{r.V4All, r.V4Router, r.V6All, r.V6Router}, "%.1f")
	s += fmt.Sprintf("IPv4 router IPs within %v threshold: %.1f%%\n",
		filter.RebootThreshold, r.WithinThresholdRouter4*100)
	return s
}

// Figure13Result: time since last reboot for routers (Figure 13).
type Figure13Result struct {
	Reboots *analysis.ECDF
	// Shares match the paper's prose: rebooted within 30 days, within the
	// measurement year, more than a year ago.
	WithinMonth, WithinYearOfScan, OverOneYear float64
}

// Figure13 computes router uptime from the validated router alias sets.
func Figure13(e *Env) *Figure13Result {
	scanTime := e.World.Cfg.StartTime.Add(15 * 24 * time.Hour)
	var ages []float64
	for _, s := range e.RouterSets {
		m := s.Members[0]
		age := scanTime.Sub(m.LastReboot[0])
		ages = append(ages, age.Hours()/24)
	}
	ecdf := analysis.NewECDF(ages)
	yearStart := scanTime.Sub(time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)).Hours() / 24
	return &Figure13Result{
		Reboots:          ecdf,
		WithinMonth:      ecdf.At(30),
		WithinYearOfScan: ecdf.At(yearStart),
		OverOneYear:      1 - ecdf.At(365),
	}
}

// Render formats Figure 13.
func (r *Figure13Result) Render() string {
	s := report.ECDFSeries("Figure 13: days since last reboot (routers)",
		[]string{"days"}, []*analysis.ECDF{r.Reboots}, "%.0f")
	s += fmt.Sprintf("rebooted <=30d: %.0f%%; within measurement year: %.0f%%; >1y ago: %.0f%%\n",
		r.WithinMonth*100, r.WithinYearOfScan*100, r.OverOneYear*100)
	return s
}
