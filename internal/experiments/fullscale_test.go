package experiments

import (
	"testing"

	"snmpv3fp/internal/netsim"
)

// TestFullScaleShapes validates the headline paper shapes at the default
// (publication) scale — the configuration cmd/reproduce and the benchmarks
// use. Tiny-scale tests can miss full-scale calibration regressions, so
// this runs the complete pipeline once (guarded by -short).
func TestFullScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale pipeline (~30s); skipped in -short mode")
	}
	e, err := Shared(1)
	if err != nil {
		t.Fatal(err)
	}

	// Table 1 funnel: the two-scan overlap keeps most responders; the
	// timeliness filters cut roughly half.
	t1 := Table1(e)
	if t1.IPs[0] < 100_000 {
		t.Errorf("IPv4 scan 1 found only %d IPs", t1.IPs[0])
	}
	ratio := float64(t1.ValidEngineIDTime[0]) / float64(t1.IPs[0])
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("valid/responsive ratio = %.2f, want ~0.5", ratio)
	}

	// Figure 7: the Cisco bug engine ID tops the IPv4 list with a
	// multi-year reboot spread.
	f7 := Figure7(e)
	bugID := "0x800000090300000000000000"
	if f7.V4[0].EngineID != bugID {
		t.Errorf("top IPv4 engine ID = %s, want the CSCts87275 constant", f7.V4[0].EngineID)
	}
	if f7.V4[0].SpreadDays < 365 {
		t.Errorf("bug population reboot spread = %.0f days", f7.V4[0].SpreadDays)
	}

	// Figure 12: the exact top-4 vendor set, in order.
	f12 := Figure12(e)
	want := []string{"Cisco", "Huawei", "Juniper", "H3C"}
	for i, v := range want {
		if f12.Top[i].Vendor != v {
			t.Errorf("router vendor #%d = %s, want %s", i+1, f12.Top[i].Vendor, v)
		}
	}
	if f12.Top4Share < 0.90 {
		t.Errorf("top-4 share = %.2f", f12.Top4Share)
	}
	if !(f12.LeaderShareCI[0] < 0.69 && f12.LeaderShareCI[1] > 0.60) {
		t.Errorf("leader CI = %v", f12.LeaderShareCI)
	}

	// Figure 15: Huawei absent from North America, strong in Asia.
	f15 := Figure15(e)
	for _, row := range f15.Rows {
		if row.Region == netsim.RegionNA && row.Share["Huawei"] > 1 {
			t.Errorf("NA Huawei share = %.1f%%", row.Share["Huawei"])
		}
		if row.Region == netsim.RegionAS && row.Share["Huawei"] < 15 {
			t.Errorf("AS Huawei share = %.1f%%", row.Share["Huawei"])
		}
	}

	// Section 5.4: combined > SNMPv3-only > MIDAR-only, as measured.
	s54 := Section54(e)
	if !(s54.Union > s54.SNMPOnly && s54.SNMPOnly > s54.MIDAROnly) {
		t.Errorf("coverage ordering broken: %.3f / %.3f / %.3f",
			s54.MIDAROnly, s54.SNMPOnly, s54.Union)
	}

	// Figure 9: alias resolution stays near-perfect at scale.
	f9 := Figure9(e)
	if f9.Precision < 0.999 {
		t.Errorf("precision = %.4f", f9.Precision)
	}
	if f9.Recall < 0.9 {
		t.Errorf("recall = %.4f", f9.Recall)
	}
}

// TestMultiSeedShapes guards the shape assertions against seed overfitting:
// the central claims must hold for worlds the tests were not tuned on.
func TestMultiSeedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep; skipped in -short mode")
	}
	for _, seed := range []int64{2, 3} {
		e, err := SharedTiny(seed)
		if err != nil {
			t.Fatal(err)
		}
		f12 := Figure12(e)
		if f12.Top[0].Vendor != "Cisco" {
			t.Errorf("seed %d: top router vendor = %s", seed, f12.Top[0].Vendor)
		}
		if f12.Top4Share < 0.75 {
			t.Errorf("seed %d: top-4 share = %.2f", seed, f12.Top4Share)
		}
		f9 := Figure9(e)
		if f9.Precision < 0.99 {
			t.Errorf("seed %d: precision = %.4f", seed, f9.Precision)
		}
		f19 := Figure19(e)
		if f19.UniqueShareV4 < 0.9 {
			t.Errorf("seed %d: tuple uniqueness = %.3f", seed, f19.UniqueShareV4)
		}
		s54 := Section54(e)
		if s54.Union <= s54.MIDAROnly {
			t.Errorf("seed %d: combined coverage not above MIDAR", seed)
		}
	}
}
