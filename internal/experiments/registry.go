package experiments

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short handle used by cmd/reproduce (-only flag) and the
	// bench harness.
	ID string
	// Title names the paper artifact.
	Title string
	// Run renders the artifact against the shared environment.
	Run func(e *Env) (string, error)
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"fig2-3", "Figures 2-3: discovery request/response dissection", func(e *Env) (string, error) {
		r, err := Figures23(e)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table1", "Table 1: scan campaign overview", wrap(func(e *Env) renderer { return Table1(e) })},
	{"table2", "Table 2: router datasets", wrap(func(e *Env) renderer { return Table2(e) })},
	{"fig4", "Figure 4: IPs per engine ID", wrap(func(e *Env) renderer { return Figure4(e) })},
	{"fig5", "Figure 5: engine ID formats", wrap(func(e *Env) renderer { return Figure5(e) })},
	{"fig6", "Figure 6: Hamming weight", wrap(func(e *Env) renderer { return Figure6(e) })},
	{"fig7", "Figure 7: top-3 engine IDs", wrap(func(e *Env) renderer { return Figure7(e) })},
	{"fig8", "Figure 8: reboot delta between scans", wrap(func(e *Env) renderer { return Figure8(e) })},
	{"fig9", "Figure 9: alias set sizes (Section 5.1)", wrap(func(e *Env) renderer { return Figure9(e) })},
	{"sec52", "Section 5.2: Router Names comparison", wrap(func(e *Env) renderer { return Section52(e) })},
	{"sec53", "Section 5.3: MIDAR / Speedtrap comparison", wrap(func(e *Env) renderer { return Section53(e) })},
	{"fig10", "Figure 10: SNMPv3 coverage per AS", wrap(func(e *Env) renderer { return Figure10(e) })},
	{"sec54", "Section 5.4: combined coverage", wrap(func(e *Env) renderer { return Section54(e) })},
	{"fig11", "Figure 11: vendor popularity", wrap(func(e *Env) renderer { return Figure11(e) })},
	{"fig12", "Figure 12: router vendor popularity", wrap(func(e *Env) renderer { return Figure12(e) })},
	{"sec621", "Section 6.2.1: lab validation", func(e *Env) (string, error) {
		r, err := Section621()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"sec622", "Section 6.2.2: operator survey", wrap(func(e *Env) renderer { return Section622(e) })},
	{"sec623", "Section 6.2.3: Nmap comparison", wrap(func(e *Env) renderer { return Section623(e) })},
	{"fig13", "Figure 13: time since last reboot", wrap(func(e *Env) renderer { return Figure13(e) })},
	{"fig14", "Figure 14: vendors per AS", wrap(func(e *Env) renderer { return Figure14(e) })},
	{"fig15", "Figure 15: regional vendor popularity", wrap(func(e *Env) renderer { return Figure15(e) })},
	{"fig16", "Figure 16: top-10 network vendor popularity", wrap(func(e *Env) renderer { return Figure16(e) })},
	{"fig17", "Figure 17: vendor dominance", wrap(func(e *Env) renderer { return Figure17(e) })},
	{"fig18", "Figure 18: regional vendor dominance", wrap(func(e *Env) renderer { return Figure18(e) })},
	{"sec73", "Section 7.3: sibling detection comparison", wrap(func(e *Env) renderer { return Section73(e) })},
	{"sec8", "Section 8: vulnerabilities (amplification, brute force)", func(e *Env) (string, error) {
		r, err := Section8(e)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table3", "Table 3 (Appendix A): alias resolution variants", wrap(func(e *Env) renderer { return Table3(e) })},
	{"fig19", "Figure 19 (Appendix B): tuple uniqueness", wrap(func(e *Env) renderer { return Figure19(e) })},
	{"fig20", "Figure 20 (Appendix C): routers per AS per region", wrap(func(e *Env) renderer { return Figure20(e) })},
	{"nat", "Extension: NAT / load-balancer inference (Section 9)", wrap(func(e *Env) renderer { return Section9(e) })},
	{"monitor", "Extension: longitudinal reboot monitoring (Section 6.3)", func(e *Env) (string, error) {
		r, err := Monitor(e)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"hostile", "Extension: hostile network vs the Section 4.4 filter", func(e *Env) (string, error) {
		r, err := Hostile(e)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
}

type renderer interface{ Render() string }

func wrap(f func(e *Env) renderer) func(e *Env) (string, error) {
	return func(e *Env) (string, error) {
		return f(e).Render(), nil
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, ex := range All {
		if ex.ID == id {
			return ex, true
		}
	}
	return Experiment{}, false
}
