package experiments

import (
	"fmt"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/report"
	"snmpv3fp/internal/tracker"
)

// MonitorResult implements the longitudinal follow-up the paper's
// Section 6.3 announces: repeated campaigns tracking last-reboot times and
// engine-boots counters to observe restarts, outages, and identifier
// churn over time. This is an extension beyond the paper's published
// tables (clearly marked as such in EXPERIMENTS.md).
type MonitorResult struct {
	Campaigns int
	Summary   tracker.Summary
	// RebootRatePerWeek is restart events per tracked IP per week over the
	// monitoring window.
	RebootRatePerWeek float64
	// WindowDays is the monitoring window length.
	WindowDays float64
}

// Monitor extends the shared measurement with two additional IPv4
// campaigns two weeks apart and tracks every IP across all four.
func Monitor(e *Env) (*MonitorResult, error) {
	w := e.World
	day := 24 * time.Hour
	prefixes := w.ScanPrefixes4()

	opts := Options{}
	opts.fill()
	extra := make([]*core.Campaign, 0, 2)
	for i, at := range []time.Duration{35 * day, 49 * day} {
		w.Clock.Set(w.Cfg.StartTime.Add(at))
		c, err := runPrefixes(w, prefixes, v4Rate, w.Cfg.Seed+200+int64(i), opts)
		if err != nil {
			return nil, err
		}
		extra = append(extra, c)
	}
	campaigns := []*core.Campaign{e.V4Scan1, e.V4Scan2, extra[0], extra[1]}
	timelines := tracker.Build(campaigns)
	sum := tracker.Summarize(timelines)

	window := 49.0 - 15.0 // days between first and last campaign
	r := &MonitorResult{
		Campaigns:  len(campaigns),
		Summary:    sum,
		WindowDays: window,
	}
	if sum.Tracked > 0 {
		r.RebootRatePerWeek = float64(sum.RebootEvents) / float64(sum.Tracked) / (window / 7)
	}
	return r, nil
}

// Render formats the monitoring summary.
func (r *MonitorResult) Render() string {
	rows := [][]string{
		{"Quantity", "Value"},
		{"campaigns", fmt.Sprintf("%d over %.0f days", r.Campaigns, r.WindowDays)},
		{"IPs tracked (2+ responsive samples)", report.Count(r.Summary.Tracked)},
		{"IPs with detected restart", report.Count(r.Summary.RebootedIPs)},
		{"restart events", report.Count(r.Summary.RebootEvents)},
		{"identifier changes (address churn)", report.Count(r.Summary.IdentityChanges)},
		{"availability gaps", report.Count(r.Summary.Gaps)},
		{"mean availability", fmt.Sprintf("%.1f%%", r.Summary.MeanAvailability*100)},
		{"restart rate", fmt.Sprintf("%.4f per IP-week", r.RebootRatePerWeek)},
	}
	return report.Table("Extension (Section 6.3): longitudinal reboot monitoring", rows)
}
