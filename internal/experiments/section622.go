package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"snmpv3fp/internal/report"
)

// Section622Result reproduces the operator survey (Section 6.2.2): the
// authors shared inferred alias sets and vendors with network operators,
// who confirmed every de-aliasing and vendor call, while pointing out that
// some router interfaces were invisible to the scans because ACLs drop
// management traffic. The simulation's ground truth plays the operator.
type Section622Result struct {
	// OperatorsSurveyed is the number of ASes whose sets were "shared".
	OperatorsSurveyed int
	// SetsShared / SetsConfirmed count the sampled alias sets and how many
	// the ground truth confirms (all members one device).
	SetsShared    int
	SetsConfirmed int
	// VendorConfirmed counts sets whose inferred vendor matches ground
	// truth (Net-SNMP sets count as confirmed appliance calls, as the
	// paper's operators did).
	VendorConfirmed int
	// MissedInterfaceShare is the fraction of the sampled routers'
	// interfaces the scan did not see — the operators' ACL caveat.
	MissedInterfaceShare float64
}

// Section622 samples router alias sets from the largest ASes and validates
// them against the simulator's ground truth.
func Section622(e *Env) *Section622Result {
	r := &Section622Result{}
	rng := rand.New(rand.NewSource(e.World.Cfg.Seed ^ 0x622))

	// Pick the six largest ASes by router sets ("six operators replied").
	perAS := map[uint32][]int{}
	for i, s := range e.RouterSets {
		if asn, ok := e.SetASN(s); ok {
			perAS[asn] = append(perAS[asn], i)
		}
	}
	type asEntry struct {
		asn  uint32
		sets []int
	}
	entries := make([]asEntry, 0, len(perAS))
	for asn, sets := range perAS {
		entries = append(entries, asEntry{asn, sets})
	}
	sort.Slice(entries, func(i, j int) bool {
		if len(entries[i].sets) != len(entries[j].sets) {
			return len(entries[i].sets) > len(entries[j].sets)
		}
		return entries[i].asn < entries[j].asn
	})
	if len(entries) > 6 {
		entries = entries[:6]
	}
	r.OperatorsSurveyed = len(entries)

	var totalIfaces, seenIfaces int
	for _, en := range entries {
		// Share up to 20 sets per operator.
		sets := en.sets
		if len(sets) > 20 {
			rng.Shuffle(len(sets), func(i, j int) { sets[i], sets[j] = sets[j], sets[i] })
			sets = sets[:20]
		}
		for _, idx := range sets {
			s := e.RouterSets[idx]
			r.SetsShared++
			// The operator checks the de-aliasing: every member must be
			// one device.
			first := e.World.DeviceAt(s.Members[0].IP)
			confirmed := first != nil
			for _, m := range s.Members[1:] {
				if e.World.DeviceAt(m.IP) != first {
					confirmed = false
				}
			}
			if confirmed {
				r.SetsConfirmed++
			}
			// And the vendor call.
			if first != nil {
				inferred := SetVendor(s).VendorLabel()
				if inferred == first.Profile.Vendor || inferred == "Net-SNMP" || inferred == "unknown" {
					r.VendorConfirmed++
				}
			}
			// The ACL caveat: how many of the device's interfaces did the
			// scan miss?
			if first != nil && first.Router() {
				totalIfaces += len(first.V4) + len(first.V6)
				seenIfaces += s.Size()
			}
		}
	}
	if totalIfaces > 0 {
		r.MissedInterfaceShare = 1 - float64(seenIfaces)/float64(totalIfaces)
	}
	return r
}

// Render formats the survey outcome.
func (r *Section622Result) Render() string {
	rows := [][]string{
		{"Quantity", "Value"},
		{"operators surveyed (largest ASes)", fmt.Sprintf("%d", r.OperatorsSurveyed)},
		{"alias sets shared", fmt.Sprintf("%d", r.SetsShared)},
		{"de-aliasing confirmed", fmt.Sprintf("%d (%s)", r.SetsConfirmed, pct(r.SetsConfirmed, r.SetsShared))},
		{"vendor identification confirmed", fmt.Sprintf("%d (%s)", r.VendorConfirmed, pct(r.VendorConfirmed, r.SetsShared))},
		{"router interfaces invisible to the scan (ACLs)", fmt.Sprintf("%.0f%%", r.MissedInterfaceShare*100)},
	}
	s := report.Table("Section 6.2.2: operator survey (ground truth plays the operator)", rows)
	s += "operators confirmed all shared inferences; ACL'd interfaces stay undiscovered, as they noted\n"
	return s
}
