package experiments

import (
	"fmt"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/baseline/siblings"
	"snmpv3fp/internal/report"
)

// Section73Result compares the prior dual-stack technique — TCP timestamp
// clock-skew sibling detection (Scheitle et al., discussed in the paper's
// Section 7.3) — with SNMPv3 dual-stack alias resolution on the same
// population. The prior technique needs open TCP services on both
// families; routers rarely offer them, which is exactly the gap SNMPv3
// closes.
type Section73Result struct {
	// DualStackSNMP counts SNMPv3-confirmed dual-stack alias sets, split
	// by router/non-router.
	DualStackSNMP        int
	DualStackSNMPRouters int
	// Candidates are (v4, v6) pairs drawn from the SNMPv3 dual-stack sets
	// (in practice these would come from DNS).
	Skew siblings.Result
	// RouterNoDataShare is the fraction of router candidate pairs the
	// skew technique cannot measure at all.
	RouterNoDataShare float64
}

// Section73 runs the comparison over the shared environment.
func Section73(e *Env) *Section73Result {
	r := &Section73Result{}
	at := e.World.Cfg.StartTime.Add(28 * 24 * time.Hour)

	routerSet := map[*alias.Set]bool{}
	for _, s := range e.RouterSets {
		routerSet[s] = true
	}

	var candidates []siblings.Candidate
	var routerCandidates []siblings.Candidate
	for _, s := range e.CombinedSets {
		if s.Family() != alias.DualStack {
			continue
		}
		r.DualStackSNMP++
		if routerSet[s] {
			r.DualStackSNMPRouters++
		}
		var c siblings.Candidate
		for _, m := range s.Members {
			if m.IP.Is4() && !c.V4.IsValid() {
				c.V4 = m.IP
			}
			if m.IP.Is6() && !c.V6.IsValid() {
				c.V6 = m.IP
			}
		}
		if c.V4.IsValid() && c.V6.IsValid() {
			candidates = append(candidates, c)
			if routerSet[s] {
				routerCandidates = append(routerCandidates, c)
			}
		}
	}
	r.Skew = siblings.Run(e.World, candidates, at)
	routerRes := siblings.Run(e.World, routerCandidates, at)
	if routerRes.Candidates > 0 {
		r.RouterNoDataShare = float64(routerRes.NoData) / float64(routerRes.Candidates)
	}
	return r
}

// Render formats the Section 7.3 comparison.
func (r *Section73Result) Render() string {
	rows := [][]string{
		{"Quantity", "Value"},
		{"SNMPv3 dual-stack alias sets", report.Count(r.DualStackSNMP)},
		{"  of which routers", report.Count(r.DualStackSNMPRouters)},
		{"candidate pairs offered to skew technique", report.Count(r.Skew.Candidates)},
		{"  confirmed siblings (skew match)", report.Count(r.Skew.Siblings)},
		{"  unmeasurable (no TCP timestamps)", report.Count(r.Skew.NoData)},
		{"  router pairs unmeasurable", fmt.Sprintf("%.1f%%", r.RouterNoDataShare*100)},
	}
	s := report.Table("Section 7.3: TCP-timestamp sibling detection vs SNMPv3 dual-stack", rows)
	s += "the skew technique confirms only TCP-reachable pairs; SNMPv3 resolves the rest with one UDP packet\n"
	return s
}
