package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/netsim"
	"snmpv3fp/internal/report"
)

// HostileResult is the hostile-network scenario: the same world scanned
// twice, once over a clean path and once through the netsim fault layer's
// additive hostile profile (duplication, truncation, corruption, off-path
// spoofing, delay jitter). The additive profile never suppresses a
// legitimate response, so the responder sets and the Section 4.4 filter
// output must match the clean run exactly while the hostile-path counters
// account for every injected datagram — the end-to-end claim behind the
// paper's filtering pipeline.
type HostileResult struct {
	// CleanScan1/2 and HostileScan1/2 are the two IPv4 campaigns (days 15
	// and 21) of each run.
	CleanScan1, CleanScan2     *core.Campaign
	HostileScan1, HostileScan2 *core.Campaign
	// CleanFilter and HostileFilter are the Section 4.4 reports.
	CleanFilter, HostileFilter *filter.Report
	// Faults1/2 tally what the fault layer injected during each hostile
	// campaign.
	Faults1, Faults2 netsim.FaultTally
}

// Hostile runs the scenario over a fresh pair of identically seeded worlds
// so both runs start from the same epoch state.
func Hostile(e *Env) (*HostileResult, error) {
	opts := Options{}
	opts.fill()
	day := 24 * time.Hour

	run := func(f *netsim.FaultProfile) (c1, c2 *core.Campaign, t1, t2 netsim.FaultTally, err error) {
		w := netsim.Generate(e.World.Cfg)
		w.Cfg.Faults = f
		prefixes := w.ScanPrefixes4()
		w.Clock.Set(w.Cfg.StartTime.Add(15 * day))
		if c1, err = runPrefixes(w, prefixes, v4Rate, w.Cfg.Seed+103, opts); err != nil {
			return
		}
		t1 = w.FaultStats()
		w.Clock.Set(w.Cfg.StartTime.Add(21 * day))
		if c2, err = runPrefixes(w, prefixes, v4Rate, w.Cfg.Seed+104, opts); err != nil {
			return
		}
		t2 = w.FaultStats()
		return
	}

	r := &HostileResult{}
	var err error
	if r.CleanScan1, r.CleanScan2, _, _, err = run(nil); err != nil {
		return nil, err
	}
	if r.HostileScan1, r.HostileScan2, r.Faults1, r.Faults2, err = run(netsim.HostileProfile()); err != nil {
		return nil, err
	}
	r.CleanFilter = filter.Run(r.CleanScan1, r.CleanScan2)
	r.HostileFilter = filter.Run(r.HostileScan1, r.HostileScan2)
	return r, nil
}

// SameResponders reports whether both campaigns of the hostile run saw
// exactly the clean run's responder sets.
func (r *HostileResult) SameResponders() bool {
	return sameIPSet(r.CleanScan1.ByIP, r.HostileScan1.ByIP) &&
		sameIPSet(r.CleanScan2.ByIP, r.HostileScan2.ByIP)
}

func sameIPSet(a, b map[netip.Addr]*core.Observation) bool {
	if len(a) != len(b) {
		return false
	}
	for ip := range a {
		if _, ok := b[ip]; !ok {
			return false
		}
	}
	return true
}

// Render formats the clean/hostile comparison.
func (r *HostileResult) Render() string {
	both := func(c, h int) string { return fmt.Sprintf("%s / %s", report.Count(c), report.Count(h)) }
	injected := func(t netsim.FaultTally) string {
		return fmt.Sprintf("dup %d, trunc %d, corrupt %d, off-path %d",
			t.Duplicated, t.Truncated, t.Corrupted, t.OffPath)
	}
	rows := [][]string{
		{"Quantity (clean / hostile)", "Scan 1", "Scan 2"},
		{"responsive IPs", both(len(r.CleanScan1.ByIP), len(r.HostileScan1.ByIP)),
			both(len(r.CleanScan2.ByIP), len(r.HostileScan2.ByIP))},
		{"response packets", both(r.CleanScan1.TotalPackets, r.HostileScan1.TotalPackets),
			both(r.CleanScan2.TotalPackets, r.HostileScan2.TotalPackets)},
		{"malformed", both(r.CleanScan1.Malformed, r.HostileScan1.Malformed),
			both(r.CleanScan2.Malformed, r.HostileScan2.Malformed)},
		{"  of which truncated", both(r.CleanScan1.Truncated, r.HostileScan1.Truncated),
			both(r.CleanScan2.Truncated, r.HostileScan2.Truncated)},
		{"msgID mismatches", both(r.CleanScan1.Mismatched, r.HostileScan1.Mismatched),
			both(r.CleanScan2.Mismatched, r.HostileScan2.Mismatched)},
		{"off-path rejected", both(r.CleanScan1.OffPath, r.HostileScan1.OffPath),
			both(r.CleanScan2.OffPath, r.HostileScan2.OffPath)},
		{"duplicate datagrams", both(r.CleanScan1.Duplicates, r.HostileScan1.Duplicates),
			both(r.CleanScan2.Duplicates, r.HostileScan2.Duplicates)},
		{"injected faults", injected(r.Faults1), injected(r.Faults2)},
		{"filter: overlap", both(r.CleanFilter.Overlap, r.HostileFilter.Overlap), ""},
		{"filter: valid engine ID", both(r.CleanFilter.ValidEngineID, r.HostileFilter.ValidEngineID), ""},
		{"filter: final valid", both(len(r.CleanFilter.Valid), len(r.HostileFilter.Valid)), ""},
		{"responder sets identical", fmt.Sprintf("%v", r.SameResponders()), ""},
	}
	return report.Table("Hostile network: additive path faults vs the Section 4.4 filter", rows)
}
