package experiments

import (
	"strings"
	"testing"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/netsim"
)

// TestHostileEndToEnd is the end-to-end acceptance check for the fault
// layer: every datagram the hostile path injects is accounted for by the
// new campaign counters, and the additive profile leaves the responder sets
// and the Section 4.4 filter output exactly as in the clean run.
func TestHostileEndToEnd(t *testing.T) {
	e := env(t)
	r, err := Hostile(e)
	if err != nil {
		t.Fatal(err)
	}

	// The fault layer must actually have fired in every additive category.
	for i, f := range []netsim.FaultTally{r.Faults1, r.Faults2} {
		if f.Duplicated == 0 || f.Truncated == 0 || f.Corrupted == 0 || f.OffPath == 0 {
			t.Fatalf("campaign %d injected too little: %+v", i+1, f)
		}
		if f.Lost != 0 || f.RateLimited != 0 || f.Mismatched != 0 {
			t.Fatalf("campaign %d: additive profile ran destructive faults: %+v", i+1, f)
		}
	}

	// Datagram-level accounting, exact: every injected duplicate, truncated
	// and corrupted copy lands in TotalPackets; every spoofed datagram is
	// rejected by the engine and lands in OffPath; nothing else changes.
	check := func(name string, clean, hostile *core.Campaign, f netsim.FaultTally) {
		t.Helper()
		injected := int(f.Duplicated + f.Truncated + f.Corrupted)
		if hostile.TotalPackets != clean.TotalPackets+injected {
			t.Errorf("%s: total packets %d, want clean %d + injected %d",
				name, hostile.TotalPackets, clean.TotalPackets, injected)
		}
		if hostile.OffPath != int(f.OffPath) {
			t.Errorf("%s: off-path %d, want %d (every spoof rejected)", name, hostile.OffPath, f.OffPath)
		}
		if clean.OffPath != 0 {
			t.Errorf("%s: clean campaign rejected %d off-path datagrams", name, clean.OffPath)
		}
		// Junk copies interleave with originals and per-source floods stop
		// being parsed past the cap, so the parse-level counters are
		// bounded, not equal, by the injection tallies.
		if hostile.Malformed <= clean.Malformed {
			t.Errorf("%s: malformed %d did not grow from clean %d", name, hostile.Malformed, clean.Malformed)
		}
		if hostile.Malformed > clean.Malformed+int(f.Truncated+f.Corrupted) {
			t.Errorf("%s: malformed %d exceeds clean %d + injected junk %d",
				name, hostile.Malformed, clean.Malformed, f.Truncated+f.Corrupted)
		}
		if hostile.Truncated <= clean.Truncated || hostile.Truncated > int(f.Truncated) {
			t.Errorf("%s: truncated %d (clean %d, injected %d)",
				name, hostile.Truncated, clean.Truncated, f.Truncated)
		}
		if hostile.Duplicates <= clean.Duplicates {
			t.Errorf("%s: duplicates %d did not grow from clean %d", name, hostile.Duplicates, clean.Duplicates)
		}
	}
	check("scan1", r.CleanScan1, r.HostileScan1, r.Faults1)
	check("scan2", r.CleanScan2, r.HostileScan2, r.Faults2)

	// The additive profile delivers every legitimate response, so the
	// hostile campaigns see exactly the clean responder sets...
	if !r.SameResponders() {
		t.Fatalf("responder sets differ: clean %d/%d, hostile %d/%d IPs",
			len(r.CleanScan1.ByIP), len(r.CleanScan2.ByIP),
			len(r.HostileScan1.ByIP), len(r.HostileScan2.ByIP))
	}
	// ...and the filter reproduces the clean-run numbers to the digit.
	cf, hf := r.CleanFilter, r.HostileFilter
	if cf.Scan1IPs != hf.Scan1IPs || cf.Scan2IPs != hf.Scan2IPs {
		t.Errorf("raw IP counts differ: clean %d/%d, hostile %d/%d",
			cf.Scan1IPs, cf.Scan2IPs, hf.Scan1IPs, hf.Scan2IPs)
	}
	if cf.Overlap != hf.Overlap {
		t.Errorf("overlap differs: clean %d, hostile %d", cf.Overlap, hf.Overlap)
	}
	if cf.ValidEngineID != hf.ValidEngineID {
		t.Errorf("valid engine IDs differ: clean %d, hostile %d", cf.ValidEngineID, hf.ValidEngineID)
	}
	if len(cf.Valid) != len(hf.Valid) {
		t.Fatalf("final valid sets differ: clean %d, hostile %d", len(cf.Valid), len(hf.Valid))
	}
	valid := make(map[string]bool, len(cf.Valid))
	for _, m := range cf.Valid {
		valid[m.IP.String()] = true
	}
	for _, m := range hf.Valid {
		if !valid[m.IP.String()] {
			t.Errorf("hostile-run valid IP %v absent from clean run", m.IP)
		}
	}
}

func TestHostileRender(t *testing.T) {
	e := env(t)
	r, err := Hostile(e)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"Hostile network", "off-path", "responder sets identical", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
