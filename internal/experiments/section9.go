package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"snmpv3fp/internal/natinfer"
	"snmpv3fp/internal/report"
	"snmpv3fp/internal/scanner"
)

// Section9Result implements the inference the paper's conclusion proposes
// as future work: separating load-balanced VIPs from churned addresses
// among the IPs whose engine identity changed between campaigns.
type Section9Result struct {
	Survey *natinfer.Survey
	// TruePositives / FalseNegatives score the load-balancer calls against
	// the simulator's ground truth.
	TruePositives  int
	FalsePositives int
	GroundTruthLBs int
}

// Section9 collects the inter-campaign identity changers and re-probes
// each with a burst of distinct-ID discovery packets.
func Section9(e *Env) *Section9Result {
	var candidates []netip.Addr
	for ip, o1 := range e.V4Scan1.ByIP {
		o2, ok := e.V4Scan2.ByIP[ip]
		if !ok || len(o1.EngineID) == 0 || len(o2.EngineID) == 0 {
			continue
		}
		if string(o1.EngineID) != string(o2.EngineID) {
			candidates = append(candidates, ip)
		}
	}
	e.World.Clock.Set(e.World.Cfg.StartTime.Add(30 * 24 * time.Hour))
	survey := natinfer.Run(func() scanner.Transport { return e.World.NewTransport() },
		candidates, 6, 50*time.Millisecond)

	r := &Section9Result{Survey: survey}
	// Score against ground truth.
	lbAddrs := map[netip.Addr]bool{}
	for _, d := range e.World.Devices {
		if d.Quirk == 0 {
			continue
		}
		if len(d.Pool) > 0 {
			for _, a := range d.V4 {
				lbAddrs[a] = true
			}
			r.GroundTruthLBs++
		}
	}
	for _, res := range survey.Results {
		if res.Verdict == natinfer.LoadBalanced {
			if lbAddrs[res.IP] {
				r.TruePositives++
			} else {
				r.FalsePositives++
			}
		}
	}
	return r
}

// Render formats the inference outcome.
func (r *Section9Result) Render() string {
	s := r.Survey
	rows := [][]string{
		{"Quantity", "Value"},
		{"identity-changing IPs (candidates)", report.Count(s.Candidates)},
		{"re-probed as stable (churned address)", report.Count(s.Stable)},
		{"re-probed as load-balanced (identity cycling)", report.Count(s.LoadBalanced)},
		{"unresponsive on re-probe", report.Count(s.Unresponsive)},
		{"ground-truth load balancers in world", report.Count(r.GroundTruthLBs)},
		{"load-balancer calls correct / wrong", fmt.Sprintf("%d / %d", r.TruePositives, r.FalsePositives)},
	}
	out := report.Table("Section 9 (future work): NAT / load-balancer inference", rows)
	if n := len(s.PoolSizes); n > 0 {
		out += fmt.Sprintf("detected pool sizes: min %d, median %d, max %d\n",
			s.PoolSizes[0], s.PoolSizes[n/2], s.PoolSizes[n-1])
	}
	return out
}
