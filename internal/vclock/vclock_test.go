package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvances(t *testing.T) {
	start := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatal("start time wrong")
	}
	v.Sleep(5 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Errorf("after sleep: %v", got)
	}
	v.Advance(24 * time.Hour)
	if got := v.Now(); !got.Equal(start.Add(24*time.Hour + 5*time.Second)) {
		t.Errorf("after advance: %v", got)
	}
}

func TestVirtualNegativeSleepIgnored(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	v.Sleep(-time.Hour)
	if !v.Now().Equal(time.Unix(100, 0)) {
		t.Error("negative sleep moved the clock")
	}
}

func TestVirtualSet(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	target := time.Unix(1_000_000, 0)
	v.Set(target)
	if !v.Now().Equal(target) {
		t.Error("Set did not jump")
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Sleep(time.Millisecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(8, 0)) {
		t.Errorf("after 8000 ms of sleeps: %v", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Second)) {
		t.Error("Real.Now far from wall clock")
	}
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if time.Since(start) < 10*time.Millisecond {
		t.Error("Real.Sleep returned early")
	}
}
