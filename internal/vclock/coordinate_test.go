package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualJoinedSleepersOverlap(t *testing.T) {
	// Joined participants share one timeline: their sleeps overlap the way
	// real time would, so the clock advances by the longest participant's
	// schedule, not the sum of everyone's (310 ms here).
	v := NewVirtual(time.Unix(0, 0))
	start := v.Now()
	plans := [][]time.Duration{
		repeat(10, 10*time.Millisecond), // 100 ms
		repeat(5, 30*time.Millisecond),  // 150 ms — the longest
		{60 * time.Millisecond},         // 60 ms
	}
	var wg sync.WaitGroup
	for _, plan := range plans {
		v.Join()
		wg.Add(1)
		go func(plan []time.Duration) {
			defer wg.Done()
			defer v.Leave()
			for _, d := range plan {
				v.Sleep(d)
			}
		}(plan)
	}
	wg.Wait()
	if got := v.Now().Sub(start); got != 150*time.Millisecond {
		t.Errorf("coordinated timeline advanced %v, want 150ms", got)
	}
}

func TestVirtualJoinedUniformWorkers(t *testing.T) {
	// N identical pacing loops — the scan engine's worker shape — advance
	// the clock once per round, not N times.
	v := NewVirtual(time.Unix(0, 0))
	const workers, rounds = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		v.Join()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer v.Leave()
			for j := 0; j < rounds; j++ {
				v.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(0, 0).Add(rounds * time.Millisecond)) {
		t.Errorf("after %d coordinated rounds: %v (uncoordinated would reach %v)",
			rounds, got, time.Unix(0, 0).Add(workers*rounds*time.Millisecond))
	}
}

func TestVirtualUnjoinedSleepersStillSum(t *testing.T) {
	// Without Join, Sleep keeps the historical semantics: each sleeper
	// advances the clock independently (additively).
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(0, 0).Add(400 * time.Millisecond)) {
		t.Errorf("unjoined sleeps should sum: %v", got)
	}
}

func repeat(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}
