// Package vclock abstracts time for the scanner and the simulator.
//
// Real scans pace themselves against the wall clock; simulated Internet-wide
// campaigns instead advance a virtual clock, so a multi-day campaign (the
// paper's IPv4 scans each ran four to five days at 5 kpps) completes in
// milliseconds of real time while every derived quantity — most importantly
// the last-reboot time computed from packet receive timestamps — still
// reflects the campaign's virtual timeline.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies current time and pacing delays.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep pauses the caller for d on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic clock that advances only when slept on. It is
// safe for concurrent use.
//
// By default every Sleep advances the clock immediately, so concurrent
// sleepers each push time forward independently — correct for a single
// pacing loop, but a group of N workers pacing one campaign would advance
// the timeline N times too fast. Workers that share a timeline register
// with Join; while participants are registered, Sleep coordinates them the
// way real time would: the clock only advances once every participant is
// blocked, and it advances to the earliest pending deadline, waking exactly
// the sleepers that are due.
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond
	now  time.Time
	// participants is the number of Joined workers sharing the timeline.
	participants int
	// pending holds the absolute wake deadlines of currently blocked
	// participant sleeps.
	pending []time.Time
}

// NewVirtual returns a virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Join registers the caller as a coordinated participant: its Sleeps (and
// those of the other participants) will advance the clock like real time —
// overlapping, not additive. Every Join must be paired with a Leave.
func (v *Virtual) Join() {
	v.mu.Lock()
	v.participants++
	v.mu.Unlock()
}

// Leave deregisters a participant. A departing worker may be the last one
// the rest of the group was waiting on, so the clock is re-evaluated.
func (v *Virtual) Leave() {
	v.mu.Lock()
	v.participants--
	v.advanceIfQuorumLocked()
	v.mu.Unlock()
}

// Sleep implements Clock by advancing the virtual time. With no registered
// participants it advances immediately and never blocks (the historical
// behavior). With participants, it blocks the caller until the group's
// coordinated time reaches the caller's deadline.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.participants <= 1 {
		v.now = v.now.Add(d)
		v.cond.Broadcast()
		return
	}
	deadline := v.now.Add(d)
	v.pending = append(v.pending, deadline)
	v.advanceIfQuorumLocked()
	for v.now.Before(deadline) {
		v.cond.Wait()
	}
	// Remove one instance of our deadline from the pending set.
	for i, t := range v.pending {
		if t.Equal(deadline) {
			v.pending = append(v.pending[:i], v.pending[i+1:]...)
			break
		}
	}
}

// advanceIfQuorumLocked advances the clock to the earliest pending deadline
// when every registered participant is blocked in Sleep. Callers hold mu.
func (v *Virtual) advanceIfQuorumLocked() {
	if v.participants <= 0 || len(v.pending) < v.participants {
		return
	}
	earliest := v.pending[0]
	for _, t := range v.pending[1:] {
		if t.Before(earliest) {
			earliest = t
		}
	}
	if earliest.After(v.now) {
		v.now = earliest
	}
	v.cond.Broadcast()
}

// Advance moves the clock forward by d (an alias of Sleep that reads better
// at call sites driving the simulation between campaigns).
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Set jumps the clock to t, waking any coordinated sleeper whose deadline
// the jump reaches.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	v.now = t
	v.cond.Broadcast()
	v.mu.Unlock()
}
