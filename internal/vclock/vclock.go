// Package vclock abstracts time for the scanner and the simulator.
//
// Real scans pace themselves against the wall clock; simulated Internet-wide
// campaigns instead advance a virtual clock, so a multi-day campaign (the
// paper's IPv4 scans each ran four to five days at 5 kpps) completes in
// milliseconds of real time while every derived quantity — most importantly
// the last-reboot time computed from packet receive timestamps — still
// reflects the campaign's virtual timeline.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies current time and pacing delays.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep pauses the caller for d on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic clock that advances only when slept on. It is
// safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the virtual time without blocking.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Advance moves the clock forward by d (an alias of Sleep that reads better
// at call sites driving the simulation between campaigns).
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Set jumps the clock to t.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	v.now = t
	v.mu.Unlock()
}
