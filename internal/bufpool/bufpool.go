// Package bufpool provides a fixed-capacity free list of byte buffers for
// the datagram receive paths.
//
// The transports used to allocate a fresh []byte per received datagram; at
// campaign rates that is hundreds of thousands of short-lived allocations
// whose only purpose is to decouple the caller from the transport's reusable
// read buffer. A Pool lets the transport hand out buffers it can reclaim once
// the consumer is done with them.
//
// A channel-backed free list is used instead of sync.Pool deliberately:
// sync.Pool's Put boxes the slice header into an interface, which itself
// allocates — exactly the per-datagram garbage this package exists to remove.
// A buffered channel moves slice headers without boxing, is safe for
// concurrent producers/consumers, and degrades gracefully: when the free list
// is empty Get allocates, and when it is full Put drops the buffer for the GC
// to take. Nothing ever blocks.
//
// Ownership contract: a buffer obtained from Get (or a payload sliced from
// it) belongs to the consumer until it is returned via Put. Callers that
// never call Put simply fall back to the old allocate-per-datagram behavior.
package bufpool

// Pool is a non-blocking free list of byte buffers with a fixed per-buffer
// capacity. The zero value is not usable; call New.
type Pool struct {
	free    chan []byte
	bufSize int
}

// New returns a Pool holding at most size buffers of bufSize bytes each.
func New(size, bufSize int) *Pool {
	if size < 1 {
		size = 1
	}
	if bufSize < 1 {
		bufSize = 1
	}
	return &Pool{free: make(chan []byte, size), bufSize: bufSize}
}

// BufSize returns the capacity of the buffers this pool hands out.
func (p *Pool) BufSize() int { return p.bufSize }

// Get returns a buffer of length p.BufSize(). It never blocks: when the free
// list is empty a fresh buffer is allocated.
func (p *Pool) Get() []byte {
	select {
	case buf := <-p.free:
		return buf[:p.bufSize]
	default:
		return make([]byte, p.bufSize)
	}
}

// Put returns a buffer to the free list. buf may be a subslice of a buffer
// handed out by Get — Put recovers the full capacity — but it must not be
// used by the caller afterwards. Buffers with insufficient capacity (not from
// this pool) and overflow beyond the free list's size are dropped for the GC.
// Put never blocks.
func (p *Pool) Put(buf []byte) {
	if cap(buf) < p.bufSize {
		return
	}
	select {
	case p.free <- buf[:p.bufSize]:
	default:
	}
}

// GetBatch leases a ring of buffers for a batch receive: every nil slot in
// bufs is filled with a buffer of length p.BufSize() (pooled when available,
// freshly allocated otherwise). Non-nil slots are left alone, so a caller can
// reuse one ring across calls and only replace the buffers it handed off to
// consumers. The ownership contract is per-slot and identical to Get: each
// filled buffer belongs to the caller (or whoever it hands the buffer to)
// until returned via Put or PutBatch.
func (p *Pool) GetBatch(bufs [][]byte) {
	for i, b := range bufs {
		if b == nil {
			bufs[i] = p.Get()
		}
	}
}

// PutBatch returns every non-nil buffer in bufs to the free list and clears
// the slots, so a retained ring never pins buffers the pool has reclaimed.
// Like Put it never blocks; overflow is dropped for the GC.
func (p *Pool) PutBatch(bufs [][]byte) {
	for i, b := range bufs {
		if b != nil {
			p.Put(b)
			bufs[i] = nil
		}
	}
}

// Idle reports how many buffers are currently parked in the free list; it is
// a point-in-time observation for tests and metrics.
func (p *Pool) Idle() int { return len(p.free) }
