package bufpool

import (
	"sync"
	"testing"
)

func TestGetPutRecycles(t *testing.T) {
	p := New(4, 128)
	buf := p.Get()
	if len(buf) != 128 {
		t.Fatalf("Get length %d, want 128", len(buf))
	}
	// Return a shortened payload slice; the pool must recover full capacity.
	p.Put(buf[:7])
	if p.Idle() != 1 {
		t.Fatalf("Idle = %d, want 1", p.Idle())
	}
	again := p.Get()
	if len(again) != 128 {
		t.Fatalf("recycled Get length %d, want 128", len(again))
	}
	if &again[0] != &buf[0] {
		t.Fatal("recycled buffer is not the returned one")
	}
}

func TestPutForeignAndOverflow(t *testing.T) {
	p := New(1, 64)
	p.Put(make([]byte, 16)) // too small: dropped
	if p.Idle() != 0 {
		t.Fatalf("undersized buffer accepted")
	}
	p.Put(make([]byte, 64))
	p.Put(make([]byte, 64)) // free list full: dropped, must not block
	if p.Idle() != 1 {
		t.Fatalf("Idle = %d, want 1", p.Idle())
	}
}

func TestGetNeverBlocks(t *testing.T) {
	p := New(1, 8)
	for i := 0; i < 100; i++ {
		if got := p.Get(); len(got) != 8 {
			t.Fatalf("Get length %d", len(got))
		}
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	p := New(8, 256)
	if avg := testing.AllocsPerRun(200, func() {
		buf := p.Get()
		p.Put(buf[:10])
	}); avg != 0 {
		t.Errorf("Get/Put cycle: %v allocs/op, want 0", avg)
	}
}

func TestGetBatchFillsOnlyNilSlots(t *testing.T) {
	p := New(8, 64)
	ring := make([][]byte, 4)
	keep := p.Get()
	ring[2] = keep
	p.GetBatch(ring)
	for i, b := range ring {
		if b == nil {
			t.Fatalf("slot %d left nil", i)
		}
		if len(b) != 64 {
			t.Fatalf("slot %d length %d, want 64", i, len(b))
		}
	}
	if &ring[2][0] != &keep[0] {
		t.Fatal("GetBatch replaced a non-nil slot")
	}
}

func TestPutBatchReturnsAndClears(t *testing.T) {
	p := New(8, 64)
	ring := make([][]byte, 4)
	p.GetBatch(ring)
	ring[1] = nil // handed off to a consumer: not ours to return
	p.PutBatch(ring)
	for i, b := range ring {
		if b != nil {
			t.Fatalf("slot %d not cleared", i)
		}
	}
	if p.Idle() != 3 {
		t.Fatalf("Idle = %d, want 3", p.Idle())
	}
}

func TestBatchZeroAllocSteadyState(t *testing.T) {
	p := New(32, 256)
	ring := make([][]byte, 16)
	if avg := testing.AllocsPerRun(200, func() {
		p.GetBatch(ring)
		p.PutBatch(ring)
	}); avg != 0 {
		t.Errorf("GetBatch/PutBatch cycle: %v allocs/op, want 0", avg)
	}
}

// TestConcurrentHammer shakes the pool under the race detector: many
// goroutines get, scribble, and put concurrently. Ownership violations show
// up as data races on the buffer contents.
func TestConcurrentHammer(t *testing.T) {
	p := New(16, 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				buf := p.Get()
				for j := range buf[:32] {
					buf[j] = byte(g)
				}
				for _, b := range buf[:32] {
					if b != byte(g) {
						t.Errorf("buffer shared while owned: got %d want %d", b, g)
						return
					}
				}
				p.Put(buf)
			}
		}(g)
	}
	wg.Wait()
}
