// Package core implements the paper's measurement primitive as a library:
// collecting unauthenticated SNMPv3 discovery responses into per-IP
// observations carrying the three identifiers (engine ID, engine boots,
// engine time / last reboot), probing single targets, and fingerprinting
// vendors from engine IDs.
//
// The full pipeline composes this package with internal/scanner (campaigns),
// internal/filter (Section 4.4 validation), and internal/alias (Section 5
// alias resolution).
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"snmpv3fp/internal/ber"
	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/snmp"
)

// Observation is the merged per-IP result of one scan campaign.
type Observation struct {
	IP netip.Addr
	// EngineID is the reported authoritative engine ID; nil when the
	// response carried none.
	EngineID []byte
	// EngineBoots and EngineTime are the USM timeliness values.
	EngineBoots int64
	EngineTime  int64
	// ReceivedAt is when the first response packet arrived.
	ReceivedAt time.Time
	// Packets counts response datagrams from this IP (>1 for the paper's
	// multi-response anomaly).
	Packets int
	// Inconsistent marks IPs that returned differing engine IDs within a
	// single campaign.
	Inconsistent bool
}

// LastReboot derives the device's last SNMP-engine restart instant by
// subtracting the engine time from the packet receive time (Section 4.3).
func (o *Observation) LastReboot() time.Time {
	return o.ReceivedAt.Add(-time.Duration(o.EngineTime) * time.Second)
}

// FloodCap bounds how many datagrams per source Collect parses for engine
// ID consistency. Sources exceeding it (the paper's Section 8 amplifiers
// answer a single probe with tens of thousands of duplicates) keep their
// packet counts but stop costing a parse per duplicate.
const FloodCap = 64

// Campaign is the per-IP view of one scan.
type Campaign struct {
	ByIP map[netip.Addr]*Observation
	// Malformed counts response datagrams that did not parse as SNMPv3,
	// duplicates from already-seen sources included.
	Malformed int
	// Truncated is the subset of Malformed that failed with a truncation
	// error: the datagram was cut short in transit.
	Truncated int
	// Mismatched counts datagrams that parsed but echoed a msgID other
	// than the campaign's probe msgID: corrupted or forged responses that
	// cannot belong to any probe slot. They never enter ByIP.
	Mismatched int
	// OffPath counts datagrams the scan engine rejected because their
	// source was never probed (copied from the scanner Result).
	OffPath int
	// Duplicates counts datagrams beyond the first from each source.
	Duplicates int
	// FloodCapped counts duplicate datagrams past the per-source FloodCap
	// that were tallied but not parsed.
	FloodCapped int
	// TotalPackets counts all response datagrams, duplicates included.
	TotalPackets int
	Started      time.Time
	Finished     time.Time
}

// SortedIPs returns the campaign's responsive addresses in address order,
// for deterministic iteration in writers, ingesters and reports.
func (c *Campaign) SortedIPs() []netip.Addr {
	out := make([]netip.Addr, 0, len(c.ByIP))
	for ip := range c.ByIP {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// MultiResponders returns how many IPs answered with more than one packet.
func (c *Campaign) MultiResponders() int {
	n := 0
	for _, o := range c.ByIP {
		if o.Packets > 1 {
			n++
		}
	}
	return n
}

// Collect folds raw scan responses into per-IP observations, validating
// each datagram on the way in (the collection half of the paper's hostile
// network defenses):
//
//   - datagrams that fail to parse as SNMPv3 are counted in Malformed
//     (Truncated when cut short), first packets and duplicates alike;
//   - datagrams whose echoed msgID does not match the campaign's probe
//     msgID (when the Result carries one) are counted in Mismatched and
//     dropped — a response that answers no probe we sent proves nothing;
//   - per-source floods are tallied in full but parsed only up to FloodCap
//     datagrams per source;
//   - IPs whose responses disagree on the engine ID within the campaign are
//     flagged Inconsistent.
//
// Off-path datagrams were already rejected by the scan engine; their count
// is carried over from the Result.
func Collect(res *scanner.Result) *Campaign {
	c := &Campaign{
		ByIP:     make(map[netip.Addr]*Observation, len(res.Responses)),
		OffPath:  int(res.OffPath),
		Started:  res.Started,
		Finished: res.Finished,
	}
	// One response struct serves the whole fold: ParseDiscoveryResponseInto
	// resets it per datagram, and its EngineID field aliases the datagram's
	// payload (owned by the Result), so retaining it in an Observation is as
	// safe as it was with the allocating parser.
	var dr snmp.DiscoveryResponse
	dr.ReportOID = make([]uint32, 0, 16)
	for i := range res.Responses {
		r := &res.Responses[i]
		c.TotalPackets++
		obs, seen := c.ByIP[r.Src]
		if seen {
			c.Duplicates++
			obs.Packets++
			if obs.Packets > FloodCap {
				c.FloodCapped++
				continue
			}
			// Only parse duplicates far enough to check consistency.
			err := snmp.ParseDiscoveryResponseInto(&dr, r.Payload)
			switch {
			case err != nil:
				c.noteMalformed(err)
			case res.ProbeMsgID != 0 && dr.MsgID != res.ProbeMsgID:
				c.Mismatched++
			case string(dr.EngineID) != string(obs.EngineID):
				obs.Inconsistent = true
			}
			continue
		}
		if err := snmp.ParseDiscoveryResponseInto(&dr, r.Payload); err != nil {
			c.noteMalformed(err)
			continue
		}
		if res.ProbeMsgID != 0 && dr.MsgID != res.ProbeMsgID {
			c.Mismatched++
			continue
		}
		c.ByIP[r.Src] = &Observation{
			IP:          r.Src,
			EngineID:    dr.EngineID,
			EngineBoots: dr.EngineBoots,
			EngineTime:  dr.EngineTime,
			ReceivedAt:  r.At,
			Packets:     1,
		}
	}
	return c
}

// noteMalformed records one unparseable datagram, distinguishing transit
// truncation from other damage.
func (c *Campaign) noteMalformed(err error) {
	c.Malformed++
	if errors.Is(err, ber.ErrTruncated) {
		c.Truncated++
	}
}

// Fingerprint is a vendor inference for one device.
type Fingerprint struct {
	// Vendor is the inferred vendor label, "" when unknown.
	Vendor string
	// Source is "oui" (highest confidence: MAC-format engine ID),
	// "enterprise" (IANA number embedded in the engine ID), or "".
	Source string
	// Format is the engine ID format category.
	Format engineid.Format
}

// FingerprintEngineID infers the vendor of the device behind an engine ID
// (Section 3.1, "SNMPv3-based Vendor Fingerprinting").
func FingerprintEngineID(id []byte) Fingerprint {
	p := engineid.Classify(id)
	vendor, source := p.Vendor()
	return Fingerprint{Vendor: vendor, Source: source, Format: p.Format}
}

// VendorLabel returns the vendor, or the paper's "unknown vendor" label.
func (f Fingerprint) VendorLabel() string {
	if f.Vendor == "" {
		return "unknown"
	}
	return f.Vendor
}

// Probe sends a single discovery request with a background context.
//
// Deprecated: use [ProbeContext], which supports cancellation.
func Probe(tr scanner.Transport, addr netip.Addr, timeout time.Duration) (*Observation, error) {
	return ProbeContext(context.Background(), tr, addr, 1, timeout)
}

// ProbeWithID is Probe with a caller-chosen message ID and a background
// context.
//
// Deprecated: use [ProbeContext], which supports cancellation.
func ProbeWithID(tr scanner.Transport, addr netip.Addr, msgID int64, timeout time.Duration) (*Observation, error) {
	return ProbeContext(context.Background(), tr, addr, msgID, timeout)
}

// ProbeContext sends a single discovery request to addr over tr and waits
// for the matching report: the one-packet-per-target primitive of the paper,
// exposed for interactive use (see examples/quickstart). Load-balanced VIPs
// hand different connections to different backends, so varying msgID across
// repeated probes exposes identity cycling (the NAT/load-balancer inference
// of the paper's conclusion).
//
// Cancelling ctx abandons the wait and returns ctx's error. The receive
// goroutine then lingers only until the transport delivers its next datagram
// or is closed by the caller.
func ProbeContext(ctx context.Context, tr scanner.Transport, addr netip.Addr, msgID int64, timeout time.Duration) (*Observation, error) {
	probe := snmp.AppendDiscoveryRequest(nil, msgID, msgID)
	if err := tr.Send(addr, probe); err != nil {
		return nil, err
	}
	// Transports with pooled receive buffers get every payload back: the
	// parsed engine ID is cloned out of the buffer before release, and
	// skipped datagrams are released unparsed.
	releaser, _ := tr.(scanner.PayloadReleaser)
	release := func(p []byte) {
		if releaser != nil {
			releaser.ReleasePayload(p)
		}
	}
	type recvResult struct {
		obs *Observation
		err error
	}
	done := make(chan recvResult, 1)
	go func() {
		var dr snmp.DiscoveryResponse
		for {
			src, payload, at, err := tr.Recv()
			if err != nil {
				done <- recvResult{nil, err}
				return
			}
			if src != addr {
				release(payload)
				continue
			}
			if err := snmp.ParseDiscoveryResponseInto(&dr, payload); err != nil {
				release(payload)
				continue
			}
			engineID := dr.EngineID
			if engineID != nil {
				engineID = append(make([]byte, 0, len(engineID)), engineID...)
			}
			release(payload)
			done <- recvResult{&Observation{
				IP:          src,
				EngineID:    engineID,
				EngineBoots: dr.EngineBoots,
				EngineTime:  dr.EngineTime,
				ReceivedAt:  at,
				Packets:     1,
			}, nil}
			return
		}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.obs, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("core: probe of %v: %w", addr, ctx.Err())
	case <-timer.C:
		return nil, fmt.Errorf("core: no response from %v within %v", addr, timeout)
	}
}
