package core

import (
	"io"
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/snmp"
)

func report(engineID []byte, boots, etime int64) []byte {
	req := snmp.NewDiscoveryRequest(1, 1)
	wire, err := snmp.NewDiscoveryReport(req, engineID, boots, etime, 1).Encode()
	if err != nil {
		panic(err)
	}
	return wire
}

func TestCollect(t *testing.T) {
	t0 := time.Date(2021, 4, 16, 12, 0, 0, 0, time.UTC)
	id := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	res := &scanner.Result{
		Responses: []scanner.Response{
			{Src: netip.MustParseAddr("192.0.2.1"), Payload: report(id, 5, 3600), At: t0},
			{Src: netip.MustParseAddr("192.0.2.2"), Payload: []byte("garbage"), At: t0},
			{Src: netip.MustParseAddr("192.0.2.3"), Payload: report(id, 7, 60), At: t0},
			{Src: netip.MustParseAddr("192.0.2.3"), Payload: report(id, 7, 60), At: t0.Add(time.Second)},
		},
	}
	c := Collect(res)
	if len(c.ByIP) != 2 {
		t.Fatalf("IPs = %d", len(c.ByIP))
	}
	if c.Malformed != 1 {
		t.Errorf("malformed = %d", c.Malformed)
	}
	if c.TotalPackets != 4 {
		t.Errorf("total packets = %d", c.TotalPackets)
	}
	o1 := c.ByIP[netip.MustParseAddr("192.0.2.1")]
	if o1.EngineBoots != 5 || o1.EngineTime != 3600 {
		t.Errorf("obs1 = %+v", o1)
	}
	want := t0.Add(-3600 * time.Second)
	if !o1.LastReboot().Equal(want) {
		t.Errorf("last reboot = %v, want %v", o1.LastReboot(), want)
	}
	o3 := c.ByIP[netip.MustParseAddr("192.0.2.3")]
	if o3.Packets != 2 {
		t.Errorf("packets = %d", o3.Packets)
	}
	if o3.Inconsistent {
		t.Error("identical duplicates should not be inconsistent")
	}
	if c.MultiResponders() != 1 {
		t.Errorf("multi responders = %d", c.MultiResponders())
	}
}

func TestCollectInconsistentWithinScan(t *testing.T) {
	t0 := time.Now()
	ip := netip.MustParseAddr("192.0.2.8")
	idA := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 1, 1})
	idB := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 2, 2, 2})
	res := &scanner.Result{
		Responses: []scanner.Response{
			{Src: ip, Payload: report(idA, 1, 1), At: t0},
			{Src: ip, Payload: report(idB, 1, 1), At: t0},
		},
	}
	c := Collect(res)
	if !c.ByIP[ip].Inconsistent {
		t.Error("flapping engine ID not flagged")
	}
}

func TestFingerprintEngineID(t *testing.T) {
	fp := FingerprintEngineID(engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3}))
	if fp.Vendor != "Cisco" || fp.Source != "oui" {
		t.Errorf("fp = %+v", fp)
	}
	if fp.VendorLabel() != "Cisco" {
		t.Error("label wrong")
	}
	unknown := FingerprintEngineID([]byte{1, 2, 3})
	if unknown.Vendor != "" || unknown.VendorLabel() != "unknown" {
		t.Errorf("unknown fp = %+v", unknown)
	}
	netsnmp := FingerprintEngineID(engineid.NewNetSNMP([8]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if netsnmp.Vendor != "Net-SNMP" || netsnmp.Source != "enterprise" {
		t.Errorf("netsnmp fp = %+v", netsnmp)
	}
}

// memTransport is a test double delivering canned responses.
type memTransport struct {
	responses chan scanner.Response
	sent      []netip.Addr
	answer    func(dst netip.Addr) [][]byte
}

func newMemTransport(answer func(dst netip.Addr) [][]byte) *memTransport {
	return &memTransport{responses: make(chan scanner.Response, 64), answer: answer}
}

func (m *memTransport) Send(dst netip.Addr, payload []byte) error {
	m.sent = append(m.sent, dst)
	for _, r := range m.answer(dst) {
		m.responses <- scanner.Response{Src: dst, Payload: r, At: time.Now()}
	}
	return nil
}

func (m *memTransport) Recv() (netip.Addr, []byte, time.Time, error) {
	r, ok := <-m.responses
	if !ok {
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	return r.Src, r.Payload, r.At, nil
}

func (m *memTransport) Close() error {
	close(m.responses)
	return nil
}

func TestProbe(t *testing.T) {
	id := engineid.NewMAC(2011, [6]byte{0x48, 0x46, 0xfb, 1, 2, 3})
	tr := newMemTransport(func(dst netip.Addr) [][]byte {
		return [][]byte{report(id, 42, 100)}
	})
	obs, err := Probe(tr, netip.MustParseAddr("192.0.2.5"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if obs.EngineBoots != 42 || obs.EngineTime != 100 {
		t.Errorf("obs = %+v", obs)
	}
}

func TestProbeTimeout(t *testing.T) {
	tr := newMemTransport(func(dst netip.Addr) [][]byte { return nil })
	defer tr.Close()
	_, err := Probe(tr, netip.MustParseAddr("192.0.2.5"), 50*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestProbeIgnoresOtherSources(t *testing.T) {
	id := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 9, 9, 9})
	target := netip.MustParseAddr("192.0.2.5")
	other := netip.MustParseAddr("203.0.113.9")
	tr := newMemTransport(nil)
	tr.answer = func(dst netip.Addr) [][]byte { return nil }
	// Pre-load a response from the wrong source, then the right one.
	tr.responses <- scanner.Response{Src: other, Payload: report(id, 1, 1), At: time.Now()}
	tr.responses <- scanner.Response{Src: target, Payload: report(id, 2, 2), At: time.Now()}
	obs, err := Probe(tr, target, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if obs.IP != target || obs.EngineBoots != 2 {
		t.Errorf("obs = %+v", obs)
	}
}

func TestCollectMalformedDuplicate(t *testing.T) {
	t0 := time.Date(2021, 4, 16, 12, 0, 0, 0, time.UTC)
	id := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	src := netip.MustParseAddr("192.0.2.1")
	res := &scanner.Result{
		Responses: []scanner.Response{
			{Src: src, Payload: report(id, 5, 3600), At: t0},
			{Src: src, Payload: []byte("garbage"), At: t0.Add(time.Second)},
		},
	}
	c := Collect(res)
	if c.Malformed != 1 {
		t.Errorf("malformed = %d, want 1 (duplicates count too)", c.Malformed)
	}
	if c.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", c.Duplicates)
	}
	o := c.ByIP[src]
	if o == nil || o.Packets != 2 {
		t.Fatalf("obs = %+v, want 2 packets", o)
	}
	if o.Inconsistent {
		t.Error("a malformed duplicate is not evidence of engine ID inconsistency")
	}
}

func TestCollectMalformedFirstThenValid(t *testing.T) {
	// A garbage datagram arriving before the real response must not mask
	// the source: the later valid response still yields an observation.
	t0 := time.Date(2021, 4, 16, 12, 0, 0, 0, time.UTC)
	id := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	src := netip.MustParseAddr("192.0.2.1")
	res := &scanner.Result{
		Responses: []scanner.Response{
			{Src: src, Payload: []byte("garbage"), At: t0},
			{Src: src, Payload: report(id, 5, 3600), At: t0.Add(time.Second)},
		},
	}
	c := Collect(res)
	if c.Malformed != 1 {
		t.Errorf("malformed = %d, want 1", c.Malformed)
	}
	o := c.ByIP[src]
	if o == nil {
		t.Fatal("valid response after garbage produced no observation")
	}
	if o.EngineBoots != 5 || o.EngineTime != 3600 {
		t.Errorf("obs = %+v", o)
	}
	if c.TotalPackets != 2 {
		t.Errorf("total packets = %d", c.TotalPackets)
	}
}

func TestCollectMismatchedMsgID(t *testing.T) {
	// The test report helper echoes msgID 1; a campaign that probed with a
	// different msgID must reject the response as answering no probe slot.
	t0 := time.Date(2021, 4, 16, 12, 0, 0, 0, time.UTC)
	id := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	src := netip.MustParseAddr("192.0.2.1")
	mk := func(probeID int64) *Campaign {
		return Collect(&scanner.Result{
			ProbeMsgID: probeID,
			Responses: []scanner.Response{
				{Src: src, Payload: report(id, 5, 3600), At: t0},
			},
		})
	}
	if c := mk(2); len(c.ByIP) != 0 || c.Mismatched != 1 {
		t.Errorf("probeID 2: byIP=%d mismatched=%d, want 0/1", len(c.ByIP), c.Mismatched)
	}
	if c := mk(1); len(c.ByIP) != 1 || c.Mismatched != 0 {
		t.Errorf("probeID 1: byIP=%d mismatched=%d, want 1/0", len(c.ByIP), c.Mismatched)
	}
	if c := mk(0); len(c.ByIP) != 1 || c.Mismatched != 0 {
		t.Errorf("probeID 0 (check disabled): byIP=%d mismatched=%d, want 1/0", len(c.ByIP), c.Mismatched)
	}
}

func TestCollectFloodCap(t *testing.T) {
	t0 := time.Date(2021, 4, 16, 12, 0, 0, 0, time.UTC)
	id := engineid.NewMAC(9, [6]byte{0x58, 0x8d, 0x09, 1, 2, 3})
	src := netip.MustParseAddr("192.0.2.1")
	res := &scanner.Result{}
	const total = FloodCap + 7
	for i := 0; i < total; i++ {
		res.Responses = append(res.Responses, scanner.Response{
			Src: src, Payload: report(id, 5, 3600), At: t0.Add(time.Duration(i) * time.Millisecond),
		})
	}
	c := Collect(res)
	o := c.ByIP[src]
	if o == nil || o.Packets != total {
		t.Fatalf("packet count must keep accumulating past the cap: %+v", o)
	}
	if c.FloodCapped != total-FloodCap {
		t.Errorf("floodCapped = %d, want %d", c.FloodCapped, total-FloodCap)
	}
	if c.Duplicates != total-1 {
		t.Errorf("duplicates = %d, want %d", c.Duplicates, total-1)
	}
}
