package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetEvict(t *testing.T) {
	// One shard's budget is max/shardCount; use keys that land wherever they
	// like but drive a single shard over budget deterministically by cost.
	c := New[int](16 * shardCount)
	c.Put("a", 1, 8)
	c.Put("b", 2, 8)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if got := c.Bytes(); got == 0 {
		t.Fatal("Bytes() = 0 after puts")
	}
	if c.Hits() != 1 {
		t.Fatalf("Hits() = %d, want 1", c.Hits())
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	if c.Misses() != 1 {
		t.Fatalf("Misses() = %d, want 1", c.Misses())
	}
}

func TestEvictionOrderLRU(t *testing.T) {
	// All three keys collide into the same shard only by luck; instead pin
	// behavior per shard: fill one shard to capacity and verify the cold
	// entry goes first. Find three keys in the same shard.
	c := New[string](10 * shardCount)
	var keys []string
	want := fnv1a("seed") & (shardCount - 1)
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv1a(k)&(shardCount-1) == want {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], "old", 4)
	c.Put(keys[1], "mid", 4)
	c.Get(keys[0]) // promote old above mid
	c.Put(keys[2], "new", 4)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-promoted entry was evicted")
	}
	if c.Evictions() == 0 {
		t.Fatal("Evictions() = 0 after capacity overflow")
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := New[int](1 << 20)
	c.Put("k", 1, 100)
	c.Put("k", 2, 40)
	if got := c.Bytes(); got != 40 {
		t.Fatalf("Bytes() = %d after replace, want 40", got)
	}
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("Get(k) = %d after replace, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New[int](8 * shardCount)
	c.Put("small", 1, 4)
	c.Put("huge", 2, 1<<20)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than a shard was cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized put flushed an unrelated entry")
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache[int]
	c.Put("k", 1, 8)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Hits()+c.Misses()+c.Evictions() != 0 || c.Bytes() != 0 || c.Len() != 0 {
		t.Fatal("nil cache reported nonzero counters")
	}
	if New[int](0) != nil {
		t.Fatal("New(0) should return the nil no-op cache")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (w*i)%257)
				c.Put(k, i, 64)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Fatalf("Bytes() went negative: %d", c.Bytes())
	}
}
