// Package lru is a sharded, size-bounded LRU cache for the read tier: the
// store's decoded per-IP block cache and serve's JSON result cache both sit
// on it. Capacity is counted in caller-declared byte costs, not entries, so
// one oversized value cannot silently blow the budget, and the shard count
// keeps the lock uncontended under concurrent query load.
//
// Hit/miss/eviction counters and a live byte gauge are maintained
// internally; callers republish them into an obs.Registry as read-time
// callbacks (the package deliberately has no obs dependency, so the store
// can use it without an import cycle).
package lru

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount is a power of two so the key hash folds with a mask. 16 shards
// keep the per-shard mutex cold at the concurrency levels the serve tier
// sees (GOMAXPROCS handlers).
const shardCount = 16

// Cache is a sharded LRU over string keys. The zero value is not usable;
// call New. A nil *Cache is a valid no-op cache: Get always misses and Put
// discards, so callers can thread one pointer through without nil checks.
type Cache[V any] struct {
	shards [shardCount]shard[V]

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bytes     atomic.Int64
}

type shard[V any] struct {
	mu  sync.Mutex
	ll  *list.List // front = most recent
	m   map[string]*list.Element
	cur int64
	max int64
}

type entry[V any] struct {
	key  string
	val  V
	cost int64
}

// New builds a cache bounded at maxBytes of declared cost, split evenly
// across the shards. maxBytes <= 0 returns nil (the no-op cache).
func New[V any](maxBytes int64) *Cache[V] {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache[V]{}
	per := maxBytes / shardCount
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].max = per
	}
	return c
}

// fnv1a is the shard hash; allocation-free over the key bytes.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the cached value and promotes it to most-recently-used.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return zero, false
}

// Put inserts or replaces key with the given byte cost, evicting from the
// cold end until the shard fits. A value costing more than a whole shard is
// rejected outright rather than flushing everything else.
func (c *Cache[V]) Put(key string, v V, cost int64) {
	if c == nil {
		return
	}
	if cost < 1 {
		cost = 1
	}
	s := c.shard(key)
	if cost > s.max {
		return
	}
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*entry[V])
		s.cur += cost - e.cost
		c.bytes.Add(cost - e.cost)
		e.val, e.cost = v, cost
		s.ll.MoveToFront(el)
	} else {
		s.m[key] = s.ll.PushFront(&entry[V]{key: key, val: v, cost: cost})
		s.cur += cost
		c.bytes.Add(cost)
	}
	for s.cur > s.max {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[V])
		s.ll.Remove(back)
		delete(s.m, e.key)
		s.cur -= e.cost
		c.bytes.Add(-e.cost)
		c.evictions.Add(1)
	}
	s.mu.Unlock()
}

// Hits returns how many Gets found their key.
func (c *Cache[V]) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns how many Gets came up empty.
func (c *Cache[V]) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Evictions returns how many entries were pushed out by capacity pressure.
func (c *Cache[V]) Evictions() uint64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// Bytes returns the current declared-cost total across all shards.
func (c *Cache[V]) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// Len returns the live entry count (sums shard sizes under their locks).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
