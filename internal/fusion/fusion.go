// Package fusion combines per-protocol alias evidence into fused device
// sets: weighted agreement across protocols, conflict resolution when
// protocols disagree, and a marginal-gain report per protocol — the analogue
// of the paper lineage's comparison against MIDAR and Speedtrap ("Pushing
// Alias Resolution to the Limit"), answering "what does each protocol add
// beyond the others?".
//
// The input is deliberately generic: each protocol contributes groups of
// addresses it believes share a device (SNMPv3 engine-ID groups, ICMP
// clock-offset bins, NTP clock identities), with a weight expressing how
// conclusive that protocol's agreement is. Fusion is pure and deterministic:
// equal inputs give byte-identical reports regardless of map iteration or
// caller ordering.
package fusion

import (
	"net/netip"
	"sort"
)

// ProtocolEvidence is one protocol's alias view of a campaign.
type ProtocolEvidence struct {
	// Protocol names the probe module that produced the evidence.
	Protocol string
	// Weight is the protocol's vote weight for both agreement and
	// conflict (see internal/probe Module.Weight).
	Weight float64
	// Groups buckets addresses by the protocol's device-identity key;
	// each group claims its members are interfaces of one device.
	Groups map[string][]netip.Addr
}

// Pair is one unordered candidate alias pair, stored with A < B.
type Pair struct {
	A, B netip.Addr
}

// pairOf normalizes an unordered pair.
func pairOf(a, b netip.Addr) Pair {
	if b.Less(a) {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// maxGroupFanout caps how many addresses of one group propose pairwise
// candidates: pair expansion is quadratic, and a single amplifier-style
// group (thousands of addresses behind one key) must not dominate the
// candidate set. Groups beyond the cap propose pairs among their first
// maxGroupFanout addresses only; the report counts the truncation.
const maxGroupFanout = 256

// ProtocolReport is the per-protocol slice of the fusion report.
type ProtocolReport struct {
	Protocol string  `json:"protocol"`
	Weight   float64 `json:"weight"`
	// IPs is how many addresses the protocol observed with an
	// alias-usable key; Groups how many distinct keys.
	IPs    int `json:"ips"`
	Groups int `json:"groups"`
	// Proposed counts the candidate pairs this protocol's groups put
	// forward; Accepted the subset that survived weighted voting;
	// Conflicted the subset rejected because opposing weight won.
	Proposed   int `json:"proposed_pairs"`
	Accepted   int `json:"accepted_pairs"`
	Conflicted int `json:"conflict_pairs"`
	// MarginalPairs counts accepted pairs proposed by this protocol
	// alone, and MarginalSets the fused sets containing at least one such
	// pair: the protocol's contribution beyond every other protocol — the
	// paper lineage's marginal-gain metric.
	MarginalPairs int `json:"marginal_pairs"`
	MarginalSets  int `json:"marginal_sets"`
	// OversizeGroups counts groups truncated at maxGroupFanout.
	OversizeGroups int `json:"oversize_groups,omitempty"`
}

// FusedSet is one fused device: the union of accepted pairwise claims.
type FusedSet struct {
	IPs []netip.Addr `json:"ips"`
	// Protocols lists, sorted, every protocol that proposed at least one
	// accepted pair inside the set.
	Protocols []string `json:"protocols"`
}

// Report is the full fusion result.
type Report struct {
	Protocols []ProtocolReport `json:"protocols"`
	Sets      []FusedSet       `json:"sets"`
	// AcceptedPairs and ConflictPairs total the weighted vote outcomes
	// over all distinct candidate pairs.
	AcceptedPairs int `json:"accepted_pairs"`
	ConflictPairs int `json:"conflict_pairs"`
}

// pairVote accumulates the weighted votes on one candidate pair.
type pairVote struct {
	support float64
	oppose  float64
	// proposers is a bitmask over the evidence slice (sorted by protocol).
	proposers uint64
}

// Fuse combines the per-protocol evidence. A candidate pair is every
// same-group address pair any protocol proposes. Each protocol votes on each
// candidate: support (its groups also pair them), oppose (it observed both
// addresses under different keys — positive evidence they are different
// devices), or abstain (it lacks evidence for one side). A pair is accepted
// when supporting weight strictly exceeds opposing weight; accepted pairs
// are unioned into fused sets.
func Fuse(evidence []ProtocolEvidence) *Report {
	// Canonical protocol order, independent of caller ordering.
	evs := make([]ProtocolEvidence, len(evidence))
	copy(evs, evidence)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Protocol < evs[j].Protocol })

	rep := &Report{Protocols: make([]ProtocolReport, len(evs))}
	// Per-protocol key of each address, for opposition checks.
	keyOf := make([]map[netip.Addr]string, len(evs))
	votes := make(map[Pair]*pairVote)
	for pi := range evs {
		ev := &evs[pi]
		pr := &rep.Protocols[pi]
		pr.Protocol, pr.Weight = ev.Protocol, ev.Weight
		keys := make(map[netip.Addr]string)
		keyOf[pi] = keys
		pr.Groups = len(ev.Groups)
		for key, ips := range ev.Groups {
			for _, ip := range ips {
				keys[ip] = key
			}
			members := ips
			if len(members) > maxGroupFanout {
				members = members[:maxGroupFanout]
				pr.OversizeGroups++
			}
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					p := pairOf(members[i], members[j])
					v := votes[p]
					if v == nil {
						v = &pairVote{}
						votes[p] = v
					}
					if v.proposers&(1<<uint(pi)) == 0 {
						v.proposers |= 1 << uint(pi)
						v.support += ev.Weight
						pr.Proposed++
					}
				}
			}
		}
		pr.IPs = len(keys)
	}

	// Opposition pass: a protocol that saw both endpoints under different
	// keys votes against with its full weight.
	pairs := make([]Pair, 0, len(votes))
	for p := range votes {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A.Less(pairs[j].A)
		}
		return pairs[i].B.Less(pairs[j].B)
	})
	uf := newUnionFind()
	type acceptedPair struct {
		p         Pair
		proposers uint64
	}
	var accepted []acceptedPair
	for _, p := range pairs {
		v := votes[p]
		for pi := range evs {
			if v.proposers&(1<<uint(pi)) != 0 {
				continue
			}
			ka, oka := keyOf[pi][p.A]
			kb, okb := keyOf[pi][p.B]
			if oka && okb && ka != kb {
				v.oppose += evs[pi].Weight
			}
		}
		if v.support > v.oppose {
			rep.AcceptedPairs++
			accepted = append(accepted, acceptedPair{p, v.proposers})
			uf.union(p.A, p.B)
			for pi := range evs {
				if v.proposers&(1<<uint(pi)) != 0 {
					rep.Protocols[pi].Accepted++
					if v.proposers == 1<<uint(pi) {
						rep.Protocols[pi].MarginalPairs++
					}
				}
			}
		} else {
			rep.ConflictPairs++
			for pi := range evs {
				if v.proposers&(1<<uint(pi)) != 0 {
					rep.Protocols[pi].Conflicted++
				}
			}
		}
	}

	// Materialize fused sets and per-set protocol attribution.
	setProtos := make(map[netip.Addr]uint64)   // root -> proposer mask over accepted pairs
	setMarginal := make(map[netip.Addr]uint64) // root -> protocols with a marginal pair inside
	for _, ap := range accepted {
		root := uf.find(ap.p.A)
		setProtos[root] |= ap.proposers
		if ap.proposers&(ap.proposers-1) == 0 {
			setMarginal[root] |= ap.proposers
		}
	}
	members := make(map[netip.Addr][]netip.Addr)
	for addr := range uf.parent {
		root := uf.find(addr)
		members[root] = append(members[root], addr)
	}
	rep.Sets = make([]FusedSet, 0, len(members))
	for root, ips := range members {
		sort.Slice(ips, func(i, j int) bool { return ips[i].Less(ips[j]) })
		mask := setProtos[root]
		var protos []string
		for pi := range evs {
			if mask&(1<<uint(pi)) != 0 {
				protos = append(protos, evs[pi].Protocol)
			}
		}
		rep.Sets = append(rep.Sets, FusedSet{IPs: ips, Protocols: protos})
		for pi := range evs {
			if setMarginal[root]&(1<<uint(pi)) != 0 {
				rep.Protocols[pi].MarginalSets++
			}
		}
	}
	sort.Slice(rep.Sets, func(i, j int) bool {
		if len(rep.Sets[i].IPs) != len(rep.Sets[j].IPs) {
			return len(rep.Sets[i].IPs) > len(rep.Sets[j].IPs)
		}
		return rep.Sets[i].IPs[0].Less(rep.Sets[j].IPs[0])
	})
	return rep
}

// unionFind is a path-compressing union-find over addresses.
type unionFind struct {
	parent map[netip.Addr]netip.Addr
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[netip.Addr]netip.Addr)}
}

func (u *unionFind) find(a netip.Addr) netip.Addr {
	p, ok := u.parent[a]
	if !ok {
		u.parent[a] = a
		return a
	}
	if p == a {
		return a
	}
	root := u.find(p)
	u.parent[a] = root
	return root
}

// union merges the sets of a and b; the lower root wins so the forest shape
// is input-order independent given the sorted pair iteration above.
func (u *unionFind) union(a, b netip.Addr) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb.Less(ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
