// Package alias implements the paper's Section 5 alias resolution: IPs that
// report the same engine ID, the same engine boots, and closely matching
// last-reboot times across both campaigns belong to the same device.
//
// The package also implements the matching-rule variants compared in the
// paper's Appendix A (Table 3) and the dual-stack join of Section 5.1.
package alias

import (
	"fmt"
	"sort"
	"time"

	"snmpv3fp/internal/filter"
)

// Binning selects how the last-reboot timestamp is quantized before
// matching (Appendix A).
type Binning int

// Binning rules.
const (
	// BinExact matches last-reboot times to the second.
	BinExact Binning = iota
	// BinRound rounds the seconds value to the nearest 10 ("Round").
	BinRound
	// BinDiv20 floors the seconds value into 20-second bins ("Divide by
	// 20") — the rule the paper adopts for its main results.
	BinDiv20
	// BinDiv20Round rounds into 20-second bins ("Divide by 20+round").
	BinDiv20Round
)

// String names the binning as in Table 3.
func (b Binning) String() string {
	switch b {
	case BinExact:
		return "Exact"
	case BinRound:
		return "Round"
	case BinDiv20:
		return "Divide by 20"
	case BinDiv20Round:
		return "Divide by 20+round"
	default:
		return fmt.Sprintf("binning(%d)", int(b))
	}
}

func (b Binning) apply(t time.Time) int64 {
	s := t.Unix()
	switch b {
	case BinRound:
		return floorDiv(s+5, 10) * 10
	case BinDiv20:
		return floorDiv(s, 20)
	case BinDiv20Round:
		return floorDiv(s+10, 20)
	default:
		return s
	}
}

// floorDiv is integer division rounding toward negative infinity. Go's /
// truncates toward zero, which would make the bins around the Unix epoch
// twice as wide and round pre-1970 timestamps the wrong way: two reboots one
// second apart on either side of a bin edge must land in adjacent bins
// whatever their sign.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Variant is one alias-resolution rule.
type Variant struct {
	// Bin quantizes last-reboot times.
	Bin Binning
	// BothScans matches on the fields of both campaigns; otherwise only
	// the first campaign's fields are used.
	BothScans bool
}

// Default is the rule used throughout the paper's evaluation: both scans,
// 20-second bins.
var Default = Variant{Bin: BinDiv20, BothScans: true}

// Name renders the variant as in Table 3.
func (v Variant) Name() string {
	suffix := "first"
	if v.BothScans {
		suffix = "both"
	}
	return v.Bin.String() + " " + suffix
}

// Variants lists the eight rules of Table 3 in the paper's row order.
var Variants = []Variant{
	{BinExact, false}, {BinExact, true},
	{BinRound, false}, {BinRound, true},
	{BinDiv20, false}, {BinDiv20, true},
	{BinDiv20Round, false}, {BinDiv20Round, true},
}

// Set is one alias set: all members belong to the same inferred device.
type Set struct {
	Members []*filter.Merged
}

// Size returns the number of member IPs.
func (s *Set) Size() int { return len(s.Members) }

// Singleton reports whether the set has only one member.
func (s *Set) Singleton() bool { return len(s.Members) == 1 }

// Family is the address-family composition of a set.
type Family int

// Families.
const (
	V4Only Family = iota
	V6Only
	DualStack
)

// String names the family.
func (f Family) String() string {
	switch f {
	case V4Only:
		return "IPv4-only"
	case V6Only:
		return "IPv6-only"
	default:
		return "dual-stack"
	}
}

// Family classifies the set by its members' address families.
func (s *Set) Family() Family {
	var has4, has6 bool
	for _, m := range s.Members {
		if m.IP.Is4() {
			has4 = true
		} else {
			has6 = true
		}
	}
	switch {
	case has4 && has6:
		return DualStack
	case has6:
		return V6Only
	default:
		return V4Only
	}
}

// Key identifies one alias set under a variant: all IPs mapping to the same
// Key belong to the same inferred device. It is exported so incremental
// resolvers (internal/store) group by exactly the rule Resolve applies.
type Key struct {
	EngineID string
	Boots1   int64
	Reboot1  int64
	Boots2   int64
	Reboot2  int64
}

// Key computes the grouping key for one merged observation.
func (v Variant) Key(m *filter.Merged) Key {
	k := Key{
		EngineID: string(m.EngineID),
		Boots1:   m.Boots[0],
		Reboot1:  v.Bin.apply(m.LastReboot[0]),
	}
	if v.BothScans {
		k.Boots2 = m.Boots[1]
		k.Reboot2 = v.Bin.apply(m.LastReboot[1])
	}
	return k
}

// Resolve groups the validated observations into alias sets under the given
// variant. The result is ordered by decreasing size, ties broken by the
// first member's IP for determinism.
func Resolve(valid []*filter.Merged, v Variant) []*Set {
	groups := make(map[Key]*Set, len(valid))
	for _, m := range valid {
		k := v.Key(m)
		g := groups[k]
		if g == nil {
			g = &Set{}
			groups[k] = g
		}
		g.Members = append(g.Members, m)
	}
	sets := make([]*Set, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g.Members, func(i, j int) bool { return g.Members[i].IP.Less(g.Members[j].IP) })
		sets = append(sets, g)
	}
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i].Members) != len(sets[j].Members) {
			return len(sets[i].Members) > len(sets[j].Members)
		}
		return sets[i].Members[0].IP.Less(sets[j].Members[0].IP)
	})
	return sets
}

// Stats summarizes a resolution run: the columns of Table 3.
type Stats struct {
	Sets            int
	NonSingleton    int
	IPsNonSingleton int
}

// IPsPerNonSingleton is the average set size among non-singleton sets.
func (s Stats) IPsPerNonSingleton() float64 {
	if s.NonSingleton == 0 {
		return 0
	}
	return float64(s.IPsNonSingleton) / float64(s.NonSingleton)
}

// Summarize computes Stats for a set list.
func Summarize(sets []*Set) Stats {
	var st Stats
	st.Sets = len(sets)
	for _, s := range sets {
		if !s.Singleton() {
			st.NonSingleton++
			st.IPsNonSingleton += s.Size()
		}
	}
	return st
}

// SplitByFamily partitions sets into IPv4-only, IPv6-only and dual-stack
// (the Section 5.1 final numbers).
func SplitByFamily(sets []*Set) map[Family][]*Set {
	out := map[Family][]*Set{}
	for _, s := range sets {
		f := s.Family()
		out[f] = append(out[f], s)
	}
	return out
}
