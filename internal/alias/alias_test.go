package alias

import (
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/filter"
)

var baseReboot = time.Date(2021, 1, 10, 3, 4, 5, 0, time.UTC)

func merged(ip string, engID string, boots int64, reboot time.Time) *filter.Merged {
	return &filter.Merged{
		IP:         netip.MustParseAddr(ip),
		EngineID:   []byte(engID),
		Boots:      [2]int64{boots, boots},
		LastReboot: [2]time.Time{reboot, reboot},
	}
}

func TestResolveGroupsSameDevice(t *testing.T) {
	valid := []*filter.Merged{
		merged("192.0.2.1", "dev-a", 5, baseReboot),
		merged("192.0.2.2", "dev-a", 5, baseReboot.Add(3*time.Second)),
		merged("192.0.2.3", "dev-a", 5, baseReboot.Add(-2*time.Second)),
		merged("198.51.100.1", "dev-b", 2, baseReboot),
	}
	sets := Resolve(valid, Default)
	if len(sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(sets))
	}
	if sets[0].Size() != 3 || sets[1].Size() != 1 {
		t.Errorf("sizes = %d, %d", sets[0].Size(), sets[1].Size())
	}
}

func TestResolveSeparatesByBoots(t *testing.T) {
	valid := []*filter.Merged{
		merged("192.0.2.1", "shared", 5, baseReboot),
		merged("192.0.2.2", "shared", 6, baseReboot),
	}
	sets := Resolve(valid, Default)
	if len(sets) != 2 {
		t.Fatalf("same engine ID with different boots must not merge: %d sets", len(sets))
	}
}

func TestResolveSeparatesByReboot(t *testing.T) {
	// Same engine ID (cloned image), same boots, reboots a year apart.
	valid := []*filter.Merged{
		merged("192.0.2.1", "cloned", 2, baseReboot),
		merged("192.0.2.2", "cloned", 2, baseReboot.Add(365*24*time.Hour)),
	}
	sets := Resolve(valid, Default)
	if len(sets) != 2 {
		t.Fatalf("cloned engine IDs with distant reboots must not merge: %d sets", len(sets))
	}
}

func TestResolveBothScansCatchesSecondScanDivergence(t *testing.T) {
	// Two devices identical in scan 1, diverging in scan 2 (one rebooted).
	a := &filter.Merged{
		IP: netip.MustParseAddr("192.0.2.1"), EngineID: []byte("x"),
		Boots:      [2]int64{3, 3},
		LastReboot: [2]time.Time{baseReboot, baseReboot},
	}
	b := &filter.Merged{
		IP: netip.MustParseAddr("192.0.2.2"), EngineID: []byte("x"),
		Boots:      [2]int64{3, 4},
		LastReboot: [2]time.Time{baseReboot, baseReboot.Add(24 * time.Hour)},
	}
	both := Resolve([]*filter.Merged{a, b}, Variant{BinDiv20, true})
	if len(both) != 2 {
		t.Errorf("both-scans variant should split: %d sets", len(both))
	}
	first := Resolve([]*filter.Merged{a, b}, Variant{BinDiv20, false})
	if len(first) != 1 {
		t.Errorf("first-scan variant should merge: %d sets", len(first))
	}
}

func TestBinning(t *testing.T) {
	base := time.Unix(1000, 0)
	cases := []struct {
		bin  Binning
		a, b time.Time
		same bool
	}{
		{BinExact, base, base, true},
		{BinExact, base, base.Add(time.Second), false},
		{BinRound, time.Unix(1004, 0), time.Unix(1006, 0), true},  // both round to 1000/1010? 1004→1000, 1006→1010
		{BinDiv20, time.Unix(1000, 0), time.Unix(1019, 0), true},  // same 20s bin
		{BinDiv20, time.Unix(1019, 0), time.Unix(1020, 0), false}, // bin edge
	}
	for i, c := range cases {
		got := c.bin.apply(c.a) == c.bin.apply(c.b)
		if i == 2 {
			// Round: 1004 → 1000, 1006 → 1010: actually different.
			if got {
				t.Errorf("case %d: round(1004) == round(1006) unexpectedly", i)
			}
			continue
		}
		if got != c.same {
			t.Errorf("case %d (%v): same=%v, want %v", i, c.bin, got, c.same)
		}
	}
}

func TestVariantNames(t *testing.T) {
	want := []string{
		"Exact first", "Exact both",
		"Round first", "Round both",
		"Divide by 20 first", "Divide by 20 both",
		"Divide by 20+round first", "Divide by 20+round both",
	}
	if len(Variants) != len(want) {
		t.Fatalf("variants = %d", len(Variants))
	}
	for i, v := range Variants {
		if v.Name() != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.Name(), want[i])
		}
	}
	if Default.Name() != "Divide by 20 both" {
		t.Errorf("default variant = %q", Default.Name())
	}
}

func TestFamilyClassification(t *testing.T) {
	v4 := merged("192.0.2.1", "a", 1, baseReboot)
	v6 := merged("2001:db8::1", "a", 1, baseReboot)
	if (&Set{Members: []*filter.Merged{v4}}).Family() != V4Only {
		t.Error("v4-only misclassified")
	}
	if (&Set{Members: []*filter.Merged{v6}}).Family() != V6Only {
		t.Error("v6-only misclassified")
	}
	if (&Set{Members: []*filter.Merged{v4, v6}}).Family() != DualStack {
		t.Error("dual-stack misclassified")
	}
	if V4Only.String() != "IPv4-only" || V6Only.String() != "IPv6-only" || DualStack.String() != "dual-stack" {
		t.Error("family names wrong")
	}
}

func TestDualStackResolution(t *testing.T) {
	valid := []*filter.Merged{
		merged("192.0.2.1", "router", 9, baseReboot),
		merged("192.0.2.2", "router", 9, baseReboot),
		merged("2001:db8::1", "router", 9, baseReboot),
	}
	sets := Resolve(valid, Default)
	if len(sets) != 1 {
		t.Fatalf("dual-stack device split into %d sets", len(sets))
	}
	if sets[0].Family() != DualStack {
		t.Errorf("family = %v", sets[0].Family())
	}
}

func TestSummarize(t *testing.T) {
	sets := []*Set{
		{Members: make([]*filter.Merged, 5)},
		{Members: make([]*filter.Merged, 3)},
		{Members: make([]*filter.Merged, 1)},
	}
	st := Summarize(sets)
	if st.Sets != 3 || st.NonSingleton != 2 || st.IPsNonSingleton != 8 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.IPsPerNonSingleton(); got != 4.0 {
		t.Errorf("avg = %v", got)
	}
	if (Stats{}).IPsPerNonSingleton() != 0 {
		t.Error("empty stats avg should be 0")
	}
}

func TestSplitByFamily(t *testing.T) {
	valid := []*filter.Merged{
		merged("192.0.2.1", "a", 1, baseReboot),
		merged("2001:db8::1", "b", 1, baseReboot),
		merged("192.0.2.9", "c", 1, baseReboot),
		merged("2001:db8::9", "c", 1, baseReboot),
	}
	split := SplitByFamily(Resolve(valid, Default))
	if len(split[V4Only]) != 1 || len(split[V6Only]) != 1 || len(split[DualStack]) != 1 {
		t.Errorf("split = v4:%d v6:%d dual:%d",
			len(split[V4Only]), len(split[V6Only]), len(split[DualStack]))
	}
}

func TestResolveDeterministicOrder(t *testing.T) {
	valid := []*filter.Merged{
		merged("192.0.2.3", "b", 1, baseReboot),
		merged("192.0.2.1", "a", 1, baseReboot),
		merged("192.0.2.2", "a", 1, baseReboot),
	}
	s1 := Resolve(valid, Default)
	// Shuffle input order.
	valid2 := []*filter.Merged{valid[2], valid[0], valid[1]}
	s2 := Resolve(valid2, Default)
	if len(s1) != len(s2) {
		t.Fatal("set counts differ")
	}
	for i := range s1 {
		if s1[i].Size() != s2[i].Size() || s1[i].Members[0].IP != s2[i].Members[0].IP {
			t.Fatal("set ordering not deterministic")
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 20, 0}, {19, 20, 0}, {20, 20, 1}, {39, 20, 1},
		{-1, 20, -1}, {-20, 20, -1}, {-21, 20, -2}, {-40, 20, -2},
		{7, 10, 0}, {-7, 10, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// bin applies a binning rule to a raw Unix-seconds value.
func bin(b Binning, s int64) int64 { return b.apply(time.Unix(s, 0)) }

func TestBinningNegativeSeconds(t *testing.T) {
	// Truncating division would fold seconds -19..19 into one double-width
	// bin around the epoch; floor division keeps every bin 20 s wide, so
	// two timestamps one second apart across a bin edge always land in
	// adjacent bins — on both sides of zero.
	if got := bin(BinDiv20, -1); got != -1 {
		t.Errorf("BinDiv20(-1) = %d, want -1", got)
	}
	if got := bin(BinDiv20, -20); got != -1 {
		t.Errorf("BinDiv20(-20) = %d, want -1", got)
	}
	if got := bin(BinDiv20, -21); got != -2 {
		t.Errorf("BinDiv20(-21) = %d, want -2", got)
	}
	if a, b := bin(BinDiv20, -21), bin(BinDiv20, -20); a+1 != b {
		t.Errorf("bins across the -20 edge not adjacent: %d, %d", a, b)
	}

	// Round rules round half up everywhere, negatives included.
	if got := bin(BinRound, -5); got != 0 {
		t.Errorf("BinRound(-5) = %d, want 0", got)
	}
	if got := bin(BinRound, -6); got != -10 {
		t.Errorf("BinRound(-6) = %d, want -10", got)
	}
	if got := bin(BinDiv20Round, -10); got != 0 {
		t.Errorf("BinDiv20Round(-10) = %d, want 0", got)
	}
	if got := bin(BinDiv20Round, -11); got != -1 {
		t.Errorf("BinDiv20Round(-11) = %d, want -1", got)
	}
}

func TestBinningPositiveEdges(t *testing.T) {
	if got := bin(BinDiv20, 19); got != 0 {
		t.Errorf("BinDiv20(19) = %d, want 0", got)
	}
	if got := bin(BinDiv20, 20); got != 1 {
		t.Errorf("BinDiv20(20) = %d, want 1", got)
	}
	if got := bin(BinRound, 5); got != 10 {
		t.Errorf("BinRound(5) = %d, want 10", got)
	}
	if got := bin(BinRound, 4); got != 0 {
		t.Errorf("BinRound(4) = %d, want 0", got)
	}
	if got := bin(BinDiv20Round, 10); got != 1 {
		t.Errorf("BinDiv20Round(10) = %d, want 1", got)
	}
}
