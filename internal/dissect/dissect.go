// Package dissect renders SNMP messages as Wireshark-style protocol trees,
// reproducing the packet dissections of the paper's Figures 2 and 3.
package dissect

import (
	"fmt"
	"strings"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/snmp"
)

// Message dissects an SNMP datagram (any version) into an indented
// protocol tree.
func Message(payload []byte) (string, error) {
	version, err := snmp.PeekVersion(payload)
	if err != nil {
		return "", err
	}
	switch version {
	case snmp.V3:
		msg, err := snmp.DecodeV3(payload)
		if err != nil && err != snmp.ErrEncrypted {
			return "", err
		}
		return V3Message(msg), nil
	default:
		msg, err := snmp.DecodeCommunity(payload)
		if err != nil {
			return "", err
		}
		return communityMessage(msg), nil
	}
}

// V3Message renders an SNMPv3 message in the style of Figures 2 and 3.
func V3Message(m *snmp.V3Message) string {
	var b strings.Builder
	b.WriteString("Simple Network Management Protocol\n")
	fmt.Fprintf(&b, "    msgVersion: snmpv3 (3)\n")
	b.WriteString("    msgGlobalData\n")
	fmt.Fprintf(&b, "        msgID: %d\n", m.MsgID)
	fmt.Fprintf(&b, "        msgMaxSize: %d\n", m.MsgMaxSize)
	fmt.Fprintf(&b, "        msgFlags: 0x%02x (%s)\n", m.MsgFlags, flagString(m.MsgFlags))
	fmt.Fprintf(&b, "        msgSecurityModel: USM (%d)\n", m.MsgSecurityModel)
	writeEngineID(&b, m.USM.AuthoritativeEngineID)
	fmt.Fprintf(&b, "    msgAuthoritativeEngineBoots: %d\n", m.USM.AuthoritativeEngineBoots)
	fmt.Fprintf(&b, "    msgAuthoritativeEngineTime: %d\n", m.USM.AuthoritativeEngineTime)
	fmt.Fprintf(&b, "    msgUserName: %s\n", orMissing(string(m.USM.UserName)))
	fmt.Fprintf(&b, "    msgAuthenticationParameters: %s\n", orMissing(hexOrEmpty(m.USM.AuthenticationParameters)))
	fmt.Fprintf(&b, "    msgPrivacyParameters: %s\n", orMissing(hexOrEmpty(m.USM.PrivacyParameters)))
	if m.PrivFlag() {
		b.WriteString("    msgData: encryptedPDU (1)\n")
		return b.String()
	}
	b.WriteString("    msgData: plaintext (0)\n")
	if pdu := m.ScopedPDU.PDU; pdu != nil {
		fmt.Fprintf(&b, "        contextEngineID: %s\n", orMissing(hexOrEmpty(m.ScopedPDU.ContextEngineID)))
		fmt.Fprintf(&b, "        data: %s (0x%02x)\n", pdu.Type, byte(pdu.Type)&0x1F)
		fmt.Fprintf(&b, "            request-id: %d\n", pdu.RequestID)
		fmt.Fprintf(&b, "            error-status: %d\n", pdu.ErrorStatus)
		fmt.Fprintf(&b, "            error-index: %d\n", pdu.ErrorIndex)
		b.WriteString("            variable-bindings\n")
		for _, vb := range pdu.VarBinds {
			fmt.Fprintf(&b, "                %s: %s\n", snmp.OIDString(vb.Name), vb.Value)
		}
	}
	return b.String()
}

// writeEngineID renders the engine ID sub-tree with the RFC 3411
// conformance, enterprise, and format annotations of Figure 3.
func writeEngineID(b *strings.Builder, id []byte) {
	if len(id) == 0 {
		fmt.Fprintf(b, "    msgAuthoritativeEngineID: <MISSING>\n")
		return
	}
	fmt.Fprintf(b, "    msgAuthoritativeEngineID: %x\n", id)
	p := engineid.Classify(id)
	if p.Conformant {
		fmt.Fprintf(b, "        1... .... = Engine ID Conformance: RFC3411 (SNMPv3)\n")
		fmt.Fprintf(b, "        Engine Enterprise ID: %s (%d)\n", p.EnterpriseName(), p.Enterprise)
	} else {
		fmt.Fprintf(b, "        0... .... = Engine ID Conformance: RFC1910 (Non-SNMPv3)\n")
	}
	switch p.Format {
	case engineid.FormatMAC:
		mac, _ := p.MAC()
		vendor, _ := p.Vendor()
		if vendor == "" {
			vendor = "unknown"
		}
		fmt.Fprintf(b, "        Engine ID Format: MAC address (3)\n")
		fmt.Fprintf(b, "        Engine ID Data: %s (%02x:%02x:%02x:%02x:%02x:%02x)\n",
			vendor, mac[0], mac[1], mac[2], mac[3], mac[4], mac[5])
	case engineid.FormatIPv4:
		fmt.Fprintf(b, "        Engine ID Format: IPv4 address (1)\n")
		fmt.Fprintf(b, "        Engine ID Data: %d.%d.%d.%d\n", p.Data[0], p.Data[1], p.Data[2], p.Data[3])
	case engineid.FormatIPv6:
		fmt.Fprintf(b, "        Engine ID Format: IPv6 address (2)\n")
		fmt.Fprintf(b, "        Engine ID Data: %x\n", p.Data)
	case engineid.FormatText:
		fmt.Fprintf(b, "        Engine ID Format: text (4)\n")
		fmt.Fprintf(b, "        Engine ID Data: %q\n", p.Data)
	case engineid.FormatOctets:
		fmt.Fprintf(b, "        Engine ID Format: octets (5)\n")
		fmt.Fprintf(b, "        Engine ID Data: %x\n", p.Data)
	case engineid.FormatNetSNMP:
		fmt.Fprintf(b, "        Engine ID Format: Net-SNMP specific (128)\n")
		fmt.Fprintf(b, "        Engine ID Data: %x\n", p.Data)
	default:
		fmt.Fprintf(b, "        Engine ID Format: %s\n", p.Format)
		fmt.Fprintf(b, "        Engine ID Data: %x\n", p.Data)
	}
}

func communityMessage(m *snmp.CommunityMessage) string {
	var b strings.Builder
	b.WriteString("Simple Network Management Protocol\n")
	fmt.Fprintf(&b, "    version: %s (%d)\n", m.Version, int64(m.Version))
	fmt.Fprintf(&b, "    community: %s\n", m.Community)
	fmt.Fprintf(&b, "    data: %s (0x%02x)\n", m.PDU.Type, byte(m.PDU.Type)&0x1F)
	fmt.Fprintf(&b, "        request-id: %d\n", m.PDU.RequestID)
	fmt.Fprintf(&b, "        error-status: %d\n", m.PDU.ErrorStatus)
	fmt.Fprintf(&b, "        error-index: %d\n", m.PDU.ErrorIndex)
	b.WriteString("        variable-bindings\n")
	for _, vb := range m.PDU.VarBinds {
		fmt.Fprintf(&b, "            %s: %s\n", snmp.OIDString(vb.Name), vb.Value)
	}
	return b.String()
}

func flagString(f byte) string {
	var parts []string
	if f&snmp.FlagAuth != 0 {
		parts = append(parts, "auth")
	}
	if f&snmp.FlagPriv != 0 {
		parts = append(parts, "priv")
	}
	if f&snmp.FlagReportable != 0 {
		parts = append(parts, "reportable")
	}
	if len(parts) == 0 {
		return "noAuthNoPriv"
	}
	return strings.Join(parts, "|")
}

func orMissing(s string) string {
	if s == "" {
		return "<MISSING>"
	}
	return s
}

func hexOrEmpty(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return fmt.Sprintf("%x", b)
}
