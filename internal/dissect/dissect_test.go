package dissect

import (
	"strings"
	"testing"

	"snmpv3fp/internal/snmp"
)

func TestDissectDiscoveryRequest(t *testing.T) {
	wire, err := snmp.EncodeDiscoveryRequest(821490644, 1565454380)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Message(wire)
	if err != nil {
		t.Fatal(err)
	}
	// The elements of the paper's Figure 2.
	for _, want := range []string{
		"msgVersion: snmpv3 (3)",
		"msgGlobalData",
		"msgAuthoritativeEngineID: <MISSING>",
		"msgAuthoritativeEngineBoots: 0",
		"msgAuthoritativeEngineTime: 0",
		"msgUserName: <MISSING>",
		"msgAuthenticationParameters: <MISSING>",
		"msgPrivacyParameters: <MISSING>",
		"msgData: plaintext (0)",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("missing %q in:\n%s", want, tree)
		}
	}
}

func TestDissectFigure3Response(t *testing.T) {
	// Reconstruct the paper's Figure 3: Brocade, boots 148, time 10043812.
	req := snmp.NewDiscoveryRequest(1, 1)
	rep := snmp.NewDiscoveryReport(req,
		[]byte{0x80, 0x00, 0x07, 0xc7, 0x03, 0x74, 0x8e, 0xf8, 0x31, 0xdb, 0x80},
		148, 10043812, 1)
	wire, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Message(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"msgAuthoritativeEngineID: 800007c703748ef831db80",
		"1... .... = Engine ID Conformance: RFC3411 (SNMPv3)",
		"Engine Enterprise ID: Foundry (1991)",
		"Engine ID Format: MAC address (3)",
		"Engine ID Data: Brocade (74:8e:f8:31:db:80)",
		"msgAuthoritativeEngineBoots: 148",
		"msgAuthoritativeEngineTime: 10043812",
		"report",
		"1.3.6.1.6.3.15.1.1.4.0",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("missing %q in:\n%s", want, tree)
		}
	}
}

func TestDissectEngineIDFormats(t *testing.T) {
	cases := []struct {
		id   []byte
		want string
	}{
		{[]byte{0x80, 0x00, 0x00, 0x09, 0x01, 192, 0, 2, 1}, "IPv4 address (1)"},
		{append([]byte{0x80, 0x00, 0x00, 0x09, 0x02}, make([]byte, 16)...), "IPv6 address (2)"},
		{[]byte{0x80, 0x00, 0x00, 0x09, 0x04, 'r', 't', 'r'}, "text (4)"},
		{[]byte{0x80, 0x00, 0x00, 0x09, 0x05, 1, 2, 3}, "octets (5)"},
		{[]byte{0x80, 0x00, 0x1f, 0x88, 0x80, 1, 2, 3, 4, 5, 6, 7, 8}, "Net-SNMP specific (128)"},
		{[]byte{0x03, 0x00, 0xe0, 0xac, 0xf1}, "RFC1910 (Non-SNMPv3)"},
	}
	for _, c := range cases {
		req := snmp.NewDiscoveryRequest(1, 1)
		rep := snmp.NewDiscoveryReport(req, c.id, 1, 1, 1)
		wire, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tree, err := Message(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(tree, c.want) {
			t.Errorf("engine ID %x: missing %q in:\n%s", c.id, c.want, tree)
		}
	}
}

func TestDissectCommunityMessage(t *testing.T) {
	wire, err := snmp.NewGetRequest(snmp.V2c, "public", 42, snmp.OIDSysDescr).Encode()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Message(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"version: snmpv2c (1)",
		"community: public",
		"get-request",
		"request-id: 42",
		"1.3.6.1.2.1.1.1.0: null",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("missing %q in:\n%s", want, tree)
		}
	}
}

func TestDissectEncrypted(t *testing.T) {
	msg := &snmp.V3Message{
		MsgID: 5, MsgMaxSize: 65507,
		MsgFlags:         snmp.FlagAuth | snmp.FlagPriv,
		MsgSecurityModel: snmp.SecurityModelUSM,
		USM: snmp.USMSecurityParameters{
			AuthoritativeEngineID: []byte{0x80, 0, 0, 9, 3, 1, 2, 3, 4, 5, 6},
		},
		ScopedPDU: snmp.ScopedPDU{PDU: &snmp.PDU{Type: snmp.PDUGetRequest}},
	}
	wire, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Message(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree, "msgData: encryptedPDU (1)") {
		t.Errorf("missing encrypted marker in:\n%s", tree)
	}
	if !strings.Contains(tree, "auth|priv") {
		t.Errorf("missing flags in:\n%s", tree)
	}
}

func TestDissectGarbage(t *testing.T) {
	if _, err := Message([]byte("junk")); err == nil {
		t.Error("garbage dissected")
	}
	if _, err := Message(nil); err == nil {
		t.Error("nil dissected")
	}
}
