// Package serve exposes a fingerprint store over an HTTP JSON API — the
// query side of cmd/snmpfpd. Every handler works on one store.View
// snapshot, so each response is internally consistent (its alias sets,
// tallies and stats all describe the same instant) no matter how much
// ingest happens concurrently.
//
// Endpoints:
//
//	GET /v1/ip/{addr}          current identity + full observation history
//	                           (?protocol= selects a probe module's evidence)
//	GET /v1/device/{engineID}  alias sets + every IP ever seen for the device
//	GET /v1/vendors            devices per vendor over the latest pair
//	GET /v1/reboots/{addr}     longitudinal reboot timeline and events
//	GET /v1/fusion             cross-protocol alias fusion report
//	                           (?protocols= restricts the fused evidence)
//	GET /v1/stats              store and server counters
//	GET /v1/metrics            Prometheus text exposition of the obs registry
//
// Errors share one versioned JSON envelope, {"error":{"code","message"}},
// with stable machine-readable codes (ErrCodeBadRequest and friends).
//
// Every handler accepts the request context and runs on one store.View
// snapshot; per-endpoint request counters and latency histograms land in
// the configured obs.Registry (WithObs), which /v1/metrics re-serves.
package serve

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/fusion"
	"snmpv3fp/internal/lru"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/store"
)

// timeLayout renders timestamps as the records package does.
const timeLayout = time.RFC3339Nano

// Source is anything that can produce consistent store snapshots — a
// primary *store.Store or a read-only *store.Replica. Every handler works
// on one snapshot per request.
type Source interface {
	Snapshot() *store.View
}

// defaultResultCacheBytes bounds the hot-response cache when the caller
// doesn't size it explicitly.
const defaultResultCacheBytes = 32 << 20

// Server routes API requests to a store.
type Server struct {
	st  Source
	mux *http.ServeMux
	reg *obs.Registry

	// results caches encoded 200 bodies of view-pure endpoints, keyed by
	// (view generation, path, query); nil when disabled.
	results *lru.Cache[[]byte]

	reqIP, reqDevice, reqVendors, reqReboots, reqStats, reqMetrics atomic.Uint64
	reqFusion                                                      atomic.Uint64
	errors                                                         atomic.Uint64
	cacheBytes                                                     int64
}

// Option configures a Server.
type Option func(*Server)

// WithObs attaches a metrics registry: per-endpoint request counters and
// latency histograms are recorded into it, and /v1/metrics serves its full
// exposition (including any scanner/store/netsim families other layers
// registered on the same registry). Without this option the server keeps a
// private registry, so /v1/metrics always works.
func WithObs(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.reg = reg
		}
	}
}

// WithResultCache sizes the hot-response cache: encoded 200 bodies of the
// view-pure endpoints (/v1/ip, /v1/device, /v1/vendors, /v1/reboots,
// /v1/fusion) are cached keyed by the store's view generation, so a burst
// of identical queries between ingests costs one snapshot walk and one JSON
// encode. maxBytes <= 0 disables the cache. Without this option the server
// uses defaultResultCacheBytes.
func WithResultCache(maxBytes int64) Option {
	return func(s *Server) { s.cacheBytes = maxBytes }
}

// handlerFunc is an API handler: the request context is passed explicitly
// so cancellation propagates without each handler re-deriving it.
type handlerFunc func(ctx context.Context, w http.ResponseWriter, r *http.Request)

// New builds a server over a snapshot source — a primary store or a read
// replica.
func New(st Source, opts ...Option) *Server {
	s := &Server{st: st, mux: http.NewServeMux(), reg: obs.NewRegistry(), cacheBytes: defaultResultCacheBytes}
	for _, opt := range opts {
		opt(s)
	}
	if s.cacheBytes > 0 {
		s.results = lru.New[[]byte](s.cacheBytes)
	}
	s.reg.Help("snmpfp_http_requests_total", "API requests by endpoint")
	s.reg.Help("snmpfp_http_request_duration_seconds", "API request latency by endpoint")
	s.registerCacheMetrics()
	s.route("GET /v1/ip/{addr}", "ip", &s.reqIP, s.cached(s.handleIP))
	s.route("GET /v1/device/{engineID}", "device", &s.reqDevice, s.cached(s.handleDevice))
	s.route("GET /v1/vendors", "vendors", &s.reqVendors, s.cached(s.handleVendors))
	s.route("GET /v1/reboots/{addr}", "reboots", &s.reqReboots, s.cached(s.handleReboots))
	s.route("GET /v1/fusion", "fusion", &s.reqFusion, s.cached(s.handleFusion))
	s.route("GET /v1/stats", "stats", &s.reqStats, s.handleStats)
	s.route("GET /v1/metrics", "metrics", &s.reqMetrics, s.handleMetrics)
	return s
}

// registerCacheMetrics exposes result-cache effectiveness in the registry.
func (s *Server) registerCacheMetrics() {
	if s.results == nil {
		return
	}
	s.reg.Help("snmpfp_serve_result_cache_hits_total", "Result cache hits")
	s.reg.Help("snmpfp_serve_result_cache_misses_total", "Result cache misses")
	s.reg.Help("snmpfp_serve_result_cache_bytes", "Result cache resident bytes")
	s.reg.CounterFunc("snmpfp_serve_result_cache_hits_total", s.results.Hits)
	s.reg.CounterFunc("snmpfp_serve_result_cache_misses_total", s.results.Misses)
	s.reg.GaugeFunc("snmpfp_serve_result_cache_bytes", func() float64 { return float64(s.results.Bytes()) })
}

// resultRecorder tees a handler's response so a 200 body can be cached.
// Error responses pass through uncached.
type resultRecorder struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
}

func (rr *resultRecorder) WriteHeader(status int) {
	rr.status = status
	rr.ResponseWriter.WriteHeader(status)
}

func (rr *resultRecorder) Write(p []byte) (int, error) {
	if rr.status == 0 {
		rr.status = http.StatusOK
	}
	if rr.status == http.StatusOK {
		rr.body.Write(p)
	}
	return rr.ResponseWriter.Write(p)
}

// cached wraps a view-pure handler with the result cache. The key includes
// the store's view generation, so any ingest, flush or replica commit that
// changes visible state invalidates every cached response at once — two
// identical GETs with an ingest between them can never serve the same
// bytes from cache.
func (s *Server) cached(h handlerFunc) handlerFunc {
	if s.results == nil {
		return h
	}
	return func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		version := s.st.Snapshot().Stats().Version
		key := strconv.FormatUint(version, 16) + "\x00" + r.URL.Path + "\x00" + r.URL.RawQuery
		if body, ok := s.results.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			if _, err := w.Write(body); err != nil {
				s.errors.Add(1)
			}
			return
		}
		rr := &resultRecorder{ResponseWriter: w}
		h(ctx, rr, r)
		if rr.status == http.StatusOK && rr.body.Len() > 0 {
			body := append([]byte(nil), rr.body.Bytes()...)
			s.results.Put(key, body, int64(len(body))+int64(len(key)))
		}
	}
}

// route registers one instrumented endpoint: it counts the request (both
// the legacy per-endpoint atomic and the metrics registry), rejects
// already-cancelled requests, times the handler and records the latency.
func (s *Server) route(pattern, endpoint string, legacy *atomic.Uint64, h handlerFunc) {
	reqs := s.reg.Counter("snmpfp_http_requests_total", obs.L("endpoint", endpoint))
	lat := s.reg.Histogram("snmpfp_http_request_duration_seconds", nil, obs.L("endpoint", endpoint))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		legacy.Add(1)
		reqs.Inc()
		ctx := r.Context()
		if ctx.Err() != nil {
			s.errors.Add(1)
			writeError(w, http.StatusServiceUnavailable, ErrCodeCanceled, "request context cancelled")
			return
		}
		start := time.Now()
		h(ctx, w, r)
		lat.ObserveDuration(time.Since(start))
	})
}

// Handler returns the API handler.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler directly. Requests no route matches get
// the JSON error envelope rather than the mux's plain-text page, while
// preserving the mux's 404-vs-405 decision (a known path hit with the wrong
// method still reports method_not_allowed with its Allow header).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		sink := discardWriter{header: make(http.Header)}
		s.mux.ServeHTTP(&sink, r)
		s.errors.Add(1)
		if sink.status == http.StatusMethodNotAllowed {
			if allow := sink.header.Get("Allow"); allow != "" {
				w.Header().Set("Allow", allow)
			}
			writeError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, "method not allowed")
			return
		}
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown endpoint")
		return
	}
	s.mux.ServeHTTP(w, r)
}

// discardWriter captures the status and headers the mux's built-in
// not-found / method-not-allowed handlers would send, dropping the body.
type discardWriter struct {
	header http.Header
	status int
}

func (d *discardWriter) Header() http.Header         { return d.header }
func (d *discardWriter) WriteHeader(status int)      { d.status = status }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// WireVendorInfo is the vendor inference block attached to identities.
type WireVendorInfo struct {
	Vendor string `json:"vendor"`
	// Source is "oui", "enterprise" or "" (unknown).
	Source string `json:"source,omitempty"`
	Format string `json:"format"`
}

func vendorInfo(engineID []byte) WireVendorInfo {
	fp := core.FingerprintEngineID(engineID)
	return WireVendorInfo{Vendor: fp.VendorLabel(), Source: fp.Source, Format: fp.Format.String()}
}

// WireSample is one stored observation on the wire.
type WireSample struct {
	Campaign     uint64 `json:"campaign"`
	EngineID     string `json:"engine_id"`
	Boots        int64  `json:"boots"`
	EngineTime   int64  `json:"engine_time"`
	ReceivedAt   string `json:"received_at"`
	LastReboot   string `json:"last_reboot"`
	Packets      int    `json:"packets"`
	Inconsistent bool   `json:"inconsistent,omitempty"`
}

func wireSample(sm store.Sample) WireSample {
	return WireSample{
		Campaign:     sm.Campaign,
		EngineID:     hex.EncodeToString(sm.EngineID),
		Boots:        sm.Boots,
		EngineTime:   sm.EngineTime,
		ReceivedAt:   sm.ReceivedAt.UTC().Format(timeLayout),
		LastReboot:   sm.LastReboot().UTC().Format(timeLayout),
		Packets:      sm.Packets,
		Inconsistent: sm.Inconsistent,
	}
}

// WireIP is the /v1/ip response.
type WireIP struct {
	IP      string         `json:"ip"`
	Latest  WireSample     `json:"latest"`
	Vendor  WireVendorInfo `json:"vendor"`
	History []WireSample   `json:"history"`
}

// WireDevice is the /v1/device response.
type WireDevice struct {
	EngineID string         `json:"engine_id"`
	Vendor   WireVendorInfo `json:"vendor"`
	// AliasSets are the validated alias sets of the latest campaign pair
	// carrying this engine ID (one per boots/reboot tuple).
	AliasSets []store.AliasSet `json:"alias_sets"`
	// EverIPs is the all-time per-engine-ID index: every IP that ever
	// reported the engine ID, validated or not.
	EverIPs []netip.Addr `json:"ever_ips"`
}

// WireVendors is the /v1/vendors response. The Vendors slice is
// byte-identical to the batch pipeline's tally on the same campaigns.
type WireVendors struct {
	Campaigns uint64              `json:"campaigns"`
	Sets      int                 `json:"sets"`
	Vendors   []store.VendorCount `json:"vendors"`
}

// WireTimelineSample is one campaign in a reboot timeline.
type WireTimelineSample struct {
	Campaign   uint64 `json:"campaign"`
	Responsive bool   `json:"responsive"`
	At         string `json:"at,omitempty"`
	EngineID   string `json:"engine_id,omitempty"`
	Boots      int64  `json:"boots,omitempty"`
	LastReboot string `json:"last_reboot,omitempty"`
}

// WireReboots is the /v1/reboots response.
type WireReboots struct {
	IP           string               `json:"ip"`
	Campaigns    uint64               `json:"campaigns"`
	Samples      []WireTimelineSample `json:"samples"`
	Events       []string             `json:"events"`
	Reboots      int                  `json:"reboots"`
	Availability float64              `json:"availability"`
}

// WireStats is the /v1/stats response.
type WireStats struct {
	Store store.Stats       `json:"store"`
	Serve map[string]uint64 `json:"serve"`
}

// WireEvidenceSample is one stored protocol-evidence observation — the
// multi-protocol counterpart of WireSample. The key is the probe module's
// device-identity string (readable ASCII), not a hex engine ID.
type WireEvidenceSample struct {
	Campaign     uint64 `json:"campaign"`
	Key          string `json:"key"`
	ReceivedAt   string `json:"received_at"`
	Packets      int    `json:"packets"`
	Inconsistent bool   `json:"inconsistent,omitempty"`
}

// WireProtocolIP is the /v1/ip response when ?protocol= selects a non-SNMP
// probe module's evidence.
type WireProtocolIP struct {
	IP       string               `json:"ip"`
	Protocol string               `json:"protocol"`
	History  []WireEvidenceSample `json:"history"`
}

func (s *Server) handleIP(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	addr, ok := s.parseAddr(w, r)
	if !ok {
		return
	}
	v := s.st.Snapshot()
	if proto := r.URL.Query().Get("protocol"); proto != "" && proto != "snmpv3" {
		if _, err := probe.Get(proto); err != nil {
			s.protocolError(w, err)
			return
		}
		h := v.HistoryProtocol(addr, proto)
		if len(h) == 0 {
			s.notFound(w, "ip never observed by "+proto)
			return
		}
		out := WireProtocolIP{
			IP:       addr.String(),
			Protocol: proto,
			History:  make([]WireEvidenceSample, 0, len(h)),
		}
		for _, sm := range h {
			out.History = append(out.History, WireEvidenceSample{
				Campaign:     sm.Campaign,
				Key:          string(sm.EngineID),
				ReceivedAt:   sm.ReceivedAt.UTC().Format(timeLayout),
				Packets:      sm.Packets,
				Inconsistent: sm.Inconsistent,
			})
		}
		s.writeJSON(w, out)
		return
	}
	latest, ok := v.Latest(addr)
	if !ok {
		s.notFound(w, "ip never observed")
		return
	}
	h := v.History(addr)
	out := WireIP{
		IP:      addr.String(),
		Latest:  wireSample(latest),
		Vendor:  vendorInfo(latest.EngineID),
		History: make([]WireSample, 0, len(h)),
	}
	for _, sm := range h {
		out.History = append(out.History, wireSample(sm))
	}
	s.writeJSON(w, out)
}

func (s *Server) handleDevice(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	hexID := r.PathValue("engineID")
	id, err := hex.DecodeString(hexID)
	if err != nil || len(id) == 0 {
		s.badRequest(w, "engine ID must be non-empty hex")
		return
	}
	v := s.st.Snapshot()
	ever := v.DeviceIPs(id)
	sets := v.SetsForEngine(hexID)
	if len(ever) == 0 && len(sets) == 0 {
		s.notFound(w, "engine ID never observed")
		return
	}
	if sets == nil {
		sets = []store.AliasSet{}
	}
	s.writeJSON(w, WireDevice{
		EngineID:  hexID,
		Vendor:    vendorInfo(id),
		AliasSets: sets,
		EverIPs:   ever,
	})
}

func (s *Server) handleVendors(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	v := s.st.Snapshot()
	vendors := v.Vendors()
	if vendors == nil {
		vendors = []store.VendorCount{}
	}
	s.writeJSON(w, WireVendors{
		Campaigns: v.Campaigns(),
		Sets:      len(v.AliasSets()),
		Vendors:   vendors,
	})
}

func (s *Server) handleReboots(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	addr, ok := s.parseAddr(w, r)
	if !ok {
		return
	}
	v := s.st.Snapshot()
	tl := v.Timeline(addr)
	if tl == nil {
		s.notFound(w, "ip never observed")
		return
	}
	out := WireReboots{
		IP:           addr.String(),
		Campaigns:    v.Campaigns(),
		Samples:      make([]WireTimelineSample, 0, len(tl.Samples)),
		Reboots:      tl.Reboots(),
		Availability: tl.Availability(),
	}
	for i, sm := range tl.Samples {
		ws := WireTimelineSample{Campaign: uint64(i + 1), Responsive: sm.Responsive}
		if sm.Responsive {
			ws.At = sm.At.UTC().Format(timeLayout)
			ws.EngineID = hex.EncodeToString(sm.EngineID)
			ws.Boots = sm.Boots
			ws.LastReboot = sm.LastReboot.UTC().Format(timeLayout)
		}
		out.Samples = append(out.Samples, ws)
	}
	for _, e := range tl.Transitions() {
		out.Events = append(out.Events, e.String())
	}
	if out.Events == nil {
		out.Events = []string{}
	}
	s.writeJSON(w, out)
}

// WireFusion is the /v1/fusion response: the cross-protocol alias fusion
// report over the latest campaign's evidence.
type WireFusion struct {
	Campaign uint64         `json:"campaign"`
	Report   *fusion.Report `json:"report"`
}

// defaultFusionWeight is the vote weight for protocols found in the store
// but not in the probe-module registry (evidence ingested by an external
// tool, or a module since removed): trusted less than any built-in module.
const defaultFusionWeight = 0.5

func (s *Server) handleFusion(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	v := s.st.Snapshot()
	campaign := v.Campaigns()
	if campaign == 0 {
		s.notFound(w, "no campaigns ingested")
		return
	}
	byProto := v.FusionEvidence(campaign)
	if q := r.URL.Query().Get("protocols"); q != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(q, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := probe.Get(name); err != nil {
				s.protocolError(w, err)
				return
			}
			want[name] = true
		}
		for name := range byProto {
			if !want[name] {
				delete(byProto, name)
			}
		}
	}
	ev := make([]fusion.ProtocolEvidence, 0, len(byProto))
	for name, groups := range byProto {
		weight := defaultFusionWeight
		if m, err := probe.Get(name); err == nil {
			weight = m.Weight()
		}
		ev = append(ev, fusion.ProtocolEvidence{Protocol: name, Weight: weight, Groups: groups})
	}
	// Fuse sorts the evidence itself, so map iteration order is harmless.
	s.writeJSON(w, WireFusion{Campaign: campaign, Report: fusion.Fuse(ev)})
}

func (s *Server) handleStats(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, WireStats{
		Store: s.st.Snapshot().Stats(),
		Serve: map[string]uint64{
			"ip":      s.reqIP.Load(),
			"device":  s.reqDevice.Load(),
			"vendors": s.reqVendors.Load(),
			"reboots": s.reqReboots.Load(),
			"fusion":  s.reqFusion.Load(),
			"stats":   s.reqStats.Load(),
			"metrics": s.reqMetrics.Load(),
			"errors":  s.errors.Load(),
		},
	})
}

// metricsContentType is the Prometheus text exposition format version the
// registry writes.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) handleMetrics(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metricsContentType)
	if err := s.reg.WritePrometheus(w); err != nil {
		s.errors.Add(1)
	}
}

func (s *Server) parseAddr(w http.ResponseWriter, r *http.Request) (netip.Addr, bool) {
	addr, err := netip.ParseAddr(r.PathValue("addr"))
	if err != nil {
		s.badRequest(w, "bad address: "+err.Error())
		return netip.Addr{}, false
	}
	return addr, true
}

// jsonBufPool recycles the encode buffers behind writeJSON and writeError,
// so steady-state request handling reuses a few warm buffers instead of
// growing a fresh one per response.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeJSONPooled marshals v into a pooled buffer and writes it out in one
// Write (with an exact Content-Length). Encoding before touching the
// ResponseWriter also means an encode failure never emits a half-written
// 200 body.
func encodeJSONPooled(w http.ResponseWriter, status int, v any) error {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	_, err := w.Write(buf.Bytes())
	jsonBufPool.Put(buf)
	return err
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	if err := encodeJSONPooled(w, http.StatusOK, v); err != nil {
		s.errors.Add(1)
	}
}

// Stable machine-readable error codes carried in the error envelope.
// Clients should switch on the code, not the HTTP status or message text.
const (
	ErrCodeBadRequest       = "bad_request"
	ErrCodeNotFound         = "not_found"
	ErrCodeMethodNotAllowed = "method_not_allowed"
	ErrCodeCanceled         = "canceled"
	// ErrCodeUnknownProtocol reports a ?protocol=/?protocols= name that is
	// not a registered probe module; /v1/ip and /v1/fusion share it.
	ErrCodeUnknownProtocol = "unknown_protocol"
)

// WireError is the versioned error envelope every failing endpoint returns:
// {"error":{"code":"...","message":"..."}}.
type WireError struct {
	Error WireErrorBody `json:"error"`
}

// WireErrorBody is the inner error object.
type WireErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.errors.Add(1)
	writeError(w, http.StatusBadRequest, ErrCodeBadRequest, msg)
}

func (s *Server) notFound(w http.ResponseWriter, msg string) {
	s.errors.Add(1)
	writeError(w, http.StatusNotFound, ErrCodeNotFound, msg)
}

// protocolError maps probe-module lookup failures onto the envelope:
// probe.ErrUnknownProtocol gets its stable code so /v1/ip and /v1/fusion
// report protocol-specific failures consistently; anything else degrades to
// plain bad_request.
func (s *Server) protocolError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	code := ErrCodeBadRequest
	if errors.Is(err, probe.ErrUnknownProtocol) {
		code = ErrCodeUnknownProtocol
	}
	writeError(w, http.StatusBadRequest, code, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	_ = encodeJSONPooled(w, status, WireError{Error: WireErrorBody{Code: code, Message: msg}})
}
