package serve

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"snmpv3fp/internal/store"
)

// TestResultCacheInvalidation is the cache-coherence regression: two
// identical GETs with an ingest between them must observe different state.
// The cache key carries the store's view generation, so the second request
// misses and re-encodes from a fresh snapshot.
func TestResultCacheInvalidation(t *testing.T) {
	st, _, _ := seedStore(t)
	srv := New(st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := get(t, ts, "/v1/ip/192.0.2.3", 200, nil)
	second := get(t, ts, "/v1/ip/192.0.2.3", 200, nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("identical GETs with no ingest diverge:\n%s\n%s", first, second)
	}
	if srv.results.Hits() == 0 {
		t.Fatal("second identical GET was not a cache hit")
	}

	// Ingest a third campaign touching the same IP; the next GET must see it.
	idB := engID(2636, 0x11, 0x22, 0x33, 0x44)
	st.AddCampaign(mkCampaign(mkObs("192.0.2.3", idB, 6, 100+86400, t0.Add(48*time.Hour))))
	third := get(t, ts, "/v1/ip/192.0.2.3", 200, nil)
	if bytes.Equal(second, third) {
		t.Fatalf("GET after ingest served stale cached bytes: %s", third)
	}
	var out WireIP
	get(t, ts, "/v1/ip/192.0.2.3", 200, &out)
	if len(out.History) != 3 {
		t.Fatalf("post-ingest history has %d samples, want 3", len(out.History))
	}
}

// TestResultCacheDisabled: WithResultCache(0) keeps every request on the
// snapshot path.
func TestResultCacheDisabled(t *testing.T) {
	st, _, _ := seedStore(t)
	srv := New(st, WithResultCache(0))
	if srv.results != nil {
		t.Fatal("cache allocated despite WithResultCache(0)")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	a := get(t, ts, "/v1/vendors", 200, nil)
	b := get(t, ts, "/v1/vendors", 200, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("uncached identical GETs diverge")
	}
}

// severedConn cuts the byte stream after a fixed read budget, simulating a
// replica dying partway through the initial segment ship.
type severedConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

var errSevered = errors.New("connection severed by test")

func (c *severedConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.budget <= 0 {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, errSevered
	}
	if len(p) > c.budget {
		p = p[:c.budget]
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.budget -= n
	c.mu.Unlock()
	return n, err
}

// TestReplicaSmoke is the end-to-end read scale-out contract behind
// `make replica-smoke`: one durable ingesting primary, two replicas syncing
// over loopback TCP — one of which dies mid-ship and reconnects — and every
// /v1/* endpoint, /v1/stats included, answering byte-identically on all
// three servers once the replicas catch up.
func TestReplicaSmoke(t *testing.T) {
	idA := engID(9, 0xAA, 0xBB, 0xCC, 0xDD)
	idB := engID(2636, 0x11, 0x22, 0x33, 0x44)
	prim, err := store.Open(store.Options{Dir: t.TempDir(), FlushThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	day := 24 * time.Hour
	for n := 0; n < 3; n++ {
		prim.AddCampaign(mkCampaign(
			mkObs("192.0.2.1", idA, 2, 1000+86400*int64(n), t0.Add(time.Duration(n)*day)),
			mkObs("192.0.2.2", idA, 2, 1000+86400*int64(n), t0.Add(time.Duration(n)*day)),
			mkObs("192.0.2.3", idB, 5+int64(n), 500, t0.Add(time.Duration(n)*day)),
		))
	}
	// Everything into segments: the memtable is not shipped.
	if err := prim.Flush(); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = prim.ServeReplication(ln) }()
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	// Replica 1: healthy sync from the start.
	r1, err := store.OpenReplica(store.ReplicaOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	go func() { _ = r1.SyncLoop(ctx, addr) }()

	// Replica 2: first connection severed mid-ship, then a clean reconnect.
	r2, err := store.OpenReplica(store.ReplicaOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Sync(ctx, &severedConn{Conn: raw, budget: 500}); err == nil {
		t.Fatal("severed sync reported success")
	}
	go func() { _ = r2.SyncLoop(ctx, addr) }()

	want := prim.Snapshot().Stats().Version
	deadline := time.Now().Add(15 * time.Second)
	for r1.Snapshot().Stats().Version != want || r2.Snapshot().Stats().Version != want {
		if time.Now().After(deadline) {
			t.Fatalf("replicas never caught up to version %d (r1 %d, r2 %d)",
				want, r1.Snapshot().Stats().Version, r2.Snapshot().Stats().Version)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Three servers, one Source each. The same request sequence runs against
	// all three — ending with /v1/stats — so the per-endpoint serve counters
	// agree too and every body can be compared byte-for-byte.
	servers := map[string]*httptest.Server{
		"primary":  httptest.NewServer(New(prim).Handler()),
		"replica1": httptest.NewServer(New(r1).Handler()),
		"replica2": httptest.NewServer(New(r2).Handler()),
	}
	for _, ts := range servers {
		defer ts.Close()
	}
	paths := []string{
		"/v1/ip/192.0.2.1",
		"/v1/ip/192.0.2.3",
		"/v1/device/" + hex.EncodeToString(idA),
		"/v1/vendors",
		"/v1/reboots/192.0.2.3",
		"/v1/fusion",
		"/v1/stats",
	}
	for _, path := range paths {
		ref := get(t, servers["primary"], path, 200, nil)
		for _, name := range []string{"replica1", "replica2"} {
			got := get(t, servers[name], path, 200, nil)
			if !bytes.Equal(ref, got) {
				t.Fatalf("GET %s diverges on %s:\nprimary %s\n%s %s", path, name, ref, name, got)
			}
		}
	}
}
