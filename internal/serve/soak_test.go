package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/store"
)

// TestSoakIngestVsQueries races continuous campaign ingest against clients
// hammering every endpoint. Each response must be well-formed and internally
// consistent — a reader must never observe a half-applied ingest step. Run
// under -race (the CI "race" target) this doubles as the data-race soak for
// the whole store+serve stack.
func TestSoakIngestVsQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	const (
		campaigns = 10
		ips       = 120
		clients   = 4
	)
	st, err := store.Open(store.Options{FlushThreshold: 64, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(New(st))
	defer ts.Close()

	// Seed one campaign so early readers have data.
	ingestCampaign(t, st, 1, ips)

	var (
		done     atomic.Bool
		queries  atomic.Uint64
		statuses [clients]error
		wg       sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := ts.Client()
			for i := 0; !done.Load(); i++ {
				var err error
				switch i % 5 {
				case 0:
					err = checkIP(cl, ts.URL, fmt.Sprintf("10.1.%d.%d", i%ips/256, i%ips%256+1))
				case 1:
					err = checkVendors(cl, ts.URL)
				case 2:
					err = checkStats(cl, ts.URL)
				case 3:
					err = checkReboots(cl, ts.URL, fmt.Sprintf("10.1.0.%d", i%ips%250+1))
				case 4:
					err = checkDeviceSweep(cl, ts.URL)
				}
				if err != nil {
					statuses[c] = fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
				queries.Add(1)
			}
		}(c)
	}

	for n := uint64(2); n <= campaigns; n++ {
		ingestCampaign(t, st, n, ips)
	}
	// Ingest may outrun the clients; keep serving until every client has
	// exercised each endpoint at least a few times.
	deadline := time.Now().Add(10 * time.Second)
	for queries.Load() < clients*25 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done.Store(true)
	wg.Wait()
	for _, err := range statuses {
		if err != nil {
			t.Fatal(err)
		}
	}
	if queries.Load() < clients*25 {
		t.Fatalf("only %d queries completed", queries.Load())
	}
	t.Logf("soak: %d queries against %d campaigns", queries.Load(), campaigns)

	// Final state sanity once ingest is quiescent.
	v := st.Snapshot()
	if got := v.Stats().Ingested; got != campaigns*ips {
		t.Fatalf("ingested %d, want %d", got, campaigns*ips)
	}
}

// ingestCampaign writes campaign n: every IP responsive with a stable
// engine ID and coherent uptime, so alias sets are non-trivial throughout.
func ingestCampaign(t *testing.T, st *store.Store, n uint64, ips int) {
	t.Helper()
	st.BeginCampaign()
	at := t0.Add(time.Duration(n) * 24 * time.Hour)
	for i := 0; i < ips; i++ {
		device := i / 2 // two IPs per device
		id := engID(9, byte(device>>8), byte(device), 0x01, 0x02)
		o := &core.Observation{
			IP:          netip.MustParseAddr(fmt.Sprintf("10.1.%d.%d", i/256, i%256+1)),
			EngineID:    id,
			EngineBoots: 3,
			EngineTime:  int64(n) * 86400,
			ReceivedAt:  at,
			Packets:     1,
		}
		if err := st.Add(o); err != nil {
			t.Fatal(err)
		}
	}
}

func soakGet(cl *http.Client, url string, out any) (int, error) {
	resp, err := cl.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return 0, fmt.Errorf("bad JSON: %w (%s)", err, body)
		}
	}
	return resp.StatusCode, nil
}

func checkIP(cl *http.Client, base, addr string) error {
	var out WireIP
	code, err := soakGet(cl, base+"/v1/ip/"+addr, &out)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/v1/ip/%s: code %d", addr, code)
	}
	if len(out.History) == 0 {
		return fmt.Errorf("/v1/ip/%s: empty history", addr)
	}
	last := out.History[len(out.History)-1]
	if last != out.Latest {
		return fmt.Errorf("/v1/ip/%s: latest %+v != history tail %+v", addr, out.Latest, last)
	}
	for i := 1; i < len(out.History); i++ {
		if out.History[i].Campaign <= out.History[i-1].Campaign {
			return fmt.Errorf("/v1/ip/%s: history out of order", addr)
		}
	}
	return nil
}

func checkVendors(cl *http.Client, base string) error {
	var out WireVendors
	code, err := soakGet(cl, base+"/v1/vendors", &out)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/v1/vendors: code %d", code)
	}
	sum := 0
	for _, vc := range out.Vendors {
		sum += vc.Devices
	}
	if sum != out.Sets {
		return fmt.Errorf("/v1/vendors: device sum %d != sets %d", sum, out.Sets)
	}
	return nil
}

func checkStats(cl *http.Client, base string) error {
	var out WireStats
	code, err := soakGet(cl, base+"/v1/stats", &out)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/v1/stats: code %d", code)
	}
	if out.Store.Ingested < uint64(out.Store.MemSamples+out.Store.SegmentSamples)-out.Store.Superseded {
		return fmt.Errorf("/v1/stats: ingested %d < live samples", out.Store.Ingested)
	}
	return nil
}

func checkReboots(cl *http.Client, base, addr string) error {
	var out WireReboots
	code, err := soakGet(cl, base+"/v1/reboots/"+addr, &out)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/v1/reboots/%s: code %d", addr, code)
	}
	if uint64(len(out.Samples)) != out.Campaigns {
		return fmt.Errorf("/v1/reboots/%s: %d samples over %d campaigns", addr, len(out.Samples), out.Campaigns)
	}
	return nil
}

// checkDeviceSweep picks a device out of the vendors snapshot via an alias
// set lookup and confirms every member IP resolves in the same world.
func checkDeviceSweep(cl *http.Client, base string) error {
	var vendors WireVendors
	code, err := soakGet(cl, base+"/v1/vendors", &vendors)
	if err != nil || code != http.StatusOK {
		return err
	}
	id := engID(9, 0, 0, 0x01, 0x02) // device 0, always present after seed
	var dev WireDevice
	code, err = soakGet(cl, base+"/v1/device/"+fmt.Sprintf("%x", id), &dev)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/v1/device: code %d", code)
	}
	if len(dev.EverIPs) == 0 {
		return fmt.Errorf("/v1/device: no ever_ips for seeded device")
	}
	for _, s := range dev.AliasSets {
		if s.Size() == 0 {
			return fmt.Errorf("/v1/device: empty alias set")
		}
	}
	return nil
}
