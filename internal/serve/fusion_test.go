package serve

import (
	"context"
	"net/http/httptest"
	"net/netip"
	"testing"

	"snmpv3fp/internal/store"
)

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	return netip.MustParseAddr(s)
}

// seedFusionStore layers protocol evidence over the seeded SNMPv3 store:
// icmp-ts confirms the two-IP device and extends it by one interface SNMPv3
// never saw.
func seedFusionStore(t *testing.T) *store.Store {
	t.Helper()
	st, _, _ := seedStore(t)
	err := st.IngestEvidence(context.Background(), "icmp-ts", []store.EvidenceSample{
		{IP: addr(t, "192.0.2.1"), Key: "ts:be:7", ReceivedAt: t0, Packets: 1},
		{IP: addr(t, "192.0.2.2"), Key: "ts:be:7", ReceivedAt: t0, Packets: 1},
		{IP: addr(t, "192.0.2.9"), Key: "ts:be:7", ReceivedAt: t0, Packets: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFusionEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(seedFusionStore(t)))
	defer ts.Close()

	var out WireFusion
	get(t, ts, "/v1/fusion", 200, &out)
	if out.Campaign != 2 {
		t.Errorf("campaign = %d, want 2", out.Campaign)
	}
	if out.Report == nil || len(out.Report.Protocols) != 2 {
		t.Fatalf("report = %+v, want snmpv3 + icmp-ts", out.Report)
	}
	var icmp, snmp int
	for _, pr := range out.Report.Protocols {
		switch pr.Protocol {
		case "icmp-ts":
			icmp = pr.MarginalPairs
			if pr.Weight != 0.6 {
				t.Errorf("icmp-ts weight = %v, want the module's 0.6", pr.Weight)
			}
		case "snmpv3":
			snmp = pr.Proposed
		}
	}
	// 192.0.2.9 answered only ICMP: the (.1,.9) and (.2,.9) pairs are
	// icmp-ts's marginal gain.
	if icmp != 2 {
		t.Errorf("icmp-ts marginal pairs = %d, want 2", icmp)
	}
	if snmp == 0 {
		t.Error("snmpv3 proposed no pairs")
	}

	// Restricting to one protocol drops the other's evidence.
	get(t, ts, "/v1/fusion?protocols=snmpv3", 200, &out)
	if len(out.Report.Protocols) != 1 || out.Report.Protocols[0].Protocol != "snmpv3" {
		t.Errorf("filtered report protocols = %+v", out.Report.Protocols)
	}

	var we WireError
	get(t, ts, "/v1/fusion?protocols=snmpv3,bogus", 400, &we)
	if we.Error.Code != ErrCodeUnknownProtocol {
		t.Errorf("unknown protocol code = %q, want %q", we.Error.Code, ErrCodeUnknownProtocol)
	}
}

func TestFusionEmptyStore(t *testing.T) {
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(New(st))
	defer ts.Close()
	var we WireError
	get(t, ts, "/v1/fusion", 404, &we)
	if we.Error.Code != ErrCodeNotFound {
		t.Errorf("code = %q, want %q", we.Error.Code, ErrCodeNotFound)
	}
}

func TestIPProtocolQuery(t *testing.T) {
	ts := httptest.NewServer(New(seedFusionStore(t)))
	defer ts.Close()

	var out WireProtocolIP
	get(t, ts, "/v1/ip/192.0.2.9?protocol=icmp-ts", 200, &out)
	if out.Protocol != "icmp-ts" || len(out.History) != 1 || out.History[0].Key != "ts:be:7" {
		t.Errorf("protocol history = %+v", out)
	}

	// ?protocol=snmpv3 keeps the default SNMPv3 response shape.
	var ip WireIP
	get(t, ts, "/v1/ip/192.0.2.1?protocol=snmpv3", 200, &ip)
	if len(ip.History) != 2 {
		t.Errorf("snmpv3 history = %+v, want both campaigns", ip.History)
	}

	var we WireError
	get(t, ts, "/v1/ip/192.0.2.1?protocol=bogus", 400, &we)
	if we.Error.Code != ErrCodeUnknownProtocol {
		t.Errorf("code = %q, want %q", we.Error.Code, ErrCodeUnknownProtocol)
	}
	get(t, ts, "/v1/ip/192.0.2.3?protocol=icmp-ts", 404, &we)
	if we.Error.Code != ErrCodeNotFound {
		t.Errorf("code = %q, want %q", we.Error.Code, ErrCodeNotFound)
	}
}
