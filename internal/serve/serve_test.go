package serve

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"

	"snmpv3fp/internal/alias"
	"snmpv3fp/internal/core"
	"snmpv3fp/internal/filter"
	"snmpv3fp/internal/obs"
	"snmpv3fp/internal/store"
)

var t0 = time.Date(2021, 4, 16, 0, 0, 0, 0, time.UTC)

func engID(enterprise uint32, body ...byte) []byte {
	id := []byte{byte(0x80 | enterprise>>24), byte(enterprise >> 16), byte(enterprise >> 8), byte(enterprise), 5}
	return append(id, body...)
}

func mkObs(ip string, id []byte, boots, etime int64, at time.Time) *core.Observation {
	return &core.Observation{
		IP:          netip.MustParseAddr(ip),
		EngineID:    id,
		EngineBoots: boots,
		EngineTime:  etime,
		ReceivedAt:  at,
		Packets:     1,
	}
}

func mkCampaign(obs ...*core.Observation) *core.Campaign {
	c := &core.Campaign{ByIP: map[netip.Addr]*core.Observation{}}
	for _, o := range obs {
		c.ByIP[o.IP] = o
		c.TotalPackets += o.Packets
	}
	return c
}

// seedStore ingests two small campaigns: one two-IP device, one singleton.
func seedStore(t *testing.T) (*store.Store, *core.Campaign, *core.Campaign) {
	t.Helper()
	idA := engID(9, 0xAA, 0xBB, 0xCC, 0xDD)
	idB := engID(2636, 0x11, 0x22, 0x33, 0x44)
	day := 24 * time.Hour
	c1 := mkCampaign(
		mkObs("192.0.2.1", idA, 2, 1000, t0),
		mkObs("192.0.2.2", idA, 2, 1000, t0),
		mkObs("192.0.2.3", idB, 5, 500, t0),
	)
	c2 := mkCampaign(
		mkObs("192.0.2.1", idA, 2, 1000+86400, t0.Add(day)),
		mkObs("192.0.2.2", idA, 2, 1000+86400, t0.Add(day)),
		mkObs("192.0.2.3", idB, 6, 100, t0.Add(day)), // rebooted: boots mismatch, filtered
	)
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	st.AddCampaign(c1)
	st.AddCampaign(c2)
	return st, c1, c2
}

func get(t *testing.T, ts *httptest.Server, path string, wantCode int, out any) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: code %d (want %d): %s", path, resp.StatusCode, wantCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
	}
	return body
}

func TestEndpoints(t *testing.T) {
	st, c1, c2 := seedStore(t)
	ts := httptest.NewServer(New(st).Handler())
	defer ts.Close()

	var ip WireIP
	get(t, ts, "/v1/ip/192.0.2.1", http.StatusOK, &ip)
	if ip.Latest.Campaign != 2 || ip.Latest.Boots != 2 || len(ip.History) != 2 {
		t.Fatalf("bad /v1/ip payload: %+v", ip)
	}
	if ip.Vendor.Vendor != "Cisco" {
		t.Fatalf("vendor: %+v", ip.Vendor)
	}

	idA := hex.EncodeToString(engID(9, 0xAA, 0xBB, 0xCC, 0xDD))
	var dev WireDevice
	get(t, ts, "/v1/device/"+idA, http.StatusOK, &dev)
	if len(dev.AliasSets) != 1 || dev.AliasSets[0].Size() != 2 {
		t.Fatalf("alias sets: %+v", dev.AliasSets)
	}
	if len(dev.EverIPs) != 2 {
		t.Fatalf("ever ips: %+v", dev.EverIPs)
	}

	// The filtered-out device (boots mismatch) still has its all-time index.
	idB := hex.EncodeToString(engID(2636, 0x11, 0x22, 0x33, 0x44))
	get(t, ts, "/v1/device/"+idB, http.StatusOK, &dev)
	if len(dev.AliasSets) != 0 || len(dev.EverIPs) != 1 {
		t.Fatalf("filtered device: %+v", dev)
	}

	var vendors WireVendors
	get(t, ts, "/v1/vendors", http.StatusOK, &vendors)
	if vendors.Campaigns != 2 || vendors.Sets != 1 {
		t.Fatalf("vendors: %+v", vendors)
	}

	var reboots WireReboots
	get(t, ts, "/v1/reboots/192.0.2.3", http.StatusOK, &reboots)
	if len(reboots.Samples) != 2 || reboots.Reboots != 1 || reboots.Availability != 1 {
		t.Fatalf("reboots: %+v", reboots)
	}
	if reboots.Events[0] != "reboot" {
		t.Fatalf("events: %+v", reboots.Events)
	}

	var stats WireStats
	get(t, ts, "/v1/stats", http.StatusOK, &stats)
	if stats.Store.Campaigns != 2 || stats.Store.Ingested != uint64(len(c1.ByIP)+len(c2.ByIP)) {
		t.Fatalf("stats: %+v", stats.Store)
	}
	if stats.Serve["ip"] != 1 || stats.Serve["device"] != 2 || stats.Serve["vendors"] != 1 {
		t.Fatalf("serve counters: %+v", stats.Serve)
	}

	// Error paths.
	get(t, ts, "/v1/ip/not-an-ip", http.StatusBadRequest, nil)
	get(t, ts, "/v1/ip/198.51.100.99", http.StatusNotFound, nil)
	get(t, ts, "/v1/device/zz", http.StatusBadRequest, nil)
	get(t, ts, "/v1/device/deadbeef", http.StatusNotFound, nil)
	get(t, ts, "/v1/reboots/198.51.100.99", http.StatusNotFound, nil)
}

// TestErrorEnvelope asserts every failing endpoint speaks the versioned
// envelope {"error":{"code","message"}} with a stable machine-readable code.
func TestErrorEnvelope(t *testing.T) {
	st, _, _ := seedStore(t)
	ts := httptest.NewServer(New(st))
	defer ts.Close()
	cases := []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/ip/not-an-ip", http.StatusBadRequest, ErrCodeBadRequest},
		{"/v1/ip/198.51.100.99", http.StatusNotFound, ErrCodeNotFound},
		{"/v1/device/zz", http.StatusBadRequest, ErrCodeBadRequest},
		{"/v1/device/deadbeef", http.StatusNotFound, ErrCodeNotFound},
		{"/v1/reboots/not-an-ip", http.StatusBadRequest, ErrCodeBadRequest},
		{"/no/such/endpoint", http.StatusNotFound, ErrCodeNotFound},
	}
	for _, tc := range cases {
		var env WireError
		get(t, ts, tc.path, tc.status, &env)
		if env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.path, env.Error.Code, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.path)
		}
	}
}

// parseExposition maps each sample line of a Prometheus text exposition to
// its value, and collects the `# TYPE` declarations.
func parseExposition(t *testing.T, body string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples, types
}

// TestMetricsEndpoint drives traffic through the API and checks that
// /v1/metrics serves a parseable exposition whose per-endpoint counters and
// latency histograms reconcile with the requests actually made.
func TestMetricsEndpoint(t *testing.T) {
	st, _, _ := seedStore(t)
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(st, WithObs(reg)))
	defer ts.Close()

	get(t, ts, "/v1/vendors", http.StatusOK, nil)
	get(t, ts, "/v1/vendors", http.StatusOK, nil)
	get(t, ts, "/v1/ip/not-an-ip", http.StatusBadRequest, nil)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("metrics content type %q, want %q", ct, metricsContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples, types := parseExposition(t, string(body))
	if types["snmpfp_http_requests_total"] != "counter" {
		t.Fatalf("requests family type %q", types["snmpfp_http_requests_total"])
	}
	if types["snmpfp_http_request_duration_seconds"] != "histogram" {
		t.Fatalf("duration family type %q", types["snmpfp_http_request_duration_seconds"])
	}
	if got := samples[`snmpfp_http_requests_total{endpoint="vendors"}`]; got != 2 {
		t.Fatalf("vendors requests %v, want 2", got)
	}
	if got := samples[`snmpfp_http_requests_total{endpoint="ip"}`]; got != 1 {
		t.Fatalf("ip requests %v, want 1", got)
	}
	if got := samples[`snmpfp_http_request_duration_seconds_count{endpoint="vendors"}`]; got != 2 {
		t.Fatalf("vendors latency count %v, want 2", got)
	}
	// The scrape itself was counted before the handler wrote the body.
	if got := samples[`snmpfp_http_requests_total{endpoint="metrics"}`]; got != 1 {
		t.Fatalf("metrics requests %v, want 1", got)
	}
	// The served registry is the one passed via WithObs.
	if got := reg.Value("snmpfp_http_requests_total", obs.L("endpoint", "vendors")); got != 2 {
		t.Fatalf("registry vendors requests %v, want 2", got)
	}
}

// TestMetricsDefaultRegistry: /v1/metrics works without WithObs.
func TestMetricsDefaultRegistry(t *testing.T) {
	st, _, _ := seedStore(t)
	ts := httptest.NewServer(New(st))
	defer ts.Close()
	get(t, ts, "/v1/stats", http.StatusOK, nil)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: code %d", resp.StatusCode)
	}
	samples, _ := parseExposition(t, string(body))
	if got := samples[`snmpfp_http_requests_total{endpoint="stats"}`]; got != 1 {
		t.Fatalf("stats requests %v, want 1", got)
	}
}

// TestVendorsAndAliasesMatchBatchOverHTTP asserts the acceptance criterion
// at the wire level: the served alias-set and vendor JSON is byte-identical
// to the batch pipeline's output serialized the same way.
func TestVendorsAndAliasesMatchBatchOverHTTP(t *testing.T) {
	st, c1, c2 := seedStore(t)
	ts := httptest.NewServer(New(st).Handler())
	defer ts.Close()

	rep := filter.Run(c1, c2)
	sets := alias.Resolve(rep.Valid, alias.Default)
	tally := map[string]int{}
	var wantSets []store.AliasSet
	for _, s := range sets {
		fp := core.FingerprintEngineID(s.Members[0].EngineID)
		as := store.AliasSet{
			EngineID: fmt.Sprintf("%x", s.Members[0].EngineID),
			Vendor:   fp.VendorLabel(),
		}
		for _, m := range s.Members {
			as.IPs = append(as.IPs, m.IP)
		}
		wantSets = append(wantSets, as)
		tally[fp.VendorLabel()]++
	}

	var vendors WireVendors
	get(t, ts, "/v1/vendors", http.StatusOK, &vendors)
	if len(vendors.Vendors) != len(tally) {
		t.Fatalf("vendor rows: got %d want %d", len(vendors.Vendors), len(tally))
	}
	for _, vc := range vendors.Vendors {
		if tally[vc.Vendor] != vc.Devices {
			t.Fatalf("vendor %q: got %d want %d", vc.Vendor, vc.Devices, tally[vc.Vendor])
		}
	}

	for _, want := range wantSets {
		var dev WireDevice
		get(t, ts, "/v1/device/"+want.EngineID, http.StatusOK, &dev)
		gotJSON, _ := json.Marshal(dev.AliasSets)
		wantJSON, _ := json.Marshal([]store.AliasSet{want})
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("set %s diverges:\n got %s\nwant %s", want.EngineID, gotJSON, wantJSON)
		}
	}
}

func TestRunBench(t *testing.T) {
	res, err := RunBench(BenchConfig{Campaigns: 2, IPs: 40, Queries: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingest.Samples != 80 || res.Ingest.SamplesPerSec <= 0 {
		t.Fatalf("ingest: %+v", res.Ingest)
	}
	for _, ep := range []string{"ip", "device", "vendors", "reboots", "stats"} {
		lat, ok := res.Query[ep]
		if !ok || lat.Requests != 25 || lat.P99Us < lat.P50Us {
			t.Fatalf("endpoint %s: %+v (ok=%v)", ep, lat, ok)
		}
	}
	if res.Stats.Ingested != 80 || res.Stats.Campaigns != 2 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	st, _, _ := seedStore(t)
	ts := httptest.NewServer(New(st))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/vendors", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: code %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("Allow header %q, want GET", allow)
	}
	var env WireError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("405 body is not the error envelope: %v", err)
	}
	if env.Error.Code != ErrCodeMethodNotAllowed {
		t.Fatalf("405 code %q", env.Error.Code)
	}
}
