package serve

import (
	"fmt"
	"net/http"
	"net/netip"
	"net/url"
	"sort"
	"time"

	"snmpv3fp/internal/core"
	"snmpv3fp/internal/store"
)

// BenchConfig sizes a store+serve benchmark run.
type BenchConfig struct {
	Campaigns int // campaigns to ingest (default 8)
	IPs       int // responsive IPs per campaign (default 5000)
	Queries   int // requests per endpoint (default 2000)
}

func (c *BenchConfig) fill() {
	if c.Campaigns <= 0 {
		c.Campaigns = 8
	}
	if c.IPs <= 0 {
		c.IPs = 5000
	}
	if c.Queries <= 0 {
		c.Queries = 2000
	}
}

// BenchIngest summarizes the ingest phase.
type BenchIngest struct {
	Campaigns     int     `json:"campaigns"`
	Samples       int     `json:"samples"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
}

// BenchLatency summarizes one endpoint's query latencies.
type BenchLatency struct {
	Requests int     `json:"requests"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// BenchResult is the JSON payload behind `make bench-json`.
type BenchResult struct {
	Config BenchConfig             `json:"config"`
	Ingest BenchIngest             `json:"ingest"`
	Query  map[string]BenchLatency `json:"query"`
	Stats  store.Stats             `json:"stats"`
}

// benchWriter is a minimal http.ResponseWriter that discards bodies, so
// query latencies measure the store+serve stack rather than socket I/O.
type benchWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *benchWriter) Header() http.Header { return w.h }

func (w *benchWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func (w *benchWriter) WriteHeader(code int) { w.code = code }

// RunBench ingests synthetic campaigns into a fresh store and measures
// ingest throughput plus per-endpoint query latency against the in-process
// handler.
func RunBench(cfg BenchConfig) (*BenchResult, error) {
	cfg.fill()
	st, err := store.Open(store.Options{})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	benchIP := func(i int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, 2, byte(i >> 8), byte(i)})
	}
	benchEngID := func(device int) []byte {
		return []byte{0x80, 0, 0, 9, 5, byte(device >> 16), byte(device >> 8), byte(device), 0xFE}
	}

	start := time.Now()
	for n := 1; n <= cfg.Campaigns; n++ {
		st.BeginCampaign()
		at := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(n) * 24 * time.Hour)
		for i := 0; i < cfg.IPs; i++ {
			device := i / 2
			o := &core.Observation{
				IP:          benchIP(i),
				EngineID:    benchEngID(device),
				EngineBoots: 3,
				EngineTime:  int64(n) * 86400,
				ReceivedAt:  at,
				Packets:     1,
			}
			if err := st.Add(o); err != nil {
				return nil, err
			}
		}
	}
	st.Flush()
	st.Compact()
	ingestSecs := time.Since(start).Seconds()

	srv := New(st)
	paths := map[string]func(i int) string{
		"ip":      func(i int) string { return "/v1/ip/" + benchIP(i%cfg.IPs).String() },
		"device":  func(i int) string { return fmt.Sprintf("/v1/device/%x", benchEngID(i%cfg.IPs/2)) },
		"vendors": func(i int) string { return "/v1/vendors" },
		"reboots": func(i int) string { return "/v1/reboots/" + benchIP(i%cfg.IPs).String() },
		"stats":   func(i int) string { return "/v1/stats" },
	}
	res := &BenchResult{
		Config: cfg,
		Ingest: BenchIngest{
			Campaigns:     cfg.Campaigns,
			Samples:       cfg.Campaigns * cfg.IPs,
			Seconds:       ingestSecs,
			SamplesPerSec: float64(cfg.Campaigns*cfg.IPs) / ingestSecs,
		},
		Query: map[string]BenchLatency{},
	}
	for name, path := range paths {
		lat, err := benchEndpoint(srv, path, cfg.Queries)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", name, err)
		}
		res.Query[name] = lat
	}
	res.Stats = st.Snapshot().Stats()
	return res, nil
}

func benchEndpoint(srv *Server, path func(i int) string, n int) (BenchLatency, error) {
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		u, err := url.Parse(path(i))
		if err != nil {
			return BenchLatency{}, err
		}
		req := &http.Request{Method: http.MethodGet, URL: u, Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1, Host: "bench"}
		w := &benchWriter{h: http.Header{}}
		t0 := time.Now()
		srv.ServeHTTP(w, req)
		durs = append(durs, time.Since(t0))
		if w.code != 0 && w.code != http.StatusOK {
			return BenchLatency{}, fmt.Errorf("%s: status %d", path(i), w.code)
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return float64(durs[i].Nanoseconds()) / 1e3
	}
	return BenchLatency{Requests: n, P50Us: pct(0.50), P99Us: pct(0.99)}, nil
}
