// Package analysis provides the statistical machinery behind the paper's
// figures: empirical CDFs, set-overlap comparisons between alias-resolution
// techniques, per-AS coverage, vendor counting and vendor dominance.
package analysis

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (which it copies and sorts).
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(q * float64(len(e.sorted)))
	if i >= len(e.sorted) {
		i = len(e.sorted) - 1
	}
	return e.sorted[i]
}

// Min and Max return the extremes.
func (e *ECDF) Min() float64 { return e.Quantile(0) }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.Quantile(1) }

// Points samples the ECDF at n evenly spaced probabilities, returning
// (value, probability) pairs suitable for plotting or table rendering.
func (e *ECDF) Points(n int) [][2]float64 {
	if n < 2 || e.N() == 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out = append(out, [2]float64{e.Quantile(q), q})
	}
	return out
}

// Histogram bins samples into n equal-width bins over [lo, hi], returning
// the fraction of samples per bin (the form of the paper's Figure 6).
func Histogram(samples []float64, lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	if len(samples) == 0 || hi <= lo || n == 0 {
		return out
	}
	w := (hi - lo) / float64(n)
	total := 0
	for _, s := range samples {
		if s < lo || s > hi {
			continue
		}
		i := int((s - lo) / w)
		if i >= n {
			i = n - 1
		}
		out[i]++
		total++
	}
	if total > 0 {
		for i := range out {
			out[i] /= float64(total)
		}
	}
	return out
}

// Mean returns the arithmetic mean.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// Skewness returns the sample skewness (positive = right tail), used to
// verify the Figure 6 observation about non-conforming engine IDs.
func Skewness(samples []float64) float64 {
	n := float64(len(samples))
	if n < 2 {
		return math.NaN()
	}
	m := Mean(samples)
	var m2, m3 float64
	for _, s := range samples {
		d := s - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// TopK returns the k keys with the largest counts, in decreasing order
// (ties broken lexicographically for determinism).
func TopK(counts map[string]int, k int) []string {
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k < len(keys) {
		keys = keys[:k]
	}
	return keys
}

// Dominance returns the share of the largest count (the paper's vendor
// dominance metric, Section 6.5).
func Dominance(counts map[string]int) float64 {
	total, best := 0, 0
	for _, c := range counts {
		total += c
		if c > best {
			best = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(best) / float64(total)
}

// DominantKey returns the key with the largest count.
func DominantKey(counts map[string]int) string {
	best, bestKey := -1, ""
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > best {
			best, bestKey = counts[k], k
		}
	}
	return bestKey
}
