package analysis

import (
	"net/netip"
	"sort"
)

// AddrSet is one alias set as a plain address list, the common currency for
// comparing alias-resolution techniques (Sections 5.2 and 5.3).
type AddrSet []netip.Addr

// Normalize sorts the addresses in place and returns the set.
func (s AddrSet) Normalize() AddrSet {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
	return s
}

// key renders the normalized set as a comparable string.
func (s AddrSet) key() string {
	b := make([]byte, 0, len(s)*16)
	for _, a := range s {
		x := a.As16()
		b = append(b, x[:]...)
	}
	return string(b)
}

// OverlapStats compares two alias-set collections.
type OverlapStats struct {
	// ExactMatches counts sets identical in both collections.
	ExactMatches int
	// PartialMatches counts sets of B sharing at least one address with
	// some set of A without being identical to any set of A.
	PartialMatches int
	// PartialSingletons counts partial matches where the B set is a
	// singleton.
	PartialSingletons int
}

// CompareSets computes overlap statistics of collection B against
// collection A (B is typically the baseline technique being compared to the
// SNMPv3 sets A).
func CompareSets(a, b []AddrSet) OverlapStats {
	exact := make(map[string]bool, len(a))
	member := make(map[netip.Addr]bool)
	for _, s := range a {
		s.Normalize()
		exact[s.key()] = true
		for _, addr := range s {
			member[addr] = true
		}
	}
	var st OverlapStats
	for _, s := range b {
		s.Normalize()
		if exact[s.key()] {
			st.ExactMatches++
			continue
		}
		for _, addr := range s {
			if member[addr] {
				st.PartialMatches++
				if len(s) == 1 {
					st.PartialSingletons++
				}
				break
			}
		}
	}
	return st
}

// PrecisionRecall scores inferred alias sets against ground-truth device
// groupings at the pair level: precision is the fraction of inferred
// same-device pairs that are truly same-device; recall is the fraction of
// true pairs (among inferred addresses) recovered.
func PrecisionRecall(inferred []AddrSet, truth map[netip.Addr]int) (precision, recall float64) {
	var tp, fp int64
	// Count true pairs among addresses that appear in the inference at all
	// (alias resolution cannot be charged for unprobed or filtered IPs).
	covered := map[int][]netip.Addr{}
	for _, s := range inferred {
		for _, a := range s {
			if dev, ok := truth[a]; ok {
				covered[dev] = append(covered[dev], a)
			}
		}
	}
	var truePairs int64
	for _, addrs := range covered {
		n := int64(len(addrs))
		truePairs += n * (n - 1) / 2
	}
	for _, s := range inferred {
		for i := 0; i < len(s); i++ {
			di, iok := truth[s[i]]
			for j := i + 1; j < len(s); j++ {
				dj, jok := truth[s[j]]
				if iok && jok && di == dj {
					tp++
				} else {
					fp++
				}
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if truePairs > 0 {
		recall = float64(tp) / float64(truePairs)
	}
	return precision, recall
}
