package analysis

import (
	"math/rand"
	"sort"
)

// BootstrapCI estimates a confidence interval for a statistic of a sample
// by nonparametric bootstrap: `iters` resamples with replacement, statistic
// recomputed on each, interval taken at the (1-level)/2 quantiles.
//
// The paper reports point estimates of vendor market share from one scan;
// bootstrap intervals quantify how tight those estimates are given the
// de-aliased device sample.
func BootstrapCI(sample []float64, statistic func([]float64) float64, iters int, level float64, seed int64) (lo, hi float64) {
	if len(sample) == 0 || iters <= 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, iters)
	resample := make([]float64, len(sample))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = sample[rng.Intn(len(sample))]
		}
		stats[i] = statistic(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return stats[loIdx], stats[hiIdx]
}

// ProportionCI bootstraps a confidence interval for the share k/n of a
// binary property across n observed items.
func ProportionCI(k, n, iters int, level float64, seed int64) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	sample := make([]float64, n)
	for i := 0; i < k; i++ {
		sample[i] = 1
	}
	return BootstrapCI(sample, Mean, iters, level, seed)
}
