package analysis

import (
	"math"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 4, 5})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1.0}, {100, 1.0},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 5 {
		t.Errorf("min/max = %v/%v", e.Min(), e.Max())
	}
	if e.Quantile(0.5) != 3 {
		t.Errorf("median = %v", e.Quantile(0.5))
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 {
		t.Error("empty At should be 0")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if e.Points(5) != nil {
		t.Error("empty Points should be nil")
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("input mutated")
	}
}

func TestECDFQuick(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		e := NewECDF(clean)
		// Monotonic in x.
		prev := -1.0
		for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			p := e.At(e.Quantile(q))
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][1] != 0 || pts[4][1] != 1 {
		t.Errorf("probability endpoints wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Error("points not monotone")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.05, 0.15, 0.15, 0.95}, 0, 1, 10)
	if len(h) != 10 {
		t.Fatalf("bins = %d", len(h))
	}
	if math.Abs(h[0]-0.25) > 1e-9 || math.Abs(h[1]-0.5) > 1e-9 || math.Abs(h[9]-0.25) > 1e-9 {
		t.Errorf("histogram = %v", h)
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %v", sum)
	}
	// Out-of-range samples are ignored; boundary value lands in last bin.
	h2 := Histogram([]float64{-1, 2, 1.0}, 0, 1, 4)
	if h2[3] != 1.0 {
		t.Errorf("boundary handling: %v", h2)
	}
}

func TestMeanAndSkewness(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
	sym := []float64{1, 2, 3, 4, 5}
	if s := Skewness(sym); math.Abs(s) > 1e-9 {
		t.Errorf("symmetric skew = %v", s)
	}
	right := []float64{1, 1, 1, 1, 10}
	if s := Skewness(right); s <= 0 {
		t.Errorf("right-tailed skew = %v", s)
	}
	if s := Skewness([]float64{5, 5, 5}); s != 0 {
		t.Errorf("constant skew = %v", s)
	}
}

func TestTopK(t *testing.T) {
	counts := map[string]int{"a": 3, "b": 5, "c": 1, "d": 5}
	top := TopK(counts, 2)
	if len(top) != 2 || top[0] != "b" || top[1] != "d" {
		t.Errorf("top = %v", top)
	}
	if got := TopK(counts, 10); len(got) != 4 {
		t.Errorf("overlong k = %v", got)
	}
}

func TestDominance(t *testing.T) {
	if d := Dominance(map[string]int{"cisco": 9, "juniper": 1}); d != 0.9 {
		t.Errorf("dominance = %v", d)
	}
	if Dominance(nil) != 0 {
		t.Error("empty dominance should be 0")
	}
	if k := DominantKey(map[string]int{"x": 1, "y": 3}); k != "y" {
		t.Errorf("dominant key = %q", k)
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestCompareSetsExactAndPartial(t *testing.T) {
	a := []AddrSet{
		{mustAddr("192.0.2.1"), mustAddr("192.0.2.2")},
		{mustAddr("192.0.2.9")},
	}
	b := []AddrSet{
		{mustAddr("192.0.2.2"), mustAddr("192.0.2.1")},  // same set, other order
		{mustAddr("192.0.2.9"), mustAddr("192.0.2.10")}, // partial
		{mustAddr("203.0.113.1")},                       // disjoint
	}
	st := CompareSets(a, b)
	if st.ExactMatches != 1 {
		t.Errorf("exact = %d", st.ExactMatches)
	}
	if st.PartialMatches != 1 {
		t.Errorf("partial = %d", st.PartialMatches)
	}
	if st.PartialSingletons != 0 {
		t.Errorf("partial singletons = %d", st.PartialSingletons)
	}
}

func TestCompareSetsSingletonPartial(t *testing.T) {
	a := []AddrSet{{mustAddr("192.0.2.1"), mustAddr("192.0.2.2")}}
	b := []AddrSet{{mustAddr("192.0.2.1")}}
	st := CompareSets(a, b)
	if st.PartialMatches != 1 || st.PartialSingletons != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrecisionRecallPerfect(t *testing.T) {
	truth := map[netip.Addr]int{
		mustAddr("192.0.2.1"): 1,
		mustAddr("192.0.2.2"): 1,
		mustAddr("192.0.2.3"): 2,
	}
	inferred := []AddrSet{
		{mustAddr("192.0.2.1"), mustAddr("192.0.2.2")},
		{mustAddr("192.0.2.3")},
	}
	p, r := PrecisionRecall(inferred, truth)
	if p != 1 || r != 1 {
		t.Errorf("p=%v r=%v", p, r)
	}
}

func TestPrecisionRecallFalseMerge(t *testing.T) {
	truth := map[netip.Addr]int{
		mustAddr("192.0.2.1"): 1,
		mustAddr("192.0.2.2"): 2,
	}
	inferred := []AddrSet{{mustAddr("192.0.2.1"), mustAddr("192.0.2.2")}}
	p, _ := PrecisionRecall(inferred, truth)
	if p != 0 {
		t.Errorf("precision = %v, want 0", p)
	}
}

func TestPrecisionRecallMissedPair(t *testing.T) {
	truth := map[netip.Addr]int{
		mustAddr("192.0.2.1"): 1,
		mustAddr("192.0.2.2"): 1,
	}
	inferred := []AddrSet{{mustAddr("192.0.2.1")}, {mustAddr("192.0.2.2")}}
	p, r := PrecisionRecall(inferred, truth)
	if p != 0 || r != 0 {
		t.Errorf("p=%v r=%v (no pairs inferred, one true pair missed)", p, r)
	}
}

func TestAddrSetNormalize(t *testing.T) {
	s := AddrSet{mustAddr("192.0.2.9"), mustAddr("192.0.2.1")}
	s.Normalize()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Less(s[j]) }) {
		t.Error("not sorted")
	}
}

func TestBootstrapCI(t *testing.T) {
	// A constant sample has a degenerate interval.
	lo, hi := BootstrapCI([]float64{5, 5, 5, 5}, Mean, 200, 0.95, 1)
	if lo != 5 || hi != 5 {
		t.Errorf("constant CI = [%v, %v]", lo, hi)
	}
	// A fair-coin sample's mean CI straddles 0.5 and narrows with n.
	mk := func(n int) []float64 {
		s := make([]float64, n)
		for i := 0; i < n/2; i++ {
			s[i] = 1
		}
		return s
	}
	loSmall, hiSmall := BootstrapCI(mk(40), Mean, 500, 0.95, 2)
	loBig, hiBig := BootstrapCI(mk(4000), Mean, 500, 0.95, 2)
	if !(loSmall < 0.5 && hiSmall > 0.5 && loBig < 0.5 && hiBig > 0.5) {
		t.Errorf("CIs do not cover the mean: [%v,%v] [%v,%v]", loSmall, hiSmall, loBig, hiBig)
	}
	if hiBig-loBig >= hiSmall-loSmall {
		t.Errorf("larger sample should narrow the CI: %v vs %v", hiBig-loBig, hiSmall-loSmall)
	}
	// Empty inputs are safe.
	if lo, hi := BootstrapCI(nil, Mean, 100, 0.95, 1); lo != 0 || hi != 0 {
		t.Error("empty sample CI should be zero")
	}
}

func TestProportionCI(t *testing.T) {
	lo, hi := ProportionCI(70, 100, 500, 0.95, 3)
	if !(lo < 0.7 && hi > 0.7) {
		t.Errorf("CI [%v, %v] misses 0.7", lo, hi)
	}
	if lo < 0.55 || hi > 0.85 {
		t.Errorf("CI [%v, %v] implausibly wide", lo, hi)
	}
	if lo, hi := ProportionCI(1, 0, 100, 0.95, 1); lo != 0 || hi != 0 {
		t.Error("n=0 CI should be zero")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lo1, hi1 := BootstrapCI(s, Mean, 300, 0.9, 7)
	lo2, hi2 := BootstrapCI(s, Mean, 300, 0.9, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("same seed produced different intervals")
	}
}
