package netsim

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"snmpv3fp/internal/snmp"
)

// TestTransportConcurrentSendClose is the -race regression for the old
// contract "Close must not be called concurrently with Send": many senders
// race one Close, and every Send either delivers normally or observes
// net.ErrClosed — never a panic on the closed channel.
func TestTransportConcurrentSendClose(t *testing.T) {
	w := tinyWorld(t)
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)

	var addrs []netip.Addr
	for _, d := range w.Devices {
		if len(d.V4) > 0 {
			addrs = append(addrs, d.V4[0])
		}
		if len(addrs) >= 64 {
			break
		}
	}
	if len(addrs) == 0 {
		t.Fatal("no device addresses")
	}

	for round := 0; round < 25; round++ {
		tr := w.NewTransport()
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for {
				if _, _, _, err := tr.Recv(); err != nil {
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, a := range addrs {
					if err := tr.Send(a, probe); err != nil {
						if !errors.Is(err, net.ErrClosed) {
							t.Errorf("send: %v", err)
						}
						return
					}
				}
			}()
		}
		if err := tr.Close(); err != nil { // races with the senders above
			t.Fatalf("close: %v", err)
		}
		wg.Wait()
		<-drained
		if _, _, _, err := tr.Recv(); err != io.EOF {
			t.Fatalf("after close: %v", err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	}
}

func TestTransportSendAfterClose(t *testing.T) {
	w := tinyWorld(t)
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	tr := w.NewTransport()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	err := tr.Send(w.ScanPrefixes4()[0].Addr(), probe)
	if !errors.Is(err, net.ErrClosed) {
		t.Errorf("Send after Close = %v, want net.ErrClosed", err)
	}
}
