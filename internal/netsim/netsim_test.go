package netsim

import (
	"net/netip"
	"testing"
	"time"

	"snmpv3fp/internal/engineid"
	"snmpv3fp/internal/snmp"
)

func tinyWorld(t testing.TB) *World {
	t.Helper()
	return Generate(TinyConfig(1))
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(TinyConfig(7))
	w2 := Generate(TinyConfig(7))
	if len(w1.Devices) != len(w2.Devices) || len(w1.ASes) != len(w2.ASes) {
		t.Fatalf("sizes differ: %d/%d devices, %d/%d ASes",
			len(w1.Devices), len(w2.Devices), len(w1.ASes), len(w2.ASes))
	}
	for i := range w1.Devices {
		a, b := w1.Devices[i], w2.Devices[i]
		if string(a.EngineID) != string(b.EngineID) || a.Boots != b.Boots || !a.BootTime.Equal(b.BootTime) {
			t.Fatalf("device %d differs between same-seed worlds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	w1 := Generate(TinyConfig(1))
	w2 := Generate(TinyConfig(2))
	same := 0
	n := len(w1.Devices)
	if len(w2.Devices) < n {
		n = len(w2.Devices)
	}
	for i := 0; i < n; i++ {
		if string(w1.Devices[i].EngineID) == string(w2.Devices[i].EngineID) {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("%d/%d identical engine IDs across seeds", same, n)
	}
}

func TestWorldPopulationShape(t *testing.T) {
	w := tinyWorld(t)
	var routers, servers, cpe, responders, dualStack, v6only int
	for _, d := range w.Devices {
		switch d.Class {
		case ClassRouter:
			routers++
			if len(d.V4) > 0 && len(d.V6) > 0 {
				dualStack++
			}
			if len(d.V4) == 0 && len(d.V6) > 0 {
				v6only++
			}
		case ClassServer:
			servers++
		case ClassCPE:
			cpe++
		}
		if d.Responds {
			responders++
		}
	}
	if routers == 0 || servers == 0 || cpe == 0 {
		t.Fatalf("missing a class: %d routers %d servers %d cpe", routers, servers, cpe)
	}
	if dualStack == 0 || v6only == 0 {
		t.Errorf("address-family mix missing: %d dual-stack, %d v6-only routers", dualStack, v6only)
	}
	if responders < len(w.Devices)/3 {
		t.Errorf("only %d/%d devices respond", responders, len(w.Devices))
	}
}

func TestAllAddressesRegistered(t *testing.T) {
	w := tinyWorld(t)
	for _, d := range w.Devices {
		for _, a := range d.AllAddrs() {
			if w.DeviceAt(a) != d {
				t.Fatalf("address %v not mapped to its device", a)
			}
		}
	}
}

func TestEngineIDsMatchVendors(t *testing.T) {
	w := tinyWorld(t)
	checked := 0
	for _, d := range w.Devices {
		p := engineid.Classify(d.EngineID)
		if p.Format == engineid.FormatMAC {
			vendor, src := p.Vendor()
			if src == "oui" && vendor != d.Profile.Vendor {
				t.Fatalf("device vendor %q but OUI says %q", d.Profile.Vendor, vendor)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Errorf("only %d MAC engine IDs in tiny world", checked)
	}
}

func TestDiscoveryExchange(t *testing.T) {
	w := tinyWorld(t)
	probe, _ := snmp.EncodeDiscoveryRequest(1, 1)
	now := w.Cfg.StartTime.Add(15 * 24 * time.Hour)
	answered := 0
	scheduledSeen := 0
	for _, d := range w.Devices {
		if !d.Responds || d.Quirk != QuirkNone || len(d.V4) == 0 {
			continue
		}
		addr := d.V4[0]
		if !w.RespondsAt(addr) {
			continue
		}
		replies := w.HandleSNMP(addr, probe, now)
		if len(replies) == 0 {
			continue // per-scan loss
		}
		resp, err := snmp.ParseDiscoveryResponse(replies[0])
		if err != nil {
			t.Fatalf("device %d: bad reply: %v", d.ID, err)
		}
		if string(resp.EngineID) != string(d.EngineID) {
			t.Fatalf("device %d: engine ID mismatch", d.ID)
		}
		wantBoots, wantBootTime := d.scheduledBoot(now)
		if d.RebootPeriod > 0 && wantBoots > d.Boots {
			scheduledSeen++
		}
		if resp.EngineBoots != wantBoots {
			t.Fatalf("device %d: boots %d != %d", d.ID, resp.EngineBoots, wantBoots)
		}
		wantET := int64(now.Sub(wantBootTime) / time.Second)
		if resp.EngineTime != wantET {
			t.Fatalf("device %d: engine time %d != %d", d.ID, resp.EngineTime, wantET)
		}
		answered++
	}
	if answered < 50 {
		t.Errorf("only %d clean devices answered", answered)
	}
	if scheduledSeen == 0 {
		t.Error("no recurring-reboot device exercised")
	}
}

func TestScheduledReboots(t *testing.T) {
	w := tinyWorld(t)
	for _, d := range w.Devices {
		if d.RebootPeriod <= 0 {
			continue
		}
		// Boots advance by exactly one per elapsed period.
		b0, t0 := d.scheduledBoot(d.BootTime.Add(d.RebootPeriod / 2))
		b1, t1 := d.scheduledBoot(d.BootTime.Add(d.RebootPeriod + d.RebootPeriod/2))
		if b0 != d.Boots || !t0.Equal(d.BootTime) {
			t.Fatalf("pre-period state changed: %d %v", b0, t0)
		}
		if b1 != d.Boots+1 || !t1.Equal(d.BootTime.Add(d.RebootPeriod)) {
			t.Fatalf("post-period state wrong: %d %v", b1, t1)
		}
		return
	}
	t.Error("no device with a reboot schedule")
}

func TestAliasConsistencyAcrossInterfaces(t *testing.T) {
	// The paper's central observation: every interface of a device returns
	// the same engine ID.
	w := tinyWorld(t)
	probe, _ := snmp.EncodeDiscoveryRequest(2, 2)
	now := w.Cfg.StartTime.Add(15 * 24 * time.Hour)
	for _, d := range w.Devices {
		if !d.Responds || d.Quirk != QuirkNone || len(d.AllAddrs()) < 2 {
			continue
		}
		var ids []string
		for _, addr := range d.AllAddrs() {
			replies := w.HandleSNMP(addr, probe, now)
			if len(replies) == 0 {
				continue
			}
			resp, err := snmp.ParseDiscoveryResponse(replies[0])
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, string(resp.EngineID))
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] != ids[0] {
				t.Fatalf("device %d: interfaces disagree on engine ID", d.ID)
			}
		}
	}
}

func TestQuirkBehaviours(t *testing.T) {
	w := tinyWorld(t)
	probe, _ := snmp.EncodeDiscoveryRequest(3, 3)
	scan1 := w.Cfg.StartTime.Add(15 * 24 * time.Hour)
	scan2 := w.Cfg.StartTime.Add(21 * 24 * time.Hour)

	find := func(q Quirk) *Device {
		for _, d := range w.Devices {
			if d.Quirk == q && d.Responds && len(d.V4) > 0 && w.RespondsAt(d.V4[0]) &&
				!w.coin(d.V4[0], uint64(0xA110+w.scanEpoch), lossProb) {
				return d
			}
		}
		return nil
	}

	if d := find(QuirkChurn); d != nil {
		r1, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan1)[0])
		r2, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan2)[0])
		if string(r1.EngineID) == string(r2.EngineID) {
			t.Error("churned IP should change engine ID between campaigns")
		}
	} else {
		t.Error("no churn device found")
	}

	if d := find(QuirkReboot); d != nil {
		r1, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan1)[0])
		r2, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan2)[0])
		if r2.EngineBoots != r1.EngineBoots+1 {
			t.Errorf("reboot quirk: boots %d then %d", r1.EngineBoots, r2.EngineBoots)
		}
	} else {
		t.Error("no reboot device found")
	}

	if d := find(QuirkZeroBootsTime); d != nil {
		r, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan1)[0])
		if r.EngineBoots != 0 || r.EngineTime != 0 {
			t.Errorf("zero quirk: boots=%d time=%d", r.EngineBoots, r.EngineTime)
		}
	} else {
		t.Error("no zero-boots device found")
	}

	if d := find(QuirkDrift); d != nil {
		r1, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan1)[0])
		r2, _ := snmp.ParseDiscoveryResponse(w.HandleSNMP(d.V4[0], probe, scan2)[0])
		reboot1 := scan1.Add(-time.Duration(r1.EngineTime) * time.Second)
		reboot2 := scan2.Add(-time.Duration(r2.EngineTime) * time.Second)
		delta := reboot1.Sub(reboot2)
		if delta < 0 {
			delta = -delta
		}
		if delta <= 10*time.Second {
			t.Errorf("drift quirk: last-reboot delta only %v", delta)
		}
	} else {
		t.Error("no drift device found")
	}

	if d := find(QuirkMultiResponse); d != nil {
		if n := len(w.HandleSNMP(d.V4[0], probe, scan1)); n < 2 {
			t.Errorf("multi-response quirk returned %d packets", n)
		}
	}
}

func TestBugPopulationSharesEngineID(t *testing.T) {
	w := tinyWorld(t)
	bug := 0
	for _, d := range w.Devices {
		if len(d.EngineID) == 12 && d.EngineID[4] == 3 && d.EngineID[3] == 9 {
			allZero := true
			for _, b := range d.EngineID[5:] {
				if b != 0 {
					allZero = false
				}
			}
			if allZero {
				bug++
			}
		}
	}
	if bug != w.Cfg.BugDevices {
		t.Errorf("bug population %d, want %d", bug, w.Cfg.BugDevices)
	}
}

func TestSilentAddresses(t *testing.T) {
	w := tinyWorld(t)
	probe, _ := snmp.EncodeDiscoveryRequest(4, 4)
	now := w.Cfg.StartTime
	// Unallocated address in an allocated prefix.
	prefixes := w.ScanPrefixes4()
	if len(prefixes) == 0 {
		t.Fatal("no prefixes")
	}
	silent := 0
	for i := uint64(0); i < 200; i++ {
		addr := prefixes[0].Addr()
		if w.DeviceAt(addr) == nil {
			if got := w.HandleSNMP(addr, probe, now); got != nil {
				t.Fatalf("unallocated %v answered", addr)
			}
			silent++
		}
	}
	// Garbage payloads are dropped.
	for _, d := range w.Devices {
		if d.Responds && len(d.V4) > 0 {
			if got := w.HandleSNMP(d.V4[0], []byte("garbage"), now); got != nil {
				t.Fatal("garbage payload answered")
			}
			// v2c with unknown community is dropped too.
			v2, _ := snmp.NewGetRequest(snmp.V2c, "public", 1, snmp.OIDSysDescr).Encode()
			if got := w.HandleSNMP(d.V4[0], v2, now); got != nil {
				t.Fatal("v2c with community answered in the wild")
			}
			break
		}
	}
	_ = silent
}

func TestIPIDSchemes(t *testing.T) {
	w := tinyWorld(t)
	now := w.Cfg.StartTime
	// Find devices whose first two interfaces both answer ICMP-style
	// probing (a per-interface reachability coin applies).
	reachable2 := func(d *Device) bool {
		if !d.Responds || len(d.V4) < 2 {
			return false
		}
		_, ok0 := w.IPIDSample(d.V4[0], now, 0)
		_, ok1 := w.IPIDSample(d.V4[1], now, 0)
		return ok0 && ok1
	}
	var shared, perIF *Device
	for _, d := range w.Devices {
		if !reachable2(d) {
			continue
		}
		switch d.Profile.IPID {
		case IPIDShared:
			if shared == nil {
				shared = d
			}
		case IPIDPerInterface:
			if perIF == nil {
				perIF = d
			}
		}
	}
	if shared == nil {
		t.Fatal("no shared-counter device with 2+ reachable interfaces")
	}
	// Shared counter: interleaved samples from two interfaces are close and
	// monotonic.
	a1, ok1 := w.IPIDSample(shared.V4[0], now, 0)
	b1, ok2 := w.IPIDSample(shared.V4[1], now, 1)
	a2, ok3 := w.IPIDSample(shared.V4[0], now.Add(time.Second), 2)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("reachable interface stopped answering")
	}
	// Allow for 16-bit wrap on busy counters by comparing deltas.
	d1 := int32(b1) - int32(a1)
	d2 := int32(a2) - int32(b1)
	if d1 < 0 {
		d1 += 1 << 16
	}
	if d2 < 0 {
		d2 += 1 << 16
	}
	if d1 > 1<<15 || d2 > 1<<15 {
		t.Errorf("shared counter not monotonic: %d %d %d", a1, b1, a2)
	}
	if perIF != nil {
		x, _ := w.IPIDSample(perIF.V4[0], now, 0)
		y, _ := w.IPIDSample(perIF.V4[1], now, 0)
		if x == y {
			t.Error("per-interface counters should differ across interfaces")
		}
	}
	if _, ok := w.IPIDSample(netip.MustParseAddr("203.0.113.77"), now, 0); ok {
		t.Error("unallocated address returned an IP-ID")
	}
}

func TestTTLAndBanner(t *testing.T) {
	w := tinyWorld(t)
	sawTTL := map[int]bool{}
	openBanners := 0
	for _, d := range w.Devices {
		if !d.Responds || len(d.V4) == 0 {
			continue
		}
		if ttl, ok := w.TTLSample(d.V4[0]); ok {
			sawTTL[ttl] = true
		}
		if _, open := w.TCPBanner(d.V4[0]); open {
			openBanners++
		}
	}
	if !sawTTL[64] || !sawTTL[255] {
		t.Errorf("iTTL variety missing: %v", sawTTL)
	}
	if openBanners == 0 {
		t.Error("no open TCP banners in the world")
	}
}

func TestPTRRecords(t *testing.T) {
	w := tinyWorld(t)
	withPTR := 0
	for _, d := range w.Devices {
		if !d.Router() {
			continue
		}
		for _, a := range d.V4 {
			if name := w.PTR(a); name != "" {
				withPTR++
			}
		}
	}
	if withPTR < 20 {
		t.Errorf("only %d router interfaces have PTR records", withPTR)
	}
	if w.PTR(netip.MustParseAddr("203.0.113.99")) != "" {
		t.Error("unallocated address has a PTR record")
	}
}

func TestHitlistAndPrefixes(t *testing.T) {
	w := tinyWorld(t)
	hl := w.HitlistV6()
	if len(hl) < w.Cfg.HitlistFiller/2 {
		t.Errorf("hitlist too small: %d", len(hl))
	}
	responsive := 0
	for _, a := range hl {
		if w.RespondsAt(a) {
			responsive++
		}
	}
	if responsive == 0 {
		t.Error("hitlist has no responsive entries")
	}
	if responsive > len(hl)/2 {
		t.Errorf("hitlist suspiciously responsive: %d/%d", responsive, len(hl))
	}
	if len(w.ScanPrefixes4()) < len(w.ASes) {
		t.Errorf("expected at least one IPv4 prefix per AS")
	}
}

func TestTCPTimestampSharedClock(t *testing.T) {
	w := tinyWorld(t)
	now := w.Cfg.StartTime.Add(20 * 24 * time.Hour)
	later := now.Add(time.Hour)
	checked := 0
	for _, d := range w.Devices {
		if !d.Responds || len(d.V4) < 2 {
			continue
		}
		v1a, ok1 := w.TCPTimestamp(d.V4[0], now)
		v1b, ok2 := w.TCPTimestamp(d.V4[1], now)
		if !ok1 || !ok2 {
			continue // closed TCP posture
		}
		// All interfaces share one clock: identical values at one instant.
		if v1a != v1b {
			t.Fatalf("device %d: interfaces disagree: %d vs %d", d.ID, v1a, v1b)
		}
		// The clock ticks at ~1 kHz.
		v2, _ := w.TCPTimestamp(d.V4[0], later)
		delta := int64(v2) - int64(v1a)
		if delta < 3_500_000 || delta > 3_700_000 {
			t.Fatalf("device %d: 1h advanced the clock by %d ticks", d.ID, delta)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no multi-interface device with open TCP in this seed")
	}
}

func TestTCPTimestampClosedForSilent(t *testing.T) {
	w := tinyWorld(t)
	if _, ok := w.TCPTimestamp(netip.MustParseAddr("203.0.113.99"), w.Cfg.StartTime); ok {
		t.Error("unallocated address has TCP timestamps")
	}
}
