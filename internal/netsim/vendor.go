// Package netsim simulates the Internet-visible SNMP device population the
// paper scans: autonomous systems across six regions, core routers with many
// interfaces, Net-SNMP servers, and edge CPE — each with vendor-faithful
// SNMPv3 agent behaviour, engine ID generation, boot history, clock quality,
// IP-ID counters, rDNS naming, and TCP posture.
//
// The simulator answers real SNMPv3 wire messages built and parsed by
// internal/snmp, so a scan against it exercises exactly the code paths a
// scan against the real Internet would, minus the sockets (a Transport
// implementation swaps the sockets back in for loopback tests).
package netsim

import (
	"snmpv3fp/internal/oui"
	"snmpv3fp/internal/pen"
)

// DeviceClass is the coarse role of a simulated device.
type DeviceClass int

// Device classes.
const (
	ClassRouter DeviceClass = iota
	ClassServer
	ClassCPE
	ClassIoT
)

// String names the class.
func (c DeviceClass) String() string {
	switch c {
	case ClassRouter:
		return "router"
	case ClassServer:
		return "server"
	case ClassCPE:
		return "cpe"
	case ClassIoT:
		return "iot"
	default:
		return "unknown"
	}
}

// EngineIDScheme selects how a device constructs its engine ID.
type EngineIDScheme int

// Engine ID generation schemes, mirroring the format mix of the paper's
// Figure 5.
const (
	SchemeMAC EngineIDScheme = iota
	SchemeIPv4
	SchemeIPv6
	SchemeText
	SchemeOctets
	SchemeNetSNMP
	SchemeNonConforming
)

// IPIDScheme models how a device assigns the IPv4 identification field,
// the signal MIDAR-style alias resolution depends on.
type IPIDScheme int

// IP-ID counter behaviours (Section 7.2 of the paper).
const (
	// IPIDShared: one sequential counter shared by all interfaces — the
	// alias-resolvable case.
	IPIDShared IPIDScheme = iota
	// IPIDPerInterface: sequential but per interface — not resolvable.
	IPIDPerInterface
	// IPIDRandom: random per packet.
	IPIDRandom
	// IPIDZero: always zero (DF set).
	IPIDZero
)

// WeightedScheme pairs an engine ID scheme with a selection weight.
type WeightedScheme struct {
	Scheme EngineIDScheme
	Weight float64
}

// Profile describes the observable behaviour of one vendor's SNMP
// implementation and TCP/IP stack.
type Profile struct {
	// Vendor is the label used in the paper's figures.
	Vendor string
	// Enterprise is the vendor's IANA enterprise number.
	Enterprise uint32
	// OUIs are the vendor's IEEE MAC blocks; empty for software agents.
	OUIs []oui.OUI
	// Schemes is the engine ID scheme mix for this vendor's devices.
	Schemes []WeightedScheme
	// IPID is the identification-field behaviour.
	IPID IPIDScheme
	// InitTTL is the initial TTL of emitted packets (iTTL fingerprint).
	InitTTL int
	// Banner is returned on open TCP ports; empty for closed-up devices.
	Banner string
	// OpenTCPProb is the probability a device of this vendor exposes a TCP
	// service to the scanning vantage point.
	OpenTCPProb float64
	// ImplicitV3 models the Section 6.2.1 lab finding: configuring an
	// SNMPv2c community implicitly enables unauthenticated SNMPv3 replies.
	ImplicitV3 bool
	// TsQuirk is how this vendor's stack fills ICMP timestamp replies
	// (the per-vendor encoding quirks of "Sundials in the Shade").
	TsQuirk TsBehavior
	// NTPVersion is the version string the vendor's NTP daemon advertises
	// in mode-6 read-variables responses; empty for stacks that do not
	// answer mode 6.
	NTPVersion string
}

// TsBehavior models a vendor stack's ICMP timestamp reply behaviour.
type TsBehavior int

// ICMP timestamp reply behaviours.
const (
	// TsCorrect: big-endian milliseconds since midnight UT, per RFC 792.
	TsCorrect TsBehavior = iota
	// TsLittleEndian: correct value, little-endian encoded (the classic
	// Linux-derived quirk).
	TsLittleEndian
	// TsZero: replies with zeroed timestamps.
	TsZero
	// TsNonStandard: sets the RFC 792 high-order "non-standard" bit over a
	// device-stable junk value.
	TsNonStandard
	// TsSilent: never answers timestamp requests.
	TsSilent
)

// probeTraits assigns per-vendor multi-protocol behaviour without touching
// the positional profile constructor calls: ICMP timestamp quirk and NTP
// mode-6 version string. Vendors absent from the map keep the zero values
// (TsCorrect, NTP silent).
var probeTraits = map[string]struct {
	ts  TsBehavior
	ntp string
}{
	"Cisco":      {TsCorrect, "ntpd 4.1.0-cisco"},
	"Huawei":     {TsCorrect, "ntpd HUAWEI-VRP"},
	"Juniper":    {TsCorrect, "ntpd 4.2.0-JUNOS"},
	"H3C":        {TsCorrect, "ntpd H3C-Comware"},
	"Net-SNMP":   {TsLittleEndian, "ntpd 4.2.8p10"},
	"MikroTik":   {TsLittleEndian, "ntpd MikroTik-RouterOS"},
	"Arista":     {TsCorrect, "ntpd 4.2.8p12-EOS"},
	"Nokia SROS": {TsCorrect, "ntpd 4.2.0-TiMOS"},
	"ZTE":        {TsCorrect, "ntpd ZTE-ZXR10"},
	"Ubiquiti":   {TsCorrect, "ntpd 4.2.8p15-Ubiquiti"},
	"Ericsson":   {TsCorrect, ""},
	"Fortinet":   {TsSilent, ""},
	"Netgear":    {TsZero, ""},
	"TP-Link":    {TsZero, ""},
	"D-Link":     {TsZero, ""},
	"ZyXEL":      {TsZero, ""},
	"Ambit":      {TsNonStandard, ""},
	"Thomson":    {TsNonStandard, ""},
	"Broadcom":   {TsNonStandard, ""},
}

func init() {
	for vendor, t := range probeTraits {
		p, ok := Profiles[vendor]
		if !ok {
			panic("netsim: probe trait for unknown vendor: " + vendor)
		}
		p.TsQuirk = t.ts
		p.NTPVersion = t.ntp
	}
}

func mustEnterprise(vendor string) uint32 {
	n, ok := pen.NumberOf(vendor)
	if !ok {
		panic("netsim: vendor missing from PEN registry: " + vendor)
	}
	return n
}

func profile(vendor string, schemes []WeightedScheme, ipid IPIDScheme, ittl int, banner string, openTCP float64, implicitV3 bool) *Profile {
	return &Profile{
		Vendor:      vendor,
		Enterprise:  mustEnterprise(vendor),
		OUIs:        oui.OUIsOf(vendor),
		Schemes:     schemes,
		IPID:        ipid,
		InitTTL:     ittl,
		Banner:      banner,
		OpenTCPProb: openTCP,
		ImplicitV3:  implicitV3,
	}
}

// Profiles indexes every vendor profile the generator draws from.
var Profiles = map[string]*Profile{
	"Cisco": profile("Cisco",
		[]WeightedScheme{{SchemeMAC, 0.92}, {SchemeText, 0.04}, {SchemeIPv4, 0.04}},
		IPIDShared, 255, "SSH-2.0-Cisco-1.25", 0.10, true),
	"Huawei": profile("Huawei",
		[]WeightedScheme{{SchemeMAC, 0.85}, {SchemeIPv4, 0.10}, {SchemeOctets, 0.05}},
		IPIDShared, 255, "SSH-2.0-HUAWEI-1.5", 0.08, true),
	"Juniper": profile("Juniper",
		[]WeightedScheme{{SchemeMAC, 0.80}, {SchemeIPv4, 0.15}, {SchemeText, 0.05}},
		IPIDShared, 64, "SSH-2.0-OpenSSH_7.5", 0.12, true),
	"H3C": profile("H3C",
		[]WeightedScheme{{SchemeOctets, 0.70}, {SchemeMAC, 0.30}},
		IPIDPerInterface, 255, "", 0.05, true),
	"Net-SNMP": profile("Net-SNMP",
		[]WeightedScheme{{SchemeNetSNMP, 0.95}, {SchemeText, 0.05}},
		IPIDPerInterface, 64, "SSH-2.0-OpenSSH_8.2p1", 0.65, false),
	"Brocade": profile("Brocade",
		[]WeightedScheme{{SchemeMAC, 1.0}},
		IPIDShared, 64, "", 0.06, true),
	"OneAccess": profile("OneAccess",
		[]WeightedScheme{{SchemeMAC, 0.90}, {SchemeIPv4, 0.10}},
		IPIDShared, 128, "", 0.05, true),
	"Ruijie": profile("Ruijie",
		[]WeightedScheme{{SchemeMAC, 0.85}, {SchemeOctets, 0.15}},
		IPIDPerInterface, 64, "", 0.05, true),
	"Adtran": profile("Adtran",
		[]WeightedScheme{{SchemeMAC, 1.0}},
		IPIDShared, 64, "", 0.05, true),
	"Ambit": profile("Ambit",
		[]WeightedScheme{{SchemeMAC, 0.9}, {SchemeNonConforming, 0.1}},
		IPIDRandom, 64, "", 0.02, false),
	"Thomson": profile("Thomson",
		[]WeightedScheme{{SchemeMAC, 0.88}, {SchemeNonConforming, 0.12}},
		IPIDRandom, 64, "", 0.02, false),
	"Netgear": profile("Netgear",
		[]WeightedScheme{{SchemeMAC, 0.85}, {SchemeNonConforming, 0.15}},
		IPIDRandom, 64, "", 0.03, false),
	"Broadcom": profile("Broadcom",
		[]WeightedScheme{{SchemeMAC, 0.55}, {SchemeNonConforming, 0.35}, {SchemeOctets, 0.10}},
		IPIDRandom, 64, "", 0.02, false),
	"MikroTik": profile("MikroTik",
		[]WeightedScheme{{SchemeMAC, 0.6}, {SchemeText, 0.4}},
		IPIDPerInterface, 64, "SSH-2.0-ROSSSH", 0.30, false),
	"ZTE": profile("ZTE",
		[]WeightedScheme{{SchemeMAC, 0.8}, {SchemeOctets, 0.2}},
		IPIDShared, 64, "", 0.04, true),
	"TP-Link": profile("TP-Link",
		[]WeightedScheme{{SchemeMAC, 0.8}, {SchemeNonConforming, 0.2}},
		IPIDRandom, 64, "", 0.02, false),
	"D-Link": profile("D-Link",
		[]WeightedScheme{{SchemeMAC, 0.85}, {SchemeNonConforming, 0.15}},
		IPIDRandom, 64, "", 0.02, false),
	"ZyXEL": profile("ZyXEL",
		[]WeightedScheme{{SchemeMAC, 0.9}, {SchemeOctets, 0.1}},
		IPIDRandom, 64, "", 0.02, false),
	"Ubiquiti": profile("Ubiquiti",
		[]WeightedScheme{{SchemeMAC, 0.7}, {SchemeText, 0.3}},
		IPIDPerInterface, 64, "SSH-2.0-OpenSSH_7.9", 0.25, false),
	"Ericsson": profile("Ericsson",
		[]WeightedScheme{{SchemeMAC, 0.9}, {SchemeOctets, 0.1}},
		IPIDShared, 255, "", 0.03, true),
	"Nokia SROS": profile("Nokia SROS",
		[]WeightedScheme{{SchemeMAC, 0.9}, {SchemeIPv4, 0.1}},
		IPIDShared, 64, "", 0.05, true),
	"Fortinet": profile("Fortinet",
		[]WeightedScheme{{SchemeMAC, 0.8}, {SchemeOctets, 0.2}},
		IPIDRandom, 255, "", 0.04, false),
	"Extreme Networks": profile("Extreme Networks",
		[]WeightedScheme{{SchemeMAC, 1.0}},
		IPIDShared, 64, "", 0.04, true),
	"Arista": profile("Arista",
		[]WeightedScheme{{SchemeMAC, 0.85}, {SchemeText, 0.15}},
		IPIDPerInterface, 64, "SSH-2.0-OpenSSH_7.8", 0.10, false),
	"Alcatel-Lucent": profile("Alcatel-Lucent",
		[]WeightedScheme{{SchemeMAC, 0.9}, {SchemeOctets, 0.1}},
		IPIDShared, 64, "", 0.04, true),
}

// RouterVendorMix is the market-share distribution used to pick router
// vendors; weights approximate the paper's Figure 12 (Cisco ~69%, Huawei
// ~15%, Juniper ~7%, H3C ~4%, top-4 ≥ 95%). The effective per-AS draw
// additionally applies region mixes and per-AS dominance; see genASRouters.
var RouterVendorMix = []struct {
	Vendor string
	Weight float64
}{
	{"Cisco", 0.690},
	{"Huawei", 0.150},
	{"Juniper", 0.072},
	{"H3C", 0.040},
	{"Net-SNMP", 0.016},
	{"OneAccess", 0.009},
	{"Ruijie", 0.007},
	{"Brocade", 0.005},
	{"Adtran", 0.004},
	{"Ambit", 0.003},
	{"Nokia SROS", 0.002},
	{"Ericsson", 0.002},
}

// CPEVendorMix approximates the edge-device vendor mix behind the paper's
// Figure 11 once routers and servers are excluded.
var CPEVendorMix = []struct {
	Vendor string
	Weight float64
}{
	{"Thomson", 0.215},
	{"Broadcom", 0.215},
	{"Netgear", 0.155},
	{"Cisco", 0.130}, // small-business gear
	{"Huawei", 0.075},
	{"Ambit", 0.055},
	{"MikroTik", 0.045},
	{"TP-Link", 0.030},
	{"D-Link", 0.025},
	{"ZyXEL", 0.020},
	{"Ubiquiti", 0.015},
	{"ZTE", 0.010},
	{"Fortinet", 0.005},
	{"Ruijie", 0.005},
}

// RegionHuaweiShare scales Huawei's router share per region, reproducing the
// paper's Figure 15: ~27% in Asia, ~22% in Europe, ~14% in South America and
// Africa, absent in North America, <1% in Oceania.
var RegionHuaweiShare = map[Region]float64{
	RegionAS: 1.80,
	RegionEU: 1.45,
	RegionSA: 0.95,
	RegionAF: 0.95,
	RegionNA: 0.0,
	RegionOC: 0.05,
}
