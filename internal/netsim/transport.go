package netsim

import (
	"io"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type simPacket struct {
	src     netip.Addr
	payload []byte
	at      time.Time
}

// Transport is the in-memory scanner transport: probes sent through it are
// answered by the world's simulated agents, with deterministic per-path
// RTTs stamped on the virtual clock. It satisfies the scanner package's
// Transport, TimedTransport and ResponseCounter interfaces, and is safe for
// concurrent use by the sharded scan engine: any number of senders may race
// each other and Close, and a Send that loses the race to Close is a no-op
// returning net.ErrClosed instead of panicking on the closed channel.
type Transport struct {
	w  *World
	ch chan simPacket

	mu      sync.Mutex
	closed  bool
	sending sync.WaitGroup
	queued  atomic.Uint64
}

// NewTransport opens a transport onto the world. Each campaign should use a
// fresh transport and call World.BeginScan first.
func (w *World) NewTransport() *Transport {
	return &Transport{w: w, ch: make(chan simPacket, 4096)}
}

// Send implements scanner.Transport: the datagram is delivered to the agent
// at dst, and any responses are queued for Recv with a simulated RTT.
func (t *Transport) Send(dst netip.Addr, payload []byte) error {
	return t.SendAt(dst, payload, t.w.Clock.Now())
}

// SendAt implements scanner.TimedTransport: the probe reaches the agent at
// the given virtual instant, independent of the shared clock's current
// reading, so the engine can schedule deterministic multi-worker campaigns.
func (t *Transport) SendAt(dst netip.Addr, payload []byte, at time.Time) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return net.ErrClosed
	}
	t.sending.Add(1)
	t.mu.Unlock()
	defer t.sending.Done()

	rtt := time.Duration(10+t.w.hash64(dst, 0x277)%190) * time.Millisecond
	if f := t.w.Cfg.Faults; f != nil {
		t.deliverFaulted(f, dst, payload, at, rtt)
		return nil
	}
	responses := t.w.HandleSNMP(dst, payload, at)
	for _, resp := range responses {
		t.enqueue(dst, resp, at.Add(rtt))
	}
	return nil
}

// enqueue queues one response datagram for Recv.
func (t *Transport) enqueue(src netip.Addr, payload []byte, at time.Time) {
	t.ch <- simPacket{src: src, payload: payload, at: at}
	t.queued.Add(1)
}

// QueuedResponses implements scanner.ResponseCounter.
func (t *Transport) QueuedResponses() uint64 { return t.queued.Load() }

// Recv implements scanner.Transport.
func (t *Transport) Recv() (netip.Addr, []byte, time.Time, error) {
	p, ok := <-t.ch
	if !ok {
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	return p.src, p.payload, p.at, nil
}

// Close implements scanner.Transport. It is safe to call concurrently with
// Send and is idempotent: the response channel is only closed after every
// in-flight Send has finished enqueuing.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	// In-flight senders were admitted before the closed flag flipped; wait
	// for them rather than closing the channel under their feet. They can
	// be blocked on a full channel, so Recv must keep draining — the scan
	// engine guarantees this by closing only while its capture runs.
	t.sending.Wait()
	close(t.ch)
	return nil
}

// ScanPrefixes4 returns every allocated IPv4 prefix: the simulated
// equivalent of the paper's "all ~2.9B routable IPv4 addresses" target
// space (unallocated space would never respond and is elided for speed).
func (w *World) ScanPrefixes4() []netip.Prefix {
	var out []netip.Prefix
	for _, a := range w.ASes {
		out = append(out, a.V4Prefixes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

// HitlistV6 returns the simulated IPv6 Hitlist Service target list:
// hitlist-flagged device addresses (routers learned from traceroutes, CPE
// from previous hitlist runs) plus unresponsive filler entries.
func (w *World) HitlistV6() []netip.Addr {
	var out []netip.Addr
	for _, d := range w.Devices {
		if d.InHitlist {
			out = append(out, d.V6...)
		}
	}
	out = append(out, w.hitlistFiller...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
