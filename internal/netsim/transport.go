package netsim

import (
	"io"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/bufpool"
)

type simPacket struct {
	src     netip.Addr
	payload []byte
	at      time.Time
}

// Transport is the in-memory scanner transport: probes sent through it are
// answered by the world's simulated agents, with deterministic per-path
// RTTs stamped on the virtual clock. It satisfies the scanner package's
// Transport, TimedTransport and ResponseCounter interfaces, and is safe for
// concurrent use by the sharded scan engine: any number of senders may race
// each other and Close, and a Send that loses the race to Close is a no-op
// returning net.ErrClosed instead of panicking on the closed channel.
type Transport struct {
	w  *World
	ch chan simPacket

	// pool recycles the response-datagram buffers flowing through ch. Every
	// queued payload is copied into its own pooled buffer (even quirky
	// devices that emit thousands of identical datagrams per probe), so each
	// payload is singly owned: the consumer may pass it back through
	// ReleasePayload the moment it is done, with no reference counting.
	pool *bufpool.Pool

	mu      sync.Mutex
	closed  bool
	sending sync.WaitGroup
	queued  atomic.Uint64
}

// simBufSize comfortably covers a discovery report (engine IDs are at most a
// few dozen octets, so reports stay under ~150 bytes); larger payloads fall
// back to exact allocations that the pool simply declines to recycle.
const simBufSize = 256

// simPoolSize bounds the parked free list; the scanner's capture goroutine
// releases buffers almost as fast as senders queue them, so the list stays
// small relative to the channel capacity.
const simPoolSize = 4096

// NewTransport opens a transport onto the world. Each campaign should use a
// fresh transport and call World.BeginScan first.
func (w *World) NewTransport() *Transport {
	return &Transport{
		w:    w,
		ch:   make(chan simPacket, 4096),
		pool: bufpool.New(simPoolSize, simBufSize),
	}
}

// Send implements scanner.Transport: the datagram is delivered to the agent
// at dst, and any responses are queued for Recv with a simulated RTT.
func (t *Transport) Send(dst netip.Addr, payload []byte) error {
	return t.SendAt(dst, payload, t.w.Clock.Now())
}

// SendAt implements scanner.TimedTransport: the probe reaches the agent at
// the given virtual instant, independent of the shared clock's current
// reading, so the engine can schedule deterministic multi-worker campaigns.
func (t *Transport) SendAt(dst netip.Addr, payload []byte, at time.Time) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return net.ErrClosed
	}
	t.sending.Add(1)
	t.mu.Unlock()
	defer t.sending.Done()

	rtt := time.Duration(10+t.w.hash64(dst, 0x277)%190) * time.Millisecond
	if f := t.w.Cfg.Faults; f != nil {
		t.deliverFaulted(f, dst, payload, at, rtt)
		return nil
	}
	scratch := t.pool.Get()
	wire, n := t.w.respond(dst, payload, at, scratch[:0])
	for i := 0; i < n; i++ {
		t.enqueue(dst, wire, at.Add(rtt))
	}
	t.pool.Put(scratch)
	return nil
}

// enqueue copies one response datagram into a pooled buffer and queues it
// for Recv. The copy decouples the queued payload from the caller's scratch
// and gives every datagram — including the identical copies quirky devices
// emit — a single owner, so Recv consumers can release each payload
// independently.
func (t *Transport) enqueue(src netip.Addr, payload []byte, at time.Time) {
	buf := t.pool.Get()
	var pkt []byte
	if len(payload) > len(buf) {
		t.pool.Put(buf)
		pkt = make([]byte, len(payload))
	} else {
		pkt = buf[:len(payload)]
	}
	copy(pkt, payload)
	t.ch <- simPacket{src: src, payload: pkt, at: at}
	t.queued.Add(1)
}

// QueuedResponses implements scanner.ResponseCounter.
func (t *Transport) QueuedResponses() uint64 { return t.queued.Load() }

// Recv implements scanner.Transport. The returned payload is backed by a
// pooled buffer owned by the caller; pass it to ReleasePayload once parsed
// or copied, and do not touch it afterwards. Skipping the release is safe —
// the buffer is simply left to the GC.
func (t *Transport) Recv() (netip.Addr, []byte, time.Time, error) {
	p, ok := <-t.ch
	if !ok {
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	return p.src, p.payload, p.at, nil
}

// ReleasePayload implements scanner.PayloadReleaser: it returns a payload
// obtained from Recv to the transport's buffer pool.
func (t *Transport) ReleasePayload(p []byte) { t.pool.Put(p) }

// Close implements scanner.Transport. It is safe to call concurrently with
// Send and is idempotent: the response channel is only closed after every
// in-flight Send has finished enqueuing.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	// In-flight senders were admitted before the closed flag flipped; wait
	// for them rather than closing the channel under their feet. They can
	// be blocked on a full channel, so Recv must keep draining — the scan
	// engine guarantees this by closing only while its capture runs.
	t.sending.Wait()
	close(t.ch)
	return nil
}

// ScanPrefixes4 returns every allocated IPv4 prefix: the simulated
// equivalent of the paper's "all ~2.9B routable IPv4 addresses" target
// space (unallocated space would never respond and is elided for speed).
func (w *World) ScanPrefixes4() []netip.Prefix {
	var out []netip.Prefix
	for _, a := range w.ASes {
		out = append(out, a.V4Prefixes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

// HitlistV6 returns the simulated IPv6 Hitlist Service target list:
// hitlist-flagged device addresses (routers learned from traceroutes, CPE
// from previous hitlist runs) plus unresponsive filler entries.
func (w *World) HitlistV6() []netip.Addr {
	var out []netip.Addr
	for _, d := range w.Devices {
		if d.InHitlist {
			out = append(out, d.V6...)
		}
	}
	out = append(out, w.hitlistFiller...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
