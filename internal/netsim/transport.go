package netsim

import (
	"io"
	"net/netip"
	"sort"
	"time"
)

type simPacket struct {
	src     netip.Addr
	payload []byte
	at      time.Time
}

// Transport is the in-memory scanner transport: probes sent through it are
// answered by the world's simulated agents, with deterministic per-path
// RTTs stamped on the virtual clock. It satisfies the scanner package's
// Transport interface.
type Transport struct {
	w  *World
	ch chan simPacket
}

// NewTransport opens a transport onto the world. Each campaign should use a
// fresh transport and call World.BeginScan first.
func (w *World) NewTransport() *Transport {
	return &Transport{w: w, ch: make(chan simPacket, 4096)}
}

// Send implements scanner.Transport: the datagram is delivered to the agent
// at dst, and any responses are queued for Recv with a simulated RTT.
func (t *Transport) Send(dst netip.Addr, payload []byte) error {
	now := t.w.Clock.Now()
	responses := t.w.HandleSNMP(dst, payload, now)
	if len(responses) == 0 {
		return nil
	}
	rtt := time.Duration(10+t.w.hash64(dst, 0x277)%190) * time.Millisecond
	for _, resp := range responses {
		t.ch <- simPacket{src: dst, payload: resp, at: now.Add(rtt)}
	}
	return nil
}

// Recv implements scanner.Transport.
func (t *Transport) Recv() (netip.Addr, []byte, time.Time, error) {
	p, ok := <-t.ch
	if !ok {
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	return p.src, p.payload, p.at, nil
}

// Close implements scanner.Transport. It must not be called concurrently
// with Send.
func (t *Transport) Close() error {
	close(t.ch)
	return nil
}

// ScanPrefixes4 returns every allocated IPv4 prefix: the simulated
// equivalent of the paper's "all ~2.9B routable IPv4 addresses" target
// space (unallocated space would never respond and is elided for speed).
func (w *World) ScanPrefixes4() []netip.Prefix {
	var out []netip.Prefix
	for _, a := range w.ASes {
		out = append(out, a.V4Prefixes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

// HitlistV6 returns the simulated IPv6 Hitlist Service target list:
// hitlist-flagged device addresses (routers learned from traceroutes, CPE
// from previous hitlist runs) plus unresponsive filler entries.
func (w *World) HitlistV6() []netip.Addr {
	var out []netip.Addr
	for _, d := range w.Devices {
		if d.InHitlist {
			out = append(out, d.V6...)
		}
	}
	out = append(out, w.hitlistFiller...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
