package netsim

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"snmpv3fp/internal/bufpool"
	"snmpv3fp/internal/scanner"
)

type simPacket struct {
	src     netip.Addr
	payload []byte
	at      time.Time
}

// Transport is the in-memory scanner transport: probes sent through it are
// answered by the world's simulated agents, with deterministic per-path
// RTTs stamped on the virtual clock. It satisfies the scanner package's
// Transport, TimedTransport, BatchSender, TimedBatchSender, BatchReceiver
// and ResponseCounter interfaces, and is safe for concurrent use by the
// sharded scan engine: any number of senders may race each other and Close,
// and a Send that loses the race to Close is a no-op returning net.ErrClosed
// instead of panicking on the closed channel.
//
// Internally responses move in batches: each Send/SendBatch call accumulates
// its response datagrams into a []simPacket and flushes whole batches
// through one channel operation, so the per-datagram channel hop that
// used to dominate the simulated hot path is amortized across the batch —
// the in-memory analogue of sendmmsg/recvmmsg.
type Transport struct {
	w  *World
	ch chan []simPacket
	// freeBatches recycles flushed batch slices once the receive side has
	// drained them, keeping the steady-state send path allocation-free.
	freeBatches chan []simPacket

	// pool recycles the response-datagram buffers flowing through ch. Every
	// queued payload is copied into its own pooled buffer (even quirky
	// devices that emit thousands of identical datagrams per probe), so each
	// payload is singly owned: the consumer may pass it back through
	// ReleasePayload the moment it is done, with no reference counting.
	pool *bufpool.Pool

	mu      sync.Mutex
	closed  bool
	sending sync.WaitGroup
	queued  atomic.Uint64

	// recvMu serializes consumers over the current in-progress batch; any
	// number of goroutines may call Recv/RecvBatch concurrently.
	recvMu sync.Mutex
	cur    []simPacket
	curIdx int

	// sendFailed tracks which fault-selected addresses have already burned
	// their one transient send failure (see FaultProfile.SendErr).
	failMu     sync.Mutex
	sendFailed map[netip.Addr]struct{}
}

// simBufSize comfortably covers a discovery report (engine IDs are at most a
// few dozen octets, so reports stay under ~150 bytes); larger payloads fall
// back to exact allocations that the pool simply declines to recycle.
const simBufSize = 256

// simPoolSize bounds the parked free list; it covers the maximum number of
// payloads in flight (simChanBatches full batches plus slack), so a consumer
// that releases promptly makes the steady-state send path allocation-free.
const simPoolSize = 8192

// simFlushLen is the response-batch flush threshold: a sender accumulates up
// to this many response datagrams before pushing them through the channel in
// one operation.
const simFlushLen = 128

// simChanBatches is the response channel's depth in batches. It is kept
// moderate deliberately: a full channel blocks senders (backpressure) rather
// than letting them race ahead of the capture goroutine through an unbounded
// allocation of fresh batches and payload buffers.
const simChanBatches = 64

// simFreeBatches bounds the parked batch slices; sized above simChanBatches
// so every batch the consumer drains finds a free-list slot and the batch
// population stops growing once the pipeline is primed.
const simFreeBatches = 128

// NewTransport opens a transport onto the world. Each campaign should use a
// fresh transport and call World.BeginScan first.
func (w *World) NewTransport() *Transport {
	return &Transport{
		w:           w,
		ch:          make(chan []simPacket, simChanBatches),
		freeBatches: make(chan []simPacket, simFreeBatches),
		pool:        bufpool.New(simPoolSize, simBufSize),
		sendFailed:  make(map[netip.Addr]struct{}),
	}
}

func (t *Transport) getBatch() []simPacket {
	select {
	case b := <-t.freeBatches:
		return b[:0]
	default:
		return make([]simPacket, 0, simFlushLen)
	}
}

// recycleBatch clears a drained batch (dropping payload references — the
// consumer owns those) and parks the slice for reuse.
func (t *Transport) recycleBatch(b []simPacket) {
	for i := range b {
		b[i] = simPacket{}
	}
	select {
	case t.freeBatches <- b:
	default:
	}
}

// appendPacket copies one response datagram into a pooled buffer and adds it
// to the pending batch, flushing when the batch is full. The copy decouples
// the queued payload from the caller's scratch and gives every datagram —
// including the identical copies quirky devices emit — a single owner, so
// Recv consumers can release each payload independently.
func (t *Transport) appendPacket(batch []simPacket, src netip.Addr, payload []byte, at time.Time) []simPacket {
	buf := t.pool.Get()
	var pkt []byte
	if len(payload) > len(buf) {
		t.pool.Put(buf)
		pkt = make([]byte, len(payload))
	} else {
		pkt = buf[:len(payload)]
	}
	copy(pkt, payload)
	batch = append(batch, simPacket{src: src, payload: pkt, at: at})
	if len(batch) >= simFlushLen {
		t.flush(batch)
		batch = t.getBatch()
	}
	return batch
}

// flush pushes the pending batch to the receive side. queued is bumped
// before the channel send so QueuedResponses never under-counts packets a
// consumer can already observe.
func (t *Transport) flush(batch []simPacket) {
	if len(batch) == 0 {
		t.recycleBatch(batch)
		return
	}
	t.queued.Add(uint64(len(batch)))
	t.ch <- batch
}

// Send implements scanner.Transport: the datagram is delivered to the agent
// at dst, and any responses are queued for Recv with a simulated RTT.
func (t *Transport) Send(dst netip.Addr, payload []byte) error {
	return t.SendAt(dst, payload, t.w.Clock.Now())
}

// SendAt implements scanner.TimedTransport: the probe reaches the agent at
// the given virtual instant, independent of the shared clock's current
// reading, so the engine can schedule deterministic multi-worker campaigns.
func (t *Transport) SendAt(dst netip.Addr, payload []byte, at time.Time) error {
	dsts := [1]netip.Addr{dst}
	ats := [1]time.Time{at}
	_, err := t.sendBatch(dsts[:], payload, ats[:], time.Time{})
	return err
}

// SendBatch implements scanner.BatchSender: one payload delivered to every
// destination, all at the shared clock's current instant. Returns how many
// leading destinations were sent; n < len(dsts) implies err != nil.
func (t *Transport) SendBatch(dsts []netip.Addr, payload []byte) (int, error) {
	return t.sendBatch(dsts, payload, nil, t.w.Clock.Now())
}

// SendBatchAt implements scanner.TimedBatchSender: the probe to dsts[i]
// reaches its agent at ats[i].
func (t *Transport) SendBatchAt(dsts []netip.Addr, payload []byte, ats []time.Time) (int, error) {
	if len(ats) != len(dsts) {
		return 0, fmt.Errorf("netsim: SendBatchAt: %d ats for %d dsts", len(ats), len(dsts))
	}
	return t.sendBatch(dsts, payload, ats, time.Time{})
}

// sendBatch is the shared delivery core: admission, fault-layer dispatch and
// response batching happen once per batch instead of once per probe. When
// ats is nil every probe lands at the fallback instant `at`.
func (t *Transport) sendBatch(dsts []netip.Addr, payload []byte, ats []time.Time, at time.Time) (int, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, net.ErrClosed
	}
	t.sending.Add(1)
	t.mu.Unlock()
	defer t.sending.Done()

	f := t.w.Cfg.Faults
	scratch := t.pool.Get()
	batch := t.getBatch()
	for i, dst := range dsts {
		// One address-prefix hash per probe feeds every per-probe coin: the
		// RTT draw, the loss coin, and the whole fault profile.
		ah := t.w.addrHash(dst)
		if f != nil && f.SendErr > 0 && t.transientSendFailure(f, dst, ah) {
			t.flush(batch)
			t.pool.Put(scratch)
			return i, fmt.Errorf("netsim: send to %v: %w", dst, syscall.ENOBUFS)
		}
		pat := at
		if ats != nil {
			pat = ats[i]
		}
		// The RTT is a path property, so it draws through the vantage salt:
		// different viewpoints reach the same device over different paths
		// (the reference viewpoint's salt is zero, preserving the historical
		// draw exactly).
		rtt := time.Duration(10+t.w.saltHash(ah, 0x277+t.w.vantageSalt)%190) * time.Millisecond
		if f != nil {
			batch = t.deliverFaulted(f, batch, dst, ah, payload, pat, rtt, scratch)
		} else {
			wire, n := t.w.respond(dst, ah, payload, pat, scratch[:0])
			for c := 0; c < n; c++ {
				batch = t.appendPacket(batch, dst, wire, pat.Add(rtt))
			}
		}
	}
	t.flush(batch)
	t.pool.Put(scratch)
	return len(dsts), nil
}

// transientSendFailure reports whether the probe to dst should fail with a
// transient errno this attempt. Each fault-selected address fails exactly
// once — the first attempt — so a retrying sender always makes progress and
// the delivered campaign stays byte-identical to an unfaulted run.
func (t *Transport) transientSendFailure(f *FaultProfile, dst netip.Addr, ah uint64) bool {
	if !t.w.epochCoinH(ah, saltSendErr, f.SendErr) {
		return false
	}
	t.failMu.Lock()
	_, done := t.sendFailed[dst]
	if !done {
		t.sendFailed[dst] = struct{}{}
	}
	t.failMu.Unlock()
	if done {
		return false
	}
	t.w.faults.sendErrs.Add(1)
	return true
}

// QueuedResponses implements scanner.ResponseCounter.
func (t *Transport) QueuedResponses() uint64 { return t.queued.Load() }

// Recv implements scanner.Transport. The returned payload is backed by a
// pooled buffer owned by the caller; pass it to ReleasePayload once parsed
// or copied, and do not touch it afterwards. Skipping the release is safe —
// the buffer is simply left to the GC.
func (t *Transport) Recv() (netip.Addr, []byte, time.Time, error) {
	t.recvMu.Lock()
	if !t.nextBatchLocked() {
		t.recvMu.Unlock()
		return netip.Addr{}, nil, time.Time{}, io.EOF
	}
	p := t.cur[t.curIdx]
	t.curIdx++
	t.recvMu.Unlock()
	return p.src, p.payload, p.at, nil
}

// RecvBatch implements scanner.BatchReceiver: it blocks until at least one
// datagram is available, then fills into with everything immediately queued,
// up to len(into). Payload ownership per datagram is identical to Recv.
func (t *Transport) RecvBatch(into []scanner.Datagram) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if !t.nextBatchLocked() {
		return 0, io.EOF
	}
	n := 0
	for n < len(into) {
		if t.curIdx >= len(t.cur) {
			// Current batch drained: take another only if one is already
			// waiting — never block once we have datagrams to deliver.
			t.recycleBatch(t.cur)
			t.cur = nil
			select {
			case b, ok := <-t.ch:
				if !ok {
					return n, nil
				}
				t.cur, t.curIdx = b, 0
			default:
				return n, nil
			}
		}
		p := t.cur[t.curIdx]
		t.curIdx++
		into[n] = scanner.Datagram{Src: p.src, Payload: p.payload, At: p.at}
		n++
	}
	return n, nil
}

// nextBatchLocked ensures t.cur holds an unconsumed packet, blocking on the
// channel when everything so far has been handed out. It returns false once
// the transport is closed and drained. Callers hold recvMu; a consumer
// blocked inside the channel receive makes its peers wait on recvMu, which
// preserves the any-number-of-consumers contract.
func (t *Transport) nextBatchLocked() bool {
	for t.cur == nil || t.curIdx >= len(t.cur) {
		if t.cur != nil {
			t.recycleBatch(t.cur)
			t.cur = nil
		}
		b, ok := <-t.ch
		if !ok {
			return false
		}
		t.cur, t.curIdx = b, 0
	}
	return true
}

// ReleasePayload implements scanner.PayloadReleaser: it returns a payload
// obtained from Recv to the transport's buffer pool.
func (t *Transport) ReleasePayload(p []byte) { t.pool.Put(p) }

// Close implements scanner.Transport. It is safe to call concurrently with
// Send and is idempotent: the response channel is only closed after every
// in-flight Send has finished enqueuing.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	// In-flight senders were admitted before the closed flag flipped; wait
	// for them rather than closing the channel under their feet. They can
	// be blocked on a full channel, so Recv must keep draining — the scan
	// engine guarantees this by closing only while its capture runs.
	t.sending.Wait()
	close(t.ch)
	return nil
}

// ScanPrefixes4 returns every allocated IPv4 prefix: the simulated
// equivalent of the paper's "all ~2.9B routable IPv4 addresses" target
// space (unallocated space would never respond and is elided for speed).
func (w *World) ScanPrefixes4() []netip.Prefix {
	var out []netip.Prefix
	for _, a := range w.ASes {
		out = append(out, a.V4Prefixes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr().Less(out[j].Addr()) })
	return out
}

// HitlistV6 returns the simulated IPv6 Hitlist Service target list:
// hitlist-flagged device addresses (routers learned from traceroutes, CPE
// from previous hitlist runs) plus unresponsive filler entries.
func (w *World) HitlistV6() []netip.Addr {
	var out []netip.Addr
	for _, d := range w.Devices {
		if d.InHitlist {
			out = append(out, d.V6...)
		}
	}
	out = append(out, w.hitlistFiller...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
