package netsim

import "time"

// Config sizes and seeds a simulated world. Counts are calibrated against
// the paper's published population (Section 4) divided by the scale factors
// below; DESIGN.md and EXPERIMENTS.md document the mapping.
type Config struct {
	// Seed makes world generation and all in-world randomness
	// deterministic.
	Seed int64
	// StartTime anchors the virtual clock; the paper's campaigns ran in
	// April 2021.
	StartTime time.Time

	// TransitASes / EyeballASes / HostingASes set the AS population
	// (paper: 22,787 ASes with routers; router-level figures use a 1:25
	// scale).
	TransitASes int
	EyeballASes int
	HostingASes int

	// MaxRoutersPerAS is the size of the largest AS's responsive router
	// population (paper top AS: 9.4k; 1:25 scale → 376). Router counts per
	// AS follow a power law below this ceiling.
	MaxRoutersPerAS int
	// RouterZipfExponent shapes the per-AS router count distribution.
	RouterZipfExponent float64

	// DeviceRespondProb is the probability that a device's management
	// plane is reachable from the vantage point at all; RouterIfaceProb is
	// the per-interface probability an ACL lets the probe through for
	// routers (CPE and servers answer on all their addresses).
	DeviceRespondProb float64
	RouterIfaceProb   float64

	// CPEDevices / Servers size the edge and hosting populations
	// (paper: ~12.5M valid IPs dominated by edge devices; 1:250 scale).
	CPEDevices int
	Servers    int
	// IoTDevices sizes the exposed IoT population (cameras, DVRs, NAS):
	// single-IP devices the paper's Section 3.4 expects to capture and
	// plans to investigate.
	IoTDevices int

	// DualStackRouterProb / V6OnlyRouterProb split routers by address
	// family (paper: 14.9k dual-stack and 24.6k IPv6-only of 347k).
	DualStackRouterProb float64
	V6OnlyRouterProb    float64
	// V6CPE is the number of IPv6 CPE devices reachable via the hitlist.
	V6CPE int
	// HitlistFiller is the number of unresponsive IPv6 hitlist entries.
	HitlistFiller int

	// LoadBalancers is the number of load-balanced VIPs (one IP fronting
	// a pool of devices) — the Section 9 future-work population.
	LoadBalancers int
	// BugDevices share the constant Cisco CSCts87275 engine ID
	// 0x800000090300000000000000 (paper: 181k IPs; 1:250 scale).
	BugDevices int
	// PromiscuousGroups is the number of engine ID values reused across
	// devices of different vendors; PromiscuousPerGroup devices share each.
	PromiscuousGroups   int
	PromiscuousPerGroup int
	// SharedIDGroups is the number of single-vendor cloned-image engine ID
	// values; SharedIDPerGroup devices share each. These survive the
	// filtering pipeline, and only the (last reboot, boots) tuple keeps
	// alias resolution from merging them.
	SharedIDGroups   int
	SharedIDPerGroup int

	// ScanGapDays separates the two campaigns (paper: scans started
	// April 16 and April 22).
	ScanGapDays int

	// PrefixSlack multiplies allocated address space relative to the
	// number of assigned addresses, so most probed addresses are silent.
	PrefixSlack int

	// Faults, when non-nil, enables the deterministic path-fault layer
	// (faults.go): seeded loss, duplication, delay jitter, truncation and
	// corruption, off-path spoofed responses, and silent rate limiting on
	// the probe→response path. Nil reproduces the clean network.
	Faults *FaultProfile
}

// DefaultConfig returns the calibrated world used by the experiment
// harness: routers and AS structure at 1:25 of the paper's population, edge
// devices at 1:250, IPv6 at 1:50.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		StartTime:           time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
		TransitASes:         900,
		EyeballASes:         250,
		HostingASes:         120,
		MaxRoutersPerAS:     376,
		RouterZipfExponent:  0.62,
		DeviceRespondProb:   0.45,
		RouterIfaceProb:     0.45,
		CPEDevices:          36000,
		Servers:             6500,
		IoTDevices:          4000,
		DualStackRouterProb: 0.12,
		V6OnlyRouterProb:    0.07,
		V6CPE:               2600,
		HitlistFiller:       40000,
		LoadBalancers:       60,
		BugDevices:          700,
		PromiscuousGroups:   12,
		PromiscuousPerGroup: 30,
		SharedIDGroups:      3,
		SharedIDPerGroup:    320,
		ScanGapDays:         6,
		PrefixSlack:         11,
	}
}

// TinyConfig returns a miniature world for unit and integration tests:
// every population and mechanism is present, but the whole pipeline runs in
// well under a second.
func TinyConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		StartTime:           time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
		TransitASes:         40,
		EyeballASes:         12,
		HostingASes:         8,
		MaxRoutersPerAS:     60,
		RouterZipfExponent:  0.62,
		DeviceRespondProb:   0.45,
		RouterIfaceProb:     0.40,
		CPEDevices:          2500,
		Servers:             300,
		IoTDevices:          200,
		DualStackRouterProb: 0.12,
		V6OnlyRouterProb:    0.07,
		V6CPE:               250,
		HitlistFiller:       1500,
		LoadBalancers:       8,
		BugDevices:          40,
		PromiscuousGroups:   3,
		PromiscuousPerGroup: 8,
		SharedIDGroups:      2,
		SharedIDPerGroup:    160,
		ScanGapDays:         6,
		PrefixSlack:         10,
	}
}

// regionWeights drives AS region assignment (approximating the paper's
// Figure 18 AS counts: EU 870, NA 663, AS 530, SA 92, AF 99, OC 74).
var regionWeights = []struct {
	Region Region
	Weight float64
}{
	{RegionEU, 0.36},
	{RegionNA, 0.28},
	{RegionAS, 0.22},
	{RegionSA, 0.05},
	{RegionAF, 0.05},
	{RegionOC, 0.04},
}
