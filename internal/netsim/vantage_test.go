package netsim

import (
	"reflect"
	"testing"
	"time"

	"snmpv3fp/internal/scanner"
)

// runViewpointCampaign scans a fresh world at the given viewpoint and
// returns the result. Each call builds its own world so viewpoints never
// share transport or epoch state, exactly as distributed vantage processes
// would not.
func runViewpointCampaign(t *testing.T, seed int64, faults *FaultProfile, viewpoint int) *scanner.Result {
	t.Helper()
	w := Generate(TinyConfig(seed))
	w.Cfg.Faults = DeriveVantageProfile(faults, w.Cfg.Seed, viewpoint)
	w.SetViewpoint(viewpoint)
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	w.BeginScan()
	targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scanner.Scan(w.NewTransport(), targets, scanner.Config{
		Rate: 5000, Clock: w.Clock, Seed: 42, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestViewpointZeroIsReference pins the compatibility contract: viewpoint 0
// must leave every path draw untouched, so a world that calls
// SetViewpoint(0) produces a campaign byte-identical to one that never
// heard of viewpoints.
func TestViewpointZeroIsReference(t *testing.T) {
	base := FullHostileProfile()
	ref := func() *scanner.Result {
		w := Generate(TinyConfig(3))
		w.Cfg.Faults = FullHostileProfile()
		w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
		w.BeginScan()
		targets, err := scanner.NewPrefixSpace(w.ScanPrefixes4(), 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := scanner.Scan(w.NewTransport(), targets, scanner.Config{
			Rate: 5000, Clock: w.Clock, Seed: 42, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	got := runViewpointCampaign(t, 3, base, 0)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("viewpoint 0 diverged from the reference path: %d vs %d responses, sent %d vs %d",
			len(ref.Responses), len(got.Responses), ref.Sent, got.Sent)
	}
}

// TestViewpointsDivergeOnPath asserts nonzero viewpoints actually see a
// different path: under a hostile profile the captured responses differ
// from the reference viewpoint's, and two distinct viewpoints differ from
// each other.
func TestViewpointsDivergeOnPath(t *testing.T) {
	base := FullHostileProfile()
	v0 := runViewpointCampaign(t, 3, base, 0)
	v1 := runViewpointCampaign(t, 3, base, 1)
	v2 := runViewpointCampaign(t, 3, base, 2)
	if reflect.DeepEqual(v0.Responses, v1.Responses) {
		t.Error("viewpoint 1 captured the same datagrams as viewpoint 0; path diversity is not taking effect")
	}
	if reflect.DeepEqual(v1.Responses, v2.Responses) {
		t.Error("viewpoints 1 and 2 captured identical datagrams")
	}
	// Re-running a viewpoint must reproduce it exactly: path diversity is
	// deterministic, not random.
	again := runViewpointCampaign(t, 3, base, 1)
	if !reflect.DeepEqual(v1, again) {
		t.Error("viewpoint 1 is not reproducible across runs")
	}
}

// TestViewpointGroundTruthInvariant: on a clean path (no fault layer) every
// viewpoint sees exactly the same set of responding sources — viewpoints
// perturb the path, never the devices behind it.
func TestViewpointGroundTruthInvariant(t *testing.T) {
	v0 := runViewpointCampaign(t, 5, nil, 0)
	v3 := runViewpointCampaign(t, 5, nil, 3)
	srcs := func(r *scanner.Result) map[string]int {
		m := make(map[string]int)
		for _, resp := range r.Responses {
			m[resp.Src.String()]++
		}
		return m
	}
	s0, s3 := srcs(v0), srcs(v3)
	if !reflect.DeepEqual(s0, s3) {
		t.Fatalf("clean-path source sets differ across viewpoints: %d vs %d sources", len(s0), len(s3))
	}
}

func TestDeriveVantageProfile(t *testing.T) {
	if DeriveVantageProfile(nil, 7, 3) != nil {
		t.Error("nil base must derive nil")
	}
	base := FullHostileProfile()
	p0 := DeriveVantageProfile(base, 7, 0)
	if !reflect.DeepEqual(p0, base) {
		t.Errorf("viewpoint 0 profile %+v != base %+v", p0, base)
	}
	if p0 == base {
		t.Error("viewpoint 0 must return a copy, not the base pointer")
	}
	p1 := DeriveVantageProfile(base, 7, 1)
	if reflect.DeepEqual(p1, base) {
		t.Error("viewpoint 1 profile identical to base; scaling is not taking effect")
	}
	if !reflect.DeepEqual(p1, DeriveVantageProfile(base, 7, 1)) {
		t.Error("profile derivation is not deterministic")
	}
	if reflect.DeepEqual(p1, DeriveVantageProfile(base, 8, 1)) {
		t.Error("profile derivation ignores the seed")
	}
	check := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	check("Loss", p1.Loss)
	check("RateLimit", p1.RateLimit)
	check("OffPath", p1.OffPath)
}
