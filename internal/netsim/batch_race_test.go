package netsim

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snmpv3fp/internal/scanner"
	"snmpv3fp/internal/snmp"
)

// TestTransportRecvBatchHammer is the -race regression for the vectorized
// receive path: batched senders race multiple RecvBatch consumers that parse,
// deliberately scribble over, and release every payload through a shared
// Datagram ring. Single ownership must hold exactly as it does for Recv — a
// recycled batch slice or payload buffer still referenced by another consumer
// would surface as a parse failure or a race report.
func TestTransportRecvBatchHammer(t *testing.T) {
	w := tinyWorld(t)
	w.Clock.Set(w.Cfg.StartTime.Add(15 * 24 * time.Hour))
	probe := snmp.AppendDiscoveryRequest(nil, 42, 4242)

	var addrs []netip.Addr
	for _, d := range w.Devices {
		if len(d.V4) > 0 {
			addrs = append(addrs, d.V4[0])
		}
		if len(addrs) >= 64 {
			break
		}
	}
	if len(addrs) == 0 {
		t.Fatal("no device addresses")
	}

	tr := w.NewTransport()
	var parsed atomic.Uint64

	var consumers sync.WaitGroup
	for g := 0; g < 4; g++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			ring := make([]scanner.Datagram, 32)
			var resp snmp.DiscoveryResponse
			resp.ReportOID = make([]uint32, 0, 16)
			for {
				n, err := tr.RecvBatch(ring)
				for i := 0; i < n; i++ {
					payload := ring[i].Payload
					if perr := snmp.ParseDiscoveryResponseInto(&resp, payload); perr != nil {
						t.Errorf("parse: %v", perr)
					} else if len(resp.EngineID) == 0 {
						t.Error("parse: report without engine ID")
					}
					parsed.Add(1)
					// The consumer owns each payload until release: wreck it
					// to prove nothing else shares the backing array.
					for j := range payload {
						payload[j] = 0xAA
					}
					tr.ReleasePayload(payload)
					ring[i] = scanner.Datagram{}
				}
				if err != nil {
					return
				}
			}
		}()
	}

	var senders sync.WaitGroup
	for g := 0; g < 8; g++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for round := 0; round < 30; round++ {
				if n, err := tr.SendBatch(addrs, probe); err != nil {
					t.Errorf("send batch: sent %d: %v", n, err)
					return
				}
			}
		}()
	}
	senders.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	consumers.Wait()

	if got, queued := parsed.Load(), tr.QueuedResponses(); got != queued {
		t.Fatalf("consumed %d datagrams, transport queued %d", got, queued)
	}
	if parsed.Load() == 0 {
		t.Fatal("hammer consumed no datagrams")
	}
}
