package netsim

import (
	"net/netip"
	"sync/atomic"
	"time"

	"snmpv3fp/internal/probe"
	"snmpv3fp/internal/snmp"
)

// FaultProfile configures the deterministic path-fault layer: the hostile,
// lossy Internet between the vantage point and the agents that the paper's
// Section 4.4 pipeline must filter out. Every fault decision is a pure
// function of (world seed, address, scan epoch), so a faulted campaign is
// byte-identical across worker counts and repeat runs.
//
// Faults come in two flavours. Destructive faults suppress or damage the
// legitimate response (Loss, RateLimit, Mismatch). Additive faults leave the
// legitimate response intact and inject extra hostile datagrams alongside it
// (Duplicate, Truncate, Corrupt, OffPath), so a profile restricted to them
// perturbs the wire without changing which sources the measurement can see —
// the property the hostile-network experiment exploits to show the filter
// reproducing clean-run numbers.
type FaultProfile struct {
	// Loss is the probability a source's responses vanish in transit for
	// the whole campaign (on top of the agent-side lossProb).
	Loss float64
	// RateLimit is the probability a source sits behind a silent rate
	// limiter that drops responses to probes sent in odd-numbered virtual
	// seconds (a deterministic, order-free stand-in for token buckets).
	RateLimit float64
	// Mismatch is the probability a middlebox rewrites the probe's msgID on
	// the forward path, so the agent's echo no longer matches the probe
	// slot and the scanner must reject it.
	Mismatch float64

	// Duplicate is the probability the path duplicates a source's response
	// datagrams; DupCopies extra copies arrive per original (default 2).
	Duplicate float64
	DupCopies int
	// Truncate is the probability the path delivers, alongside the intact
	// response, a copy cut short at a hash-chosen offset.
	Truncate float64
	// Corrupt is the probability the path delivers, alongside the intact
	// response, a copy with a damaged leading octet.
	Corrupt float64
	// OffPath is the probability that probing an address triggers a reply
	// from a spoofed source that was never probed (fires even for silent
	// targets, as real off-path junk does).
	OffPath float64

	// Jitter is the maximum extra one-way delay added to each delivered
	// datagram; distinct per copy, so duplicated responses reorder against
	// their originals and against other sources.
	Jitter time.Duration

	// SendErr is the probability a destination's first probe attempt fails
	// at the sender with a transient errno (ENOBUFS — the local qdisc or
	// socket buffer momentarily full, as sendmmsg routinely reports at line
	// rate). The failure fires exactly once per selected address, so an
	// engine that retries transient send errors delivers a campaign
	// byte-identical to an unfaulted run, while an engine that aborts on
	// the first send error never finishes.
	SendErr float64
}

// HostileProfile returns the fault mix used by the hostile-network
// experiment: additive faults only (duplication, truncation, corruption,
// off-path spoofing, delay jitter), aggressive enough that a campaign sees
// every counter move, while the set of observable sources stays identical to
// a clean run.
func HostileProfile() *FaultProfile {
	return &FaultProfile{
		Duplicate: 0.08,
		DupCopies: 2,
		Truncate:  0.06,
		Corrupt:   0.06,
		OffPath:   0.03,
		Jitter:    500 * time.Millisecond,
	}
}

// FullHostileProfile adds the destructive faults (path loss, silent rate
// limiting, middlebox msgID rewriting) on top of HostileProfile: the
// worst-case path used by the fault-accounting tests.
func FullHostileProfile() *FaultProfile {
	p := HostileProfile()
	p.Loss = 0.03
	p.RateLimit = 0.04
	p.Mismatch = 0.03
	return p
}

// DeriveVantageProfile returns the fault profile vantage `viewpoint`
// observes the world through, derived from a base profile as a pure
// function of (seed, viewpoint): each probability knob is scaled by a
// deterministic factor in [0.5, 1.5) and clamped to [0, 1], and the jitter
// bound is scaled the same way. Viewpoint 0 — the reference vantage — gets
// the base profile unchanged, so a campaign that merges only reference-
// viewpoint observations remains byte-identical to a single-vantage scan
// while the extra viewpoints perturb loss, rate limiting and off-path
// exposure the way genuinely path-diverse vantage points would. A nil base
// derives nil: a clean path stays clean from everywhere.
func DeriveVantageProfile(base *FaultProfile, seed int64, viewpoint int) *FaultProfile {
	if base == nil {
		return nil
	}
	p := *base
	if viewpoint == 0 {
		return &p
	}
	salt := ViewpointSalt(seed, viewpoint)
	knob := 0
	scale := func(v float64) float64 {
		// One splitmix-style draw per knob, all keyed off the viewpoint salt.
		s := salt + uint64(knob)*0x9E3779B97F4A7C15
		knob++
		z := (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		f := 0.5 + float64(z)/float64(^uint64(0))
		out := v * f
		if out > 1 {
			out = 1
		}
		return out
	}
	p.Loss = scale(p.Loss)
	p.RateLimit = scale(p.RateLimit)
	p.Mismatch = scale(p.Mismatch)
	p.Duplicate = scale(p.Duplicate)
	p.Truncate = scale(p.Truncate)
	p.Corrupt = scale(p.Corrupt)
	p.OffPath = scale(p.OffPath)
	p.SendErr = scale(p.SendErr)
	p.Jitter = time.Duration(scale(float64(p.Jitter)/float64(time.Hour)) * float64(time.Hour))
	return &p
}

// FaultTally counts the faults the layer injected during one campaign
// (reset by BeginScan). Counts are per datagram: a duplicated burst of three
// adds three to Duplicated.
type FaultTally struct {
	// Lost counts response datagrams dropped by path loss.
	Lost uint64
	// RateLimited counts response datagrams dropped by per-source silent
	// rate limiting.
	RateLimited uint64
	// Mismatched counts response datagrams elicited by probes whose msgID a
	// middlebox rewrote in flight.
	Mismatched uint64
	// Duplicated counts extra duplicate copies injected.
	Duplicated uint64
	// Truncated counts truncated copies injected.
	Truncated uint64
	// Corrupted counts corrupted copies injected.
	Corrupted uint64
	// OffPath counts spoofed datagrams injected from never-probed sources.
	OffPath uint64
	// Delayed counts datagrams that picked up nonzero jitter.
	Delayed uint64
	// TransientSendErrs counts probe attempts failed at the sender with a
	// transient errno (the SendErr knob).
	TransientSendErrs uint64
}

// faultCounters is the internal atomic view of FaultTally; senders on any
// number of workers may race on it.
type faultCounters struct {
	lost, rateLimited, mismatched    atomic.Uint64
	duplicated, truncated, corrupted atomic.Uint64
	offPath, delayed, sendErrs       atomic.Uint64
}

func (c *faultCounters) reset() {
	c.lost.Store(0)
	c.rateLimited.Store(0)
	c.mismatched.Store(0)
	c.duplicated.Store(0)
	c.truncated.Store(0)
	c.corrupted.Store(0)
	c.offPath.Store(0)
	c.delayed.Store(0)
	c.sendErrs.Store(0)
}

// FaultStats snapshots the faults injected since the last BeginScan.
func (w *World) FaultStats() FaultTally {
	return FaultTally{
		Lost:        w.faults.lost.Load(),
		RateLimited: w.faults.rateLimited.Load(),
		Mismatched:  w.faults.mismatched.Load(),
		Duplicated:  w.faults.duplicated.Load(),
		Truncated:   w.faults.truncated.Load(),
		Corrupted:   w.faults.corrupted.Load(),
		OffPath:     w.faults.offPath.Load(),
		Delayed:     w.faults.delayed.Load(),

		TransientSendErrs: w.faults.sendErrs.Load(),
	}
}

// Salts for the fault layer's hash-derived decisions. Each decision keys on
// (salt, scan epoch, address, world seed) through World.hash64, so no two
// fault kinds share randomness and every campaign redraws.
const (
	saltLoss      = 0xF1000
	saltRateLimit = 0xF2000
	saltMismatch  = 0xF3000
	saltDuplicate = 0xF4000
	saltTruncate  = 0xF5000
	saltCorrupt   = 0xF6000
	saltOffPath   = 0xF7000
	saltJitter    = 0xF8000
	saltSpoof     = 0xF9000
	saltSendErr   = 0xFA000
)

// epochCoin is a deterministic per-campaign coin flip for addr. The vantage
// salt folds the scan viewpoint into every path-level coin (zero at the
// reference viewpoint), so different vantages draw independent faults for
// the same address while the reference viewpoint reproduces the
// single-vantage path bit for bit.
func (w *World) epochCoin(addr netip.Addr, salt uint64, prob float64) bool {
	return w.coin(addr, salt+uint64(w.scanEpoch)+w.vantageSalt, prob)
}

// epochCoinH is epochCoin over a precomputed addrHash state.
func (w *World) epochCoinH(ah, salt uint64, prob float64) bool {
	return w.coinH(ah, salt+uint64(w.scanEpoch)+w.vantageSalt, prob)
}

// TruncatePayload returns payload cut short at a deterministic offset in
// [1, len-1] derived from h. Any strict prefix of a definite-length BER
// message leaves the outer SEQUENCE length pointing past the buffer, so the
// decoder reliably reports ber.ErrTruncated. Exported so fuzz corpora can be
// seeded with exactly the truncations the fault layer produces.
func TruncatePayload(h uint64, payload []byte) []byte {
	if len(payload) < 2 {
		return payload
	}
	cut := 1 + int(h%uint64(len(payload)-1))
	out := make([]byte, cut)
	copy(out, payload[:cut])
	return out
}

// CorruptPayload returns a copy of payload with the leading identifier octet
// damaged — the smallest corruption that reliably breaks BER framing, as a
// bit-flipped UDP datagram that slipped past its checksum would. Exported
// for fuzz-corpus seeding alongside TruncatePayload.
func CorruptPayload(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	out[0] ^= 0xFF
	return out
}

// mangleProbe applies the Mismatch fault: a middlebox rewrites the probe's
// msgID in flight, so the agent's report echoes an ID the scanner never
// used. Payloads that do not decode pass through untouched.
func mangleProbe(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	// Per-protocol identity rewrite: each probe module's campaign identity
	// lives in different bytes, and the Mismatch tally is only honest if
	// the agent still answers (echoing the rewritten identity) so the
	// scanner can observe and reject the mismatch.
	switch payload[0] {
	case probe.ICMPTypeTimestamp:
		// Rewrite the identifier field; agents parse requests leniently
		// (no checksum verification), so the reply comes back with a
		// valid checksum over the wrong identity.
		if len(payload) < 8 {
			return payload
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		out[4] ^= 0x2A
		out[5] ^= 0x5A
		return out
	case probe.NTPControlByte:
		// Rewrite the mode-6 sequence number.
		if len(payload) < 4 {
			return payload
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		out[2] ^= 0x2A
		out[3] ^= 0x5A
		return out
	}
	msg, err := snmp.DecodeV3(payload)
	if err != nil && err != snmp.ErrEncrypted {
		return payload
	}
	msg.MsgID = (msg.MsgID ^ 0x2A5A5A) & 0x7FFFFFFF
	wire, err := msg.Encode()
	if err != nil {
		return payload
	}
	return wire
}

// spoofedSource derives the off-path spoofed source address for a probe to
// dst: IPv4 spoofs come from class-E space (240.0.0.0/4) and IPv6 spoofs
// from the documentation prefix (2001:db8::/32), both of which the world
// generator never allocates, so a spoofed source is never a probed target.
func (w *World) spoofedSource(dst netip.Addr) netip.Addr {
	h := w.hash64(dst, saltSpoof+uint64(w.scanEpoch)+w.vantageSalt)
	if dst.Is4() {
		return netip.AddrFrom4([4]byte{
			0xF0 | byte(h>>24)&0x0F, byte(h >> 16), byte(h >> 8), byte(h),
		})
	}
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
	for i := 0; i < 8; i++ {
		b[8+i] = byte(h >> (8 * i))
	}
	return netip.AddrFrom16(b)
}

// spoofedPayload builds the datagram an off-path spoofer sends: a
// plausible-looking discovery report from a fictitious engine, with a msgID
// unrelated to any probe. The scanner must reject it by source, not by
// shape.
func (w *World) spoofedPayload(dst netip.Addr) []byte {
	h := w.hash64(dst, saltOffPath+uint64(w.scanEpoch)+w.vantageSalt+1)
	engineID := []byte{0x80, 0x00, 0x1F, 0x88, 0x04,
		byte(h >> 32), byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
	return snmp.AppendDiscoveryReport(nil, int64(h&0x7FFFFFFF), int64(h>>33&0x7FFFFFFF),
		engineID, int64(h%97+1), int64(h%100000+1), 1)
}

// jitterFor returns the extra one-way delay for copy i of the responses to a
// probe in the current campaign; ah is the probed address's addrHash state.
func (w *World) jitterFor(f *FaultProfile, ah uint64, i int) time.Duration {
	if f.Jitter <= 0 {
		return 0
	}
	h := w.saltHash(ah, saltJitter+uint64(w.scanEpoch)+w.vantageSalt+uint64(i)<<20)
	return time.Duration(h % uint64(f.Jitter))
}

// deliverFaulted runs the response datagrams for one probe through the fault
// layer and appends what survives to the pending batch, which it returns.
// The probe reached the agent at `at`; rtt is the path's base round-trip
// time. It is called from Transport.sendBatch with the send admission
// already held; scratch is the caller's reply buffer, reused across the
// whole batch (the batch copies every appended payload, so aliasing is
// safe).
//
// Every fault coin keys on (world seed, dst, scan epoch) — never on send
// order, batch boundaries or the shared clock — which is what keeps a
// faulted campaign byte-identical across worker counts and batch sizes.
func (t *Transport) deliverFaulted(f *FaultProfile, batch []simPacket, dst netip.Addr, ah uint64, payload []byte, at time.Time, rtt time.Duration, scratch []byte) []simPacket {
	w := t.w
	c := &w.faults

	// Forward-path middlebox rewrite happens before the agent sees the
	// probe, so its reports echo the rewritten msgID.
	mismatched := f.Mismatch > 0 && w.epochCoinH(ah, saltMismatch, f.Mismatch)
	if mismatched {
		payload = mangleProbe(payload)
	}

	wire, n := w.respond(dst, ah, payload, at, scratch[:0])

	// Destructive faults: the legitimate responses never arrive. Every
	// datagram a device emits for one probe carries identical bytes, so the
	// agent hands back one wire image plus a repeat count.
	switch {
	case n == 0:
		// Silent target; only off-path injection below applies.
	case f.Loss > 0 && w.epochCoinH(ah, saltLoss, f.Loss):
		c.lost.Add(uint64(n))
		n = 0
	case f.RateLimit > 0 && w.epochCoinH(ah, saltRateLimit, f.RateLimit) &&
		(at.Unix()+int64(w.saltHash(ah, saltRateLimit+w.vantageSalt)&1))%2 != 0:
		c.rateLimited.Add(uint64(n))
		n = 0
	}

	copyIdx := 0
	enqueue := func(src netip.Addr, pkt []byte) {
		d := w.jitterFor(f, ah, copyIdx)
		copyIdx++
		if d > 0 {
			c.delayed.Add(1)
		}
		batch = t.appendPacket(batch, src, pkt, at.Add(rtt+d))
	}

	for ri := 0; ri < n; ri++ {
		if mismatched {
			c.mismatched.Add(1)
		}
		enqueue(dst, wire)
		if f.Duplicate > 0 && w.epochCoinH(ah, saltDuplicate, f.Duplicate) {
			copies := f.DupCopies
			if copies <= 0 {
				copies = 2
			}
			for i := 0; i < copies; i++ {
				c.duplicated.Add(1)
				enqueue(dst, wire)
			}
		}
		if f.Truncate > 0 && w.epochCoinH(ah, saltTruncate, f.Truncate) {
			c.truncated.Add(1)
			enqueue(dst, TruncatePayload(w.saltHash(ah, saltTruncate+uint64(w.scanEpoch)+w.vantageSalt+1), wire))
		}
		if f.Corrupt > 0 && w.epochCoinH(ah, saltCorrupt, f.Corrupt) {
			c.corrupted.Add(1)
			enqueue(dst, CorruptPayload(wire))
		}
	}

	// Off-path spoofing keys on the probed address (silent or not): probing
	// dst tickles some on-path box into emitting junk from a source the
	// campaign never probed.
	if f.OffPath > 0 && w.epochCoinH(ah, saltOffPath, f.OffPath) {
		c.offPath.Add(1)
		enqueue(w.spoofedSource(dst), w.spoofedPayload(dst))
	}
	return batch
}
